package absmac_test

// One benchmark per experiment in DESIGN.md's index (E1..E13): each
// regenerates the workload behind the corresponding EXPERIMENTS.md table
// at a representative size, reporting domain metrics (decision time over
// Fack, over D*Fack, ...) alongside the usual ns/op. cmd/benchsuite
// produces the full tables; these targets make every experiment's cost
// and shape measurable with `go test -bench`.

import (
	"fmt"
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/baseline/floodpaxos"
	"github.com/absmac/absmac/internal/baseline/gatherall"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/core/twophase"
	"github.com/absmac/absmac/internal/core/wpaxos"
	"github.com/absmac/absmac/internal/exp"
	"github.com/absmac/absmac/internal/ext/benor"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/lowerbound"
	"github.com/absmac/absmac/internal/sim"
)

func mixedInputs(n int) []amac.Value {
	inputs := make([]amac.Value, n)
	for i := range inputs {
		inputs[i] = amac.Value(i % 2)
	}
	return inputs
}

// runConsensus executes one simulator run and fails the benchmark on any
// consensus violation (benchmarks must not time broken runs).
func runConsensus(b *testing.B, cfg sim.Config) *sim.Result {
	b.Helper()
	res := sim.Run(cfg)
	rep := consensus.Check(cfg.Inputs, res)
	if !rep.OK() {
		b.Fatalf("consensus violated: %v", rep.Errors)
	}
	return res
}

// BenchmarkE1FLPExploration measures the valid-step valency exploration
// behind the Theorem 3.2 reproduction (two-phase, n=2, one crash allowed).
func BenchmarkE1FLPExploration(b *testing.B) {
	var visited int
	for i := 0; i < b.N; i++ {
		e := &lowerbound.Explorer{
			N:          2,
			Factory:    twophase.Factory,
			Inputs:     []amac.Value{0, 1},
			MaxCrashes: 1,
		}
		v := e.Valency(nil)
		if !v.Bivalent() || !v.Dead {
			b.Fatalf("unexpected valency %v", v)
		}
		visited = e.Visited()
	}
	b.ReportMetric(float64(visited), "configs")
}

// BenchmarkE2AnonImpossibility measures the Figure 1 construction end to
// end: build both networks, run the control on B and the violation on A.
func BenchmarkE2AnonImpossibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := lowerbound.RunAnonImpossibility(6, 24)
		if err != nil || !res.ControlOK || !res.ViolationInA {
			b.Fatalf("construction failed: %v %+v", err, res)
		}
	}
}

// BenchmarkE3NoSizeKnowledge measures the Figure 2 construction end to end.
func BenchmarkE3NoSizeKnowledge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := lowerbound.RunSizeImpossibility(4)
		if err != nil || !res.ViolationInKD || !res.ControlLineOK || !res.ControlWithNOK {
			b.Fatalf("construction failed: %v %+v", err, res)
		}
	}
}

// BenchmarkE4TimeLowerBound measures the Theorem 3.10 partition harness.
func BenchmarkE4TimeLowerBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := lowerbound.RunPartition(16, 4)
		if err != nil || !res.HastyViolated {
			b.Fatalf("partition harness failed: %v %+v", err, res)
		}
	}
}

// BenchmarkE5TwoPhase measures two-phase consensus on cliques; the
// decide/Fack metric is the Theorem 4.1 constant (flat in n).
func BenchmarkE5TwoPhase(b *testing.B) {
	const fack = 8
	for _, n := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res := runConsensus(b, sim.Config{
					Graph:           graph.Clique(n),
					Inputs:          mixedInputs(n),
					Factory:         twophase.Factory,
					Scheduler:       sim.NewRandom(fack, int64(i)),
					StopWhenDecided: true,
				})
				ratio = float64(res.MaxDecideTime) / float64(fack)
			}
			b.ReportMetric(ratio, "decide/Fack")
		})
	}
}

// BenchmarkE6WPaxos measures wPAXOS on lines; the decide/(D*Fack) metric
// is the Theorem 4.6 constant (flat in D).
func BenchmarkE6WPaxos(b *testing.B) {
	const fack = 4
	for _, d := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			g := graph.Line(d + 1)
			var ratio float64
			for i := 0; i < b.N; i++ {
				res := runConsensus(b, sim.Config{
					Graph:           g,
					Inputs:          mixedInputs(d + 1),
					Factory:         wpaxos.NewFactory(wpaxos.Config{N: d + 1}),
					Scheduler:       sim.NewRandom(fack, int64(i)),
					StopWhenDecided: true,
				})
				ratio = float64(res.MaxDecideTime) / float64(int64(d)*fack)
			}
			b.ReportMetric(ratio, "decide/DFack")
		})
	}
}

// BenchmarkE7FloodingBaseline contrasts wPAXOS with the flooding baselines
// on a fixed bottleneck topology (star of lines, diameter 4).
func BenchmarkE7FloodingBaseline(b *testing.B) {
	g := graph.StarOfLines(16, 2)
	n := g.N()
	algos := []struct {
		name    string
		factory amac.Factory
	}{
		{"wpaxos", wpaxos.NewFactory(wpaxos.Config{N: n})},
		{"floodpaxos", floodpaxos.NewFactory(n)},
		{"gatherall", gatherall.NewFactory(n)},
	}
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			var decide float64
			for i := 0; i < b.N; i++ {
				res := runConsensus(b, sim.Config{
					Graph:           g,
					Inputs:          mixedInputs(n),
					Factory:         a.factory,
					Scheduler:       sim.Synchronous{},
					StopWhenDecided: true,
				})
				decide = float64(res.MaxDecideTime)
			}
			b.ReportMetric(decide, "decide-time")
		})
	}
}

// BenchmarkE8TagGrowth measures a wPAXOS run while tracking the largest
// proposal tag used (Lemma 4.4).
func BenchmarkE8TagGrowth(b *testing.B) {
	const n = 32
	g := graph.RandomConnected(n, 0.1, 11)
	var maxTag float64
	for i := 0; i < b.N; i++ {
		var nodes []*wpaxos.Node
		factory := func(nc amac.NodeConfig) amac.Algorithm {
			nd := wpaxos.New(nc.Input, wpaxos.Config{N: n})
			nodes = append(nodes, nd)
			return nd
		}
		runConsensus(b, sim.Config{
			Graph:           g,
			Inputs:          mixedInputs(n),
			Factory:         factory,
			Scheduler:       sim.NewRandom(3, int64(i)),
			StopWhenDecided: true,
		})
		maxTag = 0
		for _, nd := range nodes {
			if t := float64(nd.MaxTagUsed()); t > maxTag {
				maxTag = t
			}
		}
	}
	b.ReportMetric(maxTag, "max-tag")
}

// BenchmarkE9AggregationAudit measures a fully audited wPAXOS run
// (Lemma 4.2's c(p) <= a(p) check enabled).
func BenchmarkE9AggregationAudit(b *testing.B) {
	const n = 20
	g := graph.RandomConnected(n, 0.12, 5)
	for i := 0; i < b.N; i++ {
		audit := wpaxos.NewCountAudit()
		runConsensus(b, sim.Config{
			Graph:           g,
			Inputs:          mixedInputs(n),
			Factory:         wpaxos.NewFactory(wpaxos.Config{N: n, Audit: audit}),
			Scheduler:       sim.NewRandom(3, int64(i)),
			StopWhenDecided: true,
		})
		if v := audit.Violations(); len(v) != 0 {
			b.Fatalf("Lemma 4.2 violated: %v", v)
		}
	}
}

// BenchmarkE10UnknownParticipants measures two-phase consensus where the
// algorithm is handed neither n nor the participant set.
func BenchmarkE10UnknownParticipants(b *testing.B) {
	const n = 33
	for i := 0; i < b.N; i++ {
		runConsensus(b, sim.Config{
			Graph:           graph.Clique(n),
			Inputs:          mixedInputs(n),
			Factory:         twophase.Factory,
			Scheduler:       sim.NewRandom(6, int64(i)),
			StopWhenDecided: true,
			Audit:           true,
		})
	}
}

// BenchmarkSimulatorThroughput measures raw engine event throughput with a
// trivial algorithm on a dense topology.
func BenchmarkSimulatorThroughput(b *testing.B) {
	const n = 64
	g := graph.Clique(n)
	events := 0
	for i := 0; i < b.N; i++ {
		res := sim.Run(sim.Config{
			Graph:           g,
			Inputs:          mixedInputs(n),
			Factory:         twophase.Factory,
			Scheduler:       sim.NewRandom(4, int64(i)),
			StopWhenDecided: true,
		})
		events = res.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

// BenchmarkGraphConstruction measures the paper-topology builders.
func BenchmarkGraphConstruction(b *testing.B) {
	b.Run("figure1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fig := graph.BuildFigure1(10, 64)
			if fig.N == 0 {
				b.Fatal("empty figure")
			}
		}
	})
	b.Run("kd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kd := graph.BuildKD(16)
			if kd.G.N() == 0 {
				b.Fatal("empty kd")
			}
		}
	})
	b.Run("diameter-grid20x20", func(b *testing.B) {
		g := graph.Grid(20, 20)
		for i := 0; i < b.N; i++ {
			if g.Diameter() != 38 {
				b.Fatal("bad diameter")
			}
		}
	})
}

// BenchmarkFullSuite runs the entire experiment suite once per iteration —
// the cost of regenerating EXPERIMENTS.md.
func BenchmarkFullSuite(b *testing.B) {
	if testing.Short() {
		b.Skip("full suite in short mode")
	}
	for i := 0; i < b.N; i++ {
		for _, e := range exp.All() {
			if !e.OK {
				b.Fatalf("%s failed", e.ID)
			}
		}
	}
}

// BenchmarkE11UnreliableLinks measures a dual-graph run: wPAXOS over a
// random topology plus a lossy unreliable overlay (safety audited; the run
// may legitimately stall, which is the measured phenomenon).
func BenchmarkE11UnreliableLinks(b *testing.B) {
	g := graph.Grid(4, 4)
	overlay := graph.RandomOverlay(g, 10, 1)
	for i := 0; i < b.N; i++ {
		audit := wpaxos.NewCountAudit()
		res := sim.Run(sim.Config{
			Graph:           g,
			Unreliable:      overlay,
			Inputs:          mixedInputs(g.N()),
			Factory:         wpaxos.NewFactory(wpaxos.Config{N: g.N(), Audit: audit}),
			Scheduler:       sim.NewLossy(sim.NewRandom(4, int64(i)), 0.5, int64(i)+7),
			StopWhenDecided: true,
		})
		rep := consensus.Check(mixedInputs(g.N()), res)
		if !rep.Agreement {
			b.Fatalf("agreement violated: %v", rep.Errors)
		}
		if v := audit.Violations(); len(v) != 0 {
			b.Fatalf("Lemma 4.2 violated: %v", v)
		}
	}
}

// BenchmarkE12Randomization measures Ben-Or under injected crashes — the
// workload where deterministic algorithms are forbidden to terminate.
func BenchmarkE12Randomization(b *testing.B) {
	const n, f = 5, 2
	for i := 0; i < b.N; i++ {
		inputs := mixedInputs(n)
		res := sim.Run(sim.Config{
			Graph:           graph.Clique(n),
			Inputs:          inputs,
			Factory:         benor.NewFactory(benor.Config{N: n, F: f, Seed: int64(i)}),
			Scheduler:       sim.NewRandom(4, int64(i)*3+1),
			Crashes:         []sim.Crash{{Node: i % n, At: 2}},
			StopWhenDecided: true,
			MaxEvents:       2_000_000,
		})
		rep := consensus.Check(inputs, res)
		if !rep.OK() {
			b.Fatalf("consensus violated: %v", rep.Errors)
		}
	}
}

// BenchmarkE13TreePriorityAblation measures wPAXOS with and without the
// tree queue's leader priority on a line with the leader across the
// diameter.
func BenchmarkE13TreePriorityAblation(b *testing.B) {
	g := graph.Line(25)
	ids := make([]amac.NodeID, g.N())
	for i := range ids {
		ids[i] = amac.NodeID(g.N() - i)
	}
	for _, noPri := range []bool{false, true} {
		name := "with-priority"
		if noPri {
			name = "ablated"
		}
		b.Run(name, func(b *testing.B) {
			var decide float64
			for i := 0; i < b.N; i++ {
				inputs := mixedInputs(g.N())
				res := sim.Run(sim.Config{
					Graph:           g,
					Inputs:          inputs,
					Factory:         wpaxos.NewFactory(wpaxos.Config{N: g.N(), NoTreePriority: noPri}),
					Scheduler:       sim.NewRandom(4, int64(i)),
					IDs:             ids,
					StopWhenDecided: true,
				})
				rep := consensus.Check(inputs, res)
				if !rep.OK() {
					b.Fatalf("consensus violated: %v", rep.Errors)
				}
				decide = float64(res.MaxDecideTime)
			}
			b.ReportMetric(decide, "decide-time")
		})
	}
}
