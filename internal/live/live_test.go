package live

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/baseline/gatherall"
	"github.com/absmac/absmac/internal/core/twophase"
	"github.com/absmac/absmac/internal/core/wpaxos"
	"github.com/absmac/absmac/internal/graph"
)

func mixed(n int) []amac.Value {
	inputs := make([]amac.Value, n)
	for i := range inputs {
		inputs[i] = amac.Value(i % 2)
	}
	return inputs
}

func TestTwoPhaseOnClique(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		inputs := mixed(8)
		res, err := Run(context.Background(), Config{
			Graph:   graph.Clique(8),
			Inputs:  inputs,
			Factory: twophase.Factory,
			Fack:    2 * time.Millisecond,
			Seed:    seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := res.Report(inputs)
		if !rep.OK() {
			t.Fatalf("seed %d: %v", seed, rep.Errors)
		}
	}
}

func TestWPaxosOnMultihop(t *testing.T) {
	cases := []*graph.Graph{
		graph.Line(7),
		graph.Grid(3, 3),
		graph.RandomConnected(12, 0.2, 4),
	}
	for i, g := range cases {
		inputs := mixed(g.N())
		audit := wpaxos.NewCountAudit()
		// Build nodes with New, not NewFactory: the factory enables
		// send-buffer reuse, which relies on the delivery-before-ack
		// guarantee of serialized substrates — this substrate hands the
		// message pointer to concurrently running receivers.
		cfg := wpaxos.Config{N: g.N(), Audit: audit}
		res, err := Run(context.Background(), Config{
			Graph:   g,
			Inputs:  inputs,
			Factory: func(nc amac.NodeConfig) amac.Algorithm { return wpaxos.New(nc.Input, cfg) },
			Fack:    2 * time.Millisecond,
			Seed:    int64(i),
		})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		rep := res.Report(inputs)
		if !rep.OK() {
			t.Fatalf("case %d: %v", i, rep.Errors)
		}
		if v := audit.Violations(); len(v) != 0 {
			t.Fatalf("case %d: Lemma 4.2 violated live: %v", i, v)
		}
	}
}

func TestGatherAllLive(t *testing.T) {
	g := graph.Ring(9)
	inputs := mixed(9)
	res, err := Run(context.Background(), Config{
		Graph:   g,
		Inputs:  inputs,
		Factory: gatherall.NewFactory(9),
		Fack:    time.Millisecond,
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report(inputs)
	if !rep.OK() || rep.Value != 0 {
		t.Fatalf("report %+v errors %v", rep, rep.Errors)
	}
	if res.Broadcasts == 0 {
		t.Fatal("no broadcasts counted")
	}
}

// stubborn never decides; used to exercise the timeout path.
type stubborn struct{ api amac.API }

func (s *stubborn) Start(api amac.API) {
	s.api = api
	api.Broadcast(beat{})
}
func (s *stubborn) OnReceive(amac.Message) {}
func (s *stubborn) OnAck(amac.Message)     { s.api.Broadcast(beat{}) }

type beat struct{}

func (beat) IDCount() int { return 0 }

func TestTimeout(t *testing.T) {
	inputs := mixed(2)
	res, err := Run(context.Background(), Config{
		Graph:   graph.Clique(2),
		Inputs:  inputs,
		Factory: func(amac.NodeConfig) amac.Algorithm { return &stubborn{} },
		Fack:    time.Millisecond,
		Timeout: 50 * time.Millisecond,
	})
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if res.Decided[0] || res.Decided[1] {
		t.Fatal("stubborn nodes decided")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := Run(ctx, Config{
		Graph:   graph.Clique(2),
		Inputs:  mixed(2),
		Factory: func(amac.NodeConfig) amac.Algorithm { return &stubborn{} },
		Fack:    time.Millisecond,
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestConfigValidationPanics(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil graph", Config{}},
		{"bad inputs", Config{Graph: graph.Clique(2), Inputs: mixed(1), Factory: twophase.Factory}},
		{"nil factory", Config{Graph: graph.Clique(2), Inputs: mixed(2)}},
		{"bad ids", Config{Graph: graph.Clique(2), Inputs: mixed(2), Factory: twophase.Factory, IDs: []amac.NodeID{1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			Run(context.Background(), tc.cfg)
		})
	}
}

func TestNowStrictlyIncreasing(t *testing.T) {
	rt := &runtime{}
	api := &liveAPI{rt: rt}
	prev := api.Now()
	for i := 0; i < 100; i++ {
		next := api.Now()
		if next <= prev {
			t.Fatalf("Now went from %d to %d", prev, next)
		}
		prev = next
	}
}

// TestMetricsExposition: with MetricsInterval set, the run emits
// wall-clock-stamped registry snapshots to MetricsOut, and the exposition
// goroutine is gone before Run returns (this test reads the buffer
// unsynchronized right after).
func TestMetricsExposition(t *testing.T) {
	var buf bytes.Buffer
	inputs := mixed(6)
	res, err := Run(context.Background(), Config{
		Graph:           graph.Clique(6),
		Inputs:          inputs,
		Factory:         twophase.Factory,
		Fack:            5 * time.Millisecond,
		MetricsInterval: time.Millisecond,
		MetricsOut:      &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report(inputs).OK() {
		t.Fatalf("run not OK: %v", res.Report(inputs).Errors)
	}
	out := buf.String()
	if out == "" {
		t.Skip("run finished before the first exposition tick")
	}
	for _, want := range []string{"# 2", "elapsed=", "live_broadcasts ", "live_decided "} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition output missing %q:\n%s", want, out)
		}
	}
}
