// Package live is the repository's second substrate for the abstract MAC
// layer model: a real goroutine-and-channels runtime in which the same
// amac.Algorithm state machines that run on the deterministic simulator
// run concurrently, with broadcast deliveries and acknowledgments arriving
// on real timers bounded by a wall-clock Fack.
//
// Its purpose is the paper's deployability claim (Section 1): algorithms
// written against the abstract MAC layer contract port unchanged from
// analysis to a running system. The runtime enforces the same contract as
// the simulator — every neighbor receives a broadcast before the sender's
// ack, one broadcast in flight per node, extra broadcasts discarded — with
// timing drawn from a seeded randomized scheduler instead of a plan.
//
// Crash failures are deliberately out of scope here; the Theorem 3.2
// experiments need the simulator's reproducible schedules.
package live

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/mailbox"
	"github.com/absmac/absmac/internal/metrics"
	"github.com/absmac/absmac/internal/sim"
)

// Config describes one live execution.
type Config struct {
	// Graph is the topology. Required.
	Graph *graph.Graph
	// Inputs holds each node's initial value, indexed by node. Required.
	Inputs []amac.Value
	// Factory builds each node's algorithm. Required.
	Factory amac.Factory
	// Fack is the wall-clock delivery bound. Deliveries land within
	// (0, Fack/2] and the ack within (0, Fack] of the broadcast.
	// 0 means DefaultFack.
	Fack time.Duration
	// Seed seeds the randomized delays.
	Seed int64
	// IDs optionally assigns node ids (defaults to index+1).
	IDs []amac.NodeID
	// Timeout bounds the whole run; 0 means DefaultTimeout.
	Timeout time.Duration
	// MetricsInterval enables periodic flight-recorder exposition: every
	// interval a wall-clock-stamped text snapshot of the run's counters is
	// written to MetricsOut (both must be set). The wall-clock substrates
	// are the only place timestamps appear — the metrics package itself is
	// wall-clock free, which is what keeps the simulator deterministic.
	MetricsInterval time.Duration
	// MetricsOut receives the exposition lines. Writes happen from a
	// dedicated goroutine that exits before Run returns.
	MetricsOut io.Writer
}

// DefaultFack is the delivery bound when Config.Fack is zero.
const DefaultFack = 5 * time.Millisecond

// DefaultTimeout bounds runs when Config.Timeout is zero.
const DefaultTimeout = 30 * time.Second

// ErrTimeout reports that the run timed out before every node decided.
var ErrTimeout = errors.New("live: run timed out before all nodes decided")

// Result summarizes a live execution.
type Result struct {
	// Decided, Decision and DecideTime mirror the simulator's result
	// (times are wall-clock offsets from the run start).
	Decided    []bool
	Decision   []amac.Value
	DecideTime []time.Duration
	// Broadcasts and Discards count MAC-layer operations.
	Broadcasts, Discards int64
	// Elapsed is the total run time.
	Elapsed time.Duration
}

// Report checks the outcome against the consensus properties.
func (r *Result) Report(inputs []amac.Value) *consensus.Report {
	// Reuse the simulator-result checker: the checked fields are plain
	// data shared by both substrates.
	sr := &sim.Result{
		Decided:  r.Decided,
		Decision: r.Decision,
		Crashed:  make([]bool, len(r.Decided)),
	}
	sr.DecideTime = make([]int64, len(r.DecideTime))
	for i, d := range r.DecideTime {
		sr.DecideTime[i] = int64(d)
	}
	return consensus.Check(inputs, sr)
}

// event is a mailbox entry: a delivery or an acknowledgment.
type event struct {
	ack bool
	msg amac.Message
}

type runtime struct {
	cfg     Config
	fack    time.Duration
	ids     []amac.NodeID
	boxes   []*mailbox.Mailbox[event]
	clock   atomic.Int64
	started time.Time

	rngMu sync.Mutex
	rng   *rand.Rand

	resMu      sync.Mutex
	res        *Result
	undecided  atomic.Int64
	allDecided chan struct{}

	ctx     context.Context
	wg      sync.WaitGroup // node loops
	senders sync.WaitGroup // delivery goroutines
}

// liveAPI implements amac.API for one node. Its methods are only called
// from the node's event loop goroutine; the MAC state it touches is owned
// by that goroutine.
type liveAPI struct {
	rt       *runtime
	node     int
	inflight bool
}

func (a *liveAPI) ID() amac.NodeID { return a.rt.ids[a.node] }

// Now returns a strictly increasing logical timestamp shared by all nodes
// (the total order the change service needs).
func (a *liveAPI) Now() int64 { return a.rt.clock.Add(1) }

func (a *liveAPI) Broadcast(m amac.Message) bool {
	if m == nil {
		panic(fmt.Sprintf("live: node %d broadcast a nil message", a.node))
	}
	if a.inflight {
		a.rt.resMu.Lock()
		a.rt.res.Discards++
		a.rt.resMu.Unlock()
		return false
	}
	a.inflight = true
	a.rt.resMu.Lock()
	a.rt.res.Broadcasts++
	a.rt.resMu.Unlock()
	a.rt.deliver(a.node, m)
	return true
}

func (a *liveAPI) Decide(v amac.Value) {
	rt := a.rt
	rt.resMu.Lock()
	already := rt.res.Decided[a.node]
	if !already {
		rt.res.Decided[a.node] = true
		rt.res.Decision[a.node] = v
		rt.res.DecideTime[a.node] = time.Since(rt.started)
	}
	rt.resMu.Unlock()
	if !already && rt.undecided.Add(-1) == 0 {
		close(rt.allDecided)
	}
}

// deliver spawns the MAC-layer goroutine for one broadcast: randomized
// per-neighbor delays within (0, Fack/2], then the ack within the Fack
// budget.
func (rt *runtime) deliver(sender int, m amac.Message) {
	nbrs := rt.cfg.Graph.Neighbors(sender)
	half := rt.fack / 2
	if half < time.Microsecond {
		half = time.Microsecond
	}
	delays := make([]time.Duration, len(nbrs))
	rt.rngMu.Lock()
	maxDelay := time.Duration(0)
	for i := range delays {
		delays[i] = time.Duration(rt.rng.Int63n(int64(half))) + 1
		if delays[i] > maxDelay {
			maxDelay = delays[i]
		}
	}
	ackDelay := maxDelay + time.Duration(rt.rng.Int63n(int64(half)))
	rt.rngMu.Unlock()

	rt.senders.Add(1)
	go func() {
		defer rt.senders.Done()
		start := time.Now()
		// Deliver in delay order; sleeping the increments keeps one
		// goroutine per broadcast.
		order := make([]int, len(nbrs))
		for i := range order {
			order[i] = i
		}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && delays[order[j]] < delays[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for _, i := range order {
			if !rt.sleepUntil(start, delays[i]) {
				return
			}
			rt.boxes[nbrs[i]].Push(event{msg: m})
		}
		if !rt.sleepUntil(start, ackDelay) {
			return
		}
		rt.boxes[sender].Push(event{ack: true, msg: m})
	}()
}

// ExposeMetrics runs a periodic flight-recorder exposition loop until ctx
// is canceled: every interval it calls fill to refresh the registry's
// slots from the substrate's counters, writes one wall-clock stamp line
// (RFC 3339 plus elapsed time since started), and renders the registry as
// sorted text. Shared by the live and netmac substrates — the one place
// in the repository wall-clock timestamps are allowed to surface.
func ExposeMetrics(ctx context.Context, w io.Writer, every time.Duration, started time.Time, fill func(*metrics.Registry)) {
	reg := metrics.New()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			fill(reg)
			fmt.Fprintf(w, "# %s elapsed=%s\n", now.Format(time.RFC3339Nano), now.Sub(started).Round(time.Millisecond))
			if err := reg.WriteText(w); err != nil {
				return
			}
		}
	}
}

// setCounter pins a counter slot to an externally tracked total (the
// substrates count under their own result mutex; the exposition registry
// just mirrors the totals at each tick).
func setCounter(c metrics.Counter, total int64) { c.Add(total - c.Value()) }

// expose is the live substrate's exposition goroutine body. Registration
// dedups by name, so re-registering each tick is a map hit, not a slot.
func (rt *runtime) expose(every time.Duration, w io.Writer) {
	ExposeMetrics(rt.ctx, w, every, rt.started, func(reg *metrics.Registry) {
		rt.resMu.Lock()
		b, d := rt.res.Broadcasts, rt.res.Discards
		var dec int64
		for _, x := range rt.res.Decided {
			if x {
				dec++
			}
		}
		rt.resMu.Unlock()
		setCounter(reg.Counter("live_broadcasts"), b)
		setCounter(reg.Counter("live_discards"), d)
		reg.Gauge("live_decided").Set(dec)
	})
}

// sleepUntil sleeps until start+d or the run's cancellation; it reports
// whether the run is still live.
func (rt *runtime) sleepUntil(start time.Time, d time.Duration) bool {
	remaining := time.Until(start.Add(d))
	if remaining <= 0 {
		select {
		case <-rt.ctx.Done():
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(remaining)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-rt.ctx.Done():
		return false
	}
}

// Run executes the configuration until every node decides, the context is
// canceled, or the timeout elapses. The result always reflects whatever
// progress was made; the error is non-nil on timeout/cancellation.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		panic("live: Config.Graph is nil")
	}
	n := cfg.Graph.N()
	if len(cfg.Inputs) != n {
		panic(fmt.Sprintf("live: %d inputs for %d nodes", len(cfg.Inputs), n))
	}
	if cfg.Factory == nil {
		panic("live: Config.Factory is nil")
	}
	ids := cfg.IDs
	if ids == nil {
		ids = make([]amac.NodeID, n)
		for i := range ids {
			ids[i] = amac.NodeID(i + 1)
		}
	}
	if len(ids) != n {
		panic(fmt.Sprintf("live: %d ids for %d nodes", len(ids), n))
	}
	fack := cfg.Fack
	if fack <= 0 {
		fack = DefaultFack
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}

	// Node goroutines read Graph.Neighbors concurrently; materialize the
	// CSR now, while the graph is still single-threaded.
	cfg.Graph.Freeze()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	rt := &runtime{
		cfg:        cfg,
		fack:       fack,
		ids:        ids,
		boxes:      make([]*mailbox.Mailbox[event], n),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		allDecided: make(chan struct{}),
		ctx:        runCtx,
		started:    time.Now(),
		res: &Result{
			Decided:    make([]bool, n),
			Decision:   make([]amac.Value, n),
			DecideTime: make([]time.Duration, n),
		},
	}
	rt.undecided.Store(int64(n))
	for i := range rt.boxes {
		rt.boxes[i] = mailbox.New[event]()
	}

	algs := make([]amac.Algorithm, n)
	for i := 0; i < n; i++ {
		algs[i] = cfg.Factory(amac.NodeConfig{ID: ids[i], Input: cfg.Inputs[i]})
		if algs[i] == nil {
			panic(fmt.Sprintf("live: factory returned nil algorithm for node %d", i))
		}
	}

	if cfg.MetricsInterval > 0 && cfg.MetricsOut != nil {
		// The exposition goroutine exits on cancel; senders.Wait below
		// guarantees it is gone before Run returns the result.
		rt.senders.Add(1)
		go func() {
			defer rt.senders.Done()
			rt.expose(cfg.MetricsInterval, cfg.MetricsOut)
		}()
	}

	// Node event loops: Start, then serve the mailbox until close.
	for i := 0; i < n; i++ {
		rt.wg.Add(1)
		go func(i int) {
			defer rt.wg.Done()
			api := &liveAPI{rt: rt, node: i}
			algs[i].Start(api)
			for {
				ev, ok := rt.boxes[i].Pop()
				if !ok {
					return
				}
				if ev.ack {
					api.inflight = false
					algs[i].OnAck(ev.msg)
				} else {
					algs[i].OnReceive(ev.msg)
				}
			}
		}(i)
	}

	var err error
	select {
	case <-rt.allDecided:
	case <-time.After(timeout):
		err = ErrTimeout
	case <-ctx.Done():
		err = ctx.Err()
	}

	cancel()
	for _, b := range rt.boxes {
		b.Close()
	}
	rt.wg.Wait()
	rt.senders.Wait()

	rt.resMu.Lock()
	rt.res.Elapsed = time.Since(rt.started)
	out := rt.res
	rt.resMu.Unlock()
	return out, err
}
