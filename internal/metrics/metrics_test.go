package metrics_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/absmac/absmac/internal/metrics"
	"github.com/absmac/absmac/internal/stats"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := metrics.New()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Set(3)
	if got, high := g.Value(), g.High(); got != 3 || high != 7 {
		t.Fatalf("gauge = (%d, high %d), want (3, high 7)", got, high)
	}
}

func TestRegistrationDedupAndKindMismatch(t *testing.T) {
	r := metrics.New()
	a := r.Counter("shared")
	b := r.Counter("shared")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Fatalf("deduped counter = %d, want 2 (handles must share the slot)", got)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("shared")
}

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *metrics.Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Inc()
	c.Add(3)
	g.Set(9)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || g.High() != 0 || h.Count() != 0 {
		t.Fatal("disabled handles must read zero")
	}
	if r.Len() != 0 || r.Snapshot() != nil {
		t.Fatal("nil registry must be empty")
	}
	r.Reset()
	r.Merge(metrics.New())
	var b strings.Builder
	if err := r.WriteText(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil WriteText wrote %q, err %v", b.String(), err)
	}
}

// TestZeroHandleIsDisabled pins the zero-cost-when-off contract's other
// half: a zero-value handle (what instrumented code holds when no registry
// was configured) no-ops without a registry ever existing.
func TestZeroHandleIsDisabled(t *testing.T) {
	var c metrics.Counter
	var g metrics.Gauge
	var h metrics.Histogram
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(50) != 0 {
		t.Fatal("zero handles must no-op")
	}
}

func TestResetKeepsRegistrations(t *testing.T) {
	r := metrics.New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(10)
	g.Set(20)
	h.Observe(30)
	r.Reset()
	if r.Len() != 3 {
		t.Fatalf("Len after Reset = %d, want 3", r.Len())
	}
	if c.Value() != 0 || g.Value() != 0 || g.High() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset must zero every slot")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("handle must stay live across Reset")
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	r := metrics.New()
	r.Counter("zeta")
	r.Gauge("alpha")
	r.Histogram("mid")
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d samples, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not name-sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := "alpha 0 high=0\nmid count=0 sum=0 p50=0 p99=0\nzeta 0\n"
	if b.String() != want {
		t.Fatalf("WriteText = %q, want %q", b.String(), want)
	}
}

func TestMergeCountersAndGauges(t *testing.T) {
	a, b := metrics.New(), metrics.New()
	a.Counter("c").Add(3)
	b.Counter("c").Add(4)
	b.Counter("only_b").Add(1)
	ga, gb := a.Gauge("g"), b.Gauge("g")
	ga.Set(10)
	ga.Set(2)
	gb.Set(5)
	a.Merge(b)
	if got := a.Counter("c").Value(); got != 7 {
		t.Fatalf("merged counter = %d, want 7", got)
	}
	if got := a.Counter("only_b").Value(); got != 1 {
		t.Fatalf("merged new slot = %d, want 1", got)
	}
	g := a.Gauge("g")
	if g.Value() != 5 || g.High() != 10 {
		t.Fatalf("merged gauge = (%d, high %d), want (5, high 10)", g.Value(), g.High())
	}
}

// buckets returns the histogram of samples as one fresh registry histogram.
func histOf(samples []int64) metrics.Histogram {
	h := metrics.New().Histogram("h")
	for _, v := range samples {
		h.Observe(v)
	}
	return h
}

// TestHistogramMergeEqualsConcat is the quick-check half of the
// stats/histogram interplay satellite: for seeded random sample splits,
// merging the histograms of the two halves is bucket-for-bucket equal to
// the histogram of the concatenation.
func TestHistogramMergeEqualsConcat(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n1, n2 := rng.Intn(200), rng.Intn(200)
		draw := func(n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				// Mix magnitudes so every bucket regime appears: small
				// ints, mid-range, and the occasional huge value.
				switch rng.Intn(3) {
				case 0:
					out[i] = int64(rng.Intn(8))
				case 1:
					out[i] = int64(rng.Intn(1 << 20))
				default:
					out[i] = rng.Int63()
				}
			}
			return out
		}
		s1, s2 := draw(n1), draw(n2)

		ra, rb := metrics.New(), metrics.New()
		ha, hb := ra.Histogram("h"), rb.Histogram("h")
		for _, v := range s1 {
			ha.Observe(v)
		}
		for _, v := range s2 {
			hb.Observe(v)
		}
		ra.Merge(rb)

		want := histOf(append(append([]int64(nil), s1...), s2...))
		if ha.Count() != want.Count() || ha.Sum() != want.Sum() {
			t.Fatalf("seed %d: merged count/sum = %d/%d, want %d/%d",
				seed, ha.Count(), ha.Sum(), want.Count(), want.Sum())
		}
		gb, wb := ha.Buckets(), want.Buckets()
		for i := range gb {
			if gb[i] != wb[i] {
				t.Fatalf("seed %d: bucket %d = %d, want %d", seed, i, gb[i], wb[i])
			}
		}
	}
}

// TestQuantileBracketsPercentile pins the relation between the histogram's
// coarsened quantile and stats.Percentile over the raw samples: for every
// p, the exact percentile falls inside the power-of-two bucket whose upper
// bound the histogram reports.
func TestQuantileBracketsPercentile(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed * 7919))
		n := 1 + rng.Intn(300)
		samples := make([]int64, n)
		fs := make([]float64, n)
		for i := range samples {
			samples[i] = int64(rng.Intn(1 << 16))
			fs[i] = float64(samples[i])
		}
		h := histOf(samples)
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 100} {
			upper := h.Quantile(p)
			exact := stats.Percentile(fs, p)
			if exact > float64(upper) {
				t.Fatalf("seed %d p=%v: exact percentile %v above bucket upper bound %d", seed, p, exact, upper)
			}
			// The exact value must lie within the reported bucket: no
			// more than one power of two below its upper bound.
			lower := float64(0)
			if upper > 0 {
				lower = float64(upper+1) / 2
			}
			if exact < lower {
				t.Fatalf("seed %d p=%v: exact percentile %v below bucket lower bound %v (upper %d)", seed, p, exact, lower, upper)
			}
		}
	}
}

func TestBucketUpperEdges(t *testing.T) {
	if got := metrics.BucketUpper(0); got != 0 {
		t.Fatalf("BucketUpper(0) = %d, want 0", got)
	}
	if got := metrics.BucketUpper(1); got != 1 {
		t.Fatalf("BucketUpper(1) = %d, want 1", got)
	}
	if got := metrics.BucketUpper(10); got != 1023 {
		t.Fatalf("BucketUpper(10) = %d, want 1023", got)
	}
	if got := metrics.BucketUpper(63); got != math.MaxInt64 {
		t.Fatalf("BucketUpper(63) = %d, want MaxInt64", got)
	}
	h := metrics.New().Histogram("h")
	h.Observe(-5)
	h.Observe(0)
	h.Observe(math.MaxInt64)
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	b := h.Buckets()
	if b[0] != 2 || b[63] != 1 {
		t.Fatalf("edge buckets = b[0]=%d b[63]=%d, want 2 and 1", b[0], b[63])
	}
	if got := h.Quantile(100); got != math.MaxInt64 {
		t.Fatalf("p100 = %d, want MaxInt64", got)
	}
}
