// Package metrics is the repository's allocation-free, deterministic
// metrics layer: fixed-slot counters, gauges with high-water tracking and
// power-of-two-bucket histograms, registered once per engine Reset and
// read back in sorted registration order.
//
// Design rules, all load-bearing for the determinism contract:
//
//   - Handles are values. Counter/Gauge/Histogram are two-word structs
//     {registry, slot}; every mutator no-ops when the registry pointer is
//     nil, so code paths instrument unconditionally and a disabled
//     registry costs one predictable branch — no allocation, no interface
//     dispatch, no build tags. The zero handle is the disabled handle.
//   - Registration deduplicates by name: registering an existing name
//     with the same kind returns a handle to the existing slot (this is
//     how n nodes share one "proposals" counter), and a kind mismatch
//     panics loudly. Per-run cost is therefore O(registered slots), never
//     O(events): after the first Reset of a reused engine every
//     registration is a map hit and Reset zeroes a flat slice.
//   - Export never ranges a map. The registry maintains a name-sorted
//     index slice incrementally at registration time; Snapshot and
//     WriteText iterate that slice, so detlint's maporder rule holds by
//     construction and identical runs export byte-identical text.
//   - The package is wall-clock-free and seedless. Timestamped exposition
//     (the live/netmac substrates) prefixes its own stamp line before
//     calling WriteText; nothing here calls time.Now.
//
// A Registry is not goroutine-safe: one registry per engine (or per sweep
// worker), merged with Merge where aggregation is wanted.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
)

type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// NumBuckets is the fixed bucket count of every histogram: bucket 0 holds
// observations <= 0 and bucket i (1..63) holds values v with
// bits.Len64(v) == i, i.e. the power-of-two range [2^(i-1), 2^i).
const NumBuckets = 64

type slot struct {
	name string
	k    kind
	val  int64 // counter total, or gauge current value
	high int64 // gauge high-water mark
	hist *histData
}

type histData struct {
	count   int64
	sum     int64
	buckets [NumBuckets]int64
}

// Registry owns a fixed set of named metric slots. The zero value of
// *Registry (nil) is the disabled registry: every registration returns a
// disabled handle and every export is empty. Create enabled registries
// with New.
type Registry struct {
	slots []slot
	index map[string]int
	// order holds slot indices sorted by name, maintained by insertion at
	// registration time so no export path ever ranges the index map.
	order []int
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{index: make(map[string]int)}
}

// register interns a slot for name, creating it on first sight and
// panicking on a kind mismatch with an earlier registration.
func (r *Registry) register(name string, k kind) int {
	if i, ok := r.index[name]; ok {
		if r.slots[i].k != k {
			panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s", name, r.slots[i].k, k))
		}
		return i
	}
	i := len(r.slots)
	s := slot{name: name, k: k}
	if k == kindHistogram {
		s.hist = &histData{}
	}
	r.slots = append(r.slots, s)
	r.index[name] = i
	// Insert i into the name-sorted order slice (registration is rare and
	// the slice is small; linear insertion keeps this dependency-free).
	pos := len(r.order)
	for j, oi := range r.order {
		if r.slots[oi].name > name {
			pos = j
			break
		}
	}
	r.order = append(r.order, 0)
	copy(r.order[pos+1:], r.order[pos:])
	r.order[pos] = i
	return i
}

// Counter registers (or re-opens) a monotonically increasing counter.
// On a nil registry it returns the disabled handle.
func (r *Registry) Counter(name string) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{r: r, i: r.register(name, kindCounter)}
}

// Gauge registers (or re-opens) a gauge with high-water tracking.
// On a nil registry it returns the disabled handle.
func (r *Registry) Gauge(name string) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{r: r, i: r.register(name, kindGauge)}
}

// Histogram registers (or re-opens) a power-of-two-bucket histogram.
// On a nil registry it returns the disabled handle.
func (r *Registry) Histogram(name string) Histogram {
	if r == nil {
		return Histogram{}
	}
	return Histogram{r: r, i: r.register(name, kindHistogram)}
}

// Reset zeroes every slot's value while keeping all registrations, so a
// reused engine pays O(registered slots) per run. Nil-safe.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for i := range r.slots {
		s := &r.slots[i]
		s.val, s.high = 0, 0
		if s.hist != nil {
			*s.hist = histData{}
		}
	}
}

// Len reports the number of registered slots. Nil-safe.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Counter is a monotonically increasing counter handle. The zero value is
// disabled: every method no-ops (or returns zero).
type Counter struct {
	r *Registry
	i int
}

// Inc adds one.
func (c Counter) Inc() {
	if c.r != nil {
		c.r.slots[c.i].val++
	}
}

// Add adds d (d must be >= 0; counters only go up).
func (c Counter) Add(d int64) {
	if c.r != nil {
		c.r.slots[c.i].val += d
	}
}

// Value returns the current total.
func (c Counter) Value() int64 {
	if c.r == nil {
		return 0
	}
	return c.r.slots[c.i].val
}

// Gauge is a last-value gauge handle that also tracks the highest value
// ever set since the last Reset. The zero value is disabled.
type Gauge struct {
	r *Registry
	i int
}

// Set records v and raises the high-water mark when v exceeds it.
func (g Gauge) Set(v int64) {
	if g.r == nil {
		return
	}
	s := &g.r.slots[g.i]
	s.val = v
	if v > s.high {
		s.high = v
	}
}

// Value returns the last set value.
func (g Gauge) Value() int64 {
	if g.r == nil {
		return 0
	}
	return g.r.slots[g.i].val
}

// High returns the high-water mark.
func (g Gauge) High() int64 {
	if g.r == nil {
		return 0
	}
	return g.r.slots[g.i].high
}

// Histogram is a power-of-two-bucket histogram handle. The zero value is
// disabled.
type Histogram struct {
	r *Registry
	i int
}

// bucketOf maps an observation to its bucket: <= 0 lands in bucket 0,
// positive v in bucket bits.Len64(v) (so bucket i covers [2^(i-1), 2^i)).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpper returns the inclusive upper bound of bucket i — the value a
// quantile read out of that bucket reports.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one sample.
func (h Histogram) Observe(v int64) {
	if h.r == nil {
		return
	}
	d := h.r.slots[h.i].hist
	d.buckets[bucketOf(v)]++
	d.count++
	d.sum += v
}

// Count returns the number of recorded samples.
func (h Histogram) Count() int64 {
	if h.r == nil {
		return 0
	}
	return h.r.slots[h.i].hist.count
}

// Sum returns the sum of recorded samples.
func (h Histogram) Sum() int64 {
	if h.r == nil {
		return 0
	}
	return h.r.slots[h.i].hist.sum
}

// Quantile returns the nearest-rank p-th percentile resolved to its
// bucket's upper bound (the same rank convention as stats.Percentile,
// coarsened to power-of-two resolution). p is clamped to [0, 100]; an
// empty histogram reports 0.
func (h Histogram) Quantile(p float64) int64 {
	if h.r == nil {
		return 0
	}
	d := h.r.slots[h.i].hist
	if d.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(math.Ceil(p / 100 * float64(d.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < NumBuckets; i++ {
		seen += d.buckets[i]
		if seen >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Buckets returns a copy of the bucket counts.
func (h Histogram) Buckets() []int64 {
	if h.r == nil {
		return nil
	}
	d := h.r.slots[h.i].hist
	out := make([]int64, NumBuckets)
	copy(out, d.buckets[:])
	return out
}

// Sample is one exported slot. Exactly the fields meaningful for the kind
// are set: Value for counters; Value and High for gauges; Count, Sum and
// Buckets for histograms.
type Sample struct {
	Name    string
	Kind    string
	Value   int64
	High    int64
	Count   int64
	Sum     int64
	Buckets []int64
}

// Quantile computes the nearest-rank p-quantile from a histogram sample's
// bucket counts — the same convention as Histogram.Quantile, for consumers
// holding a Sample rather than a live handle (the harness's per-cell
// aggregation rows). Returns 0 for non-histogram or empty samples.
func (s Sample) Quantile(p float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(math.Ceil(p / 100 * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(len(s.Buckets) - 1)
}

// Snapshot returns every slot as a Sample, sorted by name. The sort order
// comes from the incrementally maintained order slice — no map iteration.
// Nil-safe (returns nil).
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	out := make([]Sample, 0, len(r.order))
	for _, i := range r.order {
		s := &r.slots[i]
		smp := Sample{Name: s.name, Kind: s.k.String()}
		switch s.k {
		case kindCounter:
			smp.Value = s.val
		case kindGauge:
			smp.Value, smp.High = s.val, s.high
		case kindHistogram:
			smp.Count, smp.Sum = s.hist.count, s.hist.sum
			smp.Buckets = make([]int64, NumBuckets)
			copy(smp.Buckets, s.hist.buckets[:])
		}
		out = append(out, smp)
	}
	return out
}

// WriteText renders every slot as one line, sorted by name:
//
//	name value                                  (counter)
//	name value high=H                           (gauge)
//	name count=N sum=S p50=A p99=B              (histogram)
//
// Identical registries render byte-identically. Nil-safe (writes nothing).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, i := range r.order {
		s := &r.slots[i]
		var err error
		switch s.k {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", s.name, s.val)
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d high=%d\n", s.name, s.val, s.high)
		case kindHistogram:
			h := Histogram{r: r, i: i}
			_, err = fmt.Fprintf(w, "%s count=%d sum=%d p50=%d p99=%d\n",
				s.name, s.hist.count, s.hist.sum, h.Quantile(50), h.Quantile(99))
		}
		if err != nil {
			return fmt.Errorf("metrics: write: %w", err)
		}
	}
	return nil
}

// Merge folds src into r: counters add, gauges keep src's last value and
// the maximum of the two high-water marks, histograms add bucket-wise.
// Slots missing from r are registered. Merging histograms built from two
// sample sets yields exactly the histogram of the concatenated samples
// (pinned by TestHistogramMergeEqualsConcat). Nil-safe in both directions.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	for si := range src.slots {
		ss := &src.slots[si]
		di := r.register(ss.name, ss.k)
		ds := &r.slots[di]
		switch ss.k {
		case kindCounter:
			ds.val += ss.val
		case kindGauge:
			ds.val = ss.val
			if ss.high > ds.high {
				ds.high = ss.high
			}
		case kindHistogram:
			ds.hist.count += ss.hist.count
			ds.hist.sum += ss.hist.sum
			for b := range ss.hist.buckets {
				ds.hist.buckets[b] += ss.hist.buckets[b]
			}
		}
	}
}
