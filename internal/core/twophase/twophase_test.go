package twophase

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

func run(t *testing.T, n int, inputs []amac.Value, sched sim.Scheduler) *sim.Result {
	t.Helper()
	return sim.Run(sim.Config{
		Graph:           graph.Clique(n),
		Inputs:          inputs,
		Factory:         Factory,
		Scheduler:       sched,
		StopWhenDecided: true,
		Audit:           true,
	})
}

func bits(n, mask int) []amac.Value {
	out := make([]amac.Value, n)
	for i := range out {
		if mask&(1<<i) != 0 {
			out[i] = 1
		}
	}
	return out
}

func TestUnanimousSynchronous(t *testing.T) {
	for _, v := range []amac.Value{0, 1} {
		inputs := []amac.Value{v, v, v, v}
		res := run(t, 4, inputs, sim.Synchronous{})
		rep := consensus.Check(inputs, res)
		if !rep.OK() {
			t.Fatalf("input %d: %v", v, rep.Errors)
		}
		if rep.Value != v {
			t.Fatalf("input %d: decided %d", v, rep.Value)
		}
		// Two synchronous rounds: phase-1 ack at 1, phase-2 ack at 2.
		if res.MaxDecideTime != 2 {
			t.Fatalf("decision time %d, want 2", res.MaxDecideTime)
		}
	}
}

func TestMixedSynchronous(t *testing.T) {
	inputs := []amac.Value{0, 1, 0, 1, 1}
	res := run(t, 5, inputs, sim.Synchronous{})
	rep := consensus.Check(inputs, res)
	if !rep.OK() {
		t.Fatalf("%v", rep.Errors)
	}
	// Under the synchronous scheduler every node sees both values before
	// its phase-1 ack, so all go bivalent and the default 1 wins.
	if rep.Value != 1 {
		t.Fatalf("decided %d, want default 1", rep.Value)
	}
}

func TestSingleNode(t *testing.T) {
	for _, v := range []amac.Value{0, 1} {
		inputs := []amac.Value{v}
		res := run(t, 1, inputs, sim.Synchronous{})
		rep := consensus.Check(inputs, res)
		if !rep.OK() || rep.Value != v {
			t.Fatalf("single node input %d: report %+v", v, rep)
		}
	}
}

// TestEarlyDeciderForcesZero builds the adversarial situation from the
// proof of Theorem 4.1: node 0 (input 0) completes both phases before the
// 1-valued nodes complete phase 1, so node 0 reaches status decided(0) and
// decides 0; its phase-2 message lands in the other nodes' R1, and they
// must still follow it to 0. This exercises the R1-union-R2 scan (see the
// package comment on the paper's line 23).
func TestEarlyDeciderForcesZero(t *testing.T) {
	n := 5
	inputs := []amac.Value{0, 1, 1, 1, 1}
	slow := map[int]bool{}
	for i := 1; i < n; i++ {
		slow[i] = true
	}
	res := run(t, n, inputs, sim.SlowSubset{Base: sim.Synchronous{}, Slow: slow, Factor: 16})
	rep := consensus.Check(inputs, res)
	if !rep.OK() {
		t.Fatalf("%v", rep.Errors)
	}
	if rep.Value != 0 {
		t.Fatalf("decided %d, want 0 (early decider must win)", rep.Value)
	}
	// Node 0 must have decided first and strictly before the slow nodes'
	// phase-1 acks (t=16): it decided at its phase-2 ack, t=2.
	if res.DecideTime[0] != 2 {
		t.Fatalf("early decider decided at %d, want 2", res.DecideTime[0])
	}
}

// TestExhaustiveSmallCliques checks every input combination on cliques of
// 2..5 nodes under several schedulers.
func TestExhaustiveSmallCliques(t *testing.T) {
	scheds := map[string]func() sim.Scheduler{
		"sync":      func() sim.Scheduler { return sim.Synchronous{} },
		"maxdelay":  func() sim.Scheduler { return sim.MaxDelay{F: 5} },
		"edgeorder": func() sim.Scheduler { return &sim.EdgeOrder{MaxDegree: 5} },
		"random":    func() sim.Scheduler { return sim.NewRandom(7, 99) },
	}
	for n := 2; n <= 5; n++ {
		for mask := 0; mask < 1<<n; mask++ {
			inputs := bits(n, mask)
			for name, mk := range scheds {
				res := run(t, n, inputs, mk())
				rep := consensus.Check(inputs, res)
				if !rep.OK() {
					t.Fatalf("n=%d mask=%b sched=%s: %v", n, mask, name, rep.Errors)
				}
			}
		}
	}
}

// TestRandomCensus sweeps sizes and seeds under the random scheduler and
// verifies both correctness and the O(Fack) bound of Theorem 4.1: decisions
// within 4*Fack (phase-1 ack + phase-2 ack + witness phase-2 waits, each at
// most Fack after the enabling event, with a spare slot).
func TestRandomCensus(t *testing.T) {
	for _, n := range []int{2, 3, 8, 17, 33} {
		for _, f := range []int64{1, 3, 9} {
			for seed := int64(0); seed < 8; seed++ {
				inputs := make([]amac.Value, n)
				for i := range inputs {
					if (seed+int64(i))%3 == 0 {
						inputs[i] = 1
					}
				}
				res := run(t, n, inputs, sim.NewRandom(f, seed))
				rep := consensus.Check(inputs, res)
				if !rep.OK() {
					t.Fatalf("n=%d f=%d seed=%d: %v", n, f, seed, rep.Errors)
				}
				if res.MaxDecideTime > 4*f {
					t.Fatalf("n=%d f=%d seed=%d: decision time %d exceeds 4*Fack=%d", n, f, seed, res.MaxDecideTime, 4*f)
				}
			}
		}
	}
}

// TestCrashLosesTerminationNotSafety reproduces the consequence of
// Theorem 3.2 for this algorithm: with a crash failure it can fail to
// terminate (bivalent nodes wait on a dead witness), but agreement and
// validity hold among any nodes that do decide.
func TestCrashLosesTerminationNotSafety(t *testing.T) {
	n := 4
	foundStall := false
	for crashAt := int64(1); crashAt <= 6 && !foundStall; crashAt++ {
		inputs := []amac.Value{0, 1, 1, 1}
		res := sim.Run(sim.Config{
			Graph:     graph.Clique(n),
			Inputs:    inputs,
			Factory:   Factory,
			Scheduler: &sim.EdgeOrder{MaxDegree: n},
			Crashes:   []sim.Crash{{Node: 0, At: crashAt}},
			Audit:     true,
		})
		rep := consensus.Check(inputs, res)
		// Safety must hold unconditionally.
		if !rep.Agreement {
			t.Fatalf("crashAt=%d: agreement violated: %v", crashAt, rep.Errors)
		}
		if rep.SomeoneDecided && !rep.Validity {
			t.Fatalf("crashAt=%d: validity violated: %v", crashAt, rep.Errors)
		}
		if !rep.Termination {
			foundStall = true
		}
	}
	if !foundStall {
		t.Fatal("no crash time caused a termination failure; expected at least one (Theorem 3.2)")
	}
}

func TestNonBinaryInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2)
}

func TestDecidedAccessor(t *testing.T) {
	alg := New(1)
	if _, ok := alg.Decided(); ok {
		t.Fatal("fresh instance reports decided")
	}
	inputs := []amac.Value{1, 1}
	algs := make([]*TwoPhase, 0, 2)
	factory := func(cfg amac.NodeConfig) amac.Algorithm {
		a := New(cfg.Input)
		algs = append(algs, a)
		return a
	}
	sim.Run(sim.Config{
		Graph:           graph.Clique(2),
		Inputs:          inputs,
		Factory:         factory,
		Scheduler:       sim.Synchronous{},
		StopWhenDecided: true,
	})
	for i, a := range algs {
		v, ok := a.Decided()
		if !ok || v != 1 {
			t.Fatalf("node %d: Decided() = %d,%v", i, v, ok)
		}
	}
}

func TestMessageIDCounts(t *testing.T) {
	if (Phase1{}).IDCount() != 1 || (Phase2{}).IDCount() != 1 {
		t.Fatal("two-phase messages must carry exactly one id")
	}
}

// TestTimeScalesWithFackNotN is the shape check behind experiment E5:
// decision time grows linearly in Fack and stays flat in n.
func TestTimeScalesWithFackNotN(t *testing.T) {
	time := func(n int, f int64) int64 {
		inputs := bits(n, 0x55555555)
		res := run(t, n, inputs, sim.NewRandom(f, 42))
		rep := consensus.Check(inputs, res)
		if !rep.OK() {
			t.Fatalf("n=%d f=%d: %v", n, f, rep.Errors)
		}
		return res.MaxDecideTime
	}
	for _, n := range []int{4, 16, 64} {
		t4, t32 := time(n, 4), time(n, 32)
		if t32 > 4*32 || t4 > 4*4 {
			t.Fatalf("n=%d: times %d (f=4), %d (f=32) exceed the 4*Fack envelope", n, t4, t32)
		}
	}
	// Flat in n at fixed Fack: compare a small and a large clique.
	small, large := time(4, 16), time(96, 16)
	if large > 4*16 || small > 4*16 {
		t.Fatalf("decision times small=%d large=%d exceed 4*Fack=64", small, large)
	}
}

func ExampleFactory() {
	inputs := []amac.Value{0, 1, 0}
	res := sim.Run(sim.Config{
		Graph:           graph.Clique(3),
		Inputs:          inputs,
		Factory:         Factory,
		Scheduler:       sim.Synchronous{},
		StopWhenDecided: true,
	})
	rep := consensus.Check(inputs, res)
	fmt.Println("agreed:", rep.OK(), "value:", rep.Value)
	// Output: agreed: true value: 1
}

// TestConsensusProperty drives two-phase through testing/quick: arbitrary
// clique sizes, input masks, Fack bounds, and scheduler seeds must all
// satisfy the consensus properties and the Theorem 4.1 time envelope.
func TestConsensusProperty(t *testing.T) {
	f := func(nRaw uint8, mask uint16, fRaw uint8, seed int64) bool {
		n := int(nRaw%12) + 2
		fack := int64(fRaw%20) + 1
		inputs := bits(n, int(mask))
		res := sim.Run(sim.Config{
			Graph:           graph.Clique(n),
			Inputs:          inputs,
			Factory:         Factory,
			Scheduler:       sim.NewRandom(fack, seed),
			StopWhenDecided: true,
			Audit:           true,
		})
		rep := consensus.Check(inputs, res)
		return rep.OK() && res.MaxDecideTime <= 4*fack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
