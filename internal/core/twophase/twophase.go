// Package twophase implements Algorithm 1 of the paper: two-phase
// consensus for single-hop (clique) topologies in the abstract MAC layer
// model.
//
// The algorithm decides in O(Fack) time (two broadcast/ack cycles plus the
// witness wait, Theorem 4.1), assumes unique ids, and — notably — needs no
// knowledge of the network size or the participant set, which separates
// the abstract MAC layer model from the asynchronous broadcast model of
// Abboud et al., where consensus is impossible under those assumptions.
//
// Operation (for node u with initial value v):
//
//	Phase 1: broadcast <phase1, id_u, v>; gather messages until the ack.
//	  If evidence of a different initial value arrived by then (a phase-1
//	  message with 1-v or a bivalent phase-2 message), set status to
//	  bivalent, otherwise to decided(v).
//	Phase 2: broadcast <phase2, id_u, status>; gather messages until the
//	  ack. A decided node then decides its own value and terminates. A
//	  bivalent node forms the witness set W of every id heard so far and
//	  waits until a phase-2 message from every witness has arrived; it
//	  then decides 0 when any decided(0) status was seen, else 1.
//
// One deliberate deviation from the paper's listing: line 23 of Algorithm 1
// scans only R2 (messages recorded during phase 2) for decided(0)
// statuses, but the agreement argument in the proof of Theorem 4.1
// requires a bivalent node to notice a decided(0) status wherever it was
// recorded — a decided node's phase-2 message can legitimately arrive
// while a slow bivalent node is still in phase 1, landing in R1. We
// therefore scan R1 ∪ R2 (i.e. every message seen), which is what the
// proof's case analysis actually uses.
package twophase

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
)

// Phase1 is the first-phase message <phase 1, id, v>.
type Phase1 struct {
	From amac.NodeID
	V    amac.Value
}

// IDCount implements amac.Message.
func (Phase1) IDCount() int { return 1 }

// Phase2 is the second-phase message <phase 2, id, status>, where status is
// either bivalent (Decided=false) or decided(V) (Decided=true).
type Phase2 struct {
	From    amac.NodeID
	Decided bool
	V       amac.Value
}

// IDCount implements amac.Message.
func (Phase2) IDCount() int { return 1 }

// phase tracks the node's progress through the algorithm.
type phase int

const (
	phaseOne     phase = iota + 1 // awaiting phase-1 ack
	phaseTwo                      // awaiting phase-2 ack
	phaseWitness                  // bivalent: awaiting witness phase-2 messages
	phaseDone
)

// TwoPhase is the per-node state machine. Create instances with New.
type TwoPhase struct {
	api   amac.API
	input amac.Value

	phase         phase
	statusDecided bool // status chosen at the phase-1 ack

	// sawOtherValue records phase-1 evidence of the value 1-input;
	// sawBivalent records any bivalent phase-2 message. Both are only
	// consulted at the phase-1 ack, matching R1 in the listing.
	sawOtherValue bool
	sawBivalent   bool

	// heard is the set of ids seen in any message (the senders behind
	// R1 and R2); witnesses is its frozen copy W at the phase-2 ack.
	heard     map[amac.NodeID]bool
	witnesses map[amac.NodeID]bool

	// phase2From records which ids have delivered a phase-2 message;
	// sawDecidedZero records whether any decided(0) status was seen.
	phase2From     map[amac.NodeID]bool
	sawDecidedZero bool

	decided  bool
	decision amac.Value
}

// New returns a two-phase consensus instance for the given binary input.
func New(input amac.Value) *TwoPhase {
	if input != 0 && input != 1 {
		panic(fmt.Sprintf("twophase: input %d is not binary", input))
	}
	return &TwoPhase{
		input:      input,
		heard:      make(map[amac.NodeID]bool),
		phase2From: make(map[amac.NodeID]bool),
	}
}

// Factory adapts New to the amac.Factory shape.
func Factory(cfg amac.NodeConfig) amac.Algorithm { return New(cfg.Input) }

// Start implements amac.Algorithm.
func (a *TwoPhase) Start(api amac.API) {
	a.api = api
	a.phase = phaseOne
	a.heard[api.ID()] = true // R1 starts with u's own phase-1 message
	api.Broadcast(Phase1{From: api.ID(), V: a.input})
}

// OnReceive implements amac.Algorithm.
func (a *TwoPhase) OnReceive(m amac.Message) {
	switch msg := m.(type) {
	case Phase1:
		a.heard[msg.From] = true
		if msg.V != a.input {
			a.sawOtherValue = true
		}
	case Phase2:
		a.heard[msg.From] = true
		a.phase2From[msg.From] = true
		if !msg.Decided {
			a.sawBivalent = true
		} else if msg.V == 0 {
			a.sawDecidedZero = true
		}
	default:
		panic(fmt.Sprintf("twophase: unexpected message type %T", m))
	}
	if a.phase == phaseWitness {
		a.maybeDecide()
	}
}

// OnAck implements amac.Algorithm.
func (a *TwoPhase) OnAck(m amac.Message) {
	switch a.phase {
	case phaseOne:
		// Choose the status from the evidence in R1 (listing line 8).
		a.statusDecided = !a.sawOtherValue && !a.sawBivalent
		a.phase = phaseTwo
		own := Phase2{From: a.api.ID(), Decided: a.statusDecided, V: a.input}
		// R2 starts with u's own phase-2 message (listing line 15).
		a.phase2From[own.From] = true
		if own.Decided && own.V == 0 {
			a.sawDecidedZero = true
		}
		a.api.Broadcast(own)
	case phaseTwo:
		if a.statusDecided {
			// A decided node decides its own value right after its
			// phase-2 broadcast completes.
			a.phase = phaseDone
			a.decide(a.input)
			return
		}
		// Freeze the witness set W: every id heard so far.
		a.witnesses = make(map[amac.NodeID]bool, len(a.heard))
		for id := range a.heard {
			a.witnesses[id] = true
		}
		a.phase = phaseWitness
		a.maybeDecide()
	default:
		panic(fmt.Sprintf("twophase: unexpected ack in phase %d", a.phase))
	}
}

// maybeDecide completes the bivalent branch once every witness has
// delivered a phase-2 message.
func (a *TwoPhase) maybeDecide() {
	for id := range a.witnesses {
		if !a.phase2From[id] {
			return
		}
	}
	a.phase = phaseDone
	if a.sawDecidedZero {
		a.decide(0)
		return
	}
	a.decide(1)
}

func (a *TwoPhase) decide(v amac.Value) {
	if a.decided {
		return
	}
	a.decided = true
	a.decision = v
	a.api.Decide(v)
}

// Decided implements amac.Decider.
func (a *TwoPhase) Decided() (amac.Value, bool) { return a.decision, a.decided }

var (
	_ amac.Algorithm = (*TwoPhase)(nil)
	_ amac.Decider   = (*TwoPhase)(nil)
	_ amac.Message   = Phase1{}
	_ amac.Message   = Phase2{}
)
