package wpaxos

import (
	"testing"
	"testing/quick"

	"github.com/absmac/absmac/internal/amac"
)

func TestProposalNumOrdering(t *testing.T) {
	cases := []struct {
		a, b ProposalNum
		less bool
	}{
		{ProposalNum{1, 1}, ProposalNum{2, 1}, true},
		{ProposalNum{2, 1}, ProposalNum{1, 9}, false},
		{ProposalNum{1, 1}, ProposalNum{1, 2}, true},
		{ProposalNum{1, 2}, ProposalNum{1, 2}, false},
		{ProposalNum{}, ProposalNum{1, 1}, true},
	}
	for _, tc := range cases {
		if got := tc.a.Less(tc.b); got != tc.less {
			t.Errorf("%v < %v = %v, want %v", tc.a, tc.b, got, tc.less)
		}
	}
	if m := (ProposalNum{1, 3}).Max(ProposalNum{1, 5}); m != (ProposalNum{1, 5}) {
		t.Errorf("Max = %v", m)
	}
	if !(ProposalNum{}).IsZero() || (ProposalNum{1, 0}).IsZero() {
		t.Error("IsZero misbehaves")
	}
}

func TestMaxPrev(t *testing.T) {
	a := &Proposal{Num: ProposalNum{1, 1}, Val: 0}
	b := &Proposal{Num: ProposalNum{2, 1}, Val: 1}
	if maxPrev(nil, nil) != nil {
		t.Error("maxPrev(nil,nil) != nil")
	}
	if maxPrev(a, nil) != a || maxPrev(nil, b) != b {
		t.Error("maxPrev with one nil")
	}
	if maxPrev(a, b) != b || maxPrev(b, a) != b {
		t.Error("maxPrev picks wrong proposal")
	}
}

func TestChangeService(t *testing.T) {
	var s changeService
	s.init()
	if s.queue != nil {
		t.Fatal("fresh change service has queued message")
	}
	s.onChange(10, 4)
	if m := s.pop(); m == nil || m.T != 10 || m.ID != 4 {
		t.Fatalf("queued %v", m)
	}
	// pop is sticky: the newest change stays queued until superseded.
	if m := s.pop(); m == nil || m.T != 10 {
		t.Fatalf("sticky pop %v", m)
	}
	if s.receive(ChangeMsg{T: 9, ID: 1}) {
		t.Fatal("stale timestamp accepted")
	}
	if s.receive(ChangeMsg{T: 10, ID: 1}) {
		t.Fatal("equal timestamp accepted")
	}
	if !s.receive(ChangeMsg{T: 11, ID: 1}) {
		t.Fatal("fresh timestamp rejected")
	}
}

func TestTreeServiceBasics(t *testing.T) {
	var s treeService
	s.init(1)
	if s.distTo(1) != 0 || s.parentTo(1) != 1 {
		t.Fatal("self root not initialized")
	}
	if s.distTo(99) != -1 || s.parentTo(99) != amac.NoID {
		t.Fatal("unknown root should be infinite")
	}
	// Adopt a search for root 7 at 3 hops.
	if !s.receive(SearchMsg{Root: 7, Hops: 3, Sender: 4}, 7) {
		t.Fatal("fresh search rejected")
	}
	if s.distTo(7) != 3 || s.parentTo(7) != 4 {
		t.Fatalf("dist=%d parent=%d", s.distTo(7), s.parentTo(7))
	}
	// Worse estimate rejected, better adopted.
	if s.receive(SearchMsg{Root: 7, Hops: 5, Sender: 9}, 7) {
		t.Fatal("worse search accepted")
	}
	if !s.receive(SearchMsg{Root: 7, Hops: 1, Sender: 2}, 7) {
		t.Fatal("better search rejected")
	}
	if s.distTo(7) != 1 || s.parentTo(7) != 2 {
		t.Fatalf("after improvement: dist=%d parent=%d", s.distTo(7), s.parentTo(7))
	}
	// A search about the node itself never improves dist 0.
	if s.receive(SearchMsg{Root: 1, Hops: 2, Sender: 3}, 7) {
		t.Fatal("self-root search accepted")
	}
}

func TestTreeQueueReplacesDominated(t *testing.T) {
	var s treeService
	s.init(1)
	s.pop() // drain own search
	s.receive(SearchMsg{Root: 7, Hops: 3, Sender: 4}, 0)
	s.receive(SearchMsg{Root: 7, Hops: 1, Sender: 2}, 0)
	// Only one pending message for root 7 remains, the improved relay
	// (hops 2).
	m, ok := s.pop()
	if !ok || m.Root != 7 || m.Hops != 2 {
		t.Fatalf("queued message %+v, want root 7 hops 2", m)
	}
	// With the pending queue drained, pop turns sticky: it re-advertises
	// the best known distance per root, cycling (roots sorted: 1, 7).
	if m, ok = s.pop(); !ok || m.Root != 1 || m.Hops != 1 {
		t.Fatalf("sticky pop %+v, want root 1 hops 1", m)
	}
	if m, ok = s.pop(); !ok || m.Root != 7 || m.Hops != 2 {
		t.Fatalf("sticky pop %+v, want root 7 hops 2", m)
	}
	if m, ok = s.pop(); !ok || m.Root != 1 {
		t.Fatalf("sticky cycle %+v, want wrap to root 1", m)
	}
}

func TestTreeQueueLeaderPriority(t *testing.T) {
	var s treeService
	s.init(1)
	s.pop()
	s.receive(SearchMsg{Root: 5, Hops: 2, Sender: 4}, 9)
	s.receive(SearchMsg{Root: 6, Hops: 2, Sender: 4}, 9)
	s.receive(SearchMsg{Root: 9, Hops: 2, Sender: 4}, 9) // the leader's
	// The leader's message must pop first despite arriving last.
	if m, ok := s.pop(); !ok || m.Root != 9 {
		t.Fatalf("first pop %+v, want leader root 9", m)
	}
	// FIFO order among the rest.
	if m, ok := s.pop(); !ok || m.Root != 5 {
		t.Fatalf("second pop %+v, want root 5", m)
	}
	if m, ok := s.pop(); !ok || m.Root != 6 {
		t.Fatalf("third pop %+v, want root 6", m)
	}
}

func TestTreeQueueReprioritizeOnLeaderChange(t *testing.T) {
	var s treeService
	s.init(1)
	s.pop()
	s.receive(SearchMsg{Root: 5, Hops: 2, Sender: 4}, 5)
	s.receive(SearchMsg{Root: 8, Hops: 2, Sender: 4}, 5)
	s.prioritize(8) // leader changed to 8
	if m, ok := s.pop(); !ok || m.Root != 8 {
		t.Fatalf("pop %+v, want new leader root 8", m)
	}
}

func TestAcceptorPrepare(t *testing.T) {
	var a acceptorState
	pos, prev, committed := a.handlePrepare(ProposalNum{1, 3})
	if !pos || prev != nil || !committed.IsZero() {
		t.Fatalf("first prepare: %v %v %v", pos, prev, committed)
	}
	// A smaller prepare is rejected with the committed number.
	pos, _, committed = a.handlePrepare(ProposalNum{1, 2})
	if pos || committed != (ProposalNum{1, 3}) {
		t.Fatalf("smaller prepare: %v %v", pos, committed)
	}
	// Re-sending the same number is also rejected (not strictly larger).
	pos, _, _ = a.handlePrepare(ProposalNum{1, 3})
	if pos {
		t.Fatal("equal prepare accepted")
	}
}

func TestAcceptorProposeAndPrev(t *testing.T) {
	var a acceptorState
	a.handlePrepare(ProposalNum{1, 3})
	pos, committed := a.handlePropose(ProposalNum{1, 3}, 1)
	if !pos || !committed.IsZero() {
		t.Fatalf("propose at promised number: %v %v", pos, committed)
	}
	// A later prepare reports the accepted proposal.
	pos, prev, _ := a.handlePrepare(ProposalNum{2, 2})
	if !pos || prev == nil || prev.Num != (ProposalNum{1, 3}) || prev.Val != 1 {
		t.Fatalf("prepare after accept: %v %+v", pos, prev)
	}
	// A propose below the promise is rejected.
	pos, committed = a.handlePropose(ProposalNum{1, 9}, 0)
	if pos || committed != (ProposalNum{2, 2}) {
		t.Fatalf("stale propose: %v %v", pos, committed)
	}
}

func TestCountAudit(t *testing.T) {
	a := NewCountAudit()
	p := Proposition{Kind: Prepare, Num: ProposalNum{1, 2}}
	a.addGenerated(p)
	a.addGenerated(p)
	a.addCounted(p, 2)
	if v := a.Violations(); len(v) != 0 {
		t.Fatalf("balanced audit flagged: %v", v)
	}
	a.addCounted(p, 1)
	if v := a.Violations(); len(v) != 1 || v[0] != p {
		t.Fatalf("overcount not flagged: %v", v)
	}
	if a.Propositions() != 1 {
		t.Fatalf("propositions = %d", a.Propositions())
	}
	// A nil audit is a no-op everywhere.
	var nilAudit *CountAudit
	nilAudit.addGenerated(p)
	nilAudit.addCounted(p, 1)
}

func TestCombinedIDCount(t *testing.T) {
	var c Combined
	if c.IDCount() != 0 {
		t.Fatalf("empty combined counts %d ids", c.IDCount())
	}
	full := Combined{
		Leader:   &LeaderMsg{ID: 1},
		Change:   &ChangeMsg{T: 1, ID: 2},
		Search:   &SearchMsg{Root: 3, Hops: 1, Sender: 4},
		Proposer: &ProposerMsg{Kind: Prepare, Num: ProposalNum{1, 5}},
		Response: &ResponseMsg{
			Dest: 6, Prop: Proposition{Kind: Prepare, Num: ProposalNum{1, 5}},
			Prev:      &Proposal{Num: ProposalNum{1, 2}, Val: 1},
			Committed: ProposalNum{2, 2},
		},
		State: &StateMsg{
			Origin:   7,
			Promised: ProposalNum{1, 5},
			Accepted: &Proposal{Num: ProposalNum{1, 2}, Val: 1},
		},
		Decide: &DecideMsg{Val: 1},
	}
	if got := full.IDCount(); got != amac.MaxMessageIDs {
		t.Fatalf("full combined counts %d ids, want the documented max %d", got, amac.MaxMessageIDs)
	}
}

func TestKindStrings(t *testing.T) {
	if Prepare.String() != "prepare" || Propose.String() != "propose" {
		t.Fatal("PropKind strings")
	}
	if PropKind(9).String() != "PropKind(9)" {
		t.Fatal("unknown PropKind string")
	}
	p := Proposition{Kind: Propose, Num: ProposalNum{3, 4}}
	if p.String() != "propose(3,4)" {
		t.Fatalf("proposition string %q", p.String())
	}
}

func TestProposalNumTotalOrderProperty(t *testing.T) {
	// Less must be a strict total order: irreflexive, antisymmetric,
	// transitive, and total; Max must pick the Less-larger operand.
	gen := func(a, b int8, c, d int16) (ProposalNum, ProposalNum) {
		return ProposalNum{Tag: int64(a), ID: amac.NodeID(c)},
			ProposalNum{Tag: int64(b), ID: amac.NodeID(d)}
	}
	f := func(a, b int8, c, d int16) bool {
		p, q := gen(a, b, c, d)
		if p.Less(p) || q.Less(q) {
			return false
		}
		if p == q {
			return !p.Less(q) && !q.Less(p)
		}
		if p.Less(q) == q.Less(p) {
			return false // exactly one must hold for distinct values
		}
		m := p.Max(q)
		if p.Less(q) {
			return m == q
		}
		return m == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestProposalNumTransitivityProperty(t *testing.T) {
	f := func(t1, t2, t3 int8, i1, i2, i3 int16) bool {
		a := ProposalNum{Tag: int64(t1), ID: amac.NodeID(i1)}
		b := ProposalNum{Tag: int64(t2), ID: amac.NodeID(i2)}
		c := ProposalNum{Tag: int64(t3), ID: amac.NodeID(i3)}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
