// Package wpaxos implements the paper's wireless PAXOS (wPAXOS) algorithm
// for multihop topologies (Section 4.2): classic PAXOS proposer/acceptor
// logic connected to four model-specific support services — leader
// election, shortest-path-tree building, change notification, and a
// broadcast multiplexer — that together solve consensus in O(D*Fack) time
// in the abstract MAC layer model, assuming unique ids and knowledge of
// the network size n (both required by the paper's lower bounds).
//
// The services follow Figure 3 of the paper:
//
//   - Leader election (Algorithm 2) floods the maximum id; the local
//     estimate Omega_u stabilizes network-wide in O(D*Fack).
//   - Tree building (Algorithm 4) runs Bellman-Ford style iterative
//     refinement to grow, for every potential root, a shortest-path tree;
//     search messages for the current leader take priority, so the
//     eventual leader's tree completes O(D*Fack) after election
//     stabilizes. Parent pointers only ever point strictly downhill
//     (toward smaller distance), so routes never cycle.
//   - The change service (Algorithm 3) floods a timestamped notification
//     whenever a node's leader estimate or its distance to the current
//     leader improves, and tells the (self-believed) leader to generate a
//     new proposal; the final change in an execution marks the global
//     stabilization time (GST), after which the leader generates Theta(1)
//     further proposals and drives them to a decision.
//   - The broadcast service (Algorithm 5) multiplexes one message from
//     each non-empty service queue into a single bounded-size broadcast.
//
// Acceptor responses are unicast-over-broadcast toward the proposer along
// the proposer-rooted tree and aggregated hop by hop: same-polarity
// responses to the same proposition merge into a count, retaining only the
// highest-numbered previous proposal (for positive prepare responses) and
// the largest committed number (for rejections). Lemma 4.2's invariant —
// the proposer never counts more affirmative responses than acceptors
// generated — can be audited at runtime via CountAudit.
package wpaxos

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
)

// ProposalNum is a PAXOS proposal number: a tag plus the proposing node's
// id, compared lexicographically (Section 4.2.1). The zero value is below
// every real proposal number and means "none".
type ProposalNum struct {
	Tag int64
	ID  amac.NodeID
}

// IsZero reports whether the number is the "none" sentinel.
func (p ProposalNum) IsZero() bool { return p.Tag == 0 && p.ID == 0 }

// Less orders proposal numbers lexicographically.
func (p ProposalNum) Less(q ProposalNum) bool {
	if p.Tag != q.Tag {
		return p.Tag < q.Tag
	}
	return p.ID < q.ID
}

// Max returns the larger of p and q.
func (p ProposalNum) Max(q ProposalNum) ProposalNum {
	if p.Less(q) {
		return q
	}
	return p
}

func (p ProposalNum) String() string {
	return fmt.Sprintf("(%d,%d)", p.Tag, p.ID)
}

// Proposal couples a proposal number with a value.
type Proposal struct {
	Num ProposalNum
	Val amac.Value
}

// maxPrev returns the proposal with the larger number, treating nil as
// "none". Used when aggregating previous proposals in responses.
func maxPrev(a, b *Proposal) *Proposal {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.Num.Less(b.Num):
		return b
	default:
		return a
	}
}

// PropKind distinguishes the two proposer message kinds.
type PropKind int

// Proposer message kinds.
const (
	Prepare PropKind = iota + 1
	Propose
)

func (k PropKind) String() string {
	switch k {
	case Prepare:
		return "prepare"
	case Propose:
		return "propose"
	default:
		return fmt.Sprintf("PropKind(%d)", int(k))
	}
}

// Proposition identifies one proposition in the paper's sense: a proposer,
// a message kind, and a proposal number. It keys response aggregation and
// the Lemma 4.2 audit.
type Proposition struct {
	Kind PropKind
	Num  ProposalNum
}

func (p Proposition) String() string {
	return fmt.Sprintf("%v%v", p.Kind, p.Num)
}
