package wpaxos

import (
	"math/rand"
	"testing"

	"github.com/absmac/absmac/internal/amac"
)

func TestDetectorLearnAndElect(t *testing.T) {
	d := NewDetector(3, 5)
	if d.Omega() != 3 {
		t.Fatalf("fresh omega = %d", d.Omega())
	}
	if !d.Learn(7) || d.Omega() != 7 {
		t.Fatalf("after learning 7: omega = %d", d.Omega())
	}
	if d.Learn(7) {
		t.Fatal("re-learning 7 reported new")
	}
	if !d.Learn(1) || d.Omega() != 7 {
		t.Fatalf("learning a smaller id moved omega to %d", d.Omega())
	}
	want := []amac.NodeID{1, 3, 7}
	got := d.Members()
	if len(got) != len(want) {
		t.Fatalf("members %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members %v, want %v", got, want)
		}
	}
}

func TestDetectorGossipCycles(t *testing.T) {
	d := NewDetector(2, 4)
	d.Learn(5)
	d.Learn(1)
	// Odd calls announce omega (fast leader flood), even calls walk the
	// sorted member set {1, 2, 5} round-robin.
	want := []amac.NodeID{5, 1, 5, 2, 5, 5, 5, 1}
	for i, w := range want {
		if got := d.Gossip(); got != w {
			t.Fatalf("gossip call %d = %d, want %d", i+1, got, w)
		}
	}
}

func TestDetectorDemotionRotation(t *testing.T) {
	d := NewDetector(1, 4)
	for _, id := range []amac.NodeID{2, 3, 4} {
		d.Learn(id)
	}
	d.Novel(0)
	step := d.Bound() + 1
	now := step
	// Silence demotes the current omega and rotates to the next highest
	// unsuspected member: 4, then 3, then 2, then self.
	for _, want := range []amac.NodeID{3, 2, 1} {
		if ev := d.Check(now); ev != DetectorDemoted {
			t.Fatalf("Check = %v, want DetectorDemoted", ev)
		}
		if d.Omega() != want {
			t.Fatalf("omega = %d, want %d", d.Omega(), want)
		}
		now += d.Bound() + 1
	}
	if !d.Suspects(4) || !d.Suspects(3) || !d.Suspects(2) {
		t.Fatal("demoted members not suspected")
	}
}

func TestDetectorWrapRepromotesAfterSilence(t *testing.T) {
	// A demoted leader re-promotes on recovery-free silence: once the
	// rotation reaches self and nothing moves, suspicions clear and the
	// maximum member leads again.
	d := NewDetector(1, 3)
	d.Learn(2)
	d.Learn(3)
	d.Novel(0)
	now := int64(0)
	for d.Omega() != 1 {
		now += d.Bound() + 1
		d.Check(now)
	}
	now += d.Bound() + 1
	if ev := d.Check(now); ev != DetectorDemoted {
		t.Fatalf("wrap Check = %v, want DetectorDemoted", ev)
	}
	if d.Omega() != 3 {
		t.Fatalf("omega after wrap = %d, want re-promoted max 3", d.Omega())
	}
	if d.Suspects(2) || d.Suspects(3) {
		t.Fatal("suspicions survived the wrap")
	}
}

func TestDetectorRearmWhenSelfIsLeader(t *testing.T) {
	d := NewDetector(9, 3)
	d.Learn(1)
	d.Novel(0)
	if ev := d.Check(d.Bound() + 1); ev != DetectorRearm {
		t.Fatalf("Check = %v, want DetectorRearm for a silent self-leader", ev)
	}
}

func TestDetectorQuietWithinBound(t *testing.T) {
	d := NewDetector(1, 3)
	d.Novel(100)
	if ev := d.Check(100 + d.Bound()); ev != DetectorQuiet {
		t.Fatalf("Check at the bound = %v, want DetectorQuiet", ev)
	}
}

func TestDetectorBoundDoublesAndCaps(t *testing.T) {
	d := NewDetector(1, 3)
	d.Learn(2)
	base := d.Bound()
	now := int64(0)
	prev := int64(0)
	for i := 0; i < 40; i++ {
		now += d.Bound() + 1
		d.Check(now)
		if d.Bound() < prev {
			t.Fatal("bound shrank")
		}
		prev = d.Bound()
	}
	if d.Bound() != base*maxDetectorMult {
		t.Fatalf("capped bound = %d, want %d", d.Bound(), base*maxDetectorMult)
	}
}

func TestDetectorFackEstimate(t *testing.T) {
	d := NewDetector(1, 3)
	d.NoteSend(10)
	d.NoteAck(17)
	if d.fhat != 7 {
		t.Fatalf("fhat = %d after a delay-7 ack", d.fhat)
	}
	// A faster ack never lowers the estimate; an unmatched ack is ignored.
	d.NoteSend(20)
	d.NoteAck(22)
	d.NoteAck(30)
	if d.fhat != 7 {
		t.Fatalf("fhat = %d, want sticky max 7", d.fhat)
	}
	if d.Bound() != 7*int64(4*3+8) {
		t.Fatalf("bound = %d", d.Bound())
	}
}

func TestDetectorRotationDeterministicAcrossSeeds(t *testing.T) {
	// The demotion order must be a pure function of the member set, not of
	// the order in which members were learned: shuffle the learn order
	// under several seeds and require the identical omega trajectory.
	members := []amac.NodeID{4, 9, 2, 7, 5}
	var want []amac.NodeID
	for seed := int64(0); seed < 8; seed++ {
		order := append([]amac.NodeID(nil), members...)
		rand.New(rand.NewSource(seed)).Shuffle(len(order), func(i, j int) {
			order[i], order[j] = order[j], order[i]
		})
		d := NewDetector(2, len(members))
		for _, id := range order {
			if id != 2 {
				d.Learn(id)
			}
		}
		var got []amac.NodeID
		now := int64(0)
		for i := 0; i < 2*len(members); i++ {
			now += d.Bound() + 1
			d.Check(now)
			got = append(got, d.Omega())
		}
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: omega trajectory %v, want %v", seed, got, want)
			}
		}
	}
}

func TestStateMsgNewer(t *testing.T) {
	base := StateMsg{Origin: 1, Promised: ProposalNum{1, 2}}
	if base.Newer(base) {
		t.Fatal("equal state reported newer")
	}
	higher := StateMsg{Origin: 1, Promised: ProposalNum{2, 1}}
	if !higher.Newer(base) || base.Newer(higher) {
		t.Fatal("promised ordering wrong")
	}
	accepted := StateMsg{Origin: 1, Promised: ProposalNum{1, 2},
		Accepted: &Proposal{Num: ProposalNum{1, 2}, Val: 1}}
	if !accepted.Newer(base) || base.Newer(accepted) {
		t.Fatal("acceptance at equal promise not newer")
	}
	if accepted.Newer(higher) {
		t.Fatal("lower promise with acceptance beat a higher promise")
	}
}
