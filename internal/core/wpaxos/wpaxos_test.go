package wpaxos

import (
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

func runOn(t *testing.T, g *graph.Graph, inputs []amac.Value, sched sim.Scheduler, ids []amac.NodeID) (*sim.Result, *CountAudit) {
	t.Helper()
	audit := NewCountAudit()
	res := sim.Run(sim.Config{
		Graph:           g,
		Inputs:          inputs,
		Factory:         NewFactory(Config{N: g.N(), Audit: audit}),
		Scheduler:       sched,
		IDs:             ids,
		StopWhenDecided: true,
		Audit:           true,
	})
	return res, audit
}

func mixedInputs(n int) []amac.Value {
	inputs := make([]amac.Value, n)
	for i := range inputs {
		inputs[i] = amac.Value(i % 2)
	}
	return inputs
}

func checkOK(t *testing.T, name string, inputs []amac.Value, res *sim.Result, audit *CountAudit) {
	t.Helper()
	rep := consensus.Check(inputs, res)
	if !rep.OK() {
		t.Fatalf("%s: %v", name, rep.Errors)
	}
	if v := audit.Violations(); len(v) != 0 {
		t.Fatalf("%s: Lemma 4.2 violated for propositions %v", name, v)
	}
}

func TestLineSynchronous(t *testing.T) {
	g := graph.Line(5)
	inputs := mixedInputs(5)
	res, audit := runOn(t, g, inputs, sim.Synchronous{}, nil)
	checkOK(t, "line5", inputs, res, audit)
}

func TestSingleNode(t *testing.T) {
	g := graph.Clique(1)
	inputs := []amac.Value{1}
	res, audit := runOn(t, g, inputs, sim.Synchronous{}, nil)
	checkOK(t, "single", inputs, res, audit)
	if res.Decision[0] != 1 {
		t.Fatalf("decided %d, want own input 1", res.Decision[0])
	}
}

func TestTopologyFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"clique8", graph.Clique(8)},
		{"line9", graph.Line(9)},
		{"ring10", graph.Ring(10)},
		{"star9", graph.Star(9)},
		{"grid4x4", graph.Grid(4, 4)},
		{"tree2x3", graph.BalancedTree(2, 3)},
		{"starlines3x3", graph.StarOfLines(3, 3)},
		{"random20", graph.RandomConnected(20, 0.15, 11)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inputs := mixedInputs(tc.g.N())
			for seed := int64(0); seed < 4; seed++ {
				res, audit := runOn(t, tc.g, inputs, sim.NewRandom(4, seed), nil)
				checkOK(t, tc.name, inputs, res, audit)
			}
		})
	}
}

func TestLeaderFarFromCenter(t *testing.T) {
	// Put the maximum id at one end of a line: leader election and the
	// leader-rooted tree must both cross the whole diameter.
	n := 12
	g := graph.Line(n)
	ids := make([]amac.NodeID, n)
	for i := range ids {
		ids[i] = amac.NodeID(n - i) // node 0 has the max id
	}
	inputs := mixedInputs(n)
	res, audit := runOn(t, g, inputs, sim.NewRandom(3, 7), ids)
	checkOK(t, "leader-at-end", inputs, res, audit)
}

func TestDecisionTimeScalesWithDiameter(t *testing.T) {
	// Theorem 4.6: decisions within O(D*Fack). The constant here is an
	// empirical envelope (see EXPERIMENTS.md): comfortably small, and the
	// point is that it does not grow with D.
	const f = 4
	for _, d := range []int{4, 8, 16, 32} {
		g := graph.Line(d + 1)
		inputs := mixedInputs(d + 1)
		res, audit := runOn(t, g, inputs, sim.NewRandom(f, 1), nil)
		checkOK(t, "line", inputs, res, audit)
		bound := int64(20 * (d + 1) * f)
		if res.MaxDecideTime > bound {
			t.Fatalf("D=%d: decision time %d exceeds envelope %d", d, res.MaxDecideTime, bound)
		}
	}
}

func TestSlowMinorityDoesNotBlock(t *testing.T) {
	// wPAXOS needs only a majority of acceptors: slowing a minority by
	// 50x must not slow the decision by anything like 50x.
	n := 11
	g := graph.Clique(n)
	inputs := mixedInputs(n)
	slow := map[int]bool{0: true, 1: true, 2: true} // minority of 3
	sched := sim.SlowSubset{Base: sim.NewRandom(2, 5), Slow: slow, Factor: 50}
	audit := NewCountAudit()
	res := sim.Run(sim.Config{
		Graph:           g,
		Inputs:          inputs,
		Factory:         NewFactory(Config{N: n, Audit: audit}),
		Scheduler:       sched,
		StopWhenDecided: true,
		Audit:           true,
	})
	rep := consensus.Check(inputs, res)
	if !rep.OK() {
		t.Fatalf("%v", rep.Errors)
	}
	if v := audit.Violations(); len(v) != 0 {
		t.Fatalf("Lemma 4.2 violated: %v", v)
	}
	// The slow nodes' broadcasts take 100 time units each. A decision
	// well under that shows the majority carried the day. (The slow
	// nodes themselves still decide via the flooded decision.)
	fastDecide := int64(0)
	for i := 3; i < n; i++ {
		if res.DecideTime[i] > fastDecide {
			fastDecide = res.DecideTime[i]
		}
	}
	if fastDecide >= 100 {
		t.Fatalf("fast majority decided at %d, not ahead of one slow broadcast cycle (100)", fastDecide)
	}
}

func TestValidityUnanimous(t *testing.T) {
	for _, v := range []amac.Value{0, 1} {
		g := graph.Grid(3, 3)
		inputs := make([]amac.Value, g.N())
		for i := range inputs {
			inputs[i] = v
		}
		res, audit := runOn(t, g, inputs, sim.NewRandom(3, 2), nil)
		checkOK(t, "unanimous", inputs, res, audit)
		rep := consensus.Check(inputs, res)
		if rep.Value != v {
			t.Fatalf("unanimous %d: decided %d", v, rep.Value)
		}
	}
}

func TestAggregationAuditAcrossSeeds(t *testing.T) {
	// E9's property: c(p) <= a(p) under scheduler churn, topology
	// variety, and adversarial serialization.
	for seed := int64(0); seed < 10; seed++ {
		g := graph.RandomConnected(15, 0.12, seed)
		inputs := mixedInputs(15)
		res, audit := runOn(t, g, inputs, sim.NewRandom(1+seed%5, seed*13), nil)
		checkOK(t, "audit-sweep", inputs, res, audit)
		if audit.Propositions() == 0 {
			t.Fatal("audit saw no propositions; instrumentation broken?")
		}
	}
}

func TestTagGrowthModest(t *testing.T) {
	// Lemma 4.4: tags stay polynomially bounded; empirically they stay
	// tiny. Track the max tag used across nodes.
	for _, n := range []int{8, 16, 32} {
		g := graph.RandomConnected(n, 0.1, int64(n))
		inputs := mixedInputs(n)
		var nodes []*Node
		factory := func(nc amac.NodeConfig) amac.Algorithm {
			nd := New(nc.Input, Config{N: n})
			nodes = append(nodes, nd)
			return nd
		}
		res := sim.Run(sim.Config{
			Graph:           g,
			Inputs:          inputs,
			Factory:         factory,
			Scheduler:       sim.NewRandom(3, 17),
			StopWhenDecided: true,
		})
		rep := consensus.Check(inputs, res)
		if !rep.OK() {
			t.Fatalf("n=%d: %v", n, rep.Errors)
		}
		maxTag := int64(0)
		for _, nd := range nodes {
			if nd.MaxTagUsed() > maxTag {
				maxTag = nd.MaxTagUsed()
			}
		}
		if maxTag > int64(4*n*n) {
			t.Fatalf("n=%d: max tag %d exceeds the O(n^2) change-event budget", n, maxTag)
		}
	}
}

func TestEdgeOrderAdversary(t *testing.T) {
	g := graph.Grid(3, 4)
	inputs := mixedInputs(g.N())
	res, audit := runOn(t, g, inputs, &sim.EdgeOrder{MaxDegree: 4}, nil)
	checkOK(t, "edgeorder", inputs, res, audit)
	res, audit = runOn(t, g, inputs, &sim.EdgeOrder{MaxDegree: 4, Descending: true}, nil)
	checkOK(t, "edgeorder-desc", inputs, res, audit)
}

func TestConstructorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(2, Config{N: 3}) },
		func() { New(0, Config{N: 0}) },
		func() { NewFactory(Config{N: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestIntrospectionAfterRun(t *testing.T) {
	n := 6
	g := graph.Line(n)
	inputs := mixedInputs(n)
	var nodes []*Node
	factory := func(nc amac.NodeConfig) amac.Algorithm {
		nd := New(nc.Input, Config{N: n})
		nodes = append(nodes, nd)
		return nd
	}
	res := sim.Run(sim.Config{
		Graph:           g,
		Inputs:          inputs,
		Factory:         factory,
		Scheduler:       sim.Synchronous{},
		StopWhenDecided: true,
	})
	rep := consensus.Check(inputs, res)
	if !rep.OK() {
		t.Fatalf("%v", rep.Errors)
	}
	maxID := amac.NodeID(n)
	for i, nd := range nodes {
		if nd.Leader() != maxID {
			t.Fatalf("node %d leader estimate %d, want %d", i, nd.Leader(), maxID)
		}
		if v, ok := nd.Decided(); !ok || v != rep.Value {
			t.Fatalf("node %d Decided() = %d,%v want %d,true", i, v, ok, rep.Value)
		}
		// On a line with ids 1..n, the leader (id n) sits at index n-1;
		// distances should match the line distance.
		wantDist := int64(n - 1 - i)
		if nd.DistToLeader() != wantDist {
			t.Fatalf("node %d dist to leader %d, want %d", i, nd.DistToLeader(), wantDist)
		}
	}
}

// TestSafetyUnderUnreliableLinks exercises the paper's first future-work
// direction: an abstract MAC layer with unreliable links in addition to
// reliable ones. wPAXOS's safety must survive arbitrary extra deliveries
// over unreliable edges. Liveness legitimately may NOT survive — the tree
// can adopt a parent across an unreliable edge and lose a response — which
// is precisely the open question the paper states in Section 2; experiment
// E11 quantifies it. This test asserts the unconditional part only.
func TestSafetyUnderUnreliableLinks(t *testing.T) {
	terminated := 0
	const seeds = 6
	for seed := int64(0); seed < seeds; seed++ {
		g := graph.RandomConnected(14, 0.08, seed)
		overlay := graph.RandomOverlay(g, 10, seed+100)
		inputs := mixedInputs(14)
		audit := NewCountAudit()
		res := sim.Run(sim.Config{
			Graph:           g,
			Unreliable:      overlay,
			Inputs:          inputs,
			Factory:         NewFactory(Config{N: 14, Audit: audit}),
			Scheduler:       sim.NewLossy(sim.NewRandom(4, seed*3+1), 0.4, seed*5+2),
			StopWhenDecided: true,
			Audit:           true,
		})
		rep := consensus.Check(inputs, res)
		if !rep.Agreement {
			t.Fatalf("seed %d: agreement violated: %v", seed, rep.Errors)
		}
		if rep.SomeoneDecided && !rep.Validity {
			t.Fatalf("seed %d: validity violated: %v", seed, rep.Errors)
		}
		if v := audit.Violations(); len(v) != 0 {
			t.Fatalf("seed %d: Lemma 4.2 violated under lossy links: %v", seed, v)
		}
		if rep.Termination {
			terminated++
		}
	}
	if terminated == 0 {
		t.Fatal("no run terminated at all; the reliable substrate should usually carry the day")
	}
}

// TestMultivaluedConsensus runs wPAXOS with arbitrary (non-binary) values:
// the PAXOS value rides along unchanged, so agreement/validity/termination
// hold for any value set. The paper restricts to binary consensus to
// strengthen its lower bounds; the algorithm itself does not care.
func TestMultivaluedConsensus(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.RandomConnected(12, 0.15, seed)
		inputs := make([]amac.Value, 12)
		for i := range inputs {
			inputs[i] = amac.Value(10 + (i*7+int(seed))%9) // values in 10..18
		}
		res := sim.Run(sim.Config{
			Graph:           g,
			Inputs:          inputs,
			Factory:         NewGeneralFactory(Config{N: 12}),
			Scheduler:       sim.NewRandom(4, seed*3+1),
			StopWhenDecided: true,
			Audit:           true,
		})
		rep := consensus.Check(inputs, res)
		if !rep.OK() {
			t.Fatalf("seed %d: %v", seed, rep.Errors)
		}
		// The decided value must be one of the proposed ones (validity
		// is already checked, but make the multivalued point explicit).
		found := false
		for _, v := range inputs {
			if v == rep.Value {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: decided %d, not among inputs %v", seed, rep.Value, inputs)
		}
	}
}

func TestBinaryConstructorStillStrict(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-binary input via New")
		}
	}()
	New(7, Config{N: 3})
}

// TestCrashSafetyOnly documents that Theorem 3.2 applies to wPAXOS too:
// with a crash failure the algorithm may lose termination (the paper
// assumes no crashes for its upper bounds), but agreement and validity
// hold among whatever decisions happen.
func TestCrashSafetyOnly(t *testing.T) {
	g := graph.Grid(3, 3)
	n := g.N()
	for seed := int64(0); seed < 8; seed++ {
		inputs := mixedInputs(n)
		crashes := []sim.Crash{{Node: int(seed) % n, At: 1 + seed*2}}
		res := sim.Run(sim.Config{
			Graph:     g,
			Inputs:    inputs,
			Factory:   NewFactory(Config{N: n}),
			Scheduler: sim.NewRandom(3, seed*11+1),
			Crashes:   crashes,
			Audit:     true,
			MaxEvents: 500_000,
		})
		rep := consensus.Check(inputs, res)
		if !rep.Agreement {
			t.Fatalf("seed %d: agreement violated under crash: %v", seed, rep.Errors)
		}
		if rep.SomeoneDecided && !rep.Validity {
			t.Fatalf("seed %d: validity violated under crash: %v", seed, rep.Errors)
		}
	}
}
