package wpaxos

import (
	"sort"
	"sync"

	"github.com/absmac/absmac/internal/amac"
)

// This file implements the PAXOS roles (Section 4.2.1): every node plays
// both proposer and acceptor. The learner role is collapsed into the
// proposer, as in the paper: a proposer that counts a majority of accepts
// decides and floods the decision.

// proposerPhase tracks the proposer's progress on its current number.
type proposerPhase int

const (
	propIdle      proposerPhase = iota // no proposition outstanding
	propPreparing                      // counting prepare responses
	propProposing                      // counting propose responses
)

// proposerState is the proposer half of a node.
type proposerState struct {
	phase proposerPhase
	// num is the current proposal number (zero when idle).
	num ProposalNum
	// maxTagSeen is the largest tag observed anywhere; new proposals use
	// maxTagSeen+1 (Section 4.2.1).
	maxTagSeen int64
	// triesLeft limits the proposer to two proposal numbers per change
	// notification.
	triesLeft int
	// acks/nacks count aggregated responses for the current proposition.
	acks, nacks int64
	// bestPrev is the highest-numbered previous proposal reported by
	// positive prepare responses; nil means none, in which case the
	// proposer is free to propose its own input.
	bestPrev *Proposal
	// value is the value being proposed in the propose phase.
	value amac.Value
}

// acceptorState is the acceptor half of a node.
type acceptorState struct {
	// promised is the highest prepare number committed to.
	promised ProposalNum
	// accepted is the highest-numbered accepted proposal, if any.
	accepted *Proposal
}

// handlePrepare applies a prepare message and returns the response
// polarity plus the data the response carries.
func (a *acceptorState) handlePrepare(num ProposalNum) (positive bool, prev *Proposal, committed ProposalNum) {
	if a.promised.Less(num) {
		a.promised = num
		return true, a.accepted, ProposalNum{}
	}
	return false, nil, a.promised
}

// handlePropose applies a propose message and returns the response
// polarity plus the committed number carried by rejections.
func (a *acceptorState) handlePropose(num ProposalNum, val amac.Value) (positive bool, committed ProposalNum) {
	// Standard PAXOS: accept unless committed to a strictly larger
	// number.
	if num.Less(a.promised) {
		return false, a.promised
	}
	a.promised = num
	a.accepted = &Proposal{Num: num, Val: val}
	return true, ProposalNum{}
}

// CountAudit instruments the Lemma 4.2 invariant c(p) <= a(p): for every
// proposition, the total affirmative count received by the proposer never
// exceeds the number of acceptors that generated an affirmative response.
// One CountAudit is shared by all nodes of a run; it is safe for
// concurrent use so the live runtime can share it too.
type CountAudit struct {
	mu        sync.Mutex
	generated map[Proposition]int64 // a(p)
	counted   map[Proposition]int64 // c(p)
}

// NewCountAudit returns an empty audit.
func NewCountAudit() *CountAudit {
	return &CountAudit{
		generated: make(map[Proposition]int64),
		counted:   make(map[Proposition]int64),
	}
}

func (c *CountAudit) addGenerated(p Proposition) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.generated[p]++
}

func (c *CountAudit) addCounted(p Proposition, k int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counted[p] += k
}

// Violations returns a deterministic list of propositions for which the
// proposer counted more affirmatives than acceptors generated. An empty
// result certifies Lemma 4.2's invariant for the run.
func (c *CountAudit) Violations() []Proposition {
	c.mu.Lock()
	defer c.mu.Unlock()
	var bad []Proposition
	for p, counted := range c.counted {
		if counted > c.generated[p] {
			bad = append(bad, p)
		}
	}
	sort.Slice(bad, func(i, j int) bool {
		if bad[i].Num != bad[j].Num {
			return bad[i].Num.Less(bad[j].Num)
		}
		return bad[i].Kind < bad[j].Kind
	})
	return bad
}

// Propositions returns the number of distinct propositions that received
// at least one affirmative response.
func (c *CountAudit) Propositions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.generated)
}
