package wpaxos

import "github.com/absmac/absmac/internal/amac"

// LeaderMsg is the leader election service's <leader, id> message
// (Algorithm 2).
type LeaderMsg struct {
	ID amac.NodeID
}

// ChangeMsg is the change service's <change, t, id> message (Algorithm 3).
type ChangeMsg struct {
	T  int64
	ID amac.NodeID
}

// SearchMsg is the tree building service's <search, id, h> message
// (Algorithm 4). Sender identifies the broadcasting node; a receiver that
// adopts the message sets parent[Root] to Sender.
type SearchMsg struct {
	Root   amac.NodeID
	Hops   int64
	Sender amac.NodeID
}

// ProposerMsg is a flooded proposer message: a prepare or propose
// (Section 4.2.1). Val is meaningful only for Propose.
type ProposerMsg struct {
	Kind PropKind
	Num  ProposalNum
	Val  amac.Value
}

// Proposition returns the proposition this message belongs to.
func (m ProposerMsg) Proposition() Proposition {
	return Proposition{Kind: m.Kind, Num: m.Num}
}

// ResponseMsg is an (aggregated) acceptor response traveling up the
// proposer-rooted tree. It is broadcast like everything else but addressed
// to a single next hop (Dest); other receivers ignore it.
type ResponseMsg struct {
	// Dest is the next hop (the relay's parent in the tree rooted at the
	// proposer).
	Dest amac.NodeID
	// Prop identifies the proposition being answered; Prop.Num.ID is the
	// proposer.
	Prop Proposition
	// Positive distinguishes acks from rejections.
	Positive bool
	// Count is the number of acceptor responses aggregated here.
	Count int64
	// Prev is the highest-numbered previously-accepted proposal among
	// the aggregated positive prepare responses, if any.
	Prev *Proposal
	// Committed is the largest committed proposal number among the
	// aggregated rejections (the paper's standard optimization: a
	// rejecting acceptor appends the number it is committed to).
	Committed ProposalNum
}

// StateMsg gossips one acceptor's state (the weaveworks/weave ipam/paxos
// idiom): the origin's current promised number and accepted proposal,
// merged monotonically by every receiver. Unlike the tree-routed
// aggregated responses, state gossip is origin-keyed and idempotent, so it
// stays queued and is re-broadcast on every pump until superseded by a
// newer state from the same origin — the retransmit-until-superseded
// response class that keeps proposals countable when relays die or lossy
// overlay edges eat the aggregated fast path. Safety never depends on who
// proposes: any node that observes a majority of origins with the same
// accepted proposal decides.
type StateMsg struct {
	// Origin is the acceptor whose state this is.
	Origin amac.NodeID
	// Promised is the origin's promised number (zero when it has not
	// promised anything yet).
	Promised ProposalNum
	// Accepted is the origin's highest accepted proposal, nil when none.
	Accepted *Proposal
}

// Newer reports whether s carries strictly newer information than cur for
// the same origin. Acceptor state grows lexicographically in
// (promised, accepted number): promises only rise, and an acceptance
// raises the accepted number at equal promised.
func (s StateMsg) Newer(cur StateMsg) bool {
	if cur.Promised.Less(s.Promised) {
		return true
	}
	if s.Promised != cur.Promised {
		return false
	}
	var a, b ProposalNum
	if cur.Accepted != nil {
		a = cur.Accepted.Num
	}
	if s.Accepted != nil {
		b = s.Accepted.Num
	}
	return a.Less(b)
}

// DecideMsg floods a decision through the network.
type DecideMsg struct {
	Val amac.Value
}

// Combined is the broadcast service's multiplexed message (Algorithm 5):
// one message from each non-empty queue, sent as a single bounded-size
// broadcast. Nil fields mean the corresponding queue was empty.
type Combined struct {
	Leader   *LeaderMsg
	Change   *ChangeMsg
	Search   *SearchMsg
	Proposer *ProposerMsg
	Response *ResponseMsg
	State    *StateMsg
	Decide   *DecideMsg
}

// IDCount implements amac.Message. Each constituent carries a constant
// number of ids, so the combined message does too (the model's O(1)-ids
// restriction, audited by the simulator).
func (m Combined) IDCount() int {
	c := 0
	if m.Leader != nil {
		c++
	}
	if m.Change != nil {
		c++
	}
	if m.Search != nil {
		c += 2 // root and sender
	}
	if m.Proposer != nil {
		c++ // the number's proposer id
	}
	if m.Response != nil {
		c += 2 // dest and proposer
		if m.Response.Prev != nil {
			c++
		}
		if !m.Response.Committed.IsZero() {
			c++
		}
	}
	if m.State != nil {
		c++ // origin
		if !m.State.Promised.IsZero() {
			c++
		}
		if m.State.Accepted != nil {
			c++
		}
	}
	return c
}

var _ amac.Message = Combined{}
