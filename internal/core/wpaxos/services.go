package wpaxos

import "github.com/absmac/absmac/internal/amac"

// This file implements the three queue-backed support services of Figure 3.
// Each service owns a queue drained by the broadcast service (node.go);
// queue semantics follow the paper's UpdateQ procedures.

// leaderService implements Algorithm 2 (leader election): flood the
// maximum id seen. Its queue holds at most one message — the newest.
type leaderService struct {
	omega amac.NodeID // Omega_u, the current leader estimate
	queue *LeaderMsg
}

func (s *leaderService) init(self amac.NodeID) {
	s.omega = self
	s.queue = &LeaderMsg{ID: self}
}

// receive processes <leader, id>; it reports whether Omega_u changed.
func (s *leaderService) receive(m LeaderMsg) bool {
	if m.ID <= s.omega {
		return false
	}
	s.omega = m.ID
	s.queue = &LeaderMsg{ID: m.ID}
	return true
}

// pop drains the queue for the broadcast service.
func (s *leaderService) pop() *LeaderMsg {
	m := s.queue
	s.queue = nil
	return m
}

// changeService implements Algorithm 3 (change notification). Its queue
// also holds at most one message — the newest timestamp wins. The caller
// is responsible for invoking the proposer's GenerateNewPAXOSProposal when
// updateQ reports true and the node currently believes it is the leader.
type changeService struct {
	lastChange int64 // -1 stands in for the paper's negative infinity
	queue      *ChangeMsg
}

func (s *changeService) init() {
	s.lastChange = -1
	s.queue = nil
}

// onChange handles a local change event (Omega_u or dist[Omega_u]
// updated) at time now.
func (s *changeService) onChange(now int64, self amac.NodeID) {
	s.lastChange = now
	s.queue = &ChangeMsg{T: now, ID: self}
}

// receive processes <change, t, id>; it reports whether the message was
// fresh (t beyond lastChange), in which case the queue was updated.
func (s *changeService) receive(m ChangeMsg) bool {
	if m.T <= s.lastChange {
		return false
	}
	s.lastChange = m.T
	s.queue = &ChangeMsg{T: m.T, ID: m.ID}
	return true
}

func (s *changeService) pop() *ChangeMsg {
	m := s.queue
	s.queue = nil
	return m
}

// treeService implements Algorithm 4 (tree building): for every root id
// seen, maintain the best known distance and the parent realizing it,
// Bellman-Ford style. The queue keeps at most one search message per root
// (the lowest hop count seen), with the current leader's message kept at
// the front.
type treeService struct {
	self   amac.NodeID
	dist   map[amac.NodeID]int64
	parent map[amac.NodeID]amac.NodeID
	// queue preserves FIFO order except that the current leader's entry
	// is pinned to the front; queued maps root -> position validity via
	// linear scan (queues are short-lived and small: one entry per root
	// with pending propagation).
	queue []SearchMsg
}

func (s *treeService) init(self amac.NodeID) {
	s.self = self
	s.dist = map[amac.NodeID]int64{self: 0}
	s.parent = map[amac.NodeID]amac.NodeID{self: self}
	s.queue = []SearchMsg{{Root: self, Hops: 1, Sender: self}}
}

// distTo returns the best known distance to root, or -1 when unknown
// (the paper's infinity).
func (s *treeService) distTo(root amac.NodeID) int64 {
	d, ok := s.dist[root]
	if !ok {
		return -1
	}
	return d
}

// parentTo returns the parent toward root, or amac.NoID when unknown.
func (s *treeService) parentTo(root amac.NodeID) amac.NodeID {
	p, ok := s.parent[root]
	if !ok {
		return amac.NoID
	}
	return p
}

// receive processes <search, root, h> from sender; it reports whether the
// distance estimate improved (h < dist[root]).
func (s *treeService) receive(m SearchMsg, leader amac.NodeID) bool {
	cur, known := s.dist[m.Root]
	if known && m.Hops >= cur {
		return false
	}
	s.dist[m.Root] = m.Hops
	s.parent[m.Root] = m.Sender
	s.updateQ(SearchMsg{Root: m.Root, Hops: m.Hops + 1, Sender: s.self}, leader)
	return true
}

// updateQ enqueues a search message, discards any queued message for the
// same root with a larger hop count, and pins the leader's message to the
// front (Algorithm 4's UpdateQ).
func (s *treeService) updateQ(m SearchMsg, leader amac.NodeID) {
	kept := s.queue[:0]
	for _, q := range s.queue {
		if q.Root == m.Root {
			if q.Hops <= m.Hops {
				// The queued message dominates; drop the new one.
				m = q
			}
			continue // the dominated copy is discarded
		}
		kept = append(kept, q)
	}
	s.queue = append(kept, m)
	s.prioritize(leader)
}

// prioritize moves the current leader's search message (if any) to the
// front; called on enqueue and when the leader estimate changes
// (Algorithm 4's OnLeaderChange).
func (s *treeService) prioritize(leader amac.NodeID) {
	for i, q := range s.queue {
		if q.Root == leader && i > 0 {
			m := s.queue[i]
			copy(s.queue[1:i+1], s.queue[:i])
			s.queue[0] = m
			return
		}
	}
}

// pop drains one message for the broadcast service.
func (s *treeService) pop() *SearchMsg {
	if len(s.queue) == 0 {
		return nil
	}
	m := s.queue[0]
	s.queue = s.queue[1:]
	return &m
}
