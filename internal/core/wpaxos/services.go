package wpaxos

import (
	"sort"

	"github.com/absmac/absmac/internal/amac"
)

// This file implements the queue-backed support services of Figure 3.
// Each service owns a queue drained by the broadcast service (node.go);
// queue semantics follow the paper's UpdateQ procedures, extended with
// retransmit-until-superseded: once a service has something to say it
// keeps saying it on every pump until newer state supersedes it, so a
// message lost to a lossy overlay edge (or a crashed relay) is re-offered
// forever rather than gone. Leader election itself moved to the suspicion
// detector (detector.go); the leader slot of every broadcast now carries
// membership gossip from Detector.Gossip.

// changeService implements Algorithm 3 (change notification). Its queue
// holds the newest change — the largest timestamp wins — and re-broadcasts
// it until a newer change supersedes it. Receivers deduplicate by
// timestamp, so the retransmissions are idempotent. The caller is
// responsible for invoking the proposer's GenerateNewPAXOSProposal when
// receive reports true and the node currently believes it is the leader.
type changeService struct {
	lastChange int64 // -1 stands in for the paper's negative infinity
	queue      *ChangeMsg
}

func (s *changeService) init() {
	s.lastChange = -1
	s.queue = nil
}

// onChange handles a local change event (Omega_u or dist[Omega_u]
// updated) at time now.
func (s *changeService) onChange(now int64, self amac.NodeID) {
	s.lastChange = now
	s.queue = &ChangeMsg{T: now, ID: self}
}

// receive processes <change, t, id>; it reports whether the message was
// fresh (t beyond lastChange), in which case the queue was updated.
func (s *changeService) receive(m ChangeMsg) bool {
	if m.T <= s.lastChange {
		return false
	}
	s.lastChange = m.T
	s.queue = &ChangeMsg{T: m.T, ID: m.ID}
	return true
}

// pop returns the current queue entry without clearing it: the newest
// change is re-broadcast until superseded. The returned message is never
// mutated in place (receive and onChange replace it wholesale), so the
// shared pointer is safe on every substrate.
func (s *changeService) pop() *ChangeMsg {
	return s.queue
}

// treeService implements Algorithm 4 (tree building): for every root id
// seen, maintain the best known distance and the parent realizing it,
// Bellman-Ford style. The pending queue keeps at most one search message
// per root (the lowest hop count seen), with the current leader's message
// kept at the front; once the pending queue drains, the service keeps
// re-advertising its best known distance per root, cycling round-robin —
// so a node that lost its parent re-learns a route from any live
// neighbor's retransmissions after a purge.
type treeService struct {
	self   amac.NodeID
	dist   map[amac.NodeID]int64
	parent map[amac.NodeID]amac.NodeID
	// roots is the sorted list of known roots, cycled by pop when the
	// pending queue is empty.
	roots    []amac.NodeID
	rootsCur int
	// queue preserves FIFO order except that the current leader's entry
	// is pinned to the front; it holds the not-yet-broadcast improvements
	// (one entry per root with pending propagation).
	queue []SearchMsg
}

func (s *treeService) init(self amac.NodeID) {
	s.self = self
	s.dist = map[amac.NodeID]int64{self: 0}
	s.parent = map[amac.NodeID]amac.NodeID{self: self}
	s.roots = []amac.NodeID{self}
	s.queue = []SearchMsg{{Root: self, Hops: 1, Sender: self}}
}

// distTo returns the best known distance to root, or -1 when unknown
// (the paper's infinity).
func (s *treeService) distTo(root amac.NodeID) int64 {
	d, ok := s.dist[root]
	if !ok {
		return -1
	}
	return d
}

// parentTo returns the parent toward root, or amac.NoID when unknown.
func (s *treeService) parentTo(root amac.NodeID) amac.NodeID {
	p, ok := s.parent[root]
	if !ok {
		return amac.NoID
	}
	return p
}

// receive processes <search, root, h> from sender; it reports whether the
// distance estimate improved (h < dist[root]).
func (s *treeService) receive(m SearchMsg, leader amac.NodeID) bool {
	cur, known := s.dist[m.Root]
	if known && m.Hops >= cur {
		return false
	}
	if !known {
		i := sort.Search(len(s.roots), func(k int) bool { return s.roots[k] >= m.Root })
		s.roots = append(s.roots, 0)
		copy(s.roots[i+1:], s.roots[i:])
		s.roots[i] = m.Root
	}
	s.dist[m.Root] = m.Hops
	s.parent[m.Root] = m.Sender
	s.updateQ(SearchMsg{Root: m.Root, Hops: m.Hops + 1, Sender: s.self}, leader)
	return true
}

// updateQ enqueues a search message, discards any queued message for the
// same root with a larger hop count, and pins the leader's message to the
// front (Algorithm 4's UpdateQ).
func (s *treeService) updateQ(m SearchMsg, leader amac.NodeID) {
	kept := s.queue[:0]
	for _, q := range s.queue {
		if q.Root == m.Root {
			if q.Hops <= m.Hops {
				// The queued message dominates; drop the new one.
				m = q
			}
			continue // the dominated copy is discarded
		}
		kept = append(kept, q)
	}
	s.queue = append(kept, m)
	s.prioritize(leader)
}

// prioritize moves the current leader's search message (if any) to the
// front; called on enqueue and when the leader estimate changes
// (Algorithm 4's OnLeaderChange).
func (s *treeService) prioritize(leader amac.NodeID) {
	for i, q := range s.queue {
		if q.Root == leader && i > 0 {
			m := s.queue[i]
			copy(s.queue[1:i+1], s.queue[:i])
			s.queue[0] = m
			return
		}
	}
}

// pop yields one message for the broadcast service: the next pending
// improvement when there is one, otherwise the sticky retransmission of
// the best known distance to the next root in the cycle. It reports
// false only before init.
func (s *treeService) pop() (SearchMsg, bool) {
	if len(s.queue) > 0 {
		m := s.queue[0]
		s.queue = s.queue[1:]
		return m, true
	}
	if len(s.roots) == 0 {
		return SearchMsg{}, false
	}
	if s.rootsCur >= len(s.roots) {
		s.rootsCur = 0
	}
	root := s.roots[s.rootsCur]
	s.rootsCur++
	return SearchMsg{Root: root, Hops: s.dist[root] + 1, Sender: s.self}, true
}
