package wpaxos

import (
	"sort"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/metrics"
)

// This file implements the Ω failure detector shared by wPAXOS and the
// floodpaxos baseline. The paper's Algorithm 2 elects the maximum id ever
// heard, monotonically — correct in crash-free executions but fatal under
// leader death: every survivor gates its proposer on omega == self and
// waits on a corpse (Theorem 3.2 made concrete; see the two stall
// artifacts retired by PR 8). The redesign keeps the deterministic
// max-id rule but adds suspicion:
//
//   - Membership: ids are learned by gossip (the leader slot of every
//     broadcast cycles through the known member set) and kept sorted, so
//     rotation order is identical across nodes and seeds.
//   - Suspicion: a node tracks the time of the last *novel* information it
//     observed — any dedup-passing state change (new member, fresh change
//     notification, tree improvement, first-seen proposition or response,
//     advancing acceptor state). When nothing novel arrives for longer
//     than the silence bound, the current omega is demoted and the next
//     highest unsuspected member takes over.
//   - Silence bound: fhat * (4n+8) * mult, where fhat is the largest
//     broadcast-to-ack delay this node has observed (its running Fack
//     estimate) and mult doubles on every firing (capped). The 4n+8
//     factor covers the worst-case information latency of a proposal
//     round trip across the network; the doubling makes false suspicion
//     self-healing — a too-small bound only delays, never prevents,
//     convergence, because a falsely demoted leader's proposals still get
//     responses (proposer gating is relaxed; see node.go).
//   - Re-promotion: when the local node is omega and every other member
//     is suspected, continued silence clears all suspicions and
//     re-promotes the maximum member, re-probing nodes that may have been
//     falsely demoted ("recovery-free silence" wraps the rotation).
//
// False suspicion is safe — PAXOS safety is proposer-independent — so the
// detector only needs eventual accuracy in the Ω sense: if any majority
// survives, some survivor eventually believes itself leader long enough
// to drive a proposal to completion. Undecided nodes broadcast on every
// pump (retransmit-until-superseded keeps their queues non-empty), so the
// ack stream that clocks Check never dries up.

// DetectorEvent is the outcome of a silence check.
type DetectorEvent int

const (
	// DetectorQuiet: the silence bound has not elapsed; nothing changed.
	DetectorQuiet DetectorEvent = iota
	// DetectorDemoted: omega changed (a suspicion was added, or the
	// rotation wrapped and re-promoted the maximum member). The caller
	// should treat this as a change event.
	DetectorDemoted
	// DetectorRearm: this node already believes itself leader but nothing
	// is progressing; the caller should restart its proposer.
	DetectorRearm
)

// Detector is the suspicion-based Ω failure detector. One instance per
// node; all methods are called from the node's serialized event handlers.
type Detector struct {
	self amac.NodeID
	n    int

	members    []amac.NodeID // sorted ascending; always contains self
	suspected  map[amac.NodeID]bool
	omega      amac.NodeID
	gossipCur  int
	gossipTick int

	fhat      int64 // largest observed broadcast-to-ack delay, >= 1
	sendAt    int64 // time of the in-flight broadcast, -1 when none
	lastNovel int64
	mult      int64 // doubling multiplier for the silence bound

	// Metric handles (zero = disabled; see Instrument). All nodes of a
	// run share the slots, so the counts are network-wide totals.
	mSuspicions metrics.Counter
	mWraps      metrics.Counter
	mRearms     metrics.Counter
	mFhat       metrics.Gauge
	mMult       metrics.Gauge
}

// maxDetectorMult caps the doubling so the bound cannot overflow; at the
// cap the detector still fires, just at a fixed (very long) period.
const maxDetectorMult = 1 << 16

// NewDetector returns a detector for a node with the given id in a
// network of size n.
func NewDetector(self amac.NodeID, n int) *Detector {
	return &Detector{
		self:      self,
		n:         n,
		members:   []amac.NodeID{self},
		suspected: make(map[amac.NodeID]bool),
		omega:     self,
		fhat:      1,
		sendAt:    -1,
		mult:      1,
	}
}

// Instrument registers the detector's metric slots against r (nil-safe:
// a nil registry leaves the zero, disabled handles in place). Slot names
// are shared across all nodes and both algorithms — suspicions, wrap
// re-promotions and re-arms are network-wide totals, det_fhat's
// high-water is the largest Fack estimate any node formed, det_mult the
// largest silence-bound multiplier reached.
func (d *Detector) Instrument(r *metrics.Registry) {
	d.mSuspicions = r.Counter("det_suspicions")
	d.mWraps = r.Counter("det_wraps")
	d.mRearms = r.Counter("det_rearms")
	d.mFhat = r.Gauge("det_fhat")
	d.mMult = r.Gauge("det_mult")
}

// Omega returns the current leader estimate: the maximum unsuspected
// member.
func (d *Detector) Omega() amac.NodeID { return d.omega }

// Members returns the sorted known member set (shared slice; callers must
// not mutate it).
func (d *Detector) Members() []amac.NodeID { return d.members }

// Suspects reports whether id is currently suspected.
func (d *Detector) Suspects(id amac.NodeID) bool { return d.suspected[id] }

// Learn adds id to the member set, reporting whether it was new. The
// caller should compare Omega before and after: a newly learned maximum
// takes over immediately (the paper's max-id election, now over a gossiped
// membership rather than a monotone high-water mark).
func (d *Detector) Learn(id amac.NodeID) bool {
	i := sort.Search(len(d.members), func(k int) bool { return d.members[k] >= id })
	if i < len(d.members) && d.members[i] == id {
		return false
	}
	d.members = append(d.members, 0)
	copy(d.members[i+1:], d.members[i:])
	d.members[i] = id
	d.elect()
	return true
}

// Gossip returns the next member id to announce. It alternates between
// the current omega — so the leader estimate floods at full speed and
// stabilizes in O(D*Fack), matching the paper's Algorithm 2 — and a
// round-robin walk of the member set, which spreads full membership so
// every node demotes in the same order. It is never empty (self is always
// a member), so an undecided node always has something to broadcast — the
// liveness tick the silence check depends on.
func (d *Detector) Gossip() amac.NodeID {
	d.gossipTick++
	if d.gossipTick%2 == 1 {
		return d.omega
	}
	if d.gossipCur >= len(d.members) {
		d.gossipCur = 0
	}
	id := d.members[d.gossipCur]
	d.gossipCur++
	return id
}

// Novel records that novel information was observed at time now, resetting
// the silence window. Retransmitted (deduplicated) traffic must not be
// reported here — only state changes count as progress.
func (d *Detector) Novel(now int64) {
	if now > d.lastNovel {
		d.lastNovel = now
	}
}

// NoteSend records the start of a broadcast (for the Fack estimate).
func (d *Detector) NoteSend(now int64) { d.sendAt = now }

// NoteAck records the matching ack and folds the observed delay into the
// Fack estimate fhat.
func (d *Detector) NoteAck(now int64) {
	if d.sendAt < 0 {
		return
	}
	delay := now - d.sendAt
	if delay < 1 {
		delay = 1
	}
	if delay > d.fhat {
		d.fhat = delay
		d.mFhat.Set(d.fhat)
	}
	d.sendAt = -1
}

// Bound returns the current silence bound.
func (d *Detector) Bound() int64 { return d.fhat * int64(4*d.n+8) * d.mult }

// Check runs the silence check at time now. When the bound has elapsed
// with nothing novel it fires: demote the current omega (electing the next
// highest unsuspected member), wrap the rotation when everyone else is
// already suspected, or — when this node is omega with no one suspected —
// tell the caller to re-arm its own proposer.
func (d *Detector) Check(now int64) DetectorEvent {
	if now-d.lastNovel <= d.Bound() {
		return DetectorQuiet
	}
	d.lastNovel = now
	if d.mult < maxDetectorMult {
		d.mult *= 2
		d.mMult.Set(d.mult)
	}
	if d.omega != d.self {
		d.suspected[d.omega] = true
		d.mSuspicions.Inc()
		d.elect()
		return DetectorDemoted
	}
	if len(d.suspected) == 0 {
		d.mRearms.Inc()
		return DetectorRearm
	}
	// This node rotated all the way down to itself and still nothing
	// moved: clear the suspicions and re-probe from the top. A demoted
	// leader that was falsely suspected re-promotes here.
	for _, m := range d.members {
		delete(d.suspected, m)
	}
	d.elect()
	d.mWraps.Inc()
	if d.omega == d.self {
		d.mRearms.Inc()
		return DetectorRearm
	}
	return DetectorDemoted
}

// elect recomputes omega: the maximum unsuspected member, wrapping (all
// suspicions cleared) when every member is suspected. Members are sorted,
// so the scan is deterministic.
func (d *Detector) elect() {
	for i := len(d.members) - 1; i >= 0; i-- {
		if !d.suspected[d.members[i]] {
			d.omega = d.members[i]
			return
		}
	}
	for _, m := range d.members {
		delete(d.suspected, m)
	}
	d.omega = d.members[len(d.members)-1]
}
