package wpaxos

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
)

// Config carries a node's knowledge assumptions and instrumentation.
type Config struct {
	// N is the network size, which wPAXOS assumes known (required by the
	// Section 3.3 lower bound). Majorities are computed against it.
	N int
	// Audit optionally instruments the Lemma 4.2 counting invariant.
	Audit *CountAudit
	// NoTreePriority disables the tree queue's leader-first pinning
	// (Algorithm 4's UpdateQ optimization). Ablation only: Lemma 4.5's
	// fast stabilization argument relies on the priority; correctness
	// does not. Experiment E11's ablation row measures the difference.
	NoTreePriority bool
}

// NewFactory returns an amac.Factory producing wPAXOS nodes that share the
// given configuration.
func NewFactory(cfg Config) amac.Factory {
	if cfg.N < 1 {
		panic(fmt.Sprintf("wpaxos: invalid network size %d", cfg.N))
	}
	return func(nc amac.NodeConfig) amac.Algorithm {
		return New(nc.Input, cfg)
	}
}

// Node is one wPAXOS participant: the four support services, the PAXOS
// proposer and acceptor roles, and the decide flood.
type Node struct {
	api   amac.API
	id    amac.NodeID
	n     int
	input amac.Value
	audit *CountAudit
	noPri bool

	leader leaderService
	change changeService
	tree   treeService
	prop   proposerState
	acc    acceptorState

	// propQ is the proposer flood queue. Its invariant (Section 4.2.1):
	// at most one message — from the current leader, with the largest
	// proposal number seen from that leader (a propose supersedes the
	// prepare of the same number).
	propQ *ProposerMsg
	// seenProps dedups the proposer flood ("rebroadcast on first sight")
	// and doubles as the acceptor's responded-once guard.
	seenProps map[Proposition]bool
	// maxLeaderNum is the largest proposal number seen from the current
	// leader; the response queue is pruned against it.
	maxLeaderNum ProposalNum
	// respQ is the acceptor response queue: aggregated responses keyed
	// by (proposition, polarity), awaiting a known parent to relay to.
	respQ []*ResponseMsg

	decideQ  *DecideMsg
	inflight bool
	decided  bool
	decision amac.Value

	// maxTagUsed tracks the largest tag this node proposed with
	// (experiment E8 / Lemma 4.4).
	maxTagUsed int64
	// lastLeaderUpdate and lastLeaderDistUpdate record stabilization
	// times for the GST decomposition of experiment E6.
	lastLeaderUpdate, lastLeaderDistUpdate int64
}

// New returns a wPAXOS node for the given binary input. The paper studies
// binary consensus (which strengthens its lower bounds); use NewGeneral
// for arbitrary value sets.
func New(input amac.Value, cfg Config) *Node {
	if input != 0 && input != 1 {
		panic(fmt.Sprintf("wpaxos: input %d is not binary", input))
	}
	return NewGeneral(input, cfg)
}

// NewGeneral returns a wPAXOS node for an arbitrary input value. The
// binary restriction in the paper exists to strengthen its lower bounds,
// not because the algorithm needs it: a PAXOS value rides along in
// propose messages and previous-proposal reports unchanged, still within
// the O(1)-ids message bound. (The paper's open problem about general
// values concerns solutions built from binary consensus bit by bit; wPAXOS
// sidesteps it because the value never needs to be decomposed.)
func NewGeneral(input amac.Value, cfg Config) *Node {
	if cfg.N < 1 {
		panic(fmt.Sprintf("wpaxos: invalid network size %d", cfg.N))
	}
	return &Node{
		n:         cfg.N,
		input:     input,
		audit:     cfg.Audit,
		noPri:     cfg.NoTreePriority,
		seenProps: make(map[Proposition]bool),
	}
}

// NewGeneralFactory returns a factory of NewGeneral nodes.
func NewGeneralFactory(cfg Config) amac.Factory {
	if cfg.N < 1 {
		panic(fmt.Sprintf("wpaxos: invalid network size %d", cfg.N))
	}
	return func(nc amac.NodeConfig) amac.Algorithm {
		return NewGeneral(nc.Input, cfg)
	}
}

// Start implements amac.Algorithm.
func (nd *Node) Start(api amac.API) {
	nd.api = api
	nd.id = api.ID()
	nd.leader.init(nd.id)
	nd.change.init()
	nd.tree.init(nd.id)
	if nd.n == 1 {
		// A singleton network has no peers to talk to; decide directly
		// (validity is trivial). The services would otherwise idle
		// forever since no change events can occur.
		nd.decide(nd.input)
		return
	}
	nd.pump()
}

// OnReceive implements amac.Algorithm.
func (nd *Node) OnReceive(m amac.Message) {
	c, ok := m.(Combined)
	if !ok {
		panic(fmt.Sprintf("wpaxos: unexpected message type %T", m))
	}
	if c.Leader != nil {
		nd.onLeader(*c.Leader)
	}
	if c.Search != nil {
		nd.onSearch(*c.Search)
	}
	if c.Change != nil {
		nd.onChange(*c.Change)
	}
	if c.Proposer != nil {
		nd.onProposer(*c.Proposer)
	}
	if c.Response != nil {
		nd.onResponse(*c.Response)
	}
	if c.Decide != nil {
		nd.onDecide(*c.Decide)
	}
	nd.pump()
}

// OnAck implements amac.Algorithm.
func (nd *Node) OnAck(amac.Message) {
	nd.inflight = false
	nd.pump()
}

// pump is the broadcast service (Algorithm 5): combine one message from
// each non-empty queue into a single broadcast. After the node decides,
// only the decide flood remains relevant; the other services go quiet so
// the execution quiesces.
func (nd *Node) pump() {
	if nd.inflight {
		return
	}
	var c Combined
	any := false
	if nd.decideQ != nil {
		c.Decide, nd.decideQ = nd.decideQ, nil
		any = true
	}
	if !nd.decided {
		if m := nd.leader.pop(); m != nil {
			c.Leader = m
			any = true
		}
		if m := nd.change.pop(); m != nil {
			c.Change = m
			any = true
		}
		if m := nd.tree.pop(); m != nil {
			c.Search = m
			any = true
		}
		if nd.propQ != nil {
			c.Proposer, nd.propQ = nd.propQ, nil
			any = true
		}
		if r := nd.popResp(); r != nil {
			c.Response = r
			any = true
		}
	}
	if !any {
		return
	}
	nd.inflight = true
	nd.api.Broadcast(c)
}

// popResp removes the first relayable response (one whose next hop toward
// the proposer is known) and stamps its destination at send time.
func (nd *Node) popResp() *ResponseMsg {
	for i, r := range nd.respQ {
		parent := nd.tree.parentTo(r.Prop.Num.ID)
		if parent == amac.NoID {
			continue
		}
		r.Dest = parent
		nd.respQ = append(nd.respQ[:i], nd.respQ[i+1:]...)
		return r
	}
	return nil
}

// ---- Service message handlers ----

func (nd *Node) onLeader(m LeaderMsg) {
	if !nd.leader.receive(m) {
		return
	}
	nd.lastLeaderUpdate = nd.api.Now()
	// OnLeaderChange (Algorithm 4): re-pin the tree queue.
	if !nd.noPri {
		nd.tree.prioritize(nd.leader.omega)
	}
	// The proposer and response queues only ever hold material for the
	// current leader (Section 4.2.1 queue invariants).
	if nd.propQ != nil && nd.propQ.Num.ID != nd.leader.omega {
		nd.propQ = nil
	}
	nd.maxLeaderNum = ProposalNum{}
	nd.respQ = nd.respQ[:0]
	// A leader update is a change event (Algorithm 3).
	nd.localChange()
}

func (nd *Node) onSearch(m SearchMsg) {
	pin := nd.leader.omega
	if nd.noPri {
		pin = amac.NoID
	}
	if !nd.tree.receive(m, pin) {
		return
	}
	// Only improvements of the distance to the *current leader* are
	// change events; see the package comment for why this reading of
	// Algorithm 3's "Omega_u or dist_u updated" is the one that yields
	// the paper's O(D*Fack) global stabilization time.
	if m.Root == nd.leader.omega {
		nd.lastLeaderDistUpdate = nd.api.Now()
		nd.localChange()
	}
}

func (nd *Node) localChange() {
	nd.change.onChange(nd.api.Now(), nd.id)
	if nd.leader.omega == nd.id {
		nd.generateProposal()
	}
}

func (nd *Node) onChange(m ChangeMsg) {
	if !nd.change.receive(m) {
		return
	}
	if nd.leader.omega == nd.id {
		nd.generateProposal()
	}
}

func (nd *Node) onDecide(m DecideMsg) {
	if nd.decided {
		return
	}
	nd.decide(m.Val)
	nd.decideQ = &DecideMsg{Val: m.Val} // flood onward
}

func (nd *Node) decide(v amac.Value) {
	nd.decided = true
	nd.decision = v
	nd.api.Decide(v)
}

// ---- Proposer flood and acceptor role ----

func (nd *Node) onProposer(m ProposerMsg) {
	if nd.prop.maxTagSeen < m.Num.Tag {
		nd.prop.maxTagSeen = m.Num.Tag
	}
	key := m.Proposition()
	if nd.seenProps[key] {
		return // flood dedup: relay and respond only on first sight
	}
	nd.seenProps[key] = true
	if m.Num.ID != nd.leader.omega {
		// Queue invariant (1): only material from the current leader
		// propagates. Dropping a proposition is indistinguishable from
		// message loss, which PAXOS tolerates.
		return
	}
	nd.noteLeaderNum(m.Num)
	nd.enqueueProp(m)
	nd.respond(m)
}

// noteLeaderNum updates the largest proposal number seen from the current
// leader and prunes the response queue accordingly (queue invariant (2)).
func (nd *Node) noteLeaderNum(num ProposalNum) {
	if nd.maxLeaderNum.Less(num) {
		nd.maxLeaderNum = num
		kept := nd.respQ[:0]
		for _, r := range nd.respQ {
			if !r.Prop.Num.Less(num) {
				kept = append(kept, r)
			}
		}
		nd.respQ = kept
	}
}

// enqueueProp installs a proposer message in the flood queue, displacing
// anything older (larger number wins; a propose supersedes the prepare of
// the same number).
func (nd *Node) enqueueProp(m ProposerMsg) {
	cur := nd.propQ
	if cur == nil || cur.Num.Less(m.Num) || (cur.Num == m.Num && cur.Kind == Prepare && m.Kind == Propose) {
		nd.propQ = &m
	}
}

// respond runs the acceptor against a proposition and routes the response
// toward the proposer.
func (nd *Node) respond(m ProposerMsg) {
	var r ResponseMsg
	r.Prop = m.Proposition()
	switch m.Kind {
	case Prepare:
		r.Positive, r.Prev, r.Committed = nd.acc.handlePrepare(m.Num)
	case Propose:
		r.Positive, r.Committed = nd.acc.handlePropose(m.Num, m.Val)
	default:
		panic(fmt.Sprintf("wpaxos: unknown proposer message kind %v", m.Kind))
	}
	r.Count = 1
	if r.Positive {
		nd.audit.addGenerated(r.Prop)
	}
	if m.Num.ID == nd.id {
		// The proposer's own acceptor responds directly.
		nd.consumeResponse(r)
		return
	}
	nd.enqueueResp(r)
}

// enqueueResp aggregates a response into the relay queue (Section 4.2.1):
// same proposition and polarity merge into one message whose count is the
// sum, keeping only the highest-numbered previous proposal and the largest
// committed number.
func (nd *Node) enqueueResp(r ResponseMsg) {
	if r.Prop.Num.ID != nd.leader.omega {
		return // queue invariant (1)
	}
	if r.Prop.Num.Less(nd.maxLeaderNum) {
		return // queue invariant (2): stale proposition
	}
	nd.noteLeaderNum(r.Prop.Num)
	for _, q := range nd.respQ {
		if q.Prop == r.Prop && q.Positive == r.Positive {
			q.Count += r.Count
			q.Prev = maxPrev(q.Prev, r.Prev)
			q.Committed = q.Committed.Max(r.Committed)
			return
		}
	}
	cp := r
	nd.respQ = append(nd.respQ, &cp)
}

// onResponse handles an incoming response: consume it when this node is
// the addressee and the proposer, relay it (re-aggregated) when this node
// is the addressee but not the proposer, ignore it otherwise.
func (nd *Node) onResponse(r ResponseMsg) {
	if nd.prop.maxTagSeen < r.Committed.Tag {
		nd.prop.maxTagSeen = r.Committed.Tag
	}
	if r.Prev != nil && nd.prop.maxTagSeen < r.Prev.Num.Tag {
		nd.prop.maxTagSeen = r.Prev.Num.Tag
	}
	if r.Dest != nd.id {
		return // unicast-over-broadcast: not addressed to us
	}
	if r.Prop.Num.ID == nd.id {
		nd.consumeResponse(r)
		return
	}
	nd.enqueueResp(r)
}

// ---- Proposer logic ----

// generateProposal is the change service's GenerateNewPAXOSProposal: start
// a fresh proposal number, with a budget of two numbers per notification.
func (nd *Node) generateProposal() {
	if nd.decided {
		return
	}
	nd.prop.triesLeft = 2
	nd.startProposal()
}

func (nd *Node) startProposal() {
	nd.prop.triesLeft--
	tag := nd.prop.maxTagSeen + 1
	nd.prop.maxTagSeen = tag
	if tag > nd.maxTagUsed {
		nd.maxTagUsed = tag
	}
	nd.prop.num = ProposalNum{Tag: tag, ID: nd.id}
	nd.prop.phase = propPreparing
	nd.prop.acks, nd.prop.nacks = 0, 0
	nd.prop.bestPrev = nil
	nd.originate(ProposerMsg{Kind: Prepare, Num: nd.prop.num})
}

// originate floods one of this node's own proposer messages and runs the
// local acceptor against it.
func (nd *Node) originate(m ProposerMsg) {
	key := m.Proposition()
	nd.seenProps[key] = true
	nd.noteLeaderNum(m.Num)
	nd.enqueueProp(m)
	nd.respond(m)
}

// consumeResponse is the proposer counting responses addressed to itself.
func (nd *Node) consumeResponse(r ResponseMsg) {
	// Fold learned numbers into maxTagSeen here too: self-responses skip
	// onResponse, and a retry must out-number everything the rejecting
	// majority is committed to.
	if nd.prop.maxTagSeen < r.Committed.Tag {
		nd.prop.maxTagSeen = r.Committed.Tag
	}
	if r.Prev != nil && nd.prop.maxTagSeen < r.Prev.Num.Tag {
		nd.prop.maxTagSeen = r.Prev.Num.Tag
	}
	if r.Positive {
		nd.audit.addCounted(r.Prop, r.Count)
	}
	if nd.decided || r.Prop.Num != nd.prop.num {
		return // stale proposition
	}
	switch {
	case nd.prop.phase == propPreparing && r.Prop.Kind == Prepare:
		if r.Positive {
			nd.prop.acks += r.Count
			nd.prop.bestPrev = maxPrev(nd.prop.bestPrev, r.Prev)
			if 2*nd.prop.acks > int64(nd.n) {
				nd.beginPropose()
			}
		} else {
			nd.prop.nacks += r.Count
			if 2*nd.prop.nacks > int64(nd.n) {
				nd.retry()
			}
		}
	case nd.prop.phase == propProposing && r.Prop.Kind == Propose:
		if r.Positive {
			nd.prop.acks += r.Count
			if 2*nd.prop.acks > int64(nd.n) {
				// A majority accepted: decide and flood.
				nd.decide(nd.prop.value)
				nd.decideQ = &DecideMsg{Val: nd.prop.value}
			}
		} else {
			nd.prop.nacks += r.Count
			if 2*nd.prop.nacks > int64(nd.n) {
				nd.retry()
			}
		}
	}
}

// beginPropose moves a prepared proposal to the propose phase, adopting the
// highest-numbered previous proposal's value when one was reported
// (Lemma 4.3's condition (b)), else this node's own input.
func (nd *Node) beginPropose() {
	nd.prop.phase = propProposing
	nd.prop.acks, nd.prop.nacks = 0, 0
	if nd.prop.bestPrev != nil {
		nd.prop.value = nd.prop.bestPrev.Val
	} else {
		nd.prop.value = nd.input
	}
	nd.originate(ProposerMsg{Kind: Propose, Num: nd.prop.num, Val: nd.prop.value})
}

// retry abandons the current number after a majority rejected it. The
// proposer has learned the largest committed number from the aggregated
// rejections (already folded into maxTagSeen), so the next number — if the
// two-numbers budget allows one and this node still believes it is the
// leader — beats everything that majority is committed to.
func (nd *Node) retry() {
	if nd.leader.omega != nd.id || nd.prop.triesLeft <= 0 {
		nd.prop.phase = propIdle
		nd.prop.num = ProposalNum{}
		return
	}
	nd.startProposal()
}

// ---- Introspection (used by experiments and tests) ----

// Decided implements amac.Decider.
func (nd *Node) Decided() (amac.Value, bool) { return nd.decision, nd.decided }

// Leader returns the node's current leader estimate.
func (nd *Node) Leader() amac.NodeID { return nd.leader.omega }

// DistToLeader returns the node's best known distance to its current
// leader estimate, or -1 when unknown.
func (nd *Node) DistToLeader() int64 { return nd.tree.distTo(nd.leader.omega) }

// ParentToLeader returns the next hop toward the current leader estimate,
// or amac.NoID when unknown.
func (nd *Node) ParentToLeader() amac.NodeID { return nd.tree.parentTo(nd.leader.omega) }

// MaxTagUsed returns the largest proposal tag this node proposed with
// (0 when it never proposed); Lemma 4.4 bounds it polynomially in n.
func (nd *Node) MaxTagUsed() int64 { return nd.maxTagUsed }

// StabilizationTimes returns the times of the node's last leader-estimate
// update and last leader-distance update, for the E6 GST decomposition.
func (nd *Node) StabilizationTimes() (leaderUpdate, distUpdate int64) {
	return nd.lastLeaderUpdate, nd.lastLeaderDistUpdate
}

var (
	_ amac.Algorithm = (*Node)(nil)
	_ amac.Decider   = (*Node)(nil)
)
