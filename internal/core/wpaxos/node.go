package wpaxos

import (
	"fmt"
	"sort"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/metrics"
)

// Config carries a node's knowledge assumptions and instrumentation.
type Config struct {
	// N is the network size, which wPAXOS assumes known (required by the
	// Section 3.3 lower bound). Majorities are computed against it.
	N int
	// Audit optionally instruments the Lemma 4.2 counting invariant.
	Audit *CountAudit
	// NoTreePriority disables the tree queue's leader-first pinning
	// (Algorithm 4's UpdateQ optimization). Ablation only: Lemma 4.5's
	// fast stabilization argument relies on the priority; correctness
	// does not. Experiment E11's ablation row measures the difference.
	NoTreePriority bool
}

// NewFactory returns an amac.Factory producing wPAXOS nodes that share the
// given configuration. Nodes built through a factory recycle their
// per-pump send buffers (response, state, leader, search) across
// broadcasts, which relies on the delivery-before-ack guarantee of
// serialized substrates (internal/sim); on wall-clock substrates build
// nodes with New/NewGeneral instead.
func NewFactory(cfg Config) amac.Factory {
	if cfg.N < 1 {
		panic(fmt.Sprintf("wpaxos: invalid network size %d", cfg.N))
	}
	return func(nc amac.NodeConfig) amac.Algorithm {
		a := New(nc.Input, cfg)
		a.reuse = true
		a.instrument(nc.Metrics)
		return a
	}
}

// chosenTally tracks, per proposal number, the set of origins ever seen
// with that proposal accepted. A majority means the value is chosen —
// any node may then decide, whether or not the proposer survived.
type chosenTally struct {
	val amac.Value
	by  map[amac.NodeID]bool
}

// Node is one wPAXOS participant: the support services, the suspicion-based
// Ω detector, the PAXOS proposer and acceptor roles, the gossiped
// acceptor-state fallback, and the decide flood.
type Node struct {
	api   amac.API
	id    amac.NodeID
	n     int
	input amac.Value
	audit *CountAudit
	noPri bool

	det    *Detector
	change changeService
	tree   treeService
	prop   proposerState
	acc    acceptorState

	// propQ is the proposer flood queue: the highest-numbered proposition
	// seen anywhere (a propose supersedes the prepare of the same
	// number). It is sticky — re-broadcast on every pump until superseded
	// — so a proposition survives lossy overlay edges.
	propQ *ProposerMsg
	// seenProps dedups the proposer flood ("rebroadcast on first sight")
	// and doubles as the acceptor's responded-once guard.
	seenProps map[Proposition]bool
	// maxLeaderNum is the largest proposal number seen from the current
	// leader; the fast-path response queue is pruned against it.
	maxLeaderNum ProposalNum
	// respQ is the fast-path acceptor response queue: aggregated
	// responses keyed by (proposition, polarity), awaiting a known parent
	// to relay to. Entries are sent once — aggregated counts cannot be
	// retransmitted without double counting — so this path is the
	// latency optimization (Theorem 4.3's O(D*Fack) argument) and the
	// sticky state gossip below is the loss-proof fallback.
	respQ []ResponseMsg

	// stateTbl holds the latest known acceptor state per origin (the
	// weave ipam/paxos idiom): merged monotonically, gossiped cyclically,
	// each entry re-broadcast until superseded by newer state from its
	// origin. stateOrder is the sorted gossip cycle.
	stateTbl   map[amac.NodeID]StateMsg
	stateOrder []amac.NodeID
	stateCur   int
	// chosen is the chosen-value watch: per proposal number, the origins
	// ever seen with it accepted. A majority decides regardless of who
	// proposed (safety does not depend on the proposer surviving).
	chosen map[ProposalNum]*chosenTally
	// gossAcks/gossNacks count distinct origins supporting/refusing the
	// current proposition via gossiped state. They are tallied separately
	// from the fast path's aggregated counts — each tally is individually
	// sound, and they are never summed.
	gossAcks  map[amac.NodeID]bool
	gossNacks map[amac.NodeID]bool

	decideQ  *DecideMsg
	inflight bool
	decided  bool
	decision amac.Value

	// maxTagUsed tracks the largest tag this node proposed with
	// (experiment E8 / Lemma 4.4).
	maxTagUsed int64
	// lastLeaderUpdate and lastLeaderDistUpdate record stabilization
	// times for the GST decomposition of experiment E6.
	lastLeaderUpdate, lastLeaderDistUpdate int64

	// mreg is the metrics registry handed down by the substrate (nil when
	// metrics are off); met holds the node's counter handles (zero =
	// disabled). propSent marks the sticky proposer queue entry as having
	// been broadcast at least once, so retransmissions can be told apart
	// from first sends.
	mreg     *metrics.Registry
	met      nodeMetrics
	propSent bool

	// reuse recycles the per-pump send buffers below across broadcasts
	// (factory-built nodes only; see NewFactory). The queues themselves
	// are value slices, so steady-state pumping does not allocate.
	reuse bool
	bufs  struct {
		leader LeaderMsg
		search SearchMsg
		resp   ResponseMsg
		state  StateMsg
	}
}

// New returns a wPAXOS node for the given binary input. The paper studies
// binary consensus (which strengthens its lower bounds); use NewGeneral
// for arbitrary value sets.
func New(input amac.Value, cfg Config) *Node {
	if input != 0 && input != 1 {
		panic(fmt.Sprintf("wpaxos: input %d is not binary", input))
	}
	return NewGeneral(input, cfg)
}

// NewGeneral returns a wPAXOS node for an arbitrary input value. The
// binary restriction in the paper exists to strengthen its lower bounds,
// not because the algorithm needs it: a PAXOS value rides along in
// propose messages and previous-proposal reports unchanged, still within
// the O(1)-ids message bound. (The paper's open problem about general
// values concerns solutions built from binary consensus bit by bit; wPAXOS
// sidesteps it because the value never needs to be decomposed.)
func NewGeneral(input amac.Value, cfg Config) *Node {
	if cfg.N < 1 {
		panic(fmt.Sprintf("wpaxos: invalid network size %d", cfg.N))
	}
	return &Node{
		n:         cfg.N,
		input:     input,
		audit:     cfg.Audit,
		noPri:     cfg.NoTreePriority,
		seenProps: make(map[Proposition]bool),
		stateTbl:  make(map[amac.NodeID]StateMsg),
		chosen:    make(map[ProposalNum]*chosenTally),
		gossAcks:  make(map[amac.NodeID]bool),
		gossNacks: make(map[amac.NodeID]bool),
	}
}

// NewGeneralFactory returns a factory of NewGeneral nodes (with send-buffer
// reuse; see NewFactory for the substrate caveat).
func NewGeneralFactory(cfg Config) amac.Factory {
	if cfg.N < 1 {
		panic(fmt.Sprintf("wpaxos: invalid network size %d", cfg.N))
	}
	return func(nc amac.NodeConfig) amac.Algorithm {
		a := NewGeneral(nc.Input, cfg)
		a.reuse = true
		a.instrument(nc.Metrics)
		return a
	}
}

// nodeMetrics is the wPAXOS node's counter set. All nodes of a run share
// the slots (registration dedups by name), so values are network totals.
type nodeMetrics struct {
	proposals   metrics.Counter // proposal numbers started
	retries     metrics.Counter // proposals abandoned after a nack majority
	nacks       metrics.Counter // negative fast-path responses consumed
	retransmits metrics.Counter // sticky proposer-queue re-broadcasts
}

// instrument registers the node's metric slots against r (nil-safe) and
// stashes the registry so Start can instrument the failure detector too.
func (nd *Node) instrument(r *metrics.Registry) {
	nd.mreg = r
	nd.met.proposals = r.Counter("wpaxos_proposals")
	nd.met.retries = r.Counter("wpaxos_retries")
	nd.met.nacks = r.Counter("wpaxos_nacks")
	nd.met.retransmits = r.Counter("wpaxos_retransmits")
}

// Start implements amac.Algorithm.
func (nd *Node) Start(api amac.API) {
	nd.api = api
	nd.id = api.ID()
	nd.det = NewDetector(nd.id, nd.n)
	nd.det.Instrument(nd.mreg)
	nd.change.init()
	nd.tree.init(nd.id)
	if nd.n == 1 {
		// A singleton network has no peers to talk to; decide directly
		// (validity is trivial). The services would otherwise idle
		// forever since no change events can occur.
		nd.decide(nd.input)
		return
	}
	nd.pump()
}

// OnReceive implements amac.Algorithm.
func (nd *Node) OnReceive(m amac.Message) {
	c, ok := m.(Combined)
	if !ok {
		panic(fmt.Sprintf("wpaxos: unexpected message type %T", m))
	}
	if c.Leader != nil {
		nd.onLeader(*c.Leader)
	}
	if c.Search != nil {
		nd.onSearch(*c.Search)
	}
	if c.Change != nil {
		nd.onChange(*c.Change)
	}
	if c.Proposer != nil {
		nd.onProposer(*c.Proposer)
	}
	if c.Response != nil {
		nd.onResponse(*c.Response)
	}
	if c.State != nil {
		nd.mergeState(*c.State)
	}
	if c.Decide != nil {
		nd.onDecide(*c.Decide)
	}
	nd.pump()
}

// OnAck implements amac.Algorithm. The ack stream clocks the failure
// detector: undecided nodes broadcast on every pump, so acks — and with
// them silence checks — never stop arriving.
func (nd *Node) OnAck(amac.Message) {
	nd.inflight = false
	now := nd.api.Now()
	nd.det.NoteAck(now)
	if !nd.decided {
		switch nd.det.Check(now) {
		case DetectorDemoted:
			nd.onOmegaChange()
			nd.localChange()
		case DetectorRearm:
			nd.generateProposal()
		}
	}
	nd.pump()
}

// pump is the broadcast service (Algorithm 5): combine one message from
// each non-empty queue into a single broadcast. While undecided, the
// leader slot always carries membership gossip, so the node is never
// silent; after the node decides, only the decide flood remains relevant
// and the execution quiesces.
func (nd *Node) pump() {
	if nd.inflight {
		return
	}
	var c Combined
	any := false
	if nd.decideQ != nil {
		c.Decide, nd.decideQ = nd.decideQ, nil
		any = true
	}
	if !nd.decided {
		lm := LeaderMsg{ID: nd.det.Gossip()}
		if nd.reuse {
			nd.bufs.leader = lm
			c.Leader = &nd.bufs.leader
		} else {
			cp := lm
			c.Leader = &cp
		}
		any = true
		if m := nd.change.pop(); m != nil {
			c.Change = m
		}
		if m, ok := nd.tree.pop(); ok {
			if nd.reuse {
				nd.bufs.search = m
				c.Search = &nd.bufs.search
			} else {
				cp := m
				c.Search = &cp
			}
		}
		if nd.propQ != nil {
			c.Proposer = nd.propQ // sticky: retransmitted until superseded
			if nd.propSent {
				nd.met.retransmits.Inc()
			} else {
				nd.propSent = true
			}
		}
		if r, ok := nd.popResp(); ok {
			if nd.reuse {
				nd.bufs.resp = r
				c.Response = &nd.bufs.resp
			} else {
				cp := r
				c.Response = &cp
			}
		}
		if st, ok := nd.popState(); ok {
			if nd.reuse {
				nd.bufs.state = st
				c.State = &nd.bufs.state
			} else {
				cp := st
				c.State = &cp
			}
		}
	}
	if !any {
		return
	}
	nd.det.NoteSend(nd.api.Now())
	nd.inflight = true
	nd.api.Broadcast(c)
}

// popResp removes the first relayable response (one whose next hop toward
// the proposer is known) and stamps its destination at send time.
func (nd *Node) popResp() (ResponseMsg, bool) {
	for i := range nd.respQ {
		parent := nd.tree.parentTo(nd.respQ[i].Prop.Num.ID)
		if parent == amac.NoID {
			continue
		}
		r := nd.respQ[i]
		r.Dest = parent
		nd.respQ = append(nd.respQ[:i], nd.respQ[i+1:]...)
		return r, true
	}
	return ResponseMsg{}, false
}

// popState returns the next acceptor state in the gossip cycle. Entries
// are never removed — each is re-broadcast until superseded in place by
// newer state from its origin.
func (nd *Node) popState() (StateMsg, bool) {
	if len(nd.stateOrder) == 0 {
		return StateMsg{}, false
	}
	if nd.stateCur >= len(nd.stateOrder) {
		nd.stateCur = 0
	}
	origin := nd.stateOrder[nd.stateCur]
	nd.stateCur++
	return nd.stateTbl[origin], true
}

// ---- Service message handlers ----

func (nd *Node) onLeader(m LeaderMsg) {
	prev := nd.det.Omega()
	if !nd.det.Learn(m.ID) {
		return
	}
	nd.det.Novel(nd.api.Now())
	if nd.det.Omega() != prev {
		nd.onOmegaChange()
		// A leader update is a change event (Algorithm 3).
		nd.localChange()
	}
}

// onOmegaChange re-pins the tree queue and resets the fast-path response
// queue invariants after the leader estimate moved (a new maximum member,
// a demotion, or a wrap-around re-promotion).
func (nd *Node) onOmegaChange() {
	nd.lastLeaderUpdate = nd.api.Now()
	// OnLeaderChange (Algorithm 4): re-pin the tree queue.
	if !nd.noPri {
		nd.tree.prioritize(nd.det.Omega())
	}
	// The fast-path response queue only ever holds material for the
	// current leader (Section 4.2.1 queue invariants); responses to
	// other proposers travel as state gossip instead.
	nd.maxLeaderNum = ProposalNum{}
	nd.respQ = nd.respQ[:0]
}

func (nd *Node) onSearch(m SearchMsg) {
	pin := nd.det.Omega()
	if nd.noPri {
		pin = amac.NoID
	}
	if !nd.tree.receive(m, pin) {
		return
	}
	nd.det.Novel(nd.api.Now())
	// Only improvements of the distance to the *current leader* are
	// change events; see the package comment for why this reading of
	// Algorithm 3's "Omega_u or dist_u updated" is the one that yields
	// the paper's O(D*Fack) global stabilization time.
	if m.Root == nd.det.Omega() {
		nd.lastLeaderDistUpdate = nd.api.Now()
		nd.localChange()
	}
}

func (nd *Node) localChange() {
	nd.change.onChange(nd.api.Now(), nd.id)
	if nd.det.Omega() == nd.id {
		nd.generateProposal()
	}
}

func (nd *Node) onChange(m ChangeMsg) {
	if !nd.change.receive(m) {
		return
	}
	nd.det.Novel(nd.api.Now())
	if nd.det.Omega() == nd.id {
		nd.generateProposal()
	}
}

func (nd *Node) onDecide(m DecideMsg) {
	if nd.decided {
		return
	}
	nd.decide(m.Val)
	nd.decideQ = &DecideMsg{Val: m.Val} // flood onward
}

func (nd *Node) decide(v amac.Value) {
	nd.decided = true
	nd.decision = v
	nd.api.Decide(v)
}

// ---- Proposer flood and acceptor role ----

func (nd *Node) onProposer(m ProposerMsg) {
	if nd.prop.maxTagSeen < m.Num.Tag {
		nd.prop.maxTagSeen = m.Num.Tag
	}
	key := m.Proposition()
	if nd.seenProps[key] {
		return // flood dedup: relay and respond only on first sight
	}
	nd.seenProps[key] = true
	nd.det.Novel(nd.api.Now())
	// Relay and answer every first-seen proposition, whoever proposed it:
	// with a rotating Ω, nodes may disagree about the leader, and safety
	// is proposer-independent. The fast-path relay queue stays gated on
	// the current leader (see respond); everyone else's counting flows
	// through the state gossip.
	nd.enqueueProp(m)
	nd.respond(m)
}

// noteLeaderNum updates the largest proposal number seen from the current
// leader and prunes the fast-path response queue accordingly (queue
// invariant (2)).
func (nd *Node) noteLeaderNum(num ProposalNum) {
	if nd.maxLeaderNum.Less(num) {
		nd.maxLeaderNum = num
		kept := nd.respQ[:0]
		for _, r := range nd.respQ {
			if !r.Prop.Num.Less(num) {
				kept = append(kept, r)
			}
		}
		nd.respQ = kept
	}
}

// enqueueProp installs a proposer message in the flood queue, displacing
// anything older (larger number wins; a propose supersedes the prepare of
// the same number).
func (nd *Node) enqueueProp(m ProposerMsg) {
	cur := nd.propQ
	if cur == nil || cur.Num.Less(m.Num) || (cur.Num == m.Num && cur.Kind == Prepare && m.Kind == Propose) {
		nd.propQ = &m
		nd.propSent = false
	}
}

// respond runs the acceptor against a proposition, publishes the updated
// acceptor state to the gossip layer, and routes the response toward the
// proposer when the fast path applies.
func (nd *Node) respond(m ProposerMsg) {
	var r ResponseMsg
	r.Prop = m.Proposition()
	switch m.Kind {
	case Prepare:
		r.Positive, r.Prev, r.Committed = nd.acc.handlePrepare(m.Num)
	case Propose:
		r.Positive, r.Committed = nd.acc.handlePropose(m.Num, m.Val)
	default:
		panic(fmt.Sprintf("wpaxos: unknown proposer message kind %v", m.Kind))
	}
	r.Count = 1
	if r.Positive {
		nd.audit.addGenerated(r.Prop)
	}
	// The acceptor state may have advanced; let the gossip layer (and the
	// local proposer) see it.
	nd.noteOwnState()
	if m.Num.ID == nd.id {
		// The proposer's own acceptor responds directly.
		nd.consumeResponse(r)
		return
	}
	if m.Num.ID == nd.det.Omega() {
		nd.noteLeaderNum(m.Num)
		nd.enqueueResp(r)
	}
}

// enqueueResp aggregates a response into the fast-path relay queue
// (Section 4.2.1): same proposition and polarity merge into one message
// whose count is the sum, keeping only the highest-numbered previous
// proposal and the largest committed number.
func (nd *Node) enqueueResp(r ResponseMsg) {
	if r.Prop.Num.ID != nd.det.Omega() {
		return // queue invariant (1)
	}
	if r.Prop.Num.Less(nd.maxLeaderNum) {
		return // queue invariant (2): stale proposition
	}
	nd.noteLeaderNum(r.Prop.Num)
	for i := range nd.respQ {
		q := &nd.respQ[i]
		if q.Prop == r.Prop && q.Positive == r.Positive {
			q.Count += r.Count
			q.Prev = maxPrev(q.Prev, r.Prev)
			q.Committed = q.Committed.Max(r.Committed)
			return
		}
	}
	nd.respQ = append(nd.respQ, r)
}

// onResponse handles an incoming fast-path response: consume it when this
// node is the addressee and the proposer, relay it (re-aggregated) when
// this node is the addressee but not the proposer, ignore it otherwise.
func (nd *Node) onResponse(r ResponseMsg) {
	if nd.prop.maxTagSeen < r.Committed.Tag {
		nd.prop.maxTagSeen = r.Committed.Tag
	}
	if r.Prev != nil && nd.prop.maxTagSeen < r.Prev.Num.Tag {
		nd.prop.maxTagSeen = r.Prev.Num.Tag
	}
	if r.Dest != nd.id {
		return // unicast-over-broadcast: not addressed to us
	}
	// An addressed response is always novel: the fast path sends each
	// aggregate once, so there are no retransmitted duplicates.
	nd.det.Novel(nd.api.Now())
	if r.Prop.Num.ID == nd.id {
		nd.consumeResponse(r)
		return
	}
	nd.enqueueResp(r)
}

// ---- Gossiped acceptor state (the weave idiom) ----

// noteOwnState publishes this node's acceptor state into the gossip table.
func (nd *Node) noteOwnState() {
	nd.mergeState(StateMsg{Origin: nd.id, Promised: nd.acc.promised, Accepted: nd.acc.accepted})
}

// mergeState merges a gossiped acceptor state: newer state per origin
// replaces older (monotone merge), feeds the chosen-value watch, and lets
// the local proposer count the origin.
func (nd *Node) mergeState(st StateMsg) {
	cur, ok := nd.stateTbl[st.Origin]
	if ok && !st.Newer(cur) {
		return // retransmission or stale: not novel
	}
	if !ok {
		i := sort.Search(len(nd.stateOrder), func(k int) bool { return nd.stateOrder[k] >= st.Origin })
		nd.stateOrder = append(nd.stateOrder, 0)
		copy(nd.stateOrder[i+1:], nd.stateOrder[i:])
		nd.stateOrder[i] = st.Origin
	}
	nd.stateTbl[st.Origin] = st
	nd.det.Novel(nd.api.Now())
	if st.Accepted != nil {
		nd.tallyChosen(*st.Accepted, st.Origin)
	}
	nd.countState(st)
}

// tallyChosen records that origin accepted p at some point. A majority of
// acceptors having accepted the same proposal means its value is chosen
// (the PAXOS chosen condition); any observer may decide it.
func (nd *Node) tallyChosen(p Proposal, origin amac.NodeID) {
	t := nd.chosen[p.Num]
	if t == nil {
		t = &chosenTally{val: p.Val, by: make(map[amac.NodeID]bool)}
		nd.chosen[p.Num] = t
	}
	if t.by[origin] {
		return
	}
	t.by[origin] = true
	if !nd.decided && 2*len(t.by) > nd.n {
		nd.decide(t.val)
		nd.decideQ = &DecideMsg{Val: t.val}
	}
}

// countState lets the proposer count a gossiped origin toward its current
// proposition. This is the loss-proof fallback tally: distinct origins,
// kept strictly separate from the fast path's aggregated counts (each
// tally is individually sound; they are never summed).
func (nd *Node) countState(st StateMsg) {
	if nd.decided || nd.prop.phase == propIdle {
		return
	}
	num := nd.prop.num
	if num.Less(st.Promised) && !nd.gossNacks[st.Origin] {
		// The origin is committed past our number and will never answer
		// it positively.
		nd.gossNacks[st.Origin] = true
		if 2*len(nd.gossNacks) > nd.n {
			nd.retry()
			return
		}
	}
	switch nd.prop.phase {
	case propPreparing:
		if st.Promised == num && !nd.gossAcks[st.Origin] {
			nd.gossAcks[st.Origin] = true
			nd.prop.bestPrev = maxPrev(nd.prop.bestPrev, st.Accepted)
			if 2*len(nd.gossAcks) > nd.n {
				nd.beginPropose()
			}
		}
	case propProposing:
		if st.Accepted != nil && st.Accepted.Num == num && !nd.gossAcks[st.Origin] {
			nd.gossAcks[st.Origin] = true
			if 2*len(nd.gossAcks) > nd.n {
				nd.decide(nd.prop.value)
				nd.decideQ = &DecideMsg{Val: nd.prop.value}
			}
		}
	}
}

// ---- Proposer logic ----

// generateProposal is the change service's GenerateNewPAXOSProposal: start
// a fresh proposal number, with a budget of two numbers per notification.
func (nd *Node) generateProposal() {
	if nd.decided {
		return
	}
	nd.prop.triesLeft = 2
	nd.startProposal()
}

func (nd *Node) startProposal() {
	nd.met.proposals.Inc()
	nd.prop.triesLeft--
	tag := nd.prop.maxTagSeen + 1
	nd.prop.maxTagSeen = tag
	if tag > nd.maxTagUsed {
		nd.maxTagUsed = tag
	}
	nd.prop.num = ProposalNum{Tag: tag, ID: nd.id}
	nd.prop.phase = propPreparing
	nd.prop.acks, nd.prop.nacks = 0, 0
	nd.prop.bestPrev = nil
	clear(nd.gossAcks)
	clear(nd.gossNacks)
	nd.originate(ProposerMsg{Kind: Prepare, Num: nd.prop.num})
}

// originate floods one of this node's own proposer messages and runs the
// local acceptor against it.
func (nd *Node) originate(m ProposerMsg) {
	key := m.Proposition()
	nd.seenProps[key] = true
	if nd.det.Omega() == nd.id {
		nd.noteLeaderNum(m.Num)
	}
	nd.enqueueProp(m)
	nd.respond(m)
}

// consumeResponse is the proposer counting fast-path responses addressed
// to itself.
func (nd *Node) consumeResponse(r ResponseMsg) {
	// Fold learned numbers into maxTagSeen here too: self-responses skip
	// onResponse, and a retry must out-number everything the rejecting
	// majority is committed to.
	if nd.prop.maxTagSeen < r.Committed.Tag {
		nd.prop.maxTagSeen = r.Committed.Tag
	}
	if r.Prev != nil && nd.prop.maxTagSeen < r.Prev.Num.Tag {
		nd.prop.maxTagSeen = r.Prev.Num.Tag
	}
	if r.Positive {
		nd.audit.addCounted(r.Prop, r.Count)
	}
	if nd.decided || r.Prop.Num != nd.prop.num {
		return // stale proposition
	}
	switch {
	case nd.prop.phase == propPreparing && r.Prop.Kind == Prepare:
		if r.Positive {
			nd.prop.acks += r.Count
			nd.prop.bestPrev = maxPrev(nd.prop.bestPrev, r.Prev)
			if 2*nd.prop.acks > int64(nd.n) {
				nd.beginPropose()
			}
		} else {
			nd.met.nacks.Add(r.Count)
			nd.prop.nacks += r.Count
			if 2*nd.prop.nacks > int64(nd.n) {
				nd.retry()
			}
		}
	case nd.prop.phase == propProposing && r.Prop.Kind == Propose:
		if r.Positive {
			nd.prop.acks += r.Count
			if 2*nd.prop.acks > int64(nd.n) {
				// A majority accepted: decide and flood.
				nd.decide(nd.prop.value)
				nd.decideQ = &DecideMsg{Val: nd.prop.value}
			}
		} else {
			nd.met.nacks.Add(r.Count)
			nd.prop.nacks += r.Count
			if 2*nd.prop.nacks > int64(nd.n) {
				nd.retry()
			}
		}
	}
}

// beginPropose moves a prepared proposal to the propose phase, adopting the
// highest-numbered previous proposal's value when one was reported
// (Lemma 4.3's condition (b)), else this node's own input.
func (nd *Node) beginPropose() {
	nd.prop.phase = propProposing
	nd.prop.acks, nd.prop.nacks = 0, 0
	clear(nd.gossAcks)
	clear(nd.gossNacks)
	if nd.prop.bestPrev != nil {
		nd.prop.value = nd.prop.bestPrev.Val
	} else {
		nd.prop.value = nd.input
	}
	nd.originate(ProposerMsg{Kind: Propose, Num: nd.prop.num, Val: nd.prop.value})
}

// retry abandons the current number after a majority rejected it. The
// proposer has learned the largest committed number from the aggregated
// rejections (already folded into maxTagSeen), so the next number — if the
// two-numbers budget allows one and this node still believes it is the
// leader — beats everything that majority is committed to. A node that
// exhausts its budget goes idle; the failure detector's re-arm (or the
// next change event) gives it a fresh budget, so no proposer is gated
// forever while it believes itself leader.
func (nd *Node) retry() {
	nd.met.retries.Inc()
	if nd.det.Omega() != nd.id || nd.prop.triesLeft <= 0 {
		nd.prop.phase = propIdle
		nd.prop.num = ProposalNum{}
		return
	}
	nd.startProposal()
}

// ---- Introspection (used by experiments and tests) ----

// Decided implements amac.Decider.
func (nd *Node) Decided() (amac.Value, bool) { return nd.decision, nd.decided }

// Leader returns the node's current leader estimate.
func (nd *Node) Leader() amac.NodeID { return nd.det.Omega() }

// DistToLeader returns the node's best known distance to its current
// leader estimate, or -1 when unknown.
func (nd *Node) DistToLeader() int64 { return nd.tree.distTo(nd.det.Omega()) }

// ParentToLeader returns the next hop toward the current leader estimate,
// or amac.NoID when unknown.
func (nd *Node) ParentToLeader() amac.NodeID { return nd.tree.parentTo(nd.det.Omega()) }

// MaxTagUsed returns the largest proposal tag this node proposed with
// (0 when it never proposed); Lemma 4.4 bounds it polynomially in n.
func (nd *Node) MaxTagUsed() int64 { return nd.maxTagUsed }

// StabilizationTimes returns the times of the node's last leader-estimate
// update and last leader-distance update, for the E6 GST decomposition.
func (nd *Node) StabilizationTimes() (leaderUpdate, distUpdate int64) {
	return nd.lastLeaderUpdate, nd.lastLeaderDistUpdate
}

var (
	_ amac.Algorithm = (*Node)(nil)
	_ amac.Decider   = (*Node)(nil)
)
