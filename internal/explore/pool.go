package explore

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/absmac/absmac/internal/harness"
)

// This file implements the shared replay worker pool behind every
// exploration phase. A campaign replays thousands of schedules across many
// scenarios — base recordings, perturbation candidates, shrink candidates —
// and all of them funnel through the same fixed set of worker goroutines.
// Each worker owns a lazily-built map of harness.ReplayRunner keyed by
// scenario identity (seed included — the seed drives inputs, topology and
// crash construction, so two seeds are two runners), so consecutive
// phases touching the same scenario — exploration candidates, then the
// shrinker's batches for the same flagged run — reuse the worker's
// engines instead of rebuilding them, and a runner — which is
// single-goroutine by contract — is never shared between workers.
//
// The pool executes closures, not declarative tasks: a ReplayRunner's
// Result is owned by its engine and valid only until the runner's next
// run, so each submission must extract what it needs (classification,
// closed schedule, cost) inside the worker before returning. Determinism
// is the submitter's job — every consumer here indexes results by a
// deterministic candidate position and reduces them in that order, so pool
// width changes wall-clock time, never results.

// runnerKey is a scenario's comparable identity for runner reuse: every
// serializable scenario field plus the event cap (two explorations of the
// same cell under different caps are different executions).
type runnerKey struct {
	algo      string
	topo      harness.Topo
	inputs    string
	sched     string
	fack      int64
	seed      int64
	crashes   string
	overlay   string
	maxEvents int
}

func keyOf(sc harness.Scenario) (runnerKey, error) {
	if sc.InputValues != nil {
		// InputValues is a slice — it has no comparable identity to key
		// runner reuse on, and it does not serialize into artifacts either
		// (Artifact.Validate refuses it for the same reason).
		return runnerKey{}, fmt.Errorf("explore: scenario carries explicit InputValues; use a named input pattern")
	}
	return runnerKey{
		algo: sc.Algo, topo: sc.Topo, inputs: sc.Inputs, sched: sc.Sched,
		fack: sc.Fack, seed: sc.Seed, crashes: sc.Crashes, overlay: sc.Overlay,
		maxEvents: sc.MaxEvents,
	}, nil
}

// runnerSet is one worker's private runner cache.
type runnerSet struct {
	runners map[runnerKey]*harness.ReplayRunner
}

// runnerCacheCap bounds a worker's runner cache. A campaign over many
// flagged scenarios (plus every shrunken-topology variant the minimizer
// visits) would otherwise accumulate one dead engine per key per worker
// for the pool's whole lifetime; the phases only ever interleave a
// handful of scenarios at a time, so wholesale eviction on overflow keeps
// the working set warm and the memory bounded.
const runnerCacheCap = 16

// runner returns the worker's runner for sc, building it on first use.
func (rs *runnerSet) runner(sc harness.Scenario) (*harness.ReplayRunner, error) {
	k, err := keyOf(sc)
	if err != nil {
		return nil, err
	}
	if r, ok := rs.runners[k]; ok {
		return r, nil
	}
	if len(rs.runners) >= runnerCacheCap {
		clear(rs.runners)
	}
	r, err := sc.NewReplayRunner()
	if err != nil {
		return nil, err
	}
	rs.runners[k] = r
	return r, nil
}

// evalPool is a fixed-width pool of replay workers.
type evalPool struct {
	tasks   chan func(*runnerSet)
	wg      sync.WaitGroup
	workers int
}

func newEvalPool(workers int) *evalPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &evalPool{tasks: make(chan func(*runnerSet)), workers: workers}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			rs := &runnerSet{runners: map[runnerKey]*harness.ReplayRunner{}}
			for fn := range p.tasks {
				fn(rs)
			}
		}()
	}
	return p
}

// submit hands one closure to the pool, blocking until a worker accepts it
// — natural backpressure for generators that could otherwise outrun the
// replays. Submitting from inside a pool task would deadlock at width 1;
// every phase submits from its own driving goroutine.
func (p *evalPool) submit(fn func(*runnerSet)) { p.tasks <- fn }

// runOne submits a single closure and waits for it — the one-off
// evaluation shape (verification replays, finding re-recordings) that
// still wants a worker's cached runners.
func (p *evalPool) runOne(fn func(*runnerSet)) {
	var wg sync.WaitGroup
	wg.Add(1)
	p.submit(func(rs *runnerSet) {
		defer wg.Done()
		fn(rs)
	})
	wg.Wait()
}

// close shuts the pool down and waits for in-flight tasks to finish.
func (p *evalPool) close() {
	close(p.tasks)
	p.wg.Wait()
}
