package explore

import (
	"fmt"

	"github.com/absmac/absmac/internal/harness"
	"github.com/absmac/absmac/internal/sim"
)

// This file implements the counterexample minimizer: a deterministic
// greedy delta-debugger that reduces a violating schedule while preserving
// its violation kind. Reduction passes, largest-grain first:
//
//   - topology shrink: re-record the scenario on a smaller instance of the
//     same family (ring:9 → ring:8 → …) and restart there when the same
//     violation reproduces;
//   - crash dropping: remove scheduled crashes one at a time;
//   - overlay-delivery pruning: ddmin-style chunked removal of delivered
//     unreliable-edge slots (flipping their coins to NoDelivery);
//   - step truncation: cut the recorded suffix and let the replay's seeded
//     fallback planner finish the run.
//
// Every candidate is evaluated by replay-with-re-recording
// (harness.ReplayRunner.RunRecorded): the candidate mutation may derail
// the execution mid-run, but the re-recording closes it back into a
// complete schedule in which every broadcast is a recorded step. A
// candidate is accepted only when its closed form still violates with the
// same kind AND strictly lowers the cost metric, so the loop terminates
// and the final artifact always replays byte-identically with zero
// divergence.

// cost is the minimizer's size metric: recorded steps plus delivered
// slots, with crashes weighted heavily (dropping adversity explains more
// than dropping traffic).
func cost(s *sim.Schedule) int {
	return len(s.Steps) + s.Deliveries() + 8*len(s.Crashes)
}

// ShrinkResult reports a minimization.
type ShrinkResult struct {
	// Artifact is the minimized counterexample: scenario (possibly on a
	// smaller topology than the input's), closed schedule, violation.
	Artifact *Artifact `json:"artifact"`
	// FromSteps/FromDeliveries/FromCrashes size the input schedule;
	// the artifact's schedule carries the minimized sizes.
	FromSteps      int `json:"from_steps"`
	FromDeliveries int `json:"from_deliveries"`
	FromCrashes    int `json:"from_crashes"`
	// Attempts counts candidate replays spent.
	Attempts int `json:"attempts"`
}

// Reduced reports whether minimization made the schedule smaller.
func (r *ShrinkResult) Reduced() bool {
	s := r.Artifact.Schedule
	return len(s.Steps) < r.FromSteps || s.Deliveries() < r.FromDeliveries || len(s.Crashes) < r.FromCrashes
}

// shrinkAttemptCap bounds the minimizer's candidate replays; the greedy
// loop normally converges far below it.
const shrinkAttemptCap = 4096

// shrinker carries the minimization state.
type shrinker struct {
	sc       harness.Scenario
	runner   *harness.ReplayRunner
	kind     string
	cur      *sim.Schedule
	curCost  int
	attempts int
}

// Shrink minimizes a violating schedule for the scenario down to a smaller
// schedule exhibiting the same violation kind. maxEvents caps each
// candidate replay (0 means the sweep default). It errors when the input
// schedule does not itself reproduce a violation of kind.
func Shrink(sc harness.Scenario, sched *sim.Schedule, kind string, maxEvents int) (*ShrinkResult, error) {
	if maxEvents <= 0 {
		maxEvents = harness.DefaultSweepMaxEvents
	}
	sc.MaxEvents = maxEvents
	runner, err := sc.NewReplayRunner()
	if err != nil {
		return nil, err
	}
	sh := &shrinker{sc: sc, runner: runner, kind: kind}

	// Close and verify the input: the minimized artifact must start from a
	// reproducing counterexample, not a hope.
	closed, ok, err := sh.check(sched)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("explore: schedule does not reproduce a %s violation on %s/%s, nothing to shrink", kind, sc.Algo, sc.Topo)
	}
	res := &ShrinkResult{FromSteps: len(sched.Steps), FromDeliveries: sched.Deliveries(), FromCrashes: len(sched.Crashes)}
	sh.cur = closed
	sh.curCost = cost(closed)

	sh.shrinkTopology(maxEvents)
	for sh.attempts < shrinkAttemptCap {
		improved := sh.dropCrashes()
		improved = sh.pruneDeliveries() || improved
		improved = sh.truncateSteps() || improved
		if !improved {
			break
		}
	}

	// Final verification replay (strictness belt-and-braces: the accepted
	// schedule is closed, so it must replay without divergence).
	out, rp, err := sh.runner.Run(sh.cur, nil)
	if err != nil {
		return nil, err
	}
	v := Classify(out)
	if v == nil || v.Kind != sh.kind {
		return nil, fmt.Errorf("explore: minimized schedule failed re-verification (got %v, want %s)", v, sh.kind)
	}
	if rp.Diverged() {
		return nil, fmt.Errorf("explore: minimized schedule diverged at step %d on its verification replay", rp.DivergedAt())
	}
	res.Artifact = &Artifact{
		Format:    ArtifactFormat,
		Scenario:  sh.sc,
		MaxEvents: maxEvents,
		Schedule:  sh.cur,
		Violation: v,
	}
	res.Attempts = sh.attempts
	return res, nil
}

// check replays cand with re-recording and reports its closed form and
// whether the target violation reproduces.
func (s *shrinker) check(cand *sim.Schedule) (*sim.Schedule, bool, error) {
	s.attempts++
	out, _, closed, err := s.runner.RunRecorded(cand, nil)
	if err != nil {
		return nil, false, err
	}
	v := Classify(out)
	if v == nil || v.Kind != s.kind {
		return nil, false, nil
	}
	return closed, true, nil
}

// accept installs a candidate's closed form when it reproduces the
// violation at a strictly lower cost.
func (s *shrinker) accept(cand *sim.Schedule) bool {
	closed, ok, err := s.check(cand)
	if err != nil || !ok {
		return false
	}
	if c := cost(closed); c < s.curCost {
		s.cur = closed
		s.curCost = c
		return true
	}
	return false
}

// shrinkTopology retries the whole scenario on smaller instances of
// single-parameter topology families, re-recording from scratch (the
// current schedule cannot transfer across node counts). It restarts the
// minimization state on the smallest instance that still reproduces the
// violation.
func (s *shrinker) shrinkTopology(maxEvents int) {
	for s.attempts < shrinkAttemptCap {
		t, ok := smallerTopo(s.sc.Topo)
		if !ok {
			return
		}
		sc2 := s.sc
		sc2.Topo = t
		s.attempts++
		out2, sched2, err := sc2.RunRecorded()
		if err != nil {
			return
		}
		v := Classify(out2)
		if v == nil || v.Kind != s.kind {
			return
		}
		runner2, err := sc2.NewReplayRunner()
		if err != nil {
			return
		}
		// sched2 is a complete recording of sc2's run, so it is already
		// closed: adopt it directly as the new minimization state.
		s.sc, s.runner, s.cur, s.curCost = sc2, runner2, sched2, cost(sched2)
	}
}

// smallerTopo returns the next-smaller instance of single-size families
// (ring, line, clique, star, random), or ok=false when the family has no
// size knob or is at its minimum.
func smallerTopo(t harness.Topo) (harness.Topo, bool) {
	min := 2
	switch t.Kind {
	case "ring":
		min = 3
	case "line", "clique", "star", "random":
	default:
		return t, false
	}
	if t.N <= min {
		return t, false
	}
	t.N--
	return t, true
}

// dropCrashes tries removing each scheduled crash, highest index first.
func (s *shrinker) dropCrashes() bool {
	improved := false
	for i := len(s.cur.Crashes) - 1; i >= 0 && s.attempts < shrinkAttemptCap; i-- {
		cand := s.cur.Clone()
		if !cand.DropCrash(i) {
			continue
		}
		if s.accept(cand) {
			improved = true
			// cur changed shape; restart the index walk on it.
			i = len(s.cur.Crashes)
		}
	}
	return improved
}

// overlaySlot addresses one delivered unreliable slot.
type overlaySlot struct{ step, slot int }

func deliveredOverlaySlots(s *sim.Schedule) []overlaySlot {
	var out []overlaySlot
	for k := range s.Steps {
		st := &s.Steps[k]
		for slot := st.NR; slot < len(st.Recv); slot++ {
			if st.Recv[slot] != sim.NoDelivery {
				out = append(out, overlaySlot{k, slot})
			}
		}
	}
	return out
}

// pruneDeliveries removes delivered unreliable-edge slots ddmin-style:
// chunks of halving size, recomputing the slot list after every accepted
// reduction (acceptance re-closes the schedule, which can reshape it).
func (s *shrinker) pruneDeliveries() bool {
	improved := false
	items := deliveredOverlaySlots(s.cur)
	chunk := len(items)
	for chunk >= 1 && s.attempts < shrinkAttemptCap {
		i := 0
		progressed := false
		for i < len(items) && s.attempts < shrinkAttemptCap {
			cand := s.cur.Clone()
			applied := 0
			for _, it := range items[i:minInt(i+chunk, len(items))] {
				if cand.FlipCoin(it.step, it.slot) {
					applied++
				}
			}
			if applied > 0 && s.accept(cand) {
				improved = true
				progressed = true
				items = deliveredOverlaySlots(s.cur)
				// restart this granularity on the reshaped schedule
				i = 0
				continue
			}
			i += chunk
		}
		if !progressed {
			chunk /= 2
		}
	}
	return improved
}

// truncateSteps tries cutting the recorded suffix at halving fractions,
// letting the fallback planner finish the run; acceptance re-closes the
// schedule, so an accepted truncation only survives when the re-recorded
// complete run is genuinely smaller.
func (s *shrinker) truncateSteps() bool {
	improved := false
	for s.attempts < shrinkAttemptCap {
		n := len(s.cur.Steps)
		if n == 0 {
			return improved
		}
		progressed := false
		for _, p := range []int{n / 2, (3 * n) / 4, n - 1} {
			if p < 0 || p >= n {
				continue
			}
			cand := s.cur.Clone()
			if !cand.Truncate(p) {
				continue
			}
			if s.accept(cand) {
				improved = true
				progressed = true
				break
			}
		}
		if !progressed {
			return improved
		}
	}
	return improved
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
