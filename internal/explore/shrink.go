package explore

import (
	"fmt"
	"sync"

	"github.com/absmac/absmac/internal/harness"
	"github.com/absmac/absmac/internal/sim"
)

// This file implements the counterexample minimizer: a deterministic
// greedy delta-debugger that reduces a violating schedule while preserving
// its violation kind. Reduction passes, largest-grain first:
//
//   - topology shrink: re-record the scenario on a smaller instance of the
//     same family (ring:9 → ring:8 → …) and restart there when the same
//     violation reproduces;
//   - crash dropping: remove scheduled crashes one at a time;
//   - overlay-delivery pruning: ddmin-style chunked removal of delivered
//     unreliable-edge slots (flipping their coins to NoDelivery);
//   - step truncation: cut the recorded suffix and let the replay's seeded
//     fallback planner finish the run.
//
// Every candidate is evaluated by replay-with-re-recording
// (harness.ReplayRunner.RunRecorded): the candidate mutation may derail
// the execution mid-run, but the re-recording closes it back into a
// complete schedule in which every broadcast is a recorded step. A
// candidate is accepted only when its closed form still violates with the
// same kind AND strictly lowers the cost metric, so the loop terminates
// and the final artifact always replays byte-identically with zero
// divergence.
//
// Shrinking is parallel but width-invariant: each pass generates an
// ordered candidate batch from the current schedule, the batch evaluates
// speculatively on the shared worker pool, and acceptance scans the
// results in candidate order, taking the FIRST improving candidate — so
// the accepted sequence, the reported attempt count (the serial cost:
// candidates up to and including the accepted one) and the final artifact
// are byte-identical at every pool width. The determinism test pins
// parallel Shrink against its width-1 self on the committed artifact.

// cost is the minimizer's size metric: recorded steps plus delivered
// slots, with crashes weighted heavily (dropping adversity explains more
// than dropping traffic).
func cost(s *sim.Schedule) int {
	return len(s.Steps) + s.Deliveries() + 8*len(s.Crashes)
}

// ShrinkOptions tunes a minimization.
type ShrinkOptions struct {
	// MaxEvents caps each candidate replay (0 means the sweep default).
	MaxEvents int
	// Workers is the speculative-evaluation pool width (<= 0 means
	// GOMAXPROCS). The result is identical at every width.
	Workers int
}

// ShrinkResult reports a minimization.
type ShrinkResult struct {
	// Artifact is the minimized counterexample: scenario (possibly on a
	// smaller topology than the input's), closed schedule, violation.
	Artifact *Artifact `json:"artifact"`
	// FromSteps/FromDeliveries/FromCrashes size the input schedule;
	// the artifact's schedule carries the minimized sizes.
	FromSteps      int `json:"from_steps"`
	FromDeliveries int `json:"from_deliveries"`
	FromCrashes    int `json:"from_crashes"`
	// Attempts counts candidate evaluations charged by the deterministic
	// accounting (speculative evaluations past an accepted candidate are
	// free, so the count is pool-width-invariant).
	Attempts int `json:"attempts"`
}

// Reduced reports whether minimization made the schedule smaller.
func (r *ShrinkResult) Reduced() bool {
	s := r.Artifact.Schedule
	return len(s.Steps) < r.FromSteps || s.Deliveries() < r.FromDeliveries || len(s.Crashes) < r.FromCrashes
}

// shrinkAttemptCap bounds the minimizer's candidate replays; the greedy
// loop normally converges far below it.
const shrinkAttemptCap = 4096

// shrinker carries the minimization state.
type shrinker struct {
	sc       harness.Scenario
	pool     *evalPool
	kind     string
	cur      *sim.Schedule
	curCost  int
	attempts int
}

// Shrink minimizes a violating schedule for the scenario down to a smaller
// schedule exhibiting the same violation kind. It errors when the input
// schedule does not itself reproduce a violation of kind.
func Shrink(sc harness.Scenario, sched *sim.Schedule, kind string, opts ShrinkOptions) (*ShrinkResult, error) {
	p := newEvalPool(opts.Workers)
	defer p.close()
	return shrinkOn(p, sc, sched, kind, opts.MaxEvents)
}

// shrinkOn runs one minimization on a caller-owned pool (the campaign
// entry point).
func shrinkOn(p *evalPool, sc harness.Scenario, sched *sim.Schedule, kind string, maxEvents int) (*ShrinkResult, error) {
	if maxEvents <= 0 {
		maxEvents = harness.DefaultSweepMaxEvents
	}
	sc.MaxEvents = maxEvents
	sh := &shrinker{sc: sc, pool: p, kind: kind}

	// Close and verify the input: the minimized artifact must start from a
	// reproducing counterexample, not a hope.
	sh.curCost = int(^uint(0) >> 1) // any closed cost accepts
	if idx, err := sh.round([]*sim.Schedule{sched}); err != nil {
		return nil, err
	} else if idx < 0 {
		return nil, fmt.Errorf("explore: schedule does not reproduce a %s violation on %s/%s, nothing to shrink", kind, sc.Algo, sc.Topo)
	}
	res := &ShrinkResult{FromSteps: len(sched.Steps), FromDeliveries: sched.Deliveries(), FromCrashes: len(sched.Crashes)}

	sh.shrinkTopology(maxEvents)
	for sh.attempts < shrinkAttemptCap {
		improved, err := sh.dropCrashes()
		if err != nil {
			return nil, err
		}
		if more, err := sh.pruneDeliveries(); err != nil {
			return nil, err
		} else {
			improved = more || improved
		}
		if more, err := sh.truncateSteps(); err != nil {
			return nil, err
		} else {
			improved = more || improved
		}
		if !improved {
			break
		}
	}

	// Final verification replay (strictness belt-and-braces: the accepted
	// schedule is closed, so it must replay without divergence).
	v, divergedAt, err := sh.verify()
	if err != nil {
		return nil, err
	}
	if v == nil || v.Kind != sh.kind {
		return nil, fmt.Errorf("explore: minimized schedule failed re-verification (got %v, want %s)", v, sh.kind)
	}
	if divergedAt >= 0 {
		return nil, fmt.Errorf("explore: minimized schedule diverged at step %d on its verification replay", divergedAt)
	}
	res.Artifact = &Artifact{
		Format:    ArtifactFormat,
		Scenario:  sh.sc,
		MaxEvents: maxEvents,
		Schedule:  sh.cur,
		Violation: v,
	}
	res.Attempts = sh.attempts
	return res, nil
}

// verify replays the current schedule without re-recording, on the pool
// (so the evaluation reuses a worker's runner for the scenario). The
// classification and the divergence step (-1 = none) are extracted inside
// the worker, per the pool's engine-ownership rule — the Outcome's Result
// would not survive the worker's next run.
func (s *shrinker) verify() (*Violation, int, error) {
	var (
		v          *Violation
		divergedAt = -1
		err        error
	)
	sc, cur := s.sc, s.cur
	s.pool.runOne(func(rs *runnerSet) {
		runner, e := rs.runner(sc)
		if e != nil {
			err = e
			return
		}
		out, rp, e := runner.Run(cur, nil)
		if e != nil {
			err = e
			return
		}
		v = Classify(out)
		if rp.Diverged() {
			divergedAt = rp.DivergedAt()
		}
	})
	return v, divergedAt, err
}

// evalOut is one candidate's speculative evaluation.
type evalOut struct {
	closed *sim.Schedule
	ok     bool // violation of the target kind reproduced
	cost   int
	err    error
}

// round evaluates an ordered candidate batch and accepts the first
// candidate whose closed form preserves the violation at a strictly lower
// cost, installing it as the new current schedule. It returns the accepted
// index, or -1 when no candidate improved. All candidates evaluate
// concurrently on the pool, but the scan is in candidate order and the
// attempt accounting charges only the serial prefix (accepted index + 1,
// or the whole batch on rejection) — both are pool-width-invariant, so
// shrinking is deterministic at any parallelism.
func (s *shrinker) round(cands []*sim.Schedule) (int, error) {
	// Honor the attempt cap inside the batch, not just between batches: a
	// chunk=1 pruning round can carry hundreds of candidates, and the cap
	// is a bound on replays actually charged. Prefix truncation keeps the
	// accounting width-invariant.
	if rem := shrinkAttemptCap - s.attempts; len(cands) > rem {
		if rem <= 0 {
			return -1, nil
		}
		cands = cands[:rem]
	}
	if len(cands) == 0 {
		return -1, nil
	}
	outs := make([]evalOut, len(cands))
	var wg sync.WaitGroup
	sc, kind := s.sc, s.kind
	for i := range cands {
		i, cand := i, cands[i]
		wg.Add(1)
		s.pool.submit(func(rs *runnerSet) {
			defer wg.Done()
			runner, err := rs.runner(sc)
			if err != nil {
				outs[i].err = err
				return
			}
			out, _, closed, err := runner.RunRecorded(cand, nil)
			if err != nil {
				outs[i].err = err
				return
			}
			if v := Classify(out); v != nil && v.Kind == kind {
				outs[i] = evalOut{closed: closed, ok: true, cost: cost(closed)}
			}
		})
	}
	wg.Wait()
	for i := range outs {
		if outs[i].err != nil {
			s.attempts += i + 1
			return -1, outs[i].err
		}
		if outs[i].ok && outs[i].cost < s.curCost {
			s.attempts += i + 1
			s.cur = outs[i].closed
			s.curCost = outs[i].cost
			return i, nil
		}
	}
	s.attempts += len(cands)
	return -1, nil
}

// shrinkTopology retries the whole scenario on smaller instances of
// single-parameter topology families, re-recording from scratch (the
// current schedule cannot transfer across node counts). It restarts the
// minimization state on the smallest instance that still reproduces the
// violation. Re-recording is inherently serial — each size gates the next
// — so this pass does not use the pool.
func (s *shrinker) shrinkTopology(maxEvents int) {
	for s.attempts < shrinkAttemptCap {
		t, ok := smallerTopo(s.sc.Topo)
		if !ok {
			return
		}
		sc2 := s.sc
		sc2.Topo = t
		s.attempts++
		out2, sched2, err := sc2.RunRecorded()
		if err != nil {
			return
		}
		v := Classify(out2)
		if v == nil || v.Kind != s.kind {
			return
		}
		// sched2 is a complete recording of sc2's run, so it is already
		// closed: adopt it directly as the new minimization state. Workers
		// build runners for the smaller scenario lazily on the next round.
		s.sc, s.cur, s.curCost = sc2, sched2, cost(sched2)
	}
}

// smallerTopo returns the next-smaller instance of single-size families
// (ring, line, clique, star, random), or ok=false when the family has no
// size knob or is at its minimum.
func smallerTopo(t harness.Topo) (harness.Topo, bool) {
	min := 2
	switch t.Kind {
	case "ring":
		min = 3
	case "line", "clique", "star", "random":
	default:
		return t, false
	}
	if t.N <= min {
		return t, false
	}
	t.N--
	return t, true
}

// dropCrashes tries removing each scheduled crash, highest index first,
// restarting the batch on the reshaped schedule after every acceptance.
func (s *shrinker) dropCrashes() (bool, error) {
	improved := false
	for s.attempts < shrinkAttemptCap && len(s.cur.Crashes) > 0 {
		cands := make([]*sim.Schedule, 0, len(s.cur.Crashes))
		for i := len(s.cur.Crashes) - 1; i >= 0; i-- {
			if cand := s.cur.Clone(); cand.DropCrash(i) {
				cands = append(cands, cand)
			}
		}
		idx, err := s.round(cands)
		if err != nil {
			return improved, err
		}
		if idx < 0 {
			return improved, nil
		}
		improved = true
	}
	return improved, nil
}

// overlaySlot addresses one delivered unreliable slot.
type overlaySlot struct{ step, slot int }

func deliveredOverlaySlots(s *sim.Schedule) []overlaySlot {
	var out []overlaySlot
	for k := range s.Steps {
		st := &s.Steps[k]
		for slot := st.NR; slot < len(st.Recv); slot++ {
			if st.Recv[slot] != sim.NoDelivery {
				out = append(out, overlaySlot{k, slot})
			}
		}
	}
	return out
}

// pruneDeliveries removes delivered unreliable-edge slots ddmin-style:
// chunks of halving size, each granularity one candidate batch, with the
// slot list recomputed after every accepted reduction (acceptance
// re-closes the schedule, which can reshape it).
func (s *shrinker) pruneDeliveries() (bool, error) {
	improved := false
	items := deliveredOverlaySlots(s.cur)
	chunk := len(items)
	for chunk >= 1 && s.attempts < shrinkAttemptCap {
		cands := make([]*sim.Schedule, 0, (len(items)+chunk-1)/chunk)
		for i := 0; i < len(items); i += chunk {
			cand := s.cur.Clone()
			applied := 0
			for _, it := range items[i:minInt(i+chunk, len(items))] {
				if cand.FlipCoin(it.step, it.slot) {
					applied++
				}
			}
			if applied > 0 {
				cands = append(cands, cand)
			}
		}
		idx, err := s.round(cands)
		if err != nil {
			return improved, err
		}
		if idx >= 0 {
			improved = true
			// Restart this granularity on the reshaped schedule.
			items = deliveredOverlaySlots(s.cur)
			if len(items) == 0 {
				break
			}
			if chunk > len(items) {
				chunk = len(items)
			}
			continue
		}
		chunk /= 2
	}
	return improved, nil
}

// truncateSteps tries cutting the recorded suffix at halving fractions,
// letting the fallback planner finish the run; acceptance re-closes the
// schedule, so an accepted truncation only survives when the re-recorded
// complete run is genuinely smaller.
func (s *shrinker) truncateSteps() (bool, error) {
	improved := false
	for s.attempts < shrinkAttemptCap {
		n := len(s.cur.Steps)
		if n == 0 {
			return improved, nil
		}
		cands := make([]*sim.Schedule, 0, 3)
		for _, p := range []int{n / 2, (3 * n) / 4, n - 1} {
			if p < 0 || p >= n {
				continue
			}
			if cand := s.cur.Clone(); cand.Truncate(p) {
				cands = append(cands, cand)
			}
		}
		idx, err := s.round(cands)
		if err != nil {
			return improved, err
		}
		if idx < 0 {
			return improved, nil
		}
		improved = true
	}
	return improved, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
