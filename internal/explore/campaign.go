package explore

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/harness"
	"github.com/absmac/absmac/internal/sim"
)

// This file implements the campaign driver: grid-wide violation hunting.
// A campaign is the composition the sweep and explore pipelines could not
// previously express — sweep a whole scenario grid, stream every violating
// (scenario, seed) out of the cell workers as it is classified, then turn
// each flagged cell into a recorded, perturbation-explored and minimized
// counterexample artifact, all phases sharing one replay worker pool and
// its per-worker runner caches. Sweeping runs with schedule-coverage
// fingerprints on, so the campaign also reports how many distinct delivery
// orderings each cell actually exercised and can stop saturated cells
// early. Campaigns are deterministic at every worker count: the flagged
// set is sorted by (cell, seed position), exploration and shrinking are
// width-invariant by construction, and artifact names are derived from the
// scenario alone.

// CampaignOptions tunes a campaign. The zero value means: GOMAXPROCS
// workers, no perturbation search (record + minimize flagged base runs
// only), one flagged run explored per cell, the sweep default event cap,
// no coverage early-stop, no artifacts written.
type CampaignOptions struct {
	// Workers sizes the shared worker pool used by the sweep, the
	// perturbation searches and the parallel shrinker (<= 0 = GOMAXPROCS).
	Workers int
	// Budget is the perturbation-search budget per flagged run; 0 skips
	// the search and goes straight from the flagged recording to the
	// minimizer — the cheap mode for grids whose base runs already
	// violate.
	Budget int
	// SearchSeed drives candidate generation (explore.Options.Seed).
	SearchSeed int64
	// MaxEvents caps every execution — sweep runs, recordings, candidate
	// replays (0 = harness.DefaultSweepMaxEvents).
	MaxEvents int
	// Minimize delta-debugs each flagged run's schedule down to a minimal
	// artifact (parallel Shrink on the shared pool).
	Minimize bool
	// PerCell bounds how many flagged runs are explored per cell (the
	// rest are counted but not recorded; default 1 — one counterexample
	// per cell is what the artifact pipeline wants).
	PerCell int
	// SaturateAfter stops a cell's sweep early once that many consecutive
	// seeds added no new schedule fingerprint (see
	// harness.SweepOptions.SaturateAfter; 0 = run every seed).
	SaturateAfter int
	// ArtifactDir, when non-empty, writes each finding's artifact to
	// ArtifactDir/<scenario-derived name>.json and records the path in
	// the finding.
	ArtifactDir string
}

func (o CampaignOptions) withDefaults() CampaignOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = harness.DefaultSweepMaxEvents
	}
	if o.PerCell <= 0 {
		o.PerCell = 1
	}
	return o
}

// CellCoverage reports one cell's schedule coverage.
type CellCoverage struct {
	// Cell indexes CampaignReport.Cells.
	Cell int `json:"cell"`
	// Planned and Runs count the cell's seed axis and how many seeds
	// actually ran (fewer when coverage saturated early).
	Planned int `json:"planned"`
	Runs    int `json:"runs"`
	// Distinct counts distinct schedule fingerprints across the runs —
	// the delivery orderings the cell actually exercised.
	Distinct int `json:"distinct_schedules"`
	// Saturated reports that the cell stopped early under SaturateAfter.
	Saturated bool `json:"saturated,omitempty"`
	// Flagged counts the cell's violating runs.
	Flagged int `json:"flagged,omitempty"`
}

// CampaignFinding is one flagged cell's counterexample.
type CampaignFinding struct {
	// Cell indexes CampaignReport.Cells.
	Cell int `json:"cell"`
	// Scenario is the violating scenario (seed included).
	Scenario harness.Scenario `json:"scenario"`
	// Violation is the classification of the artifact's schedule. Its
	// kind equals what the sweep flagged, except when a perturbation
	// search (Budget > 0) escalated to a more severe violation found in
	// the flagged run's schedule neighborhood.
	Violation *Violation `json:"violation"`
	// Steps and Deliveries size the artifact's schedule.
	Steps      int `json:"steps"`
	Deliveries int `json:"deliveries"`
	// Explored carries the perturbation-search stats when the campaign
	// ran one (Budget > 0).
	Explored *Stats `json:"explore_stats,omitempty"`
	// Minimized reports whether the artifact went through the shrinker;
	// ShrinkAttempts counts its candidate evaluations.
	Minimized      bool `json:"minimized,omitempty"`
	ShrinkAttempts int  `json:"shrink_attempts,omitempty"`
	// ArtifactPath is where the artifact was written (empty without
	// CampaignOptions.ArtifactDir).
	ArtifactPath string `json:"artifact,omitempty"`
	// Artifact is the counterexample itself (not part of the JSON report;
	// the file at ArtifactPath carries it).
	Artifact *Artifact `json:"-"`
}

// CampaignReport is the result of one campaign.
type CampaignReport struct {
	// Cells are the sweep's aggregated cells, coverage fingerprints
	// included, in grid axis-nesting order.
	Cells []harness.Cell `json:"cells"`
	// Coverage reports per-cell schedule coverage, same order as Cells.
	Coverage []CellCoverage `json:"coverage"`
	// Runs counts executed sweep runs; Flagged counts the violating ones;
	// CellsFlagged counts cells with at least one.
	Runs         int `json:"runs"`
	Flagged      int `json:"flagged_runs"`
	CellsFlagged int `json:"cells_flagged"`
	// Findings lists one entry per explored flagged run, ordered by
	// (cell, seed position).
	Findings []*CampaignFinding `json:"findings"`
}

// Campaign sweeps the grid, streams flagged runs out of the sweep, and
// turns up to PerCell flagged runs per cell into replayable (optionally
// minimized) counterexample artifacts on one shared worker pool.
// Deterministic given (grid, opts) modulo Workers, which only changes
// wall-clock time.
func Campaign(grid harness.Grid, opts CampaignOptions) (*CampaignReport, error) {
	opts = opts.withDefaults()
	grid.MaxEvents = opts.MaxEvents
	work, err := grid.Cells()
	if err != nil {
		return nil, err
	}

	// Phase 1 — sweep with flag streaming and coverage fingerprints. The
	// flag callback fires concurrently from cell workers; collect under a
	// lock and sort by the deterministic (cell, seed position) identity.
	var (
		mu      sync.Mutex
		flagged []harness.FlaggedRun
	)
	cells, err := harness.SweepCellsOpts(work, harness.SweepOptions{
		Workers:       opts.Workers,
		Fingerprint:   true,
		SaturateAfter: opts.SaturateAfter,
		OnFlag: func(f harness.FlaggedRun) {
			mu.Lock()
			flagged = append(flagged, f)
			mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(flagged, func(i, j int) bool {
		if flagged[i].Cell != flagged[j].Cell {
			return flagged[i].Cell < flagged[j].Cell
		}
		return flagged[i].Run < flagged[j].Run
	})

	// Findings starts non-nil so a clean grid's report serializes the
	// documented array shape ("findings": []), like Cells and Coverage.
	rep := &CampaignReport{Cells: cells, Coverage: make([]CellCoverage, len(cells)), Findings: []*CampaignFinding{}}
	for i := range cells {
		rep.Runs += cells[i].Runs
		rep.Coverage[i] = CellCoverage{
			Cell:      i,
			Planned:   len(grid.Seeds),
			Runs:      cells[i].Runs,
			Distinct:  cells[i].DistinctSchedules,
			Saturated: cells[i].Runs < len(grid.Seeds),
		}
	}
	for _, f := range flagged {
		if rep.Coverage[f.Cell].Flagged == 0 {
			rep.CellsFlagged++
		}
		rep.Coverage[f.Cell].Flagged++
	}
	rep.Flagged = len(flagged)
	if len(flagged) == 0 {
		return rep, nil
	}

	// Phase 2 — record, explore and minimize the representatives on one
	// shared pool. Representatives are deliberately processed one at a
	// time from this goroutine (each one's exploration and shrink batches
	// fan out across the pool internally): candidate evaluation is where
	// the replay volume is, and serial representatives keep the
	// determinism argument one-dimensional.
	pool := newEvalPool(opts.Workers)
	defer pool.close()
	taken := map[int]int{}
	for _, f := range flagged {
		if taken[f.Cell] >= opts.PerCell {
			continue
		}
		taken[f.Cell]++
		finding, err := campaignFinding(pool, f, opts)
		if err != nil {
			return nil, fmt.Errorf("explore: campaign cell %d (%s on %s, seed %d): %w",
				f.Cell, f.Scenario.Algo, f.Scenario.Topo, f.Scenario.Seed, err)
		}
		rep.Findings = append(rep.Findings, finding)
	}
	return rep, nil
}

// campaignFinding turns one flagged run into an artifact: re-record the
// run (byte-identical to the sweep's execution), optionally search its
// perturbation neighborhood, optionally minimize, optionally write.
func campaignFinding(pool *evalPool, f harness.FlaggedRun, opts CampaignOptions) (*CampaignFinding, error) {
	sc := f.Scenario
	sc.MaxEvents = opts.MaxEvents

	var (
		schedule  *sim.Schedule
		violation *Violation
		explored  *Stats
	)
	if opts.Budget > 0 {
		er, err := exploreOn(pool, sc, Options{
			Budget: opts.Budget, Seed: opts.SearchSeed, MaxEvents: opts.MaxEvents,
		})
		if err != nil {
			return nil, err
		}
		schedule, violation = er.BaseSchedule, er.Base
		explored = &er.Stats
		if violation == nil || violation.Kind != f.Violation.Kind {
			// The sweep flagged this exact execution and recording does not
			// perturb it, so the recorded base run must reproduce the
			// flagged kind; a mismatch means determinism broke below us.
			return nil, fmt.Errorf("flagged %s violation did not reproduce on recording (got %+v)", f.Violation.Kind, violation)
		}
		// Severity escalation: the base run's violation is the default
		// artifact (it needs no perturbation to reproduce), but a perturbed
		// finding that breaks a MORE severe property — a safety break found
		// behind a stall — explains more. Take the MOST severe finding
		// (first in candidate order among ties) and close it into a
		// complete recording so the artifact still replays divergence-free.
		var best *Finding
		for _, pf := range er.Findings {
			if consensus.Severity(pf.Violation.Kind) >= consensus.Severity(violation.Kind) {
				continue
			}
			if best == nil || consensus.Severity(pf.Violation.Kind) < consensus.Severity(best.Violation.Kind) {
				best = pf
			}
		}
		if best != nil {
			closed, v, err := closeFinding(pool, sc, best)
			if err != nil {
				return nil, err
			}
			schedule, violation = closed, v
		}
	} else {
		out, sched, err := sc.RunRecorded()
		if err != nil {
			return nil, err
		}
		schedule, violation = sched, Classify(out)
		if violation == nil || violation.Kind != f.Violation.Kind {
			return nil, fmt.Errorf("flagged %s violation did not reproduce on recording (got %+v)", f.Violation.Kind, violation)
		}
	}

	finding := &CampaignFinding{
		Cell: f.Cell, Scenario: sc, Violation: violation,
		Explored: explored,
	}
	artifact := &Artifact{
		Format: ArtifactFormat, Scenario: sc, MaxEvents: opts.MaxEvents,
		Schedule: schedule, Violation: violation,
		Note: "campaign",
	}
	if opts.Minimize {
		res, err := shrinkOn(pool, sc, schedule, violation.Kind, opts.MaxEvents)
		if err != nil {
			return nil, err
		}
		artifact = res.Artifact
		artifact.Note = "campaign minimized"
		finding.Minimized = true
		finding.ShrinkAttempts = res.Attempts
		finding.Scenario = artifact.Scenario // topology shrink may have moved it
		finding.Violation = artifact.Violation
	}
	finding.Steps = len(artifact.Schedule.Steps)
	finding.Deliveries = artifact.Schedule.Deliveries()
	finding.Artifact = artifact
	if opts.ArtifactDir != "" {
		path := filepath.Join(opts.ArtifactDir, ArtifactName(f.Scenario))
		if err := artifact.WriteFile(path); err != nil {
			return nil, err
		}
		finding.ArtifactPath = path
	}
	return finding, nil
}

// ArtifactName derives a deterministic, filesystem-safe artifact filename
// from a scenario — the campaign's on-disk naming scheme. Every axis that
// distinguishes one cell from another appears in the stem (two findings
// may never collide on one file). Punctuation in topology/crash/overlay
// specs ( : @ . ) flattens to '-' (letters and digits survive, so
// grid:3x3 names grid-3x3).
func ArtifactName(sc harness.Scenario) string {
	// The defaults mirror harness's cell identity (empty Inputs means
	// "alternating", empty fault axes mean "none" — exactly what the
	// sweep's Cell rows report), so a finding's filename and its cell row
	// name the same scenario.
	inputs := sc.Inputs
	if inputs == "" {
		inputs = "alternating"
	}
	stem := fmt.Sprintf("%s_%s_%s_%s_f%d_c%s_o%s_s%d",
		sc.Algo, sc.Topo, inputs, sc.Sched, sc.Fack,
		orNone(sc.Crashes), orNone(sc.Overlay), sc.Seed)
	out := make([]rune, 0, len(stem))
	for _, r := range stem {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			out = append(out, r)
		default:
			out = append(out, '-')
		}
	}
	return string(out) + ".json"
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// closeFinding re-records a perturbed finding's execution on the pool,
// returning the closed schedule (every broadcast a recorded step, so it
// replays with zero divergence) and its classification. It errors when the
// finding's violation kind does not reproduce on re-recording.
func closeFinding(pool *evalPool, sc harness.Scenario, f *Finding) (*sim.Schedule, *Violation, error) {
	var (
		closed *sim.Schedule
		v      *Violation
		err    error
	)
	pool.runOne(func(rs *runnerSet) {
		r, e := rs.runner(sc)
		if e != nil {
			err = e
			return
		}
		out, _, cl, e := r.RunRecorded(f.Schedule, nil)
		if e != nil {
			err = e
			return
		}
		closed, v = cl, Classify(out)
	})
	if err != nil {
		return nil, nil, err
	}
	if v == nil || v.Kind != f.Violation.Kind {
		return nil, nil, fmt.Errorf("finding %d did not reproduce on re-recording (got %+v, want %s)", f.Candidate, v, f.Violation.Kind)
	}
	return closed, v, nil
}
