package explore

import (
	"testing"

	"github.com/absmac/absmac/internal/harness"
)

// BenchmarkCampaignScan measures the campaign's scan phase end to end on a
// healthy fault grid — the same 12-cell workload as harness's
// BenchmarkSweepGrid, but swept through Campaign with fingerprinting and
// flag streaming on. No cell flags, so the number is pure scan cost: the
// sweep plus one Fingerprinter per run plus the coverage bookkeeping. The
// contrast with BenchmarkSweepGrid (which must stay at its pinned
// allocation count — fingerprinting is opt-in) is the price of coverage,
// recorded in BENCH_engine.json.
func BenchmarkCampaignScan(b *testing.B) {
	grid := harness.Grid{
		Algos:    []string{"floodpaxos"},
		Topos:    []harness.Topo{{Kind: "ring", N: 9}, {Kind: "grid", Rows: 3, Cols: 3}},
		Scheds:   []string{"random"},
		Facks:    []int64{4},
		Crashes:  []string{"one@0", "midbroadcast"},
		Overlays: []string{"none", "extra:4", "chords"},
		Seeds:    []int64{1, 2, 3, 4, 5, 6, 7, 8},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Campaign(grid, CampaignOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Cells) != 12 || rep.Flagged != 0 {
			b.Fatalf("campaign scan broken: %d cells, %d flagged", len(rep.Cells), rep.Flagged)
		}
	}
}
