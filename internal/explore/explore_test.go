package explore

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/absmac/absmac/internal/harness"
)

// stallCell is the canonical explorer and shrinker workload: two-phase
// commit on ring:9 with the coordinator crashing after its first broadcast
// window, under the antipodal-chords overlay, seed 4. Two-phase is the
// paper's Theorem 3.2 counterexample — a crashed coordinator strands every
// witness waiting for phase 2, so the base run quiesces with survivors
// undecided, deterministically. (The wPAXOS and floodpaxos stalls that
// used to anchor these tests were fixed by the Ω failure-detector
// redesign; their artifacts live on as divergence regressions in
// internal/harness/testdata.)
func stallCell() harness.Scenario {
	return harness.Scenario{
		Algo: "twophase", Topo: harness.Topo{Kind: "ring", N: 9},
		Sched: "random", Fack: 4, Seed: 4,
		Crashes: "coordinator", Overlay: "chords",
	}
}

func TestExploreStallCell(t *testing.T) {
	rep, err := Explore(stallCell(), Options{Budget: 64, Seed: 1, MaxEvents: 200_000, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Base == nil || rep.Base.Kind != KindNonTermination {
		t.Fatalf("base violation = %+v, want the known non-termination stall", rep.Base)
	}
	if !rep.Base.Quiescent {
		t.Fatal("the known stall quiesces; base classified as cut off")
	}
	if rep.Stats.Replays != 64 {
		t.Fatalf("replays = %d, want the full budget 64", rep.Stats.Replays)
	}
	if rep.Stats.Violations == 0 || len(rep.Findings) == 0 {
		t.Fatal("perturbations of a stalling schedule found no violations — search is broken")
	}
	for _, f := range rep.Findings {
		if f.Schedule == nil || f.Steps != len(f.Schedule.Steps) {
			t.Fatalf("finding %d carries inconsistent schedule sizes", f.Candidate)
		}
	}
}

// TestExploreDeterministic pins that exploration is a pure function of
// (scenario, options): same findings, same stats, regardless of worker
// interleaving.
func TestExploreDeterministic(t *testing.T) {
	opts := Options{Budget: 48, Seed: 7, MaxEvents: 200_000}
	a, err := Explore(stallCell(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1 // different pool width must not change results
	b, err := Explore(stallCell(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats differ across runs: %+v vs %+v", a.Stats, b.Stats)
	}
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		fa, fb := a.Findings[i], b.Findings[i]
		if fa.Candidate != fb.Candidate || fa.Violation.Kind != fb.Violation.Kind ||
			fa.Schedule.Hash() != fb.Schedule.Hash() {
			t.Fatalf("finding %d differs: %+v vs %+v", i, fa, fb)
		}
	}
}

func TestExploreHealthyCellFindsNothingFalse(t *testing.T) {
	// wPAXOS survives the very same cell since the Ω detector redesign
	// (leader death rotates the proposership): no perturbation within the
	// model may break it, so every finding would be a false positive.
	sc := stallCell()
	sc.Algo = "wpaxos"
	rep, err := Explore(sc, Options{Budget: 48, Seed: 1, MaxEvents: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Base != nil {
		t.Fatalf("floodpaxos base run violated: %+v", rep.Base)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("explorer fabricated %d violations against floodpaxos: %+v", len(rep.Findings), rep.Findings[0])
	}
}

func TestShrinkPreservesViolationAndReduces(t *testing.T) {
	sc := stallCell()
	sc.MaxEvents = 200_000
	_, sched, err := sc.RunRecorded()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Shrink(sc, sched, KindNonTermination, ShrinkOptions{MaxEvents: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Artifact
	if a.Violation == nil || a.Violation.Kind != KindNonTermination {
		t.Fatalf("minimized artifact lost the violation: %+v", a.Violation)
	}
	if !res.Reduced() {
		t.Fatalf("minimization did not reduce the schedule: %d->%d steps, %d->%d deliveries",
			res.FromSteps, len(a.Schedule.Steps), res.FromDeliveries, a.Schedule.Deliveries())
	}
	// The artifact must re-verify standalone: replay from the artifact,
	// no divergence, same violation kind.
	out, rp, err := a.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Diverged() {
		t.Fatalf("minimized artifact diverged at step %d on replay", rp.DivergedAt())
	}
	v := Classify(out)
	if v == nil || v.Kind != KindNonTermination {
		t.Fatalf("minimized artifact does not reproduce on replay: %+v", v)
	}
}

func TestShrinkRefusesHealthySchedule(t *testing.T) {
	sc := stallCell()
	sc.Algo = "wpaxos"
	sc.MaxEvents = 200_000
	_, sched, err := sc.RunRecorded()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Shrink(sc, sched, KindNonTermination, ShrinkOptions{MaxEvents: 200_000}); err == nil {
		t.Fatal("Shrink accepted a schedule that violates nothing")
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	sc := stallCell()
	sc.MaxEvents = 200_000
	out, sched, err := sc.RunRecorded()
	if err != nil {
		t.Fatal(err)
	}
	a := &Artifact{
		Format: ArtifactFormat, Scenario: sc, MaxEvents: 200_000,
		Schedule: sched, Violation: Classify(out), Note: "round-trip test",
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Schedule.Hash() != a.Schedule.Hash() {
		t.Fatal("schedule hash changed across encode/decode")
	}
	// Scenario must survive serialization field for field (MaxEvents
	// deliberately lives on the artifact, not the scenario JSON).
	aj, _ := json.Marshal(a.Scenario)
	bj, _ := json.Marshal(b.Scenario)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("scenario changed across encode/decode: %s vs %s", bj, aj)
	}
	out2, rp, err := b.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Diverged() {
		t.Fatal("decoded artifact diverged on replay")
	}
	if v := Classify(out2); v == nil || v.Kind != a.Violation.Kind {
		t.Fatalf("decoded artifact reproduces %+v, want %s", v, a.Violation.Kind)
	}
	// Corrupt structure must be rejected at decode time.
	bad := bytes.NewBufferString(`{"format": 99, "schedule": {"fack": 4}}`)
	if _, err := Decode(bad); err == nil {
		t.Fatal("Decode accepted an unknown format version")
	}
}
