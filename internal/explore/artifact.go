package explore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/absmac/absmac/internal/harness"
	"github.com/absmac/absmac/internal/sim"
)

// ArtifactFormat is the current artifact file-format version.
const ArtifactFormat = 1

// Artifact is the on-disk counterexample format: a scenario plus the
// complete schedule that drives it into a violation, self-contained enough
// to re-verify anywhere (`amacexplore -replay FILE`, the golden replay
// test in internal/harness). Artifacts are indented JSON, diff-friendly on
// purpose — they get committed under testdata/ as executable bug reports.
type Artifact struct {
	// Format versions the file layout.
	Format int `json:"format"`
	// Scenario names the fixed configuration the schedule replays against.
	// Its crash pattern and seed are recorded for provenance, but the
	// replay takes crashes from the Schedule, not the registry.
	Scenario harness.Scenario `json:"scenario"`
	// MaxEvents caps the replay (Scenario.MaxEvents does not serialize);
	// non-terminating counterexamples rely on it to fail fast.
	MaxEvents int `json:"max_events,omitempty"`
	// Schedule is the complete recorded nondeterminism of the violating
	// execution.
	Schedule *sim.Schedule `json:"schedule"`
	// Violation is what replaying the schedule must reproduce.
	Violation *Violation `json:"violation,omitempty"`
	// Note is free-text provenance (how the artifact was found/minimized).
	Note string `json:"note,omitempty"`
}

// Validate checks the artifact's structure without replaying it.
func (a *Artifact) Validate() error {
	if a.Format != ArtifactFormat {
		return fmt.Errorf("explore: artifact format %d, this build reads %d", a.Format, ArtifactFormat)
	}
	if a.Schedule == nil {
		return fmt.Errorf("explore: artifact has no schedule")
	}
	if a.Scenario.InputValues != nil {
		// InputValues does not serialize (json:"-"), so an artifact
		// carrying one would silently replay with the named pattern's
		// inputs instead — a different execution. Refuse at write time.
		return fmt.Errorf("explore: scenario carries explicit InputValues, which do not serialize; use a named input pattern")
	}
	return a.Schedule.Validate()
}

// Replay re-executes the artifact's schedule against its scenario. The
// optional observer receives every engine event (plus the EventDiverge
// marker, which a clean artifact never emits).
func (a *Artifact) Replay(observer func(sim.Event)) (*harness.Outcome, *sim.Replay, error) {
	if err := a.Validate(); err != nil {
		return nil, nil, err
	}
	sc := a.Scenario
	if a.MaxEvents > 0 {
		sc.MaxEvents = a.MaxEvents
	}
	runner, err := sc.NewReplayRunner()
	if err != nil {
		return nil, nil, err
	}
	return runner.Run(a.Schedule, observer)
}

// Encode validates the artifact and writes it as indented JSON (writing
// an artifact that could not be read back faithfully is refused).
func (a *Artifact) Encode(w io.Writer) error {
	if err := a.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("explore: encode artifact: %w", err)
	}
	return nil
}

// Decode reads one artifact and validates its structure.
func Decode(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("explore: decode artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// WriteFile writes the artifact to path.
func (a *Artifact) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("explore: %w", err)
	}
	if err := a.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads and validates an artifact from path.
func ReadFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	defer f.Close()
	return Decode(f)
}
