// Package explore searches the schedule space of a scenario for property
// violations and minimizes the counterexamples it finds.
//
// The paper's adversary is the scheduler: correctness must hold for every
// delivery ordering within the Fack bound, not just the orderings a few
// seeds happen to sample. This package turns the simulator's schedule
// record/replay layer (sim.Schedule, sim.Replay, harness.RunRecorded /
// harness.ReplayRunner) into a systematic search: record the base
// scenario's execution, then explore perturbations of its recorded
// decisions — swapped delivery orders, re-jittered delays within Fack,
// flipped unreliable-edge coins, shifted or dropped crashes — replaying
// each candidate on a worker pool of reusable engines and hunting for
// consensus violations (non-termination via the event cap, agreement and
// validity via consensus.Check, substrate violations via the engine's own
// audit).
//
// Exploration is deterministic given (scenario, Options): candidates are
// generated centrally — a bounded radius-1 neighborhood enumeration of the
// base schedule followed by seeded random walks — deduplicated by schedule
// hash, and findings are reported in candidate order regardless of worker
// scheduling.
//
// The Shrinker (shrink.go) delta-debugs a violating schedule down to a
// minimal failing artifact; Artifact (artifact.go) is the JSON file format
// cmd/amacexplore reads and writes.
//
// On top of single-scenario exploration sits the campaign pipeline
// (campaign.go): Campaign sweeps a whole harness.Grid with flagged-run
// streaming and schedule-coverage fingerprints on (harness.SweepOptions),
// collects every violating (scenario, seed) the cell workers classify,
// and turns up to PerCell flagged runs per cell into recorded,
// perturbation-explored and minimized counterexample artifacts. All
// replay work — exploration candidates and shrink candidates across every
// flagged cell — runs on one shared worker pool (pool.go) whose workers
// cache ReplayRunners per scenario, and shrinking evaluates its ddmin
// candidate batches speculatively in parallel while accepting in
// deterministic candidate order, so campaign reports and artifacts are
// byte-identical at every pool width. cmd/amacexplore -grid is the CLI.
package explore

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/harness"
	"github.com/absmac/absmac/internal/sim"
)

// Violation kinds, in the severity order Classify assigns them. The
// classification itself lives in internal/consensus so sweep workers
// (internal/harness) flag runs with exactly the judgment the explorer and
// the minimizer preserve; these names re-export it for this package's
// callers and artifacts.
const (
	KindAgreement      = consensus.KindAgreement
	KindValidity       = consensus.KindValidity
	KindNonTermination = consensus.KindNonTermination
	KindSubstrate      = consensus.KindSubstrate
)

// Violation describes one property breach found in an execution (see
// consensus.Violation — the serialized artifact layout is unchanged).
type Violation = consensus.Violation

// Classify reduces an outcome to its violation, or nil when the execution
// satisfied agreement, validity and termination with a clean substrate.
func Classify(o *harness.Outcome) *Violation { return o.Violation() }

// Options tunes an exploration. The zero value means: budget 256, workers
// GOMAXPROCS, seed 1, the sweep default event cap, walk length 8, all
// findings reported.
type Options struct {
	// Budget is the number of perturbed schedules to replay.
	Budget int
	// Workers is the replay worker-pool width (<= 0 means GOMAXPROCS).
	Workers int
	// Seed drives candidate generation.
	Seed int64
	// MaxEvents caps each execution; a capped run with undecided survivors
	// classifies as non-termination. 0 means harness.DefaultSweepMaxEvents.
	MaxEvents int
	// WalkLen is the random-walk chain length: every WalkLen-th walk
	// candidate restarts from the base schedule, in between each candidate
	// perturbs its predecessor.
	WalkLen int
	// MaxFindings truncates the reported findings (0 = report all). The
	// full budget always runs, so results are deterministic.
	MaxFindings int
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 256
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = harness.DefaultSweepMaxEvents
	}
	if o.WalkLen <= 0 {
		o.WalkLen = 8
	}
	return o
}

// Finding is one violating candidate schedule.
type Finding struct {
	// Candidate is the candidate's generation index — the deterministic
	// identity of the finding within one exploration.
	Candidate int `json:"candidate"`
	// Violation describes what broke.
	Violation Violation `json:"violation"`
	// Steps and Deliveries size the violating schedule.
	Steps      int `json:"steps"`
	Deliveries int `json:"deliveries"`
	// DivergedAt is the step index at which the replay left the base
	// recording (-1 when it replayed entirely — only possible for the
	// base schedule itself).
	DivergedAt int `json:"diverged_at"`
	// Schedule is the violating schedule (not serialized in reports;
	// artifacts carry schedules).
	Schedule *sim.Schedule `json:"-"`
}

// Stats counts what an exploration did.
type Stats struct {
	// Replays counts replayed candidates. It can fall short of
	// Options.Budget when perturbation exhausts the reachable schedule
	// space (every further candidate deduplicates away).
	Replays int `json:"replays"`
	// Deduped counts candidates discarded as hash-duplicates of earlier
	// ones (the base schedule included).
	Deduped int `json:"deduped"`
	// Diverged counts replays that left the base recording (perturbations
	// upstream of a broadcast change everything after it, so this is
	// normally close to Replays).
	Diverged int `json:"diverged"`
	// Violations counts violating candidates before MaxFindings truncation.
	Violations int `json:"violations"`
}

// Report is the result of one exploration.
type Report struct {
	Scenario harness.Scenario `json:"scenario"`
	// Base is the violation of the unperturbed recorded run, if any — the
	// scenario's own behaviour is candidate -1, minimizable like any
	// finding.
	Base *Violation `json:"base_violation,omitempty"`
	// BaseSteps/BaseDeliveries size the base recording.
	BaseSteps      int `json:"base_steps"`
	BaseDeliveries int `json:"base_deliveries"`
	// Findings lists violating candidates in candidate order.
	Findings []*Finding `json:"findings"`
	Stats    Stats      `json:"stats"`
	// BaseSchedule is the base recording (artifact material, not report
	// JSON).
	BaseSchedule *sim.Schedule `json:"-"`
}

// candidate pairs a generated schedule with its deterministic index.
type candidate struct {
	idx int
	s   *sim.Schedule
}

// Explore records the scenario's base execution and searches perturbations
// of its schedule for property violations. Deterministic given (sc, opts):
// rerunning an exploration reproduces its findings exactly, at any worker
// count.
func Explore(sc harness.Scenario, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	p := newEvalPool(opts.Workers)
	defer p.close()
	return exploreOn(p, sc, opts)
}

// exploreOn runs one exploration on a caller-owned pool — the campaign
// entry point, where many explorations and shrinks share one pool and its
// per-worker runner caches. opts.Workers is ignored here; the pool's width
// rules.
func exploreOn(p *evalPool, sc harness.Scenario, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sc.MaxEvents = opts.MaxEvents
	baseOut, baseSched, err := sc.RunRecorded()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Scenario:       sc,
		Base:           Classify(baseOut),
		BaseSteps:      len(baseSched.Steps),
		BaseDeliveries: baseSched.Deliveries(),
		BaseSchedule:   baseSched,
	}

	results := make([]*Finding, opts.Budget)
	runErrs := make([]error, opts.Budget)
	var diverged atomic.Int64
	var failed atomic.Bool // a run error aborts the exploration, so stop replaying
	var wg sync.WaitGroup

	// Central deterministic candidate generation: neighborhood first, then
	// seeded random walks; both deduplicated against everything generated
	// so far (and against the base schedule). The generator runs on this
	// goroutine and the pool's submit blocks when every worker is busy, so
	// generation never outruns the replays by more than the pool width.
	gen := &generator{
		base: baseSched,
		rng:  rand.New(rand.NewSource(opts.Seed)),
		seen: map[uint64]bool{baseSched.Hash(): true},
		opts: opts,
	}
	gen.run(func(c candidate) {
		if failed.Load() {
			// The exploration is already doomed to return an error;
			// generation stays (it is cheap and keeps candidate indices
			// deterministic) but the replays stop.
			return
		}
		wg.Add(1)
		p.submit(func(rs *runnerSet) {
			defer wg.Done()
			runner, err := rs.runner(sc)
			if err != nil {
				runErrs[c.idx] = err
				failed.Store(true)
				return
			}
			out, rp, err := runner.Run(c.s, nil)
			if err != nil {
				runErrs[c.idx] = fmt.Errorf("candidate %d: %w", c.idx, err)
				failed.Store(true)
				return
			}
			if rp.Diverged() {
				diverged.Add(1)
			}
			if v := Classify(out); v != nil {
				results[c.idx] = &Finding{
					Candidate:  c.idx,
					Violation:  *v,
					Steps:      len(c.s.Steps),
					Deliveries: c.s.Deliveries(),
					DivergedAt: rp.DivergedAt(),
					Schedule:   c.s,
				}
			}
		})
	})
	wg.Wait()
	for _, err := range runErrs {
		if err != nil {
			return nil, err
		}
	}

	rep.Stats = Stats{
		Replays:  gen.produced,
		Deduped:  gen.deduped,
		Diverged: int(diverged.Load()),
	}
	for _, f := range results {
		if f == nil {
			continue
		}
		rep.Stats.Violations++
		if opts.MaxFindings > 0 && len(rep.Findings) >= opts.MaxFindings {
			continue
		}
		rep.Findings = append(rep.Findings, f)
	}
	return rep, nil
}

// generator produces the deterministic candidate sequence.
type generator struct {
	base     *sim.Schedule
	rng      *rand.Rand
	seen     map[uint64]bool
	opts     Options
	produced int
	deduped  int
}

// emit deduplicates and sinks a candidate; it reports whether the
// candidate was fresh.
func (g *generator) emit(work func(candidate), s *sim.Schedule) bool {
	h := s.Hash()
	if g.seen[h] {
		g.deduped++
		return false
	}
	g.seen[h] = true
	work(candidate{idx: g.produced, s: s})
	g.produced++
	return true
}

func (g *generator) run(work func(candidate)) {
	// Phase 1 — bounded neighborhood: radius-1 perturbations of the base
	// schedule, enumerated step by step (jitter the step's timing, swap
	// its first two delivered slots, flip each of its unreliable coins),
	// capped at half the budget so the walk phase always runs.
	nbCap := g.opts.Budget / 2
	for k := 0; k < len(g.base.Steps) && g.produced < nbCap; k++ {
		if c := g.base.Clone(); c.JitterStep(k, g.opts.Seed^int64(k)*2654435761) {
			g.emit(work, c)
		}
		if g.produced >= nbCap {
			break
		}
		if c := g.base.Clone(); c.SwapRecv(k, 0, 1) {
			g.emit(work, c)
		}
		st := &g.base.Steps[k]
		for slot := st.NR; slot < len(st.Recv) && g.produced < nbCap; slot++ {
			if c := g.base.Clone(); c.FlipCoin(k, slot) {
				g.emit(work, c)
			}
		}
	}
	// Crash neighborhood: drop each crash, and nudge each crash time.
	for i := 0; i < len(g.base.Crashes) && g.produced < nbCap; i++ {
		if c := g.base.Clone(); c.DropCrash(i) {
			g.emit(work, c)
		}
		for _, at := range []int64{0, g.base.Crashes[i].At + 1, g.base.Crashes[i].At + g.base.Fack} {
			if g.produced >= nbCap {
				break
			}
			if c := g.base.Clone(); c.ShiftCrash(i, at) {
				g.emit(work, c)
			}
		}
	}

	// Phase 2 — seeded random walks: chains of WalkLen perturbations, each
	// chain restarted from the base schedule.
	cur := g.base
	step := 0
	for attempts := 0; g.produced < g.opts.Budget && attempts < 16*g.opts.Budget; attempts++ {
		if step%g.opts.WalkLen == 0 {
			cur = g.base
		}
		c := cur.Clone()
		if !perturb(g.rng, c) {
			continue
		}
		if g.emit(work, c) {
			cur = c
			step++
		}
	}
}

// perturb applies one random perturbation to s, retrying a few times when
// the drawn operation does not apply; it reports whether s was mutated.
func perturb(rng *rand.Rand, s *sim.Schedule) bool {
	if len(s.Steps) == 0 {
		return false
	}
	for try := 0; try < 16; try++ {
		switch rng.Intn(6) {
		case 0, 1: // swap two delivery slots of one step
			k := rng.Intn(len(s.Steps))
			n := len(s.Steps[k].Recv)
			if n < 2 {
				continue
			}
			if s.SwapRecv(k, rng.Intn(n), rng.Intn(n)) {
				return true
			}
		case 2, 3: // re-jitter one step's timing within Fack
			if s.JitterStep(rng.Intn(len(s.Steps)), rng.Int63()) {
				return true
			}
		case 4: // flip one unreliable-edge coin
			k := rng.Intn(len(s.Steps))
			st := &s.Steps[k]
			if len(st.Recv) == st.NR {
				continue
			}
			if s.FlipCoin(k, st.NR+rng.Intn(len(st.Recv)-st.NR)) {
				return true
			}
		case 5: // move or drop a crash
			if len(s.Crashes) == 0 {
				continue
			}
			i := rng.Intn(len(s.Crashes))
			if rng.Intn(4) == 0 {
				if s.DropCrash(i) {
					return true
				}
				continue
			}
			if s.ShiftCrash(i, rng.Int63n(4*s.Fack+1)) {
				return true
			}
		}
	}
	return false
}
