package explore

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"github.com/absmac/absmac/internal/harness"
)

// campaignGrid is the campaign test workload: the two-phase coordinator
// stall cell (violating — a dead coordinator strands every witness) next
// to the wPAXOS contrast cell (healthy for all seeds since the Ω detector
// redesign) — a grid where exactly one cell flags.
func campaignGrid() harness.Grid {
	return harness.Grid{
		Algos:    []string{"twophase", "wpaxos"},
		Topos:    []harness.Topo{{Kind: "ring", N: 9}},
		Scheds:   []string{"random"},
		Facks:    []int64{4},
		Crashes:  []string{"coordinator"},
		Overlays: []string{"chords"},
		Seeds:    []int64{1, 2, 3, 4, 5, 6, 7, 8},
	}
}

func TestCampaignFindsKnownStall(t *testing.T) {
	rep, err := Campaign(campaignGrid(), CampaignOptions{MaxEvents: 200_000, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 || len(rep.Coverage) != 2 {
		t.Fatalf("report covers %d cells / %d coverage rows, want 2/2", len(rep.Cells), len(rep.Coverage))
	}
	if rep.Flagged == 0 || rep.CellsFlagged != 1 {
		t.Fatalf("flagged %d runs in %d cells; the twophase stall cell alone must flag", rep.Flagged, rep.CellsFlagged)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("%d findings, want 1 (PerCell defaults to 1)", len(rep.Findings))
	}
	f := rep.Findings[0]
	if f.Cell != 0 || f.Violation.Kind != KindNonTermination || !f.Minimized {
		t.Fatalf("finding misclassified: %+v", f)
	}
	// The campaign's artifact must stand alone: replay, no divergence,
	// same violation kind.
	out, rp, err := f.Artifact.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Diverged() {
		t.Fatalf("campaign artifact diverged at %d on replay", rp.DivergedAt())
	}
	if v := Classify(out); v == nil || v.Kind != KindNonTermination {
		t.Fatalf("campaign artifact does not reproduce: %+v", v)
	}
	// Coverage was measured for every cell.
	for i, c := range rep.Coverage {
		if c.Distinct == 0 || c.Runs == 0 {
			t.Fatalf("coverage row %d empty: %+v", i, c)
		}
	}
}

// TestCampaignDeterministicAcrossWidths pins the tentpole's determinism
// claim: the whole campaign report — cells, coverage, violations, finding
// sizes — and every artifact byte must be identical at pool widths 1, 2
// and 8. The perturbation search runs too (Budget > 0), so this covers
// sweep streaming, exploreOn and shrinkOn on the shared pool.
func TestCampaignDeterministicAcrossWidths(t *testing.T) {
	opts := CampaignOptions{MaxEvents: 200_000, Budget: 24, SearchSeed: 3, Minimize: true}
	var refReport []byte
	var refArtifacts [][]byte
	for _, workers := range []int{1, 2, 8} {
		opts.Workers = workers
		rep, err := Campaign(campaignGrid(), opts)
		if err != nil {
			t.Fatal(err)
		}
		repJSON, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		var arts [][]byte
		for _, f := range rep.Findings {
			var buf bytes.Buffer
			if err := f.Artifact.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			arts = append(arts, buf.Bytes())
		}
		if refReport == nil {
			refReport, refArtifacts = repJSON, arts
			continue
		}
		if !bytes.Equal(refReport, repJSON) {
			t.Fatalf("workers=%d: campaign report differs:\n%s\nvs\n%s", workers, repJSON, refReport)
		}
		if len(arts) != len(refArtifacts) {
			t.Fatalf("workers=%d: %d artifacts, want %d", workers, len(arts), len(refArtifacts))
		}
		for i := range arts {
			if !bytes.Equal(arts[i], refArtifacts[i]) {
				t.Fatalf("workers=%d: artifact %d differs byte-for-byte", workers, i)
			}
		}
	}
}

// TestCampaignCleanGrid: a healthy grid flags nothing and produces no
// findings.
func TestCampaignCleanGrid(t *testing.T) {
	grid := harness.Grid{
		Algos:  []string{"floodpaxos"},
		Topos:  []harness.Topo{{Kind: "ring", N: 5}},
		Scheds: []string{"sync", "random"},
		Facks:  []int64{3},
		Seeds:  []int64{1, 2, 3, 4},
	}
	rep, err := Campaign(grid, CampaignOptions{MaxEvents: 200_000, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flagged != 0 || len(rep.Findings) != 0 {
		t.Fatalf("healthy grid flagged %d runs, findings %d", rep.Flagged, len(rep.Findings))
	}
}

// TestParallelShrinkEqualsSerial is the satellite pin: minimizing the
// committed two-phase stall artifact with a width-1 pool and a width-8
// pool must produce byte-identical artifacts and the same attempt count —
// speculative parallel evaluation must not change what gets accepted.
func TestParallelShrinkEqualsSerial(t *testing.T) {
	a, err := ReadFile(filepath.Join("..", "harness", "testdata", "stall_twophase_coordinator_chords.json"))
	if err != nil {
		t.Fatal(err)
	}
	sc := a.Scenario
	sc.MaxEvents = a.MaxEvents
	var ref *ShrinkResult
	var refJSON []byte
	for _, workers := range []int{1, 8} {
		res, err := Shrink(sc, a.Schedule.Clone(), a.Violation.Kind,
			ShrinkOptions{MaxEvents: a.MaxEvents, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Artifact.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refJSON = res, buf.Bytes()
			continue
		}
		if res.Attempts != ref.Attempts {
			t.Fatalf("workers=%d: %d attempts, serial took %d — attempt accounting is width-dependent", workers, res.Attempts, ref.Attempts)
		}
		if !bytes.Equal(refJSON, buf.Bytes()) {
			t.Fatalf("workers=%d: minimized artifact differs from the serial result", workers)
		}
	}
}
