// Package norawrand is the analyzer fixture: every `want` comment pins a
// diagnostic, every bare line pins its absence.
package norawrand

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want `global rand source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand source`
}

func globalPerm(n int) []int {
	return rand.Perm(n) // want `global rand source`
}

// seeded is the sanctioned pattern: the seed derivation is visible at the
// construction site.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1000003 + 17))
}

// derived methods on an already-constructed *rand.Rand are the sanctioned
// API; only the construction site is policed.
func derived(r *rand.Rand) int {
	return r.Intn(3)
}

func opaqueSource(src rand.Source) *rand.Rand {
	return rand.New(src) // want `opaque source`
}

func wallClockNew() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `wall-clock-seeded`
}

func wallClockSource() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want `wall-clock-seeded`
}
