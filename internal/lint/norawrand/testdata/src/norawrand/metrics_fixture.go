// Metrics-layer cases: the observability packages (internal/metrics,
// internal/critpath) are inside the deterministic core — synthetic load
// for a histogram must come from a seed-derived generator, exactly like
// scheduler jitter.
package norawrand

import (
	"math/rand"
	"time"

	"github.com/absmac/absmac/internal/metrics"
)

// observeSeeded is the sanctioned pattern for generating synthetic metric
// load (benchmarks, property tests): the generator derives from a seed.
func observeSeeded(h metrics.Histogram, seed int64, n int) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		h.Observe(int64(r.Intn(1 << 20)))
	}
}

func observeAmbient(h metrics.Histogram, n int) {
	for i := 0; i < n; i++ {
		h.Observe(int64(rand.Intn(1 << 20))) // want `global rand source`
	}
}

func observeWallClockSeeded(h metrics.Histogram) {
	r := rand.New(rand.NewSource(time.Now().UnixNano())) // want `wall-clock-seeded`
	h.Observe(int64(r.Intn(8)))
}
