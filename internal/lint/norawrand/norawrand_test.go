package norawrand_test

import (
	"testing"

	"github.com/absmac/absmac/internal/lint/linttest"
	"github.com/absmac/absmac/internal/lint/norawrand"
)

func TestFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/norawrand", norawrand.Analyzer)
}

// TestScope pins the package allowlist: randomness is policed exactly in
// the deterministic core, and fixtures are always in scope.
func TestScope(t *testing.T) {
	scope := norawrand.Analyzer.Scope
	for path, want := range map[string]bool{
		"github.com/absmac/absmac/internal/sim":                                   true,
		"github.com/absmac/absmac/internal/graph":                                 true,
		"github.com/absmac/absmac/internal/harness":                               true,
		"github.com/absmac/absmac/internal/explore":                               true,
		"github.com/absmac/absmac/internal/baseline/gatherall":                    true,
		"github.com/absmac/absmac/internal/ext/benor":                             true,
		"github.com/absmac/absmac/internal/metrics":                               true,
		"github.com/absmac/absmac/internal/critpath":                              true,
		"github.com/absmac/absmac/internal/live":                                  false,
		"github.com/absmac/absmac/internal/netmac":                                false,
		"github.com/absmac/absmac/cmd/amacsim":                                    false,
		"github.com/absmac/absmac/internal/lint/norawrand/testdata/src/norawrand": true,
	} {
		if got := scope(path); got != want {
			t.Errorf("Scope(%q) = %v, want %v", path, got, want)
		}
	}
}
