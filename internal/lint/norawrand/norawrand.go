// Package norawrand forbids ambient randomness in the deterministic core.
//
// Every random decision in the simulator and its surrounding layers —
// scheduler plans, overlay construction, crash schedules, exploration
// walks, ben-or coins — must flow through a *rand.Rand derived from a
// scenario seed, or byte-identical schedule replay and the golden cell
// JSON break silently. The analyzer reports, inside the scoped packages:
//
//   - any call to a math/rand (or math/rand/v2) package-level function
//     (rand.Intn, rand.Shuffle, rand.Perm, ...): these draw from the
//     shared global source, which is both process-global and, since Go
//     1.20, randomly seeded;
//   - rand.New(src) where src is not a direct rand.NewSource /
//     rand.NewPCG / rand.NewChaCha8 call — an opaque source hides the
//     seed from review;
//   - rand.New / rand.NewSource whose seed expression reads the wall
//     clock (time.Now and friends) — seeded in form, nondeterministic in
//     fact.
//
// Scope: internal/sim, internal/graph, internal/harness, internal/explore,
// internal/baseline, internal/ext, internal/metrics, internal/critpath
// (and their subpackages). Wall-clock
// substrates (internal/live, internal/netmac) and the cmd/ front-ends may
// seed however they like. There is deliberately no comment escape hatch:
// unlike iteration order, ambient randomness is never justified in the
// core — plumb a seed instead.
package norawrand

import (
	"go/ast"
	"go/types"

	"github.com/absmac/absmac/internal/lint/analysis"
)

// Analyzer is the norawrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "norawrand",
	Doc:  "forbid global/ambient math/rand use in the deterministic core; randomness must come from a seed-derived *rand.Rand",
	Scope: analysis.PathScope(
		"github.com/absmac/absmac/internal/sim",
		"github.com/absmac/absmac/internal/graph",
		"github.com/absmac/absmac/internal/harness",
		"github.com/absmac/absmac/internal/explore",
		"github.com/absmac/absmac/internal/baseline",
		"github.com/absmac/absmac/internal/ext",
		"github.com/absmac/absmac/internal/metrics",
		"github.com/absmac/absmac/internal/critpath",
	),
	Run: run,
}

// randPkgs are the import paths treated as "math/rand".
var randPkgs = []string{"math/rand", "math/rand/v2"}

// sourceCtors are the package-level constructors that make a seed
// syntactically visible at the call site; rand.New must be fed one of
// these directly. rand.NewZipf is also allowed anywhere since it consumes
// an already-constructed *rand.Rand.
var sourceCtors = map[string]bool{
	"NewSource":  true, // math/rand
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	// Source constructors nested inside a rand.New call are checked by
	// checkNew; the walk marks them here so they are not re-reported when
	// visited on their own (Inspect reaches parents before children).
	handled := map[*ast.CallExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || handled[call] {
				return true
			}
			fn := analysis.FuncOf(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on *rand.Rand etc. are the sanctioned API
			}
			switch name := fn.Name(); {
			case name == "New":
				if len(call.Args) == 1 {
					if src, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
						handled[src] = true
					}
				}
				checkNew(pass, call)
			case sourceCtors[name]:
				checkSeedArgs(pass, call)
			case name == "NewZipf":
				// Consumes a *rand.Rand; the Rand's own construction is
				// checked at its site.
			default:
				pass.Reportf(call.Pos(),
					"call to %s.%s uses the global rand source; derive a *rand.Rand from the scenario seed (rand.New(rand.NewSource(seed)))",
					fn.Pkg().Name(), name)
			}
			return true
		})
	}
	return nil
}

// checkNew validates a rand.New call: the source must be a direct
// constructor call so the seed is reviewable, and the seed must not read
// the wall clock.
func checkNew(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	src, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok || !isSourceCtor(pass, src) {
		pass.Reportf(call.Pos(),
			"rand.New with an opaque source; pass rand.NewSource(seed) (or NewPCG/NewChaCha8) directly so the seed derivation is visible")
		return
	}
	checkSeedArgs(pass, src)
}

// checkSeedArgs reports a source constructor whose seed expression reads
// the wall clock — seeded in form, nondeterministic in fact.
func checkSeedArgs(pass *analysis.Pass, ctor *ast.CallExpr) {
	for _, arg := range ctor.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if analysis.IsPkgFunc(pass.TypesInfo, inner, "time", "Now") {
				pass.Reportf(ctor.Pos(),
					"wall-clock-seeded randomness; derive the seed from the scenario seed, not time.Now")
				return false
			}
			return true
		})
	}
}

func isRandPkg(path string) bool {
	for _, p := range randPkgs {
		if path == p {
			return true
		}
	}
	return false
}

// isSourceCtor reports whether call is a direct rand.NewSource /
// rand.NewPCG / rand.NewChaCha8 call.
func isSourceCtor(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.FuncOf(pass.TypesInfo, call)
	return fn != nil && fn.Pkg() != nil && isRandPkg(fn.Pkg().Path()) && sourceCtors[fn.Name()]
}
