// Package analysis is a minimal, dependency-free re-statement of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics, optionally
// carrying SuggestedFixes. The build environment for this repository bakes
// in only the standard library, so rather than depending on x/tools the
// determinism-lint suite (see the sibling analyzer packages and
// cmd/detlint) runs on this shim; the API is kept shape-compatible so a
// future swap to the real module is a handful of import rewrites.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check of the determinism contract.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string

	// Doc is the analyzer's documentation: the rule it enforces, the
	// packages it applies to, and the escape hatches it honors.
	Doc string

	// Scope reports whether the analyzer applies to a package with the
	// given import path. A nil Scope means every package. Drivers (the
	// detlint multichecker, linttest) consult it before running the
	// analyzer; fixture packages — any path with a "/testdata/" element —
	// are conventionally always in scope so analyzers can be exercised
	// outside the production tree.
	Scope func(pkgPath string) bool

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work, carrying the package's
// syntax and type information plus the diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. Drivers install it.
	Report func(Diagnostic)

	annotated map[annKey]bool // lazily built //lint:deterministic line set
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos // optional; token.NoPos if unset
	Message        string
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is an optional machine-applicable resolution of a
// diagnostic, expressed as raw text edits. detlint -fix applies them.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces source in [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DeterministicTag is the justification-comment tag honored by the
// order-sensitive analyzers (maporder, goroutineorder): a comment of the
// form
//
//	//lint:deterministic <why this site cannot break determinism>
//
// on the flagged statement's line, or on the line directly above it,
// suppresses the finding. The tag is an audited allowlist, not an off
// switch — reviewers grep for it, so the reason is part of the contract.
const DeterministicTag = "//lint:deterministic"

type annKey struct {
	file string
	line int
}

// Deterministic reports whether the source line of pos carries (or is
// directly preceded by) a DeterministicTag justification comment.
func (p *Pass) Deterministic(pos token.Pos) bool {
	if p.annotated == nil {
		p.annotated = map[annKey]bool{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, DeterministicTag) {
						continue
					}
					cp := p.Fset.Position(c.Pos())
					// The annotation covers its own line (trailing
					// comment) and the next one (comment-above form).
					p.annotated[annKey{cp.Filename, cp.Line}] = true
					p.annotated[annKey{cp.Filename, cp.Line + 1}] = true
				}
			}
		}
	}
	pp := p.Fset.Position(pos)
	return p.annotated[annKey{pp.Filename, pp.Line}]
}

// PathScope builds a Scope function matching the given import-path
// prefixes (a prefix matches itself and any subpackage). Packages under a
// testdata directory are always in scope, so analyzer fixtures exercise
// the rule regardless of where they live.
func PathScope(prefixes ...string) func(string) bool {
	return func(path string) bool {
		if strings.Contains(path, "/testdata/") {
			return true
		}
		for _, pre := range prefixes {
			if path == pre || strings.HasPrefix(path, pre+"/") {
				return true
			}
		}
		return false
	}
}

// FuncOf resolves the called function object of a call expression, seeing
// through parenthesization. It returns nil for calls of non-functions
// (conversions, builtins, function-typed variables).
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// IsPkgFunc reports whether call invokes a package-level function (no
// receiver) of the package with import path pkg whose name is one of
// names; an empty names list matches any function of the package.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkg string, names ...string) bool {
	f := FuncOf(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkg {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}
