// Package nowallclock forbids wall-clock reads in the simulated world.
//
// Simulated time is the event queue's logical clock; the moment an
// algorithm, scheduler, or harness consults the machine's clock
// (time.Now, time.Since, time.Until), identical (scenario, seed) runs can
// diverge and schedule replay stops being byte-identical. The analyzer
// reports every call to those functions inside the scoped packages.
//
// Scope: every package under internal/ EXCEPT the wall-clock substrates
// internal/live and internal/netmac, whose whole point is real time.
// cmd/ front-ends and examples/ are also exempt (they time user-visible
// work, not simulated executions). There is no comment escape hatch: code
// in the deterministic core that genuinely needs a duration measurement
// belongs behind a substrate interface, not behind an annotation.
package nowallclock

import (
	"go/ast"
	"strings"

	"github.com/absmac/absmac/internal/lint/analysis"
)

// Analyzer is the nowallclock analyzer.
var Analyzer = &analysis.Analyzer{
	Name:  "nowallclock",
	Doc:   "forbid time.Now/Since/Until in the simulator and algorithm packages; simulated time is the only clock there",
	Scope: scope,
	Run:   run,
}

// exempt lists the internal/ subtrees allowed to read the wall clock.
var exempt = []string{"live", "netmac"}

// scope admits every internal/ package except the wall-clock substrates;
// fixture packages (any /testdata/ path) are always in scope.
func scope(path string) bool {
	if strings.Contains(path, "/testdata/") {
		return true
	}
	const internal = "github.com/absmac/absmac/internal/"
	rest, ok := strings.CutPrefix(path, internal)
	if !ok {
		return false
	}
	for _, e := range exempt {
		if rest == e || strings.HasPrefix(rest, e+"/") {
			return false
		}
	}
	return true
}

// banned are the time package functions that read the wall clock.
var banned = []string{"Now", "Since", "Until"}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if analysis.IsPkgFunc(pass.TypesInfo, call, "time", banned...) {
				fn := analysis.FuncOf(pass.TypesInfo, call)
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock inside the deterministic core; use simulated time (event timestamps) or move the measurement to a substrate package",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
