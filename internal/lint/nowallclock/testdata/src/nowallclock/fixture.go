// Package nowallclock is the analyzer fixture: every `want` comment pins
// a diagnostic, every bare line pins its absence.
package nowallclock

import "time"

func stamp() time.Time {
	return time.Now() // want `wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	d := time.Since(t0) // want `wall clock`
	_ = time.Until(t0)  // want `wall clock`
	return d
}

// logical arithmetic on simulated timestamps is the sanctioned pattern.
func logical(now, fack int64) int64 {
	return now + fack
}

// Duration constants and conversions never read the clock.
func timeout() time.Duration {
	return 250 * time.Millisecond
}
