package nowallclock_test

import (
	"testing"

	"github.com/absmac/absmac/internal/lint/linttest"
	"github.com/absmac/absmac/internal/lint/nowallclock"
)

func TestFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/nowallclock", nowallclock.Analyzer)
}

// TestScope pins the exemption list: the wall-clock substrates and the
// cmd/ front-ends may read real time, everything else under internal/
// may not, and fixtures are always in scope.
func TestScope(t *testing.T) {
	scope := nowallclock.Analyzer.Scope
	for path, want := range map[string]bool{
		"github.com/absmac/absmac/internal/sim":                                       true,
		"github.com/absmac/absmac/internal/harness":                                   true,
		"github.com/absmac/absmac/internal/explore":                                   true,
		"github.com/absmac/absmac/internal/core/wpaxos":                               true,
		"github.com/absmac/absmac/internal/lint":                                      true,
		"github.com/absmac/absmac/internal/live":                                      false,
		"github.com/absmac/absmac/internal/netmac":                                    false,
		"github.com/absmac/absmac/cmd/amacsim":                                        false,
		"github.com/absmac/absmac/examples/quickstart":                                false,
		"github.com/absmac/absmac/internal/lint/nowallclock/testdata/src/nowallclock": true,
	} {
		if got := scope(path); got != want {
			t.Errorf("Scope(%q) = %v, want %v", path, got, want)
		}
	}
}
