// Package load turns `go list` package patterns into type-checked
// packages for the lint analyzers, using only the standard library: the
// go command supplies file lists and compiled export data
// (`go list -export -deps -json`), go/parser supplies syntax, and
// go/importer's gc importer — fed export data through a lookup function —
// supplies dependency types. This is the slice of
// golang.org/x/tools/go/packages that a checker driver actually needs,
// reimplemented because this build environment forbids module downloads.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked root package named by the load patterns.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *listErr
}

type listErr struct {
	Err string
}

// Load lists patterns in dir (the module root or any directory inside
// it), compiles export data for the dependency closure, and returns the
// parsed, type-checked root packages sorted by import path.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	exports := map[string]string{}
	var roots []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("load: no packages match %s", strings.Join(patterns, " "))
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})

	pkgs := make([]*Package, 0, len(roots))
	for _, r := range roots {
		files := make([]*ast.File, 0, len(r.GoFiles))
		for _, name := range r.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(r.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(r.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %w", r.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   r.ImportPath,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
