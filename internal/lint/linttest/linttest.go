// Package linttest is the fixture harness for the determinism analyzers —
// the working subset of golang.org/x/tools/go/analysis/analysistest. A
// fixture is an ordinary compilable package committed under the
// analyzer's testdata/src/ directory whose lines carry expectations as
// trailing comments:
//
//	json.NewEncoder(w).Encode(m) // want `range over map`
//	ks = append(ks, k)           // no comment: no diagnostic expected here
//
// Each `want` comment lists one or more quoted or backquoted regular
// expressions; Run loads the fixture with the real loader, applies the
// analyzer, and requires an exact line-by-line correspondence between
// expectations and diagnostics — a missing finding and a surprise finding
// are both failures, so fixtures pin behavior in both directions.
package linttest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/absmac/absmac/internal/lint/analysis"
	"github.com/absmac/absmac/internal/lint/load"
)

// wantRE matches one `// want` expectation comment and captures its
// pattern list.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// patRE matches one quoted ("...") or backquoted (`...`) pattern inside a
// `want` comment's pattern list.
var patRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type lineKey struct {
	file string // base name; fixtures never repeat base names
	line int
}

// Run loads the fixture package at dir (relative to the test's working
// directory, e.g. "testdata/src/maporder"), runs the analyzer over it
// ignoring the analyzer's package Scope (fixtures are in scope by
// definition), and checks every diagnostic against the fixture's `want`
// comments. It returns the diagnostics and the fixture's file set (for
// follow-up assertions, e.g. resolving suggested-fix edit offsets).
func Run(t *testing.T, dir string, a *analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet) {
	t.Helper()
	pkgs, err := load.Load(".", "./"+filepath.ToSlash(dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		all = append(all, diags...)

		got := map[lineKey][]string{}
		for _, d := range diags {
			p := pkg.Fset.Position(d.Pos)
			k := lineKey{filepath.Base(p.Filename), p.Line}
			got[k] = append(got[k], d.Message)
		}
		want, err := expectations(pkg)
		if err != nil {
			t.Fatal(err)
		}

		for k, pats := range want {
			msgs := got[k]
			if len(msgs) != len(pats) {
				t.Errorf("%s:%d: want %d diagnostic(s) %q, got %d %q",
					k.file, k.line, len(pats), pats, len(msgs), msgs)
				continue
			}
			// Match greedily: each pattern must claim a distinct message.
			used := make([]bool, len(msgs))
			for _, pat := range pats {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", k.file, k.line, pat, err)
				}
				found := false
				for i, m := range msgs {
					if !used[i] && re.MatchString(m) {
						used[i] = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s:%d: no diagnostic matching %q among %q", k.file, k.line, pat, msgs)
				}
			}
		}
		for k, msgs := range got {
			if _, ok := want[k]; !ok {
				t.Errorf("%s:%d: unexpected diagnostic(s) %q", k.file, k.line, msgs)
			}
		}
	}
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	return all, fset
}

// expectations scans the fixture's files for `want` comments.
func expectations(pkg *load.Package) (map[lineKey][]string, error) {
	want := map[lineKey][]string{}
	for _, f := range pkg.Syntax {
		name := pkg.Fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("reading fixture %s: %w", name, err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := lineKey{filepath.Base(name), i + 1}
			for _, pm := range patRE.FindAllStringSubmatch(m[1], -1) {
				pat := pm[1]
				if pat == "" {
					pat = pm[2]
				}
				want[k] = append(want[k], pat)
			}
			if len(want[k]) == 0 {
				return nil, fmt.Errorf("%s:%d: want comment with no quoted patterns", k.file, k.line)
			}
		}
	}
	return want, nil
}
