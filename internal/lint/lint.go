// Package lint assembles the determinism-contract analyzer suite.
//
// The contract itself — what the analyzers enforce and how to annotate a
// justified exception — is documented in the repository's root doc.go
// ("Determinism contract") and, per rule, in each analyzer package's doc.
// cmd/detlint is the multichecker front-end; internal/lint/linttest runs
// the committed fixtures.
package lint

import (
	"github.com/absmac/absmac/internal/lint/analysis"
	"github.com/absmac/absmac/internal/lint/goroutineorder"
	"github.com/absmac/absmac/internal/lint/maporder"
	"github.com/absmac/absmac/internal/lint/norawrand"
	"github.com/absmac/absmac/internal/lint/nowallclock"
)

// Analyzers returns the full determinism suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		goroutineorder.Analyzer,
		maporder.Analyzer,
		norawrand.Analyzer,
		nowallclock.Analyzer,
	}
}
