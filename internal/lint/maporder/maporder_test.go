package maporder_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/absmac/absmac/internal/lint/analysis"
	"github.com/absmac/absmac/internal/lint/linttest"
	"github.com/absmac/absmac/internal/lint/maporder"
)

func TestFixture(t *testing.T) {
	diags, fset := linttest.Run(t, "testdata/src/maporder", maporder.Analyzer)
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}

	// Every maporder finding carries the annotate-skeleton suggested fix;
	// applying one must insert a correctly indented justification line
	// directly above the flagged range statement.
	d := diags[0]
	if len(d.SuggestedFixes) != 1 || len(d.SuggestedFixes[0].TextEdits) != 1 {
		t.Fatalf("want exactly one suggested fix with one edit, got %+v", d.SuggestedFixes)
	}
	edit := d.SuggestedFixes[0].TextEdits[0]
	src, err := os.ReadFile(filepath.Join("testdata", "src", "maporder", "fixture.go"))
	if err != nil {
		t.Fatal(err)
	}
	// All edits in this fixture are pure insertions (Pos == End) at a
	// line start inside fixture.go; apply in memory.
	if edit.Pos != edit.End {
		t.Fatalf("annotate fix should be an insertion, got [%d,%d)", edit.Pos, edit.End)
	}
	off := fset.Position(edit.Pos).Offset
	fixed := string(src[:off]) + string(edit.NewText) + string(src[off:])
	wantLine := "\t" + analysis.DeterministicTag + " FIXME: explain why this order cannot be observed\n\tfor "
	if !strings.Contains(fixed, wantLine) {
		t.Errorf("applied fix does not insert an indented justification above the range:\n%s", fixed)
	}
}
