// Package maporder is the analyzer fixture: every `want` comment pins a
// diagnostic, every bare line pins its absence. The keys/annotated
// functions pin the two escape hatches (collect-then-sort and the
// justification comment).
package maporder

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
)

func printAll(m map[string]int) {
	for k, v := range m { // want `feeds fmt output`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func marshalEach(m map[string]int) [][]byte {
	var out [][]byte
	for _, v := range m { // want `encoding/json`
		b, _ := json.Marshal(v)
		out = append(out, b)
	}
	return out
}

func hashAll(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m { // want `a hash`
		h.Write([]byte(k))
	}
	return h.Sum64()
}

func unsortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m { // want `returned unsorted`
		ks = append(ks, k)
	}
	return ks
}

func earlyAppend(m map[string]int, acc []string) []string {
	for k := range m { // want `append returned from inside the loop`
		return append(acc, k)
	}
	return acc
}

// keys is the canonical collect-then-sort idiom: the appended slice is
// sorted before it escapes, so the map's order is laundered away.
func keys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// count is an order-insensitive reduction: no sink, no finding.
func count(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// annotated pins the justification escape hatch.
func annotated(m map[string]int) {
	//lint:deterministic every value prints the same line, so order is unobservable
	for _, v := range m {
		fmt.Println(v)
	}
}
