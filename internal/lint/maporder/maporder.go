// Package maporder flags map iteration whose order can leak into output.
//
// Go randomizes map iteration order per run, so a `range` over a map is
// fine for order-insensitive reductions (counting, set building) but
// poisonous the moment its body feeds an order-sensitive sink. This
// repository pins cell JSON, campaign reports and schedule fingerprints
// byte-for-byte; one unsorted map range on any of those paths is a flaky
// golden test. The analyzer reports a range over a map value whose body
// reaches:
//
//   - an encoding/json call (Marshal, Encoder.Encode, ...);
//   - fmt output (Printf/Fprintf/Sprintf/Errorf/...);
//   - a hash write (any method of hash, hash/*, or crypto/* types);
//   - an append whose accumulated slice is returned by the enclosing
//     function — the classic "collect map entries" helper, whose callers
//     inherit the random order.
//
// Escape hatches, both exercised by fixtures:
//
//   - the collect-then-sort idiom: if the appended slice is also passed
//     to a sort (sort.* / slices.Sort*) call in the same function, the
//     range is the canonical sortedKeys pattern and is not reported;
//   - a //lint:deterministic justification comment on (or directly
//     above) the range statement suppresses the finding; the suggested
//     fix inserts a skeleton of that comment for sites a human has
//     audited.
//
// Scope: the whole module (any package path); map-order bugs in cmd/
// table printers are as real as in the simulator.
package maporder

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"github.com/absmac/absmac/internal/lint/analysis"
)

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map whose body feeds JSON, fmt, hash or returned-append sinks; sort keys first or justify with " + analysis.DeterministicTag,
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// walkLocal visits n without descending into nested function literals:
// per-function facts (returns, sort calls, map ranges) belong to exactly
// one function body.
func walkLocal(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return visit(m)
	})
}

// checkFunc analyzes one function body.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Objects whose value is returned by this function, and objects
	// passed to a sort call anywhere in it.
	returned := map[types.Object]bool{}
	sorted := map[types.Object]bool{}
	walkLocal(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						returned[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			if analysis.IsPkgFunc(info, n, "sort") || analysis.IsPkgFunc(info, n, "slices") {
				for _, arg := range n.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							sorted[obj] = true
						}
					}
				}
			}
		}
		return true
	})

	walkLocal(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Deterministic(rs.Pos()) {
			return true
		}
		if sink := findSink(pass, rs.Body, returned, sorted); sink != "" {
			pass.Report(analysis.Diagnostic{
				Pos: rs.Pos(),
				Message: fmt.Sprintf(
					"range over map %s feeds %s in random order; iterate a sorted key slice, or justify with a %s comment",
					nodeString(pass.Fset, rs.X), sink, analysis.DeterministicTag),
				SuggestedFixes: []analysis.SuggestedFix{annotateFix(pass, rs)},
			})
		}
		return true
	})
}

// findSink scans a map-range body (nested closures included: they run
// per-iteration) for the first order-sensitive sink and describes it.
// An empty result means the iteration looks order-insensitive.
func findSink(pass *analysis.Pass, body *ast.BlockStmt, returned, sorted map[types.Object]bool) string {
	info := pass.TypesInfo
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := analysis.FuncOf(info, n)
			if fn != nil && fn.Pkg() != nil {
				switch path := fn.Pkg().Path(); {
				case path == "encoding/json":
					sink = "encoding/json (" + fn.Name() + ")"
				case path == "fmt":
					sink = "fmt output (fmt." + fn.Name() + ")"
				case isHashPkg(path):
					sink = "a hash (" + path + "." + fn.Name() + ")"
				}
			}
			if sink == "" {
				// Method calls on hash types: hash.Hash embeds io.Writer,
				// so Write resolves to package io — classify by the
				// receiver's type instead of the method's.
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
						if path := namedPkgPath(s.Recv()); isHashPkg(path) {
							sink = "a hash (" + path + " " + sel.Sel.Name + ")"
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isAppend(info, call) {
					sink = "an append returned from inside the loop"
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isAppend(info, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Uses[id]
				if obj == nil {
					obj = info.Defs[id]
				}
				if obj != nil && returned[obj] && !sorted[obj] {
					sink = fmt.Sprintf("append to %q, which is returned unsorted", id.Name)
				}
			}
		}
		return sink == ""
	})
	return sink
}

// isHashPkg reports whether a package path hosts hashing types: the hash
// interfaces themselves, the hash/* implementations, and crypto/*.
func isHashPkg(path string) bool {
	return path == "hash" || strings.HasPrefix(path, "hash/") || strings.HasPrefix(path, "crypto/")
}

// namedPkgPath returns the defining package path of a (possibly pointer)
// named type, or "" when the type has none.
func namedPkgPath(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

// isAppend reports whether call invokes the append builtin.
func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// annotateFix builds the suggested fix that inserts a skeleton
// justification comment above the range statement. It is scaffolding for
// a human audit — the inserted FIXME must be replaced with an actual
// reason before review.
func annotateFix(pass *analysis.Pass, rs *ast.RangeStmt) analysis.SuggestedFix {
	p := pass.Fset.Position(rs.Pos())
	lineStart := rs.Pos() - token.Pos(p.Column-1)
	indent := strings.Repeat("\t", p.Column-1)
	return analysis.SuggestedFix{
		Message: "insert a " + analysis.DeterministicTag + " justification skeleton",
		TextEdits: []analysis.TextEdit{{
			Pos:     lineStart,
			End:     lineStart,
			NewText: []byte(indent + analysis.DeterministicTag + " FIXME: explain why this order cannot be observed\n"),
		}},
	}
}

// nodeString renders a (small) expression for a diagnostic message.
func nodeString(fset *token.FileSet, n ast.Node) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, n); err != nil {
		return "value"
	}
	return b.String()
}
