// Package goroutineorder polices how worker goroutines publish results.
//
// Every parallel phase in this repository — sweep cell workers, the
// explorer's replay pool, the width-invariant parallel shrinker — is
// deterministic for one reason: a worker may only publish into a slot the
// submitter addressed in advance (results[i] = ...), or send on a channel
// whose consumer reduces in candidate order. The moment a goroutine
// appends to a shared slice, writes a shared map, or mutates a captured
// scalar, result order starts depending on goroutine interleaving and
// "byte-identical at workers 1/2/8" dies (even when a mutex makes the
// race detector happy — mutexes serialize, they don't order).
//
// The analyzer inspects function literals that run concurrently — the
// body of a `go` statement, or a literal passed to a pool-submission
// method (submit/Submit/Go, the evalPool convention) — and reports, for
// captured (free) variables:
//
//   - x = ... / x += ... / x++ — scalar write to a captured variable;
//   - x = append(x, ...)       — order-dependent append to a captured slice;
//   - m[k] = ...               — write to a captured map;
//   - *p = ...                 — write through a captured pointer;
//   - x.f = ...                — field write on a captured value.
//
// Index writes to captured slices/arrays (results[i] = ...) are the
// sanctioned pattern and are never reported; channel sends likewise.
// A //lint:deterministic justification comment on (or directly above)
// the offending statement suppresses a finding — e.g. a single-task
// closure whose completion is awaited before the result is read.
//
// Scope: the deterministic parallel layers — internal/sim,
// internal/graph, internal/harness, internal/explore, internal/baseline,
// internal/ext, internal/metrics, internal/critpath. The wall-clock
// substrates order results by real arrival on purpose and are exempt.
package goroutineorder

import (
	"go/ast"
	"go/types"

	"github.com/absmac/absmac/internal/lint/analysis"
)

// Analyzer is the goroutineorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goroutineorder",
	Doc:  "worker goroutines must publish results index-addressed or via channels consumed in candidate order, not by appending/mutating captured state",
	Scope: analysis.PathScope(
		"github.com/absmac/absmac/internal/sim",
		"github.com/absmac/absmac/internal/graph",
		"github.com/absmac/absmac/internal/harness",
		"github.com/absmac/absmac/internal/explore",
		"github.com/absmac/absmac/internal/baseline",
		"github.com/absmac/absmac/internal/ext",
		"github.com/absmac/absmac/internal/metrics",
		"github.com/absmac/absmac/internal/critpath",
	),
	Run: run,
}

// submitters are method/function names that execute a function-literal
// argument on another goroutine (the evalPool convention). runOne is
// deliberately absent: it runs a single closure and waits, so writes it
// makes are ordered by the join edge.
var submitters = map[string]bool{"submit": true, "Submit": true, "Go": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkWorker(pass, lit)
				}
			case *ast.CallExpr:
				if !isSubmitter(n) {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						checkWorker(pass, lit)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isSubmitter reports whether call is a pool-submission call by name
// (p.submit(fn), pool.Go(fn), ...). Name-based on purpose: the pool type
// is unexported and the convention is part of this repo's contract.
func isSubmitter(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return submitters[fun.Sel.Name]
	case *ast.Ident:
		return submitters[fun.Name]
	}
	return false
}

// checkWorker walks one concurrently-executing literal (nested literals
// included — they run on the same goroutine) for unordered publications.
func checkWorker(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				appendToSelf := false
				if i < len(n.Rhs) {
					if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok {
						appendToSelf = isAppend(pass.TypesInfo, call)
					}
				}
				checkTarget(pass, lit, lhs, appendToSelf)
			}
		case *ast.IncDecStmt:
			checkTarget(pass, lit, n.X, false)
		}
		return true
	})
}

// checkTarget reports lhs if it publishes through captured state in an
// order-dependent way.
func checkTarget(pass *analysis.Pass, lit *ast.FuncLit, lhs ast.Expr, appendToSelf bool) {
	if pass.Deterministic(lhs.Pos()) {
		return
	}
	const remedy = "; publish index-addressed (results[i] = ...) or send on a channel reduced in candidate order"
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v := freeVar(pass, lit, lhs); v != nil {
			if appendToSelf {
				pass.Reportf(lhs.Pos(),
					"append to %q captured by a worker goroutine: element order depends on interleaving"+remedy, v.Name())
			} else {
				pass.Reportf(lhs.Pos(),
					"write to %q captured by a worker goroutine: last writer wins nondeterministically"+remedy, v.Name())
			}
		}
	case *ast.IndexExpr:
		base, ok := ast.Unparen(lhs.X).(*ast.Ident)
		if !ok {
			return
		}
		v := freeVar(pass, lit, base)
		if v == nil {
			return
		}
		if _, isMap := v.Type().Underlying().(*types.Map); isMap {
			pass.Reportf(lhs.Pos(),
				"write to captured map %q from a worker goroutine: unsynchronized and unordered"+remedy, v.Name())
		}
		// Captured slice/array with a per-task index is the sanctioned
		// publication pattern — never reported.
	case *ast.StarExpr:
		if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			if v := freeVar(pass, lit, id); v != nil {
				pass.Reportf(lhs.Pos(),
					"write through captured pointer %q from a worker goroutine"+remedy, v.Name())
			}
		}
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			if v := freeVar(pass, lit, id); v != nil {
				pass.Reportf(lhs.Pos(),
					"field write on %q captured by a worker goroutine"+remedy, v.Name())
			}
		}
	}
}

// freeVar resolves id to a variable declared outside lit (captured from
// an enclosing scope or package-level); nil for locals, fields, and
// non-variables.
func freeVar(pass *analysis.Pass, lit *ast.FuncLit, id *ast.Ident) *types.Var {
	if pass.TypesInfo.Defs[id] != nil {
		return nil // declaration site: a local
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
		return nil // declared inside the literal (params included)
	}
	return v
}

// isAppend reports whether call invokes the append builtin.
func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
