package goroutineorder_test

import (
	"testing"

	"github.com/absmac/absmac/internal/lint/goroutineorder"
	"github.com/absmac/absmac/internal/lint/linttest"
)

func TestFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/goroutineorder", goroutineorder.Analyzer)
}

// TestScope pins the package allowlist: ordering of worker publications
// is policed exactly in the deterministic parallel layers.
func TestScope(t *testing.T) {
	scope := goroutineorder.Analyzer.Scope
	for path, want := range map[string]bool{
		"github.com/absmac/absmac/internal/harness":                                         true,
		"github.com/absmac/absmac/internal/explore":                                         true,
		"github.com/absmac/absmac/internal/sim":                                             true,
		"github.com/absmac/absmac/internal/metrics":                                         true,
		"github.com/absmac/absmac/internal/critpath":                                        true,
		"github.com/absmac/absmac/internal/live":                                            false,
		"github.com/absmac/absmac/internal/netmac":                                          false,
		"github.com/absmac/absmac/cmd/amacexplore":                                          false,
		"github.com/absmac/absmac/internal/lint/goroutineorder/testdata/src/goroutineorder": true,
	} {
		if got := scope(path); got != want {
			t.Errorf("Scope(%q) = %v, want %v", path, got, want)
		}
	}
}
