// Package goroutineorder is the analyzer fixture: every `want` comment
// pins a diagnostic, every bare line pins its absence. The indexed/
// channeled functions pin the two sanctioned publication patterns and
// justified pins the annotation escape hatch.
package goroutineorder

import "sync"

// indexed is the sanctioned pattern: each worker owns a pre-addressed
// slot, so result order is fixed by the submitter regardless of
// interleaving (the sweep/pool/shrink convention).
func indexed(items []int) []int {
	results := make([]int, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i, it int) {
			defer wg.Done()
			results[i] = it * 2
		}(i, it)
	}
	wg.Wait()
	return results
}

// channeled is the other sanctioned pattern: workers send, the consumer
// imposes its own order.
func channeled(items []int) int {
	ch := make(chan int, len(items))
	for _, it := range items {
		go func(it int) { ch <- it * 2 }(it)
	}
	total := 0
	for range items {
		total += <-ch
	}
	return total
}

func appended(items []int) []int {
	var results []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			// The mutex makes this race-free but not order-free: element
			// order still depends on goroutine interleaving.
			mu.Lock()
			results = append(results, it*2) // want `append to "results" captured`
			mu.Unlock()
		}(it)
	}
	wg.Wait()
	return results
}

func scalar() int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			total += i // want `write to "total" captured`
		}(i)
	}
	wg.Wait()
	return total
}

func mapped(keys []string) map[string]bool {
	seen := map[string]bool{}
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			seen[k] = true // want `captured map "seen"`
		}(k)
	}
	wg.Wait()
	return seen
}

func pointer(p *int) {
	go func() {
		*p = 1 // want `captured pointer "p"`
	}()
}

type result struct{ n int }

func field(r *result) {
	go func() {
		r.n = 2 // want `field write on "r" captured`
	}()
}

// pool mimics the explore evalPool submission convention: a function
// literal handed to submit runs on a worker goroutine.
type pool struct{ tasks chan func() }

func (p *pool) submit(fn func()) { p.tasks <- fn }

func viaPool(p *pool, items []int) []int {
	out := make([]int, len(items))
	var bad []int
	for i, it := range items {
		i, it := i, it
		p.submit(func() {
			out[i] = it           // index-addressed: sanctioned
			bad = append(bad, it) // want `append to "bad" captured`
			out[i] = len(bad)     // index-addressed: sanctioned
		})
	}
	return out
}

// justified pins the annotation escape hatch: a single closure joined
// before the result is read is ordered by the join edge.
func justified(r *result) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		//lint:deterministic single goroutine, joined before any read
		r.n = 7
	}()
	wg.Wait()
}
