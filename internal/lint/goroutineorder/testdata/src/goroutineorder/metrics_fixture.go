// Metrics-aggregation cases: the sweep harness collects flight-recorder
// registries from parallel workers, and the only pattern that keeps cell
// output byte-identical across worker widths is the one pinned here —
// each worker owns a pre-addressed registry slot, merged after the join.
package goroutineorder

import (
	"sync"

	"github.com/absmac/absmac/internal/metrics"
)

// perWorkerRegistries is the sanctioned aggregation pattern (the
// SweepOptions.Metrics convention): registries publish index-addressed,
// the submitter merges in worker order after the join.
func perWorkerRegistries(nworkers int) *metrics.Registry {
	regs := make([]*metrics.Registry, nworkers)
	var wg sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reg := metrics.New()
			reg.Counter("events").Inc()
			regs[w] = reg // index-addressed: sanctioned
		}(w)
	}
	wg.Wait()
	agg := metrics.New()
	for _, r := range regs {
		agg.Merge(r)
	}
	return agg
}

// sharedAggregation is the anti-pattern the sweep must never regress to:
// workers folding totals into captured state, where merge order (and with
// gauges, the surviving last-value) depends on interleaving.
func sharedAggregation(nworkers int) (int64, map[string]int64) {
	var events int64
	counts := map[string]int64{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			events++             // want `write to "events" captured`
			counts["events"] = 1 // want `captured map "counts"`
			mu.Unlock()
		}()
	}
	wg.Wait()
	return events, counts
}
