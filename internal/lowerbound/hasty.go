package lowerbound

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

// Hasty is a deliberately premature consensus attempt used to exhibit the
// Theorem 3.10 partition argument: it gossips values for a fixed number of
// ack cycles and then decides the minimum value seen. With a budget of k
// cycles it decides by time k*Fack — so with k < floor(D/2) it decides
// before information can have crossed half the line, and the partition
// harness makes it pay with an agreement violation.
type Hasty struct {
	api    amac.API
	cycles int

	has0, has1 bool
	acks       int
	decided    bool
	decision   amac.Value
}

// HastyMsg carries the gossiped value set (no ids needed).
type HastyMsg struct {
	Has0, Has1 bool
}

// IDCount implements amac.Message.
func (HastyMsg) IDCount() int { return 0 }

// NewHasty returns a hasty node with the given ack-cycle budget.
func NewHasty(input amac.Value, cycles int) *Hasty {
	if cycles < 1 {
		panic(fmt.Sprintf("lowerbound: invalid hasty cycle budget %d", cycles))
	}
	return &Hasty{cycles: cycles, has0: input == 0, has1: input == 1}
}

// NewHastyFactory returns a factory with a fixed cycle budget.
func NewHastyFactory(cycles int) amac.Factory {
	return func(cfg amac.NodeConfig) amac.Algorithm { return NewHasty(cfg.Input, cycles) }
}

// Start implements amac.Algorithm.
func (a *Hasty) Start(api amac.API) {
	a.api = api
	api.Broadcast(HastyMsg{Has0: a.has0, Has1: a.has1})
}

// OnReceive implements amac.Algorithm.
func (a *Hasty) OnReceive(m amac.Message) {
	msg, ok := m.(HastyMsg)
	if !ok {
		panic(fmt.Sprintf("lowerbound: unexpected message type %T", m))
	}
	a.has0 = a.has0 || msg.Has0
	a.has1 = a.has1 || msg.Has1
}

// OnAck implements amac.Algorithm.
func (a *Hasty) OnAck(amac.Message) {
	a.acks++
	if a.acks < a.cycles {
		a.api.Broadcast(HastyMsg{Has0: a.has0, Has1: a.has1})
		return
	}
	if !a.decided {
		a.decided = true
		if a.has0 {
			a.decision = 0
		} else {
			a.decision = 1
		}
		a.api.Decide(a.decision)
	}
}

// Decided implements amac.Decider.
func (a *Hasty) Decided() (amac.Value, bool) { return a.decision, a.decided }

var (
	_ amac.Algorithm = (*Hasty)(nil)
	_ amac.Decider   = (*Hasty)(nil)
	_ amac.Message   = HastyMsg{}
)

// PartitionResult reports one run of the Theorem 3.10 partition harness.
type PartitionResult struct {
	// D is the line diameter, Fack the scheduler bound.
	D    int
	Fack int64
	// Bound is the theorem's floor(D/2)*Fack threshold.
	Bound int64
	// HastyDecideTime is when the premature algorithm decided (its
	// budget times Fack) — strictly below Bound by construction.
	HastyDecideTime int64
	// HastyViolated reports the resulting agreement violation.
	HastyViolated bool
}

// RunPartition executes the Theorem 3.10 harness on a line of diameter D
// (D >= 2) under the maximum-delay scheduler: half the line starts with 0,
// half with 1, and a hasty algorithm deciding before floor(D/2)*Fack
// splits. (Correct algorithms' decision times are measured against the
// same bound by experiment E4.)
func RunPartition(D int, fack int64) (*PartitionResult, error) {
	if D < 2 {
		return nil, fmt.Errorf("lowerbound: partition harness needs D >= 2, got %d", D)
	}
	if fack < 1 {
		return nil, fmt.Errorf("lowerbound: invalid Fack %d", fack)
	}
	n := D + 1
	inputs := make([]amac.Value, n)
	for i := n / 2; i < n; i++ {
		inputs[i] = 1
	}
	cycles := D / 2
	if cycles < 1 {
		cycles = 1
	}
	// Decide strictly before the bound: floor(D/2) cycles of exactly
	// Fack each would land on the bound itself, so use one fewer when
	// possible.
	if cycles > 1 {
		cycles--
	}
	res := sim.Run(sim.Config{
		Graph:           graph.Line(n),
		Inputs:          inputs,
		Factory:         NewHastyFactory(cycles),
		Scheduler:       sim.MaxDelay{F: fack},
		StopWhenDecided: true,
		Audit:           true,
	})
	rep := consensus.Check(inputs, res)
	out := &PartitionResult{
		D:               D,
		Fack:            fack,
		Bound:           int64(D/2) * fack,
		HastyDecideTime: res.MaxDecideTime,
		HastyViolated:   !rep.Agreement,
	}
	return out, nil
}
