package lowerbound

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/baseline/anonflood"
	"github.com/absmac/absmac/internal/baseline/gatherall"
	"github.com/absmac/absmac/internal/baseline/waitall"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

// This file drives the paper's two indistinguishability constructions as
// concrete counterexample executions (experiments E2 and E3). An
// impossibility theorem cannot be "run", but its adversarial construction
// can: we instantiate the networks, play the constructions' schedulers,
// and watch a natural algorithm of the forbidden class violate agreement —
// while control runs (the forbidden assumption restored, or the
// construction's premise removed) succeed.

// AnonResult reports one run of the Theorem 3.3 construction.
type AnonResult struct {
	// Fig is the instantiated Figure 1 pair of networks.
	Fig *graph.Figure1
	// Rounds is the round budget handed to the anonymous algorithm,
	// derived from a diameter bound valid for both networks.
	Rounds int
	// ControlOK reports that the algorithm solved consensus on network B
	// under the synchronous scheduler (Lemma 3.5's premise).
	ControlOK bool
	// ViolationInA reports that the same algorithm, same parameters,
	// violated agreement on network A under the Section 3.2 scheduler
	// (bridge node silenced until both gadgets decide).
	ViolationInA bool
	// IDReads counts id reads observed by the anonymity audit across all
	// runs; it must be zero for the construction to apply.
	IDReads int
	// Decisions maps a few salient network-A nodes to their decisions.
	Gadget0Decision, Gadget1Decision amac.Value
}

// RunAnonImpossibility executes the Theorem 3.3 construction for an even
// diameter D >= 6 and minimum size n.
func RunAnonImpossibility(D, n int) (*AnonResult, error) {
	fig := graph.BuildFigure1(D, n)
	if err := fig.VerifyCoverProperty(); err != nil {
		return nil, fmt.Errorf("lowerbound: cover property: %w", err)
	}
	diamBound := fig.DiamA
	if fig.DiamB > diamBound {
		diamBound = fig.DiamB
	}
	rounds := anonflood.RoundsForDiameter(diamBound)
	res := &AnonResult{Fig: fig, Rounds: rounds}

	totalReads := 0

	// Control: network B under the synchronous scheduler, with a mixed
	// input assignment; the anonymous algorithm must solve consensus.
	{
		inputs := make([]amac.Value, fig.N)
		for i := range inputs {
			inputs[i] = amac.Value(i % 2)
		}
		factory, reads := consensus.AnonymityAudit(anonflood.NewFactory(rounds))
		out := sim.Run(sim.Config{
			Graph:           fig.B,
			Inputs:          inputs,
			Factory:         factory,
			Scheduler:       sim.Synchronous{},
			StopWhenDecided: true,
			Audit:           true,
		})
		rep := consensus.Check(inputs, out)
		res.ControlOK = rep.OK()
		totalReads += *reads
	}

	// Counterexample: network A, gadget copy 0 starts with 0, gadget
	// copy 1 with 1, bridge and clique with 0; the bridge node q is
	// silenced until both gadgets have exhausted their round budgets.
	{
		inputs := make([]amac.Value, fig.N)
		for _, u := range fig.AGadget[1] {
			inputs[u] = 1
		}
		factory, reads := consensus.AnonymityAudit(anonflood.NewFactory(rounds))
		gate := sim.Gate{
			Base:  sim.Synchronous{},
			Gated: map[int]bool{fig.Q: true},
			Until: int64(rounds) + 2,
		}
		out := sim.Run(sim.Config{
			Graph:           fig.A,
			Inputs:          inputs,
			Factory:         factory,
			Scheduler:       gate,
			StopWhenDecided: true,
			Audit:           true,
		})
		rep := consensus.Check(inputs, out)
		res.ViolationInA = !rep.Agreement
		totalReads += *reads
		g0 := fig.AGadget[0][fig.Gadget.C()]
		g1 := fig.AGadget[1][fig.Gadget.C()]
		if out.Decided[g0] {
			res.Gadget0Decision = out.Decision[g0]
		}
		if out.Decided[g1] {
			res.Gadget1Decision = out.Decision[g1]
		}
	}

	res.IDReads = totalReads
	return res, nil
}

// SizeResult reports one run of the Theorem 3.9 construction.
type SizeResult struct {
	// KD is the instantiated Figure 2 network.
	KD *graph.KDNetwork
	// Rounds is the round budget handed to the n-oblivious algorithm.
	Rounds int
	// ControlLineOK reports that the algorithm solves consensus on the
	// standalone line L_D under the synchronous scheduler (Lemma 3.8).
	ControlLineOK bool
	// ViolationInKD reports the split-brain on K_D under the
	// semi-synchronous scheduler (hub silenced).
	ViolationInKD bool
	// ControlWithNOK reports that gatherall — identical setting but
	// knowing n — solves consensus on K_D under the same scheduler.
	ControlWithNOK bool
	// L1Decision and L2Decision are the partitioned decisions.
	L1Decision, L2Decision amac.Value
}

// RunSizeImpossibility executes the Theorem 3.9 construction for D >= 2.
func RunSizeImpossibility(D int) (*SizeResult, error) {
	kd := graph.BuildKD(D)
	rounds := waitall.RoundsForDiameter(D)
	res := &SizeResult{KD: kd, Rounds: rounds}

	// Control 1: the standalone line L_D (the alpha executions of
	// Lemma 3.8) — correct without knowing n.
	{
		line := graph.Line(D + 1)
		inputs := make([]amac.Value, D+1)
		for i := range inputs {
			inputs[i] = amac.Value(i % 2)
		}
		out := sim.Run(sim.Config{
			Graph:           line,
			Inputs:          inputs,
			Factory:         waitall.NewFactory(rounds),
			Scheduler:       sim.Synchronous{},
			StopWhenDecided: true,
			Audit:           true,
		})
		res.ControlLineOK = consensus.Check(inputs, out).OK()
	}

	inputs := make([]amac.Value, kd.G.N())
	for _, u := range kd.L2 {
		inputs[u] = 1
	}
	gate := sim.Gate{
		Base:  sim.Synchronous{},
		Gated: map[int]bool{kd.Hub: true},
		Until: int64(rounds) + 2,
	}

	// Counterexample: K_D with the hub silenced until both lines have
	// decided; L1 (all zeros) and L2 (all ones) each behave exactly as
	// they would alone.
	{
		out := sim.Run(sim.Config{
			Graph:           kd.G,
			Inputs:          inputs,
			Factory:         waitall.NewFactory(rounds),
			Scheduler:       gate,
			StopWhenDecided: true,
			Audit:           true,
		})
		rep := consensus.Check(inputs, out)
		res.ViolationInKD = !rep.Agreement
		if out.Decided[kd.L1[0]] {
			res.L1Decision = out.Decision[kd.L1[0]]
		}
		if out.Decided[kd.L2[0]] {
			res.L2Decision = out.Decision[kd.L2[0]]
		}
	}

	// Control 2: gatherall knows n, so the silenced hub merely delays
	// it; once the gate lifts, everyone completes the census and agrees.
	{
		out := sim.Run(sim.Config{
			Graph:           kd.G,
			Inputs:          inputs,
			Factory:         gatherall.NewFactory(kd.G.N()),
			Scheduler:       gate,
			StopWhenDecided: true,
			Audit:           true,
		})
		res.ControlWithNOK = consensus.Check(inputs, out).OK()
	}

	return res, nil
}
