package lowerbound

import (
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/core/wpaxos"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

func TestAnonImpossibility(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{6, 6}, {8, 40}} {
		res, err := RunAnonImpossibility(tc.d, tc.n)
		if err != nil {
			t.Fatalf("D=%d n=%d: %v", tc.d, tc.n, err)
		}
		if !res.ControlOK {
			t.Errorf("D=%d n=%d: anonymous algorithm failed on network B (control)", tc.d, tc.n)
		}
		if !res.ViolationInA {
			t.Errorf("D=%d n=%d: no agreement violation on network A", tc.d, tc.n)
		}
		if res.IDReads != 0 {
			t.Errorf("D=%d n=%d: algorithm read ids %d times; construction requires anonymity", tc.d, tc.n, res.IDReads)
		}
		if res.Gadget0Decision != 0 || res.Gadget1Decision != 1 {
			t.Errorf("D=%d n=%d: gadget decisions %d/%d, want 0/1", tc.d, tc.n, res.Gadget0Decision, res.Gadget1Decision)
		}
	}
}

func TestSizeImpossibility(t *testing.T) {
	for _, d := range []int{2, 4, 6} {
		res, err := RunSizeImpossibility(d)
		if err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		if !res.ControlLineOK {
			t.Errorf("D=%d: n-oblivious algorithm failed on the standalone line (control)", d)
		}
		if !res.ViolationInKD {
			t.Errorf("D=%d: no split-brain on K_D", d)
		}
		if res.L1Decision != 0 || res.L2Decision != 1 {
			t.Errorf("D=%d: line decisions %d/%d, want 0/1", d, res.L1Decision, res.L2Decision)
		}
		if !res.ControlWithNOK {
			t.Errorf("D=%d: gatherall (knows n) failed on K_D (control)", d)
		}
	}
}

func TestPartitionHarness(t *testing.T) {
	for _, tc := range []struct {
		d    int
		fack int64
	}{{4, 1}, {8, 3}, {16, 5}} {
		res, err := RunPartition(tc.d, tc.fack)
		if err != nil {
			t.Fatalf("D=%d: %v", tc.d, err)
		}
		if !res.HastyViolated {
			t.Errorf("D=%d Fack=%d: hasty algorithm got away with deciding at %d (bound %d)", tc.d, tc.fack, res.HastyDecideTime, res.Bound)
		}
		if res.HastyDecideTime >= res.Bound {
			t.Errorf("D=%d Fack=%d: hasty decided at %d, not before the bound %d", tc.d, tc.fack, res.HastyDecideTime, res.Bound)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	if _, err := RunPartition(1, 1); err == nil {
		t.Error("D=1 accepted")
	}
	if _, err := RunPartition(4, 0); err == nil {
		t.Error("Fack=0 accepted")
	}
}

// TestCorrectAlgorithmsRespectTheBound closes the E4 loop: wPAXOS never
// decides before floor(D/2)*Fack under the maximum-delay scheduler (it
// cannot, by Theorem 3.10 — this verifies the implementation is not
// accidentally "hasty").
func TestCorrectAlgorithmsRespectTheBound(t *testing.T) {
	const fack = 3
	for _, d := range []int{4, 8, 12} {
		g := graph.Line(d + 1)
		inputs := make([]amac.Value, d+1)
		for i := range inputs {
			inputs[i] = amac.Value(i % 2)
		}
		res := sim.Run(sim.Config{
			Graph:           g,
			Inputs:          inputs,
			Factory:         wpaxos.NewFactory(wpaxos.Config{N: g.N()}),
			Scheduler:       sim.MaxDelay{F: fack},
			StopWhenDecided: true,
		})
		rep := consensus.Check(inputs, res)
		if !rep.OK() {
			t.Fatalf("D=%d: %v", d, rep.Errors)
		}
		bound := int64(d/2) * fack
		// The earliest decision across nodes must respect the bound.
		earliest := res.MaxDecideTime
		for i, dec := range res.Decided {
			if dec && res.DecideTime[i] < earliest {
				earliest = res.DecideTime[i]
			}
		}
		if earliest < bound {
			t.Fatalf("D=%d: earliest decision %d beats the floor(D/2)*Fack=%d bound", d, earliest, bound)
		}
	}
}
