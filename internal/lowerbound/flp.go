// Package lowerbound turns the paper's impossibility proofs into
// executable machinery:
//
//   - an exhaustive explorer over the *valid step* schedules of Section 3.1
//     (the restricted scheduler class behind the FLP generalization of
//     Theorem 3.2), which classifies configurations by valency and finds
//     crash-induced non-termination witnesses;
//   - drivers for the Figure 1 (anonymous, Theorem 3.3) and Figure 2
//     (unknown n, Theorem 3.9) indistinguishability constructions, which
//     run a concrete algorithm of the forbidden class into an agreement
//     violation while control runs succeed;
//   - the Theorem 3.10 partition harness, including a deliberately hasty
//     algorithm that decides before floor(D/2)*Fack and pays for it.
package lowerbound

import (
	"fmt"
	"strings"

	"github.com/absmac/absmac/internal/amac"
)

// Step is one valid step in the Section 3.1 sense, applied to the clique
// execution model in which every node is always sending:
//
//   - a receive step of node u delivers u's current message to the
//     smallest-index non-crashed node that has not yet received it;
//   - an ack step of u (valid once every non-crashed node received u's
//     current message) completes u's broadcast and starts its next one;
//   - a crash step halts u forever (counted against the crash budget).
//
// Which of receive/ack applies to u is determined by the configuration, so
// a step is fully described by the acted-on node and the crash flag.
type Step struct {
	Node  int
	Crash bool
}

func (s Step) String() string {
	if s.Crash {
		return fmt.Sprintf("crash(%d)", s.Node)
	}
	return fmt.Sprintf("step(%d)", s.Node)
}

// Valency classifies the decisions reachable from a configuration via
// valid-step extensions within the explorer's depth budget.
//
// A subtlety inherited from FLP: valid-step schedules include unfair ones
// that starve a node forever, and those are equivalent to crashing it — an
// algorithm is not required to decide under them. The explorer therefore
// does not treat mere absence of decision along a schedule as a
// termination violation. The certificate it reports via Dead is stronger
// and fairness-proof: a reachable configuration in which every non-crashed
// node is quiescent (sending noops, with no buffered broadcast) and nobody
// has decided. From such a configuration no handler ever runs again, so no
// extension — however fair — can decide.
type Valency struct {
	// Reach0 and Reach1 report that some extension decides 0 / 1.
	Reach0, Reach1 bool
	// Dead reports that a quiescent undecided configuration is
	// reachable: a true termination violation.
	Dead bool
	// Truncated reports that the depth budget cut some branch, so the
	// classification may be incomplete.
	Truncated bool
}

// Bivalent reports whether both decisions are reachable.
func (v Valency) Bivalent() bool { return v.Reach0 && v.Reach1 }

// Univalent reports whether exactly one decision is reachable.
func (v Valency) Univalent() bool { return v.Reach0 != v.Reach1 }

func (v Valency) String() string {
	switch {
	case v.Bivalent():
		return "bivalent"
	case v.Reach0:
		return "0-valent"
	case v.Reach1:
		return "1-valent"
	case v.Dead:
		return "dead"
	default:
		return "undecided"
	}
}

// Explorer exhaustively explores valid-step schedules of an algorithm on a
// single-hop network, memoizing configurations by the per-node local
// histories that determine them. It supports "ack-driven" algorithms that
// issue broadcasts from Start and OnAck (the proofs' always-sending normal
// form); a broadcast issued from OnReceive is buffered and becomes the
// node's next message at its ack, and a second buffered broadcast is
// discarded, matching the model's in-flight discard rule.
type Explorer struct {
	// N is the clique size (>= 2).
	N int
	// Factory builds the algorithm under test.
	Factory amac.Factory
	// Inputs are the initial values, length N.
	Inputs []amac.Value
	// MaxCrashes bounds the number of crash steps the adversary may use
	// (Theorem 3.2 needs just 1).
	MaxCrashes int
	// MaxDepth bounds schedule length; 0 means DefaultMaxDepth.
	MaxDepth int

	memo    map[string]Valency
	onPath  map[string]bool
	visited int
}

// DefaultMaxDepth bounds exploration when Explorer.MaxDepth is zero.
const DefaultMaxDepth = 64

// Visited returns the number of distinct configurations explored since the
// memo was last reset.
func (e *Explorer) Visited() int { return e.visited }

func (e *Explorer) validate() {
	if len(e.Inputs) != e.N {
		panic(fmt.Sprintf("lowerbound: %d inputs for %d nodes", len(e.Inputs), e.N))
	}
	if e.N < 2 {
		panic("lowerbound: explorer needs at least 2 nodes")
	}
}

func (e *Explorer) reset() {
	e.memo = make(map[string]Valency)
	e.onPath = make(map[string]bool)
	e.visited = 0
}

// Valency classifies the configuration reached from the initial one by the
// given step prefix (nil means the initial configuration itself).
func (e *Explorer) Valency(prefix []Step) Valency {
	e.validate()
	e.reset()
	return e.explore(prefix)
}

func (e *Explorer) maxDepth() int {
	if e.MaxDepth <= 0 {
		return DefaultMaxDepth
	}
	return e.MaxDepth
}

func (e *Explorer) explore(prefix []Step) Valency {
	cfg := e.replay(prefix)
	if cfg.decidedValue != nil {
		if *cfg.decidedValue == 0 {
			return Valency{Reach0: true}
		}
		return Valency{Reach1: true}
	}
	if cfg.quiescent() {
		// Frozen forever: no handler will ever run again.
		return Valency{Dead: true}
	}
	fp := cfg.fingerprint()
	if v, ok := e.memo[fp]; ok {
		return v
	}
	if e.onPath[fp] {
		// A revisited non-quiescent configuration: the adversary can
		// loop here, but only by starving someone (otherwise local
		// histories would have grown); starvation is crash-equivalent,
		// so the loop contributes nothing to the classification.
		return Valency{}
	}
	if len(prefix) >= e.maxDepth() {
		return Valency{Truncated: true}
	}
	e.onPath[fp] = true
	e.visited++

	var v Valency
	for _, s := range cfg.validSteps(e.MaxCrashes) {
		sub := e.explore(append(append([]Step(nil), prefix...), s))
		v.Reach0 = v.Reach0 || sub.Reach0
		v.Reach1 = v.Reach1 || sub.Reach1
		v.Dead = v.Dead || sub.Dead
		v.Truncated = v.Truncated || sub.Truncated
	}

	delete(e.onPath, fp)
	e.memo[fp] = v
	return v
}

// FindBivalentInitial searches all 2^n input assignments for one whose
// initial configuration is bivalent, mirroring FLP's Lemma 2. It returns
// the inputs and true when found.
func FindBivalentInitial(n int, factory amac.Factory, maxCrashes, maxDepth int) ([]amac.Value, bool) {
	for mask := 0; mask < 1<<n; mask++ {
		inputs := make([]amac.Value, n)
		for i := range inputs {
			if mask&(1<<i) != 0 {
				inputs[i] = 1
			}
		}
		e := &Explorer{N: n, Factory: factory, Inputs: inputs, MaxCrashes: maxCrashes, MaxDepth: maxDepth}
		if e.Valency(nil).Bivalent() {
			return inputs, true
		}
	}
	return nil, false
}

// FindStallingSchedule searches for a schedule (with at most maxCrashes
// crash steps, at least one of them used) that reaches a quiescent
// undecided configuration among the non-crashed nodes — a concrete witness
// that the algorithm loses termination under crash failures (the
// executable face of Theorem 3.2). It returns the schedule and true when
// found.
func FindStallingSchedule(n int, factory amac.Factory, inputs []amac.Value, maxCrashes, maxDepth int) ([]Step, bool) {
	e := &Explorer{N: n, Factory: factory, Inputs: inputs, MaxCrashes: maxCrashes, MaxDepth: maxDepth}
	e.validate()
	seen := make(map[string]bool)
	var dfs func(prefix []Step) ([]Step, bool)
	dfs = func(prefix []Step) ([]Step, bool) {
		cfg := e.replay(prefix)
		if cfg.decidedValue != nil {
			return nil, false
		}
		if cfg.quiescent() && cfg.liveCount() > 0 {
			return prefix, true
		}
		fp := cfg.fingerprint()
		if seen[fp] {
			return nil, false
		}
		seen[fp] = true
		if len(prefix) >= e.maxDepth() {
			return nil, false
		}
		for _, s := range cfg.validSteps(e.MaxCrashes) {
			if found, ok := dfs(append(append([]Step(nil), prefix...), s)); ok {
				return found, true
			}
		}
		return nil, false
	}
	return dfs(nil)
}

// ---- The valid-step execution engine ----

// flpConfig is a configuration reached by replaying a schedule.
type flpConfig struct {
	n            int
	algs         []amac.Algorithm
	cur          []amac.Message // current outgoing message; nil = noop
	pending      []amac.Message // broadcast buffered for the next ack
	delivered    [][]bool
	crashed      []bool
	crashesUsed  int
	hist         []strings.Builder
	decidedValue *amac.Value
}

// flpAPI is the amac.API handed to algorithms under exploration.
type flpAPI struct {
	cfg  *flpConfig
	node int
}

func (a flpAPI) ID() amac.NodeID { return amac.NodeID(a.node + 1) }

// Now returns 0: the valid-step model has no global clock, and the
// algorithms explored here (single-hop) do not use timestamps.
func (a flpAPI) Now() int64 { return 0 }

func (a flpAPI) Broadcast(m amac.Message) bool {
	if a.cfg.pending[a.node] != nil {
		return false
	}
	a.cfg.pending[a.node] = m
	return true
}

func (a flpAPI) Decide(v amac.Value) {
	if a.cfg.decidedValue == nil {
		val := v
		a.cfg.decidedValue = &val
	}
}

// replay executes a schedule from the initial configuration. Invalid steps
// panic: the explorer only generates valid ones.
func (e *Explorer) replay(schedule []Step) *flpConfig {
	cfg := &flpConfig{
		n:         e.N,
		algs:      make([]amac.Algorithm, e.N),
		cur:       make([]amac.Message, e.N),
		pending:   make([]amac.Message, e.N),
		delivered: make([][]bool, e.N),
		crashed:   make([]bool, e.N),
		hist:      make([]strings.Builder, e.N),
	}
	for i := 0; i < e.N; i++ {
		cfg.delivered[i] = make([]bool, e.N)
		cfg.algs[i] = e.Factory(amac.NodeConfig{ID: amac.NodeID(i + 1), Input: e.Inputs[i]})
		cfg.algs[i].Start(flpAPI{cfg: cfg, node: i})
		cfg.cur[i], cfg.pending[i] = cfg.pending[i], nil
	}
	for _, s := range schedule {
		cfg.apply(s)
	}
	return cfg
}

// quiescent reports whether every non-crashed node is sending noops with
// nothing buffered: no handler will ever run again, so the configuration
// is frozen under every extension.
func (c *flpConfig) quiescent() bool {
	for u := 0; u < c.n; u++ {
		if c.crashed[u] {
			continue
		}
		if c.cur[u] != nil || c.pending[u] != nil {
			return false
		}
	}
	return true
}

// liveCount returns the number of non-crashed nodes.
func (c *flpConfig) liveCount() int {
	live := 0
	for _, crashed := range c.crashed {
		if !crashed {
			live++
		}
	}
	return live
}

// nextReceiver returns the smallest-index non-crashed node (other than u)
// that has not received u's current message, or -1 when delivery is
// complete.
func (c *flpConfig) nextReceiver(u int) int {
	for v := 0; v < c.n; v++ {
		if v == u || c.crashed[v] || c.delivered[u][v] {
			continue
		}
		return v
	}
	return -1
}

// validSteps enumerates the valid steps from this configuration: one
// receive-or-ack step per non-crashed node, plus crash steps while the
// budget lasts.
func (c *flpConfig) validSteps(maxCrashes int) []Step {
	var steps []Step
	for u := 0; u < c.n; u++ {
		if c.crashed[u] {
			continue
		}
		steps = append(steps, Step{Node: u})
		if c.crashesUsed < maxCrashes {
			steps = append(steps, Step{Node: u, Crash: true})
		}
	}
	return steps
}

func (c *flpConfig) apply(s Step) {
	u := s.Node
	if c.crashed[u] {
		panic(fmt.Sprintf("lowerbound: step on crashed node %d", u))
	}
	if s.Crash {
		c.crashed[u] = true
		c.crashesUsed++
		return
	}
	if v := c.nextReceiver(u); v >= 0 {
		// Receive step: deliver u's current message to v. Noop
		// messages advance delivery bookkeeping without touching the
		// receiving algorithm.
		c.delivered[u][v] = true
		if m := c.cur[u]; m != nil {
			fmt.Fprintf(&c.hist[v], "r%d:%#v;", u, m)
			c.algs[v].OnReceive(m)
		}
		return
	}
	// Ack step: every non-crashed node has u's current message; complete
	// the broadcast and start the next one (the buffered broadcast if
	// the algorithm issued one, else a noop).
	prev := c.cur[u]
	for v := range c.delivered[u] {
		c.delivered[u][v] = false
	}
	if prev != nil {
		fmt.Fprintf(&c.hist[u], "a;")
		c.algs[u].OnAck(prev)
	}
	// Noop acks leave the algorithm untouched and are deliberately not
	// recorded: a quiescent configuration cycling through noop rounds
	// keeps a stable fingerprint, which is what lets the explorer detect
	// the cycle and certify non-termination.
	c.cur[u], c.pending[u] = c.pending[u], nil
}

// fingerprint canonically encodes the configuration: per-node local
// histories (which determine the deterministic algorithm states), crash
// flags, and delivery progress.
func (c *flpConfig) fingerprint() string {
	var b strings.Builder
	for i := 0; i < c.n; i++ {
		fmt.Fprintf(&b, "|%d:", i)
		if c.crashed[i] {
			b.WriteString("X")
		}
		b.WriteString(c.hist[i].String())
		b.WriteString("/")
		for v := 0; v < c.n; v++ {
			if c.delivered[i][v] {
				fmt.Fprintf(&b, "%d,", v)
			}
		}
	}
	return b.String()
}

// BivalentExtension searches, breadth-first, for a finite extension of
// prefix whose last step is a valid step of node u and after which the
// configuration is still bivalent — the object Lemma 3.1 proves must exist
// for any algorithm that solves consensus with one crash failure. For a
// real, terminating algorithm (which, by Theorem 3.2, cannot be 1-crash
// tolerant) the search must eventually fail at some bivalent
// configuration: that failure point is precisely where the adversary's
// crash bites. It returns the full schedule (prefix + extension) and true
// when one is found within the depth budget.
func (e *Explorer) BivalentExtension(prefix []Step, u int) ([]Step, bool) {
	e.validate()
	if u < 0 || u >= e.N {
		panic(fmt.Sprintf("lowerbound: node %d out of range", u))
	}
	type item struct{ schedule []Step }
	queue := []item{{schedule: append([]Step(nil), prefix...)}}
	seen := map[string]bool{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		cfg := e.replay(cur.schedule)
		if cfg.decidedValue != nil {
			continue
		}
		fp := cfg.fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		if len(cur.schedule) >= len(prefix)+e.maxDepth() {
			continue
		}
		for _, s := range cfg.validSteps(0) { // Lemma 3.1 is crash-free
			next := append(append([]Step(nil), cur.schedule...), s)
			if s.Node == u {
				if e.Valency(next).Bivalent() {
					return next, true
				}
			}
			queue = append(queue, item{schedule: next})
		}
	}
	return nil, false
}
