package lowerbound

import (
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/core/twophase"
)

// TestBivalentInitialExists mirrors FLP Lemma 2 for the two-phase
// algorithm: among the 2^n initial configurations there is a bivalent one
// (mixed inputs under scheduling freedom alone, no crashes needed).
func TestBivalentInitialExists(t *testing.T) {
	inputs, ok := FindBivalentInitial(2, twophase.Factory, 0, 40)
	if !ok {
		t.Fatal("no bivalent initial configuration found for two-phase on n=2")
	}
	if inputs[0] == inputs[1] {
		t.Fatalf("bivalent inputs %v should be mixed", inputs)
	}
}

// TestUnanimousConfigsUnivalent checks the complementary fact: unanimous
// initial configurations are univalent for their common value (validity
// forces it).
func TestUnanimousConfigsUnivalent(t *testing.T) {
	for _, v := range []amac.Value{0, 1} {
		e := &Explorer{
			N:       2,
			Factory: twophase.Factory,
			Inputs:  []amac.Value{v, v},
		}
		val := e.Valency(nil)
		if !val.Univalent() {
			t.Fatalf("unanimous %d: valency %v, want univalent", v, val)
		}
		if (v == 0) != val.Reach0 {
			t.Fatalf("unanimous %d: valency %v", v, val)
		}
		if val.Dead {
			t.Fatalf("unanimous %d without crashes: dead configuration reachable", v)
		}
	}
}

// TestNoCrashAlwaysTerminates verifies that without crash steps every
// valid-step schedule of two-phase reaches a decision (Theorem 4.1's
// termination, checked exhaustively on small cliques). The n=3 state space
// dominates the whole test suite's runtime (~24s), so short mode stops at
// n=2 — still an exhaustive proof at that size; CI's long-mode job keeps
// the full exploration.
func TestNoCrashAlwaysTerminates(t *testing.T) {
	maxN, depth := 3, 60
	if testing.Short() {
		maxN, depth = 2, 40
	}
	for n := 2; n <= maxN; n++ {
		for mask := 0; mask < 1<<n; mask++ {
			inputs := make([]amac.Value, n)
			for i := range inputs {
				if mask&(1<<i) != 0 {
					inputs[i] = 1
				}
			}
			e := &Explorer{N: n, Factory: twophase.Factory, Inputs: inputs, MaxDepth: depth}
			val := e.Valency(nil)
			if val.Dead {
				t.Fatalf("n=%d mask=%b: dead configuration reachable without crashes", n, mask)
			}
			if val.Truncated {
				t.Fatalf("n=%d mask=%b: exploration truncated; raise MaxDepth", n, mask)
			}
			if !val.Reach0 && !val.Reach1 {
				t.Fatalf("n=%d mask=%b: no decision reachable", n, mask)
			}
		}
	}
}

// TestCrashStallsTwoPhase is the executable face of Theorem 3.2: with a
// single crash the adversary can drive two-phase into a configuration from
// which no one ever decides.
func TestCrashStallsTwoPhase(t *testing.T) {
	schedule, ok := FindStallingSchedule(2, twophase.Factory, []amac.Value{0, 1}, 1, 30)
	if !ok {
		t.Fatal("no stalling schedule found with one crash (Theorem 3.2 witness missing)")
	}
	crashes := 0
	for _, s := range schedule {
		if s.Crash {
			crashes++
		}
	}
	if crashes != 1 {
		t.Fatalf("stalling schedule %v uses %d crashes, want exactly 1", schedule, crashes)
	}
}

// TestValencyStrings exercises the classification helpers.
func TestValencyStrings(t *testing.T) {
	cases := []struct {
		v    Valency
		want string
	}{
		{Valency{Reach0: true, Reach1: true}, "bivalent"},
		{Valency{Reach0: true}, "0-valent"},
		{Valency{Reach1: true}, "1-valent"},
		{Valency{Dead: true}, "dead"},
		{Valency{}, "undecided"},
	}
	for _, tc := range cases {
		if tc.v.String() != tc.want {
			t.Fatalf("%+v -> %q, want %q", tc.v, tc.v.String(), tc.want)
		}
	}
	if !(Valency{Reach0: true}).Univalent() || (Valency{Reach0: true, Reach1: true}).Univalent() {
		t.Fatal("Univalent misbehaves")
	}
}

func TestStepString(t *testing.T) {
	if (Step{Node: 2}).String() != "step(2)" || (Step{Node: 1, Crash: true}).String() != "crash(1)" {
		t.Fatal("Step strings")
	}
}

func TestExplorerValidation(t *testing.T) {
	for _, e := range []*Explorer{
		{N: 1, Factory: twophase.Factory, Inputs: []amac.Value{0}},
		{N: 2, Factory: twophase.Factory, Inputs: []amac.Value{0}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			e.Valency(nil)
		}()
	}
}

func TestVisitedCounts(t *testing.T) {
	e := &Explorer{N: 2, Factory: twophase.Factory, Inputs: []amac.Value{0, 1}}
	e.Valency(nil)
	if e.Visited() == 0 {
		t.Fatal("explorer visited no configurations")
	}
}

// TestLemma31Boundary probes Lemma 3.1 against the two-phase algorithm.
// The lemma says that for an algorithm solving consensus with one crash
// failure, bivalence can be preserved forever (extension by extension,
// round-robin over nodes) — the engine of the Theorem 3.2 contradiction.
// Two-phase terminates, so by Theorem 3.2 it is NOT 1-crash tolerant, and
// the lemma's conclusion must fail for it somewhere: there must be a
// reachable bivalent configuration and a node u such that every valid
// u-ending extension kills bivalence. This test locates that boundary.
func TestLemma31Boundary(t *testing.T) {
	e := &Explorer{N: 2, Factory: twophase.Factory, Inputs: []amac.Value{0, 1}, MaxDepth: 30}
	if !e.Valency(nil).Bivalent() {
		t.Fatal("initial configuration not bivalent; premise broken")
	}
	// From the initial bivalent configuration the lemma's object exists
	// for node 0: delivering node 0's phase-1 value keeps both outcomes
	// reachable (node 0 can still ack before hearing the 1).
	schedule, ok := e.BivalentExtension(nil, 0)
	if !ok {
		t.Fatal("no bivalence-preserving extension ending in a step of node 0")
	}
	if last := schedule[len(schedule)-1]; last.Node != 0 || last.Crash {
		t.Fatalf("extension ends with %v, want a valid step of node 0", last)
	}
	// But for node 1 it never exists: any step of node 1 either delivers
	// its phase-1 value (after which no decided(0) status is reachable
	// anywhere) or is an ack implying that delivery already happened. The
	// search failing here is the lemma's conclusion breaking — as it must
	// for a terminating algorithm, certifying via Theorem 3.2's logic
	// that two-phase cannot tolerate a crash.
	if _, ok := e.BivalentExtension(nil, 1); ok {
		t.Fatal("bivalence-preserving node-1 extension found; expected the lemma to fail for a terminating algorithm")
	}
	if !e.Valency([]Step{{Node: 0}}).Bivalent() {
		t.Fatal("the post-step(0) configuration should still be bivalent")
	}
}

func TestBivalentExtensionValidation(t *testing.T) {
	e := &Explorer{N: 2, Factory: twophase.Factory, Inputs: []amac.Value{0, 1}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range node")
		}
	}()
	e.BivalentExtension(nil, 5)
}
