package harness

import (
	"sort"
	"sync"
	"testing"

	"github.com/absmac/absmac/internal/sim"
)

// This file tests the sweep features the campaign layer is built on:
// flagged-run streaming, schedule-coverage fingerprints and coverage
// saturation (SweepOptions), plus the identity between the streaming
// fingerprinter and the fingerprint of a recorded schedule.

// TestFingerprintMatchesRecording pins the two routes to the coverage
// digest against each other: a live sim.Fingerprinter watching an
// execution must produce exactly Schedule.Fingerprint() of that
// execution's recording — including crash times and unreliable-edge coin
// outcomes.
func TestFingerprintMatchesRecording(t *testing.T) {
	for _, sc := range []Scenario{
		{Algo: "floodpaxos", Topo: Topo{Kind: "ring", N: 7}, Sched: "random", Fack: 4, Seed: 3},
		{Algo: "floodpaxos", Topo: Topo{Kind: "grid", Rows: 3, Cols: 3}, Sched: "random", Fack: 4, Seed: 5,
			Crashes: "one@0", Overlay: "extra:4@0.6"},
		{Algo: "twophase", Topo: Topo{Kind: "clique", N: 6}, Sched: "sync", Fack: 3, Seed: 1},
	} {
		_, sched, err := sc.RunRecorded()
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := sc.Config()
		if err != nil {
			t.Fatal(err)
		}
		fp := sim.NewFingerprinter(cfg.Scheduler, cfg.Crashes)
		cfg.Scheduler = fp
		sim.Run(cfg)
		if got, want := fp.Sum(), sched.Fingerprint(); got != want {
			t.Errorf("%s on %s: live fingerprint %x != recorded schedule fingerprint %x", sc.Algo, sc.Topo, got, want)
		}
	}
}

// TestFingerprintDistinguishesSeeds: different seeds of a randomized cell
// must fingerprint differently, and re-running a seed must reproduce its
// fingerprint (the digest is a pure function of the execution).
func TestFingerprintDistinguishesSeeds(t *testing.T) {
	base := Scenario{Algo: "floodpaxos", Topo: Topo{Kind: "ring", N: 7}, Sched: "random", Fack: 4}
	seen := map[uint64]int64{}
	for seed := int64(1); seed <= 4; seed++ {
		sc := base
		sc.Seed = seed
		_, s1, err := sc.RunRecorded()
		if err != nil {
			t.Fatal(err)
		}
		_, s2, err := sc.RunRecorded()
		if err != nil {
			t.Fatal(err)
		}
		if s1.Fingerprint() != s2.Fingerprint() {
			t.Fatalf("seed %d fingerprints unstable", seed)
		}
		if prev, dup := seen[s1.Fingerprint()]; dup {
			t.Fatalf("seeds %d and %d share a fingerprint", prev, seed)
		}
		seen[s1.Fingerprint()] = seed
	}
}

// stallGrid is a two-cell grid: the two-phase coordinator stall cell
// (violating — a dead coordinator strands every witness, the paper's
// Theorem 3.2 counterexample) next to the wPAXOS contrast cell (healthy
// for all seeds since the Ω failure-detector redesign).
func stallGrid(seeds int) Grid {
	g := Grid{
		Algos:     []string{"twophase", "wpaxos"},
		Topos:     []Topo{{Kind: "ring", N: 9}},
		Scheds:    []string{"random"},
		Facks:     []int64{4},
		Crashes:   []string{"coordinator"},
		Overlays:  []string{"chords"},
		MaxEvents: 200_000,
	}
	for s := int64(1); s <= int64(seeds); s++ {
		g.Seeds = append(g.Seeds, s)
	}
	return g
}

// TestSweepStreamsFlaggedRuns: every violating run must surface through
// OnFlag exactly once, with a classification consistent with the cell
// aggregates, identically at every pool width.
func TestSweepStreamsFlaggedRuns(t *testing.T) {
	work, err := stallGrid(8).Cells()
	if err != nil {
		t.Fatal(err)
	}
	var ref []FlaggedRun
	for _, workers := range []int{1, 2, 8} {
		var (
			mu      sync.Mutex
			flagged []FlaggedRun
		)
		cells, err := SweepCellsOpts(work, SweepOptions{
			Workers:     workers,
			Fingerprint: true,
			OnFlag: func(f FlaggedRun) {
				mu.Lock()
				flagged = append(flagged, f)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(flagged, func(i, j int) bool {
			if flagged[i].Cell != flagged[j].Cell {
				return flagged[i].Cell < flagged[j].Cell
			}
			return flagged[i].Run < flagged[j].Run
		})
		if len(flagged) == 0 {
			t.Fatal("the two-phase coordinator stall cell produced no flagged runs")
		}
		// Flag stream must agree with the cell aggregates.
		badRuns := 0
		for i := range cells {
			badRuns += cells[i].Runs - cells[i].Correct
		}
		if len(flagged) != badRuns {
			t.Fatalf("%d flagged runs, cells count %d incorrect runs", len(flagged), badRuns)
		}
		for _, f := range flagged {
			if f.Cell != 0 {
				t.Fatalf("flagged run in cell %d; only cell 0 (twophase) may violate", f.Cell)
			}
			if f.Violation == nil || f.Violation.Kind == "" {
				t.Fatalf("flagged run carries no violation: %+v", f)
			}
			if f.Fingerprint == 0 {
				t.Fatalf("fingerprinting on, but flagged run has zero fingerprint")
			}
			if f.Scenario.Algo != "twophase" || f.Scenario.Seed == 0 {
				t.Fatalf("flagged scenario not filled in: %+v", f.Scenario)
			}
		}
		if ref == nil {
			ref = flagged
			continue
		}
		if len(ref) != len(flagged) {
			t.Fatalf("workers=%d: %d flagged runs, want %d", workers, len(flagged), len(ref))
		}
		for i := range ref {
			a, b := ref[i], flagged[i]
			if a.Cell != b.Cell || a.Run != b.Run || a.Fingerprint != b.Fingerprint ||
				a.Violation.Kind != b.Violation.Kind || a.Scenario.Seed != b.Scenario.Seed {
				t.Fatalf("workers=%d: flagged run %d differs: %+v vs %+v", workers, i, a, b)
			}
		}
	}
}

// TestSweepCoverageAndSaturation: a deterministic cell (sync scheduler, no
// randomness anywhere) collapses to one distinct schedule, so with
// SaturateAfter=2 the cell must stop after 3 runs; a random cell keeps
// producing fresh fingerprints and runs its full seed axis.
func TestSweepCoverageAndSaturation(t *testing.T) {
	grid := Grid{
		Algos:  []string{"floodpaxos"},
		Topos:  []Topo{{Kind: "ring", N: 5}},
		Scheds: []string{"sync", "random"},
		Facks:  []int64{3},
		Seeds:  []int64{1, 2, 3, 4, 5, 6, 7, 8},
	}
	work, err := grid.Cells()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := SweepCellsOpts(work, SweepOptions{SaturateAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	sync, random := cells[0], cells[1]
	if sync.DistinctSchedules != 1 {
		t.Fatalf("sync cell exercised %d distinct schedules, want 1", sync.DistinctSchedules)
	}
	if sync.Runs != 3 { // 1 fresh + 2 stale = stop
		t.Fatalf("sync cell ran %d seeds, want saturation stop after 3", sync.Runs)
	}
	if random.Runs != 8 || random.DistinctSchedules != 8 {
		t.Fatalf("random cell ran %d seeds with %d distinct schedules, want 8/8", random.Runs, random.DistinctSchedules)
	}

	// A seed-sensitive algorithm (benor draws its own coins from the
	// seed) must never saturate on schedule-skeleton collisions: the
	// fingerprint is salted with the seed exactly when the execution
	// depends on it beyond the scheduler, so every seed counts as a
	// distinct execution and the full axis runs.
	bwork, err := Grid{
		Algos:  []string{"benor"},
		Topos:  []Topo{{Kind: "clique", N: 4}},
		Scheds: []string{"sync"},
		Facks:  []int64{4},
		Seeds:  grid.Seeds,
	}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	bcells, err := SweepCellsOpts(bwork, SweepOptions{SaturateAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bcells[0].Runs != 8 || bcells[0].DistinctSchedules != 8 {
		t.Fatalf("benor cell ran %d seeds with %d distinct fingerprints, want 8/8 (seed salt missing?)",
			bcells[0].Runs, bcells[0].DistinctSchedules)
	}

	// Without fingerprinting the coverage field stays zero (and the JSON
	// omits it — the golden sweep output pins that byte-for-byte).
	plain, err := SweepCells(work, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].DistinctSchedules != 0 {
			t.Fatalf("fingerprinting off but cell %d reports coverage %d", i, plain[i].DistinctSchedules)
		}
	}
}
