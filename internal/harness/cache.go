package harness

import (
	"sync"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/graph"
)

// This file holds the sweep caches: memoized topologies (with their
// diameters), overlay dual graphs and input assignments, shared by every
// worker of one sweep. A sweep grid's cross product reuses the same
// (topo, seed) pair across all of its algo/sched/fack/crash/overlay
// combinations, so building the graph and running the all-pairs BFS for
// the diameter once per key — instead of once per scenario — removes the
// dominant per-run setup cost.
//
// Keys are normalized to maximize sharing: a topology family that ignores
// its seed (every family except random) caches under seed 0, so a whole
// seed axis shares one graph; an overlay family that is deterministic
// given its base graph (none, chords) does the same when its base is
// seed-independent. The normalization is exactly the seed-dependence
// documented on Topo.Build and the overlay registry, so a cached value is
// identical to a freshly built one — cache_test.go pins this.
//
// Cached graphs and input slices are shared across concurrently running
// workers and must be treated as immutable, which is already the contract
// of graph.Graph.Neighbors and sim.Config.Inputs.

// topoKey keys the topology cache. Topo is a comparable value, so the key
// is a plain struct — no string rendering on the lookup path.
type topoKey struct {
	topo Topo
	seed int64
}

type topoEntry struct {
	once     sync.Once
	g        *graph.Graph
	diameter int
	err      error
}

type overlayKey struct {
	topo     Topo
	topoSeed int64
	spec     string
	seed     int64
}

type overlayEntry struct {
	once     sync.Once
	g        *graph.Graph
	deliverP float64
	err      error
}

type inputKey struct {
	pattern string
	n       int
}

type inputEntry struct {
	once sync.Once
	vals []amac.Value
	err  error
}

// caches is one sweep's shared memoization state. The zero value is not
// usable; construct with newCaches. All methods are safe for concurrent
// use: entries are created under a mutex and built exactly once via their
// sync.Once, so concurrent workers asking for the same key share one
// build.
type caches struct {
	mu       sync.Mutex
	topos    map[topoKey]*topoEntry
	overlays map[overlayKey]*overlayEntry
	inputs   map[inputKey]*inputEntry
}

func newCaches() *caches {
	return &caches{
		topos:    map[topoKey]*topoEntry{},
		overlays: map[overlayKey]*overlayEntry{},
		inputs:   map[inputKey]*inputEntry{},
	}
}

// topo returns the built graph and its diameter, memoized per
// (topo, build-seed).
func (c *caches) topo(t Topo, seed int64) (*graph.Graph, int, error) {
	key := topoKey{t, t.buildSeed(seed)}
	c.mu.Lock()
	e, ok := c.topos[key]
	if !ok {
		e = &topoEntry{}
		c.topos[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.g, e.err = t.Build(seed)
		if e.err == nil {
			e.diameter = e.g.Diameter()
		}
	})
	return e.g, e.diameter, e.err
}

// overlayCacheSeed is the overlay cache-key seed: a family that is
// deterministic given its base graph (see overlaySeedDependent, declared
// beside the overlay registry) shares one entry across the seed axis when
// its base topology is seed-independent too; everything else keys on the
// full seed.
func overlayCacheSeed(spec string, t Topo, seed int64) int64 {
	if !overlaySeedDependent(overlayFamily(spec)) && t.buildSeed(seed) == 0 {
		return 0
	}
	return seed
}

// overlay returns the overlay dual graph (nil for "none") and the
// unreliable-edge delivery probability, memoized per
// (topo, topo-seed, spec, overlay-seed). The base graph must be the one
// the topo cache returned for (t, seed).
func (c *caches) overlay(spec string, t Topo, base *graph.Graph, seed int64) (*graph.Graph, float64, error) {
	key := overlayKey{t, t.buildSeed(seed), spec, overlayCacheSeed(spec, t, seed)}
	c.mu.Lock()
	e, ok := c.overlays[key]
	if !ok {
		e = &overlayEntry{}
		c.overlays[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.g, e.deliverP, e.err = NewOverlay(spec, base, seed)
	})
	return e.g, e.deliverP, e.err
}

// inputValues returns the named input assignment for n nodes, memoized per
// (pattern, n). The returned slice is shared: callers must not mutate it.
func (c *caches) inputValues(pattern string, n int) ([]amac.Value, error) {
	if pattern == "" {
		pattern = "alternating"
	}
	key := inputKey{pattern, n}
	c.mu.Lock()
	e, ok := c.inputs[key]
	if !ok {
		e = &inputEntry{}
		c.inputs[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.vals, e.err = NewInputs(pattern, n)
	})
	return e.vals, e.err
}
