package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

// This file holds the adversity registries: named crash-failure patterns
// and unreliable-link overlay families, mirroring the algorithm, topology,
// scheduler and input registries in harness.go. Together they let a
// Scenario name a full adversarial setup — the paper's mid-broadcast
// crashes (Theorem 3.2) and the dual-graph model variant of Kuhn, Lynch
// and Newport (Section 2) — instead of leaving sim.Config.Crashes and
// sim.Config.Unreliable reachable only from hand-rolled code.

// --- crash-pattern registry ---
//
// A crash pattern maps (n, fack, seed) to a concrete crash schedule. The
// spec grammar is name[@T] where the optional @T parameter is accepted
// only by patterns that take a time argument:
//
//	none           no crashes (the default; the empty spec parses as none)
//	one@T          the highest-index node crashes at time T
//	maxid@T        alias of one@T with the leader-death reading spelled
//	               out: the highest-index node carries the maximum id under
//	               the default identity assignment, so it is the node every
//	               max-id leader election converges on — crashing it at T
//	               kills the stable leader and exercises the Ω detector's
//	               demotion path
//	coordinator    node 0 — the lowest id, two-phase's coordinator —
//	               crashes at time Fack (after its first broadcast window)
//	midbroadcast   node 0 crashes at max(1, Fack/2): inside the first
//	               broadcast window, so some planned deliveries land and
//	               the rest (plus the ack) are lost — Theorem 3.2's
//	               mid-broadcast crash
//	minorityrand   a seeded random minority (floor((n-1)/2) nodes) crashes
//	               at seeded random times in [0, 4*Fack]
//
// Crash times are derived from the scenario's requested Fack axis value
// (schedulers with a structural bound may declare a different Fack; the
// patterns still land inside or near the first windows, which is what the
// experiments vary).

type crashCtor struct {
	takesArg bool
	mk       func(at int64, n int, fack, seed int64) []sim.Crash
}

var crashPatterns = map[string]crashCtor{
	"none": {mk: func(_ int64, _ int, _, _ int64) []sim.Crash { return nil }},
	"one": {takesArg: true, mk: func(at int64, n int, _, _ int64) []sim.Crash {
		return []sim.Crash{{Node: n - 1, At: at}}
	}},
	"maxid": {takesArg: true, mk: func(at int64, n int, _, _ int64) []sim.Crash {
		return []sim.Crash{{Node: n - 1, At: at}}
	}},
	"coordinator": {mk: func(_ int64, _ int, fack, _ int64) []sim.Crash {
		return []sim.Crash{{Node: 0, At: fack}}
	}},
	"midbroadcast": {mk: func(_ int64, _ int, fack, _ int64) []sim.Crash {
		at := fack / 2
		if at < 1 {
			at = 1
		}
		return []sim.Crash{{Node: 0, At: at}}
	}},
	"minorityrand": {mk: func(_ int64, n int, fack, seed int64) []sim.Crash {
		k := (n - 1) / 2
		if k == 0 {
			return nil
		}
		rng := rand.New(rand.NewSource(seed*2654435761 + 97))
		perm := rng.Perm(n)
		crashes := make([]sim.Crash, k)
		for i := range crashes {
			crashes[i] = sim.Crash{Node: perm[i], At: rng.Int63n(4*fack + 1)}
		}
		// Deterministic order by node for reproducible JSON/debugging.
		sort.Slice(crashes, func(i, j int) bool { return crashes[i].Node < crashes[j].Node })
		return crashes
	}},
}

// CrashPatterns returns the registered crash-pattern family names, sorted.
func CrashPatterns() []string { return sortedKeys(crashPatterns) }

// NewCrashes builds the named crash pattern for an n-node execution with
// the given requested Fack and seed. The empty spec means "none".
func NewCrashes(spec string, n int, fack, seed int64) ([]sim.Crash, error) {
	if spec == "" {
		spec = "none"
	}
	name, arg, hasArg := strings.Cut(spec, "@")
	ctor, ok := crashPatterns[name]
	if !ok {
		return nil, fmt.Errorf("harness: unknown crash pattern %q (have %v; grammar name[@T])", spec, CrashPatterns())
	}
	var at int64
	if hasArg {
		if !ctor.takesArg {
			return nil, fmt.Errorf("harness: crash pattern %q takes no @T argument (got %q)", name, spec)
		}
		v, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("harness: bad crash time in %q: want a non-negative integer", spec)
		}
		at = v
	} else if ctor.takesArg {
		return nil, fmt.Errorf("harness: crash pattern %q needs an @T argument (e.g. %q)", name, name+"@0")
	}
	if n < 1 {
		return nil, fmt.Errorf("harness: crash pattern %q on %d nodes", spec, n)
	}
	return ctor.mk(at, n, fack, seed), nil
}

// --- overlay-family registry ---
//
// An overlay family builds the unreliable-link graph of the dual-graph
// model variant from the base topology and the seed; overlays are
// edge-disjoint from the base by construction (and re-checked by
// sim.Config.Validate). The spec grammar is family[:param][@Q] where Q in
// [0,1] is the per-edge delivery probability the lossy scheduler wrapper
// uses for unreliable edges (default 0.5):
//
//	none           no overlay (the default; the empty spec parses as none)
//	randomextra:P  a seeded uniform sample of round(P * #non-edges) of the
//	               base's non-edges becomes unreliable — the overlay's
//	               density is a fixed P-fraction for every seed (only the
//	               edge choice varies), keeping sweep cells comparable
//	extra:K        exactly K seeded random non-edges become unreliable
//	chords         the antipodal chords {u, u+n/2 mod n} not in the base —
//	               a deterministic long-range overlay (ring+chords when the
//	               base is a ring)
//
// When a scenario names an overlay, the harness wraps its scheduler in
// sim.Lossy so the unreliable edges actually carry (some) messages.

// DefaultOverlayDeliverP is the unreliable-edge delivery probability used
// when an overlay spec has no @Q suffix.
const DefaultOverlayDeliverP = 0.5

var overlayFamilies = map[string]func(arg string, base *graph.Graph, seed int64) (*graph.Graph, error){
	"none": func(arg string, _ *graph.Graph, _ int64) (*graph.Graph, error) {
		if arg != "" {
			return nil, fmt.Errorf("harness: overlay none takes no parameter")
		}
		return nil, nil
	},
	"randomextra": func(arg string, base *graph.Graph, seed int64) (*graph.Graph, error) {
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("harness: randomextra needs a probability in [0,1], got %q", arg)
		}
		n := base.N()
		nonEdges := n*(n-1)/2 - base.M()
		extra := int(p*float64(nonEdges) + 0.5)
		return graph.RandomOverlay(base, extra, seed), nil
	},
	"extra": func(arg string, base *graph.Graph, seed int64) (*graph.Graph, error) {
		k, err := strconv.Atoi(arg)
		if err != nil || k < 0 {
			return nil, fmt.Errorf("harness: extra needs a non-negative edge count, got %q", arg)
		}
		return graph.RandomOverlay(base, k, seed), nil
	},
	"chords": func(arg string, base *graph.Graph, _ int64) (*graph.Graph, error) {
		if arg != "" {
			return nil, fmt.Errorf("harness: chords takes no parameter")
		}
		n := base.N()
		var chords [][2]int
		seen := map[[2]int]bool{}
		for u := 0; u < n; u++ {
			v := (u + n/2) % n
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if v == u || base.HasEdge(u, v) || seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			chords = append(chords, [2]int{u, v})
		}
		// FromEdges emits the chords in canonical order, reproducing the
		// sorted rows the old build-then-Sort pass returned.
		return graph.FromEdges(n, chords), nil
	},
}

// deterministicOverlayFamilies marks the families whose built graph is
// fully determined by the base graph (no seed dependence; the empty name
// is the "none" default). Only these share a sweep-cache entry across the
// seed axis — an allowlist on purpose, so a family not named here
// (including any future one) conservatively keys on the full seed and a
// missing classification costs cache hits, never correctness.
var deterministicOverlayFamilies = map[string]bool{
	"":       true,
	"none":   true,
	"chords": true,
}

func overlaySeedDependent(family string) bool { return !deterministicOverlayFamilies[family] }

// overlayFamily returns the family name of a spec — the token before the
// first ':' (parameter) or '@' (delivery probability). It is the single
// parser of that part of the grammar: NewOverlay and the sweep cache keys
// both go through it, so they cannot drift apart.
func overlayFamily(spec string) string {
	body, _, _ := strings.Cut(spec, "@")
	family, _, _ := strings.Cut(body, ":")
	return family
}

// Overlays returns the registered overlay family names, sorted.
func Overlays() []string { return sortedKeys(overlayFamilies) }

// NewOverlay builds the named overlay for the base topology. It returns
// the unreliable graph (nil for "none") and the unreliable-edge delivery
// probability the scenario's scheduler should be wrapped with. The empty
// spec means "none".
func NewOverlay(spec string, base *graph.Graph, seed int64) (*graph.Graph, float64, error) {
	if spec == "" {
		spec = "none"
	}
	body, q, hasQ := strings.Cut(spec, "@")
	deliverP := DefaultOverlayDeliverP
	if hasQ {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || v < 0 || v > 1 {
			return nil, 0, fmt.Errorf("harness: bad delivery probability in overlay %q: want @Q with Q in [0,1]", spec)
		}
		deliverP = v
	}
	name := overlayFamily(spec)
	_, arg, _ := strings.Cut(body, ":")
	mk, ok := overlayFamilies[name]
	if !ok {
		return nil, 0, fmt.Errorf("harness: unknown overlay family %q (have %v; grammar family[:param][@Q])", spec, Overlays())
	}
	o, err := mk(arg, base, overlaySeed(seed))
	if err != nil {
		return nil, 0, err
	}
	return o, deliverP, nil
}

// overlaySeed decorrelates the overlay construction from the scheduler,
// which consumes the scenario seed directly; lossySeed decorrelates the
// per-delivery coin flips from both, so the overlay's shape and its
// delivery luck vary independently across the seed axis.
//
// Every affine seed map in the tree must be distinct (doc.go,
// "Determinism contract"): these two, minorityrand's seed*2654435761+97
// above, the seeded topology builders' expanderSeed (seed*9176741+389)
// and podsSeed (seed*15485863+577) in topo.go, and ben-or's per-node
// seed*7368787 + ID*1299721 + 31 — pick a fresh multiplier when adding a
// consumer, or two "independent" streams will silently walk the same
// sequence.
func overlaySeed(seed int64) int64 { return seed*1000003 + 17 }

func lossySeed(seed int64) int64 { return seed*6700417 + 257 }
