package harness

import (
	"encoding/json"
	"testing"

	"github.com/absmac/absmac/internal/sim"
)

// resultJSON snapshots a simulator result for byte-level comparison.
// Results are engine-owned and reused across runs, so comparisons must go
// through a serialized copy taken while the result is live.
func resultJSON(t *testing.T, res *sim.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// cellJSON aggregates a single outcome into a Cell and serializes it —
// the sweep-visible face of a run.
func cellJSON(t *testing.T, o *Outcome) string {
	t.Helper()
	acc := newCellAccum(1)
	acc.add(o, 0, false)
	c := acc.finish()
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRecordReplayByteIdentity pins the record→replay contract: for every
// registered scheduler — bare, crash-injected, and Lossy-wrapped by an
// overlay — recording a run and replaying its Schedule reproduces the
// identical sim.Result (and the identical aggregated cell JSON), with the
// replay never leaving the recording.
func TestRecordReplayByteIdentity(t *testing.T) {
	type adversity struct{ crashes, overlay string }
	advs := []adversity{
		{"none", "none"},
		{"midbroadcast", "none"},
		{"none", "chords@0.7"},
		{"midbroadcast", "chords"},
		{"minorityrand", "randomextra:0.2@0.6"},
	}
	for _, sched := range Schedulers() {
		for _, adv := range advs {
			// Crashing a minority of a ring can partition the survivors,
			// and floodpaxos retransmits until superseded — a partitioned
			// run only ends at the event cap. Byte-identity doesn't need
			// the default 20M-event cutoff; cap well below it so the
			// partitioned combos stay fast (the cutoff execution is still
			// recorded and replayed like any other).
			sc := Scenario{
				Algo:      "floodpaxos",
				Topo:      Topo{Kind: "ring", N: 9},
				Sched:     sched,
				Fack:      4,
				Seed:      3,
				Crashes:   adv.crashes,
				Overlay:   adv.overlay,
				MaxEvents: 100_000,
			}
			name := sched + "/" + adv.crashes + "/" + adv.overlay
			t.Run(name, func(t *testing.T) {
				out1, schedule, err := sc.RunRecorded()
				if err != nil {
					t.Fatal(err)
				}
				want := resultJSON(t, out1.Result)
				wantCell := cellJSON(t, out1)
				if len(schedule.Steps) != out1.Result.Broadcasts {
					t.Fatalf("recorded %d steps for %d broadcasts", len(schedule.Steps), out1.Result.Broadcasts)
				}

				// The schedule must survive its own serialization: replay
				// from the decoded copy, not the live one.
				blob, err := json.Marshal(schedule)
				if err != nil {
					t.Fatal(err)
				}
				var decoded sim.Schedule
				if err := json.Unmarshal(blob, &decoded); err != nil {
					t.Fatal(err)
				}
				if decoded.Hash() != schedule.Hash() {
					t.Fatal("schedule hash changed across JSON round-trip")
				}

				runner, err := sc.NewReplayRunner()
				if err != nil {
					t.Fatal(err)
				}
				out2, rp, err := runner.Run(&decoded, nil)
				if err != nil {
					t.Fatal(err)
				}
				if rp.Diverged() {
					t.Fatalf("replay diverged at step %d", rp.DivergedAt())
				}
				if got := resultJSON(t, out2.Result); got != want {
					t.Fatalf("replayed result differs:\n got %s\nwant %s", got, want)
				}
				if got := cellJSON(t, out2); got != wantCell {
					t.Fatalf("replayed cell JSON differs:\n got %s\nwant %s", got, wantCell)
				}
			})
		}
	}
}

// TestRecordReplayIdentityWPaxos covers the multiplexed-service algorithm
// (deeper message zoo than floodpaxos) on a dual-graph cell, including the
// pinned stall configuration itself.
func TestRecordReplayIdentityWPaxos(t *testing.T) {
	for _, seed := range []int64{1, 4} {
		sc := Scenario{
			Algo: "wpaxos", Topo: Topo{Kind: "ring", N: 9},
			Sched: "random", Fack: 4, Seed: seed,
			Crashes: "midbroadcast", Overlay: "chords",
			MaxEvents: 200_000,
		}
		out1, schedule, err := sc.RunRecorded()
		if err != nil {
			t.Fatal(err)
		}
		want := resultJSON(t, out1.Result)
		runner, err := sc.NewReplayRunner()
		if err != nil {
			t.Fatal(err)
		}
		out2, rp, err := runner.Run(schedule, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Diverged() {
			t.Fatalf("seed %d: replay diverged at %d", seed, rp.DivergedAt())
		}
		if got := resultJSON(t, out2.Result); got != want {
			t.Fatalf("seed %d: replayed result differs", seed)
		}
	}
}

// TestRecordedScheduleCarriesCrashes pins that the recording captures the
// configured crash schedule, and that replays install it from the
// Schedule (dropping it changes the run).
func TestRecordedScheduleCarriesCrashes(t *testing.T) {
	sc := Scenario{
		Algo: "floodpaxos", Topo: Topo{Kind: "ring", N: 9},
		Sched: "random", Fack: 4, Seed: 3, Crashes: "midbroadcast",
	}
	out, schedule, err := sc.RunRecorded()
	if err != nil {
		t.Fatal(err)
	}
	if len(schedule.Crashes) != 1 || schedule.Crashes[0].Node != 0 {
		t.Fatalf("recorded crashes = %+v, want node 0's midbroadcast crash", schedule.Crashes)
	}
	if out.Report.Crashed != 1 {
		t.Fatalf("recorded run crashed %d nodes, want 1", out.Report.Crashed)
	}
	mutated := schedule.Clone()
	if !mutated.DropCrash(0) {
		t.Fatal("DropCrash refused")
	}
	runner, err := sc.NewReplayRunner()
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := runner.Run(mutated, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Report.Crashed != 0 {
		t.Fatalf("crash-free replay still crashed %d nodes", out2.Report.Crashed)
	}
}

// TestReplayRunnerReusesEngineSafely replays several perturbed schedules
// back to back on one runner: outcomes must match one-shot replays (the
// engine reuse must not leak state between replays).
func TestReplayRunnerReusesEngineSafely(t *testing.T) {
	sc := Scenario{
		Algo: "floodpaxos", Topo: Topo{Kind: "ring", N: 9},
		Sched: "random", Fack: 4, Seed: 3,
		Crashes: "midbroadcast", Overlay: "chords",
	}
	_, schedule, err := sc.RunRecorded()
	if err != nil {
		t.Fatal(err)
	}
	variants := []*sim.Schedule{schedule.Clone(), schedule.Clone(), schedule.Clone()}
	variants[1].JitterStep(0, 99)
	variants[2].Truncate(len(variants[2].Steps) / 2)

	shared, err := sc.NewReplayRunner()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range variants {
		got, _, err := shared.Run(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON := resultJSON(t, got.Result)
		fresh, err := sc.NewReplayRunner()
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := fresh.Run(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		if wantJSON := resultJSON(t, want.Result); gotJSON != wantJSON {
			t.Fatalf("variant %d: shared-runner result differs from fresh-runner result", i)
		}
	}
}
