package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenGrid is the small canonical grid pinned by
// testdata/golden_small_grid.json. The golden file was captured from the
// pre-cell-refactor flat-scenario sweep, so this test proves the
// cell-grouped pipeline (work-unit scheduling, shared caches, engine
// reuse, streaming accumulation) reproduces the old aggregation byte for
// byte. CI additionally diffs `amacsim -sweep -json` on the same grid
// against the same file, covering the CLI flag plumbing.
//
// Regenerate (only when the cell schema intentionally changes) with:
//
//	go run ./cmd/amacsim -sweep -algos wpaxos,floodpaxos \
//	    -topos clique:4,ring:5 -scheds sync,random -facks 3 -seeds 3 \
//	    -crashes none,one@0 -overlays none,chords -json \
//	    > internal/harness/testdata/golden_small_grid.json
func goldenGrid() Grid {
	return Grid{
		Algos:    []string{"wpaxos", "floodpaxos"},
		Topos:    []Topo{{Kind: "clique", N: 4}, {Kind: "ring", N: 5}},
		Scheds:   []string{"sync", "random"},
		Facks:    []int64{3},
		Inputs:   []string{"alternating"},
		Crashes:  []string{"none", "one@0"},
		Overlays: []string{"none", "chords"},
		Seeds:    []int64{1, 2, 3},
	}
}

func TestSweepGoldenJSON(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_small_grid.json"))
	if err != nil {
		t.Fatal(err)
	}
	work, err := goldenGrid().Cells()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := SweepCells(work, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, cells); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("cell-grouped sweep output diverged from the golden flat-scenario aggregation "+
			"(got %d bytes, want %d; run the regeneration command in this file's comment only "+
			"for an intentional schema change)", buf.Len(), len(want))
	}

	// The flat-scenario entry point must agree with the cell path.
	scs, err := goldenGrid().Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Sweep(scs, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteJSON(&buf, flat); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("Sweep (flat scenarios) output diverged from the golden aggregation")
	}
}
