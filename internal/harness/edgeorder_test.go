package harness

import (
	"testing"

	"github.com/absmac/absmac/internal/sim"
)

// edgeOrderTopos picks one representative topology per registered family,
// sized so degrees straddle the sort threshold (clique:40 and expander's
// regular degree exercise the sorted path even at its default cutoff).
var edgeOrderTopos = map[string]string{
	"clique":    "clique:40",
	"expander":  "expander:64:8",
	"grid":      "grid:6x7",
	"line":      "line:12",
	"pods":      "pods:4:12:3",
	"random":    "random:24:0.3",
	"ring":      "ring:12",
	"star":      "star:16",
	"starlines": "starlines:3x4",
	"tree":      "tree:3x3",
}

// TestEdgeOrderSortMatchesQuadratic pins EdgeOrder's scratch-sort path to
// the quadratic rank count: for every registered topology family, every
// node's plan must be byte-identical between a scheduler forced onto the
// sorted path (SortThreshold 1) and one forced onto the quadratic path
// (SortThreshold -1), in both serialization directions.
func TestEdgeOrderSortMatchesQuadratic(t *testing.T) {
	for _, fam := range Topologies() {
		spec, ok := edgeOrderTopos[fam]
		if !ok {
			t.Fatalf("no EdgeOrder identity topology registered for family %q — add one to edgeOrderTopos", fam)
		}
		topo, err := ParseTopo(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		g, err := topo.Build(7)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		maxDeg := 0
		for u := 0; u < g.N(); u++ {
			if d := g.Degree(u); d > maxDeg {
				maxDeg = d
			}
		}
		for _, descending := range []bool{false, true} {
			sorted := &sim.EdgeOrder{MaxDegree: maxDeg, Descending: descending, SortThreshold: 1}
			quad := &sim.EdgeOrder{MaxDegree: maxDeg, Descending: descending, SortThreshold: -1}
			for u := 0; u < g.N(); u++ {
				nbrs := g.Neighbors(u)
				b := sim.Broadcast{Sender: u, Neighbors: nbrs, Now: int64(u % 3)}
				ps := sim.Plan{Recv: make([]int64, len(nbrs))}
				pq := sim.Plan{Recv: make([]int64, len(nbrs))}
				for i := range ps.Recv {
					ps.Recv[i] = sim.NoDelivery
					pq.Recv[i] = sim.NoDelivery
				}
				sorted.Plan(b, &ps)
				quad.Plan(b, &pq)
				if ps.Ack != pq.Ack {
					t.Fatalf("%s desc=%v node %d: ack %d (sorted) != %d (quadratic)", spec, descending, u, ps.Ack, pq.Ack)
				}
				for i := range ps.Recv {
					if ps.Recv[i] != pq.Recv[i] {
						t.Fatalf("%s desc=%v node %d slot %d: %d (sorted) != %d (quadratic)",
							spec, descending, u, i, ps.Recv[i], pq.Recv[i])
					}
				}
			}
		}
	}
}
