package harness

import (
	"reflect"
	"sync"
	"testing"

	"github.com/absmac/absmac/internal/graph"
)

func graphsEqual(a, b *graph.Graph) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for u := 0; u < a.N(); u++ {
		if !reflect.DeepEqual(a.Neighbors(u), b.Neighbors(u)) {
			return false
		}
	}
	return true
}

// TestCacheHitDeterminism pins the cache's core promise: a cached graph,
// diameter or overlay is identical to one built fresh for the same
// scenario — including for the seed-dependent families, where the key
// normalization must NOT collapse distinct seeds.
func TestCacheHitDeterminism(t *testing.T) {
	c := newCaches()
	topos := []Topo{
		{Kind: "grid", Rows: 3, Cols: 3},
		{Kind: "ring", N: 9},
		{Kind: "random", N: 12, P: 0.2},
	}
	overlays := []string{"none", "chords", "extra:4", "randomextra:0.25@0.8"}
	for _, topo := range topos {
		for _, overlay := range overlays {
			for _, seed := range []int64{1, 2, 3} {
				g, diam, err := c.topo(topo, seed)
				if err != nil {
					t.Fatalf("cached topo %s seed %d: %v", topo, seed, err)
				}
				fresh, err := topo.Build(seed)
				if err != nil {
					t.Fatal(err)
				}
				if !graphsEqual(g, fresh) {
					t.Errorf("cached graph for %s seed %d differs from fresh build", topo, seed)
				}
				if want := fresh.Diameter(); diam != want {
					t.Errorf("cached diameter for %s seed %d = %d, want %d", topo, seed, diam, want)
				}
				o, p, err := c.overlay(overlay, topo, g, seed)
				if err != nil {
					t.Fatalf("cached overlay %s on %s seed %d: %v", overlay, topo, seed, err)
				}
				freshO, freshP, err := NewOverlay(overlay, fresh, seed)
				if err != nil {
					t.Fatal(err)
				}
				if !graphsEqual(o, freshO) || p != freshP {
					t.Errorf("cached overlay %s on %s seed %d differs from fresh build", overlay, topo, seed)
				}
			}
		}
	}
	// Inputs: cached assignment equals a fresh one.
	for _, pattern := range InputPatterns() {
		got, err := c.inputValues(pattern, 9)
		if err != nil {
			t.Fatal(err)
		}
		want, err := NewInputs(pattern, 9)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cached inputs %q differ: %v vs %v", pattern, got, want)
		}
	}
}

// TestCacheSharing pins the key normalization: seed-independent topologies
// share one graph across seeds, the random family does not, and the
// deterministic chords overlay shares while the seeded families do not.
func TestCacheSharing(t *testing.T) {
	c := newCaches()
	ring := Topo{Kind: "ring", N: 8}
	g1, _, err := c.topo(ring, 1)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, _ := c.topo(ring, 2)
	if g1 != g2 {
		t.Error("seed-independent topology not shared across seeds")
	}
	rnd := Topo{Kind: "random", N: 10, P: 0.3}
	r1, _, err := c.topo(rnd, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, _ := c.topo(rnd, 2)
	if r1 == r2 {
		t.Error("random topology shared across distinct seeds")
	}
	o1, _, err := c.overlay("chords", ring, g1, 1)
	if err != nil {
		t.Fatal(err)
	}
	o2, _, _ := c.overlay("chords", ring, g1, 2)
	if o1 != o2 {
		t.Error("deterministic chords overlay not shared across seeds")
	}
	e1, _, err := c.overlay("extra:3", ring, g1, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, _, _ := c.overlay("extra:3", ring, g1, 2)
	if e1 == e2 {
		t.Error("seeded extra overlay shared across distinct seeds")
	}
	// On a seed-dependent base even chords must key per seed: the base
	// graphs differ, so the overlays may too.
	c1, _, err := c.overlay("chords", rnd, r1, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, _ := c.overlay("chords", rnd, r2, 2)
	if c1 == c2 {
		t.Error("chords overlay on random bases shared across distinct seeds")
	}
}

// TestCacheConcurrentAccess hammers one cache from many goroutines (the
// sweep's worker-pool shape) — run under -race this is the cache's
// thread-safety test. Every goroutine must observe the same shared entry.
func TestCacheConcurrentAccess(t *testing.T) {
	c := newCaches()
	topos := []Topo{
		{Kind: "grid", Rows: 4, Cols: 4},
		{Kind: "ring", N: 9},
		{Kind: "random", N: 12, P: 0.2},
	}
	const workers = 16
	results := make([][]*graph.Graph, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for _, topo := range topos {
					g, diam, err := c.topo(topo, 3)
					if err != nil || g == nil || diam <= 0 {
						t.Errorf("worker %d: topo %s: g=%v diam=%d err=%v", w, topo, g, diam, err)
						return
					}
					o, _, err := c.overlay("extra:2", topo, g, 3)
					if err != nil || o == nil {
						t.Errorf("worker %d: overlay on %s: %v", w, topo, err)
						return
					}
					ins, err := c.inputValues("half", g.N())
					if err != nil || len(ins) != g.N() {
						t.Errorf("worker %d: inputs on %s: %v", w, topo, err)
						return
					}
					results[w] = append(results[w], g, o)
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if len(results[w]) != len(results[0]) {
			t.Fatalf("worker %d saw %d graphs, worker 0 saw %d", w, len(results[w]), len(results[0]))
		}
		for i := range results[w] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d graph %d is not the shared cache entry", w, i)
			}
		}
	}
}
