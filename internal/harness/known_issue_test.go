package harness

import "testing"

// TestWPaxosCrashOverlayStallFixed pins the cell that used to be the
// repo's flagship liveness stall: the Theorem 3.2 mid-broadcast crash of
// node 0 on ring:9 with the antipodal-chords overlay, seed 4. Before the
// Ω failure-detector redesign (suspicion + rotation + retransmit-until-
// superseded queues), wPAXOS quiesced here with every survivor undecided
// while floodpaxos decided in the very same cell; the stall was a ROADMAP
// open item anchored by this test. Both algorithms must now terminate —
// the recorded stall schedules survive as divergence regressions in
// testdata/ (see replay_golden_test.go).
func TestWPaxosCrashOverlayStallFixed(t *testing.T) {
	cell := Scenario{
		Topo:    Topo{Kind: "ring", N: 9},
		Sched:   "random",
		Fack:    4,
		Seed:    4,
		Crashes: "midbroadcast",
		Overlay: "chords",
		// Cap events defensively: termination should arrive well under the
		// cap, and a regression back into a livelock should fail fast.
		MaxEvents: 200_000,
	}

	for _, algo := range []string{"wpaxos", "floodpaxos"} {
		sc := cell
		sc.Algo = algo
		out, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !out.Report.Termination {
			t.Fatalf("%s stalled on ring:9 midbroadcast+chords seed 4 "+
				"(events=%d quiescent=%v cutoff=%v): the leader-death liveness fix regressed",
				algo, out.Result.Events, out.Result.Quiescent, out.Result.Cutoff)
		}
		if !out.Report.OK() {
			t.Fatalf("%s termination broke another property: %v", algo, out.Report.Errors)
		}
	}
}

// TestFloodPaxosLeaderDeathExtraOverlayFixed pins the second retired stall:
// floodpaxos on grid:3x3 with a seeded extra overlay, the max-id leader
// (node 8) crashing at T=3, seed 1 — the cell recorded in
// testdata/stall_floodpaxos_one3_extra.json. The monotone max-id election
// waited on the corpse forever; the suspicion detector must now rotate the
// proposership and terminate.
func TestFloodPaxosLeaderDeathExtraOverlayFixed(t *testing.T) {
	cell := Scenario{
		Algo:      "floodpaxos",
		Topo:      Topo{Kind: "grid", Rows: 3, Cols: 3},
		Sched:     "random",
		Fack:      4,
		Seed:      1,
		Crashes:   "one@3",
		Overlay:   "extra:4@0.6",
		MaxEvents: 200_000,
	}
	out, err := cell.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Report.Termination {
		t.Fatalf("floodpaxos stalled on ring:9 one@3+extra seed 6 "+
			"(events=%d quiescent=%v cutoff=%v): the leader-death liveness fix regressed",
			out.Result.Events, out.Result.Quiescent, out.Result.Cutoff)
	}
	if !out.Report.OK() {
		t.Fatalf("termination broke another property: %v", out.Report.Errors)
	}
	// maxid@T is the registry spelling of the same leader-death axis; the
	// alias must reproduce the one@T schedule exactly.
	alias := cell
	alias.Crashes = "maxid@3"
	out2, err := alias.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Report.Termination || out2.Result.Events != out.Result.Events {
		t.Fatalf("maxid@3 diverged from one@3: events %d vs %d",
			out2.Result.Events, out.Result.Events)
	}
}
