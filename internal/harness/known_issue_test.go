package harness

import "testing"

// TestWPaxosCrashOverlayStallKnownIssue is the executable anchor for the
// ROADMAP open item: wPAXOS liveness can stall when a crash pattern meets
// an unreliable overlay — here the Theorem 3.2 mid-broadcast crash of
// node 0 on ring:9 with the antipodal-chords overlay, seed 4 — while
// floodpaxos decides in the very same cell. The execution quiesces with
// every survivor undecided (a liveness stall, not a livelock), so the
// reproducer is cheap.
//
// KNOWN ISSUE: this test asserts the *stall*. It documents today's
// behavior so the root-cause investigation (quorum accounting vs.
// unreliable deliveries?) has a pinned, deterministic starting point. When
// the bug is fixed this test will fail — then flip the assertions to
// demand termination and move the cell into the canonical grids.
func TestWPaxosCrashOverlayStallKnownIssue(t *testing.T) {
	cell := Scenario{
		Topo:    Topo{Kind: "ring", N: 9},
		Sched:   "random",
		Fack:    4,
		Seed:    4,
		Crashes: "midbroadcast",
		Overlay: "chords",
		// Cap events defensively: the stall quiesces, but if a fix ever
		// turns it into a livelock this test should fail fast, not hang.
		MaxEvents: 200_000,
	}

	wp := cell
	wp.Algo = "wpaxos"
	out, err := wp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Quiescent {
		t.Fatalf("stall reproducer did not quiesce (events=%d cutoff=%v): the known issue changed shape",
			out.Result.Events, out.Result.Cutoff)
	}
	if out.Report.Termination {
		t.Fatal("wpaxos decided on ring:9 midbroadcast+chords seed 4: the known liveness stall " +
			"is gone — update ROADMAP.md and flip this test to assert termination")
	}
	if out.Report.SomeoneDecided {
		t.Fatalf("expected a full stall (no survivor decides), got a partial decision: %+v", out.Report)
	}
	// Safety must hold even while liveness fails: the stall is silence,
	// not disagreement.
	if !out.Report.Agreement || !out.Report.Validity {
		t.Fatalf("stall broke safety, not just liveness: %+v", out.Report.Errors)
	}

	// floodpaxos is robust in the same cell — the contrast that makes
	// this a wPAXOS bug rather than a model artifact.
	fp := cell
	fp.Algo = "floodpaxos"
	out, err = fp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Report.OK() {
		t.Fatalf("floodpaxos no longer robust in the stall cell: %v", out.Report.Errors)
	}
}
