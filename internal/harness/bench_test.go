package harness

import "testing"

// BenchmarkSweepCell measures one aggregated sweep cell end to end —
// scenario assembly, the parallel worker pool, consensus checking and
// aggregation — on a fault-injected grid, which is the workload the
// engine's allocation-free broadcast path exists for.
func BenchmarkSweepCell(b *testing.B) {
	// floodpaxos: the one multihop algorithm whose liveness holds for
	// every crash x overlay combination (see cmd/benchsuite).
	grid := Grid{
		Algos:    []string{"floodpaxos"},
		Topos:    []Topo{{Kind: "grid", Rows: 3, Cols: 3}},
		Scheds:   []string{"random"},
		Facks:    []int64{4},
		Crashes:  []string{"one@0"},
		Overlays: []string{"extra:4"},
		Seeds:    []int64{1, 2, 3, 4, 5, 6, 7, 8},
	}
	scs, err := grid.Scenarios()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := Sweep(scs, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 1 || !cells[0].OK() {
			b.Fatalf("sweep cell broken: %+v", cells)
		}
	}
}
