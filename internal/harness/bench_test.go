package harness

import "testing"

// sweepGridBench is the whole-grid benchmark workload: one multihop
// algorithm crossed with two topologies, two crash patterns and three
// overlay families — 12 cells, 96 scenarios — so the benchmark costs the
// cross-cell sharing (topology, diameter and overlay caches) that a
// single-cell benchmark cannot see.
func sweepGridBench() Grid {
	return Grid{
		Algos:    []string{"floodpaxos"},
		Topos:    []Topo{{Kind: "ring", N: 9}, {Kind: "grid", Rows: 3, Cols: 3}},
		Scheds:   []string{"random"},
		Facks:    []int64{4},
		Crashes:  []string{"one@0", "midbroadcast"},
		Overlays: []string{"none", "extra:4", "chords"},
		Seeds:    []int64{1, 2, 3, 4, 5, 6, 7, 8},
	}
}

// BenchmarkSweepCell measures one aggregated sweep cell end to end —
// scenario assembly, the parallel worker pool, consensus checking and
// aggregation — on a fault-injected grid, which is the workload the
// engine's allocation-free broadcast path exists for.
func BenchmarkSweepCell(b *testing.B) {
	// floodpaxos: the one multihop algorithm whose liveness holds for
	// every crash x overlay combination (see cmd/benchsuite).
	grid := Grid{
		Algos:    []string{"floodpaxos"},
		Topos:    []Topo{{Kind: "grid", Rows: 3, Cols: 3}},
		Scheds:   []string{"random"},
		Facks:    []int64{4},
		Crashes:  []string{"one@0"},
		Overlays: []string{"extra:4"},
		Seeds:    []int64{1, 2, 3, 4, 5, 6, 7, 8},
	}
	scs, err := grid.Scenarios()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := Sweep(scs, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 1 || !cells[0].OK() {
			b.Fatalf("sweep cell broken: %+v", cells)
		}
	}
}

// BenchmarkSweepCellMetrics is BenchmarkSweepCell with per-cell metric
// aggregation on (SweepOptions.Metrics): one registry per worker, one
// merge per run, one aggregate snapshot per cell. Measured next to the
// pinned metrics-off number so the overhead stays visibly
// O(registered slots + runs), never O(events).
func BenchmarkSweepCellMetrics(b *testing.B) {
	grid := Grid{
		Algos:    []string{"floodpaxos"},
		Topos:    []Topo{{Kind: "grid", Rows: 3, Cols: 3}},
		Scheds:   []string{"random"},
		Facks:    []int64{4},
		Crashes:  []string{"one@0"},
		Overlays: []string{"extra:4"},
		Seeds:    []int64{1, 2, 3, 4, 5, 6, 7, 8},
	}
	scs, err := grid.Scenarios()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := sweepGroups(groupScenarios(scs), SweepOptions{Metrics: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 1 || !cells[0].OK() || len(cells[0].Metrics) == 0 {
			b.Fatalf("sweep cell broken: %+v", cells)
		}
	}
}

// BenchmarkSweepGrid measures a whole multi-cell grid end to end, the
// workload the cell-grouped sweep pipeline exists for: cells share cached
// topologies, diameters and overlays across the cross product, and each
// worker reuses one engine across the seeds of a cell.
func BenchmarkSweepGrid(b *testing.B) {
	scs, err := sweepGridBench().Scenarios()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := Sweep(scs, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 12 {
			b.Fatalf("%d cells, want 12", len(cells))
		}
		for _, c := range cells {
			if !c.OK() {
				b.Fatalf("grid cell broken: %+v", c)
			}
		}
	}
}
