package harness

import (
	"fmt"

	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/sim"
)

// This file connects scenarios to the simulator's schedule record/replay
// layer (sim/schedule.go, sim/replay.go): RunRecorded captures a
// scenario's execution as a sim.Schedule, and ReplayRunner re-executes
// schedules — recorded, perturbed or minimized — against the scenario's
// fixed configuration on a reusable engine. internal/explore builds its
// search and its counterexample minimizer on exactly these two entry
// points; `amacsim -record` and `amacexplore -replay` are their CLI faces.

// fallbackSeed decorrelates a replay's fallback planner from every other
// consumer of the scenario seed (scheduler, overlay, lossy coins), so a
// perturbed execution's post-divergence randomness is its own axis.
func fallbackSeed(seed int64) int64 { return seed*48271 + 11 }

// RunRecorded executes the scenario exactly as Run does while recording
// every nondeterministic decision — each broadcast's finished delivery
// plan (unreliable-edge coin outcomes included) and the crash schedule —
// into a Schedule that ReplayRunner re-executes byte-identically.
// Recording costs one plan copy per broadcast; nothing changes on the
// delivery path, so the outcome is identical to an unrecorded run. An
// optional observer receives the engine events (`amacsim -record -trace`
// wires its trace recorder here).
func (s Scenario) RunRecorded(observer ...func(sim.Event)) (*Outcome, *sim.Schedule, error) {
	cfg, info, err := s.build(nil)
	if err != nil {
		return nil, nil, err
	}
	if len(observer) > 0 {
		cfg.Observer = observer[0]
	}
	rec := sim.RecordSchedule(cfg.Scheduler)
	rec.S.DeliverP = info.deliverP
	rec.S.FallbackSeed = fallbackSeed(s.Seed)
	rec.S.Crashes = append([]sim.Crash(nil), cfg.Crashes...)
	cfg.Scheduler = rec
	res := sim.Run(cfg)
	return &Outcome{
		Scenario: s,
		Result:   res,
		Report:   consensus.Check(cfg.Inputs, res),
		N:        cfg.Graph.N(),
		Diameter: cfg.Graph.Diameter(),
		Fack:     rec.Fack(),
	}, rec.S, nil
}

// ReplayRunner re-executes schedules against one scenario's fixed
// configuration — same topology, overlay, inputs and algorithm; the
// schedule supplies the delivery plans and the crash times. The runner
// owns a reusable engine, so replaying many schedule variants (the
// explorer's workload) pays the engine's allocations once. A runner is
// single-goroutine; exploration pools create one per worker, sharing the
// immutable graph/input structures across runners.
type ReplayRunner struct {
	sc  Scenario
	cfg sim.Config // template; Scheduler/Crashes/Factory are set per replay
	eng *sim.Engine
	n   int
	dia int
}

// NewReplayRunner builds the scenario once and returns a runner for it.
func (s Scenario) NewReplayRunner() (*ReplayRunner, error) {
	cfg, _, err := s.build(nil)
	if err != nil {
		return nil, err
	}
	return &ReplayRunner{sc: s, cfg: cfg, n: cfg.Graph.N(), dia: cfg.Graph.Diameter()}, nil
}

// Scenario returns the scenario the runner replays against.
func (r *ReplayRunner) Scenario() Scenario { return r.sc }

// N returns the node count of the runner's topology.
func (r *ReplayRunner) N() int { return r.n }

// Run replays sched against the runner's scenario and checks the
// consensus properties. The returned Replay reports whether (and where)
// the execution diverged from the recording: a clean recorded schedule
// replays with Diverged()==false and reproduces the original sim.Result
// byte for byte; a perturbed or truncated schedule diverges at its first
// unanswered broadcast and continues on the schedule's seeded fallback
// planner. An optional observer receives every engine event plus the
// EventDiverge marker.
//
// The Outcome's Result is owned by the runner's engine and valid only
// until the next Run call.
func (r *ReplayRunner) Run(sched *sim.Schedule, observer func(sim.Event)) (*Outcome, *sim.Replay, error) {
	out, rp, _, err := r.replay(sched, observer, false)
	return out, rp, err
}

// RunRecorded replays sched while re-recording the execution it actually
// produces, and returns that recording as a new, closed Schedule: every
// broadcast of the run — replayed prefix and post-divergence fallback
// alike — appears as a recorded step, so the returned schedule replays
// byte-identically with no divergence. The shrinker uses this to turn a
// perturbed or truncated schedule back into a complete, self-contained
// counterexample artifact after every accepted reduction.
func (r *ReplayRunner) RunRecorded(sched *sim.Schedule, observer func(sim.Event)) (*Outcome, *sim.Replay, *sim.Schedule, error) {
	return r.replay(sched, observer, true)
}

func (r *ReplayRunner) replay(sched *sim.Schedule, observer func(sim.Event), record bool) (*Outcome, *sim.Replay, *sim.Schedule, error) {
	if err := sched.Validate(); err != nil {
		return nil, nil, nil, err
	}
	factory, err := NewFactory(r.sc.Algo, r.n, r.sc.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	rp := sim.NewReplay(sched)
	rp.Observer = observer
	cfg := r.cfg
	cfg.Factory = factory
	cfg.Scheduler = rp
	cfg.Crashes = sched.Crashes
	cfg.Observer = observer
	var rec *sim.ScheduleRecorder
	if record {
		rec = sim.RecordSchedule(rp)
		rec.S.DeliverP = sched.DeliverP
		rec.S.FallbackSeed = sched.FallbackSeed
		rec.S.Crashes = append([]sim.Crash(nil), sched.Crashes...)
		cfg.Scheduler = rec
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("harness: schedule does not fit scenario %s on %s: %w", r.sc.Algo, r.sc.Topo, err)
	}
	if r.eng == nil {
		r.eng = sim.NewEngine(cfg)
	} else {
		r.eng.Reset(cfg)
	}
	res := r.eng.Run()
	out := &Outcome{
		Scenario: r.sc,
		Result:   res,
		Report:   consensus.Check(cfg.Inputs, res),
		N:        r.n,
		Diameter: r.dia,
		Fack:     rp.Fack(),
	}
	if rec != nil {
		return out, rp, rec.S, nil
	}
	return out, rp, nil, nil
}
