package harness_test

// This file is in the external test package: it exercises the committed
// counterexample artifact through internal/explore, which itself builds on
// harness — an in-package test would be an import cycle.

import (
	"encoding/json"
	"testing"

	"github.com/absmac/absmac/internal/explore"
)

// stallArtifact is the minimized wPAXOS liveness counterexample produced
// by `amacexplore -minimize` from the pinned stall cell (ring:9,
// midbroadcast, chords, seed 4; minimized onto ring:8). See
// known_issue_test.go for the live reproducer and ROADMAP.md for the
// root-cause analysis.
const stallArtifact = "testdata/stall_wpaxos_midbroadcast_chords.json"

// TestStallArtifactReplaysByteIdentically is the golden replay test: the
// committed artifact must replay with zero divergence, reproduce exactly
// the violation it records (kind, quiescence, event count), and do so
// deterministically — two replays yield byte-identical results. If this
// test starts failing after an engine or scheduler change, the execution
// semantics changed in a way that breaks recorded schedules; that is a
// compatibility break, not a flake.
func TestStallArtifactReplaysByteIdentically(t *testing.T) {
	a, err := explore.ReadFile(stallArtifact)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violation == nil || a.Violation.Kind != explore.KindNonTermination {
		t.Fatalf("artifact records %+v, want a non-termination violation", a.Violation)
	}

	replay := func() (string, *explore.Violation) {
		out, rp, err := a.Replay(nil)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Diverged() {
			t.Fatalf("committed artifact diverged at step %d: the engine no longer "+
				"reproduces recorded schedules byte-identically", rp.DivergedAt())
		}
		b, err := json.Marshal(out.Result)
		if err != nil {
			t.Fatal(err)
		}
		// Safety must hold in the replay exactly as it did live: the
		// stall is silence, not disagreement.
		if !out.Report.Agreement || !out.Report.Validity {
			t.Fatalf("replayed stall broke safety: %v", out.Report.Errors)
		}
		return string(b), explore.Classify(out)
	}

	r1, v1 := replay()
	if v1 == nil || v1.Kind != a.Violation.Kind {
		t.Fatalf("replay classified as %+v, artifact records %s", v1, a.Violation.Kind)
	}
	if v1.Events != a.Violation.Events || v1.Quiescent != a.Violation.Quiescent {
		t.Fatalf("replay shape (events=%d quiescent=%v) differs from recorded (events=%d quiescent=%v)",
			v1.Events, v1.Quiescent, a.Violation.Events, a.Violation.Quiescent)
	}
	r2, _ := replay()
	if r1 != r2 {
		t.Fatal("two replays of the committed artifact differ")
	}
}

// TestStallArtifactIsMinimal pins the minimizer's value: the committed
// artifact must be strictly smaller than a fresh recording of the original
// stall cell it came from.
func TestStallArtifactIsMinimal(t *testing.T) {
	a, err := explore.ReadFile(stallArtifact)
	if err != nil {
		t.Fatal(err)
	}
	orig := a.Scenario
	orig.Topo.N = 9 // the cell the explorer was pointed at
	orig.MaxEvents = a.MaxEvents
	_, sched, err := orig.RunRecorded()
	if err != nil {
		t.Fatal(err)
	}
	if got, from := len(a.Schedule.Steps), len(sched.Steps); got >= from {
		t.Fatalf("artifact has %d steps, original stall %d — not minimized", got, from)
	}
	if got, from := a.Schedule.Deliveries(), sched.Deliveries(); got >= from {
		t.Fatalf("artifact has %d deliveries, original stall %d — not minimized", got, from)
	}
}
