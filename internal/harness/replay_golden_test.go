package harness_test

// This file is in the external test package: it exercises the committed
// artifacts through internal/explore, which itself builds on harness — an
// in-package test would be an import cycle.

import (
	"encoding/json"
	"testing"

	"github.com/absmac/absmac/internal/explore"
)

// The two stall_*.json artifacts record the liveness stalls the Ω
// failure-detector redesign fixed: wPAXOS quiescing undecided under the
// Theorem 3.2 mid-broadcast crash with the chords overlay, and floodpaxos
// waiting forever on a dead max-id leader. The fixed algorithms broadcast
// differently (membership gossip, sticky retransmission), so the recorded
// schedules CANNOT replay cleanly anymore — and that is now the point:
// each artifact is a divergence regression. If a replay ever stops
// diverging and reproduces the recorded stall again, the liveness fix has
// been reverted. The matching golden_*.json artifacts record the same
// cells terminating under the fixed algorithms and must keep replaying
// byte-identically.
const (
	legacyWPaxosStall = "testdata/stall_wpaxos_midbroadcast_chords.json"
	legacyFloodStall  = "testdata/stall_floodpaxos_one3_extra.json"

	goldenWPaxos = "testdata/golden_wpaxos_midbroadcast_chords.json"
	goldenFlood  = "testdata/golden_floodpaxos_one3_extra.json"
)

// TestLegacyStallArtifactsNoLongerReproduce pins the fix from the
// artifact side: replaying either retired stall recording must detect
// divergence (the fixed algorithm sends messages the recording never saw)
// and must NOT end in the recorded non-termination — the fallback
// execution terminates. Deterministically so: two replays agree byte for
// byte.
func TestLegacyStallArtifactsNoLongerReproduce(t *testing.T) {
	for _, path := range []string{legacyWPaxosStall, legacyFloodStall} {
		a, err := explore.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if a.Violation == nil || a.Violation.Kind != explore.KindNonTermination {
			t.Fatalf("%s records %+v, want a non-termination violation", path, a.Violation)
		}
		replay := func() string {
			out, rp, err := a.Replay(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !rp.Diverged() {
				t.Fatalf("%s replayed divergence-free: the fixed algorithm reproduced its "+
					"pre-fix broadcast schedule, which should be impossible", path)
			}
			if v := explore.Classify(out); v != nil {
				t.Fatalf("%s still violates after divergence (%+v): the leader-death "+
					"liveness fix regressed", path, v)
			}
			// Safety holds throughout, as it did in the recorded stall.
			if !out.Report.Agreement || !out.Report.Validity {
				t.Fatalf("%s replay broke safety: %v", path, out.Report.Errors)
			}
			b, err := json.Marshal(out.Result)
			if err != nil {
				t.Fatal(err)
			}
			return string(b)
		}
		if replay() != replay() {
			t.Fatalf("%s: two replays differ", path)
		}
	}
}

// TestTerminatingGoldensReplayByteIdentically is the golden replay test
// for the re-recorded cells: zero divergence, no violation (the artifacts
// record healthy terminating runs), and deterministic — two replays yield
// byte-identical results. If this test starts failing after an engine,
// detector or scheduler change, the execution semantics changed in a way
// that breaks recorded schedules; that is a compatibility break, not a
// flake.
func TestTerminatingGoldensReplayByteIdentically(t *testing.T) {
	for _, path := range []string{goldenWPaxos, goldenFlood} {
		a, err := explore.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if a.Violation != nil {
			t.Fatalf("%s records violation %+v, want a healthy terminating run", path, a.Violation)
		}
		replay := func() string {
			out, rp, err := a.Replay(nil)
			if err != nil {
				t.Fatal(err)
			}
			if rp.Diverged() {
				t.Fatalf("%s diverged at step %d: the engine no longer reproduces "+
					"recorded schedules byte-identically", path, rp.DivergedAt())
			}
			if !out.Report.OK() {
				t.Fatalf("%s replay violated: %v", path, out.Report.Errors)
			}
			b, err := json.Marshal(out.Result)
			if err != nil {
				t.Fatal(err)
			}
			return string(b)
		}
		if replay() != replay() {
			t.Fatalf("%s: two replays differ", path)
		}
	}
}

// twophaseStallArtifact is the minimized two-phase stall produced by
// `amacexplore -minimize` from the ring:9 coordinator-crash chords cell
// (minimized onto ring:3) — the paper's Theorem 3.2 counterexample, kept
// as the repo's canonical violating artifact now that the wPAXOS and
// floodpaxos stalls are fixed. See internal/explore/campaign_test.go for
// the parallel-shrink determinism pin on the same file.
const twophaseStallArtifact = "testdata/stall_twophase_coordinator_chords.json"

// TestTwophaseStallArtifactReplaysByteIdentically: the committed artifact
// must replay with zero divergence, reproduce exactly the violation it
// records, and do so deterministically.
func TestTwophaseStallArtifactReplaysByteIdentically(t *testing.T) {
	a, err := explore.ReadFile(twophaseStallArtifact)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violation == nil || a.Violation.Kind != explore.KindNonTermination {
		t.Fatalf("artifact records %+v, want a non-termination violation", a.Violation)
	}
	replay := func() string {
		out, rp, err := a.Replay(nil)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Diverged() {
			t.Fatalf("committed artifact diverged at step %d", rp.DivergedAt())
		}
		if !out.Report.Agreement || !out.Report.Validity {
			t.Fatalf("replayed stall broke safety: %v", out.Report.Errors)
		}
		v := explore.Classify(out)
		if v == nil || v.Kind != a.Violation.Kind || v.Events != a.Violation.Events || v.Quiescent != a.Violation.Quiescent {
			t.Fatalf("replay classified as %+v, artifact records %+v", v, a.Violation)
		}
		b, err := json.Marshal(out.Result)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if replay() != replay() {
		t.Fatal("two replays of the committed artifact differ")
	}
}

// TestTwophaseStallArtifactIsMinimal pins the minimizer's value: the
// committed artifact (shrunk onto ring:3 with its overlay deliveries
// pruned) must be strictly smaller than a fresh recording of the ring:9
// stall cell it came from.
func TestTwophaseStallArtifactIsMinimal(t *testing.T) {
	a, err := explore.ReadFile(twophaseStallArtifact)
	if err != nil {
		t.Fatal(err)
	}
	orig := a.Scenario
	orig.Topo.N = 9 // the cell the explorer was pointed at
	orig.MaxEvents = a.MaxEvents
	_, sched, err := orig.RunRecorded()
	if err != nil {
		t.Fatal(err)
	}
	if got, from := len(a.Schedule.Steps), len(sched.Steps); got >= from {
		t.Fatalf("artifact has %d steps, original stall %d — not minimized", got, from)
	}
	if got, from := a.Schedule.Deliveries(), sched.Deliveries(); got >= from {
		t.Fatalf("artifact has %d deliveries, original stall %d — not minimized", got, from)
	}
}
