package harness_test

// This file is in the external test package: it exercises the committed
// counterexample artifact through internal/explore, which itself builds on
// harness — an in-package test would be an import cycle.

import (
	"encoding/json"
	"testing"

	"github.com/absmac/absmac/internal/explore"
)

// stallArtifact is the minimized wPAXOS liveness counterexample produced
// by `amacexplore -minimize` from the pinned stall cell (ring:9,
// midbroadcast, chords, seed 4; minimized onto ring:8). See
// known_issue_test.go for the live reproducer and ROADMAP.md for the
// root-cause analysis.
const stallArtifact = "testdata/stall_wpaxos_midbroadcast_chords.json"

// TestStallArtifactReplaysByteIdentically is the golden replay test: the
// committed artifact must replay with zero divergence, reproduce exactly
// the violation it records (kind, quiescence, event count), and do so
// deterministically — two replays yield byte-identical results. If this
// test starts failing after an engine or scheduler change, the execution
// semantics changed in a way that breaks recorded schedules; that is a
// compatibility break, not a flake.
func TestStallArtifactReplaysByteIdentically(t *testing.T) {
	a, err := explore.ReadFile(stallArtifact)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violation == nil || a.Violation.Kind != explore.KindNonTermination {
		t.Fatalf("artifact records %+v, want a non-termination violation", a.Violation)
	}

	replay := func() (string, *explore.Violation) {
		out, rp, err := a.Replay(nil)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Diverged() {
			t.Fatalf("committed artifact diverged at step %d: the engine no longer "+
				"reproduces recorded schedules byte-identically", rp.DivergedAt())
		}
		b, err := json.Marshal(out.Result)
		if err != nil {
			t.Fatal(err)
		}
		// Safety must hold in the replay exactly as it did live: the
		// stall is silence, not disagreement.
		if !out.Report.Agreement || !out.Report.Validity {
			t.Fatalf("replayed stall broke safety: %v", out.Report.Errors)
		}
		return string(b), explore.Classify(out)
	}

	r1, v1 := replay()
	if v1 == nil || v1.Kind != a.Violation.Kind {
		t.Fatalf("replay classified as %+v, artifact records %s", v1, a.Violation.Kind)
	}
	if v1.Events != a.Violation.Events || v1.Quiescent != a.Violation.Quiescent {
		t.Fatalf("replay shape (events=%d quiescent=%v) differs from recorded (events=%d quiescent=%v)",
			v1.Events, v1.Quiescent, a.Violation.Events, a.Violation.Quiescent)
	}
	r2, _ := replay()
	if r1 != r2 {
		t.Fatal("two replays of the committed artifact differ")
	}
}

// floodStallArtifact is the minimized floodpaxos liveness counterexample
// the PR 5 campaign produced from the grid:3x3 stall cell that PR 4's
// verification drive left open (crash pattern one@3 — the highest-index
// node dies at t=3 — under the extra:4@0.6 overlay). Root cause in
// ROADMAP.md: the max-id-heard Ω never demotes a dead leader, so every
// survivor waits forever on node 8's proposals; the overlay is incidental.
const floodStallArtifact = "testdata/stall_floodpaxos_one3_extra.json"

// TestFloodStallArtifactReplaysByteIdentically is the golden replay test
// for the campaign-produced floodpaxos artifact: zero divergence, exactly
// the recorded violation, deterministic across replays.
func TestFloodStallArtifactReplaysByteIdentically(t *testing.T) {
	a, err := explore.ReadFile(floodStallArtifact)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violation == nil || a.Violation.Kind != explore.KindNonTermination {
		t.Fatalf("artifact records %+v, want a non-termination violation", a.Violation)
	}
	replay := func() string {
		out, rp, err := a.Replay(nil)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Diverged() {
			t.Fatalf("committed artifact diverged at step %d", rp.DivergedAt())
		}
		if !out.Report.Agreement || !out.Report.Validity {
			t.Fatalf("replayed stall broke safety: %v", out.Report.Errors)
		}
		v := explore.Classify(out)
		if v == nil || v.Kind != a.Violation.Kind || v.Events != a.Violation.Events || v.Quiescent != a.Violation.Quiescent {
			t.Fatalf("replay classified as %+v, artifact records %+v", v, a.Violation)
		}
		b, err := json.Marshal(out.Result)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if replay() != replay() {
		t.Fatal("two replays of the committed artifact differ")
	}
}

// TestFloodStallArtifactIsMinimal pins what the campaign's shrinker cut:
// grid:RxC has no topology knob and the stall needs its crash, so the
// reduction is all overlay-delivery pruning — the artifact must explain
// the stall at a strictly lower shrinker cost (steps + deliveries +
// 8*crashes, the minimizer's acceptance metric; pruning deliveries may
// reshape the re-recorded flood into a few extra steps) than the raw
// recording of the same cell.
func TestFloodStallArtifactIsMinimal(t *testing.T) {
	a, err := explore.ReadFile(floodStallArtifact)
	if err != nil {
		t.Fatal(err)
	}
	orig := a.Scenario
	orig.MaxEvents = a.MaxEvents
	_, sched, err := orig.RunRecorded()
	if err != nil {
		t.Fatal(err)
	}
	cost := func(steps, deliveries, crashes int) int { return steps + deliveries + 8*crashes }
	got := cost(len(a.Schedule.Steps), a.Schedule.Deliveries(), len(a.Schedule.Crashes))
	from := cost(len(sched.Steps), sched.Deliveries(), len(sched.Crashes))
	if got >= from {
		t.Fatalf("artifact cost %d, original stall %d — not minimized", got, from)
	}
	if got, from := a.Schedule.Deliveries(), sched.Deliveries(); got >= from {
		t.Fatalf("artifact has %d deliveries, original stall %d — nothing pruned", got, from)
	}
}

// TestStallArtifactIsMinimal pins the minimizer's value: the committed
// artifact must be strictly smaller than a fresh recording of the original
// stall cell it came from.
func TestStallArtifactIsMinimal(t *testing.T) {
	a, err := explore.ReadFile(stallArtifact)
	if err != nil {
		t.Fatal(err)
	}
	orig := a.Scenario
	orig.Topo.N = 9 // the cell the explorer was pointed at
	orig.MaxEvents = a.MaxEvents
	_, sched, err := orig.RunRecorded()
	if err != nil {
		t.Fatal(err)
	}
	if got, from := len(a.Schedule.Steps), len(sched.Steps); got >= from {
		t.Fatalf("artifact has %d steps, original stall %d — not minimized", got, from)
	}
	if got, from := a.Schedule.Deliveries(), sched.Deliveries(); got >= from {
		t.Fatalf("artifact has %d deliveries, original stall %d — not minimized", got, from)
	}
}
