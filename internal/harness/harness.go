// Package harness assembles and runs simulator scenarios by name.
//
// A Scenario names everything one execution needs — algorithm, topology,
// input pattern, scheduler, Fack, seed, crash pattern, overlay family —
// and the package holds the registries that map those names to
// constructors. The CLIs (cmd/amacsim, cmd/benchsuite) and the examples
// build on these registries instead of hand-rolling their own switch
// statements, so a new algorithm, topology family, scheduler, crash
// pattern or overlay registered here becomes available everywhere at once.
//
// The adversity registries (adversity.go) cover the paper's fault models:
// crash patterns schedule sim.Crash failures — including Theorem 3.2's
// mid-broadcast crash — and overlay families build the unreliable
// dual graph of the Kuhn–Lynch–Newport model variant, with a lossy
// scheduler wrapper delivering over its edges probabilistically.
//
// On top of single scenarios, sweep.go expands a Grid (the cross product
// of named axes, now including the two fault axes) into cell work-units —
// one per (algo, topo, inputs, sched, fack, crashes, overlay) combination,
// seeds inside — and schedules whole cells onto a GOMAXPROCS-wide worker
// pool, aggregating per-cell decision-latency, survivor-latency, fault and
// message-count distributions in streaming accumulators. Execution is
// cell-grouped for performance: a worker runs all seeds of a cell back to
// back on one reusable sim.Engine (NewEngine/Reset), and all workers share
// the sweep's memoized caches (cache.go) of built topologies, their
// diameters and overlay dual graphs keyed by (topo, seed) — normalized to
// a shared key when the family ignores its seed — plus named input
// assignments keyed by (pattern, n). Everything that depends only on
// (topo, seed) is computed once per sweep instead of once per scenario;
// per-seed state (schedulers, algorithm instances, crash schedules) is
// always built fresh. Scenario.Run stays the uncached single-execution
// API. See cmd/amacsim's package comment for the sweep grammar.
//
// Sweeps also feed the campaign layer (internal/explore.Campaign):
// SweepCellsOpts streams every violating run out of the cell workers as a
// FlaggedRun the moment it is classified (consensus.Classify — the same
// judgment the explorer applies to perturbed schedules), and can wrap each
// run in a sim.Fingerprinter to report per-cell schedule coverage
// (Cell.DistinctSchedules — how many distinct delivery orderings the seeds
// actually exercised) and stop a cell early when coverage saturates. Both
// are opt-in: a plain sweep builds neither and its hot path is pinned
// allocation-for-allocation by BENCH_engine.json.
//
// Scenarios are also recordable and replayable (record.go):
// Scenario.RunRecorded captures every nondeterministic decision of a run
// — each broadcast's delivery plan with its unreliable-edge coin
// outcomes, plus the crash schedule — into a sim.Schedule, and a
// ReplayRunner re-executes schedules (recorded, perturbed or minimized)
// against the scenario's fixed configuration on a reusable engine,
// byte-identically for an unmodified recording. internal/explore builds
// its schedule-space search and counterexample minimizer on these; the
// golden test in replay_golden_test.go holds the committed stall artifact
// under testdata/ to this contract.
package harness

import (
	"fmt"
	"sort"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/baseline/anonflood"
	"github.com/absmac/absmac/internal/baseline/floodpaxos"
	"github.com/absmac/absmac/internal/baseline/gatherall"
	"github.com/absmac/absmac/internal/baseline/waitall"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/core/twophase"
	"github.com/absmac/absmac/internal/core/wpaxos"
	"github.com/absmac/absmac/internal/ext/benor"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/metrics"
	"github.com/absmac/absmac/internal/sim"
)

// Scenario names one execution: which algorithm, on which topology, with
// which inputs, under which scheduler. Scenarios are plain values — they
// marshal to JSON, compare with ==, and rebuild identical executions, which
// is what makes sweeps reproducible.
type Scenario struct {
	// Algo is a registered algorithm name (see Algorithms).
	Algo string `json:"algo"`
	// Topo describes the topology (see ParseTopo for the string grammar).
	Topo Topo `json:"topo"`
	// Inputs is a registered input-pattern name (see InputPatterns).
	// Empty means "alternating".
	Inputs string `json:"inputs,omitempty"`
	// Sched is a registered scheduler name (see Schedulers).
	Sched string `json:"sched"`
	// Fack is the scheduler's delivery bound.
	Fack int64 `json:"fack"`
	// Seed feeds the scheduler, the algorithm (when randomized), the
	// random topology family, and the crash/overlay registries.
	Seed int64 `json:"seed"`
	// Crashes is a registered crash-pattern spec (see NewCrashes).
	// Empty means "none".
	Crashes string `json:"crashes,omitempty"`
	// Overlay is a registered overlay-family spec (see NewOverlay)
	// building the unreliable dual graph. Empty means "none". A non-none
	// overlay also wraps the scheduler in sim.Lossy with the spec's
	// delivery probability, so the unreliable edges carry messages.
	Overlay string `json:"overlay,omitempty"`
	// MaxEvents optionally caps the execution (0 means the simulator
	// default). Sweeps set it so one non-quiescent cell cannot stall the
	// whole grid.
	MaxEvents int `json:"-"`
	// Metrics optionally installs a flight-recorder registry on the
	// execution (see internal/metrics; `amacsim -metrics` sets it). Never
	// serialized — a replayed artifact produces identical metrics because
	// the execution is identical, not because the registry is recorded.
	// Sweeps ignore it and install per-worker registries through
	// SweepOptions.Metrics instead.
	Metrics *metrics.Registry `json:"-"`
	// InputValues optionally overrides Inputs with an explicit
	// assignment (length must match the topology's node count).
	InputValues []amac.Value `json:"-"`
}

// Outcome is the result of running one Scenario: the raw simulator result
// plus the consensus-property report and the built topology's shape.
type Outcome struct {
	Scenario Scenario
	Result   *sim.Result
	Report   *consensus.Report
	// N and Diameter describe the topology the run was built on (they
	// vary with the seed for the random family).
	N        int
	Diameter int
	// Fack is the delivery bound the scheduler actually declared, which
	// differs from Scenario.Fack for schedulers with a structural bound
	// (edgeorder declares MaxDegree+1 and ignores the requested value).
	Fack int64
}

// OK reports whether the run decided everywhere and satisfied agreement,
// validity and termination.
func (o *Outcome) OK() bool { return o.Report.OK() }

// Violation classifies the outcome (see consensus.Classify), or nil when
// the run was clean. Sweep workers use it to flag violating runs for the
// campaign layer; internal/explore uses the same classification to judge
// perturbed and minimized schedules, so a run flagged here is exactly a
// run the explorer would report.
func (o *Outcome) Violation() *consensus.Violation {
	return consensus.Classify(o.Report, o.Result)
}

// --- algorithm registry ---

type algoCtor func(n int, seed int64) amac.Factory

var algorithms = map[string]algoCtor{
	"twophase":   func(int, int64) amac.Factory { return twophase.Factory },
	"wpaxos":     func(n int, _ int64) amac.Factory { return wpaxos.NewFactory(wpaxos.Config{N: n}) },
	"floodpaxos": func(n int, _ int64) amac.Factory { return floodpaxos.NewFactory(n) },
	"gatherall":  func(n int, _ int64) amac.Factory { return gatherall.NewFactory(n) },
	"benor": func(n int, seed int64) amac.Factory {
		return benor.NewFactory(benor.Config{N: n, F: (n - 1) / 2, Seed: seed})
	},
	// The two defeated baselines take a round budget derived from a
	// diameter bound; the registry only knows n, so it uses the universal
	// bound diameter <= n-1. That keeps them correct exactly where the
	// paper says they are (crash-free reliable executions whose scheduler
	// lets information traverse within the budget) while sweeps can now
	// reach the regimes that defeat them. Algorithms that consume the
	// seed must also appear in seededAlgos below.
	"anonflood": func(n int, _ int64) amac.Factory {
		return anonflood.NewFactory(anonflood.RoundsForDiameter(n - 1))
	},
	"waitall": func(n int, _ int64) amac.Factory {
		return waitall.NewFactory(waitall.RoundsForDiameter(n - 1))
	},
}

// seededAlgos names the registered algorithms whose behaviour depends on
// the scenario seed (they draw randomness of their own — benor's coin
// flips — rather than inheriting all nondeterminism from the scheduler).
// Coverage fingerprinting consults it: see fingerprintSalt.
var seededAlgos = map[string]bool{"benor": true}

// fingerprintSalt returns the word to fold into the scenario's coverage
// fingerprint beyond the schedule digest: the seed when the execution
// depends on it through channels the digest cannot see (algorithm RNG,
// a seed-built topology, a seed-built overlay), 0 otherwise. Salting
// makes every seed of such a cell a distinct "ordering", which is
// exactly right — saturation must never skip seeds that genuinely change
// the execution, and DistinctSchedules must count executions, not
// schedule skeletons.
func (s Scenario) fingerprintSalt() int64 {
	if seededAlgos[s.Algo] || s.Topo.buildSeed(s.Seed) != 0 ||
		(s.Overlay != "" && s.Overlay != "none" && overlaySeedDependent(overlayFamily(s.Overlay))) {
		return s.Seed
	}
	return 0
}

// Algorithms returns the registered algorithm names, sorted.
func Algorithms() []string { return sortedKeys(algorithms) }

// NewFactory builds the named algorithm's factory for an n-node execution.
func NewFactory(algo string, n int, seed int64) (amac.Factory, error) {
	ctor, ok := algorithms[algo]
	if !ok {
		return nil, fmt.Errorf("harness: unknown algorithm %q (have %v)", algo, Algorithms())
	}
	return ctor(n, seed), nil
}

// --- scheduler registry ---

type schedCtor func(fack, seed int64, g *graph.Graph) sim.Scheduler

var schedulers = map[string]schedCtor{
	"sync":     func(fack, _ int64, _ *graph.Graph) sim.Scheduler { return sim.Synchronous{Round: fack} },
	"random":   func(fack, seed int64, _ *graph.Graph) sim.Scheduler { return sim.NewRandom(fack, seed) },
	"maxdelay": func(fack, _ int64, _ *graph.Graph) sim.Scheduler { return sim.MaxDelay{F: fack} },
	"edgeorder": func(_, _ int64, g *graph.Graph) sim.Scheduler {
		maxDeg := 0
		for u := 0; u < g.N(); u++ {
			if d := g.Degree(u); d > maxDeg {
				maxDeg = d
			}
		}
		return &sim.EdgeOrder{MaxDegree: maxDeg}
	},
}

// Schedulers returns the registered scheduler names, sorted.
func Schedulers() []string { return sortedKeys(schedulers) }

// NewScheduler builds the named scheduler. The graph is consulted by
// degree-driven schedulers (edgeorder); fack is ignored by schedulers whose
// bound is structural.
func NewScheduler(name string, fack, seed int64, g *graph.Graph) (sim.Scheduler, error) {
	ctor, ok := schedulers[name]
	if !ok {
		return nil, fmt.Errorf("harness: unknown scheduler %q (have %v)", name, Schedulers())
	}
	if fack <= 0 {
		return nil, fmt.Errorf("harness: Fack=%d, need > 0", fack)
	}
	return ctor(fack, seed, g), nil
}

// --- input-pattern registry ---

var inputPatterns = map[string]func(n int) []amac.Value{
	"alternating": func(n int) []amac.Value {
		ins := make([]amac.Value, n)
		for i := range ins {
			ins[i] = amac.Value(i % 2)
		}
		return ins
	},
	"zeros": func(n int) []amac.Value { return make([]amac.Value, n) },
	"ones": func(n int) []amac.Value {
		ins := make([]amac.Value, n)
		for i := range ins {
			ins[i] = 1
		}
		return ins
	},
	"half": func(n int) []amac.Value {
		ins := make([]amac.Value, n)
		for i := n / 2; i < n; i++ {
			ins[i] = 1
		}
		return ins
	},
}

// InputPatterns returns the registered input-pattern names, sorted.
func InputPatterns() []string { return sortedKeys(inputPatterns) }

// NewInputs builds the named input assignment for n nodes.
func NewInputs(pattern string, n int) ([]amac.Value, error) {
	if pattern == "" {
		pattern = "alternating"
	}
	mk, ok := inputPatterns[pattern]
	if !ok {
		return nil, fmt.Errorf("harness: unknown input pattern %q (have %v)", pattern, InputPatterns())
	}
	return mk(n), nil
}

// Config assembles the scenario into a validated simulator configuration.
func (s Scenario) Config() (sim.Config, error) {
	cfg, _, err := s.build(nil)
	return cfg, err
}

// buildInfo carries the side facts build learns while assembling a
// configuration: the topology diameter (when cached) and the unreliable
// delivery probability of the scenario's overlay spec (which recording
// needs for Schedule.DeliverP).
type buildInfo struct {
	diameter int
	deliverP float64
}

// build assembles the scenario and returns the configuration plus build
// side facts. With a non-nil cache the graph, its diameter, the
// overlay dual graph and the input assignment are memoized and shared
// (this is the sweep path); with nil everything is built fresh and the
// diameter is NOT computed (returned as 0) — uncached callers that need
// it compute it from the graph, so Config() never pays an all-pairs BFS
// it would discard. The per-seed pieces — scheduler, algorithm factory,
// crash schedule, lossy wrapper — are always built fresh, since they
// carry run state.
func (s Scenario) build(c *caches) (sim.Config, buildInfo, error) {
	var (
		g    *graph.Graph
		info buildInfo
		err  error
	)
	if c != nil {
		g, info.diameter, err = c.topo(s.Topo, s.Seed)
	} else {
		g, err = s.Topo.Build(s.Seed)
	}
	if err != nil {
		return sim.Config{}, info, err
	}
	ins := s.InputValues
	if ins == nil {
		if c != nil {
			ins, err = c.inputValues(s.Inputs, g.N())
		} else {
			ins, err = NewInputs(s.Inputs, g.N())
		}
		if err != nil {
			return sim.Config{}, info, err
		}
	} else if len(ins) != g.N() {
		return sim.Config{}, info, fmt.Errorf("harness: %d input values for %d nodes", len(ins), g.N())
	}
	if err := amac.ValidateBinaryInputs(ins); err != nil {
		return sim.Config{}, info, err
	}
	factory, err := NewFactory(s.Algo, g.N(), s.Seed)
	if err != nil {
		return sim.Config{}, info, err
	}
	scheduler, err := NewScheduler(s.Sched, s.Fack, s.Seed, g)
	if err != nil {
		return sim.Config{}, info, err
	}
	crashes, err := NewCrashes(s.Crashes, g.N(), s.Fack, s.Seed)
	if err != nil {
		return sim.Config{}, info, err
	}
	var unreliable *graph.Graph
	if c != nil {
		unreliable, info.deliverP, err = c.overlay(s.Overlay, s.Topo, g, s.Seed)
	} else {
		unreliable, info.deliverP, err = NewOverlay(s.Overlay, g, s.Seed)
	}
	if err != nil {
		return sim.Config{}, info, err
	}
	if unreliable != nil {
		// The lossy wrapper is what makes overlay edges deliver at all:
		// base schedulers plan only the reliable neighbors.
		scheduler = sim.NewLossy(scheduler, info.deliverP, lossySeed(s.Seed))
	}
	// Every Validate check is already guaranteed by the construction
	// above (and sim.Run re-validates), so the config is returned as is.
	return sim.Config{
		Graph:           g,
		Inputs:          ins,
		Factory:         factory,
		Scheduler:       scheduler,
		Unreliable:      unreliable,
		Crashes:         crashes,
		MaxEvents:       s.MaxEvents,
		Metrics:         s.Metrics,
		StopWhenDecided: true,
		Audit:           true,
	}, info, nil
}

// Run executes the scenario and checks the consensus properties. It builds
// everything fresh and allocates its own engine — the right call for a
// single execution. Sweeps instead run cells of seeds through per-worker
// reusable engines and shared caches (see Sweep).
func (s Scenario) Run() (*Outcome, error) {
	cfg, _, err := s.build(nil)
	if err != nil {
		return nil, err
	}
	res := sim.Run(cfg)
	return &Outcome{
		Scenario: s,
		Result:   res,
		Report:   consensus.Check(cfg.Inputs, res),
		N:        cfg.Graph.N(),
		Diameter: cfg.Graph.Diameter(),
		Fack:     cfg.Scheduler.Fack(),
	}, nil
}

// runner executes scenarios for one sweep worker: configurations are
// assembled through the sweep's shared caches and executed on a single
// reusable engine, so across the seeds of a cell the only per-run
// allocations are the scenario's own state (algorithm instances, seeded
// schedulers, the consensus report).
type runner struct {
	caches *caches
	eng    *sim.Engine
}

// run executes one scenario. The returned Outcome's Result is owned by the
// runner's engine and is valid only until the next run call — callers must
// extract what they need (the accumulator does) before running again.
// With fingerprint set, the scheduler is wrapped in a sim.Fingerprinter
// and the run's schedule-coverage digest is returned alongside the
// outcome; without it the wrapper is never constructed and the second
// return is 0 — the sweep hot path pays nothing for the capability.
// A non-nil reg is installed as the run's metrics registry; the engine's
// Reset zeroes it, so after run returns it holds exactly this run's
// values (callers merge before the next run). Nil keeps the instrumented
// paths on disabled handles — that is the configuration the allocation
// pins in BENCH_engine.json measure.
func (r *runner) run(s Scenario, fingerprint bool, reg *metrics.Registry) (*Outcome, uint64, error) {
	cfg, info, err := s.build(r.caches)
	if err != nil {
		return nil, 0, err
	}
	cfg.Metrics = reg
	var fp *sim.Fingerprinter
	if fingerprint {
		fp = sim.NewFingerprinter(cfg.Scheduler, cfg.Crashes)
		cfg.Scheduler = fp
	}
	if r.eng == nil {
		r.eng = sim.NewEngine(cfg)
	} else {
		r.eng.Reset(cfg)
	}
	res := r.eng.Run()
	var sum uint64
	if fp != nil {
		sum = fp.Sum()
		if salt := s.fingerprintSalt(); salt != 0 {
			sum = sim.SaltFingerprint(sum, salt)
		}
	}
	return &Outcome{
		Scenario: s,
		Result:   res,
		Report:   consensus.Check(cfg.Inputs, res),
		N:        cfg.Graph.N(),
		Diameter: info.diameter,
		Fack:     cfg.Scheduler.Fack(),
	}, sum, nil
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
