package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"

	"github.com/absmac/absmac/internal/stats"
)

// Grid is the cross product of scenario axes. Seeds vary fastest and are
// the replication axis: all seeds of one (algo, topo, sched, fack, inputs,
// crashes, overlay) combination aggregate into a single Cell.
type Grid struct {
	Algos  []string
	Topos  []Topo
	Scheds []string
	Facks  []int64
	Inputs []string
	// Crashes and Overlays are the fault axes: registered crash-pattern
	// and overlay-family specs (see NewCrashes and NewOverlay). Either
	// may be empty, defaulting to {"none"} — a fault-free sweep.
	Crashes  []string
	Overlays []string
	Seeds    []int64
	// MaxEvents caps each execution; 0 means DefaultSweepMaxEvents, so
	// one non-quiescent cell cannot stall the whole grid.
	MaxEvents int
}

// DefaultSweepMaxEvents bounds each sweep execution when Grid.MaxEvents is
// zero — tighter than the simulator's own default so a non-quiescent cell
// fails fast (as a termination violation) instead of stalling the grid.
const DefaultSweepMaxEvents = 5_000_000

// Scenarios expands the grid. Empty Inputs defaults to {"alternating"}
// and the empty fault axes to {"none"}; every other axis must be
// non-empty.
func (g Grid) Scenarios() ([]Scenario, error) {
	inputs := g.Inputs
	if len(inputs) == 0 {
		inputs = []string{"alternating"}
	}
	crashes := g.Crashes
	if len(crashes) == 0 {
		crashes = []string{"none"}
	}
	overlays := g.Overlays
	if len(overlays) == 0 {
		overlays = []string{"none"}
	}
	for name, axis := range map[string]int{
		"algos": len(g.Algos), "topos": len(g.Topos),
		"scheds": len(g.Scheds), "facks": len(g.Facks), "seeds": len(g.Seeds),
	} {
		if axis == 0 {
			return nil, fmt.Errorf("harness: sweep grid has an empty %s axis", name)
		}
	}
	maxEvents := g.MaxEvents
	if maxEvents == 0 {
		maxEvents = DefaultSweepMaxEvents
	}
	var scs []Scenario
	for _, algo := range g.Algos {
		for _, topo := range g.Topos {
			for _, in := range inputs {
				for _, sched := range g.Scheds {
					for _, fack := range g.Facks {
						for _, crash := range crashes {
							for _, overlay := range overlays {
								for _, seed := range g.Seeds {
									scs = append(scs, Scenario{
										Algo: algo, Topo: topo, Inputs: in,
										Sched: sched, Fack: fack, Seed: seed,
										Crashes: crash, Overlay: overlay,
										MaxEvents: maxEvents,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return scs, nil
}

// Summary is a five-number summary of one per-cell sample.
type Summary struct {
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Mean   float64 `json:"mean"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
}

func summarize(xs []float64) Summary {
	return Summary{
		Min:    stats.Min(xs),
		Median: stats.Median(xs),
		Mean:   stats.Mean(xs),
		P95:    stats.Percentile(xs, 95),
		Max:    stats.Max(xs),
	}
}

// Cell aggregates every seed of one scenario combination.
type Cell struct {
	Algo   string `json:"algo"`
	Topo   string `json:"topo"`
	Inputs string `json:"inputs"`
	Sched  string `json:"sched"`
	// Crashes and Overlay are the cell's fault-axis specs ("none" when
	// the grid had no fault axes).
	Crashes string `json:"crashes"`
	Overlay string `json:"overlay"`
	// Fack is the requested grid-axis value; EffectiveFack is the median
	// bound the scheduler actually declared. They differ for schedulers
	// with a structural bound (edgeorder declares MaxDegree+1), which is
	// why DecidePerFack normalizes by EffectiveFack.
	Fack          int64 `json:"fack"`
	EffectiveFack int64 `json:"effective_fack"`

	// N is the node count; Diameter is the median topology diameter
	// across the cell's seeds (both are seed-independent for every
	// family except random, where per-seed graphs differ in shape).
	N        int `json:"n"`
	Diameter int `json:"diameter"`

	// Runs counts executions; Correct counts those satisfying agreement,
	// validity and termination; Undecided counts runs where no node
	// decided (those are excluded from the Decide summary).
	Runs      int `json:"runs"`
	Correct   int `json:"correct"`
	Undecided int `json:"undecided"`

	// Decide summarizes the decision latency (max decide time per run)
	// over the runs that decided; DecidePerFack normalizes its median by
	// EffectiveFack. Both are zero when every run was undecided.
	Decide        Summary `json:"decide_time"`
	DecidePerFack float64 `json:"decide_per_fack"`

	// SurvivorDecide summarizes the survivor-only decision latency (the
	// latest decision among non-crashed nodes, per run) over the runs in
	// which some survivor decided. It coincides with Decide in
	// fault-free cells and is the meaningful latency under crash
	// patterns, where Decide may count nodes that decided and then died.
	SurvivorDecide Summary `json:"survivor_decide_time"`

	// Faults summarizes the number of crashed nodes per run, and
	// FaultTerminations counts the runs that had at least one crash yet
	// every survivor still decided — the cell's
	// "termination despite faults" score.
	Faults            Summary `json:"faults"`
	FaultTerminations int     `json:"terminated_despite_faults"`

	// Broadcasts and Deliveries summarize MAC-layer message counts.
	Broadcasts Summary `json:"broadcasts"`
	Deliveries Summary `json:"deliveries"`

	// Errors lists distinct consensus violations observed in the cell.
	Errors []string `json:"errors,omitempty"`
}

func (c *Cell) key() string {
	return fmt.Sprintf("%s|%s|%s|%s|%d|%s|%s", c.Algo, c.Topo, c.Inputs, c.Sched, c.Fack, c.Crashes, c.Overlay)
}

// OK reports whether every run in the cell was correct.
func (c *Cell) OK() bool { return c.Correct == c.Runs }

// Sweep runs every scenario on a worker pool of the given width (<= 0
// means GOMAXPROCS) and aggregates outcomes into cells, one per distinct
// (algo, topo, inputs, sched, fack) combination, in first-appearance
// order. Scenario construction errors abort the sweep; consensus
// violations do not — they are reported per cell.
func Sweep(scs []Scenario, workers int) ([]Cell, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outcomes := make([]*Outcome, len(scs))
	errs := make([]error, len(scs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outcomes[i], errs[i] = scs[i].Run()
			}
		}()
	}
	for i := range scs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario %d (%s on %s under %s): %w", i, scs[i].Algo, scs[i].Topo, scs[i].Sched, err)
		}
	}
	return aggregate(outcomes), nil
}

type accum struct {
	cell                           *Cell
	decide, broadcasts, deliveries []float64
	survivorDecide, faults         []float64
	diameters, facks               []float64
	errSeen                        map[string]bool
}

func aggregate(outcomes []*Outcome) []Cell {
	var order []string
	acc := map[string]*accum{}
	for _, o := range outcomes {
		s := o.Scenario
		in := s.Inputs
		if in == "" {
			in = "alternating"
		}
		crashes := s.Crashes
		if crashes == "" {
			crashes = "none"
		}
		overlay := s.Overlay
		if overlay == "" {
			overlay = "none"
		}
		c := Cell{Algo: s.Algo, Topo: s.Topo.String(), Inputs: in, Sched: s.Sched,
			Crashes: crashes, Overlay: overlay, Fack: s.Fack, N: o.N}
		a, ok := acc[c.key()]
		if !ok {
			a = &accum{cell: &c, errSeen: map[string]bool{}}
			acc[c.key()] = a
			order = append(order, c.key())
		}
		a.cell.Runs++
		if o.OK() {
			a.cell.Correct++
		}
		for _, e := range o.Report.Errors {
			if !a.errSeen[e] {
				a.errSeen[e] = true
				a.cell.Errors = append(a.cell.Errors, e)
			}
		}
		a.diameters = append(a.diameters, float64(o.Diameter))
		a.facks = append(a.facks, float64(o.Fack))
		if o.Result.MaxDecideTime >= 0 {
			a.decide = append(a.decide, float64(o.Result.MaxDecideTime))
		} else {
			a.cell.Undecided++
		}
		if o.Report.SurvivorDecideTime >= 0 {
			a.survivorDecide = append(a.survivorDecide, float64(o.Report.SurvivorDecideTime))
		}
		a.faults = append(a.faults, float64(o.Report.Crashed))
		if o.Report.Crashed > 0 && o.Report.Termination {
			a.cell.FaultTerminations++
		}
		a.broadcasts = append(a.broadcasts, float64(o.Result.Broadcasts))
		a.deliveries = append(a.deliveries, float64(o.Result.Deliveries))
	}
	cells := make([]Cell, 0, len(order))
	for _, k := range order {
		a := acc[k]
		a.cell.Diameter = int(stats.Median(a.diameters))
		a.cell.EffectiveFack = int64(stats.Median(a.facks))
		a.cell.Decide = summarize(a.decide)
		if len(a.decide) > 0 && a.cell.EffectiveFack > 0 {
			a.cell.DecidePerFack = a.cell.Decide.Median / float64(a.cell.EffectiveFack)
		}
		a.cell.SurvivorDecide = summarize(a.survivorDecide)
		a.cell.Faults = summarize(a.faults)
		a.cell.Broadcasts = summarize(a.broadcasts)
		a.cell.Deliveries = summarize(a.deliveries)
		cells = append(cells, *a.cell)
	}
	return cells
}

// Report writes the cells to w — an indented JSON array when jsonOut,
// an aligned text table otherwise — and returns how many cells contain
// consensus violations. It is the shared output path of `amacsim -sweep`
// and `benchsuite -grid`.
func Report(w io.Writer, cells []Cell, jsonOut bool) (bad int, err error) {
	if jsonOut {
		err = WriteJSON(w, cells)
	} else {
		_, err = io.WriteString(w, Table(cells).Render())
	}
	for i := range cells {
		if !cells[i].OK() {
			bad++
		}
	}
	return bad, err
}

// WriteJSON emits the cells as an indented JSON array (the `amacsim -sweep
// -json` output format).
func WriteJSON(w io.Writer, cells []Cell) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cells)
}

// Table renders the cells as a plain-text table. The fault columns report
// the median crashed-node count, the survivor-only decision latency and
// how many faulty runs still terminated (see Cell).
func Table(cells []Cell) *stats.Table {
	t := &stats.Table{Columns: []string{
		"algo", "topo", "inputs", "sched", "crashes", "overlay", "Fack", "n", "D",
		"runs", "ok", "decide med", "decide p95", "decide/Fack",
		"faults med", "sdecide med", "term+faults", "bcast med", "deliv med",
	}}
	for _, c := range cells {
		ok := fmt.Sprintf("%d/%d", c.Correct, c.Runs)
		fack := fmt.Sprint(c.Fack)
		if c.EffectiveFack != c.Fack {
			// Structural schedulers override the requested bound.
			fack = fmt.Sprintf("%d>%d", c.Fack, c.EffectiveFack)
		}
		t.AddRow(c.Algo, c.Topo, c.Inputs, c.Sched, c.Crashes, c.Overlay, fack, c.N, c.Diameter,
			c.Runs, ok, c.Decide.Median, c.Decide.P95, c.DecidePerFack,
			c.Faults.Median, c.SurvivorDecide.Median, c.FaultTerminations,
			c.Broadcasts.Median, c.Deliveries.Median)
	}
	return t
}
