package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"

	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/metrics"
	"github.com/absmac/absmac/internal/stats"
)

// Grid is the cross product of scenario axes. Seeds vary fastest and are
// the replication axis: all seeds of one (algo, topo, sched, fack, inputs,
// crashes, overlay) combination aggregate into a single Cell.
type Grid struct {
	Algos  []string
	Topos  []Topo
	Scheds []string
	Facks  []int64
	Inputs []string
	// Crashes and Overlays are the fault axes: registered crash-pattern
	// and overlay-family specs (see NewCrashes and NewOverlay). Either
	// may be empty, defaulting to {"none"} — a fault-free sweep.
	Crashes  []string
	Overlays []string
	Seeds    []int64
	// MaxEvents caps each execution; 0 means DefaultSweepMaxEvents, so
	// one non-quiescent cell cannot stall the whole grid.
	MaxEvents int
}

// DefaultSweepMaxEvents bounds each sweep execution when Grid.MaxEvents is
// zero — tighter than the simulator's own default so a non-quiescent cell
// fails fast (as a termination violation) instead of stalling the grid.
const DefaultSweepMaxEvents = 5_000_000

// CellWork is one sweep work-unit: the scenario family of one cell — every
// axis fixed except the seed — and the seeds that replicate it. Sweeps
// schedule whole cells onto workers, so one worker runs all of a cell's
// seeds back to back on one reusable engine and aggregates them in place.
type CellWork struct {
	// Base is the cell's scenario family; its Seed field is ignored.
	Base Scenario
	// Seeds is the replication axis.
	Seeds []int64
}

// Cells expands the grid into cell work-units, one per
// (algo, topo, inputs, sched, fack, crashes, overlay) combination, in
// axis-nesting order. Empty Inputs defaults to {"alternating"} and the
// empty fault axes to {"none"}; every other axis must be non-empty.
func (g Grid) Cells() ([]CellWork, error) {
	inputs := g.Inputs
	if len(inputs) == 0 {
		inputs = []string{"alternating"}
	}
	crashes := g.Crashes
	if len(crashes) == 0 {
		crashes = []string{"none"}
	}
	overlays := g.Overlays
	if len(overlays) == 0 {
		overlays = []string{"none"}
	}
	// Validate in a fixed order so the reported axis is deterministic
	// when several are empty.
	for _, axis := range []struct {
		name string
		n    int
	}{
		{"algos", len(g.Algos)},
		{"topos", len(g.Topos)},
		{"scheds", len(g.Scheds)},
		{"facks", len(g.Facks)},
		{"seeds", len(g.Seeds)},
	} {
		if axis.n == 0 {
			return nil, fmt.Errorf("harness: sweep grid has an empty %s axis", axis.name)
		}
	}
	maxEvents := g.MaxEvents
	if maxEvents == 0 {
		maxEvents = DefaultSweepMaxEvents
	}
	cells := make([]CellWork, 0, len(g.Algos)*len(g.Topos)*len(inputs)*len(g.Scheds)*len(g.Facks)*len(crashes)*len(overlays))
	for _, algo := range g.Algos {
		for _, topo := range g.Topos {
			for _, in := range inputs {
				for _, sched := range g.Scheds {
					for _, fack := range g.Facks {
						for _, crash := range crashes {
							for _, overlay := range overlays {
								cells = append(cells, CellWork{
									Base: Scenario{
										Algo: algo, Topo: topo, Inputs: in,
										Sched: sched, Fack: fack,
										Crashes: crash, Overlay: overlay,
										MaxEvents: maxEvents,
									},
									Seeds: g.Seeds,
								})
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// Scenarios expands the grid into flat scenarios — the cell work-units of
// Cells flattened with seeds innermost. Sweep re-groups flat scenarios
// into cells, so Cells plus SweepCells is the direct route.
func (g Grid) Scenarios() ([]Scenario, error) {
	cells, err := g.Cells()
	if err != nil {
		return nil, err
	}
	scs := make([]Scenario, 0, len(cells)*len(g.Seeds))
	for _, cw := range cells {
		for _, seed := range cw.Seeds {
			s := cw.Base
			s.Seed = seed
			scs = append(scs, s)
		}
	}
	return scs, nil
}

// Summary is a five-number summary of one per-cell sample.
type Summary struct {
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Mean   float64 `json:"mean"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
}

func summarize(xs []float64) Summary {
	return Summary{
		Min:    stats.Min(xs),
		Median: stats.Median(xs),
		Mean:   stats.Mean(xs),
		P95:    stats.Percentile(xs, 95),
		Max:    stats.Max(xs),
	}
}

// Cell aggregates every seed of one scenario combination.
type Cell struct {
	Algo   string `json:"algo"`
	Topo   string `json:"topo"`
	Inputs string `json:"inputs"`
	Sched  string `json:"sched"`
	// Crashes and Overlay are the cell's fault-axis specs ("none" when
	// the grid had no fault axes).
	Crashes string `json:"crashes"`
	Overlay string `json:"overlay"`
	// Fack is the requested grid-axis value; EffectiveFack is the median
	// bound the scheduler actually declared. They differ for schedulers
	// with a structural bound (edgeorder declares MaxDegree+1), which is
	// why DecidePerFack normalizes by EffectiveFack.
	Fack          int64 `json:"fack"`
	EffectiveFack int64 `json:"effective_fack"`

	// N is the node count; Diameter is the median topology diameter
	// across the cell's seeds (both are seed-independent for every
	// family except random, where per-seed graphs differ in shape).
	N        int `json:"n"`
	Diameter int `json:"diameter"`

	// Runs counts executions; Correct counts those satisfying agreement,
	// validity and termination; Undecided counts runs where no node
	// decided (those are excluded from the Decide summary).
	Runs      int `json:"runs"`
	Correct   int `json:"correct"`
	Undecided int `json:"undecided"`

	// Decide summarizes the decision latency (max decide time per run)
	// over the runs that decided; DecidePerFack normalizes its median by
	// EffectiveFack. Both are zero when every run was undecided.
	Decide        Summary `json:"decide_time"`
	DecidePerFack float64 `json:"decide_per_fack"`

	// SurvivorDecide summarizes the survivor-only decision latency (the
	// latest decision among non-crashed nodes, per run) over the runs in
	// which some survivor decided. It coincides with Decide in
	// fault-free cells and is the meaningful latency under crash
	// patterns, where Decide may count nodes that decided and then died.
	SurvivorDecide Summary `json:"survivor_decide_time"`

	// Faults summarizes the number of crashed nodes per run, and
	// FaultTerminations counts the runs that had at least one crash yet
	// every survivor still decided — the cell's
	// "termination despite faults" score.
	Faults            Summary `json:"faults"`
	FaultTerminations int     `json:"terminated_despite_faults"`

	// Broadcasts and Deliveries summarize MAC-layer message counts.
	Broadcasts Summary `json:"broadcasts"`
	Deliveries Summary `json:"deliveries"`

	// DistinctSchedules counts the distinct schedule-coverage fingerprints
	// (see sim.Fingerprinter) observed across the cell's runs — how many
	// different delivery orderings the seeds actually exercised. Zero when
	// the sweep did not ask for fingerprints (SweepOptions.Fingerprint),
	// and omitted from the JSON then, so fingerprint-free sweep output is
	// byte-identical to earlier releases.
	DistinctSchedules int `json:"distinct_schedules,omitempty"`

	// Metrics lists the cell's aggregated flight-recorder metrics (engine,
	// detector and algorithm counters summed across the cell's runs; gauge
	// high-waters maxed), sorted by name with all-zero rows dropped. Nil
	// unless the sweep asked for metrics (SweepOptions.Metrics), and
	// omitted from the JSON then, so metric-free sweep output is
	// byte-identical to earlier releases.
	Metrics []CellMetric `json:"metrics,omitempty"`

	// Errors lists distinct consensus violations observed in the cell.
	Errors []string `json:"errors,omitempty"`
}

// CellMetric is one aggregated flight-recorder metric of a cell. Counter
// rows carry Value (summed across the cell's runs); gauge rows carry the
// last run's Value plus the maximal High high-water; histogram rows carry
// the merged Count/Sum and the merged distribution's p50/p99 bucket upper
// bounds. Zero-valued fields are omitted, so each kind serializes only
// its own columns.
type CellMetric struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Value int64  `json:"value,omitempty"`
	High  int64  `json:"high,omitempty"`
	Count int64  `json:"count,omitempty"`
	Sum   int64  `json:"sum,omitempty"`
	P50   int64  `json:"p50,omitempty"`
	P99   int64  `json:"p99,omitempty"`
}

// cellMetrics converts an aggregation registry into the cell's metric
// rows: registration-sorted (by name), all-zero rows dropped — a worker's
// registry accumulates registrations across every cell it runs, so slots
// belonging to other algorithms show up zeroed here and must not render.
func cellMetrics(agg *metrics.Registry) []CellMetric {
	samples := agg.Snapshot()
	rows := make([]CellMetric, 0, len(samples))
	for _, s := range samples {
		switch s.Kind {
		case "counter":
			if s.Value == 0 {
				continue
			}
			rows = append(rows, CellMetric{Name: s.Name, Kind: s.Kind, Value: s.Value})
		case "gauge":
			if s.Value == 0 && s.High == 0 {
				continue
			}
			rows = append(rows, CellMetric{Name: s.Name, Kind: s.Kind, Value: s.Value, High: s.High})
		case "histogram":
			if s.Count == 0 {
				continue
			}
			rows = append(rows, CellMetric{Name: s.Name, Kind: s.Kind, Count: s.Count, Sum: s.Sum,
				P50: s.Quantile(50), P99: s.Quantile(99)})
		}
	}
	if len(rows) == 0 {
		return nil
	}
	return rows
}

// cellIdent is a scenario's cell identity: every axis except the seed,
// with the optional axes normalized to their defaults exactly as the cell
// reports them. It is a comparable value used directly as a map key, so
// grouping scenarios into cells renders no strings.
type cellIdent struct {
	algo             string
	topo             Topo
	inputs, sched    string
	fack             int64
	crashes, overlay string
}

func (s Scenario) cellKey() cellIdent {
	return cellIdent{algo: s.Algo, topo: s.Topo, inputs: defaulted(s.Inputs, "alternating"),
		sched: s.Sched, fack: s.Fack, crashes: defaulted(s.Crashes, "none"), overlay: defaulted(s.Overlay, "none")}
}

func defaulted(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// OK reports whether every run in the cell was correct.
func (c *Cell) OK() bool { return c.Correct == c.Runs }

// cellAccum streams one cell's outcomes into preallocated sample slices;
// finish turns them into the aggregated Cell. Outcomes must be added in
// seed order — summaries are order-insensitive, but reproducible cells
// demand a deterministic sample order.
type cellAccum struct {
	cell                           Cell
	started                        bool
	decide, broadcasts, deliveries []float64
	survivorDecide, faults         []float64
	diameters, facks               []float64
	errSeen                        map[string]bool
	fpSeen                         map[uint64]bool
}

func newCellAccum(runs int) *cellAccum {
	// One backing array for all seven sample slices: a cell's samples
	// live and die together.
	buf := make([]float64, 7*runs)
	return &cellAccum{
		decide:         buf[0*runs : 0*runs : 1*runs],
		broadcasts:     buf[1*runs : 1*runs : 2*runs],
		deliveries:     buf[2*runs : 2*runs : 3*runs],
		survivorDecide: buf[3*runs : 3*runs : 4*runs],
		faults:         buf[4*runs : 4*runs : 5*runs],
		diameters:      buf[5*runs : 5*runs : 6*runs],
		facks:          buf[6*runs : 6*runs : 7*runs],
	}
}

// add folds one outcome in; fp is the run's schedule-coverage fingerprint
// and fpOn whether fingerprints were computed at all. It reports whether
// the fingerprint was fresh for this cell (always false with fpOn unset),
// which is what the saturation early-stop counts.
func (a *cellAccum) add(o *Outcome, fp uint64, fpOn bool) bool {
	s := o.Scenario
	if !a.started {
		a.started = true
		a.cell = Cell{Algo: s.Algo, Topo: s.Topo.String(), Inputs: defaulted(s.Inputs, "alternating"),
			Sched: s.Sched, Crashes: defaulted(s.Crashes, "none"), Overlay: defaulted(s.Overlay, "none"),
			Fack: s.Fack, N: o.N}
	}
	a.cell.Runs++
	if o.OK() {
		a.cell.Correct++
	}
	for _, e := range o.Report.Errors {
		if a.errSeen == nil {
			a.errSeen = map[string]bool{}
		}
		if !a.errSeen[e] {
			a.errSeen[e] = true
			a.cell.Errors = append(a.cell.Errors, e)
		}
	}
	a.diameters = append(a.diameters, float64(o.Diameter))
	a.facks = append(a.facks, float64(o.Fack))
	if o.Result.MaxDecideTime >= 0 {
		a.decide = append(a.decide, float64(o.Result.MaxDecideTime))
	} else {
		a.cell.Undecided++
	}
	if o.Report.SurvivorDecideTime >= 0 {
		a.survivorDecide = append(a.survivorDecide, float64(o.Report.SurvivorDecideTime))
	}
	a.faults = append(a.faults, float64(o.Report.Crashed))
	if o.Report.Crashed > 0 && o.Report.Termination {
		a.cell.FaultTerminations++
	}
	a.broadcasts = append(a.broadcasts, float64(o.Result.Broadcasts))
	a.deliveries = append(a.deliveries, float64(o.Result.Deliveries))
	if !fpOn {
		return false
	}
	if a.fpSeen == nil {
		a.fpSeen = map[uint64]bool{}
	}
	if a.fpSeen[fp] {
		return false
	}
	a.fpSeen[fp] = true
	a.cell.DistinctSchedules++
	return true
}

func (a *cellAccum) finish() Cell {
	a.cell.Diameter = int(stats.Median(a.diameters))
	a.cell.EffectiveFack = int64(stats.Median(a.facks))
	a.cell.Decide = summarize(a.decide)
	if len(a.decide) > 0 && a.cell.EffectiveFack > 0 {
		a.cell.DecidePerFack = a.cell.Decide.Median / float64(a.cell.EffectiveFack)
	}
	a.cell.SurvivorDecide = summarize(a.survivorDecide)
	a.cell.Faults = summarize(a.faults)
	a.cell.Broadcasts = summarize(a.broadcasts)
	a.cell.Deliveries = summarize(a.deliveries)
	return a.cell
}

// cellGroup is the sweep-internal unit of work: one cell's scenarios (in
// seed order) plus their positions in the caller's flat scenario list, for
// error attribution.
type cellGroup struct {
	scs  []Scenario
	idxs []int
}

// groupScenarios buckets flat scenarios into cells by cell identity, in
// first-appearance order, preserving the scenario order within each cell.
func groupScenarios(scs []Scenario) []*cellGroup {
	byKey := make(map[cellIdent]*cellGroup)
	var groups []*cellGroup
	for i, s := range scs {
		k := s.cellKey()
		g, ok := byKey[k]
		if !ok {
			g = &cellGroup{}
			byKey[k] = g
			groups = append(groups, g)
		}
		g.scs = append(g.scs, s)
		g.idxs = append(g.idxs, i)
	}
	return groups
}

// FlaggedRun is one violating execution streamed out of a sweep: the
// scenario (seed included), its classification, where it sits in the
// sweep's cell list, and — when fingerprinting is on — its
// schedule-coverage fingerprint. This is the sweep→explore work item: the
// campaign layer (internal/explore.Campaign) collects flagged runs and
// turns each flagged cell into a recorded, perturbed and minimized
// counterexample instead of a buried Errors entry.
type FlaggedRun struct {
	// Cell indexes the sweep's returned cell slice.
	Cell int
	// Run is the scenario's position within its cell (seed order).
	Run int
	// Scenario is the complete violating scenario, replayable as is.
	Scenario Scenario
	// Violation classifies what broke (see consensus.Classify).
	Violation *consensus.Violation
	// Fingerprint is the run's schedule-coverage digest, 0 when the sweep
	// did not compute fingerprints.
	Fingerprint uint64
}

// SweepOptions tunes a sweep beyond the worker-pool width. The zero value
// reproduces the plain Sweep/SweepCells behaviour exactly.
type SweepOptions struct {
	// Workers is the worker-pool width (<= 0 means GOMAXPROCS).
	Workers int
	// OnFlag, when non-nil, receives every run that violates a consensus
	// property, as soon as its cell's worker classifies it. It is called
	// concurrently from worker goroutines and must be safe for that;
	// cross-cell ordering follows worker scheduling, so deterministic
	// consumers sort by (Cell, Run) — both are deterministic identities.
	OnFlag func(FlaggedRun)
	// Fingerprint computes a schedule-coverage fingerprint per run (one
	// sim.Fingerprinter wrapper per execution) and reports the number of
	// distinct fingerprints per cell in Cell.DistinctSchedules. Off by
	// default: the sweep hot path is allocation-identical to a build
	// without the feature when unset.
	Fingerprint bool
	// SaturateAfter stops a cell's seed loop early once that many
	// consecutive seeds produced no new fingerprint — the cell's schedule
	// coverage has saturated, so further seeds would re-measure the same
	// executions. Cell.Runs then reports how many seeds actually ran.
	// 0 means never stop early; setting it implies Fingerprint.
	SaturateAfter int
	// Metrics installs a per-worker metrics.Registry on every run and
	// aggregates each cell's values into Cell.Metrics (counters sum across
	// seeds, gauge high-waters max, histograms merge bucket-wise). Off by
	// default: an unset flag hands the engine a nil registry — disabled
	// handles all the way down — and the sweep hot path stays
	// allocation-identical to a build without the feature.
	Metrics bool
}

func (o SweepOptions) normalized() SweepOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.SaturateAfter > 0 {
		o.Fingerprint = true
	}
	return o
}

// Sweep runs every scenario on a worker pool of the given width (<= 0
// means GOMAXPROCS) and aggregates outcomes into cells, one per distinct
// (algo, topo, inputs, sched, fack, crashes, overlay) combination, in
// first-appearance order. Scenarios are grouped into cells first and
// whole cells are scheduled onto workers: each worker reuses one engine
// across the seeds of a cell, and all workers share memoized topology,
// diameter, overlay and input caches. Scenario construction errors abort
// the sweep; consensus violations do not — they are reported per cell
// (and streamed to SweepOptions.OnFlag, via SweepCellsOpts).
func Sweep(scs []Scenario, workers int) ([]Cell, error) {
	return sweepGroups(groupScenarios(scs), SweepOptions{Workers: workers})
}

// SweepCells runs cell work-units (see Grid.Cells) directly, one unit per
// worker-pool task. It is Sweep without the flat-scenario detour: cells
// come in already grouped, so nothing is re-keyed — which is why two
// work-units sharing a cell identity are rejected rather than silently
// emitted as duplicate rows (flatten to Sweep when merging is wanted).
func SweepCells(cells []CellWork, workers int) ([]Cell, error) {
	return SweepCellsOpts(cells, SweepOptions{Workers: workers})
}

// SweepCellsOpts is SweepCells with the full option set: flagged-run
// streaming, schedule-coverage fingerprints and coverage saturation.
func SweepCellsOpts(cells []CellWork, opts SweepOptions) ([]Cell, error) {
	seen := make(map[cellIdent]bool, len(cells))
	for _, cw := range cells {
		if len(cw.Seeds) == 0 {
			return nil, fmt.Errorf("harness: cell %s on %s under %s has no seeds", cw.Base.Algo, cw.Base.Topo, cw.Base.Sched)
		}
		k := cw.Base.cellKey()
		if seen[k] {
			return nil, fmt.Errorf("harness: duplicate cell %s on %s under %s (crashes %s, overlay %s, Fack %d): merge the work-units or sweep flat scenarios",
				k.algo, k.topo, k.sched, k.crashes, k.overlay, k.fack)
		}
		seen[k] = true
	}
	groups := make([]*cellGroup, len(cells))
	idx := 0
	for i, cw := range cells {
		g := &cellGroup{scs: make([]Scenario, len(cw.Seeds)), idxs: make([]int, len(cw.Seeds))}
		for j, seed := range cw.Seeds {
			s := cw.Base
			s.Seed = seed
			g.scs[j] = s
			g.idxs[j] = idx
			idx++
		}
		groups[i] = g
	}
	return sweepGroups(groups, opts)
}

func sweepGroups(groups []*cellGroup, opts SweepOptions) ([]Cell, error) {
	opts = opts.normalized()
	type cellErr struct {
		idx int // scenario index, for deterministic error attribution
		sc  Scenario
		err error
	}
	cells := make([]Cell, len(groups))
	errs := make([]cellErr, len(groups))
	shared := newCaches()
	// Buffered so the producer never blocks and workers never serialize
	// on an unbuffered handoff.
	work := make(chan int, len(groups))
	for i := range groups {
		work <- i
	}
	close(work)
	// Captured as individual locals, not via opts, so the options struct
	// does not escape into the worker closures (the plain sweep path's
	// allocation count is pinned by BENCH_engine.json).
	fingerprint, onFlag, saturateAfter, metricsOn := opts.Fingerprint, opts.OnFlag, opts.SaturateAfter, opts.Metrics
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &runner{caches: shared}
			// One registry per worker, reset by the engine each run; its
			// registrations persist across the worker's cells (they can
			// include other algorithms' slots from earlier cells), which is
			// why cellMetrics drops all-zero rows.
			var reg *metrics.Registry
			if metricsOn {
				reg = metrics.New()
			}
			for gi := range work {
				g := groups[gi]
				acc := newCellAccum(len(g.scs))
				var cellAgg *metrics.Registry
				if metricsOn {
					cellAgg = metrics.New()
				}
				ok := true
				stale := 0
				for k, s := range g.scs {
					o, fp, err := r.run(s, fingerprint, reg)
					if err != nil {
						errs[gi] = cellErr{idx: g.idxs[k], sc: s, err: err}
						ok = false
						break
					}
					cellAgg.Merge(reg)
					fresh := acc.add(o, fp, fingerprint)
					if onFlag != nil {
						if v := o.Violation(); v != nil {
							onFlag(FlaggedRun{Cell: gi, Run: k, Scenario: s, Violation: v, Fingerprint: fp})
						}
					}
					if saturateAfter > 0 {
						if fresh {
							stale = 0
						} else if stale++; stale >= saturateAfter {
							// Coverage saturated: the remaining seeds would
							// almost surely re-exercise known orderings.
							break
						}
					}
				}
				if ok {
					cells[gi] = acc.finish()
					if metricsOn {
						cells[gi].Metrics = cellMetrics(cellAgg)
					}
				}
			}
		}()
	}
	wg.Wait()
	// Report the error of the lowest-index scenario, so failures are
	// attributed deterministically regardless of worker scheduling.
	first := -1
	for gi := range errs {
		if errs[gi].err != nil && (first < 0 || errs[gi].idx < errs[first].idx) {
			first = gi
		}
	}
	if first >= 0 {
		e := errs[first]
		return nil, fmt.Errorf("scenario %d (%s on %s under %s): %w", e.idx, e.sc.Algo, e.sc.Topo, e.sc.Sched, e.err)
	}
	return cells, nil
}

// Report writes the cells to w — an indented JSON array when jsonOut,
// an aligned text table otherwise — and returns how many cells contain
// consensus violations. It is the shared output path of `amacsim -sweep`
// and `benchsuite -grid`.
func Report(w io.Writer, cells []Cell, jsonOut bool) (bad int, err error) {
	if jsonOut {
		err = WriteJSON(w, cells)
	} else {
		_, err = io.WriteString(w, Table(cells).Render())
	}
	for i := range cells {
		if !cells[i].OK() {
			bad++
		}
	}
	return bad, err
}

// WriteJSON emits the cells as an indented JSON array (the `amacsim -sweep
// -json` output format).
func WriteJSON(w io.Writer, cells []Cell) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cells)
}

// Table renders the cells as a plain-text table. The fault columns report
// the median crashed-node count, the survivor-only decision latency and
// how many faulty runs still terminated (see Cell).
func Table(cells []Cell) *stats.Table {
	t := &stats.Table{Columns: []string{
		"algo", "topo", "inputs", "sched", "crashes", "overlay", "Fack", "n", "D",
		"runs", "ok", "decide med", "decide p95", "decide/Fack",
		"faults med", "sdecide med", "term+faults", "bcast med", "deliv med",
	}}
	for _, c := range cells {
		ok := fmt.Sprintf("%d/%d", c.Correct, c.Runs)
		fack := fmt.Sprint(c.Fack)
		if c.EffectiveFack != c.Fack {
			// Structural schedulers override the requested bound.
			fack = fmt.Sprintf("%d>%d", c.Fack, c.EffectiveFack)
		}
		t.AddRow(c.Algo, c.Topo, c.Inputs, c.Sched, c.Crashes, c.Overlay, fack, c.N, c.Diameter,
			c.Runs, ok, c.Decide.Median, c.Decide.P95, c.DecidePerFack,
			c.Faults.Median, c.SurvivorDecide.Median, c.FaultTerminations,
			c.Broadcasts.Median, c.Deliveries.Median)
	}
	return t
}
