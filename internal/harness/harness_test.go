package harness

import (
	"reflect"
	"testing"

	"github.com/absmac/absmac/internal/amac"
)

func TestRegistriesCoverSeedNames(t *testing.T) {
	for _, algo := range []string{"twophase", "wpaxos", "floodpaxos", "gatherall", "benor", "anonflood", "waitall"} {
		if _, err := NewFactory(algo, 4, 1); err != nil {
			t.Errorf("algorithm %q not registered: %v", algo, err)
		}
	}
	for _, sched := range []string{"sync", "random", "maxdelay", "edgeorder"} {
		tp := Topo{Kind: "clique", N: 4}
		g, err := tp.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewScheduler(sched, 4, 1, g); err != nil {
			t.Errorf("scheduler %q not registered: %v", sched, err)
		}
	}
	for _, pattern := range []string{"alternating", "zeros", "ones", "half"} {
		if _, err := NewInputs(pattern, 4); err != nil {
			t.Errorf("input pattern %q not registered: %v", pattern, err)
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	if _, err := NewFactory("nope", 4, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	g, _ := Topo{Kind: "clique", N: 4}.Build(1)
	if _, err := NewScheduler("nope", 4, 1, g); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if _, err := NewScheduler("random", 0, 1, g); err == nil {
		t.Error("Fack=0 accepted")
	}
	if _, err := NewInputs("nope", 4); err == nil {
		t.Error("unknown input pattern accepted")
	}
}

func TestInputPatterns(t *testing.T) {
	cases := map[string][]amac.Value{
		"alternating": {0, 1, 0, 1},
		"zeros":       {0, 0, 0, 0},
		"ones":        {1, 1, 1, 1},
		"half":        {0, 0, 1, 1},
	}
	for pattern, want := range cases {
		got, err := NewInputs(pattern, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("pattern %q: got %v, want %v", pattern, got, want)
		}
	}
	// The empty pattern defaults to alternating.
	got, err := NewInputs("", 4)
	if err != nil || !reflect.DeepEqual(got, cases["alternating"]) {
		t.Errorf("empty pattern: got %v, %v", got, err)
	}
}

func TestParseTopoRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"clique:8", "line:5", "ring:6", "star:7",
		"grid:3x4", "tree:2x3", "starlines:4x2", "random:12:0.1",
		"expander:16:4", "pods:4:5:2",
	} {
		tp, err := ParseTopo(spec)
		if err != nil {
			t.Fatalf("ParseTopo(%q): %v", spec, err)
		}
		if tp.String() != spec {
			t.Errorf("round trip %q -> %q", spec, tp.String())
		}
		if _, err := tp.Build(1); err != nil {
			t.Errorf("Build(%q): %v", spec, err)
		}
	}
}

func TestParseTopoErrors(t *testing.T) {
	for _, spec := range []string{
		"", "clique", "clique:", "clique:x", "clique:3:4",
		"grid:3", "grid:3x", "grid:ax2", "tree:22", "random:5", "random:5:x", "mesh:4",
		"expander:16", "expander:16:x", "expander:16:4:2", "pods:4:5", "pods:4:5:x", "pods:a:5:2",
	} {
		if _, err := ParseTopo(spec); err == nil {
			t.Errorf("ParseTopo(%q) accepted", spec)
		}
	}
}

func TestTopoBuildErrors(t *testing.T) {
	for _, tp := range []Topo{
		{Kind: "clique", N: 0},
		{Kind: "ring", N: 2},
		{Kind: "grid", Rows: 0, Cols: 3},
		{Kind: "tree", Branch: 0, Depth: 2},
		{Kind: "starlines", Arms: 0, ArmLen: 1},
		{Kind: "random", N: 4, P: 1.5},
		{Kind: "expander", N: 8, Deg: 2}, // d < 3
		{Kind: "expander", N: 5, Deg: 3}, // n*d odd
		{Kind: "expander", N: 4, Deg: 4}, // d >= n
		{Kind: "pods", Pods: 0, PodSize: 3, Cross: 1},
		{Kind: "pods", Pods: 3, PodSize: 4, Cross: 0}, // p > 1 needs cross links
		{Kind: "nope", N: 4},
	} {
		if _, err := tp.Build(1); err == nil {
			t.Errorf("Build(%+v) accepted", tp)
		}
	}
}

// TestEveryFamilyAdjacencyConsistent builds one small instance of every
// registered topology family and cross-checks the CSR representation
// against itself: rows symmetric and duplicate-free, degrees and edge
// count consistent, HasEdge agreeing with row membership on every pair.
// This is the representation-equivalence guard for the flat CSR storage —
// any divergence between the packed rows, the degree counters and the
// edge set shows up here for every family at once.
func TestEveryFamilyAdjacencyConsistent(t *testing.T) {
	specs := map[string]string{
		"clique":    "clique:6",
		"expander":  "expander:12:3",
		"grid":      "grid:3x4",
		"line":      "line:7",
		"pods":      "pods:3:4:2",
		"random":    "random:10:0.2",
		"ring":      "ring:6",
		"star":      "star:6",
		"starlines": "starlines:3x2",
		"tree":      "tree:2x2",
	}
	for _, kind := range Topologies() {
		spec, ok := specs[kind]
		if !ok {
			t.Errorf("registered family %q has no consistency spec; add one", kind)
			continue
		}
		tp, err := ParseTopo(spec)
		if err != nil {
			t.Fatalf("ParseTopo(%q): %v", spec, err)
		}
		g, err := tp.Build(3)
		if err != nil {
			t.Fatalf("Build(%q): %v", spec, err)
		}
		n := g.N()
		edges := 0
		for u := 0; u < n; u++ {
			row := g.Neighbors(u)
			if len(row) != g.Degree(u) {
				t.Errorf("%s: node %d row length %d != degree %d", spec, u, len(row), g.Degree(u))
			}
			seen := map[int]bool{}
			for _, v := range row {
				if v == u || v < 0 || v >= n {
					t.Errorf("%s: node %d row holds invalid neighbor %d", spec, u, v)
				}
				if seen[v] {
					t.Errorf("%s: node %d row repeats neighbor %d", spec, u, v)
				}
				seen[v] = true
				edges++
			}
			for v := 0; v < n; v++ {
				if g.HasEdge(u, v) != seen[v] {
					t.Errorf("%s: HasEdge(%d,%d) = %v disagrees with row membership", spec, u, v, g.HasEdge(u, v))
				}
			}
		}
		if edges != 2*g.M() {
			t.Errorf("%s: row entries %d != 2*M = %d (asymmetric rows)", spec, edges, 2*g.M())
		}
	}

	// The ring keeps its legacy insertion-order rows (node n-1 closes the
	// cycle last, so its row is [n-2, 0]): the random scheduler draws
	// per-neighbor delivery times by row index, and the golden grid pins
	// executions on ring:5. This assertion fails loudly if anyone "fixes"
	// the ring to sorted rows.
	ring, err := Topo{Kind: "ring", N: 5}.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ring.Neighbors(4); !reflect.DeepEqual(got, []int{3, 0}) {
		t.Errorf("ring:5 node 4 row = %v, want legacy insertion order [3 0] (golden grid depends on it)", got)
	}
}

func TestTopoJSONTextForm(t *testing.T) {
	tp := Topo{Kind: "grid", Rows: 3, Cols: 4}
	b, err := tp.MarshalText()
	if err != nil || string(b) != "grid:3x4" {
		t.Fatalf("MarshalText: %q, %v", b, err)
	}
	var back Topo
	if err := back.UnmarshalText(b); err != nil || back != tp {
		t.Fatalf("UnmarshalText: %+v, %v", back, err)
	}
	if err := back.UnmarshalText([]byte("junk")); err == nil {
		t.Fatal("UnmarshalText accepted junk")
	}
}

func TestScenarioConfigErrors(t *testing.T) {
	base := Scenario{Algo: "wpaxos", Topo: Topo{Kind: "clique", N: 4}, Sched: "sync", Fack: 4, Seed: 1}
	bad := []Scenario{
		func() Scenario { s := base; s.Algo = "nope"; return s }(),
		func() Scenario { s := base; s.Sched = "nope"; return s }(),
		func() Scenario { s := base; s.Fack = 0; return s }(),
		func() Scenario { s := base; s.Topo = Topo{Kind: "nope"}; return s }(),
		func() Scenario { s := base; s.Inputs = "nope"; return s }(),
		func() Scenario { s := base; s.InputValues = []amac.Value{0, 1}; return s }(),
		func() Scenario { s := base; s.InputValues = []amac.Value{0, 1, 2, 1}; return s }(),
	}
	for i, s := range bad {
		if _, err := s.Config(); err == nil {
			t.Errorf("case %d: invalid scenario accepted", i)
		}
	}
	if _, err := base.Config(); err != nil {
		t.Fatalf("base scenario rejected: %v", err)
	}
}

// TestDefeatedBaselineRegistration: the two baselines the paper's lower
// bounds defeat still satisfy the registry contract — with the universal
// diameter bound n-1 they are correct on crash-free reliable executions —
// so sweeps can now cover every implemented algorithm.
func TestDefeatedBaselineRegistration(t *testing.T) {
	for _, algo := range []string{"anonflood", "waitall"} {
		for _, topo := range []Topo{{Kind: "clique", N: 6}, {Kind: "line", N: 5}} {
			for _, sched := range []string{"sync", "random"} {
				out, err := Scenario{Algo: algo, Topo: topo, Sched: sched, Fack: 3, Seed: 2}.Run()
				if err != nil {
					t.Fatalf("%s on %s under %s: %v", algo, topo, sched, err)
				}
				if !out.OK() {
					t.Errorf("%s on %s under %s: %v", algo, topo, sched, out.Report.Errors)
				}
			}
		}
	}
}

// TestScenarioDeterminism is the harness round-trip guard: the same
// Scenario must yield identical results across two independent runs —
// every timing and message count, not just the decision.
func TestScenarioDeterminism(t *testing.T) {
	scenarios := []Scenario{
		{Algo: "twophase", Topo: Topo{Kind: "clique", N: 6}, Sched: "random", Fack: 7, Seed: 3},
		{Algo: "wpaxos", Topo: Topo{Kind: "grid", Rows: 3, Cols: 3}, Sched: "random", Fack: 4, Seed: 9},
		{Algo: "benor", Topo: Topo{Kind: "clique", N: 5}, Sched: "random", Fack: 3, Seed: 11},
		{Algo: "floodpaxos", Topo: Topo{Kind: "random", N: 10, P: 0.2}, Sched: "maxdelay", Fack: 5, Seed: 4},
	}
	for _, sc := range scenarios {
		a, err := sc.Run()
		if err != nil {
			t.Fatalf("%s on %s: %v", sc.Algo, sc.Topo, err)
		}
		b, err := sc.Run()
		if err != nil {
			t.Fatalf("%s on %s: %v", sc.Algo, sc.Topo, err)
		}
		if !a.OK() {
			t.Errorf("%s on %s: consensus violated: %v", sc.Algo, sc.Topo, a.Report.Errors)
		}
		if !reflect.DeepEqual(a.Result, b.Result) {
			t.Errorf("%s on %s seed %d: two runs of the same scenario differ", sc.Algo, sc.Topo, sc.Seed)
		}
	}
}
