package harness

import (
	"reflect"
	"testing"

	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

func TestNewCrashesPatterns(t *testing.T) {
	cases := []struct {
		spec string
		want []sim.Crash
	}{
		{"", nil},
		{"none", nil},
		{"one@0", []sim.Crash{{Node: 7, At: 0}}},
		{"one@13", []sim.Crash{{Node: 7, At: 13}}},
		{"maxid@0", []sim.Crash{{Node: 7, At: 0}}},
		{"maxid@13", []sim.Crash{{Node: 7, At: 13}}},
		{"coordinator", []sim.Crash{{Node: 0, At: 4}}},
		{"midbroadcast", []sim.Crash{{Node: 0, At: 2}}},
	}
	for _, tc := range cases {
		got, err := NewCrashes(tc.spec, 8, 4, 1)
		if err != nil {
			t.Fatalf("NewCrashes(%q): %v", tc.spec, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("NewCrashes(%q) = %v, want %v", tc.spec, got, tc.want)
		}
	}
	// midbroadcast clamps into the first window even for Fack=1.
	got, err := NewCrashes("midbroadcast", 4, 1, 1)
	if err != nil || len(got) != 1 || got[0].At != 1 {
		t.Fatalf("midbroadcast at Fack=1: %v, %v", got, err)
	}
}

func TestNewCrashesMinorityRand(t *testing.T) {
	const n, fack = 9, 4
	a, err := NewCrashes("minorityrand", n, fack, 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := (n - 1) / 2; len(a) != want {
		t.Fatalf("minorityrand crashed %d nodes, want %d", len(a), want)
	}
	seen := map[int]bool{}
	for _, c := range a {
		if c.Node < 0 || c.Node >= n || seen[c.Node] {
			t.Fatalf("bad or duplicate crash node in %v", a)
		}
		seen[c.Node] = true
		if c.At < 0 || c.At > 4*fack {
			t.Fatalf("crash time %d outside [0, %d]", c.At, 4*fack)
		}
	}
	b, _ := NewCrashes("minorityrand", n, fack, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("minorityrand is not deterministic for a fixed seed")
	}
	c, _ := NewCrashes("minorityrand", n, fack, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("minorityrand ignores the seed")
	}
	// A 1- or 2-node network has no crashable minority.
	if got, _ := NewCrashes("minorityrand", 2, fack, 7); len(got) != 0 {
		t.Fatalf("minorityrand on n=2 crashed %v", got)
	}
}

func TestNewCrashesErrors(t *testing.T) {
	for _, spec := range []string{
		"nope", "one", "one@", "one@x", "one@-3", "maxid", "maxid@", "maxid@-1",
		"coordinator@2", "none@1", "minorityrand@5",
	} {
		if _, err := NewCrashes(spec, 8, 4, 1); err == nil {
			t.Errorf("NewCrashes(%q) accepted", spec)
		}
	}
}

func TestNewOverlayFamilies(t *testing.T) {
	base := graph.Ring(10)

	o, p, err := NewOverlay("", base, 1)
	if err != nil || o != nil || p != DefaultOverlayDeliverP {
		t.Fatalf("empty spec: %v, %v, %v", o, p, err)
	}

	o, p, err = NewOverlay("chords@0.8", base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.8 {
		t.Fatalf("delivery probability %v, want 0.8", p)
	}
	if o.M() != 5 {
		t.Fatalf("ring:10 chords overlay has %d edges, want 5 antipodal chords", o.M())
	}

	o, _, err = NewOverlay("extra:7", base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if o.M() != 7 {
		t.Fatalf("extra:7 overlay has %d edges", o.M())
	}

	// randomextra:1 must take every non-edge; randomextra:0 none.
	o, _, err = NewOverlay("randomextra:1", base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := 10*9/2 - base.M(); o.M() != want {
		t.Fatalf("randomextra:1 overlay has %d edges, want all %d non-edges", o.M(), want)
	}
	o, _, err = NewOverlay("randomextra:0", base, 3)
	if err != nil || o.M() != 0 {
		t.Fatalf("randomextra:0: %d edges, %v", o.M(), err)
	}

	// Every family is edge-disjoint from the base.
	for _, spec := range []string{"chords", "extra:5", "randomextra:0.5"} {
		o, _, err := NewOverlay(spec, base, 9)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		for u := 0; u < base.N(); u++ {
			for _, v := range o.Neighbors(u) {
				if base.HasEdge(u, v) {
					t.Fatalf("%s: edge {%d,%d} overlaps the base", spec, u, v)
				}
			}
		}
	}

	// Determinism per seed.
	a, _, _ := NewOverlay("randomextra:0.4", base, 5)
	b, _, _ := NewOverlay("randomextra:0.4", base, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("overlay construction is not deterministic for a fixed seed")
	}
}

func TestNewOverlayErrors(t *testing.T) {
	base := graph.Ring(6)
	for _, spec := range []string{
		"nope", "randomextra", "randomextra:x", "randomextra:1.5", "extra:-1", "extra:x",
		"chords:3", "none:1", "chords@x", "chords@1.5", "chords@-0.1",
	} {
		if _, _, err := NewOverlay(spec, base, 1); err == nil {
			t.Errorf("NewOverlay(%q) accepted", spec)
		}
	}
}

// TestScenarioConfigWiresAdversity pins the assembly: a scenario naming a
// crash pattern and an overlay produces a config with the crash schedule,
// the unreliable dual graph, and a lossy scheduler wrapper.
func TestScenarioConfigWiresAdversity(t *testing.T) {
	sc := Scenario{
		Algo: "wpaxos", Topo: Topo{Kind: "ring", N: 8}, Sched: "random",
		Fack: 4, Seed: 2, Crashes: "midbroadcast", Overlay: "chords@0.7",
	}
	cfg, err := sc.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.Crashes, []sim.Crash{{Node: 0, At: 2}}) {
		t.Fatalf("crashes %v", cfg.Crashes)
	}
	if cfg.Unreliable == nil || cfg.Unreliable.M() != 4 {
		t.Fatalf("unreliable graph %+v, want the 4 antipodal chords of ring:8", cfg.Unreliable)
	}
	lossy, ok := cfg.Scheduler.(*sim.Lossy)
	if !ok {
		t.Fatalf("scheduler %T, want *sim.Lossy wrapping the base", cfg.Scheduler)
	}
	if lossy.P != 0.7 {
		t.Fatalf("lossy delivery probability %v, want 0.7", lossy.P)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("assembled adversity config invalid: %v", err)
	}

	// No overlay: no lossy wrapper.
	sc.Overlay = ""
	cfg, err = sc.Config()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg.Scheduler.(*sim.Lossy); ok {
		t.Fatal("overlay-free scenario got a lossy scheduler")
	}
	if cfg.Unreliable != nil {
		t.Fatal("overlay-free scenario got an unreliable graph")
	}
}

func TestScenarioAdversityErrors(t *testing.T) {
	base := Scenario{Algo: "wpaxos", Topo: Topo{Kind: "clique", N: 4}, Sched: "sync", Fack: 4, Seed: 1}
	bad := []Scenario{
		func() Scenario { s := base; s.Crashes = "nope"; return s }(),
		func() Scenario { s := base; s.Crashes = "one"; return s }(),
		func() Scenario { s := base; s.Overlay = "nope"; return s }(),
		func() Scenario { s := base; s.Overlay = "randomextra:2"; return s }(),
	}
	for i, s := range bad {
		if _, err := s.Config(); err == nil {
			t.Errorf("case %d: invalid adversity scenario accepted", i)
		}
	}
}

// TestScenarioRunUnderAdversity runs a crash-tolerant algorithm under a
// crash pattern plus overlay and checks the survivor-aware report: the
// crash count lands in the report, survivors decide, and the run is
// correct despite the fault.
func TestScenarioRunUnderAdversity(t *testing.T) {
	out, err := Scenario{
		Algo: "wpaxos", Topo: Topo{Kind: "clique", N: 8}, Sched: "random",
		Fack: 4, Seed: 3, Crashes: "coordinator",
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("wpaxos under a coordinator crash violated consensus: %v", out.Report.Errors)
	}
	if out.Report.Crashed != 1 {
		t.Fatalf("crashed %d, want 1", out.Report.Crashed)
	}
	if out.Report.SurvivorDecideTime < 0 {
		t.Fatal("no survivor decision recorded")
	}
	if !out.Result.Crashed[0] {
		t.Fatal("coordinator (node 0) not crashed")
	}
}

func TestGridFaultAxes(t *testing.T) {
	g := Grid{
		Algos:    []string{"wpaxos"},
		Topos:    []Topo{{Kind: "clique", N: 6}},
		Scheds:   []string{"random"},
		Facks:    []int64{4},
		Crashes:  []string{"none", "coordinator"},
		Overlays: []string{"none", "extra:2"},
		Seeds:    []int64{1, 2, 3},
	}
	scs, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 3; len(scs) != want {
		t.Fatalf("expanded %d scenarios, want %d", len(scs), want)
	}
	// Seeds remain the innermost axis.
	if scs[0].Seed == scs[1].Seed || scs[0].Crashes != scs[1].Crashes || scs[0].Overlay != scs[1].Overlay {
		t.Fatalf("seed is not the innermost axis: %+v then %+v", scs[0], scs[1])
	}

	cells, err := Sweep(scs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("%d cells, want 4 (2 crash x 2 overlay)", len(cells))
	}
	for _, c := range cells {
		if c.Runs != 3 {
			t.Errorf("cell %s/%s: %d runs, want 3", c.Crashes, c.Overlay, c.Runs)
		}
		if !c.OK() {
			t.Errorf("cell %s/%s: %v", c.Crashes, c.Overlay, c.Errors)
		}
		switch c.Crashes {
		case "none":
			if c.Faults.Max != 0 || c.FaultTerminations != 0 {
				t.Errorf("fault-free cell reports faults: %+v", c)
			}
			if c.SurvivorDecide != c.Decide {
				t.Errorf("fault-free cell: survivor latency %+v differs from %+v", c.SurvivorDecide, c.Decide)
			}
		case "coordinator":
			if c.Faults.Median != 1 {
				t.Errorf("coordinator cell: faults median %v, want 1", c.Faults.Median)
			}
			if c.FaultTerminations != c.Runs {
				t.Errorf("coordinator cell: %d/%d runs terminated despite faults", c.FaultTerminations, c.Runs)
			}
			if c.SurvivorDecide.Median <= 0 {
				t.Errorf("coordinator cell: empty survivor latency %+v", c.SurvivorDecide)
			}
		}
	}
}
