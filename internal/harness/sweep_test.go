package harness

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/sim"
)

func testGrid() Grid {
	return Grid{
		Algos:  []string{"wpaxos", "gatherall"},
		Topos:  []Topo{{Kind: "clique", N: 6}, {Kind: "line", N: 5}},
		Scheds: []string{"sync", "random"},
		Facks:  []int64{2, 5},
		Seeds:  []int64{1, 2, 3},
	}
}

func TestGridExpansion(t *testing.T) {
	g := testGrid()
	scs, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2 * 2 * 3; len(scs) != want {
		t.Fatalf("expanded %d scenarios, want %d", len(scs), want)
	}
	// Seeds vary fastest: consecutive scenarios within a cell differ only
	// in seed.
	if scs[0].Seed == scs[1].Seed || scs[0].Algo != scs[1].Algo || scs[0].Fack != scs[1].Fack {
		t.Fatalf("seed is not the innermost axis: %+v then %+v", scs[0], scs[1])
	}
}

// TestGridEmptyAxisDeterministicError pins the validation order: with
// several axes empty the reported axis is always the first in the fixed
// algos/topos/scheds/facks/seeds order (the old map iteration made it
// random).
func TestGridEmptyAxisDeterministicError(t *testing.T) {
	for i := 0; i < 20; i++ {
		_, err := Grid{Seeds: []int64{1}}.Scenarios()
		if err == nil {
			t.Fatal("grid with empty axes accepted")
		}
		if want := "empty algos axis"; !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name the first empty axis (%q)", err, want)
		}
	}
}

// TestGridCellsMatchScenarios pins that the cell work-units are exactly
// the flat expansion regrouped: flattening Cells with seeds innermost
// reproduces Scenarios.
func TestGridCellsMatchScenarios(t *testing.T) {
	g := testGrid()
	g.Crashes = []string{"none", "one@0"}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	scs, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	var flat []Scenario
	for _, cw := range cells {
		if len(cw.Seeds) != len(g.Seeds) {
			t.Fatalf("cell %+v has %d seeds, want %d", cw.Base, len(cw.Seeds), len(g.Seeds))
		}
		for _, seed := range cw.Seeds {
			s := cw.Base
			s.Seed = seed
			flat = append(flat, s)
		}
	}
	if !reflect.DeepEqual(flat, scs) {
		t.Fatal("flattened cells differ from the scenario expansion")
	}
	// And the two sweep entry points agree on the result.
	fromCells, err := SweepCells(cells, 2)
	if err != nil {
		t.Fatal(err)
	}
	fromFlat, err := Sweep(scs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromCells, fromFlat) {
		t.Fatal("SweepCells and Sweep disagree on the same grid")
	}
}

// TestSweepCellsRejectsMalformedWork pins SweepCells' validation: cells
// without seeds and duplicate cell identities fail loudly instead of
// producing empty-but-OK or duplicate rows.
func TestSweepCellsRejectsMalformedWork(t *testing.T) {
	base := Scenario{Algo: "twophase", Topo: Topo{Kind: "clique", N: 4}, Sched: "sync", Fack: 2}
	if _, err := SweepCells([]CellWork{{Base: base}}, 1); err == nil || !strings.Contains(err.Error(), "no seeds") {
		t.Fatalf("seedless cell accepted (err=%v)", err)
	}
	dup := []CellWork{
		{Base: base, Seeds: []int64{1}},
		{Base: base, Seeds: []int64{2}},
	}
	if _, err := SweepCells(dup, 1); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Fatalf("duplicate cell identity accepted (err=%v)", err)
	}
}

func TestGridEmptyAxis(t *testing.T) {
	g := testGrid()
	g.Facks = nil
	if _, err := g.Scenarios(); err == nil {
		t.Fatal("empty Facks axis accepted")
	}
	// Inputs is the one axis allowed to be empty (defaults to alternating).
	g = testGrid()
	g.Inputs = nil
	scs, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if scs[0].Inputs != "alternating" {
		t.Fatalf("default input pattern %q, want alternating", scs[0].Inputs)
	}
}

func TestSweepAggregation(t *testing.T) {
	scs, err := testGrid().Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Sweep(scs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2 * 2; len(cells) != want {
		t.Fatalf("%d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Runs != 3 {
			t.Errorf("cell %s/%s/%s: %d runs, want 3 (one per seed)", c.Algo, c.Topo, c.Sched, c.Runs)
		}
		if !c.OK() {
			t.Errorf("cell %s/%s/%s: %d/%d correct: %v", c.Algo, c.Topo, c.Sched, c.Correct, c.Runs, c.Errors)
		}
		if c.N == 0 || c.Decide.Median <= 0 || c.Broadcasts.Median <= 0 {
			t.Errorf("cell %s/%s/%s: empty aggregates %+v", c.Algo, c.Topo, c.Sched, c)
		}
		if c.Decide.Min > c.Decide.Median || c.Decide.Median > c.Decide.Max {
			t.Errorf("cell %s/%s/%s: summary out of order %+v", c.Algo, c.Topo, c.Sched, c.Decide)
		}
	}
	// First-appearance order follows the expansion order.
	if cells[0].Algo != scs[0].Algo || cells[0].Topo != scs[0].Topo.String() {
		t.Errorf("cell order does not follow scenario order: %+v vs %+v", cells[0], scs[0])
	}
}

// TestSweepParallelMatchesSerial proves the worker pool does not leak
// nondeterminism into results: one worker and many workers produce
// identical cells.
func TestSweepParallelMatchesSerial(t *testing.T) {
	scs, err := testGrid().Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Sweep(scs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(scs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel sweep differs from serial sweep")
	}
}

func TestSweepScenarioError(t *testing.T) {
	scs := []Scenario{{Algo: "nope", Topo: Topo{Kind: "clique", N: 4}, Sched: "sync", Fack: 2, Seed: 1}}
	if _, err := Sweep(scs, 2); err == nil {
		t.Fatal("sweep accepted an invalid scenario")
	}
}

func TestWriteJSON(t *testing.T) {
	scs, err := Grid{
		Algos:  []string{"twophase"},
		Topos:  []Topo{{Kind: "clique", N: 4}},
		Scheds: []string{"random"},
		Facks:  []int64{3},
		Seeds:  []int64{1, 2},
	}.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Sweep(scs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, cells); err != nil {
		t.Fatal(err)
	}
	var back []Cell
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("sweep JSON does not round-trip: %v", err)
	}
	if !reflect.DeepEqual(back, cells) {
		t.Fatal("JSON round trip changed the cells")
	}
	if back[0].Topo != "clique:4" {
		t.Fatalf("topology serialized as %q, want compact grammar", back[0].Topo)
	}
}

// TestCellAccumUndecided feeds the streaming accumulator a hand-built mix
// of decided and undecided outcomes: the -1 "nobody decided" sentinel must
// not leak into the latency summary, and the cell must count the undecided
// runs.
func TestCellAccumUndecided(t *testing.T) {
	sc := Scenario{Algo: "twophase", Topo: Topo{Kind: "clique", N: 2}, Sched: "sync", Fack: 2}
	mk := func(decideTime int64, terminated bool) *Outcome {
		rep := &consensus.Report{Agreement: true, Validity: true, Termination: terminated}
		if !terminated {
			rep.Errors = []string{"termination violated"}
		}
		return &Outcome{
			Scenario: sc,
			Result:   &sim.Result{MaxDecideTime: decideTime},
			Report:   rep,
			N:        2, Diameter: 1, Fack: 2,
		}
	}
	acc := newCellAccum(3)
	for _, o := range []*Outcome{mk(10, true), mk(-1, false), mk(20, true)} {
		acc.add(o, 0, false)
	}
	c := acc.finish()
	if c.Runs != 3 || c.Correct != 2 || c.Undecided != 1 {
		t.Fatalf("runs/correct/undecided = %d/%d/%d, want 3/2/1", c.Runs, c.Correct, c.Undecided)
	}
	if c.Decide.Min != 10 || c.Decide.Max != 20 || c.Decide.Mean != 15 {
		t.Fatalf("undecided sentinel leaked into latency summary: %+v", c.Decide)
	}
	if c.DecidePerFack <= 0 {
		t.Fatalf("DecidePerFack = %v, want positive", c.DecidePerFack)
	}
	if len(c.Errors) != 1 {
		t.Fatalf("errors %v, want the termination violation", c.Errors)
	}

	// All-undecided cells report zero latency rather than -1.
	acc = newCellAccum(1)
	acc.add(mk(-1, false), 0, false)
	c = acc.finish()
	if c.Undecided != 1 || c.Decide.Median != 0 || c.DecidePerFack != 0 {
		t.Fatalf("all-undecided cell: %+v", c)
	}
}

// TestEffectiveFack pins down that cells report the scheduler's declared
// bound, not the requested axis value, for structural schedulers.
func TestEffectiveFack(t *testing.T) {
	scs, err := Grid{
		Algos:  []string{"twophase"},
		Topos:  []Topo{{Kind: "clique", N: 8}}, // max degree 7
		Scheds: []string{"edgeorder", "sync"},
		Facks:  []int64{4},
		Seeds:  []int64{1},
	}.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if scs[0].MaxEvents != DefaultSweepMaxEvents {
		t.Fatalf("sweep scenarios default MaxEvents=%d, want %d", scs[0].MaxEvents, DefaultSweepMaxEvents)
	}
	cells, err := Sweep(scs, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Cell{}
	for _, c := range cells {
		byName[c.Sched] = c
	}
	if c := byName["edgeorder"]; c.Fack != 4 || c.EffectiveFack != 8 {
		t.Fatalf("edgeorder cell fack=%d effective=%d, want 4 and MaxDegree+1=8", c.Fack, c.EffectiveFack)
	}
	if c := byName["sync"]; c.EffectiveFack != 4 {
		t.Fatalf("sync cell effective fack=%d, want the requested 4", c.EffectiveFack)
	}
	if c := byName["edgeorder"]; c.DecidePerFack != c.Decide.Median/8 {
		t.Fatalf("edgeorder DecidePerFack=%v not normalized by the declared bound", c.DecidePerFack)
	}
}

func TestReport(t *testing.T) {
	cells := []Cell{
		{Algo: "wpaxos", Topo: "clique:4", Sched: "sync", Runs: 2, Correct: 2},
		{Algo: "wpaxos", Topo: "line:4", Sched: "sync", Runs: 2, Correct: 1, Errors: []string{"x"}},
	}
	var buf bytes.Buffer
	bad, err := Report(&buf, cells, false)
	if err != nil || bad != 1 {
		t.Fatalf("text Report: bad=%d err=%v, want 1 nil", bad, err)
	}
	if !strings.Contains(buf.String(), "1/2") {
		t.Fatalf("table missing the failing cell:\n%s", buf.String())
	}
	buf.Reset()
	bad, err = Report(&buf, cells, true)
	if err != nil || bad != 1 {
		t.Fatalf("json Report: bad=%d err=%v, want 1 nil", bad, err)
	}
	var back []Cell
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("json Report output invalid: %v", err)
	}
}

func TestTableRender(t *testing.T) {
	cells := []Cell{{
		Algo: "wpaxos", Topo: "clique:4", Inputs: "alternating", Sched: "sync",
		Fack: 2, N: 4, Diameter: 1, Runs: 3, Correct: 3,
		Decide: Summary{Min: 10, Median: 12, Mean: 12, P95: 14, Max: 14},
	}}
	out := Table(cells).Render()
	for _, want := range []string{"wpaxos", "clique:4", "3/3", "12.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

// TestSweepMetricsAggregation: with SweepOptions.Metrics on, every cell
// reports non-empty aggregated metric rows, sorted by name with no
// leakage of another algorithm's slots (a worker's registry is reused
// across cells), and the result is identical at any worker-pool width.
func TestSweepMetricsAggregation(t *testing.T) {
	cells, err := Grid{
		Algos:  []string{"wpaxos", "floodpaxos"},
		Topos:  []Topo{{Kind: "ring", N: 6}},
		Scheds: []string{"random"},
		Facks:  []int64{3},
		Seeds:  []int64{1, 2, 3},
	}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	sweep := func(workers int) []Cell {
		out, err := SweepCellsOpts(cells, SweepOptions{Workers: workers, Metrics: true})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := sweep(1)
	for _, c := range serial {
		if len(c.Metrics) == 0 {
			t.Fatalf("cell %s: no metrics", c.Algo)
		}
		byName := map[string]CellMetric{}
		for i, m := range c.Metrics {
			if i > 0 && c.Metrics[i-1].Name >= m.Name {
				t.Fatalf("cell %s: metrics not name-sorted: %q before %q", c.Algo, c.Metrics[i-1].Name, m.Name)
			}
			byName[m.Name] = m
		}
		// Engine counters: every run processes events and delivers.
		if byName["sim_events"].Value == 0 || byName["sim_deliveries"].Value == 0 {
			t.Fatalf("cell %s: engine counters empty: %+v", c.Algo, c.Metrics)
		}
		if byName["sim_queue_depth"].High == 0 {
			t.Fatalf("cell %s: queue-depth high-water is zero", c.Algo)
		}
		// Algorithm counters stay with their algorithm: a wpaxos cell must
		// not render floodpaxos slots and vice versa (worker registries are
		// shared across cells; all-zero rows are dropped).
		other := "flood_"
		if c.Algo == "floodpaxos" {
			other = "wpaxos_"
		}
		for name := range byName {
			if strings.HasPrefix(name, other) {
				t.Fatalf("cell %s: leaked slot %q from another algorithm", c.Algo, name)
			}
		}
		if byName[map[string]string{"wpaxos": "wpaxos_proposals", "floodpaxos": "flood_proposals"}[c.Algo]].Value == 0 {
			t.Fatalf("cell %s: no proposals counted: %+v", c.Algo, c.Metrics)
		}
	}
	if parallel := sweep(4); !reflect.DeepEqual(serial, parallel) {
		t.Fatal("metric aggregation differs between 1 and 4 workers")
	}
}

// TestSweepMetricsOffLeavesJSONUnchanged: the metrics field must not
// appear in cell JSON when the sweep did not ask for metrics — the golden
// grid output is pinned byte-for-byte elsewhere, this pins the mechanism.
func TestSweepMetricsOffLeavesJSONUnchanged(t *testing.T) {
	cells, err := Grid{
		Algos:  []string{"wpaxos"},
		Topos:  []Topo{{Kind: "clique", N: 4}},
		Scheds: []string{"sync"},
		Facks:  []int64{2},
		Seeds:  []int64{1},
	}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	out, err := SweepCells(cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\"metrics\"") {
		t.Fatal("metric-free sweep JSON contains a metrics field")
	}
}
