package harness

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/absmac/absmac/internal/sim"
)

// The differential queue test is the pop-order oracle for all queue work:
// the engine's calendar queue (QueueWindow 0), the pure reference heap
// (QueueWindow -1) and a deliberately tiny two-bucket ring that forces
// constant overflow migration (QueueWindow 2) must produce byte-identical
// executions — same observable event sequence, same result, same schedule
// fingerprint — on every registered scheduler crossed with every
// registered crash pattern and overlay family, plus a seeded fuzz loop
// over random scenarios.

// queueWindows are the queue configurations under test. 0 is the
// production default, -1 the reference heap, small positives stress the
// ring/heap boundary.
var queueWindows = []int64{0, -1, 2, 4}

// queueTrace is one run's observable execution.
type queueTrace struct {
	events []sim.Event
	res    *sim.Result
	fp     uint64
}

// runWindowed builds the scenario fresh (seeded schedulers carry RNG
// state) and runs it with the given queue window, recording every
// observer event. Message payloads are cleared before comparison: they
// are per-run algorithm values; the delivery positions are the contract.
func runWindowed(t *testing.T, s Scenario, window int64) queueTrace {
	t.Helper()
	cfg, err := s.Config()
	if err != nil {
		t.Fatalf("%+v: %v", s, err)
	}
	cfg.QueueWindow = window
	fp := sim.NewFingerprinter(cfg.Scheduler, cfg.Crashes)
	cfg.Scheduler = fp
	var events []sim.Event
	cfg.Observer = func(ev sim.Event) {
		ev.Message = nil
		events = append(events, ev)
	}
	res := sim.Run(cfg)
	return queueTrace{events: events, res: res, fp: fp.Sum()}
}

// assertSameExecution compares each window's trace against the reference
// heap's.
func assertSameExecution(t *testing.T, s Scenario) {
	t.Helper()
	ref := runWindowed(t, s, -1)
	for _, w := range queueWindows {
		if w == -1 {
			continue
		}
		got := runWindowed(t, s, w)
		if got.fp != ref.fp {
			t.Errorf("%+v window=%d: fingerprint %#x differs from reference heap %#x", s, w, got.fp, ref.fp)
		}
		if !reflect.DeepEqual(got.res, ref.res) {
			t.Errorf("%+v window=%d: result differs from reference heap\ngot  %+v\nwant %+v", s, w, got.res, ref.res)
		}
		if !reflect.DeepEqual(got.events, ref.events) {
			for i := range got.events {
				if i >= len(ref.events) || got.events[i] != ref.events[i] {
					t.Errorf("%+v window=%d: event %d is %+v, reference heap has %+v",
						s, w, i, got.events[i], ref.events[i])
					break
				}
			}
			if len(got.events) != len(ref.events) {
				t.Errorf("%+v window=%d: %d events, reference heap has %d", s, w, len(got.events), len(ref.events))
			}
		}
	}
}

// queueDiffCrashSpecs gives each registered crash pattern a concrete spec.
var queueDiffCrashSpecs = map[string]string{
	"none":         "none",
	"one":          "one@2",
	"maxid":        "maxid@3",
	"coordinator":  "coordinator",
	"midbroadcast": "midbroadcast",
	"minorityrand": "minorityrand",
}

// queueDiffOverlaySpecs gives each registered overlay family a concrete
// spec.
var queueDiffOverlaySpecs = map[string]string{
	"none":        "none",
	"chords":      "chords",
	"extra":       "extra:3",
	"randomextra": "randomextra:0.3",
}

// TestQueueDifferentialRegistry drives every registered scheduler through
// every registered crash pattern and overlay family.
func TestQueueDifferentialRegistry(t *testing.T) {
	topo, err := ParseTopo("grid:3x3")
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range Schedulers() {
		for _, crash := range CrashPatterns() {
			spec, ok := queueDiffCrashSpecs[crash]
			if !ok {
				t.Fatalf("no differential spec for crash pattern %q — add one to queueDiffCrashSpecs", crash)
			}
			for _, overlay := range Overlays() {
				ospec, ok := queueDiffOverlaySpecs[overlay]
				if !ok {
					t.Fatalf("no differential spec for overlay family %q — add one to queueDiffOverlaySpecs", overlay)
				}
				assertSameExecution(t, Scenario{
					Algo:      "twophase",
					Topo:      topo,
					Sched:     sched,
					Fack:      4,
					Seed:      11,
					Crashes:   spec,
					Overlay:   ospec,
					MaxEvents: 50_000,
				})
			}
		}
	}
}

// TestQueueDifferentialFuzz runs a seeded loop of random scenarios —
// random family, algorithm, scheduler, bound, adversity — through every
// queue window.
func TestQueueDifferentialFuzz(t *testing.T) {
	topos := []string{
		"ring:8", "grid:3x4", "clique:6", "tree:2x3", "expander:16:4",
		"pods:3:6:2", "star:7", "line:9", "random:12:0.3", "starlines:2x3",
	}
	algos := Algorithms()
	scheds := Schedulers()
	crashes := []string{"none", "one@1", "maxid@5", "coordinator", "midbroadcast", "minorityrand"}
	overlays := []string{"none", "chords", "extra:2", "randomextra:0.2"}
	rng := rand.New(rand.NewSource(0xD1FF))
	iters := 40
	if testing.Short() {
		iters = 8
	}
	for i := 0; i < iters; i++ {
		topo, err := ParseTopo(topos[rng.Intn(len(topos))])
		if err != nil {
			t.Fatal(err)
		}
		s := Scenario{
			Algo:      algos[rng.Intn(len(algos))],
			Topo:      topo,
			Sched:     scheds[rng.Intn(len(scheds))],
			Fack:      1 + rng.Int63n(8),
			Seed:      rng.Int63n(1 << 30),
			Crashes:   crashes[rng.Intn(len(crashes))],
			Overlay:   overlays[rng.Intn(len(overlays))],
			MaxEvents: 50_000,
		}
		assertSameExecution(t, s)
	}
}
