package harness

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
)

// This file is the shared sweep-axis flag grammar of the CLIs: cmd/amacsim
// (-sweep) and cmd/amacexplore (-grid) accept exactly the same
// -algos/-topos/-scheds/-facks/-crashes/-overlays/-seeds/-workers axes, so
// the registration, parsing and guard logic live here once instead of
// being hand-rolled per command. AxisFlags.Grid validates nothing beyond
// syntax — the semantic checks (unknown names, empty axes) happen in
// Grid.Cells and the registries, in their documented deterministic order.

// AxisFlags holds the sweep-axis flags both CLIs share. Register them on a
// FlagSet with RegisterAxisFlags; after parsing, Grid assembles the sweep
// grid. The -inputs axis is deliberately not registered here: both CLIs
// already own an -inputs flag that does double duty in their single-
// scenario modes, so they pass its value to Grid explicitly.
type AxisFlags struct {
	Algos    *string
	Topos    *string
	Scheds   *string
	Facks    *string
	Crashes  *string
	Overlays *string
	Seeds    *int
	Workers  *int

	names []string // recorded at registration, so Names cannot drift
}

// RegisterAxisFlags registers the shared sweep-axis flags on fs with the
// canonical defaults and usage strings. mode names the sweep mode in the
// usage text ("sweep" for amacsim, "grid" for amacexplore).
func RegisterAxisFlags(fs *flag.FlagSet, mode string) *AxisFlags {
	a := &AxisFlags{}
	str := func(name, def, usage string) *string {
		a.names = append(a.names, name)
		return fs.String(name, def, usage)
	}
	num := func(name string, def int, usage string) *int {
		a.names = append(a.names, name)
		return fs.Int(name, def, usage)
	}
	a.Algos = str("algos", "wpaxos", mode+": comma-separated algorithms")
	a.Topos = str("topos", "clique:8,grid:3x3", mode+": comma-separated topology specs")
	a.Scheds = str("scheds", "sync,random", mode+": comma-separated schedulers")
	a.Facks = str("facks", "4", mode+": comma-separated Fack values")
	a.Crashes = str("crashes", "none", mode+": comma-separated crash patterns")
	a.Overlays = str("overlays", "none", mode+": comma-separated overlay families")
	a.Seeds = num("seeds", 8, mode+": seeds 1..k per cell")
	a.Workers = num("workers", 0, "worker pool width (0 = GOMAXPROCS)")
	return a
}

// Names returns the registered flag names in registration order, for
// per-mode stray-flag guards — derived from what RegisterAxisFlags
// actually registered, so adding an axis flag keeps the guards in sync.
func (a *AxisFlags) Names() []string {
	return append([]string(nil), a.names...)
}

// Grid assembles the parsed axes into a sweep grid. inputs is the CLI's
// -inputs value (comma-separated pattern names; empty means the grid
// default). Topology and Fack entries are parsed here — syntax errors
// surface immediately, attributed to their flag — while axis-emptiness and
// registry-name validation stay in Grid.Cells and the scenario build,
// which report in a deterministic order regardless of axis contents.
func (a *AxisFlags) Grid(inputs string) (Grid, error) {
	grid := Grid{
		Algos:    SplitList(*a.Algos),
		Scheds:   SplitList(*a.Scheds),
		Inputs:   SplitList(inputs),
		Crashes:  SplitList(*a.Crashes),
		Overlays: SplitList(*a.Overlays),
	}
	for _, s := range SplitList(*a.Topos) {
		t, err := ParseTopo(s)
		if err != nil {
			return Grid{}, err
		}
		grid.Topos = append(grid.Topos, t)
	}
	for _, s := range SplitList(*a.Facks) {
		f, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Grid{}, fmt.Errorf("bad -facks entry %q: %w", s, err)
		}
		grid.Facks = append(grid.Facks, f)
	}
	for s := int64(1); s <= int64(*a.Seeds); s++ {
		grid.Seeds = append(grid.Seeds, s)
	}
	return grid, nil
}

// SplitList splits a comma-separated flag value, trimming blanks — the
// list grammar of every sweep axis.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// StrayFlags returns the names of flags that were explicitly set but are
// disallowed in the active mode, in the FlagSet's visit order (lexical, so
// the resulting error message is deterministic). Both CLIs fail loudly on
// stray flags rather than let the user attribute results to a flag that
// was silently dropped.
func StrayFlags(fs *flag.FlagSet, disallowed func(name string) bool) []string {
	var stray []string
	fs.Visit(func(f *flag.Flag) {
		if disallowed(f.Name) {
			stray = append(stray, "-"+f.Name)
		}
	})
	return stray
}

// NameSet turns flag-name lists into the membership predicate StrayFlags
// consumes most often.
func NameSet(names ...[]string) map[string]bool {
	set := map[string]bool{}
	for _, list := range names {
		for _, n := range list {
			set[n] = true
		}
	}
	return set
}

// ProfileFlags holds the -cpuprofile/-memprofile flags shared by the
// bench-facing CLIs (cmd/benchsuite, and cmd/amacsim's sweep mode): a
// wall-clock hunt should start from a profile, not a guess. Register with
// RegisterProfileFlags; call Start after flag parsing and defer the
// returned stop function.
type ProfileFlags struct {
	CPU *string
	Mem *string

	names []string
}

// RegisterProfileFlags registers the profiling flags on fs.
func RegisterProfileFlags(fs *flag.FlagSet) *ProfileFlags {
	p := &ProfileFlags{}
	p.CPU = fs.String("cpuprofile", "", "write a CPU profile to this file")
	p.Mem = fs.String("memprofile", "", "write a heap profile to this file on exit")
	p.names = []string{"cpuprofile", "memprofile"}
	return p
}

// Names returns the registered flag names, for per-mode stray-flag guards.
func (p *ProfileFlags) Names() []string {
	return append([]string(nil), p.names...)
}

// Start begins CPU profiling if requested and returns the stop function,
// which finishes the CPU profile and writes the heap profile. The stop
// function must run before the process exits (defer it in main, and call
// it explicitly before any os.Exit path).
func (p *ProfileFlags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if *p.CPU != "" {
		cpuFile, err = os.Create(*p.CPU)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *p.Mem != "" {
			f, err := os.Create(*p.Mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recent frees so the heap profile is settled
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
		}
	}, nil
}
