package harness

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/absmac/absmac/internal/graph"
)

// Topo describes a topology by family name plus the family's parameters.
// The zero value is invalid; construct via ParseTopo or a literal with Kind
// set. Topologies marshal to their compact string form in JSON.
type Topo struct {
	// Kind is a registered family: clique | line | ring | star | grid |
	// tree | starlines | random | expander | pods.
	Kind string
	// N is the node count for clique/line/ring/star/random/expander.
	N int
	// Rows and Cols shape grids.
	Rows, Cols int
	// Branch and Depth shape balanced trees.
	Branch, Depth int
	// Arms and ArmLen shape stars-of-lines.
	Arms, ArmLen int
	// P is the random family's edge probability.
	P float64
	// Deg is the expander family's degree.
	Deg int
	// Pods, PodSize and Cross shape the multi-pod sparse mesh: Pods pods
	// of PodSize nodes with Cross cross-pod links per pod.
	Pods, PodSize, Cross int
}

// Topologies returns the registered topology family names, sorted.
func Topologies() []string {
	return []string{"clique", "expander", "grid", "line", "pods", "random", "ring", "star", "starlines", "tree"}
}

// ParseTopo parses the compact topology grammar used by sweep flags:
//
//	clique:N  line:N  ring:N  star:N       one size parameter
//	grid:RxC  tree:BxD  starlines:AxL      two, separated by 'x'
//	random:N:P                             size and edge probability
//	expander:N:D                           seeded random D-regular graph
//	pods:P:K:C                             P pods of K nodes, C cross links
//
// Examples: "clique:16", "grid:4x4", "tree:2x3", "random:24:0.1",
// "expander:1024:8", "pods:16:64:4".
func ParseTopo(s string) (Topo, error) {
	parts := strings.Split(s, ":")
	kind := parts[0]
	bad := func() (Topo, error) {
		return Topo{}, fmt.Errorf("harness: cannot parse topology %q (grammar: kind:N, kind:AxB, random:N:P, expander:N:D or pods:P:K:C; kinds %v)", s, Topologies())
	}
	one := func() (int, bool) {
		if len(parts) != 2 {
			return 0, false
		}
		n, err := strconv.Atoi(parts[1])
		return n, err == nil
	}
	two := func() (int, int, bool) {
		if len(parts) != 2 {
			return 0, 0, false
		}
		ab := strings.SplitN(parts[1], "x", 2)
		if len(ab) != 2 {
			return 0, 0, false
		}
		a, err1 := strconv.Atoi(ab[0])
		b, err2 := strconv.Atoi(ab[1])
		return a, b, err1 == nil && err2 == nil
	}
	switch kind {
	case "clique", "line", "ring", "star":
		n, ok := one()
		if !ok {
			return bad()
		}
		return Topo{Kind: kind, N: n}, nil
	case "grid":
		r, c, ok := two()
		if !ok {
			return bad()
		}
		return Topo{Kind: kind, Rows: r, Cols: c}, nil
	case "tree":
		b, d, ok := two()
		if !ok {
			return bad()
		}
		return Topo{Kind: kind, Branch: b, Depth: d}, nil
	case "starlines":
		a, l, ok := two()
		if !ok {
			return bad()
		}
		return Topo{Kind: kind, Arms: a, ArmLen: l}, nil
	case "random":
		if len(parts) != 3 {
			return bad()
		}
		n, err1 := strconv.Atoi(parts[1])
		p, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil {
			return bad()
		}
		return Topo{Kind: kind, N: n, P: p}, nil
	case "expander":
		if len(parts) != 3 {
			return bad()
		}
		n, err1 := strconv.Atoi(parts[1])
		d, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			return bad()
		}
		return Topo{Kind: kind, N: n, Deg: d}, nil
	case "pods":
		if len(parts) != 4 {
			return bad()
		}
		p, err1 := strconv.Atoi(parts[1])
		k, err2 := strconv.Atoi(parts[2])
		c, err3 := strconv.Atoi(parts[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return bad()
		}
		return Topo{Kind: kind, Pods: p, PodSize: k, Cross: c}, nil
	default:
		return bad()
	}
}

// String renders the topology in the ParseTopo grammar.
func (t Topo) String() string {
	switch t.Kind {
	case "grid":
		return fmt.Sprintf("grid:%dx%d", t.Rows, t.Cols)
	case "tree":
		return fmt.Sprintf("tree:%dx%d", t.Branch, t.Depth)
	case "starlines":
		return fmt.Sprintf("starlines:%dx%d", t.Arms, t.ArmLen)
	case "random":
		return fmt.Sprintf("random:%d:%g", t.N, t.P)
	case "expander":
		return fmt.Sprintf("expander:%d:%d", t.N, t.Deg)
	case "pods":
		return fmt.Sprintf("pods:%d:%d:%d", t.Pods, t.PodSize, t.Cross)
	default:
		return fmt.Sprintf("%s:%d", t.Kind, t.N)
	}
}

// MarshalText renders the compact grammar (so Topo JSON-encodes as a
// string inside Scenario and Cell).
func (t Topo) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText parses the compact grammar.
func (t *Topo) UnmarshalText(b []byte) error {
	parsed, err := ParseTopo(string(b))
	if err != nil {
		return err
	}
	*t = parsed
	return nil
}

// buildSeed is the seed as far as Build's output is concerned: it
// normalizes to 0 for the families known to ignore their seed, which lets
// the sweep caches share one graph across a whole seed axis. The list is
// an allowlist on purpose — a family not named here (including any future
// one) conservatively keys on the full seed, so forgetting to classify a
// new family costs cache hits, never correctness.
func (t Topo) buildSeed(seed int64) int64 {
	switch t.Kind {
	case "clique", "line", "ring", "star", "grid", "tree", "starlines":
		return 0
	}
	return seed
}

// Build constructs the graph. The seed feeds the random family only (see
// buildSeed); every other family ignores it, so the same Topo builds the
// same graph.
func (t Topo) Build(seed int64) (*graph.Graph, error) {
	switch t.Kind {
	case "clique":
		return checkN(graph.Clique, t)
	case "line":
		return checkN(graph.Line, t)
	case "ring":
		if t.N < 3 {
			return nil, fmt.Errorf("harness: %s needs n >= 3", t)
		}
		return graph.Ring(t.N), nil
	case "star":
		return checkN(graph.Star, t)
	case "grid":
		if t.Rows < 1 || t.Cols < 1 {
			return nil, fmt.Errorf("harness: %s needs rows, cols >= 1", t)
		}
		return graph.Grid(t.Rows, t.Cols), nil
	case "tree":
		if t.Branch < 1 || t.Depth < 0 {
			return nil, fmt.Errorf("harness: %s needs branch >= 1, depth >= 0", t)
		}
		return graph.BalancedTree(t.Branch, t.Depth), nil
	case "starlines":
		if t.Arms < 1 || t.ArmLen < 1 {
			return nil, fmt.Errorf("harness: %s needs arms, armlen >= 1", t)
		}
		return graph.StarOfLines(t.Arms, t.ArmLen), nil
	case "random":
		if t.N < 1 || t.P < 0 || t.P > 1 {
			return nil, fmt.Errorf("harness: %s needs n >= 1 and p in [0,1]", t)
		}
		return graph.RandomConnected(t.N, t.P, seed), nil
	case "expander":
		if t.Deg < 3 || t.Deg >= t.N || t.N*t.Deg%2 != 0 {
			return nil, fmt.Errorf("harness: %s needs 3 <= d < n with n*d even", t)
		}
		return graph.Expander(t.N, t.Deg, expanderSeed(seed)), nil
	case "pods":
		if t.Pods < 1 || t.PodSize < 1 || t.Cross < 0 || (t.Pods > 1 && t.Cross < 1) {
			return nil, fmt.Errorf("harness: %s needs p, k >= 1 and c >= 1 when p > 1", t)
		}
		return graph.Pods(t.Pods, t.PodSize, t.Cross, podsSeed(seed)), nil
	default:
		return nil, fmt.Errorf("harness: unknown topology kind %q (have %v)", t.Kind, Topologies())
	}
}

func checkN(mk func(int) *graph.Graph, t Topo) (*graph.Graph, error) {
	if t.N < 1 {
		return nil, fmt.Errorf("harness: %s needs n >= 1", t)
	}
	return mk(t.N), nil
}

// expanderSeed and podsSeed decorrelate the seeded topology builders from
// the scheduler (which consumes the scenario seed directly) and from each
// other. They are part of the affine seed-map registry kept beside
// overlaySeed in adversity.go: every map there must stay distinct.
func expanderSeed(seed int64) int64 { return seed*9176741 + 389 }

func podsSeed(seed int64) int64 { return seed*15485863 + 577 }
