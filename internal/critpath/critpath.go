// Package critpath extracts the causal critical path of a simulated
// consensus execution: the chain of deliveries that carried information
// from the first broadcast at time 0 to the first decision, with every
// tick of the decide latency attributed to a protocol phase. It turns the
// paper's O(D·Fack) decision-time bound into a measured, per-phase
// breakdown — how much of the latency was the leader-election flood, the
// proposal round, the ack/response aggregation, the decide flood, and how
// much was spent stalled at a node waiting for retransmissions.
//
// The extraction consumes nothing but the engine's observer events (so it
// works identically on a fresh run, a recorded run, and a schedule
// replay): a Collector classifies every broadcast's message into a Phase
// at observation time — the message is only valid inside the callback;
// pooling algorithms recycle buffers — and notes every delivery and
// decision. Extract then walks backwards from the first decision: the
// segment from a causal delivery to the next action at that node is a
// stall, the segment from the broadcast to the delivery is transit
// attributed to the broadcast's phase, and the walk continues from the
// sender's broadcast time until it reaches time 0. The segments partition
// (0, decide time] exactly, so the phase totals always sum to the first
// decide time — the invariant the golden tests pin.
//
// Everything here is deterministic: ties among deliveries at the same
// time break by observation order (the engine's event order is part of
// the determinism contract), and the report renders in fixed phase order.
package critpath

import (
	"fmt"
	"io"
	"strings"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/baseline/floodpaxos"
	"github.com/absmac/absmac/internal/core/wpaxos"
	"github.com/absmac/absmac/internal/sim"
)

// Phase is a protocol phase the critical path attributes time to.
type Phase int

// Phases, in render order. PhaseStall is not a message class: it is the
// time the chain spends parked at a node between the causal delivery and
// the node's next causal action (waiting on its own ack slot or on a
// retransmission of something lost).
const (
	PhaseElection Phase = iota
	PhaseProposal
	PhaseAggregation
	PhaseDecide
	PhaseOther
	PhaseStall
	numPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseElection:
		return "election"
	case PhaseProposal:
		return "proposal"
	case PhaseAggregation:
		return "aggregation"
	case PhaseDecide:
		return "decide"
	case PhaseOther:
		return "other"
	case PhaseStall:
		return "stall"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Classifier maps a broadcast message to the phase its transit time is
// charged to. It runs inside the observer callback, while the message is
// still valid.
type Classifier func(amac.Message) Phase

// ClassifierFor returns the classifier for a harness algorithm name.
// Unknown algorithms get a classifier that charges everything to
// PhaseOther — the breakdown still sums to the decide time, it just
// carries no per-phase detail.
//
// For the two multihop PAXOS variants the priority order matters: a
// combined broadcast multiplexes one message per service queue, and the
// most information-bearing constituent wins — a decide flood outranks
// everything, acceptor responses / gossiped acceptor state (the counting
// machinery) outrank the proposition flood, which outranks the
// always-present election/membership gossip.
func ClassifierFor(algo string) Classifier {
	switch algo {
	case "wpaxos":
		return classifyWPaxos
	case "floodpaxos":
		return classifyFloodPaxos
	default:
		return func(amac.Message) Phase { return PhaseOther }
	}
}

func classifyWPaxos(m amac.Message) Phase {
	c, ok := m.(wpaxos.Combined)
	if !ok {
		return PhaseOther
	}
	switch {
	case c.Decide != nil:
		return PhaseDecide
	case c.Response != nil || c.State != nil:
		return PhaseAggregation
	case c.Proposer != nil:
		return PhaseProposal
	case c.Leader != nil || c.Change != nil || c.Search != nil:
		return PhaseElection
	default:
		return PhaseOther
	}
}

func classifyFloodPaxos(m amac.Message) Phase {
	c, ok := m.(*floodpaxos.Combined)
	if !ok {
		return PhaseOther
	}
	switch {
	case c.Decide != nil:
		return PhaseDecide
	case c.Response != nil:
		return PhaseAggregation
	case c.Proposer != nil:
		return PhaseProposal
	case c.Leader != nil || c.Change != nil:
		return PhaseElection
	default:
		return PhaseOther
	}
}

// bcast is one observed broadcast: who sent it, when, and its phase.
type bcast struct {
	node  int
	time  int64
	phase Phase
}

// delivery is one observed delivery, pointing at the broadcast it carried.
type delivery struct {
	time int64
	to   int
	b    int // index into Collector.bcasts
}

// Collector observes a run and retains the compact causal record Extract
// needs. Install Observer() as (or chain it into) sim.Config.Observer.
// A Collector records one run; use a fresh one per run.
type Collector struct {
	classify Classifier
	bcasts   []bcast
	// lastB[node] is the index of node's most recent broadcast; the
	// engine delivers (and acks) broadcast k before the sender's
	// broadcast k+1 exists, so attributing deliveries to the sender's
	// latest broadcast is exact.
	lastB      map[int]int
	deliveries []delivery
	decideAt   int64
	decideNode int
	decided    bool
}

// NewCollector returns a collector classifying broadcasts with classify
// (nil means everything is PhaseOther).
func NewCollector(classify Classifier) *Collector {
	if classify == nil {
		classify = func(amac.Message) Phase { return PhaseOther }
	}
	return &Collector{classify: classify, lastB: make(map[int]int), decideNode: -1}
}

// Observer returns the event callback to install on the run.
func (c *Collector) Observer() func(sim.Event) { return c.observe }

func (c *Collector) observe(ev sim.Event) {
	switch ev.Kind {
	case sim.EventBroadcast:
		c.lastB[ev.Node] = len(c.bcasts)
		c.bcasts = append(c.bcasts, bcast{node: ev.Node, time: ev.Time, phase: c.classify(ev.Message)})
	case sim.EventDeliver:
		if b, ok := c.lastB[ev.Peer]; ok {
			c.deliveries = append(c.deliveries, delivery{time: ev.Time, to: ev.Node, b: b})
		}
	case sim.EventDecide:
		// Keep the first decision; ties at the same time break toward the
		// lowest node via the engine's deterministic event order plus an
		// explicit node tie-break for safety.
		if !c.decided || ev.Time < c.decideAt || (ev.Time == c.decideAt && ev.Node < c.decideNode) {
			c.decideAt, c.decideNode, c.decided = ev.Time, ev.Node, true
		}
	}
}

// Span is one phase's share of the critical path.
type Span struct {
	Phase string `json:"phase"`
	Ticks int64  `json:"ticks"`
}

// Hop is one causal link of the chain, rendered sender→receiver.
type Hop struct {
	From    int    `json:"from"`
	To      int    `json:"to"`
	SentAt  int64  `json:"sent_at"`
	RecvAt  int64  `json:"recv_at"`
	Phase   string `json:"phase"`
	StallAt int64  `json:"stall,omitempty"` // ticks parked at To after this hop
}

// Report is the extracted critical path. Spans always sum to DecideTime
// (the partition invariant); Hops lists the chain first-to-last.
type Report struct {
	Decided    bool   `json:"decided"`
	DecideTime int64  `json:"decide_time"`
	DecideNode int    `json:"decide_node"`
	Hops       []Hop  `json:"hops,omitempty"`
	Spans      []Span `json:"spans,omitempty"`
}

// Extract computes the critical path from the collected record. When no
// node decided it returns a Report with Decided=false and no spans.
func (c *Collector) Extract() *Report {
	rep := &Report{Decided: c.decided, DecideTime: c.decideAt, DecideNode: c.decideNode}
	if !c.decided {
		rep.DecideTime = -1
		return rep
	}
	var phases [numPhases]int64
	var hops []Hop

	// Index deliveries per receiver. The engine observes events in
	// nondecreasing time order, so each per-node list is time-sorted and
	// the latest delivery at or before t is found by binary search — the
	// last entry with time <= t, which is also the latest observed among
	// time ties (the engine's processing order).
	byNode := make(map[int][]int, len(c.lastB))
	for i, d := range c.deliveries {
		byNode[d.to] = append(byNode[d.to], i)
	}
	latestAt := func(node int, t int64) int {
		list := byNode[node]
		lo, hi := 0, len(list) // first index with time > t
		for lo < hi {
			mid := (lo + hi) / 2
			if c.deliveries[list[mid]].time <= t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == 0 {
			return -1
		}
		return list[lo-1]
	}

	node, t := c.decideNode, c.decideAt
	for t > 0 {
		best := latestAt(node, t)
		if best < 0 {
			// No incoming information: the node acted on local state since
			// time 0 (its own Start broadcast chain). Charge the remainder
			// as stall — it was waiting on its own MAC layer.
			phases[PhaseStall] += t
			break
		}
		d := c.deliveries[best]
		b := c.bcasts[d.b]
		if stall := t - d.time; stall > 0 {
			phases[PhaseStall] += stall
		}
		phases[b.phase] += d.time - b.time
		hops = append(hops, Hop{
			From: b.node, To: node, SentAt: b.time, RecvAt: d.time,
			Phase: b.phase.String(), StallAt: t - d.time,
		})
		node, t = b.node, b.time
	}
	// Reverse into chronological order.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	rep.Hops = hops
	for p := Phase(0); p < numPhases; p++ {
		if phases[p] != 0 {
			rep.Spans = append(rep.Spans, Span{Phase: p.String(), Ticks: phases[p]})
		}
	}
	return rep
}

// Sum returns the total ticks across spans (equal to DecideTime for a
// decided run; the golden tests assert it).
func (r *Report) Sum() int64 {
	var s int64
	for _, sp := range r.Spans {
		s += sp.Ticks
	}
	return s
}

// WriteText renders the report as aligned plain text.
func (r *Report) WriteText(w io.Writer) error {
	if !r.Decided {
		_, err := fmt.Fprintln(w, "critical path: no decision")
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: first decide t=%d at node %d, %d hops\n",
		r.DecideTime, r.DecideNode, len(r.Hops))
	for _, sp := range r.Spans {
		pct := float64(sp.Ticks) * 100 / float64(r.DecideTime)
		fmt.Fprintf(&b, "  %-12s %6d ticks  %5.1f%%\n", sp.Phase, sp.Ticks, pct)
	}
	for _, h := range r.Hops {
		line := fmt.Sprintf("  %4d -> %-4d sent=%-6d recv=%-6d %-12s", h.From, h.To, h.SentAt, h.RecvAt, h.Phase)
		if h.StallAt > 0 {
			line += fmt.Sprintf(" stall=%d", h.StallAt)
		}
		b.WriteString(strings.TrimRight(line, " "))
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
