package critpath

import (
	"strings"
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/sim"
)

type fakeMsg struct{ phase Phase }

func (fakeMsg) IDCount() int { return 0 }

func fakeClassify(m amac.Message) Phase { return m.(fakeMsg).phase }

func ev(kind sim.EventKind, t int64, node, peer int, m amac.Message) sim.Event {
	return sim.Event{Kind: kind, Time: t, Node: node, Peer: peer, Message: m}
}

// TestExtractChain builds a three-hop causal chain by hand and checks the
// backward walk reconstructs it with the partition invariant intact:
//
//	t=0  node 0 broadcasts (election)
//	t=3  node 1 receives from 0            -> transit 3 (election)
//	t=5  node 1 broadcasts (proposal)      -> stall 2 at node 1
//	t=9  node 2 receives from 1            -> transit 4 (proposal)
//	t=10 node 2 decides                    -> stall 1 at node 2
func TestExtractChain(t *testing.T) {
	c := NewCollector(fakeClassify)
	obs := c.Observer()
	obs(ev(sim.EventBroadcast, 0, 0, -1, fakeMsg{PhaseElection}))
	obs(ev(sim.EventDeliver, 3, 1, 0, fakeMsg{PhaseElection}))
	obs(ev(sim.EventBroadcast, 5, 1, -1, fakeMsg{PhaseProposal}))
	obs(ev(sim.EventDeliver, 9, 2, 1, fakeMsg{PhaseProposal}))
	obs(ev(sim.EventDecide, 10, 2, -1, nil))

	rep := c.Extract()
	if !rep.Decided || rep.DecideTime != 10 || rep.DecideNode != 2 {
		t.Fatalf("decide: got %+v", rep)
	}
	if rep.Sum() != rep.DecideTime {
		t.Fatalf("spans sum to %d, decide time %d", rep.Sum(), rep.DecideTime)
	}
	want := map[string]int64{"election": 3, "proposal": 4, "stall": 3}
	if len(rep.Spans) != len(want) {
		t.Fatalf("spans: %+v", rep.Spans)
	}
	for _, sp := range rep.Spans {
		if want[sp.Phase] != sp.Ticks {
			t.Fatalf("span %s: got %d want %d", sp.Phase, sp.Ticks, want[sp.Phase])
		}
	}
	if len(rep.Hops) != 2 {
		t.Fatalf("hops: %+v", rep.Hops)
	}
	if h := rep.Hops[0]; h.From != 0 || h.To != 1 || h.SentAt != 0 || h.RecvAt != 3 || h.StallAt != 2 {
		t.Fatalf("hop 0: %+v", h)
	}
	if h := rep.Hops[1]; h.From != 1 || h.To != 2 || h.SentAt != 5 || h.RecvAt != 9 || h.StallAt != 1 {
		t.Fatalf("hop 1: %+v", h)
	}
}

// TestExtractLatestDeliveryWins: when a node has several deliveries before
// its decision, the walk follows the latest one at or before the cut — the
// most recent information the action could have depended on.
func TestExtractLatestDeliveryWins(t *testing.T) {
	c := NewCollector(fakeClassify)
	obs := c.Observer()
	obs(ev(sim.EventBroadcast, 0, 0, -1, fakeMsg{PhaseElection}))
	obs(ev(sim.EventDeliver, 2, 1, 0, nil))
	obs(ev(sim.EventBroadcast, 4, 0, -1, fakeMsg{PhaseDecide}))
	obs(ev(sim.EventDeliver, 6, 1, 0, nil)) // latest: carries the decide flood
	obs(ev(sim.EventDecide, 6, 1, -1, nil))

	rep := c.Extract()
	if len(rep.Hops) != 1 || rep.Hops[0].Phase != "decide" || rep.Hops[0].SentAt != 4 {
		t.Fatalf("hops: %+v", rep.Hops)
	}
	// decide transit (4,6] = 2, sender's local span (0,4] = stall.
	if rep.Sum() != 6 {
		t.Fatalf("sum %d != 6", rep.Sum())
	}
}

// TestExtractNoDecision: an undecided run yields an empty, explicit report.
func TestExtractNoDecision(t *testing.T) {
	c := NewCollector(fakeClassify)
	c.Observer()(ev(sim.EventBroadcast, 0, 0, -1, fakeMsg{PhaseElection}))
	rep := c.Extract()
	if rep.Decided || rep.DecideTime != -1 || len(rep.Spans) != 0 {
		t.Fatalf("got %+v", rep)
	}
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no decision") {
		t.Fatalf("text: %q", sb.String())
	}
}

// TestExtractDecideAtZero: a node that decides at time 0 on local input
// produces a zero-length path, not a crash.
func TestExtractDecideAtZero(t *testing.T) {
	c := NewCollector(nil)
	c.Observer()(ev(sim.EventDecide, 0, 0, -1, nil))
	rep := c.Extract()
	if !rep.Decided || rep.Sum() != 0 || len(rep.Hops) != 0 {
		t.Fatalf("got %+v", rep)
	}
}

func TestClassifierForUnknown(t *testing.T) {
	cl := ClassifierFor("nope")
	if p := cl(fakeMsg{PhaseDecide}); p != PhaseOther {
		t.Fatalf("unknown algo classified %v", p)
	}
}
