package critpath_test

// Golden critical-path test: replaying the two committed terminating
// artifacts (the re-recorded cells from the Ω detector fix, see
// internal/harness/replay_golden_test.go) must produce exactly the phase
// breakdown pinned here, and the breakdown must sum to the recorded decide
// time — the partition invariant. The file lives in the external test
// package because it drives the replay through internal/explore, which
// critpath itself must not import (sim already imports metrics; keeping
// critpath's dependencies to the algorithm packages avoids any cycle risk
// and keeps it usable from the harness).
//
// If this test fails after an engine or scheduler change together with
// TestTerminatingGoldensReplayByteIdentically, the execution semantics
// changed — re-record the goldens. If it fails alone, the extraction
// itself regressed.

import (
	"testing"

	"github.com/absmac/absmac/internal/critpath"
	"github.com/absmac/absmac/internal/explore"
)

func TestGoldenCriticalPaths(t *testing.T) {
	cases := []struct {
		path       string
		decideTime int64
		decideNode int
		hops       int
		spans      map[string]int64
	}{
		{
			// ring:9 mid-broadcast crash + chords overlay, wPAXOS. The
			// election settles in 11 ticks; the bulk of the latency is the
			// proposer's response aggregation bouncing across the ring.
			path:       "../harness/testdata/golden_wpaxos_midbroadcast_chords.json",
			decideTime: 67,
			decideNode: 2,
			hops:       27,
			spans:      map[string]int64{"election": 11, "aggregation": 41, "stall": 15},
		},
		{
			// grid:3x3 one@3 crash + extra edge, floodpaxos. The flooding
			// baseline spends most of its decide latency in election-class
			// gossip — exactly the O(n) vs O(D) gap the paper's wPAXOS
			// routing avoids.
			path:       "../harness/testdata/golden_floodpaxos_one3_extra.json",
			decideTime: 610,
			decideNode: 1,
			hops:       225,
			spans:      map[string]int64{"election": 467, "aggregation": 25, "stall": 118},
		},
	}
	for _, tc := range cases {
		extract := func() *critpath.Report {
			a, err := explore.ReadFile(tc.path)
			if err != nil {
				t.Fatal(err)
			}
			c := critpath.NewCollector(critpath.ClassifierFor(a.Scenario.Algo))
			if _, rp, err := a.Replay(c.Observer()); err != nil {
				t.Fatal(err)
			} else if rp.Diverged() {
				t.Fatalf("%s diverged; see the harness golden replay test", tc.path)
			}
			return c.Extract()
		}
		rep := extract()
		if !rep.Decided || rep.DecideTime != tc.decideTime || rep.DecideNode != tc.decideNode {
			t.Fatalf("%s: decide (t=%d, node=%d, decided=%v), want (t=%d, node=%d)",
				tc.path, rep.DecideTime, rep.DecideNode, rep.Decided, tc.decideTime, tc.decideNode)
		}
		if rep.Sum() != rep.DecideTime {
			t.Fatalf("%s: spans sum to %d, decide time %d — partition invariant broken",
				tc.path, rep.Sum(), rep.DecideTime)
		}
		if len(rep.Hops) != tc.hops {
			t.Fatalf("%s: %d hops, want %d", tc.path, len(rep.Hops), tc.hops)
		}
		if len(rep.Spans) != len(tc.spans) {
			t.Fatalf("%s: spans %+v, want %v", tc.path, rep.Spans, tc.spans)
		}
		for _, sp := range rep.Spans {
			if tc.spans[sp.Phase] != sp.Ticks {
				t.Fatalf("%s: span %s = %d ticks, want %d", tc.path, sp.Phase, sp.Ticks, tc.spans[sp.Phase])
			}
		}
		// Chronological, causally linked chain ending at the decider.
		for i := 1; i < len(rep.Hops); i++ {
			prev, h := rep.Hops[i-1], rep.Hops[i]
			if prev.To != h.From || h.SentAt < prev.RecvAt {
				t.Fatalf("%s: hop %d not causally chained: %+v -> %+v", tc.path, i, prev, h)
			}
		}
		if n := len(rep.Hops); n > 0 && rep.Hops[n-1].To != tc.decideNode {
			t.Fatalf("%s: chain ends at %d, decider is %d", tc.path, rep.Hops[n-1].To, tc.decideNode)
		}
		// Deterministic: a second replay extracts the identical report.
		rep2 := extract()
		if len(rep2.Hops) != len(rep.Hops) || rep2.Sum() != rep.Sum() {
			t.Fatalf("%s: two extractions differ", tc.path)
		}
		for i := range rep.Hops {
			if rep.Hops[i] != rep2.Hops[i] {
				t.Fatalf("%s: hop %d differs across extractions: %+v vs %+v",
					tc.path, i, rep.Hops[i], rep2.Hops[i])
			}
		}
	}
}
