package gatherall

import (
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

func mixed(n int) []amac.Value {
	inputs := make([]amac.Value, n)
	for i := range inputs {
		inputs[i] = amac.Value((i + 1) % 2)
	}
	return inputs
}

func TestCorrectAcrossTopologies(t *testing.T) {
	cases := []*graph.Graph{
		graph.Clique(6),
		graph.Line(7),
		graph.Ring(8),
		graph.Grid(3, 3),
		graph.StarOfLines(3, 2),
		graph.RandomConnected(12, 0.2, 3),
	}
	for i, g := range cases {
		inputs := mixed(g.N())
		for seed := int64(0); seed < 3; seed++ {
			res := sim.Run(sim.Config{
				Graph:           g,
				Inputs:          inputs,
				Factory:         NewFactory(g.N()),
				Scheduler:       sim.NewRandom(3, seed),
				StopWhenDecided: true,
				Audit:           true,
			})
			rep := consensus.Check(inputs, res)
			if !rep.OK() {
				t.Fatalf("case %d seed %d: %v", i, seed, rep.Errors)
			}
			// Gather-all decides the minimum value.
			if rep.Value != 0 {
				t.Fatalf("case %d: decided %d, want min 0", i, rep.Value)
			}
		}
	}
}

func TestUnanimousOne(t *testing.T) {
	g := graph.Line(5)
	inputs := []amac.Value{1, 1, 1, 1, 1}
	res := sim.Run(sim.Config{
		Graph:           g,
		Inputs:          inputs,
		Factory:         NewFactory(5),
		Scheduler:       sim.Synchronous{},
		StopWhenDecided: true,
	})
	rep := consensus.Check(inputs, res)
	if !rep.OK() || rep.Value != 1 {
		t.Fatalf("report %+v %v", rep, rep.Errors)
	}
}

func TestSingleNode(t *testing.T) {
	inputs := []amac.Value{1}
	res := sim.Run(sim.Config{
		Graph:           graph.Clique(1),
		Inputs:          inputs,
		Factory:         NewFactory(1),
		Scheduler:       sim.Synchronous{},
		StopWhenDecided: true,
	})
	rep := consensus.Check(inputs, res)
	if !rep.OK() || rep.Value != 1 {
		t.Fatalf("single node: %+v %v", rep, rep.Errors)
	}
}

// TestBottleneckLinearInN measures the Theta(n) hub backlog on a
// star-of-lines: decision time grows with n at fixed diameter.
func TestBottleneckLinearInN(t *testing.T) {
	timeFor := func(arms int) int64 {
		g := graph.StarOfLines(arms, 2) // diameter 4 regardless of arms
		inputs := mixed(g.N())
		res := sim.Run(sim.Config{
			Graph:           g,
			Inputs:          inputs,
			Factory:         NewFactory(g.N()),
			Scheduler:       sim.Synchronous{},
			StopWhenDecided: true,
		})
		rep := consensus.Check(inputs, res)
		if !rep.OK() {
			t.Fatalf("arms=%d: %v", arms, rep.Errors)
		}
		return res.MaxDecideTime
	}
	t8, t32 := timeFor(8), timeFor(32)
	// 4x the nodes should cost roughly 4x the time through the hub; we
	// assert at least 2.5x to leave slack for constants.
	if float64(t32) < 2.5*float64(t8) {
		t.Fatalf("decision times t8=%d t32=%d: hub backlog not visible", t8, t32)
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 0)
}
