// Package gatherall implements the "something simpler" baseline the paper
// mentions in Section 4.2: with unique ids, knowledge of n, and no crash
// failures, consensus can be solved by simply gathering every node's
// (id, value) pair at every node and applying a deterministic rule.
//
// Each message carries a single (id, value) pair — the model's O(1)-ids
// restriction — so every node must flood n distinct pairs. On bottleneck
// topologies (for example graph.StarOfLines) the hub relays Theta(n) pairs
// one broadcast at a time, which is exactly the Theta(n*Fack) behaviour
// wPAXOS's aggregating trees avoid; experiment E7 measures the contrast.
//
// A node decides once it knows all n pairs, choosing the minimum value
// (any deterministic function of the full multiset preserves agreement and
// validity).
package gatherall

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
)

// PairMsg floods one node's (id, value) pair.
type PairMsg struct {
	ID amac.NodeID
	V  amac.Value
}

// IDCount implements amac.Message.
func (PairMsg) IDCount() int { return 1 }

// Node is the per-node state machine.
type Node struct {
	api   amac.API
	n     int
	input amac.Value

	known    map[amac.NodeID]amac.Value
	queue    []PairMsg // pairs not yet broadcast by this node
	queued   map[amac.NodeID]bool
	inflight bool
	decided  bool
	decision amac.Value
}

// New returns a gather-all node that knows the network size n.
func New(input amac.Value, n int) *Node {
	if n < 1 {
		panic(fmt.Sprintf("gatherall: invalid network size %d", n))
	}
	return &Node{
		n:      n,
		input:  input,
		known:  make(map[amac.NodeID]amac.Value, n),
		queued: make(map[amac.NodeID]bool, n),
	}
}

// NewFactory returns a factory for networks of the given size.
func NewFactory(n int) amac.Factory {
	return func(cfg amac.NodeConfig) amac.Algorithm { return New(cfg.Input, n) }
}

// Start implements amac.Algorithm.
func (a *Node) Start(api amac.API) {
	a.api = api
	a.learn(PairMsg{ID: api.ID(), V: a.input})
	a.pump()
}

// OnReceive implements amac.Algorithm.
func (a *Node) OnReceive(m amac.Message) {
	pair, ok := m.(PairMsg)
	if !ok {
		panic(fmt.Sprintf("gatherall: unexpected message type %T", m))
	}
	a.learn(pair)
	a.pump()
}

// OnAck implements amac.Algorithm.
func (a *Node) OnAck(amac.Message) {
	a.inflight = false
	a.pump()
}

// learn records a pair, queues it for forwarding, and decides when the
// census is complete.
func (a *Node) learn(p PairMsg) {
	if _, seen := a.known[p.ID]; seen {
		return
	}
	a.known[p.ID] = p.V
	if !a.queued[p.ID] {
		a.queued[p.ID] = true
		a.queue = append(a.queue, p)
	}
	if len(a.known) == a.n && !a.decided {
		min := p.V
		for _, v := range a.known {
			if v < min {
				min = v
			}
		}
		a.decided = true
		a.decision = min
		a.api.Decide(min)
	}
}

// pump floods one queued pair per broadcast. Forwarding continues after
// deciding so that slower nodes can complete their census.
func (a *Node) pump() {
	if a.inflight || len(a.queue) == 0 {
		return
	}
	m := a.queue[0]
	a.queue = a.queue[1:]
	a.inflight = true
	a.api.Broadcast(m)
}

// Decided implements amac.Decider.
func (a *Node) Decided() (amac.Value, bool) { return a.decision, a.decided }

var (
	_ amac.Algorithm = (*Node)(nil)
	_ amac.Decider   = (*Node)(nil)
	_ amac.Message   = PairMsg{}
)
