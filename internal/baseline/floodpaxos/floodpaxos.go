// Package floodpaxos implements the strawman the paper argues against in
// Section 4.2: PAXOS logic whose acceptor responses are flooded
// individually instead of aggregated along proposer-rooted trees.
//
// Every acceptor's response to a proposition is a separate message carrying
// that acceptor's id, and every node re-floods every distinct response it
// sees. Messages hold O(1) ids, so a node can forward only one response
// per broadcast: near bottlenecks the backlog is Theta(n) messages and the
// proposer needs Theta(n*Fack) time to count a majority — versus wPAXOS's
// O(D*Fack) aggregation. Experiment E7 measures the contrast.
//
// Like wPAXOS it assumes unique ids and knowledge of n, elects the maximum
// id by flooding, and restarts proposals on change notifications (here
// triggered by leader-estimate updates only; there are no trees to
// stabilize).
package floodpaxos

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/core/wpaxos"
)

// LeaderMsg floods the maximum id (as in wPAXOS's leader election).
type LeaderMsg struct {
	ID amac.NodeID
}

// ChangeMsg is the change notification.
type ChangeMsg struct {
	T  int64
	ID amac.NodeID
}

// ProposerMsg floods a prepare or propose.
type ProposerMsg struct {
	Kind wpaxos.PropKind
	Num  wpaxos.ProposalNum
	Val  amac.Value
}

// Proposition returns the proposition this message belongs to.
func (m ProposerMsg) Proposition() wpaxos.Proposition {
	return wpaxos.Proposition{Kind: m.Kind, Num: m.Num}
}

// ResponseMsg is one acceptor's (un-aggregated) response, flooded through
// the whole network until it reaches the proposer.
type ResponseMsg struct {
	Prop      wpaxos.Proposition
	Acceptor  amac.NodeID
	Positive  bool
	Prev      *wpaxos.Proposal
	Committed wpaxos.ProposalNum
}

// DecideMsg floods the decision.
type DecideMsg struct {
	Val amac.Value
}

// Combined multiplexes one message per queue into a single broadcast.
type Combined struct {
	Leader   *LeaderMsg
	Change   *ChangeMsg
	Proposer *ProposerMsg
	Response *ResponseMsg
	Decide   *DecideMsg
}

// IDCount implements amac.Message.
func (m Combined) IDCount() int {
	c := 0
	if m.Leader != nil {
		c++
	}
	if m.Change != nil {
		c++
	}
	if m.Proposer != nil {
		c++
	}
	if m.Response != nil {
		c += 2
		if m.Response.Prev != nil {
			c++
		}
		if !m.Response.Committed.IsZero() {
			c++
		}
	}
	return c
}

// respKey dedups response floods.
type respKey struct {
	prop     wpaxos.Proposition
	acceptor amac.NodeID
}

// Node is the per-node state machine.
type Node struct {
	api   amac.API
	id    amac.NodeID
	n     int
	input amac.Value

	omega      amac.NodeID
	leaderQ    *LeaderMsg
	lastChange int64
	changeQ    *ChangeMsg

	propQ        *ProposerMsg
	seenProps    map[wpaxos.Proposition]bool
	maxLeaderNum wpaxos.ProposalNum

	respQ    []ResponseMsg
	seenResp map[respKey]bool

	promised wpaxos.ProposalNum
	accepted *wpaxos.Proposal

	phase      int // 0 idle, 1 preparing, 2 proposing
	num        wpaxos.ProposalNum
	maxTagSeen int64
	triesLeft  int
	acks       map[amac.NodeID]bool
	nacks      map[amac.NodeID]bool
	bestPrev   *wpaxos.Proposal
	value      amac.Value

	decideQ  *DecideMsg
	inflight bool
	decided  bool
	decision amac.Value
}

// New returns a flood-paxos node knowing the network size n.
func New(input amac.Value, n int) *Node {
	if n < 1 {
		panic(fmt.Sprintf("floodpaxos: invalid network size %d", n))
	}
	if input != 0 && input != 1 {
		panic(fmt.Sprintf("floodpaxos: input %d is not binary", input))
	}
	return &Node{
		n:         n,
		input:     input,
		seenProps: make(map[wpaxos.Proposition]bool),
		seenResp:  make(map[respKey]bool),
	}
}

// NewFactory returns a factory for networks of the given size.
func NewFactory(n int) amac.Factory {
	return func(cfg amac.NodeConfig) amac.Algorithm { return New(cfg.Input, n) }
}

// Start implements amac.Algorithm.
func (a *Node) Start(api amac.API) {
	a.api = api
	a.id = api.ID()
	a.omega = a.id
	a.leaderQ = &LeaderMsg{ID: a.id}
	a.lastChange = -1
	if a.n == 1 {
		a.decide(a.input)
		return
	}
	a.pump()
}

// OnReceive implements amac.Algorithm.
func (a *Node) OnReceive(m amac.Message) {
	c, ok := m.(Combined)
	if !ok {
		panic(fmt.Sprintf("floodpaxos: unexpected message type %T", m))
	}
	if c.Leader != nil && c.Leader.ID > a.omega {
		a.omega = c.Leader.ID
		a.leaderQ = &LeaderMsg{ID: a.omega}
		if a.propQ != nil && a.propQ.Num.ID != a.omega {
			a.propQ = nil
		}
		a.maxLeaderNum = wpaxos.ProposalNum{}
		a.respQ = a.respQ[:0]
		// A leader update is the change event.
		a.lastChange = a.api.Now()
		a.changeQ = &ChangeMsg{T: a.lastChange, ID: a.id}
		if a.omega == a.id {
			a.generateProposal()
		}
	}
	if c.Change != nil && c.Change.T > a.lastChange {
		a.lastChange = c.Change.T
		a.changeQ = &ChangeMsg{T: c.Change.T, ID: c.Change.ID}
		if a.omega == a.id {
			a.generateProposal()
		}
	}
	if c.Proposer != nil {
		a.onProposer(*c.Proposer)
	}
	if c.Response != nil {
		a.onResponse(*c.Response)
	}
	if c.Decide != nil && !a.decided {
		a.decide(c.Decide.Val)
		a.decideQ = &DecideMsg{Val: c.Decide.Val}
	}
	a.pump()
}

// OnAck implements amac.Algorithm.
func (a *Node) OnAck(amac.Message) {
	a.inflight = false
	a.pump()
}

func (a *Node) pump() {
	if a.inflight {
		return
	}
	var c Combined
	any := false
	if a.decideQ != nil {
		c.Decide, a.decideQ = a.decideQ, nil
		any = true
	}
	if !a.decided {
		if a.leaderQ != nil {
			c.Leader, a.leaderQ = a.leaderQ, nil
			any = true
		}
		if a.changeQ != nil {
			c.Change, a.changeQ = a.changeQ, nil
			any = true
		}
		if a.propQ != nil {
			c.Proposer, a.propQ = a.propQ, nil
			any = true
		}
		if len(a.respQ) > 0 {
			r := a.respQ[0]
			a.respQ = a.respQ[1:]
			c.Response = &r
			any = true
		}
	}
	if !any {
		return
	}
	a.inflight = true
	a.api.Broadcast(c)
}

func (a *Node) onProposer(m ProposerMsg) {
	if a.maxTagSeen < m.Num.Tag {
		a.maxTagSeen = m.Num.Tag
	}
	key := m.Proposition()
	if a.seenProps[key] {
		return
	}
	a.seenProps[key] = true
	if m.Num.ID != a.omega {
		return
	}
	a.noteLeaderNum(m.Num)
	if a.propQ == nil || a.propQ.Num.Less(m.Num) ||
		(a.propQ.Num == m.Num && a.propQ.Kind == wpaxos.Prepare && m.Kind == wpaxos.Propose) {
		a.propQ = &m
	}
	a.respond(m)
}

func (a *Node) noteLeaderNum(num wpaxos.ProposalNum) {
	if a.maxLeaderNum.Less(num) {
		a.maxLeaderNum = num
		kept := a.respQ[:0]
		for _, r := range a.respQ {
			if !r.Prop.Num.Less(num) {
				kept = append(kept, r)
			}
		}
		a.respQ = kept
	}
}

// respond runs the acceptor and emits one individual response.
func (a *Node) respond(m ProposerMsg) {
	r := ResponseMsg{Prop: m.Proposition(), Acceptor: a.id}
	switch m.Kind {
	case wpaxos.Prepare:
		if a.promised.Less(m.Num) {
			a.promised = m.Num
			r.Positive = true
			r.Prev = a.accepted
		} else {
			r.Committed = a.promised
		}
	case wpaxos.Propose:
		if !m.Num.Less(a.promised) {
			a.promised = m.Num
			a.accepted = &wpaxos.Proposal{Num: m.Num, Val: m.Val}
			r.Positive = true
		} else {
			r.Committed = a.promised
		}
	}
	a.routeResponse(r)
}

// routeResponse floods a response (or consumes it when this node is the
// proposer).
func (a *Node) routeResponse(r ResponseMsg) {
	if r.Prop.Num.ID == a.id {
		a.consume(r)
		return
	}
	if r.Prop.Num.ID != a.omega || r.Prop.Num.Less(a.maxLeaderNum) {
		return
	}
	a.respQ = append(a.respQ, r)
}

func (a *Node) onResponse(r ResponseMsg) {
	if a.maxTagSeen < r.Committed.Tag {
		a.maxTagSeen = r.Committed.Tag
	}
	key := respKey{prop: r.Prop, acceptor: r.Acceptor}
	if a.seenResp[key] {
		return
	}
	a.seenResp[key] = true
	a.routeResponse(r)
}

func (a *Node) generateProposal() {
	if a.decided {
		return
	}
	a.triesLeft = 2
	a.startProposal()
}

func (a *Node) startProposal() {
	a.triesLeft--
	a.maxTagSeen++
	a.num = wpaxos.ProposalNum{Tag: a.maxTagSeen, ID: a.id}
	a.phase = 1
	a.acks = make(map[amac.NodeID]bool, a.n)
	a.nacks = make(map[amac.NodeID]bool, a.n)
	a.bestPrev = nil
	m := ProposerMsg{Kind: wpaxos.Prepare, Num: a.num}
	a.seenProps[m.Proposition()] = true
	a.noteLeaderNum(a.num)
	a.propQ = &m
	a.respond(m)
}

// consume is the proposer counting individual responses.
func (a *Node) consume(r ResponseMsg) {
	if a.decided || r.Prop.Num != a.num {
		return
	}
	wantKind := wpaxos.Prepare
	if a.phase == 2 {
		wantKind = wpaxos.Propose
	}
	if a.phase == 0 || r.Prop.Kind != wantKind {
		return
	}
	if r.Positive {
		a.acks[r.Acceptor] = true
		if a.phase == 1 {
			if r.Prev != nil && (a.bestPrev == nil || a.bestPrev.Num.Less(r.Prev.Num)) {
				a.bestPrev = r.Prev
			}
			if 2*len(a.acks) > a.n {
				a.beginPropose()
			}
		} else if 2*len(a.acks) > a.n {
			a.decide(a.value)
			a.decideQ = &DecideMsg{Val: a.value}
		}
		return
	}
	a.nacks[r.Acceptor] = true
	if 2*len(a.nacks) > a.n {
		a.retry()
	}
}

func (a *Node) beginPropose() {
	a.phase = 2
	a.acks = make(map[amac.NodeID]bool, a.n)
	a.nacks = make(map[amac.NodeID]bool, a.n)
	if a.bestPrev != nil {
		a.value = a.bestPrev.Val
	} else {
		a.value = a.input
	}
	m := ProposerMsg{Kind: wpaxos.Propose, Num: a.num, Val: a.value}
	a.seenProps[m.Proposition()] = true
	a.propQ = &m
	a.respond(m)
}

func (a *Node) retry() {
	if a.omega != a.id || a.triesLeft <= 0 {
		a.phase = 0
		a.num = wpaxos.ProposalNum{}
		return
	}
	a.startProposal()
}

func (a *Node) decide(v amac.Value) {
	a.decided = true
	a.decision = v
	a.api.Decide(v)
}

// Decided implements amac.Decider.
func (a *Node) Decided() (amac.Value, bool) { return a.decision, a.decided }

var (
	_ amac.Algorithm = (*Node)(nil)
	_ amac.Decider   = (*Node)(nil)
	_ amac.Message   = Combined{}
)
