// Package floodpaxos implements the strawman the paper argues against in
// Section 4.2: PAXOS logic whose acceptor responses are flooded
// individually instead of aggregated along proposer-rooted trees.
//
// Every acceptor's response to a proposition is a separate message carrying
// that acceptor's id, and every node re-floods every distinct response it
// sees. Messages hold O(1) ids, so a node can forward only one response
// per broadcast: near bottlenecks the backlog is Theta(n) messages and the
// proposer needs Theta(n*Fack) time to count a majority — versus wPAXOS's
// O(D*Fack) aggregation. Experiment E7 measures the contrast.
//
// Like wPAXOS it assumes unique ids and knowledge of n, elects the maximum
// id by flooding, and restarts proposals on change notifications (here
// triggered by leader-estimate updates only; there are no trees to
// stabilize).
package floodpaxos

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/core/wpaxos"
)

// LeaderMsg floods the maximum id (as in wPAXOS's leader election).
type LeaderMsg struct {
	ID amac.NodeID
}

// ChangeMsg is the change notification.
type ChangeMsg struct {
	T  int64
	ID amac.NodeID
}

// ProposerMsg floods a prepare or propose.
type ProposerMsg struct {
	Kind wpaxos.PropKind
	Num  wpaxos.ProposalNum
	Val  amac.Value
}

// Proposition returns the proposition this message belongs to.
func (m ProposerMsg) Proposition() wpaxos.Proposition {
	return wpaxos.Proposition{Kind: m.Kind, Num: m.Num}
}

// ResponseMsg is one acceptor's (un-aggregated) response, flooded through
// the whole network until it reaches the proposer.
type ResponseMsg struct {
	Prop      wpaxos.Proposition
	Acceptor  amac.NodeID
	Positive  bool
	Prev      *wpaxos.Proposal
	Committed wpaxos.ProposalNum
}

// DecideMsg floods the decision.
type DecideMsg struct {
	Val amac.Value
}

// Combined multiplexes one message per queue into a single broadcast. The
// sender fills the unexported inline slots and points the exported fields
// at them, so assembling a broadcast allocates nothing beyond the Combined
// itself — and nothing at all once a pooling node (see NewFactory) has
// recycled its first message.
type Combined struct {
	Leader   *LeaderMsg
	Change   *ChangeMsg
	Proposer *ProposerMsg
	Response *ResponseMsg
	Decide   *DecideMsg

	// buf backs the pointer fields above when the message is assembled by
	// pump. Receivers must treat a delivered Combined as immutable and
	// copy what they keep (they do), because pooling senders reuse the
	// whole object — buf included — after the ack.
	buf struct {
		leader   LeaderMsg
		change   ChangeMsg
		proposer ProposerMsg
		response ResponseMsg
		decide   DecideMsg
	}
}

// IDCount implements amac.Message.
func (m *Combined) IDCount() int {
	c := 0
	if m.Leader != nil {
		c++
	}
	if m.Change != nil {
		c++
	}
	if m.Proposer != nil {
		c++
	}
	if m.Response != nil {
		c += 2
		if m.Response.Prev != nil {
			c++
		}
		if !m.Response.Committed.IsZero() {
			c++
		}
	}
	return c
}

// respKey dedups response floods.
type respKey struct {
	prop     wpaxos.Proposition
	acceptor amac.NodeID
}

// Node is the per-node state machine. The outbound queues (leaderQ,
// changeQ, propQ, decideQ) are value slots with presence flags and respQ
// pops through a head index, so queue traffic allocates only when respQ
// has to grow.
type Node struct {
	api   amac.API
	id    amac.NodeID
	n     int
	input amac.Value

	omega      amac.NodeID
	hasLeaderQ bool
	leaderQ    LeaderMsg
	lastChange int64
	hasChangeQ bool
	changeQ    ChangeMsg

	hasPropQ     bool
	propQ        ProposerMsg
	seenProps    map[wpaxos.Proposition]bool
	maxLeaderNum wpaxos.ProposalNum

	respQ    []ResponseMsg
	respHead int
	seenResp map[respKey]bool

	promised wpaxos.ProposalNum
	accepted *wpaxos.Proposal

	phase      int // 0 idle, 1 preparing, 2 proposing
	num        wpaxos.ProposalNum
	maxTagSeen int64
	triesLeft  int
	acks       map[amac.NodeID]bool
	nacks      map[amac.NodeID]bool
	bestPrev   *wpaxos.Proposal
	value      amac.Value

	hasDecideQ bool
	decideQ    DecideMsg
	inflight   bool
	decided    bool
	decision   amac.Value

	// reuse recycles broadcast buffers through msgFree after each ack
	// (see NewFactory for the substrate guarantee this relies on). A node
	// has at most one broadcast in flight, so the pool holds at most one
	// message.
	reuse   bool
	msgFree []*Combined
}

// New returns a flood-paxos node knowing the network size n. Nodes built
// this way allocate a fresh message per broadcast and are safe on any
// substrate; NewFactory enables buffer reuse for simulator runs.
func New(input amac.Value, n int) *Node {
	if n < 1 {
		panic(fmt.Sprintf("floodpaxos: invalid network size %d", n))
	}
	if input != 0 && input != 1 {
		panic(fmt.Sprintf("floodpaxos: input %d is not binary", input))
	}
	return &Node{
		n:     n,
		input: input,
		// Sized for the common census: a couple of propositions, each
		// drawing one response per acceptor, deduped network-wide. Sizing
		// up front trades one allocation for the incremental bucket
		// growth that otherwise dominates the flood path.
		seenProps: make(map[wpaxos.Proposition]bool, 8),
		seenResp:  make(map[respKey]bool, 4*n),
		respQ:     make([]ResponseMsg, 0, 2*n),
	}
}

// NewFactory returns a factory for networks of the given size. Nodes it
// builds recycle their broadcast buffer after each ack, which makes the
// steady-state broadcast path allocation-free. Reuse relies on the
// delivery-before-ack guarantee of serialized substrates — by the time the
// sender's OnAck runs, every OnReceive handler for that broadcast has
// returned (internal/sim's engine orders co-timed deliveries before acks
// and runs handlers serially). On wall-clock substrates (internal/live,
// internal/netmac), where a receiver may still be processing the message
// when the ack lands, build nodes with New instead.
func NewFactory(n int) amac.Factory {
	return func(cfg amac.NodeConfig) amac.Algorithm {
		a := New(cfg.Input, n)
		a.reuse = true
		return a
	}
}

// getMsg takes a broadcast buffer from the pool, or allocates one.
func (a *Node) getMsg() *Combined {
	if k := len(a.msgFree); k > 0 {
		c := a.msgFree[k-1]
		a.msgFree = a.msgFree[:k-1]
		return c
	}
	return &Combined{}
}

// Start implements amac.Algorithm.
func (a *Node) Start(api amac.API) {
	a.api = api
	a.id = api.ID()
	a.omega = a.id
	a.hasLeaderQ = true
	a.leaderQ = LeaderMsg{ID: a.id}
	a.lastChange = -1
	if a.n == 1 {
		a.decide(a.input)
		return
	}
	a.pump()
}

// OnReceive implements amac.Algorithm.
func (a *Node) OnReceive(m amac.Message) {
	c, ok := m.(*Combined)
	if !ok {
		panic(fmt.Sprintf("floodpaxos: unexpected message type %T", m))
	}
	if c.Leader != nil && c.Leader.ID > a.omega {
		a.omega = c.Leader.ID
		a.hasLeaderQ = true
		a.leaderQ = LeaderMsg{ID: a.omega}
		if a.hasPropQ && a.propQ.Num.ID != a.omega {
			a.hasPropQ = false
		}
		a.maxLeaderNum = wpaxos.ProposalNum{}
		a.respQ = a.respQ[:0]
		a.respHead = 0
		// A leader update is the change event.
		a.lastChange = a.api.Now()
		a.hasChangeQ = true
		a.changeQ = ChangeMsg{T: a.lastChange, ID: a.id}
		if a.omega == a.id {
			a.generateProposal()
		}
	}
	if c.Change != nil && c.Change.T > a.lastChange {
		a.lastChange = c.Change.T
		a.hasChangeQ = true
		a.changeQ = ChangeMsg{T: c.Change.T, ID: c.Change.ID}
		if a.omega == a.id {
			a.generateProposal()
		}
	}
	if c.Proposer != nil {
		a.onProposer(*c.Proposer)
	}
	if c.Response != nil {
		a.onResponse(*c.Response)
	}
	if c.Decide != nil && !a.decided {
		a.decide(c.Decide.Val)
		a.hasDecideQ = true
		a.decideQ = DecideMsg{Val: c.Decide.Val}
	}
	a.pump()
}

// OnAck implements amac.Algorithm.
func (a *Node) OnAck(m amac.Message) {
	a.inflight = false
	if a.reuse {
		// Every delivery handler for this broadcast has returned (the
		// NewFactory contract), so the buffer can be recycled.
		c := m.(*Combined)
		*c = Combined{}
		a.msgFree = append(a.msgFree, c)
	}
	a.pump()
}

func (a *Node) pump() {
	if a.inflight {
		return
	}
	var c *Combined
	// ensure allocates the outgoing message only once something queued.
	ensure := func() {
		if c == nil {
			c = a.getMsg()
		}
	}
	if a.hasDecideQ {
		ensure()
		c.buf.decide = a.decideQ
		c.Decide = &c.buf.decide
		a.hasDecideQ = false
	}
	if !a.decided {
		if a.hasLeaderQ {
			ensure()
			c.buf.leader = a.leaderQ
			c.Leader = &c.buf.leader
			a.hasLeaderQ = false
		}
		if a.hasChangeQ {
			ensure()
			c.buf.change = a.changeQ
			c.Change = &c.buf.change
			a.hasChangeQ = false
		}
		if a.hasPropQ {
			ensure()
			c.buf.proposer = a.propQ
			c.Proposer = &c.buf.proposer
			a.hasPropQ = false
		}
		if a.respHead < len(a.respQ) {
			ensure()
			c.buf.response = a.respQ[a.respHead]
			c.Response = &c.buf.response
			a.respHead++
			if a.respHead == len(a.respQ) {
				a.respQ = a.respQ[:0]
				a.respHead = 0
			}
		}
	}
	if c == nil {
		return
	}
	a.inflight = true
	a.api.Broadcast(c)
}

func (a *Node) onProposer(m ProposerMsg) {
	if a.maxTagSeen < m.Num.Tag {
		a.maxTagSeen = m.Num.Tag
	}
	key := m.Proposition()
	if a.seenProps[key] {
		return
	}
	a.seenProps[key] = true
	if m.Num.ID != a.omega {
		return
	}
	a.noteLeaderNum(m.Num)
	if !a.hasPropQ || a.propQ.Num.Less(m.Num) ||
		(a.propQ.Num == m.Num && a.propQ.Kind == wpaxos.Prepare && m.Kind == wpaxos.Propose) {
		a.hasPropQ = true
		a.propQ = m
	}
	a.respond(m)
}

func (a *Node) noteLeaderNum(num wpaxos.ProposalNum) {
	if a.maxLeaderNum.Less(num) {
		a.maxLeaderNum = num
		// Compact the pending responses in place: the write index starts
		// at 0 and never passes the read index (which starts at respHead).
		kept := a.respQ[:0]
		for _, r := range a.respQ[a.respHead:] {
			if !r.Prop.Num.Less(num) {
				kept = append(kept, r)
			}
		}
		a.respQ = kept
		a.respHead = 0
	}
}

// respond runs the acceptor and emits one individual response.
func (a *Node) respond(m ProposerMsg) {
	r := ResponseMsg{Prop: m.Proposition(), Acceptor: a.id}
	switch m.Kind {
	case wpaxos.Prepare:
		if a.promised.Less(m.Num) {
			a.promised = m.Num
			r.Positive = true
			r.Prev = a.accepted
		} else {
			r.Committed = a.promised
		}
	case wpaxos.Propose:
		if !m.Num.Less(a.promised) {
			a.promised = m.Num
			a.accepted = &wpaxos.Proposal{Num: m.Num, Val: m.Val}
			r.Positive = true
		} else {
			r.Committed = a.promised
		}
	}
	a.routeResponse(r)
}

// routeResponse floods a response (or consumes it when this node is the
// proposer).
func (a *Node) routeResponse(r ResponseMsg) {
	if r.Prop.Num.ID == a.id {
		a.consume(r)
		return
	}
	if r.Prop.Num.ID != a.omega || r.Prop.Num.Less(a.maxLeaderNum) {
		return
	}
	a.respQ = append(a.respQ, r)
}

func (a *Node) onResponse(r ResponseMsg) {
	if a.maxTagSeen < r.Committed.Tag {
		a.maxTagSeen = r.Committed.Tag
	}
	key := respKey{prop: r.Prop, acceptor: r.Acceptor}
	if a.seenResp[key] {
		return
	}
	a.seenResp[key] = true
	a.routeResponse(r)
}

func (a *Node) generateProposal() {
	if a.decided {
		return
	}
	a.triesLeft = 2
	a.startProposal()
}

// resetTallies re-arms the ack/nack tallies for a new phase, reusing the
// maps across phases and proposals.
func (a *Node) resetTallies() {
	if a.acks == nil {
		a.acks = make(map[amac.NodeID]bool, a.n)
		a.nacks = make(map[amac.NodeID]bool, a.n)
		return
	}
	clear(a.acks)
	clear(a.nacks)
}

func (a *Node) startProposal() {
	a.triesLeft--
	a.maxTagSeen++
	a.num = wpaxos.ProposalNum{Tag: a.maxTagSeen, ID: a.id}
	a.phase = 1
	a.resetTallies()
	a.bestPrev = nil
	m := ProposerMsg{Kind: wpaxos.Prepare, Num: a.num}
	a.seenProps[m.Proposition()] = true
	a.noteLeaderNum(a.num)
	a.hasPropQ = true
	a.propQ = m
	a.respond(m)
}

// consume is the proposer counting individual responses.
func (a *Node) consume(r ResponseMsg) {
	if a.decided || r.Prop.Num != a.num {
		return
	}
	wantKind := wpaxos.Prepare
	if a.phase == 2 {
		wantKind = wpaxos.Propose
	}
	if a.phase == 0 || r.Prop.Kind != wantKind {
		return
	}
	if r.Positive {
		a.acks[r.Acceptor] = true
		if a.phase == 1 {
			if r.Prev != nil && (a.bestPrev == nil || a.bestPrev.Num.Less(r.Prev.Num)) {
				a.bestPrev = r.Prev
			}
			if 2*len(a.acks) > a.n {
				a.beginPropose()
			}
		} else if 2*len(a.acks) > a.n {
			a.decide(a.value)
			a.hasDecideQ = true
			a.decideQ = DecideMsg{Val: a.value}
		}
		return
	}
	a.nacks[r.Acceptor] = true
	if 2*len(a.nacks) > a.n {
		a.retry()
	}
}

func (a *Node) beginPropose() {
	a.phase = 2
	a.resetTallies()
	if a.bestPrev != nil {
		a.value = a.bestPrev.Val
	} else {
		a.value = a.input
	}
	m := ProposerMsg{Kind: wpaxos.Propose, Num: a.num, Val: a.value}
	a.seenProps[m.Proposition()] = true
	a.hasPropQ = true
	a.propQ = m
	a.respond(m)
}

func (a *Node) retry() {
	if a.omega != a.id || a.triesLeft <= 0 {
		a.phase = 0
		a.num = wpaxos.ProposalNum{}
		return
	}
	a.startProposal()
}

func (a *Node) decide(v amac.Value) {
	a.decided = true
	a.decision = v
	a.api.Decide(v)
}

// Decided implements amac.Decider.
func (a *Node) Decided() (amac.Value, bool) { return a.decision, a.decided }

var (
	_ amac.Algorithm = (*Node)(nil)
	_ amac.Decider   = (*Node)(nil)
	_ amac.Message   = (*Combined)(nil)
)
