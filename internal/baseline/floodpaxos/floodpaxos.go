// Package floodpaxos implements the strawman the paper argues against in
// Section 4.2: PAXOS logic whose acceptor responses are flooded
// individually instead of aggregated along proposer-rooted trees.
//
// Every acceptor's response to a proposition is a separate message carrying
// that acceptor's id, and every node re-floods every distinct response it
// sees. Messages hold O(1) ids, so a node can forward only one response
// per broadcast: near bottlenecks the backlog is Theta(n) messages and the
// proposer needs Theta(n*Fack) time to count a majority — versus wPAXOS's
// O(D*Fack) aggregation. Experiment E7 measures the contrast.
//
// Like wPAXOS it assumes unique ids and knowledge of n. Leader election is
// the shared suspicion-based Ω detector (internal/core/wpaxos/detector.go):
// membership is gossiped one id per broadcast, the maximum unsuspected
// member is the leader, and silence demotes it so the proposership rotates
// off corpses. Outbound queues are retransmit-until-superseded: the newest
// change, the highest-numbered proposition, and every pending response
// stay queued and are re-broadcast (responses round-robin) until newer
// state supersedes them, so a message lost to a lossy overlay edge is
// re-offered forever rather than gone. Receivers deduplicate, keeping the
// retransmissions idempotent. Any node that observes a majority of
// acceptors accepting the same proposal decides — termination does not
// require the proposer to survive its own round.
package floodpaxos

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/core/wpaxos"
	"github.com/absmac/absmac/internal/metrics"
)

// LeaderMsg gossips one known member id (the detector's membership
// rotation; the maximum unsuspected member is the leader).
type LeaderMsg struct {
	ID amac.NodeID
}

// ChangeMsg is the change notification.
type ChangeMsg struct {
	T  int64
	ID amac.NodeID
}

// ProposerMsg floods a prepare or propose.
type ProposerMsg struct {
	Kind wpaxos.PropKind
	Num  wpaxos.ProposalNum
	Val  amac.Value
}

// Proposition returns the proposition this message belongs to.
func (m ProposerMsg) Proposition() wpaxos.Proposition {
	return wpaxos.Proposition{Kind: m.Kind, Num: m.Num}
}

// ResponseMsg is one acceptor's (un-aggregated) response, flooded through
// the whole network until it reaches the proposer.
type ResponseMsg struct {
	Prop      wpaxos.Proposition
	Acceptor  amac.NodeID
	Positive  bool
	Prev      *wpaxos.Proposal
	Committed wpaxos.ProposalNum
}

// DecideMsg floods the decision.
type DecideMsg struct {
	Val amac.Value
}

// Combined multiplexes one message per queue into a single broadcast. The
// sender fills the unexported inline slots and points the exported fields
// at them, so assembling a broadcast allocates nothing beyond the Combined
// itself — and nothing at all once a pooling node (see NewFactory) has
// recycled its first message.
type Combined struct {
	Leader   *LeaderMsg
	Change   *ChangeMsg
	Proposer *ProposerMsg
	Response *ResponseMsg
	Decide   *DecideMsg

	// buf backs the pointer fields above when the message is assembled by
	// pump. Receivers must treat a delivered Combined as immutable and
	// copy what they keep (they do), because pooling senders reuse the
	// whole object — buf included — after the ack.
	buf struct {
		leader   LeaderMsg
		change   ChangeMsg
		proposer ProposerMsg
		response ResponseMsg
		decide   DecideMsg
	}
}

// IDCount implements amac.Message.
func (m *Combined) IDCount() int {
	c := 0
	if m.Leader != nil {
		c++
	}
	if m.Change != nil {
		c++
	}
	if m.Proposer != nil {
		c++
	}
	if m.Response != nil {
		c += 2
		if m.Response.Prev != nil {
			c++
		}
		if !m.Response.Committed.IsZero() {
			c++
		}
	}
	return c
}

// respKey dedups response floods.
type respKey struct {
	prop     wpaxos.Proposition
	acceptor amac.NodeID
}

// Node is the per-node state machine. The outbound queues (changeQ, propQ,
// decideQ) are value slots with presence flags; respQ is a sticky cycle —
// entries leave only when a newer proposition from the same proposer
// supersedes them — so queue traffic allocates only when respQ has to
// grow.
type Node struct {
	api   amac.API
	id    amac.NodeID
	n     int
	input amac.Value

	det *wpaxos.Detector

	lastChange int64
	hasChangeQ bool
	changeQ    ChangeMsg

	hasPropQ  bool
	propQ     ProposerMsg
	seenProps map[wpaxos.Proposition]bool
	// maxNumBy is the largest proposal number seen per proposer; pending
	// responses are pruned per proposer, so one proposer's newer round
	// never discards another proposer's countable responses.
	maxNumBy map[amac.NodeID]wpaxos.ProposalNum

	respQ    []ResponseMsg
	respCur  int
	seenResp map[respKey]bool

	// propVals remembers the value of every propose seen, and chosenBy
	// the acceptors seen accepting each number: a majority means the
	// value is chosen and any observer decides, proposer dead or alive.
	propVals map[wpaxos.ProposalNum]amac.Value
	chosenBy map[wpaxos.ProposalNum]map[amac.NodeID]bool

	promised wpaxos.ProposalNum
	accepted *wpaxos.Proposal

	phase      int // 0 idle, 1 preparing, 2 proposing
	num        wpaxos.ProposalNum
	maxTagSeen int64
	triesLeft  int
	acks       map[amac.NodeID]bool
	nacks      map[amac.NodeID]bool
	bestPrev   *wpaxos.Proposal
	value      amac.Value

	hasDecideQ bool
	decideQ    DecideMsg
	inflight   bool
	decided    bool
	decision   amac.Value

	// reuse recycles broadcast buffers through msgFree after each ack
	// (see NewFactory for the substrate guarantee this relies on). A node
	// has at most one broadcast in flight, so the pool holds at most one
	// message.
	reuse   bool
	msgFree []*Combined

	// mreg is the substrate's metrics registry (nil when metrics are off);
	// the handles below are zero (disabled) then. propSent distinguishes a
	// sticky proposition's retransmissions from its first send.
	mreg         *metrics.Registry
	mProposals   metrics.Counter
	mRetries     metrics.Counter
	mNacks       metrics.Counter
	mRetransmits metrics.Counter
	propSent     bool
}

// New returns a flood-paxos node knowing the network size n. Nodes built
// this way allocate a fresh message per broadcast and are safe on any
// substrate; NewFactory enables buffer reuse for simulator runs.
func New(input amac.Value, n int) *Node {
	if n < 1 {
		panic(fmt.Sprintf("floodpaxos: invalid network size %d", n))
	}
	if input != 0 && input != 1 {
		panic(fmt.Sprintf("floodpaxos: input %d is not binary", input))
	}
	return &Node{
		n:     n,
		input: input,
		// Sized for the common census: a couple of propositions, each
		// drawing one response per acceptor, deduped network-wide. Sizing
		// up front trades one allocation for the incremental bucket
		// growth that otherwise dominates the flood path.
		seenProps: make(map[wpaxos.Proposition]bool, 8),
		seenResp:  make(map[respKey]bool, 4*n),
		respQ:     make([]ResponseMsg, 0, 2*n),
		maxNumBy:  make(map[amac.NodeID]wpaxos.ProposalNum, 4),
		propVals:  make(map[wpaxos.ProposalNum]amac.Value, 4),
		chosenBy:  make(map[wpaxos.ProposalNum]map[amac.NodeID]bool, 4),
	}
}

// NewFactory returns a factory for networks of the given size. Nodes it
// builds recycle their broadcast buffer after each ack, which makes the
// steady-state broadcast path allocation-free. Reuse relies on the
// delivery-before-ack guarantee of serialized substrates — by the time the
// sender's OnAck runs, every OnReceive handler for that broadcast has
// returned (internal/sim's engine orders co-timed deliveries before acks
// and runs handlers serially). On wall-clock substrates (internal/live,
// internal/netmac), where a receiver may still be processing the message
// when the ack lands, build nodes with New instead.
func NewFactory(n int) amac.Factory {
	return func(cfg amac.NodeConfig) amac.Algorithm {
		a := New(cfg.Input, n)
		a.reuse = true
		a.instrument(cfg.Metrics)
		return a
	}
}

// instrument registers the node's metric slots against r (nil-safe; all
// nodes share the slots, so values are network totals) and stashes the
// registry so Start can instrument the shared Ω detector.
func (a *Node) instrument(r *metrics.Registry) {
	a.mreg = r
	a.mProposals = r.Counter("flood_proposals")
	a.mRetries = r.Counter("flood_retries")
	a.mNacks = r.Counter("flood_nacks")
	a.mRetransmits = r.Counter("flood_retransmits")
}

// getMsg takes a broadcast buffer from the pool, or allocates one.
func (a *Node) getMsg() *Combined {
	if k := len(a.msgFree); k > 0 {
		c := a.msgFree[k-1]
		a.msgFree = a.msgFree[:k-1]
		return c
	}
	return &Combined{}
}

// Start implements amac.Algorithm.
func (a *Node) Start(api amac.API) {
	a.api = api
	a.id = api.ID()
	a.det = wpaxos.NewDetector(a.id, a.n)
	a.det.Instrument(a.mreg)
	a.lastChange = -1
	if a.n == 1 {
		a.decide(a.input)
		return
	}
	a.pump()
}

// OnReceive implements amac.Algorithm.
func (a *Node) OnReceive(m amac.Message) {
	c, ok := m.(*Combined)
	if !ok {
		panic(fmt.Sprintf("floodpaxos: unexpected message type %T", m))
	}
	if c.Leader != nil {
		prev := a.det.Omega()
		if a.det.Learn(c.Leader.ID) {
			a.det.Novel(a.api.Now())
			if a.det.Omega() != prev {
				// A leader update is the change event.
				a.localChange()
			}
		}
	}
	if c.Change != nil && c.Change.T > a.lastChange {
		a.lastChange = c.Change.T
		a.hasChangeQ = true
		a.changeQ = ChangeMsg{T: c.Change.T, ID: c.Change.ID}
		a.det.Novel(a.api.Now())
		if a.det.Omega() == a.id {
			a.generateProposal()
		}
	}
	if c.Proposer != nil {
		a.onProposer(*c.Proposer)
	}
	if c.Response != nil {
		a.onResponse(*c.Response)
	}
	if c.Decide != nil && !a.decided {
		a.decide(c.Decide.Val)
		a.hasDecideQ = true
		a.decideQ = DecideMsg{Val: c.Decide.Val}
	}
	a.pump()
}

// localChange floods a change notification and restarts the proposer when
// this node believes it is the leader.
func (a *Node) localChange() {
	a.lastChange = a.api.Now()
	a.hasChangeQ = true
	a.changeQ = ChangeMsg{T: a.lastChange, ID: a.id}
	if a.det.Omega() == a.id {
		a.generateProposal()
	}
}

// OnAck implements amac.Algorithm. The ack stream clocks the failure
// detector: undecided nodes broadcast on every pump (the leader slot is
// never empty), so silence checks never stop arriving.
func (a *Node) OnAck(m amac.Message) {
	a.inflight = false
	if a.reuse {
		// Every delivery handler for this broadcast has returned (the
		// NewFactory contract), so the buffer can be recycled.
		c := m.(*Combined)
		*c = Combined{}
		a.msgFree = append(a.msgFree, c)
	}
	now := a.api.Now()
	a.det.NoteAck(now)
	if !a.decided {
		switch a.det.Check(now) {
		case wpaxos.DetectorDemoted:
			a.localChange()
		case wpaxos.DetectorRearm:
			a.generateProposal()
		}
	}
	a.pump()
}

func (a *Node) pump() {
	if a.inflight {
		return
	}
	var c *Combined
	// ensure allocates the outgoing message only once something queued.
	ensure := func() {
		if c == nil {
			c = a.getMsg()
		}
	}
	if a.hasDecideQ {
		ensure()
		c.buf.decide = a.decideQ
		c.Decide = &c.buf.decide
		a.hasDecideQ = false
	}
	if !a.decided {
		// Membership gossip: one known id per pump, cycling. This slot
		// is always non-empty, so an undecided node is never silent —
		// the detector's liveness tick.
		ensure()
		c.buf.leader = LeaderMsg{ID: a.det.Gossip()}
		c.Leader = &c.buf.leader
		if a.hasChangeQ {
			// Sticky: the newest change is re-broadcast until a newer
			// one supersedes it (receivers dedup by timestamp).
			ensure()
			c.buf.change = a.changeQ
			c.Change = &c.buf.change
		}
		if a.hasPropQ {
			// Sticky: the highest-numbered proposition is re-broadcast
			// until superseded (receivers dedup on first sight).
			ensure()
			c.buf.proposer = a.propQ
			c.Proposer = &c.buf.proposer
			if a.propSent {
				a.mRetransmits.Inc()
			} else {
				a.propSent = true
			}
		}
		if len(a.respQ) > 0 {
			// Sticky cycle: pending responses are re-broadcast
			// round-robin until superseded per proposer.
			if a.respCur >= len(a.respQ) {
				a.respCur = 0
			}
			ensure()
			c.buf.response = a.respQ[a.respCur]
			c.Response = &c.buf.response
			a.respCur++
		}
	}
	if c == nil {
		return
	}
	a.det.NoteSend(a.api.Now())
	a.inflight = true
	a.api.Broadcast(c)
}

func (a *Node) onProposer(m ProposerMsg) {
	if a.maxTagSeen < m.Num.Tag {
		a.maxTagSeen = m.Num.Tag
	}
	key := m.Proposition()
	if a.seenProps[key] {
		return
	}
	a.seenProps[key] = true
	a.det.Novel(a.api.Now())
	// Respond to and relay every first-seen proposition, whoever proposed
	// it: with a rotating Ω, nodes may disagree about the leader, and
	// PAXOS safety is proposer-independent.
	a.noteProposerNum(m.Num)
	if m.Kind == wpaxos.Propose {
		a.propVals[m.Num] = m.Val
		a.maybeDecideChosen(m.Num)
	}
	if !a.hasPropQ || a.propQ.Num.Less(m.Num) ||
		(a.propQ.Num == m.Num && a.propQ.Kind == wpaxos.Prepare && m.Kind == wpaxos.Propose) {
		a.hasPropQ = true
		a.propQ = m
		a.propSent = false
	}
	a.respond(m)
}

// noteProposerNum updates the largest proposal number seen from num's
// proposer and prunes that proposer's superseded responses from the
// pending cycle.
func (a *Node) noteProposerNum(num wpaxos.ProposalNum) {
	if cur := a.maxNumBy[num.ID]; cur.Less(num) {
		a.maxNumBy[num.ID] = num
		kept := a.respQ[:0]
		for _, r := range a.respQ {
			if r.Prop.Num.ID == num.ID && r.Prop.Num.Less(num) {
				continue
			}
			kept = append(kept, r)
		}
		a.respQ = kept
		if a.respCur > len(a.respQ) {
			a.respCur = 0
		}
	}
}

// respond runs the acceptor and emits one individual response.
func (a *Node) respond(m ProposerMsg) {
	r := ResponseMsg{Prop: m.Proposition(), Acceptor: a.id}
	switch m.Kind {
	case wpaxos.Prepare:
		if a.promised.Less(m.Num) {
			a.promised = m.Num
			r.Positive = true
			r.Prev = a.accepted
		} else {
			r.Committed = a.promised
		}
	case wpaxos.Propose:
		if !m.Num.Less(a.promised) {
			a.promised = m.Num
			a.accepted = &wpaxos.Proposal{Num: m.Num, Val: m.Val}
			r.Positive = true
		} else {
			r.Committed = a.promised
		}
	}
	// Mark our own response seen so the flood echoing it back is not
	// re-queued as a duplicate.
	a.seenResp[respKey{prop: r.Prop, acceptor: r.Acceptor}] = true
	a.routeResponse(r)
}

// routeResponse queues a response for sticky flooding (or consumes it when
// this node is the proposer) and feeds the chosen-value watch.
func (a *Node) routeResponse(r ResponseMsg) {
	if r.Positive && r.Prop.Kind == wpaxos.Propose {
		a.tallyChosen(r.Prop.Num, r.Acceptor)
	}
	if r.Prop.Num.ID == a.id {
		a.consume(r)
		return
	}
	if r.Prop.Num.Less(a.maxNumBy[r.Prop.Num.ID]) {
		return // superseded by a newer round from the same proposer
	}
	a.respQ = append(a.respQ, r)
}

func (a *Node) onResponse(r ResponseMsg) {
	if a.maxTagSeen < r.Committed.Tag {
		a.maxTagSeen = r.Committed.Tag
	}
	key := respKey{prop: r.Prop, acceptor: r.Acceptor}
	if a.seenResp[key] {
		return
	}
	a.seenResp[key] = true
	a.det.Novel(a.api.Now())
	a.noteProposerNum(r.Prop.Num)
	a.routeResponse(r)
}

// tallyChosen records that acceptor accepted num; a majority of acceptors
// accepting the same number means its value is chosen, and any observer
// decides it (the responses keep flooding stickily even if the proposer
// died mid-round).
func (a *Node) tallyChosen(num wpaxos.ProposalNum, acceptor amac.NodeID) {
	set := a.chosenBy[num]
	if set == nil {
		set = make(map[amac.NodeID]bool, a.n)
		a.chosenBy[num] = set
	}
	if set[acceptor] {
		return
	}
	set[acceptor] = true
	a.maybeDecideChosen(num)
}

func (a *Node) maybeDecideChosen(num wpaxos.ProposalNum) {
	if a.decided {
		return
	}
	v, ok := a.propVals[num]
	if !ok {
		return // value not yet known; re-checked when the propose arrives
	}
	if 2*len(a.chosenBy[num]) > a.n {
		a.decide(v)
		a.hasDecideQ = true
		a.decideQ = DecideMsg{Val: v}
	}
}

func (a *Node) generateProposal() {
	if a.decided {
		return
	}
	a.triesLeft = 2
	a.startProposal()
}

// resetTallies re-arms the ack/nack tallies for a new phase, reusing the
// maps across phases and proposals.
func (a *Node) resetTallies() {
	if a.acks == nil {
		a.acks = make(map[amac.NodeID]bool, a.n)
		a.nacks = make(map[amac.NodeID]bool, a.n)
		return
	}
	clear(a.acks)
	clear(a.nacks)
}

func (a *Node) startProposal() {
	a.mProposals.Inc()
	a.triesLeft--
	a.maxTagSeen++
	a.num = wpaxos.ProposalNum{Tag: a.maxTagSeen, ID: a.id}
	a.phase = 1
	a.resetTallies()
	a.bestPrev = nil
	m := ProposerMsg{Kind: wpaxos.Prepare, Num: a.num}
	a.seenProps[m.Proposition()] = true
	a.noteProposerNum(a.num)
	a.hasPropQ = true
	a.propQ = m
	a.propSent = false
	a.respond(m)
}

// consume is the proposer counting individual responses.
func (a *Node) consume(r ResponseMsg) {
	if a.decided || r.Prop.Num != a.num {
		return
	}
	wantKind := wpaxos.Prepare
	if a.phase == 2 {
		wantKind = wpaxos.Propose
	}
	if a.phase == 0 || r.Prop.Kind != wantKind {
		return
	}
	if r.Positive {
		a.acks[r.Acceptor] = true
		if a.phase == 1 {
			if r.Prev != nil && (a.bestPrev == nil || a.bestPrev.Num.Less(r.Prev.Num)) {
				a.bestPrev = r.Prev
			}
			if 2*len(a.acks) > a.n {
				a.beginPropose()
			}
		} else if 2*len(a.acks) > a.n {
			a.decide(a.value)
			a.hasDecideQ = true
			a.decideQ = DecideMsg{Val: a.value}
		}
		return
	}
	a.mNacks.Inc()
	a.nacks[r.Acceptor] = true
	if 2*len(a.nacks) > a.n {
		a.retry()
	}
}

func (a *Node) beginPropose() {
	a.phase = 2
	a.resetTallies()
	if a.bestPrev != nil {
		a.value = a.bestPrev.Val
	} else {
		a.value = a.input
	}
	m := ProposerMsg{Kind: wpaxos.Propose, Num: a.num, Val: a.value}
	a.seenProps[m.Proposition()] = true
	a.propVals[a.num] = a.value
	a.hasPropQ = true
	a.propQ = m
	a.propSent = false
	a.respond(m)
}

// retry abandons the current number after a majority rejected it. A node
// that exhausts its two-numbers budget goes idle; the failure detector's
// re-arm (or the next change event) hands out a fresh budget, so no
// proposer is gated forever while it believes itself leader.
func (a *Node) retry() {
	a.mRetries.Inc()
	if a.det.Omega() != a.id || a.triesLeft <= 0 {
		a.phase = 0
		a.num = wpaxos.ProposalNum{}
		return
	}
	a.startProposal()
}

func (a *Node) decide(v amac.Value) {
	a.decided = true
	a.decision = v
	a.api.Decide(v)
}

// Decided implements amac.Decider.
func (a *Node) Decided() (amac.Value, bool) { return a.decision, a.decided }

var (
	_ amac.Algorithm = (*Node)(nil)
	_ amac.Decider   = (*Node)(nil)
	_ amac.Message   = (*Combined)(nil)
)
