package floodpaxos

import (
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/core/wpaxos"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

func mixed(n int) []amac.Value {
	inputs := make([]amac.Value, n)
	for i := range inputs {
		inputs[i] = amac.Value(i % 2)
	}
	return inputs
}

func TestCorrectAcrossTopologies(t *testing.T) {
	cases := []*graph.Graph{
		graph.Clique(6),
		graph.Line(7),
		graph.Ring(8),
		graph.Grid(3, 3),
		graph.RandomConnected(14, 0.15, 5),
	}
	for i, g := range cases {
		inputs := mixed(g.N())
		for seed := int64(0); seed < 3; seed++ {
			res := sim.Run(sim.Config{
				Graph:           g,
				Inputs:          inputs,
				Factory:         NewFactory(g.N()),
				Scheduler:       sim.NewRandom(3, seed),
				StopWhenDecided: true,
				Audit:           true,
			})
			rep := consensus.Check(inputs, res)
			if !rep.OK() {
				t.Fatalf("case %d seed %d: %v", i, seed, rep.Errors)
			}
		}
	}
}

func TestSingleNode(t *testing.T) {
	inputs := []amac.Value{1}
	res := sim.Run(sim.Config{
		Graph:           graph.Clique(1),
		Inputs:          inputs,
		Factory:         NewFactory(1),
		Scheduler:       sim.Synchronous{},
		StopWhenDecided: true,
	})
	rep := consensus.Check(inputs, res)
	if !rep.OK() || rep.Value != 1 {
		t.Fatalf("single node: %v", rep.Errors)
	}
}

// TestSlowerThanWPaxosOnBottleneck is the package's reason to exist: on a
// hub topology the per-acceptor response flood must cost visibly more time
// than wPAXOS's aggregated responses at the same n and D.
func TestSlowerThanWPaxosOnBottleneck(t *testing.T) {
	g := graph.StarOfLines(24, 2) // 49 nodes, diameter 4
	inputs := mixed(g.N())
	runWith := func(f amac.Factory) int64 {
		res := sim.Run(sim.Config{
			Graph:           g,
			Inputs:          inputs,
			Factory:         f,
			Scheduler:       sim.Synchronous{},
			StopWhenDecided: true,
		})
		rep := consensus.Check(inputs, res)
		if !rep.OK() {
			t.Fatalf("%v", rep.Errors)
		}
		return res.MaxDecideTime
	}
	tFlood := runWith(NewFactory(g.N()))
	tTree := runWith(wpaxos.NewFactory(wpaxos.Config{N: g.N()}))
	if float64(tFlood) < 1.5*float64(tTree) {
		t.Fatalf("flood=%d tree=%d: expected the flooding baseline to be clearly slower", tFlood, tTree)
	}
}

func TestUnanimousValidity(t *testing.T) {
	for _, v := range []amac.Value{0, 1} {
		g := graph.Line(6)
		inputs := make([]amac.Value, 6)
		for i := range inputs {
			inputs[i] = v
		}
		res := sim.Run(sim.Config{
			Graph:           g,
			Inputs:          inputs,
			Factory:         NewFactory(6),
			Scheduler:       sim.NewRandom(2, 9),
			StopWhenDecided: true,
		})
		rep := consensus.Check(inputs, res)
		if !rep.OK() || rep.Value != v {
			t.Fatalf("unanimous %d: %v (value %d)", v, rep.Errors, rep.Value)
		}
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 0) },
		func() { New(2, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
