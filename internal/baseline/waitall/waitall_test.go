package waitall

import (
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

func TestCorrectUnderSynchronousScheduler(t *testing.T) {
	cases := []*graph.Graph{
		graph.Clique(5),
		graph.Line(5),
		graph.Line(9),
		graph.Ring(8),
		graph.Grid(3, 3),
	}
	for i, g := range cases {
		rounds := RoundsForDiameter(g.Diameter())
		inputs := make([]amac.Value, g.N())
		for j := range inputs {
			inputs[j] = amac.Value(j % 2)
		}
		res := sim.Run(sim.Config{
			Graph:           g,
			Inputs:          inputs,
			Factory:         NewFactory(rounds),
			Scheduler:       sim.Synchronous{},
			StopWhenDecided: true,
			Audit:           true,
		})
		rep := consensus.Check(inputs, res)
		if !rep.OK() {
			t.Fatalf("case %d: %v", i, rep.Errors)
		}
		if rep.Value != 0 {
			t.Fatalf("case %d: decided %d, want min 0", i, rep.Value)
		}
	}
}

func TestHeartbeatsCarryNoIDs(t *testing.T) {
	if (PairMsg{Heartbeat: true}).IDCount() != 0 {
		t.Fatal("heartbeat claims ids")
	}
	if (PairMsg{ID: 3}).IDCount() != 1 {
		t.Fatal("pair should carry one id")
	}
}

func TestUnanimous(t *testing.T) {
	g := graph.Line(6)
	inputs := []amac.Value{1, 1, 1, 1, 1, 1}
	res := sim.Run(sim.Config{
		Graph:           g,
		Inputs:          inputs,
		Factory:         NewFactory(RoundsForDiameter(g.Diameter())),
		Scheduler:       sim.Synchronous{},
		StopWhenDecided: true,
	})
	rep := consensus.Check(inputs, res)
	if !rep.OK() || rep.Value != 1 {
		t.Fatalf("report %+v %v", rep, rep.Errors)
	}
}

func TestRoundBudgetIsOblivousToN(t *testing.T) {
	// The same factory (round budget from the diameter alone) must work
	// on lines of very different sizes with the same diameter bound: the
	// algorithm must not secretly depend on n.
	for _, n := range []int{3, 5, 7} {
		g := graph.Line(n)
		rounds := RoundsForDiameter(6) // bound covering all three lines
		inputs := make([]amac.Value, n)
		inputs[n-1] = 1
		res := sim.Run(sim.Config{
			Graph:           g,
			Inputs:          inputs,
			Factory:         NewFactory(rounds),
			Scheduler:       sim.Synchronous{},
			StopWhenDecided: true,
		})
		rep := consensus.Check(inputs, res)
		if !rep.OK() {
			t.Fatalf("n=%d: %v", n, rep.Errors)
		}
	}
}

func TestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 0)
}
