// Package waitall implements the natural n-oblivious consensus attempt
// that the paper's Figure 2 construction defeats (Section 3.3): with
// unique ids and a known diameter bound — but no knowledge of the network
// size — gather (id, value) pairs for a fixed budget of broadcast rounds,
// then decide the minimum value collected.
//
// The algorithm is correct whenever the round budget lets every pair reach
// every node (for example under the synchronous scheduler on a line L_d,
// matching Lemma 3.8's alpha executions). Theorem 3.9 says no n-oblivious
// algorithm can be correct on all networks of a known diameter: the
// experiment in internal/lowerbound runs it on K_D with the hub silenced
// and exhibits the split-brain, while gatherall (which knows n) stays
// correct on the same network under the same scheduler.
package waitall

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
)

// PairMsg floods one (id, value) pair, or acts as a heartbeat when the
// sender has nothing new to forward (Heartbeat true).
type PairMsg struct {
	ID        amac.NodeID
	V         amac.Value
	Heartbeat bool
}

// IDCount implements amac.Message.
func (m PairMsg) IDCount() int {
	if m.Heartbeat {
		return 0
	}
	return 1
}

// Node is the per-node state machine.
type Node struct {
	api    amac.API
	rounds int
	input  amac.Value

	known    map[amac.NodeID]amac.Value
	queue    []PairMsg
	acks     int
	decided  bool
	decision amac.Value
}

// New returns a wait-all node with the given round budget (derived from a
// diameter bound via RoundsForDiameter; the algorithm must not know n).
func New(input amac.Value, rounds int) *Node {
	if rounds < 1 {
		panic(fmt.Sprintf("waitall: invalid round budget %d", rounds))
	}
	return &Node{
		rounds: rounds,
		input:  input,
		known:  make(map[amac.NodeID]amac.Value),
	}
}

// RoundsForDiameter returns the canonical round budget for a diameter
// bound: enough cycles for every pair to traverse the network one
// broadcast at a time on the worst supported instances (pairs queue behind
// each other, hence the multiplicative slack).
func RoundsForDiameter(diam int) int {
	if diam < 1 {
		diam = 1
	}
	return 6 * (diam + 1)
}

// NewFactory returns a factory with a fixed round budget.
func NewFactory(rounds int) amac.Factory {
	return func(cfg amac.NodeConfig) amac.Algorithm { return New(cfg.Input, rounds) }
}

// Start implements amac.Algorithm.
func (a *Node) Start(api amac.API) {
	a.api = api
	a.learn(PairMsg{ID: api.ID(), V: a.input})
	a.broadcastNext()
}

// OnReceive implements amac.Algorithm.
func (a *Node) OnReceive(m amac.Message) {
	pair, ok := m.(PairMsg)
	if !ok {
		panic(fmt.Sprintf("waitall: unexpected message type %T", m))
	}
	if !pair.Heartbeat {
		a.learn(pair)
	}
}

// OnAck implements amac.Algorithm.
func (a *Node) OnAck(amac.Message) {
	a.acks++
	if a.acks >= a.rounds {
		if !a.decided {
			a.decided = true
			a.decision = a.minKnown()
			a.api.Decide(a.decision)
		}
		return
	}
	a.broadcastNext()
}

func (a *Node) learn(p PairMsg) {
	if _, seen := a.known[p.ID]; seen {
		return
	}
	a.known[p.ID] = p.V
	a.queue = append(a.queue, PairMsg{ID: p.ID, V: p.V})
}

func (a *Node) minKnown() amac.Value {
	first := true
	var min amac.Value
	for _, v := range a.known {
		if first || v < min {
			min = v
			first = false
		}
	}
	return min
}

// broadcastNext sends the next queued pair, or a heartbeat to keep the
// round count advancing when nothing is pending.
func (a *Node) broadcastNext() {
	if len(a.queue) > 0 {
		m := a.queue[0]
		a.queue = a.queue[1:]
		a.api.Broadcast(m)
		return
	}
	a.api.Broadcast(PairMsg{Heartbeat: true})
}

// Decided implements amac.Decider.
func (a *Node) Decided() (amac.Value, bool) { return a.decision, a.decided }

var (
	_ amac.Algorithm = (*Node)(nil)
	_ amac.Decider   = (*Node)(nil)
	_ amac.Message   = PairMsg{}
)
