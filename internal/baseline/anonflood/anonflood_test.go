package anonflood

import (
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

func TestCorrectUnderSynchronousScheduler(t *testing.T) {
	cases := []*graph.Graph{
		graph.Clique(5),
		graph.Line(6),
		graph.Ring(7),
		graph.Grid(3, 3),
	}
	for i, g := range cases {
		rounds := RoundsForDiameter(g.Diameter())
		for mask := 0; mask < 4; mask++ {
			inputs := make([]amac.Value, g.N())
			for j := range inputs {
				inputs[j] = amac.Value((j + mask) % 2)
			}
			res := sim.Run(sim.Config{
				Graph:           g,
				Inputs:          inputs,
				Factory:         NewFactory(rounds),
				Scheduler:       sim.Synchronous{},
				StopWhenDecided: true,
				Audit:           true,
			})
			rep := consensus.Check(inputs, res)
			if !rep.OK() {
				t.Fatalf("case %d mask %d: %v", i, mask, rep.Errors)
			}
			if rep.Value != 0 {
				t.Fatalf("case %d: decided %d, want min 0", i, rep.Value)
			}
		}
	}
}

func TestGenuinelyAnonymous(t *testing.T) {
	g := graph.Ring(6)
	inputs := make([]amac.Value, 6)
	inputs[3] = 1
	factory, reads := consensus.AnonymityAudit(NewFactory(RoundsForDiameter(g.Diameter())))
	res := sim.Run(sim.Config{
		Graph:           g,
		Inputs:          inputs,
		Factory:         factory,
		Scheduler:       sim.Synchronous{},
		StopWhenDecided: true,
	})
	rep := consensus.Check(inputs, res)
	if !rep.OK() {
		t.Fatalf("%v", rep.Errors)
	}
	if *reads != 0 {
		t.Fatalf("anonymous algorithm read its id %d times", *reads)
	}
}

func TestMessagesCarryNoIDs(t *testing.T) {
	if (SetMsg{Has0: true, Has1: true}).IDCount() != 0 {
		t.Fatal("anonymous message claims to carry ids")
	}
}

func TestRoundsForDiameter(t *testing.T) {
	if RoundsForDiameter(0) != 4 {
		t.Fatalf("RoundsForDiameter(0) = %d", RoundsForDiameter(0))
	}
	if RoundsForDiameter(5) != 12 {
		t.Fatalf("RoundsForDiameter(5) = %d", RoundsForDiameter(5))
	}
}

func TestDecisionUsesRoundBudget(t *testing.T) {
	g := graph.Line(4)
	inputs := make([]amac.Value, 4)
	rounds := RoundsForDiameter(g.Diameter())
	res := sim.Run(sim.Config{
		Graph:           g,
		Inputs:          inputs,
		Factory:         NewFactory(rounds),
		Scheduler:       sim.Synchronous{},
		StopWhenDecided: true,
	})
	// Under the synchronous scheduler each round takes one time unit.
	if res.MaxDecideTime != int64(rounds) {
		t.Fatalf("decision at %d, want round budget %d", res.MaxDecideTime, rounds)
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(2, 4) },
		func() { New(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
