// Package anonflood implements the natural anonymous consensus attempt
// that the paper's Figure 1 construction defeats (Section 3.2): flood the
// set of values seen for a fixed budget of broadcast rounds derived from a
// known diameter bound, then decide the minimum value seen.
//
// The algorithm uses no ids whatsoever — messages carry only a value set —
// and it is correct on every network in which information actually
// traverses the network within the round budget (for example under the
// synchronous scheduler on any graph whose diameter respects the bound).
// Theorem 3.3 says no anonymous algorithm can be correct on all networks:
// the experiment in internal/lowerbound runs this algorithm on network A
// of Figure 1 with the bridge node silenced and exhibits the agreement
// violation, while the same algorithm with the same parameters is correct
// on network B.
package anonflood

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
)

// SetMsg carries the sender's current value set. It is anonymous: zero ids.
type SetMsg struct {
	Has0, Has1 bool
}

// IDCount implements amac.Message.
func (SetMsg) IDCount() int { return 0 }

// Node is the per-node state machine.
type Node struct {
	api    amac.API
	rounds int

	has0, has1 bool
	acks       int
	decided    bool
	decision   amac.Value
}

// New returns an anonymous flooding node that will broadcast for the given
// number of rounds (ack cycles). Callers derive rounds from a diameter
// bound; RoundsForDiameter gives the package's canonical choice.
func New(input amac.Value, rounds int) *Node {
	if input != 0 && input != 1 {
		panic(fmt.Sprintf("anonflood: input %d is not binary", input))
	}
	if rounds < 1 {
		panic(fmt.Sprintf("anonflood: invalid round budget %d", rounds))
	}
	return &Node{rounds: rounds, has0: input == 0, has1: input == 1}
}

// RoundsForDiameter returns the round budget the algorithm uses for a
// network with the given diameter bound: one hop of spread per round plus
// slack for interleaving.
func RoundsForDiameter(diam int) int {
	if diam < 1 {
		diam = 1
	}
	return 2*diam + 2
}

// NewFactory returns a factory with a fixed round budget. Note that the
// factory ignores cfg.ID: the algorithm is anonymous (verified by
// consensus.AnonymityAudit in the experiments).
func NewFactory(rounds int) amac.Factory {
	return func(cfg amac.NodeConfig) amac.Algorithm { return New(cfg.Input, rounds) }
}

// Start implements amac.Algorithm.
func (a *Node) Start(api amac.API) {
	a.api = api
	api.Broadcast(SetMsg{Has0: a.has0, Has1: a.has1})
}

// OnReceive implements amac.Algorithm.
func (a *Node) OnReceive(m amac.Message) {
	set, ok := m.(SetMsg)
	if !ok {
		panic(fmt.Sprintf("anonflood: unexpected message type %T", m))
	}
	a.has0 = a.has0 || set.Has0
	a.has1 = a.has1 || set.Has1
}

// OnAck implements amac.Algorithm.
func (a *Node) OnAck(amac.Message) {
	a.acks++
	if a.acks < a.rounds {
		a.api.Broadcast(SetMsg{Has0: a.has0, Has1: a.has1})
		return
	}
	if a.decided {
		return
	}
	a.decided = true
	if a.has0 {
		a.decision = 0
	} else {
		a.decision = 1
	}
	a.api.Decide(a.decision)
}

// Decided implements amac.Decider.
func (a *Node) Decided() (amac.Value, bool) { return a.decision, a.decided }

var (
	_ amac.Algorithm = (*Node)(nil)
	_ amac.Decider   = (*Node)(nil)
	_ amac.Message   = SetMsg{}
)
