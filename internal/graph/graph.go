// Package graph provides the topology substrate for the abstract MAC layer
// model: general undirected graphs, the standard families used by the
// paper's analysis (cliques, lines, grids, random connected graphs), the
// large-n sparse families (random regular expanders, multi-pod meshes),
// and faithful constructions of the paper's lower-bound networks
// (Figure 1's gadget networks A and B, Figure 2's K_D network).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over nodes 0..N()-1, stored in
// compressed-sparse-row (CSR) form: one offsets array plus one packed
// neighbors array, so a node's adjacency row is a contiguous slice and a
// whole-graph traversal walks two flat arrays instead of chasing n
// slice headers. The zero value is an empty graph; use New to allocate a
// graph with a fixed node count.
//
// Mutation is cheap and batched: AddEdge appends to a flat edge log
// (with an O(1) duplicate check against an edge set) and marks the CSR
// stale; the first read accessor after a mutation rebuilds the CSR with
// one O(n+m) counting pass. Build-then-read construction therefore pays
// O(n+m) total, and interleaved HasEdge probes during construction stay
// O(1) via the edge set.
//
// Adjacency rows preserve edge-insertion order exactly — the order the
// previous [][]int representation produced — because delivery plans are
// positional over Neighbors and the pinned golden executions depend on
// that order. Sort canonicalizes the rows to ascending; the sparse
// families emit their edges pre-sorted so their rows are sorted without
// any Sort pass.
type Graph struct {
	n int
	// eu/ev is the edge log in insertion order (eu[i],ev[i] as passed to
	// AddEdge). It is the canonical representation; the CSR is derived.
	eu, ev []int32
	// deg is maintained incrementally so Degree and the CSR offsets
	// never force a rebuild.
	deg []int32
	// set holds every edge (normalized min<<32|max) for O(1) duplicate
	// rejection in AddEdge and O(1) HasEdge while the CSR is stale.
	set map[int64]struct{}
	// CSR arrays: nbrs[off[u]:off[u+1]] is u's adjacency row.
	off  []int32
	nbrs []int
	// last[u] is the most recently appended neighbor of u; rowsSorted
	// stays true while every append is ascending, which is what lets
	// HasEdge binary-search instead of consulting the edge set.
	last       []int32
	rowsSorted bool
	dirty      bool
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	g := &Graph{
		n:          n,
		deg:        make([]int32, n),
		last:       make([]int32, n),
		set:        make(map[int64]struct{}),
		rowsSorted: true,
	}
	for i := range g.last {
		g.last[i] = -1
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.eu) }

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are rejected with a panic: topology construction bugs must fail
// loudly rather than silently distort an experiment.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	g.check(u)
	g.check(v)
	key := edgeKey(u, v)
	if _, dup := g.set[key]; dup {
		panic(fmt.Sprintf("graph: duplicate edge {%d,%d}", u, v))
	}
	g.set[key] = struct{}{}
	g.eu = append(g.eu, int32(u))
	g.ev = append(g.ev, int32(v))
	if int32(v) < g.last[u] || int32(u) < g.last[v] {
		g.rowsSorted = false
	}
	if int32(v) > g.last[u] {
		g.last[u] = int32(v)
	}
	if int32(u) > g.last[v] {
		g.last[v] = int32(u)
	}
	g.deg[u]++
	g.deg[v]++
	g.dirty = true
}

func (g *Graph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, g.n))
	}
}

// ensure materializes the CSR from the edge log. Filling in edge-log
// order reproduces the append order of both endpoints' rows, so the CSR
// rows are byte-identical to the adjacency lists the old representation
// built.
func (g *Graph) ensure() {
	if !g.dirty && g.off != nil {
		return
	}
	m := len(g.eu)
	if cap(g.off) >= g.n+1 {
		g.off = g.off[:g.n+1]
	} else {
		g.off = make([]int32, g.n+1)
	}
	if cap(g.nbrs) >= 2*m {
		g.nbrs = g.nbrs[:2*m]
	} else {
		g.nbrs = make([]int, 2*m)
	}
	g.off[0] = 0
	for u := 0; u < g.n; u++ {
		g.off[u+1] = g.off[u] + g.deg[u]
	}
	// Cursor pass: reuse the tail of off as cursors would alias, so keep
	// a scratch copy of the running offsets.
	cur := make([]int32, g.n)
	copy(cur, g.off[:g.n])
	for i := 0; i < m; i++ {
		u, v := g.eu[i], g.ev[i]
		g.nbrs[cur[u]] = int(v)
		cur[u]++
		g.nbrs[cur[v]] = int(u)
		cur[v]++
	}
	g.dirty = false
}

// row returns u's CSR adjacency row (callers must have run ensure).
func (g *Graph) row(u int) []int {
	return g.nbrs[g.off[u]:g.off[u+1]]
}

// HasEdge reports whether {u, v} is an edge. On a graph whose rows are
// sorted (every family constructor emits sorted rows; Sort canonicalizes
// the rest) this is a binary search over the smaller row; on a stale or
// insertion-ordered graph it is an O(1) edge-set lookup.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	if g.dirty || !g.rowsSorted {
		_, ok := g.set[edgeKey(u, v)]
		return ok
	}
	a, b := u, v
	if g.deg[a] > g.deg[b] {
		a, b = b, a
	}
	row := g.row(a)
	i := sort.SearchInts(row, b)
	return i < len(row) && row[i] == b
}

// Freeze materializes the CSR arrays from the edge log. Reads lazily
// rebuild the CSR after a mutation, so a graph handed to concurrently
// running readers (the wall-clock substrates: node goroutines calling
// Neighbors) must be frozen first — concurrent lazy rebuilds race.
// Reading a frozen graph concurrently is safe until the next mutation.
func (g *Graph) Freeze() {
	g.ensure()
}

// Neighbors returns u's adjacency row. The returned slice aliases the
// graph's packed neighbor array and must not be mutated by callers; it is
// valid until the next mutation.
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	g.ensure()
	return g.row(u)
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return int(g.deg[u])
}

// Sorted reports whether every adjacency row is in ascending order —
// true for every family constructor that emits sorted-by-construction
// edges, and after any Sort call.
func (g *Graph) Sorted() bool { return g.rowsSorted }

// Sort canonicalizes the adjacency rows to ascending order by rewriting
// the edge log in normalized (min,max) lexicographic order: replaying a
// canonical log yields fully sorted rows. On a graph whose rows are
// already sorted this is a no-op. Edges added after Sort append at the
// row tails, exactly as the old sorted-then-appended representation did.
func (g *Graph) Sort() {
	if g.rowsSorted {
		return
	}
	m := len(g.eu)
	for i := 0; i < m; i++ {
		if g.eu[i] > g.ev[i] {
			g.eu[i], g.ev[i] = g.ev[i], g.eu[i]
		}
	}
	sort.Sort(edgeLog{g.eu, g.ev})
	for i := range g.last {
		g.last[i] = -1
	}
	for i := 0; i < m; i++ {
		u, v := g.eu[i], g.ev[i]
		if v > g.last[u] {
			g.last[u] = v
		}
		if u > g.last[v] {
			g.last[v] = u
		}
	}
	g.rowsSorted = true
	g.dirty = true
}

// edgeLog sorts the edge log in (u,v) lexicographic order in place.
type edgeLog struct{ u, v []int32 }

func (e edgeLog) Len() int { return len(e.u) }
func (e edgeLog) Less(i, j int) bool {
	if e.u[i] != e.u[j] {
		return e.u[i] < e.u[j]
	}
	return e.v[i] < e.v[j]
}
func (e edgeLog) Swap(i, j int) {
	e.u[i], e.u[j] = e.u[j], e.u[i]
	e.v[i], e.v[j] = e.v[j], e.v[i]
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:          g.n,
		eu:         append([]int32(nil), g.eu...),
		ev:         append([]int32(nil), g.ev...),
		deg:        append([]int32(nil), g.deg...),
		last:       append([]int32(nil), g.last...),
		set:        make(map[int64]struct{}, len(g.set)),
		rowsSorted: g.rowsSorted,
		dirty:      true,
	}
	for k := range g.set {
		c.set[k] = struct{}{}
	}
	return c
}

// BFS returns the hop distance from src to every node; unreachable nodes
// get -1.
func (g *Graph) BFS(src int) []int {
	g.check(src)
	g.ensure()
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.row(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Dist returns the hop distance between u and v, or -1 when disconnected.
func (g *Graph) Dist(u, v int) int {
	return g.BFS(u)[v]
}

// eccFrom runs one BFS from src into the caller's scratch (dist and queue,
// both length N()) and returns src's eccentricity, or -1 when some node is
// unreachable. Callers reuse the scratch across sources, so a BFS costs no
// allocation. The caller must have run ensure.
func (g *Graph) eccFrom(src int, dist, queue []int) int {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue[0] = src
	head, tail := 0, 1
	ecc := 0
	for head < tail {
		u := queue[head]
		head++
		for _, v := range g.row(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				if dist[v] > ecc {
					ecc = dist[v]
				}
				queue[tail] = v
				tail++
			}
		}
	}
	if tail < g.n {
		return -1 // disconnected
	}
	return ecc
}

// Eccentricity returns the maximum distance from u to any node, or -1 when
// the graph is disconnected.
func (g *Graph) Eccentricity(u int) int {
	g.check(u)
	g.ensure()
	n := g.n
	return g.eccFrom(u, make([]int, n), make([]int, n))
}

// exactDiameterLimit is the node count up to which Diameter runs the
// exact all-pairs BFS. Every golden-pinned topology is far below it, so
// the pinned diameters (and the cell JSON they appear in) are computed by
// the same exact path as before; above it the all-pairs pass would cost
// O(n*m) — prohibitive at n=10^4 — so Diameter switches to the
// double-sweep/iFUB estimator.
const exactDiameterLimit = 512

// diameterBFSBudget caps the number of refinement BFS passes the iFUB
// loop may spend after the three double-sweep passes. On the structured
// and random families in the registry the double sweep alone is almost
// always exact and iFUB certifies it within a few passes; the cap bounds
// the adversarial worst case.
const diameterBFSBudget = 64

// Diameter returns the graph diameter, or -1 when the graph is
// disconnected. A single-node graph has diameter 0.
//
// For n <= exactDiameterLimit the value is computed by exact all-pairs
// BFS with a shared scratch (two allocations total). For larger graphs it
// runs a deterministic double-sweep followed by an iFUB-style refinement
// with a bounded BFS budget: the result is always a valid eccentricity
// (hence a lower bound on the diameter), it is exact whenever the
// refinement converges — which it certifies by matching upper and lower
// bounds — and the effort is O((3+budget)*(n+m)) instead of O(n*m).
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	g.ensure()
	if g.n <= exactDiameterLimit {
		return g.diameterExact()
	}
	return g.diameterEstimate()
}

func (g *Graph) diameterExact() int {
	n := g.n
	dist := make([]int, n)
	queue := make([]int, n)
	diam := 0
	for src := 0; src < n; src++ {
		ecc := g.eccFrom(src, dist, queue)
		if ecc < 0 {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// diameterEstimate is the large-n path: double sweep (BFS from a
// max-degree root, then from the farthest node found) gives a strong
// lower bound; a BFS from the midpoint of the double-sweep path gives an
// upper bound of twice its eccentricity; the iFUB loop then sweeps nodes
// by decreasing midpoint level, raising the lower bound, until the
// remaining levels certify exactness (2*level <= lb) or the BFS budget
// runs out. Every tie breaks to the lowest node index, so the result is
// deterministic.
func (g *Graph) diameterEstimate() int {
	n := g.n
	dist := make([]int, n)
	queue := make([]int, n)

	start := 0
	for u := 1; u < n; u++ {
		if g.deg[u] > g.deg[start] {
			start = u
		}
	}
	if g.eccFrom(start, dist, queue) < 0 {
		return -1
	}
	a := argmaxDist(dist)

	distA := make([]int, n)
	lb := g.eccFrom(a, distA, queue)
	b := argmaxDist(distA)

	distB := make([]int, n)
	if ecc := g.eccFrom(b, distB, queue); ecc > lb {
		lb = ecc
	}

	// Midpoint of one a-b shortest path: on the path iff
	// distA[x]+distB[x] == distA[b].
	half := distA[b] / 2
	mid := a
	for x := 0; x < n; x++ {
		if distA[x] == half && distA[x]+distB[x] == distA[b] {
			mid = x
			break
		}
	}
	distM := make([]int, n)
	eccM := g.eccFrom(mid, distM, queue)
	if eccM > lb {
		lb = eccM
	}
	if 2*eccM <= lb {
		return lb
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if distM[order[i]] != distM[order[j]] {
			return distM[order[i]] > distM[order[j]]
		}
		return order[i] < order[j]
	})
	budget := diameterBFSBudget
	for _, x := range order {
		if 2*distM[x] <= lb || budget == 0 {
			break
		}
		if ecc := g.eccFrom(x, dist, queue); ecc > lb {
			lb = ecc
		}
		budget--
	}
	return lb
}

// argmaxDist returns the index of the maximum distance, lowest index on
// ties.
func argmaxDist(dist []int) int {
	best := 0
	for i, d := range dist {
		if d > dist[best] {
			best = i
		}
	}
	return best
}

// IsConnected reports whether the graph is connected. The empty graph is
// considered disconnected.
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return false
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// DegreeSequence returns the sorted multiset of node degrees.
func (g *Graph) DegreeSequence() []int {
	seq := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		seq[u] = int(g.deg[u])
	}
	sort.Ints(seq)
	return seq
}
