// Package graph provides the topology substrate for the abstract MAC layer
// model: general undirected graphs, the standard families used by the
// paper's analysis (cliques, lines, grids, random connected graphs), and
// faithful constructions of the paper's lower-bound networks (Figure 1's
// gadget networks A and B, Figure 2's K_D network).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over nodes 0..N()-1. The zero value is
// an empty graph; use New to allocate a graph with a fixed node count.
type Graph struct {
	adj   [][]int
	edges int
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{adj: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are rejected with a panic: topology construction bugs must fail
// loudly rather than silently distort an experiment.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	g.check(u)
	g.check(v)
	if g.HasEdge(u, v) {
		panic(fmt.Sprintf("graph: duplicate edge {%d,%d}", u, v))
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges++
}

func (g *Graph) check(u int) {
	if u < 0 || u >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, len(g.adj)))
	}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	// Scan the smaller adjacency list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// Neighbors returns u's adjacency list. The returned slice is shared with
// the graph and must not be mutated by callers.
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	return g.adj[u]
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// Sort orders every adjacency list ascending, giving deterministic
// iteration order independent of construction order.
func (g *Graph) Sort() {
	for _, nbrs := range g.adj {
		sort.Ints(nbrs)
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int, len(g.adj)), edges: g.edges}
	for u, nbrs := range g.adj {
		c.adj[u] = append([]int(nil), nbrs...)
	}
	return c
}

// BFS returns the hop distance from src to every node; unreachable nodes
// get -1.
func (g *Graph) BFS(src int) []int {
	g.check(src)
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Dist returns the hop distance between u and v, or -1 when disconnected.
func (g *Graph) Dist(u, v int) int {
	return g.BFS(u)[v]
}

// eccFrom runs one BFS from src into the caller's scratch (dist and queue,
// both length N()) and returns src's eccentricity, or -1 when some node is
// unreachable. Callers reuse the scratch across sources, so a BFS costs no
// allocation.
func (g *Graph) eccFrom(src int, dist, queue []int) int {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue[0] = src
	head, tail := 0, 1
	ecc := 0
	for head < tail {
		u := queue[head]
		head++
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				if dist[v] > ecc {
					ecc = dist[v]
				}
				queue[tail] = v
				tail++
			}
		}
	}
	if tail < len(g.adj) {
		return -1 // disconnected
	}
	return ecc
}

// Eccentricity returns the maximum distance from u to any node, or -1 when
// the graph is disconnected.
func (g *Graph) Eccentricity(u int) int {
	g.check(u)
	n := len(g.adj)
	return g.eccFrom(u, make([]int, n), make([]int, n))
}

// Diameter returns the graph diameter via all-pairs BFS, or -1 when the
// graph is disconnected. A single-node graph has diameter 0. The BFS
// scratch is allocated once and shared by all n sources, so the whole
// computation costs two allocations regardless of n.
func (g *Graph) Diameter() int {
	n := len(g.adj)
	if n == 0 {
		return -1
	}
	dist := make([]int, n)
	queue := make([]int, n)
	diam := 0
	for src := range g.adj {
		ecc := g.eccFrom(src, dist, queue)
		if ecc < 0 {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// IsConnected reports whether the graph is connected. The empty graph is
// considered disconnected.
func (g *Graph) IsConnected() bool {
	if len(g.adj) == 0 {
		return false
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// DegreeSequence returns the sorted multiset of node degrees.
func (g *Graph) DegreeSequence() []int {
	seq := make([]int, len(g.adj))
	for u := range g.adj {
		seq[u] = len(g.adj[u])
	}
	sort.Ints(seq)
	return seq
}
