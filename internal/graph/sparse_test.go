package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// edgesOf flattens a graph back to its normalized (min,max) edge set in
// canonical order, for byte-level determinism comparisons.
func edgesOf(g *Graph) [][2]int {
	var es [][2]int
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				es = append(es, [2]int{u, v})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// TestHasEdgeSortedAndUnsorted drives both HasEdge paths: the binary
// search over sorted rows and the edge-set fallback for unsorted or
// still-dirty graphs. Both must agree with a brute-force reference on
// every pair.
func TestHasEdgeSortedAndUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 17
	ref := make(map[int64]bool)
	sorted := New(n)   // edges added in ascending order: rows sorted
	unsorted := New(n) // same edges in shuffled order: rows unsorted
	var pairs [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(3) == 0 {
				pairs = append(pairs, [2]int{u, v})
				ref[edgeKey(u, v)] = true
			}
		}
	}
	for _, e := range pairs {
		sorted.AddEdge(e[0], e[1])
	}
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	for _, e := range pairs {
		unsorted.AddEdge(e[1], e[0]) // reversed endpoints too
		// Probe mid-construction: the dirty path must answer without
		// forcing a CSR rebuild per AddEdge.
		if !unsorted.HasEdge(e[1], e[0]) {
			t.Fatalf("mid-construction HasEdge(%d,%d) = false right after AddEdge", e[1], e[0])
		}
	}
	if !sorted.Sorted() {
		t.Fatal("ascending construction did not yield sorted rows")
	}
	if unsorted.Sorted() {
		t.Fatal("shuffled construction claims sorted rows")
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			want := u != v && ref[edgeKey(u, v)]
			if got := sorted.HasEdge(u, v); got != want {
				t.Fatalf("sorted graph HasEdge(%d,%d) = %v, want %v", u, v, got, want)
			}
			if got := unsorted.HasEdge(u, v); got != want {
				t.Fatalf("unsorted graph HasEdge(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

// TestCSRMatchesAdjacencyList replays random AddEdge sequences into both
// the CSR graph and a shadow adjacency list with the old append-to-both-
// endpoints semantics: every row must come back in exact insertion order
// (the delivery-plan schedulers draw per-neighbor randomness by row
// index, so row order is part of the determinism contract).
func TestCSRMatchesAdjacencyList(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(14)
		g := New(n)
		shadow := make([][]int, n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(2) == 0 {
					a, b := u, v
					if rng.Intn(2) == 0 {
						a, b = b, a
					}
					g.AddEdge(a, b)
					shadow[a] = append(shadow[a], b)
					shadow[b] = append(shadow[b], a)
				}
			}
		}
		// Interleave reads to force rebuilds between appends.
		if trial%3 == 0 && g.M() > 0 {
			_ = g.Neighbors(0)
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
				shadow[u] = append(shadow[u], v)
				shadow[v] = append(shadow[v], u)
			}
		}
		for u := 0; u < n; u++ {
			got := g.Neighbors(u)
			if len(got) == 0 && len(shadow[u]) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, shadow[u]) {
				t.Fatalf("trial %d: row %d = %v, want insertion order %v", trial, u, got, shadow[u])
			}
		}
	}
}

// TestSortCanonicalizes covers Sort on an unsorted graph (rows become
// ascending, edges preserved) and its no-op verification path on an
// already-sorted one (rows bit-identical before and after).
func TestSortCanonicalizes(t *testing.T) {
	g := New(6)
	for _, e := range [][2]int{{4, 1}, {0, 5}, {2, 0}, {3, 4}, {1, 0}} {
		g.AddEdge(e[0], e[1])
	}
	before := edgesOf(g)
	g.Sort()
	if !g.Sorted() {
		t.Fatal("Sort did not mark rows sorted")
	}
	for u := 0; u < g.N(); u++ {
		row := g.Neighbors(u)
		if !sort.IntsAreSorted(row) {
			t.Fatalf("row %d not ascending after Sort: %v", u, row)
		}
	}
	if !reflect.DeepEqual(edgesOf(g), before) {
		t.Fatal("Sort changed the edge set")
	}

	s := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {0, 4}, {2, 3}})
	if !s.Sorted() {
		t.Fatal("FromEdges did not build sorted rows")
	}
	rows := make([][]int, s.N())
	for u := range rows {
		rows[u] = append([]int(nil), s.Neighbors(u)...)
	}
	s.Sort() // must be a pure no-op on a sorted-by-construction graph
	for u := range rows {
		if !reflect.DeepEqual(s.Neighbors(u), rows[u]) {
			t.Fatalf("no-op Sort changed row %d: %v -> %v", u, rows[u], s.Neighbors(u))
		}
	}

	// Appending after Sort lands at the row tails (old semantics).
	g.AddEdge(0, 3)
	row := g.Neighbors(0)
	if row[len(row)-1] != 3 {
		t.Fatalf("append after Sort not at row tail: %v", row)
	}
}

// TestFromEdgesNormalizes checks endpoint normalization and that the
// caller's slice is left untouched.
func TestFromEdgesNormalizes(t *testing.T) {
	in := [][2]int{{3, 1}, {2, 0}}
	g := FromEdges(4, in)
	if !g.HasEdge(1, 3) || !g.HasEdge(0, 2) || g.M() != 2 {
		t.Fatalf("FromEdges lost edges: M=%d", g.M())
	}
	if in[0] != [2]int{3, 1} || in[1] != [2]int{2, 0} {
		t.Fatalf("FromEdges mutated its input: %v", in)
	}
}

// TestExpanderProperties checks regularity, connectivity, diameter
// sanity and sortedness for a spread of sizes including odd n with even
// n*d.
func TestExpanderProperties(t *testing.T) {
	cases := []struct{ n, d int }{{8, 3}, {10, 4}, {65, 4}, {128, 3}, {256, 8}}
	for _, tc := range cases {
		g := Expander(tc.n, tc.d, 5)
		if g.N() != tc.n || g.M() != tc.n*tc.d/2 {
			t.Fatalf("expander(%d,%d): N=%d M=%d", tc.n, tc.d, g.N(), g.M())
		}
		for u := 0; u < tc.n; u++ {
			if g.Degree(u) != tc.d {
				t.Fatalf("expander(%d,%d): degree(%d) = %d", tc.n, tc.d, u, g.Degree(u))
			}
		}
		if !g.IsConnected() {
			t.Fatalf("expander(%d,%d) disconnected", tc.n, tc.d)
		}
		if !g.Sorted() {
			t.Fatalf("expander(%d,%d) rows not sorted by construction", tc.n, tc.d)
		}
		if d := g.Diameter(); d < 1 || d > tc.n {
			t.Fatalf("expander(%d,%d) diameter = %d", tc.n, tc.d, d)
		}
	}
}

// TestPodsProperties checks size, connectivity, the edge budget
// (intra-pod rings plus at most c cross links per pod) and sortedness.
func TestPodsProperties(t *testing.T) {
	cases := []struct{ p, k, c int }{{1, 1, 0}, {1, 7, 0}, {2, 1, 1}, {4, 2, 2}, {8, 16, 3}, {16, 8, 4}}
	for _, tc := range cases {
		g := Pods(tc.p, tc.k, tc.c, 9)
		n := tc.p * tc.k
		if g.N() != n {
			t.Fatalf("pods(%d,%d,%d): N=%d, want %d", tc.p, tc.k, tc.c, g.N(), n)
		}
		if !g.IsConnected() {
			t.Fatalf("pods(%d,%d,%d) disconnected", tc.p, tc.k, tc.c)
		}
		intra := tc.k - 1
		if tc.k >= 3 {
			intra = tc.k
		}
		if maxM := tc.p*intra + tc.p*tc.c; g.M() > maxM {
			t.Fatalf("pods(%d,%d,%d): M=%d exceeds budget %d", tc.p, tc.k, tc.c, g.M(), maxM)
		}
		if !g.Sorted() {
			t.Fatalf("pods(%d,%d,%d) rows not sorted by construction", tc.p, tc.k, tc.c)
		}
		// No edge may leave a pod except via the cross-link budget: every
		// node keeps its ring degree <= 2 plus cross links.
		cross := 0
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				if u < v && u/tc.k != v/tc.k {
					cross++
				}
			}
		}
		if cross > tc.p*tc.c {
			t.Fatalf("pods(%d,%d,%d): %d cross edges exceed budget %d", tc.p, tc.k, tc.c, cross, tc.p*tc.c)
		}
	}
}

// TestSparseFamilyDeterminism builds each seeded sparse family twice
// concurrently — same seed must give byte-identical edge lists (and the
// concurrency makes the determinism claim checkable under -race), while
// a different seed must diverge.
func TestSparseFamilyDeterminism(t *testing.T) {
	builds := map[string]func(seed int64) *Graph{
		"expander": func(seed int64) *Graph { return Expander(64, 4, seed) },
		"pods":     func(seed int64) *Graph { return Pods(8, 8, 2, seed) },
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			ch := make(chan [][2]int, 2)
			for i := 0; i < 2; i++ {
				go func() { ch <- edgesOf(build(77)) }()
			}
			a, b := <-ch, <-ch
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same seed produced different edge lists")
			}
			if reflect.DeepEqual(a, edgesOf(build(78))) {
				t.Fatal("different seeds produced identical graphs (suspicious)")
			}
		})
	}
}

func TestSparseFamilyPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"expander-d2", func() { Expander(8, 2, 1) }},
		{"expander-d>=n", func() { Expander(4, 4, 1) }},
		{"expander-odd", func() { Expander(5, 3, 1) }},
		{"pods-p0", func() { Pods(0, 3, 1, 1) }},
		{"pods-k0", func() { Pods(3, 0, 1, 1) }},
		{"pods-nocross", func() { Pods(3, 4, 0, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.f()
		})
	}
}

// TestDiameterEstimateLargeGraph cross-checks the bounded-effort
// estimator against the exact all-pairs answer on graphs just past the
// exact-path cutoff. The estimator reports a certified lower bound, so
// it may only ever undershoot — and on these families the double sweep
// is known to land exactly.
func TestDiameterEstimateLargeGraph(t *testing.T) {
	if exactDiameterLimit >= 600 {
		t.Skip("exact path covers the test sizes; estimator unreachable")
	}
	for name, g := range map[string]*Graph{
		"line":     Line(exactDiameterLimit + 90),
		"ring":     Ring(exactDiameterLimit + 88),
		"expander": Expander(exactDiameterLimit+88, 4, 3),
		"pods":     Pods(40, 15, 3, 3),
	} {
		est := g.Diameter()
		want := g.diameterExact()
		if est > want {
			t.Fatalf("%s: estimate %d exceeds exact diameter %d (lower bound violated)", name, est, want)
		}
		if est != want {
			t.Logf("%s: estimate %d vs exact %d (allowed, but worth knowing)", name, est, want)
		}
		if name == "line" || name == "ring" {
			// Double sweep is provably exact on trees and cycles.
			if est != want {
				t.Fatalf("%s: estimate %d != exact %d on a family where double sweep is exact", name, est, want)
			}
		}
	}
}
