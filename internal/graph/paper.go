package graph

import (
	"fmt"
	"sort"
)

// This file constructs the lower-bound networks from the paper.
//
// Figure 1 (Section 3.2, impossibility of anonymous consensus): a "gadget"
// graph, network A (two gadgets joined by a bridge node q that also carries
// a size-padding clique C), and network B (three interlocked copies of the
// gadget arranged so that every node's local view matches the gadget —
// property (*) in the proof of Lemma 3.6).
//
// Figure 2 (Section 3.3, impossibility without knowledge of n): K_D, two
// copies of the line L_D plus a line L_{D-1} whose fixed endpoint is wired
// to every node of both L_D copies.
//
// The gadget's internal decoration in the paper's figure is partially
// ambiguous in the source; we use a reconstruction with identical node
// accounting (gadget size d+k+4, total 3(d+k)+12 = n') and identical
// network-A diameter D = 2d+2. Our three-fold cover B satisfies property
// (*) exactly but has diameter D+1 rather than D; experiments therefore
// hand algorithms a common diameter bound valid for both networks, which
// preserves the force of the construction (see DESIGN.md).

// Gadget holds the local node indexing of one Figure 1 gadget. Local
// indices: C() is the connector, A(i) for i in [1,d] is the spine,
// B1..B3 are the three pad nodes forming an alternate c<->a1 path, and
// S(j) for j in [1,k] are the fan nodes between A(d-1) and A(d).
type Gadget struct {
	d, k int
}

// NewGadget describes a gadget with spine length d >= 2 and fan width
// k >= 0.
func NewGadget(d, k int) Gadget {
	if d < 2 {
		panic(fmt.Sprintf("graph: gadget spine d=%d, need >= 2 (diameter D >= 6)", d))
	}
	if k < 0 {
		panic(fmt.Sprintf("graph: gadget fan k=%d, need >= 0", k))
	}
	return Gadget{d: d, k: k}
}

// Size returns the gadget node count d+k+4.
func (g Gadget) Size() int { return g.d + g.k + 4 }

// C returns the connector's local index.
func (g Gadget) C() int { return 0 }

// A returns the local index of spine node a_i, 1 <= i <= d.
func (g Gadget) A(i int) int {
	if i < 1 || i > g.d {
		panic(fmt.Sprintf("graph: gadget spine index %d out of [1,%d]", i, g.d))
	}
	return i
}

// B returns the local index of pad node b_i, 1 <= i <= 3.
func (g Gadget) B(i int) int {
	if i < 1 || i > 3 {
		panic(fmt.Sprintf("graph: gadget pad index %d out of [1,3]", i))
	}
	return g.d + i
}

// S returns the local index of fan node s_j, 1 <= j <= k.
func (g Gadget) S(j int) int {
	if j < 1 || j > g.k {
		panic(fmt.Sprintf("graph: gadget fan index %d out of [1,%d]", j, g.k))
	}
	return g.d + 3 + j
}

// edges enumerates the gadget's edge set in local indices.
func (g Gadget) edges() [][2]int {
	var es [][2]int
	es = append(es, [2]int{g.C(), g.A(1)})
	for i := 1; i < g.d; i++ {
		es = append(es, [2]int{g.A(i), g.A(i + 1)})
	}
	// Alternate path c - b3 - b2 - b1 - a1 (the paper's a+ nodes).
	es = append(es, [2]int{g.C(), g.B(3)})
	es = append(es, [2]int{g.B(3), g.B(2)})
	es = append(es, [2]int{g.B(2), g.B(1)})
	es = append(es, [2]int{g.B(1), g.A(1)})
	// Fan of parallel two-hop paths a_{d-1} - s_j - a_d.
	for j := 1; j <= g.k; j++ {
		es = append(es, [2]int{g.A(g.d - 1), g.S(j)})
		es = append(es, [2]int{g.S(j), g.A(g.d)})
	}
	return es
}

// Build returns the standalone gadget graph.
func (g Gadget) Build() *Graph {
	gr := New(g.Size())
	for _, e := range g.edges() {
		gr.AddEdge(e[0], e[1])
	}
	gr.Sort()
	return gr
}

// Figure1 holds the two networks of the paper's Figure 1 along with the
// node-role bookkeeping the indistinguishability experiments need.
type Figure1 struct {
	Gadget Gadget
	// A is the left network: two gadget copies bridged by Q, plus the
	// padding clique attached to Q.
	A *Graph
	// AGadget[b] lists network-A node indices of gadget copy b (the
	// proof's node sets A_0 and A_1), ordered by local gadget index.
	AGadget [2][]int
	// Q is the bridge node's index in A.
	Q int
	// Clique lists the padding clique's node indices in A.
	Clique []int
	// B is the right network: three interlocked gadget copies.
	B *Graph
	// BCopy[i] lists network-B node indices of copy i, ordered by local
	// gadget index; S_u for gadget-local index l is
	// {BCopy[0][l], BCopy[1][l], BCopy[2][l]}.
	BCopy [3][]int
	// N is the shared node count n' of both networks.
	N int
	// DiamA and DiamB are the BFS-computed diameters.
	DiamA, DiamB int
}

// BuildFigure1 instantiates the Figure 1 networks for an even diameter
// D >= 6 and a minimum size n >= D, following the paper's sizing: d is
// (D-2)/2, k is the smallest value with 3(d+k)+12 >= n, and network A's
// clique brings its size up to match network B's 3(d+k+4).
func BuildFigure1(D, n int) *Figure1 {
	if D < 6 || D%2 != 0 {
		panic(fmt.Sprintf("graph: Figure 1 needs even D >= 6, got %d", D))
	}
	if n < D {
		panic(fmt.Sprintf("graph: Figure 1 needs n >= D, got n=%d D=%d", n, D))
	}
	d := (D - 2) / 2
	k := 0
	for 3*(d+k)+12 < n {
		k++
	}
	gad := NewGadget(d, k)
	size := gad.Size()
	total := 3 * size // n' = 3(d+k)+12

	fig := &Figure1{Gadget: gad, N: total}

	// ---- Network A: gadget0 + gadget1 + q + clique C. ----
	cliqueSize := total - 2*size - 1 // = d+k+3
	a := New(total)
	for copyIdx := 0; copyIdx < 2; copyIdx++ {
		off := copyIdx * size
		nodes := make([]int, size)
		for l := 0; l < size; l++ {
			nodes[l] = off + l
		}
		fig.AGadget[copyIdx] = nodes
		for _, e := range gad.edges() {
			a.AddEdge(off+e[0], off+e[1])
		}
	}
	fig.Q = 2 * size
	a.AddEdge(fig.Q, fig.AGadget[0][gad.C()])
	a.AddEdge(fig.Q, fig.AGadget[1][gad.C()])
	fig.Clique = make([]int, cliqueSize)
	for i := 0; i < cliqueSize; i++ {
		fig.Clique[i] = 2*size + 1 + i
		a.AddEdge(fig.Q, fig.Clique[i])
		for j := 0; j < i; j++ {
			a.AddEdge(fig.Clique[j], fig.Clique[i])
		}
	}
	a.Sort()
	fig.A = a

	// ---- Network B: three-fold cover of the gadget. ----
	// All edges lift with the identity permutation except the connector's
	// spine edge (c,a1), which rotates by +1; copy i's connector attaches
	// to copy i+1's spine. The connector's pad edge (c,b3) lifts with the
	// identity, so c_i bridges copy i (via b3) and copy i+1 (via a1),
	// interlocking the three copies into a connected cover that satisfies
	// property (*) of Lemma 3.6.
	b := New(total)
	for i := 0; i < 3; i++ {
		off := i * size
		nodes := make([]int, size)
		for l := 0; l < size; l++ {
			nodes[l] = off + l
		}
		fig.BCopy[i] = nodes
	}
	rot := func(i int) int { return (i + 1) % 3 }
	cEdge := [2]int{gad.C(), gad.A(1)}
	for _, e := range gad.edges() {
		for i := 0; i < 3; i++ {
			if e == cEdge {
				b.AddEdge(fig.BCopy[i][e[0]], fig.BCopy[rot(i)][e[1]])
			} else {
				b.AddEdge(fig.BCopy[i][e[0]], fig.BCopy[i][e[1]])
			}
		}
	}
	b.Sort()
	fig.B = b

	fig.DiamA = a.Diameter()
	fig.DiamB = b.Diameter()
	return fig
}

// SU returns the proof's set S_u: the three network-B nodes corresponding
// to gadget-local index l.
func (f *Figure1) SU(l int) [3]int {
	return [3]int{f.BCopy[0][l], f.BCopy[1][l], f.BCopy[2][l]}
}

// VerifyCoverProperty checks property (*) from the proof of Lemma 3.6:
// for every gadget-local node l and every copy i, node BCopy[i][l] has,
// for each gadget-neighbor class l' of l, exactly one neighbor inside
// S_{l'}, and no neighbors outside those classes. It returns a descriptive
// error on the first violation.
func (f *Figure1) VerifyCoverProperty() error {
	size := f.Gadget.Size()
	gadget := f.Gadget.Build()
	// classOf[global B node] = gadget-local index.
	classOf := make([]int, f.B.N())
	for i := 0; i < 3; i++ {
		for l := 0; l < size; l++ {
			classOf[f.BCopy[i][l]] = l
		}
	}
	for l := 0; l < size; l++ {
		want := map[int]bool{}
		for _, nl := range gadget.Neighbors(l) {
			want[nl] = true
		}
		for i := 0; i < 3; i++ {
			u := f.BCopy[i][l]
			seen := map[int]int{}
			for _, v := range f.B.Neighbors(u) {
				seen[classOf[v]]++
			}
			if len(seen) != len(want) {
				return fmt.Errorf("graph: cover property: node copy=%d local=%d touches %d classes, want %d", i, l, len(seen), len(want))
			}
			// Sorted so the first violated class — and thus the error
			// text — is the same on every run.
			classes := make([]int, 0, len(seen))
			for nl := range seen {
				classes = append(classes, nl)
			}
			sort.Ints(classes)
			for _, nl := range classes {
				if !want[nl] {
					return fmt.Errorf("graph: cover property: node copy=%d local=%d adjacent to unexpected class %d", i, l, nl)
				}
				if cnt := seen[nl]; cnt != 1 {
					return fmt.Errorf("graph: cover property: node copy=%d local=%d has %d neighbors in class %d, want 1", i, l, cnt, nl)
				}
			}
		}
	}
	return nil
}

// KDNetwork holds the paper's Figure 2 network K_D and its parts.
type KDNetwork struct {
	G *Graph
	// L1 and L2 are the two L_D lines (D+1 nodes each), ordered from the
	// free end toward the hub-adjacent end.
	L1, L2 []int
	// Hub is the fixed endpoint of the L_{D-1} line wired to every node
	// of L1 and L2.
	Hub int
	// Tail lists the remaining L_{D-1} nodes walking away from the hub.
	Tail []int
	// D is the requested (and BFS-verified, for D >= 2) diameter.
	D int
}

// BuildKD constructs K_D for D >= 2: two disjoint copies of the line L_D
// plus the line L_{D-1}, with an edge from every L_D node to one fixed
// endpoint (Hub) of the L_{D-1} line.
func BuildKD(D int) *KDNetwork {
	if D < 2 {
		panic(fmt.Sprintf("graph: K_D needs D >= 2, got %d", D))
	}
	lineLen := D + 1 // |L_D|
	tailLen := D - 1 // |L_{D-1}| - 1 nodes beyond the hub
	total := 2*lineLen + 1 + tailLen
	g := New(total)
	kd := &KDNetwork{G: g, D: D}

	build := func(off int) []int {
		nodes := make([]int, lineLen)
		for i := 0; i < lineLen; i++ {
			nodes[i] = off + i
			if i > 0 {
				g.AddEdge(nodes[i-1], nodes[i])
			}
		}
		return nodes
	}
	kd.L1 = build(0)
	kd.L2 = build(lineLen)
	kd.Hub = 2 * lineLen
	kd.Tail = make([]int, tailLen)
	prev := kd.Hub
	for i := 0; i < tailLen; i++ {
		kd.Tail[i] = kd.Hub + 1 + i
		g.AddEdge(prev, kd.Tail[i])
		prev = kd.Tail[i]
	}
	for _, u := range kd.L1 {
		g.AddEdge(u, kd.Hub)
	}
	for _, u := range kd.L2 {
		g.AddEdge(u, kd.Hub)
	}
	g.Sort()
	return kd
}
