package graph

import "testing"

func TestGadgetAccounting(t *testing.T) {
	for _, tc := range []struct{ d, k int }{{2, 0}, {2, 5}, {3, 1}, {7, 10}} {
		gad := NewGadget(tc.d, tc.k)
		if got, want := gad.Size(), tc.d+tc.k+4; got != want {
			t.Errorf("d=%d k=%d: size %d, want %d", tc.d, tc.k, got, want)
		}
		g := gad.Build()
		if !g.IsConnected() {
			t.Errorf("d=%d k=%d: gadget disconnected", tc.d, tc.k)
		}
		// Connector-to-spine-end distance is exactly d (Section 3.2 sizing).
		if got := g.Dist(gad.C(), gad.A(tc.d)); got != tc.d {
			t.Errorf("d=%d k=%d: dist(c,a_d) = %d, want %d", tc.d, tc.k, got, tc.d)
		}
	}
}

func TestGadgetPanics(t *testing.T) {
	if func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		NewGadget(1, 0)
		return
	}(); !func() bool { return true }() {
		t.Fatal("unreachable")
	}
	for _, f := range []func(){
		func() { NewGadget(1, 0) },
		func() { NewGadget(2, -1) },
		func() { NewGadget(2, 0).A(0) },
		func() { NewGadget(2, 0).A(3) },
		func() { NewGadget(2, 0).B(4) },
		func() { NewGadget(2, 1).S(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFigure1Sizing(t *testing.T) {
	for _, tc := range []struct{ D, n int }{{6, 6}, {6, 30}, {8, 40}, {10, 64}, {12, 100}} {
		fig := BuildFigure1(tc.D, tc.n)
		// Paper: n' = 3((D-2)/2 + k) + 12 for the smallest adequate k.
		d := (tc.D - 2) / 2
		k := 0
		for 3*(d+k)+12 < tc.n {
			k++
		}
		want := 3*(d+k) + 12
		if fig.N != want {
			t.Errorf("D=%d n=%d: n' = %d, want %d", tc.D, tc.n, fig.N, want)
		}
		if fig.N < tc.n {
			t.Errorf("D=%d n=%d: n' = %d below requested minimum", tc.D, tc.n, fig.N)
		}
		if fig.A.N() != fig.N || fig.B.N() != fig.N {
			t.Errorf("D=%d n=%d: |A|=%d |B|=%d, want both %d", tc.D, tc.n, fig.A.N(), fig.B.N(), fig.N)
		}
	}
}

func TestFigure1Diameters(t *testing.T) {
	for _, D := range []int{6, 8, 10, 14} {
		fig := BuildFigure1(D, D)
		if !fig.A.IsConnected() || !fig.B.IsConnected() {
			t.Fatalf("D=%d: disconnected network", D)
		}
		if fig.DiamA != D {
			t.Errorf("D=%d: diam(A) = %d, want %d", D, fig.DiamA, D)
		}
		// Our reconstruction of the three-fold cover has diameter D+1
		// (D+2 at the D=6 boundary); the paper's exact gadget achieves D.
		// Experiments pass algorithms a diameter bound valid for both
		// networks, so the construction's force is preserved.
		if fig.DiamB < D || fig.DiamB > D+2 {
			t.Errorf("D=%d: diam(B) = %d, want within [%d,%d] (documented reconstruction)", D, fig.DiamB, D, D+2)
		}
	}
}

func TestFigure1CoverProperty(t *testing.T) {
	for _, tc := range []struct{ D, n int }{{6, 6}, {8, 50}, {10, 33}} {
		fig := BuildFigure1(tc.D, tc.n)
		if err := fig.VerifyCoverProperty(); err != nil {
			t.Errorf("D=%d n=%d: %v", tc.D, tc.n, err)
		}
	}
}

func TestFigure1GadgetCopiesDisjointInA(t *testing.T) {
	fig := BuildFigure1(8, 40)
	seen := map[int]bool{}
	mark := func(nodes []int) {
		for _, u := range nodes {
			if seen[u] {
				t.Fatalf("node %d appears in two roles", u)
			}
			seen[u] = true
		}
	}
	mark(fig.AGadget[0])
	mark(fig.AGadget[1])
	mark([]int{fig.Q})
	mark(fig.Clique)
	if len(seen) != fig.N {
		t.Fatalf("role partition covers %d nodes, want %d", len(seen), fig.N)
	}
	// The two gadgets only touch through q: no direct edges between them.
	inG := map[int]int{}
	for _, u := range fig.AGadget[0] {
		inG[u] = 0
	}
	for _, u := range fig.AGadget[1] {
		inG[u] = 1
	}
	for _, u := range fig.AGadget[0] {
		for _, v := range fig.A.Neighbors(u) {
			if side, ok := inG[v]; ok && side == 1 {
				t.Fatalf("direct edge between gadget copies: {%d,%d}", u, v)
			}
		}
	}
	// q's neighbors are exactly the two connectors plus the clique.
	wantDeg := 2 + len(fig.Clique)
	if got := fig.A.Degree(fig.Q); got != wantDeg {
		t.Fatalf("deg(q) = %d, want %d", got, wantDeg)
	}
}

func TestFigure1SU(t *testing.T) {
	fig := BuildFigure1(6, 6)
	su := fig.SU(fig.Gadget.C())
	for i := 0; i < 3; i++ {
		if su[i] != fig.BCopy[i][fig.Gadget.C()] {
			t.Fatalf("SU(c) = %v inconsistent with BCopy", su)
		}
	}
}

func TestFigure1Panics(t *testing.T) {
	for _, f := range []func(){
		func() { BuildFigure1(4, 4) },  // our gadget needs D >= 6
		func() { BuildFigure1(7, 10) }, // odd D
		func() { BuildFigure1(8, 4) },  // n < D
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestKDStructure(t *testing.T) {
	for _, D := range []int{2, 3, 4, 6, 9} {
		kd := BuildKD(D)
		g := kd.G
		wantN := 2*(D+1) + D // two L_D copies plus L_{D-1} (D nodes)
		if g.N() != wantN {
			t.Errorf("D=%d: N = %d, want %d", D, g.N(), wantN)
		}
		if !g.IsConnected() {
			t.Errorf("D=%d: disconnected", D)
		}
		if got := g.Diameter(); got != D {
			t.Errorf("D=%d: diameter = %d, want %d", D, got, D)
		}
		// Every L1/L2 node is wired to the hub.
		for _, u := range append(append([]int{}, kd.L1...), kd.L2...) {
			if !g.HasEdge(u, kd.Hub) {
				t.Errorf("D=%d: node %d not wired to hub", D, u)
			}
		}
		// L1 and L2 never touch each other directly.
		inL2 := map[int]bool{}
		for _, u := range kd.L2 {
			inL2[u] = true
		}
		for _, u := range kd.L1 {
			for _, v := range g.Neighbors(u) {
				if inL2[v] {
					t.Errorf("D=%d: direct edge between L1 and L2: {%d,%d}", D, u, v)
				}
			}
		}
		// The tail end is at distance D from line nodes.
		if len(kd.Tail) != D-1 {
			t.Errorf("D=%d: tail length %d, want %d", D, len(kd.Tail), D-1)
		}
		if D >= 2 {
			end := kd.Hub
			if len(kd.Tail) > 0 {
				end = kd.Tail[len(kd.Tail)-1]
			}
			if got := g.Dist(end, kd.L1[0]); got != D {
				t.Errorf("D=%d: dist(tail end, L1 start) = %d, want %d", D, got, D)
			}
		}
	}
}

func TestKDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for D=1")
		}
	}()
	BuildKD(1)
}
