package graph

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: N=%d M=%d", g.N(), g.M())
	}
	if g.IsConnected() {
		t.Fatal("empty graph reported connected")
	}
	if g.Diameter() != -1 {
		t.Fatalf("empty graph diameter = %d, want -1", g.Diameter())
	}
}

func TestSingleNode(t *testing.T) {
	g := New(1)
	if !g.IsConnected() {
		t.Fatal("single node not connected")
	}
	if d := g.Diameter(); d != 0 {
		t.Fatalf("single node diameter = %d, want 0", d)
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} missing")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge {0,2}")
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatalf("degrees: %v", g.DegreeSequence())
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Graph)
	}{
		{"self-loop", func(g *Graph) { g.AddEdge(1, 1) }},
		{"duplicate", func(g *Graph) { g.AddEdge(0, 1); g.AddEdge(1, 0) }},
		{"out-of-range", func(g *Graph) { g.AddEdge(0, 9) }},
		{"negative", func(g *Graph) { g.AddEdge(-1, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.f(New(3))
		})
	}
}

// TestFreezeAllowsConcurrentReads pins the concurrent-reader contract
// the wall-clock substrates rely on: after Freeze, Neighbors/HasEdge
// from many goroutines must be race-free (run under -race to enforce).
// Without Freeze, the first read after a mutation rebuilds the CSR
// lazily and concurrent readers would race on that rebuild.
func TestFreezeAllowsConcurrentReads(t *testing.T) {
	g := Clique(8)
	g.Freeze()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for u := 0; u < g.N(); u++ {
				if len(g.Neighbors(u)) != 7 {
					t.Errorf("worker %d: node %d has %d neighbors", w, u, len(g.Neighbors(u)))
					return
				}
				if !g.HasEdge(u, (u+1)%g.N()) {
					t.Errorf("worker %d: missing clique edge at %d", w, u)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCloneIndependence(t *testing.T) {
	g := Line(4)
	c := g.Clone()
	c.AddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Fatal("mutating clone changed original")
	}
	if g.M() != 3 || c.M() != 4 {
		t.Fatalf("edge counts: orig=%d clone=%d", g.M(), c.M())
	}
}

func TestFamilies(t *testing.T) {
	cases := []struct {
		name      string
		g         *Graph
		wantN     int
		wantM     int
		wantDiam  int
		connected bool
	}{
		{"clique4", Clique(4), 4, 6, 1, true},
		{"clique1", Clique(1), 1, 0, 0, true},
		{"line5", Line(5), 5, 4, 4, true},
		{"line1", Line(1), 1, 0, 0, true},
		{"ring6", Ring(6), 6, 6, 3, true},
		{"ring5", Ring(5), 5, 5, 2, true},
		{"star7", Star(7), 7, 6, 2, true},
		{"grid3x4", Grid(3, 4), 12, 17, 5, true},
		{"grid1x6", Grid(1, 6), 6, 5, 5, true},
		{"tree2x3", BalancedTree(2, 3), 15, 14, 6, true},
		{"tree3x2", BalancedTree(3, 2), 13, 12, 4, true},
		{"tree1x4", BalancedTree(1, 4), 5, 4, 4, true},
		{"starlines3x4", StarOfLines(3, 4), 13, 12, 8, true},
		{"starlines1x1", StarOfLines(1, 1), 2, 1, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.N(); got != tc.wantN {
				t.Errorf("N = %d, want %d", got, tc.wantN)
			}
			if got := tc.g.M(); got != tc.wantM {
				t.Errorf("M = %d, want %d", got, tc.wantM)
			}
			if got := tc.g.Diameter(); got != tc.wantDiam {
				t.Errorf("diameter = %d, want %d", got, tc.wantDiam)
			}
			if got := tc.g.IsConnected(); got != tc.connected {
				t.Errorf("connected = %v, want %v", got, tc.connected)
			}
		})
	}
}

func TestFamilyPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"ring2", func() { Ring(2) }},
		{"grid0", func() { Grid(0, 3) }},
		{"tree-branch0", func() { BalancedTree(0, 2) }},
		{"starlines0", func() { StarOfLines(0, 1) }},
		{"random0", func() { RandomConnected(0, 0.1, 1) }},
		{"random-badp", func() { RandomConnected(4, 1.5, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.f()
		})
	}
}

func TestBFSLine(t *testing.T) {
	g := Line(5)
	dist := g.BFS(0)
	for i, d := range dist {
		if d != i {
			t.Fatalf("dist[%d] = %d, want %d", i, d, i)
		}
	}
	if got := g.Dist(1, 4); got != 3 {
		t.Fatalf("Dist(1,4) = %d, want 3", got)
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("unreachable nodes got distances %v", dist)
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if g.Eccentricity(0) != -1 {
		t.Fatal("eccentricity on disconnected graph should be -1")
	}
}

func TestRandomConnectedProperties(t *testing.T) {
	check := func(n uint8, p uint16, seed int64) bool {
		nn := int(n%40) + 1
		pp := float64(p) / 65535.0
		g := RandomConnected(nn, pp, seed)
		return g.N() == nn && g.IsConnected() && g.M() >= nn-1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	a := RandomConnected(25, 0.1, 42)
	b := RandomConnected(25, 0.1, 42)
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts %d vs %d", a.M(), b.M())
	}
	for u := 0; u < a.N(); u++ {
		for v := u + 1; v < a.N(); v++ {
			if a.HasEdge(u, v) != b.HasEdge(u, v) {
				t.Fatalf("same seed, edge {%d,%d} differs", u, v)
			}
		}
	}
	c := RandomConnected(25, 0.1, 43)
	same := true
	for u := 0; u < a.N() && same; u++ {
		for v := u + 1; v < a.N(); v++ {
			if a.HasEdge(u, v) != c.HasEdge(u, v) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestDegreeSequenceSorted(t *testing.T) {
	g := Star(5)
	seq := g.DegreeSequence()
	want := []int{1, 1, 1, 1, 4}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("degree sequence %v, want %v", seq, want)
		}
	}
}

func TestRandomOverlayDisjoint(t *testing.T) {
	g := RandomConnected(20, 0.15, 3)
	o := RandomOverlay(g, 15, 4)
	if o.N() != g.N() {
		t.Fatalf("overlay N = %d, want %d", o.N(), g.N())
	}
	if o.M() != 15 {
		t.Fatalf("overlay M = %d, want 15", o.M())
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range o.Neighbors(u) {
			if g.HasEdge(u, v) {
				t.Fatalf("overlay edge {%d,%d} overlaps the base graph", u, v)
			}
		}
	}
}

func TestRandomOverlayCapped(t *testing.T) {
	g := Clique(4) // no non-edges at all
	o := RandomOverlay(g, 10, 1)
	if o.M() != 0 {
		t.Fatalf("overlay of a clique has %d edges", o.M())
	}
	line := Line(3) // exactly one non-edge {0,2}
	o = RandomOverlay(line, 10, 1)
	if o.M() != 1 || !o.HasEdge(0, 2) {
		t.Fatalf("overlay of line(3): M=%d", o.M())
	}
}

func TestRandomOverlayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomOverlay(Line(3), -1, 1)
}
