package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file holds the large-n sparse topology families: random regular
// expanders and Octopus-style multi-pod sparse meshes (arXiv:2501.09020).
// Both are degree-bounded — degree stays fixed while n grows into the
// 10^3..10^4 range — which is exactly the regime where the abstract MAC
// layer's degree- and diameter-proportional costs stay flat as the
// network scales. Both emit their edges in canonical ascending order, so
// the graph's adjacency rows are sorted by construction (no Sort pass).

// FromEdges builds a graph from an edge list, emitting the edges in
// canonical ascending (min,max) lexicographic order so every adjacency
// row comes out sorted by construction: a node's smaller neighbors are
// appended while the enumeration passes their rows, then its larger
// neighbors in ascending order. The input list must be duplicate-free
// after normalization (AddEdge still panics otherwise); the input slice
// is not modified.
func FromEdges(n int, edges [][2]int) *Graph {
	es := make([][2]int, len(edges))
	for i, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		es[i] = [2]int{u, v}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	g := New(n)
	for _, e := range es {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// edgeKey packs a normalized edge for set membership during sampling.
func edgeKey(u, v int) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

// Expander returns a random d-regular graph on n nodes via deterministic
// seeded stub pairing (the configuration model with conflict repair):
// each node contributes d stubs, the stub multiset is repeatedly
// shuffled and paired greedily, and pairs that would form a self-loop or
// duplicate edge are pushed back for the next round. An attempt that
// stops making progress, or pairs into a disconnected graph, restarts
// from the advanced rng state. Random d-regular graphs are expanders
// (and connected) with high probability for d >= 3, so restarts are
// rare; the whole construction is deterministic for a given seed.
//
// Requires 3 <= d < n and n*d even.
func Expander(n, d int, seed int64) *Graph {
	if d < 3 || d >= n {
		panic(fmt.Sprintf("graph: expander needs 3 <= d < n, got n=%d d=%d", n, d))
	}
	if n*d%2 != 0 {
		panic(fmt.Sprintf("graph: expander needs n*d even, got n=%d d=%d", n, d))
	}
	rng := rand.New(rand.NewSource(seed))
	const maxAttempts = 100
	for attempt := 0; attempt < maxAttempts; attempt++ {
		edges, ok := pairStubs(n, d, rng)
		if !ok {
			continue
		}
		g := FromEdges(n, edges)
		if g.IsConnected() {
			return g
		}
	}
	panic(fmt.Sprintf("graph: expander(%d,%d) failed to converge after %d pairing attempts", n, d, maxAttempts))
}

// pairStubs runs one pairing attempt: shuffle the remaining stubs, pair
// them two at a time, push conflicting pairs back, and repeat until every
// stub is matched or a round makes no progress (ok=false).
func pairStubs(n, d int, rng *rand.Rand) ([][2]int, bool) {
	stubs := make([]int, 0, n*d)
	for u := 0; u < n; u++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, u)
		}
	}
	seen := make(map[int64]struct{}, n*d/2)
	edges := make([][2]int, 0, n*d/2)
	for len(stubs) > 0 {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		before := len(stubs)
		// Conflicting pairs are compacted in place: the write index never
		// passes the read index, so the aliasing is safe.
		rest := stubs[:0]
		for i := 0; i+1 < before; i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				rest = append(rest, u, v)
				continue
			}
			key := edgeKey(u, v)
			if _, dup := seen[key]; dup {
				rest = append(rest, u, v)
				continue
			}
			seen[key] = struct{}{}
			edges = append(edges, [2]int{u, v})
		}
		stubs = rest
		if len(stubs) == before {
			return nil, false
		}
	}
	return edges, true
}

// Pods returns an Octopus-style multi-pod sparse mesh: p pods of k nodes
// each (pod i owns ids [i*k, (i+1)*k)), every pod internally a ring (a
// line for k == 2, a lone node for k == 1), plus c cross-pod links per
// pod. The first cross link of each pod targets the next pod (i+1 mod p),
// closing a ring over the pods, so the mesh is connected by construction;
// the remaining c-1 links go to seeded random other pods between seeded
// random members, giving the long-range shortcuts that keep the diameter
// low while degree stays O(c/k + 2). Deterministic for a given seed.
//
// Requires p >= 1, k >= 1, and c >= 1 whenever p > 1.
func Pods(p, k, c int, seed int64) *Graph {
	if p < 1 || k < 1 || c < 0 {
		panic(fmt.Sprintf("graph: pods needs p, k >= 1 and c >= 0, got p=%d k=%d c=%d", p, k, c))
	}
	if p > 1 && c < 1 {
		panic(fmt.Sprintf("graph: pods with p=%d > 1 needs c >= 1 cross links for connectivity", p))
	}
	n := p * k
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int64]struct{}, n+p*c)
	edges := make([][2]int, 0, n+p*c)
	add := func(u, v int) bool {
		if u == v {
			return false
		}
		key := edgeKey(u, v)
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		edges = append(edges, [2]int{u, v})
		return true
	}
	// Intra-pod rings.
	for i := 0; i < p; i++ {
		base := i * k
		for j := 0; j+1 < k; j++ {
			add(base+j, base+j+1)
		}
		if k >= 3 {
			add(base+k-1, base)
		}
	}
	// Cross-pod links. A duplicate first link can only mean the two pods
	// are already joined, so skipping it never costs connectivity.
	if p > 1 {
		for i := 0; i < p; i++ {
			for l := 0; l < c; l++ {
				target := (i + 1) % p
				if l > 0 {
					t := rng.Intn(p - 1)
					if t >= i {
						t++
					}
					target = t
				}
				for try := 0; try < 8; try++ {
					if add(i*k+rng.Intn(k), target*k+rng.Intn(k)) {
						break
					}
				}
			}
		}
	}
	return FromEdges(n, edges)
}
