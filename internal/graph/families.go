package graph

import (
	"fmt"
	"math/rand"
)

// Clique returns the complete graph K_n (the paper's single-hop topology).
func Clique(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Line returns the path graph on n nodes (diameter n-1). The paper writes
// L_d for the line with d+1 nodes; Line(d+1) constructs it.
func Line(n int) *Graph {
	g := New(n)
	for u := 0; u+1 < n; u++ {
		g.AddEdge(u, u+1)
	}
	return g
}

// Ring returns the cycle graph on n >= 3 nodes.
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: ring needs >= 3 nodes, got %d", n))
	}
	g := Line(n)
	g.AddEdge(n-1, 0)
	return g
}

// Star returns the star graph: node 0 is the hub, nodes 1..n-1 are leaves.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// Grid returns the rows x cols grid graph (diameter rows+cols-2).
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("graph: invalid grid %dx%d", rows, cols))
	}
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// BalancedTree returns the complete b-ary tree of the given depth
// (depth 0 is a single root). Node 0 is the root; children of u are
// appended in breadth-first order.
func BalancedTree(branch, depth int) *Graph {
	if branch < 1 || depth < 0 {
		panic(fmt.Sprintf("graph: invalid tree branch=%d depth=%d", branch, depth))
	}
	// Count nodes: sum_{i=0..depth} branch^i.
	total := 1
	level := 1
	for i := 0; i < depth; i++ {
		level *= branch
		total += level
	}
	g := New(total)
	next := 1
	for u := 0; next < total; u++ {
		for c := 0; c < branch && next < total; c++ {
			g.AddEdge(u, next)
			next++
		}
	}
	return g
}

// StarOfLines returns `arms` disjoint paths of length armLen joined at a
// central hub (node 0). It is the bottleneck topology used by experiment
// E7: diameter 2*armLen while the hub must relay Theta(n) information,
// which is exactly where per-id flooding degrades to Theta(n*Fack).
func StarOfLines(arms, armLen int) *Graph {
	if arms < 1 || armLen < 1 {
		panic(fmt.Sprintf("graph: invalid star-of-lines arms=%d armLen=%d", arms, armLen))
	}
	g := New(1 + arms*armLen)
	node := 1
	for a := 0; a < arms; a++ {
		prev := 0
		for i := 0; i < armLen; i++ {
			g.AddEdge(prev, node)
			prev = node
			node++
		}
	}
	return g
}

// RandomOverlay returns a graph on the same node set as g containing up to
// `extra` edges chosen uniformly among the non-edges of g (without
// replacement). It is the unreliable-link overlay for the dual-graph model
// variant: edge-disjoint from g by construction. Deterministic for a given
// seed.
func RandomOverlay(g *Graph, extra int, seed int64) *Graph {
	if extra < 0 {
		panic(fmt.Sprintf("graph: negative overlay size %d", extra))
	}
	n := g.N()
	var nonEdges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) {
				nonEdges = append(nonEdges, [2]int{u, v})
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(nonEdges), func(i, j int) {
		nonEdges[i], nonEdges[j] = nonEdges[j], nonEdges[i]
	})
	if extra > len(nonEdges) {
		extra = len(nonEdges)
	}
	// Canonical emission yields the same sorted adjacency rows the old
	// build-then-Sort pass produced, without the extra O(m log d) pass.
	return FromEdges(n, nonEdges[:extra])
}

// RandomConnected returns a random connected graph on n nodes: a uniform
// random spanning tree (random attachment) plus each remaining pair added
// independently with probability p. Deterministic for a given seed.
func RandomConnected(n int, p float64, seed int64) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: invalid node count %d", n))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: invalid edge probability %v", p))
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	// Random attachment tree keeps the graph connected with varied shape.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}
