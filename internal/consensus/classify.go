package consensus

import "github.com/absmac/absmac/internal/sim"

// This file classifies checked executions into violations. It used to live
// in internal/explore, but the campaign pipeline needs the classification
// on both sides of the sweep→explore boundary: sweep workers
// (internal/harness) classify each seed's outcome to decide what to flag,
// and the explorer/minimizer (internal/explore) preserve the violation
// kind across perturbation and shrinking. consensus is below both, so the
// verdict lives here and both import it without a cycle.

// Violation kinds, in the severity order Classify assigns them.
const (
	KindAgreement      = "agreement"
	KindValidity       = "validity"
	KindNonTermination = "non-termination"
	KindSubstrate      = "substrate"
)

// Severity ranks a violation kind, most severe first (0 = agreement),
// matching the order Classify assigns dominant kinds. It is the one place
// the severity order is encoded — the campaign's escalation policy sorts
// with it. Unknown kinds rank least severe.
func Severity(kind string) int {
	switch kind {
	case KindAgreement:
		return 0
	case KindValidity:
		return 1
	case KindNonTermination:
		return 2
	default:
		return 3
	}
}

// Violation describes one property breach found in an execution.
type Violation struct {
	// Kind is the dominant violated property (severity order: agreement,
	// validity, non-termination, substrate).
	Kind string `json:"kind"`
	// Errors lists every property error the checker reported.
	Errors []string `json:"errors,omitempty"`
	// Quiescent distinguishes a stall (the execution drained its event
	// queue with undecided survivors) from a potential livelock cut off by
	// the event cap. Meaningful for non-termination findings.
	Quiescent bool `json:"quiescent"`
	// Events is the execution's processed-event count.
	Events int `json:"events"`
}

// Classify reduces a checked execution to its violation, or nil when it
// satisfied agreement, validity and termination with a clean substrate.
func Classify(rep *Report, res *sim.Result) *Violation {
	if rep.OK() {
		return nil
	}
	kind := KindSubstrate
	switch {
	case !rep.Agreement:
		kind = KindAgreement
	case !rep.Validity:
		kind = KindValidity
	case !rep.Termination:
		kind = KindNonTermination
	}
	return &Violation{
		Kind:      kind,
		Errors:    rep.Errors,
		Quiescent: res.Quiescent,
		Events:    res.Events,
	}
}
