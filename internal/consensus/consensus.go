// Package consensus defines the binary consensus problem from the paper
// (Section 2) and provides checkers that validate executions against its
// three properties:
//
//	agreement:   no two surviving nodes decide different values;
//	validity:    a surviving node's decision was some node's initial value;
//	termination: every non-faulty node eventually decides.
//
// All three properties are judged over survivors — crash-failure consensus
// places no obligation on nodes the adversary kills, so a node that
// decided and later crashed neither constrains nor violates agreement (the
// non-uniform variant of the problem, matching the paper's crash model).
// The report still counts the crashed nodes so fault-injected sweeps can
// aggregate fault statistics.
//
// The checkers consume simulator results; they are also used by the live
// runtime's harness. The package additionally provides an anonymity
// auditor used by the Section 3.2 experiments to certify that an algorithm
// claimed to be anonymous never reads its node id.
package consensus

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/sim"
)

// Report is the outcome of checking one execution.
type Report struct {
	// Agreement, Validity and Termination report whether each property
	// held. Termination is meaningful only for runs that were given the
	// chance to finish (quiescent or decided runs).
	Agreement   bool
	Validity    bool
	Termination bool
	// Value is the agreed value when Agreement holds and at least one
	// surviving node decided.
	Value amac.Value
	// SomeoneDecided reports whether any surviving node decided at all.
	SomeoneDecided bool
	// Crashed counts the crashed nodes (the run's fault load).
	Crashed int
	// SurvivorDecideTime is the latest decision time among surviving
	// deciders — the fault-adjusted decision latency — or -1 when no
	// survivor decided. It differs from sim.Result.MaxDecideTime when a
	// node decided and then crashed.
	SurvivorDecideTime int64
	// Errors describes each violated property.
	Errors []string
}

// OK reports whether all three properties held and the execution raised no
// substrate violations.
func (r *Report) OK() bool {
	return r.Agreement && r.Validity && r.Termination && len(r.Errors) == 0
}

// Check validates a simulator result against the consensus properties for
// the given inputs (which must be the inputs the run was configured with).
func Check(inputs []amac.Value, res *sim.Result) *Report {
	rep := &Report{Agreement: true, Validity: true, Termination: true, SurvivorDecideTime: -1}
	if len(inputs) != len(res.Decided) {
		rep.Errors = append(rep.Errors, fmt.Sprintf("inputs/result size mismatch: %d vs %d", len(inputs), len(res.Decided)))
		rep.Agreement, rep.Validity, rep.Termination = false, false, false
		return rep
	}

	valid := make(map[amac.Value]bool, 2)
	for _, v := range inputs {
		valid[v] = true
	}

	first := true
	for i, decided := range res.Decided {
		if res.Crashed[i] {
			// Crashed nodes carry no obligations: their decisions (if
			// any) are judged by nobody, and termination exempts them.
			rep.Crashed++
			continue
		}
		if !decided {
			rep.Termination = false
			rep.Errors = append(rep.Errors, fmt.Sprintf("termination: non-faulty node %d never decided", i))
			continue
		}
		rep.SomeoneDecided = true
		if res.DecideTime[i] > rep.SurvivorDecideTime {
			rep.SurvivorDecideTime = res.DecideTime[i]
		}
		v := res.Decision[i]
		if !valid[v] {
			rep.Validity = false
			rep.Errors = append(rep.Errors, fmt.Sprintf("validity: node %d decided %d, which no node proposed", i, v))
		}
		if first {
			rep.Value = v
			first = false
		} else if v != rep.Value {
			rep.Agreement = false
			rep.Errors = append(rep.Errors, fmt.Sprintf("agreement: node %d decided %d, conflicting with %d", i, v, rep.Value))
		}
	}

	for _, viol := range res.Violations {
		rep.Errors = append(rep.Errors, "substrate violation: "+viol.String())
	}
	return rep
}

// MustOK is a test/driver helper: it panics with a descriptive message when
// the report is not clean.
func MustOK(rep *Report) {
	if !rep.OK() {
		panic(fmt.Sprintf("consensus violated: %v", rep.Errors))
	}
}

// anonAPI wraps an amac.API and records id reads.
type anonAPI struct {
	amac.API
	reads *int
}

func (a anonAPI) ID() amac.NodeID {
	*a.reads++
	return a.API.ID()
}

// anonAlg defers wrapping until Start, where the API becomes available.
type anonAlg struct {
	inner amac.Algorithm
	reads *int
}

func (a *anonAlg) Start(api amac.API)       { a.inner.Start(anonAPI{API: api, reads: a.reads}) }
func (a *anonAlg) OnReceive(m amac.Message) { a.inner.OnReceive(m) }
func (a *anonAlg) OnAck(m amac.Message)     { a.inner.OnAck(m) }

// AnonymityAudit wraps a factory so that every id read through the API is
// counted. The returned counter can be inspected after the run: a truly
// anonymous algorithm (Section 3.2) leaves it at zero.
func AnonymityAudit(f amac.Factory) (amac.Factory, *int) {
	reads := new(int)
	wrapped := func(cfg amac.NodeConfig) amac.Algorithm {
		// Hide the id from the constructor too: anonymous algorithms
		// must not see it even at build time.
		cfg.ID = amac.NoID
		return &anonAlg{inner: f(cfg), reads: reads}
	}
	return wrapped, reads
}
