package consensus

import (
	"strings"
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

func result(n int) *sim.Result {
	return &sim.Result{
		Decided:    make([]bool, n),
		Decision:   make([]amac.Value, n),
		DecideTime: make([]int64, n),
		Crashed:    make([]bool, n),
	}
}

func TestCheckAllGood(t *testing.T) {
	res := result(3)
	for i := 0; i < 3; i++ {
		res.Decided[i] = true
		res.Decision[i] = 1
	}
	rep := Check([]amac.Value{0, 1, 1}, res)
	if !rep.OK() {
		t.Fatalf("clean run flagged: %v", rep.Errors)
	}
	if rep.Value != 1 || !rep.SomeoneDecided {
		t.Fatalf("report %+v", rep)
	}
}

func TestCheckAgreementViolation(t *testing.T) {
	res := result(2)
	res.Decided[0], res.Decision[0] = true, 0
	res.Decided[1], res.Decision[1] = true, 1
	rep := Check([]amac.Value{0, 1}, res)
	if rep.Agreement {
		t.Fatal("disagreement not flagged")
	}
	if rep.OK() {
		t.Fatal("OK despite disagreement")
	}
}

func TestCheckValidityViolation(t *testing.T) {
	res := result(1)
	res.Decided[0], res.Decision[0] = true, 1
	rep := Check([]amac.Value{0}, res)
	if rep.Validity {
		t.Fatal("invalid decision not flagged")
	}
}

func TestCheckTermination(t *testing.T) {
	res := result(2)
	res.Decided[0], res.Decision[0] = true, 0
	rep := Check([]amac.Value{0, 0}, res)
	if rep.Termination {
		t.Fatal("missing decision not flagged")
	}
	// A crashed node is exempt.
	res.Crashed[1] = true
	rep = Check([]amac.Value{0, 0}, res)
	if !rep.Termination {
		t.Fatalf("crashed node counted against termination: %v", rep.Errors)
	}
}

// TestCheckJudgesSurvivorsOnly pins the crash-failure semantics: a node
// that decided a conflicting value and then crashed neither violates
// agreement nor contributes to the survivor latency.
func TestCheckJudgesSurvivorsOnly(t *testing.T) {
	res := result(3)
	res.Decided[0], res.Decision[0], res.DecideTime[0] = true, 0, 50
	res.Crashed[0] = true // decided 0 at t=50, then crashed
	res.Decided[1], res.Decision[1], res.DecideTime[1] = true, 1, 10
	res.Decided[2], res.Decision[2], res.DecideTime[2] = true, 1, 20
	res.MaxDecideTime = 50
	rep := Check([]amac.Value{0, 1, 1}, res)
	if !rep.OK() {
		t.Fatalf("survivor-consistent run flagged: %v", rep.Errors)
	}
	if rep.Value != 1 {
		t.Fatalf("agreed value %d, want the survivors' 1", rep.Value)
	}
	if rep.Crashed != 1 {
		t.Fatalf("crashed count %d, want 1", rep.Crashed)
	}
	if rep.SurvivorDecideTime != 20 {
		t.Fatalf("survivor decide time %d, want 20 (crashed decider excluded)", rep.SurvivorDecideTime)
	}

	// An invalid decision by a crashed node is exempt too.
	res = result(2)
	res.Decided[0], res.Decision[0] = true, 1 // 1 was never proposed
	res.Crashed[0] = true
	res.Decided[1], res.Decision[1], res.DecideTime[1] = true, 0, 5
	rep = Check([]amac.Value{0, 0}, res)
	if !rep.OK() {
		t.Fatalf("crashed node's invalid decision flagged: %v", rep.Errors)
	}

	// No surviving decider: the sentinel must come back unchanged.
	res = result(1)
	res.Decided[0], res.Crashed[0] = true, true
	rep = Check([]amac.Value{0}, res)
	if rep.SomeoneDecided || rep.SurvivorDecideTime != -1 {
		t.Fatalf("crashed-only deciders leaked into survivor stats: %+v", rep)
	}
}

func TestCheckSubstrateViolationsPropagate(t *testing.T) {
	res := result(1)
	res.Decided[0] = true
	res.Violations = append(res.Violations, sim.Violation{Time: 3, Node: 0, Desc: "boom"})
	rep := Check([]amac.Value{0}, res)
	if rep.OK() {
		t.Fatal("substrate violation ignored")
	}
	if !strings.Contains(strings.Join(rep.Errors, ";"), "boom") {
		t.Fatalf("violation text lost: %v", rep.Errors)
	}
}

func TestCheckSizeMismatch(t *testing.T) {
	rep := Check([]amac.Value{0}, result(2))
	if rep.OK() {
		t.Fatal("size mismatch not flagged")
	}
}

func TestMustOKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rep := Check([]amac.Value{0}, result(1)) // termination violation
	MustOK(rep)
}

// idReader reads its id once at start; the audit must count it.
type idReader struct{}

func (a *idReader) Start(api amac.API)     { _ = api.ID() }
func (a *idReader) OnReceive(amac.Message) {}
func (a *idReader) OnAck(m amac.Message)   {}

// idIgnorer never touches ids.
type idIgnorer struct{}

func (a *idIgnorer) Start(api amac.API)     {}
func (a *idIgnorer) OnReceive(amac.Message) {}
func (a *idIgnorer) OnAck(m amac.Message)   {}

func TestAnonymityAudit(t *testing.T) {
	reader, readerCount := AnonymityAudit(func(amac.NodeConfig) amac.Algorithm { return &idReader{} })
	sim.Run(sim.Config{
		Graph:     graph.Clique(3),
		Inputs:    make([]amac.Value, 3),
		Factory:   reader,
		Scheduler: sim.Synchronous{},
	})
	if *readerCount != 3 {
		t.Fatalf("id reads counted %d, want 3", *readerCount)
	}

	ignorer, ignorerCount := AnonymityAudit(func(amac.NodeConfig) amac.Algorithm { return &idIgnorer{} })
	sim.Run(sim.Config{
		Graph:     graph.Clique(3),
		Inputs:    make([]amac.Value, 3),
		Factory:   ignorer,
		Scheduler: sim.Synchronous{},
	})
	if *ignorerCount != 0 {
		t.Fatalf("anonymous algorithm counted %d id reads", *ignorerCount)
	}
}

func TestAnonymityAuditHidesConstructorID(t *testing.T) {
	var sawIDs []amac.NodeID
	f, _ := AnonymityAudit(func(cfg amac.NodeConfig) amac.Algorithm {
		sawIDs = append(sawIDs, cfg.ID)
		return &idIgnorer{}
	})
	sim.Run(sim.Config{
		Graph:     graph.Clique(2),
		Inputs:    make([]amac.Value, 2),
		Factory:   f,
		Scheduler: sim.Synchronous{},
	})
	for _, id := range sawIDs {
		if id != amac.NoID {
			t.Fatalf("constructor saw real id %d", id)
		}
	}
}
