// Package benor implements a randomized binary consensus algorithm in the
// style of Ben-Or (1983), adapted to the abstract MAC layer's acknowledged
// local broadcast, for single-hop networks with up to f < n/2 crash
// failures.
//
// It is this repository's answer to the paper's third future-work
// direction: "consider randomized algorithms, which might ... circumvent
// our crash failure ... lower bounds". Theorem 3.2 shows deterministic
// consensus is impossible with one crash; Ben-Or's coin restores
// termination with probability 1 while keeping agreement and validity
// unconditional. Experiment E12 runs this algorithm through the very crash
// schedules that freeze the two-phase algorithm.
//
// The round structure (for node u with estimate x, round r):
//
//	report phase:  broadcast <report, r, x>; await n-f round-r reports
//	               (own included). If more than n/2 carry the same value
//	               v, the proposal is v, otherwise "no preference".
//	propose phase: broadcast <propose, r, w>; await n-f round-r
//	               proposals. If f+1 or more propose the same value v,
//	               decide v and flood the decision; if at least one
//	               proposes v, adopt x = v; otherwise flip a fair coin
//	               for x. Continue to round r+1.
//
// Standard arguments give: at most one value can be proposed per round
// (majority intersection); a decision in round r forces every node that
// finishes round r to adopt the decided value, so round r+1 decides it
// unanimously; and unanimous inputs decide in round 1 without any coin.
package benor

import (
	"fmt"
	"math/rand"

	"github.com/absmac/absmac/internal/amac"
)

// Report is the first-phase message <report, r, v>.
type Report struct {
	R    int
	From amac.NodeID
	V    amac.Value
}

// IDCount implements amac.Message.
func (Report) IDCount() int { return 1 }

// Proposal is the second-phase message <propose, r, w>, where w is either
// a value (HasV) or "no preference".
type Proposal struct {
	R    int
	From amac.NodeID
	HasV bool
	V    amac.Value
}

// IDCount implements amac.Message.
func (Proposal) IDCount() int { return 1 }

// Decide floods a decision.
type Decide struct {
	V amac.Value
}

// IDCount implements amac.Message.
func (Decide) IDCount() int { return 0 }

// Config carries the algorithm's knowledge assumptions.
type Config struct {
	// N is the network size (known, as in wPAXOS).
	N int
	// F is the crash budget tolerated; requires N >= 2F+1.
	F int
	// Seed derives each node's coin (per-node streams are split by id).
	Seed int64
}

type phase int

const (
	phaseReport phase = iota + 1
	phasePropose
	phaseDone
)

// Node is the per-node state machine.
type Node struct {
	api amac.API
	cfg Config
	rng *rand.Rand

	x     amac.Value
	round int
	phase phase

	// reports[r][id] and proposals[r][id] buffer per-round messages,
	// including from rounds this node has not reached yet.
	reports   map[int]map[amac.NodeID]amac.Value
	proposals map[int]map[amac.NodeID]*amac.Value

	inflight bool
	pending  []amac.Message // broadcasts deferred until in-flight acks

	decided   bool
	decision  amac.Value
	decideQ   bool // a Decide flood is owed
	decideVal amac.Value
}

// New returns a Ben-Or node for the given binary input.
func New(input amac.Value, cfg Config) *Node {
	if input != 0 && input != 1 {
		panic(fmt.Sprintf("benor: input %d is not binary", input))
	}
	if cfg.N < 1 || cfg.F < 0 || cfg.N < 2*cfg.F+1 {
		panic(fmt.Sprintf("benor: invalid configuration n=%d f=%d (need n >= 2f+1)", cfg.N, cfg.F))
	}
	return &Node{
		cfg:       cfg,
		x:         input,
		reports:   make(map[int]map[amac.NodeID]amac.Value),
		proposals: make(map[int]map[amac.NodeID]*amac.Value),
	}
}

// NewFactory returns a factory sharing the configuration.
func NewFactory(cfg Config) amac.Factory {
	return func(nc amac.NodeConfig) amac.Algorithm { return New(nc.Input, cfg) }
}

// Start implements amac.Algorithm.
func (a *Node) Start(api amac.API) {
	a.api = api
	// Affine map distinct from every other seed consumer in the tree
	// (overlay seed*1000003+17, loss coins seed*6700417+257, minorityrand
	// crashes seed*2654435761+97): the previous seed*1000003+ID derivation
	// made node 17's coins walk the overlay builder's exact stream.
	a.rng = rand.New(rand.NewSource(a.cfg.Seed*7368787 + int64(api.ID())*1299721 + 31))
	if a.cfg.N == 1 {
		a.decideNow(a.x)
		return
	}
	a.round = 1
	a.phase = phaseReport
	a.recordReport(Report{R: 1, From: api.ID(), V: a.x})
	a.send(Report{R: 1, From: api.ID(), V: a.x})
}

// OnReceive implements amac.Algorithm.
func (a *Node) OnReceive(m amac.Message) {
	switch msg := m.(type) {
	case Report:
		a.recordReport(msg)
	case Proposal:
		a.recordProposal(msg)
	case Decide:
		if !a.decided {
			a.decideNow(msg.V)
			a.queueDecide(msg.V)
		}
	default:
		panic(fmt.Sprintf("benor: unexpected message type %T", m))
	}
	a.progress()
}

// OnAck implements amac.Algorithm.
func (a *Node) OnAck(amac.Message) {
	a.inflight = false
	if len(a.pending) > 0 {
		m := a.pending[0]
		a.pending = a.pending[1:]
		a.send(m)
		return
	}
	a.progress()
}

// send broadcasts now or defers until the in-flight acks drain. A node can
// advance several phases on buffered messages while one broadcast is still
// in flight, so deferred sends form a queue (bounded by the number of
// phase transitions, i.e. by rounds).
func (a *Node) send(m amac.Message) {
	if a.inflight {
		a.pending = append(a.pending, m)
		return
	}
	a.inflight = true
	a.api.Broadcast(m)
}

func (a *Node) recordReport(m Report) {
	byID, ok := a.reports[m.R]
	if !ok {
		byID = make(map[amac.NodeID]amac.Value)
		a.reports[m.R] = byID
	}
	if _, dup := byID[m.From]; !dup {
		byID[m.From] = m.V
	}
}

func (a *Node) recordProposal(m Proposal) {
	byID, ok := a.proposals[m.R]
	if !ok {
		byID = make(map[amac.NodeID]*amac.Value)
		a.proposals[m.R] = byID
	}
	if _, dup := byID[m.From]; !dup {
		if m.HasV {
			v := m.V
			byID[m.From] = &v
		} else {
			byID[m.From] = nil
		}
	}
}

// progress advances the round machine whenever thresholds are met.
func (a *Node) progress() {
	if a.decided {
		return
	}
	need := a.cfg.N - a.cfg.F
	for {
		switch a.phase {
		case phaseReport:
			byID := a.reports[a.round]
			if len(byID) < need {
				return
			}
			counts := map[amac.Value]int{}
			for _, v := range byID {
				counts[v]++
			}
			prop := Proposal{R: a.round, From: a.api.ID()}
			for v, c := range counts {
				if 2*c > a.cfg.N {
					prop.HasV = true
					prop.V = v
				}
			}
			a.phase = phasePropose
			a.recordProposal(prop)
			a.send(prop)
		case phasePropose:
			byID := a.proposals[a.round]
			if len(byID) < need {
				return
			}
			// At most one value appears among non-nil proposals.
			var val *amac.Value
			count := 0
			for _, pv := range byID {
				if pv != nil {
					val = pv
					count++
				}
			}
			switch {
			case val != nil && count >= a.cfg.F+1:
				a.decideNow(*val)
				a.queueDecide(*val)
				return
			case val != nil:
				a.x = *val
			default:
				a.x = amac.Value(a.rng.Intn(2))
			}
			a.round++
			a.phase = phaseReport
			rep := Report{R: a.round, From: a.api.ID(), V: a.x}
			a.recordReport(rep)
			a.send(rep)
		default:
			return
		}
		// The new phase's threshold may already be satisfied by
		// buffered messages; loop.
	}
}

func (a *Node) decideNow(v amac.Value) {
	if a.decided {
		return
	}
	a.decided = true
	a.decision = v
	a.phase = phaseDone
	a.api.Decide(v)
}

// queueDecide floods the decision: immediately when the channel is free,
// otherwise right after the pending traffic.
func (a *Node) queueDecide(v amac.Value) {
	if a.decideQ {
		return
	}
	a.decideQ = true
	a.decideVal = v
	// Drop any deferred phase messages: once decided, only the decision
	// flood matters.
	a.pending = a.pending[:0]
	a.send(Decide{V: v})
}

// Decided implements amac.Decider.
func (a *Node) Decided() (amac.Value, bool) { return a.decision, a.decided }

var (
	_ amac.Algorithm = (*Node)(nil)
	_ amac.Decider   = (*Node)(nil)
	_ amac.Message   = Report{}
	_ amac.Message   = Proposal{}
	_ amac.Message   = Decide{}
)
