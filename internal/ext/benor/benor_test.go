package benor

import (
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

func run(n int, inputs []amac.Value, cfg Config, sched sim.Scheduler, crashes []sim.Crash) *sim.Result {
	return sim.Run(sim.Config{
		Graph:           graph.Clique(n),
		Inputs:          inputs,
		Factory:         NewFactory(cfg),
		Scheduler:       sched,
		Crashes:         crashes,
		StopWhenDecided: true,
		Audit:           true,
		MaxEvents:       2_000_000,
	})
}

func TestNoCrashCensus(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		f := (n - 1) / 2
		for mask := 0; mask < 1<<n; mask++ {
			inputs := make([]amac.Value, n)
			for i := range inputs {
				if mask&(1<<i) != 0 {
					inputs[i] = 1
				}
			}
			res := run(n, inputs, Config{N: n, F: f, Seed: int64(mask)}, sim.NewRandom(3, int64(mask)*7+1), nil)
			rep := consensus.Check(inputs, res)
			if !rep.OK() {
				t.Fatalf("n=%d mask=%b: %v", n, mask, rep.Errors)
			}
		}
	}
}

func TestUnanimousDecidesRoundOne(t *testing.T) {
	for _, v := range []amac.Value{0, 1} {
		n := 5
		inputs := []amac.Value{v, v, v, v, v}
		res := run(n, inputs, Config{N: n, F: 2, Seed: 1}, sim.Synchronous{}, nil)
		rep := consensus.Check(inputs, res)
		if !rep.OK() || rep.Value != v {
			t.Fatalf("unanimous %d: %v value=%d", v, rep.Errors, rep.Value)
		}
		// Round 1 under the synchronous scheduler: report at t=1,
		// proposal at t=2, decide flood at t=3.
		if res.MaxDecideTime > 4 {
			t.Fatalf("unanimous decision at t=%d, want within one round", res.MaxDecideTime)
		}
	}
}

// TestCrashToleranceCircumventsThm32 is the extension's reason to exist:
// under crash failures — which freeze every deterministic algorithm on
// some schedule (Theorem 3.2) — the randomized algorithm keeps
// terminating, with safety unconditional.
func TestCrashToleranceCircumventsThm32(t *testing.T) {
	n := 5
	f := 2
	for seed := int64(0); seed < 12; seed++ {
		inputs := []amac.Value{0, 1, 0, 1, 1}
		crashes := []sim.Crash{
			{Node: int(seed) % n, At: 1 + seed%5},
			{Node: (int(seed) + 2) % n, At: 3 + seed%7},
		}
		res := run(n, inputs, Config{N: n, F: f, Seed: seed}, sim.NewRandom(4, seed*13+5), crashes)
		rep := consensus.Check(inputs, res)
		if !rep.OK() {
			t.Fatalf("seed %d: %v", seed, rep.Errors)
		}
		if res.Cutoff {
			t.Fatalf("seed %d: run hit the event cap without deciding", seed)
		}
	}
}

// TestAdversarialSerialization runs the coin-dependent path under the
// edge-order adversary.
func TestAdversarialSerialization(t *testing.T) {
	n := 7
	inputs := []amac.Value{0, 1, 0, 1, 0, 1, 0}
	res := run(n, inputs, Config{N: n, F: 3, Seed: 3}, &sim.EdgeOrder{MaxDegree: n}, nil)
	rep := consensus.Check(inputs, res)
	if !rep.OK() {
		t.Fatalf("%v", rep.Errors)
	}
}

func TestSingleNode(t *testing.T) {
	inputs := []amac.Value{1}
	res := run(1, inputs, Config{N: 1, F: 0, Seed: 1}, sim.Synchronous{}, nil)
	rep := consensus.Check(inputs, res)
	if !rep.OK() || rep.Value != 1 {
		t.Fatalf("single node: %v", rep.Errors)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(2, Config{N: 3, F: 1}) },
		func() { New(0, Config{N: 3, F: 2}) }, // n < 2f+1
		func() { New(0, Config{N: 0, F: 0}) },
		func() { New(0, Config{N: 3, F: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMessageIDCounts(t *testing.T) {
	if (Report{}).IDCount() != 1 || (Proposal{}).IDCount() != 1 || (Decide{}).IDCount() != 0 {
		t.Fatal("message id counts")
	}
}

func TestDeterministicGivenSeeds(t *testing.T) {
	n := 5
	inputs := []amac.Value{0, 1, 1, 0, 1}
	a := run(n, inputs, Config{N: n, F: 2, Seed: 9}, sim.NewRandom(3, 11), nil)
	b := run(n, inputs, Config{N: n, F: 2, Seed: 9}, sim.NewRandom(3, 11), nil)
	if a.Events != b.Events || a.MaxDecideTime != b.MaxDecideTime {
		t.Fatalf("same seeds diverged: %d/%d vs %d/%d", a.Events, a.MaxDecideTime, b.Events, b.MaxDecideTime)
	}
}
