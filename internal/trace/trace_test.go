package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/core/twophase"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

func runWith(r *Recorder) {
	inputs := []amac.Value{0, 1, 0}
	sim.Run(sim.Config{
		Graph:           graph.Clique(3),
		Inputs:          inputs,
		Factory:         twophase.Factory,
		Scheduler:       sim.Synchronous{},
		StopWhenDecided: true,
		Observer:        r.Observer(),
	})
}

func TestRecorderCapturesEverything(t *testing.T) {
	r := New(0)
	runWith(r)
	if r.Total() == 0 {
		t.Fatal("no events recorded")
	}
	if got := len(r.Events()); got != r.Total() {
		t.Fatalf("retained %d of %d events with default capacity", got, r.Total())
	}
	if r.Count(sim.EventDecide) != 3 {
		t.Fatalf("decides = %d, want 3", r.Count(sim.EventDecide))
	}
	if r.Count(sim.EventBroadcast) == 0 || r.Count(sim.EventAck) == 0 {
		t.Fatal("missing broadcast/ack counts")
	}
}

func TestRecorderRingBuffer(t *testing.T) {
	r := New(5)
	runWith(r)
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("retained %d events, want capacity 5", len(evs))
	}
	// The retained window is the most recent five, in order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("ring order broken: %v after %v", evs[i].Time, evs[i-1].Time)
		}
	}
	// The last retained event is the run's last event (a decide).
	if evs[len(evs)-1].Kind != sim.EventDecide {
		t.Fatalf("last retained event %v, want a decide", evs[len(evs)-1].Kind)
	}
}

func TestRecorderKindFilter(t *testing.T) {
	r := New(100, sim.EventDecide)
	runWith(r)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3 decides", len(evs))
	}
	for _, ev := range evs {
		if ev.Kind != sim.EventDecide {
			t.Fatalf("retained %v despite filter", ev.Kind)
		}
	}
	// Counts still cover everything.
	if r.Total() <= 3 {
		t.Fatalf("total = %d, should include filtered events", r.Total())
	}
}

func TestFormatAndDump(t *testing.T) {
	r := New(100)
	runWith(r)
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"broadcast", "deliver", "ack", "decide", "value=1", "from="} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestSummary(t *testing.T) {
	r := New(10)
	runWith(r)
	s := r.Summary()
	for _, want := range []string{"broadcast=", "deliver=", "ack=", "decide=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}

func TestDumpJSONL(t *testing.T) {
	r := New(100)
	runWith(r)
	var b strings.Builder
	if err := r.DumpJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != r.Total() {
		t.Fatalf("dumped %d lines for %d events", len(lines), r.Total())
	}
	decides, delivers := 0, 0
	for _, line := range lines {
		var ev JSONLEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		switch ev.Kind {
		case "decide":
			// The decide value must be present even when it is 0.
			if ev.Value == nil {
				t.Fatalf("decide line %q lost its value", line)
			}
			decides++
		case "deliver":
			// Likewise the sender, even when it is node 0.
			if ev.Peer == nil {
				t.Fatalf("deliver line %q lost its peer", line)
			}
			delivers++
		}
	}
	if decides != 3 || delivers == 0 {
		t.Fatalf("jsonl saw %d decides, %d delivers", decides, delivers)
	}
}

// TestSummaryCoversAllKinds feeds the recorder one synthetic event of
// every registered kind: each must appear in the summary, so a kind added
// to the simulator cannot be silently skipped (the old implementation
// iterated a hard-coded first..last range).
func TestSummaryCoversAllKinds(t *testing.T) {
	r := New(100)
	for _, k := range sim.EventKinds() {
		r.record(sim.Event{Kind: k, Time: 1, Node: 0})
	}
	s := r.Summary()
	for _, k := range sim.EventKinds() {
		if !strings.Contains(s, k.String()+"=1") {
			t.Fatalf("summary %q misses kind %s", s, k)
		}
	}
}

// TestDroppedAccounting: a ring that overflows reports exactly how many
// events it lost, in Dropped, in the Summary line, and as a JSONL header —
// while a recorder that retained everything reports nothing extra (so
// complete traces stay byte-identical to the pre-accounting format).
func TestDroppedAccounting(t *testing.T) {
	r := New(5)
	runWith(r)
	want := r.Total() - 5
	if want <= 0 {
		t.Fatalf("run emitted only %d events; ring never overflowed", r.Total())
	}
	if got := r.Dropped(); got != want {
		t.Fatalf("Dropped() = %d, want %d", got, want)
	}
	if s := r.Summary(); !strings.Contains(s, "dropped=") {
		t.Fatalf("summary %q missing dropped count", s)
	}
	var b strings.Builder
	if err := r.DumpJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("dumped %d lines, want header + 5 events", len(lines))
	}
	var hdr JSONLHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header line %q: %v", lines[0], err)
	}
	if hdr.Dropped != want || hdr.Retained != 5 {
		t.Fatalf("header = %+v, want dropped=%d retained=5", hdr, want)
	}

	// A complete trace: no dropped marker anywhere.
	full := New(Unbounded)
	runWith(full)
	if full.Dropped() != 0 {
		t.Fatalf("unbounded recorder dropped %d", full.Dropped())
	}
	if s := full.Summary(); strings.Contains(s, "dropped=") {
		t.Fatalf("complete summary %q mentions dropped", s)
	}
	var fb strings.Builder
	if err := full.DumpJSONL(&fb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(fb.String(), `"retained"`) {
		t.Fatal("complete JSONL dump carries a header line")
	}
}

func TestNewPanicsOnNegativeCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1)
}
