// Package trace records simulator events for post-mortem inspection: a
// bounded ring buffer with kind filtering, plain-text rendering, JSON
// Lines dumping (the machine-readable format shared by `amacsim -trace`
// and `amacexplore -replay -trace`), and per-kind summaries. It plugs
// into sim.Config.Observer.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/absmac/absmac/internal/sim"
)

// Recorder captures simulator events. The zero value is unusable; create
// recorders with New.
type Recorder struct {
	cap     int
	events  []sim.Event
	start   int // ring start when full
	total   int
	dropped int // retained-kind events overwritten by the full ring
	counts  map[sim.EventKind]int
	keep    map[sim.EventKind]bool
}

// New returns a recorder retaining at most capacity events (older events
// fall off). A capacity of 0 means DefaultCapacity. With no kinds given,
// every kind is retained; otherwise only the listed kinds are.
func New(capacity int, kinds ...sim.EventKind) *Recorder {
	if capacity < 0 {
		panic(fmt.Sprintf("trace: negative capacity %d", capacity))
	}
	if capacity == 0 {
		capacity = DefaultCapacity
	}
	r := &Recorder{
		cap:    capacity,
		counts: make(map[sim.EventKind]int),
	}
	if len(kinds) > 0 {
		r.keep = make(map[sim.EventKind]bool, len(kinds))
		for _, k := range kinds {
			r.keep[k] = true
		}
	}
	return r
}

// DefaultCapacity bounds retained events when New is called with 0.
const DefaultCapacity = 4096

// Unbounded is a capacity for recorders that must retain every event of a
// run (full-trace dumps like `amacsim -trace`): memory grows with the
// execution, which is the point. The ring buffer allocates lazily, so an
// Unbounded recorder costs only what the run actually emits.
const Unbounded = math.MaxInt

// Observer returns the callback to install as sim.Config.Observer.
func (r *Recorder) Observer() func(sim.Event) { return r.record }

func (r *Recorder) record(ev sim.Event) {
	r.counts[ev.Kind]++
	r.total++
	if r.keep != nil && !r.keep[ev.Kind] {
		return
	}
	if len(r.events) < r.cap {
		r.events = append(r.events, ev)
		return
	}
	r.events[r.start] = ev
	r.start = (r.start + 1) % r.cap
	r.dropped++
}

// Total returns the number of events observed (including filtered ones).
func (r *Recorder) Total() int { return r.total }

// Dropped returns how many retained-kind events fell off the full ring —
// the gap between what the run emitted and what Events still holds.
// Always zero for Unbounded recorders. A non-zero count means the trace
// is a window, not the whole run; Summary and DumpJSONL both surface it
// so a truncated trace can never pass as complete.
func (r *Recorder) Dropped() int { return r.dropped }

// Count returns how many events of the given kind were observed.
func (r *Recorder) Count(k sim.EventKind) int { return r.counts[k] }

// Events returns the retained events in observation order. Event.Message
// references may point at buffers a pooling algorithm has since recycled
// (see sim.Config.Observer); inspect their dynamic type, not their
// contents — Format prints only %T for this reason.
func (r *Recorder) Events() []sim.Event {
	out := make([]sim.Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Format renders one event as a single line.
func Format(ev sim.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%-8d %-9s node=%-4d", ev.Time, ev.Kind, ev.Node)
	switch ev.Kind {
	case sim.EventDeliver:
		fmt.Fprintf(&b, " from=%-4d", ev.Peer)
	case sim.EventDecide:
		fmt.Fprintf(&b, " value=%d", ev.Value)
	}
	if ev.Message != nil && ev.Kind != sim.EventDecide && ev.Kind != sim.EventCrash {
		fmt.Fprintf(&b, " msg=%T", ev.Message)
	}
	return b.String()
}

// Dump writes the retained events to w, one line each.
func (r *Recorder) Dump(w io.Writer) error {
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintln(w, Format(ev)); err != nil {
			return fmt.Errorf("trace: dump: %w", err)
		}
	}
	return nil
}

// Summary renders the per-kind counts in kind order. It iterates
// sim.EventKinds, so kinds added to the simulator (replay divergence,
// say) appear here without this package changing.
func (r *Recorder) Summary() string {
	var b strings.Builder
	for _, k := range sim.EventKinds() {
		if c := r.counts[k]; c > 0 {
			fmt.Fprintf(&b, "%s=%d ", k, c)
		}
	}
	if r.dropped > 0 {
		fmt.Fprintf(&b, "dropped=%d ", r.dropped)
	}
	return strings.TrimSpace(b.String())
}

// JSONLEvent is the machine-readable rendering of one event: the schema of
// DumpJSONL lines, shared by `amacsim -trace` and `amacexplore`'s replay
// traces. Message contents are never serialized — pooling algorithms may
// have recycled the buffer by dump time (see Events) — only the dynamic
// type name.
type JSONLEvent struct {
	Time int64  `json:"t"`
	Kind string `json:"kind"`
	Node int    `json:"node"`
	// Peer and Value are pointers so that the valid zero values (node 0
	// as a delivery's sender, a decide of value 0) survive omitempty:
	// present exactly when the kind carries them.
	Peer  *int   `json:"peer,omitempty"`
	Value *int   `json:"value,omitempty"`
	Msg   string `json:"msg,omitempty"`
}

// ToJSONL converts an event to its JSONL form.
func ToJSONL(ev sim.Event) JSONLEvent {
	je := JSONLEvent{Time: ev.Time, Kind: ev.Kind.String(), Node: ev.Node}
	switch ev.Kind {
	case sim.EventDeliver:
		peer := ev.Peer
		je.Peer = &peer
	case sim.EventDecide:
		v := int(ev.Value)
		je.Value = &v
	}
	if ev.Message != nil && ev.Kind != sim.EventDecide && ev.Kind != sim.EventCrash {
		je.Msg = fmt.Sprintf("%T", ev.Message)
	}
	return je
}

// JSONLHeader is the optional first line of a DumpJSONL stream: emitted
// only when the ring dropped events, it tells a consumer the trace is a
// window. Complete traces carry no header, so their output is unchanged
// from before drop accounting existed.
type JSONLHeader struct {
	Dropped  int `json:"dropped"`
	Retained int `json:"retained"`
}

// DumpJSONL writes the retained events to w as JSON Lines, one JSONLEvent
// object per line — the machine-readable counterpart of Dump. When the
// ring dropped events, one JSONLHeader line precedes them.
func (r *Recorder) DumpJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	if r.dropped > 0 {
		if err := enc.Encode(JSONLHeader{Dropped: r.dropped, Retained: len(r.events)}); err != nil {
			return fmt.Errorf("trace: dump jsonl: %w", err)
		}
	}
	for _, ev := range r.Events() {
		if err := enc.Encode(ToJSONL(ev)); err != nil {
			return fmt.Errorf("trace: dump jsonl: %w", err)
		}
	}
	return nil
}
