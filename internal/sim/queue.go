package sim

import "math/bits"

// eventQueue is the engine's pending-event queue: a bounded-horizon
// calendar queue in front of a quaternary-heap overflow, over a dense
// value slab of events.
//
// The model makes the hot path O(1). validatePlan admits only plans whose
// deliveries and ack land in (Now, Now+Fack], so at any instant every
// queued event lives within one Fack window of the clock — the queue is a
// bounded-horizon scheduler, which is exactly the regime where a calendar
// (timing-wheel) structure beats a heap: a ring of per-time buckets
// spanning the window, push = append to a bucket FIFO, pop = advance the
// clock cursor to the next nonempty bucket (found by a bitmap scan, not a
// walk) and take its head. No sifting, no O(log q) — a 36k-event backlog
// on expander:4096 costs the same per operation as an empty queue.
//
// The pop order is byte-identical to the heap it replaced. The engine's
// event order is (time, deliveries before acks, insertion seq), seq is
// assigned monotonically, and a FIFO preserves insertion order — so one
// FIFO chain per (bucket, kind) reproduces the total order exactly: the
// cursor visits times in order, and within a time the deliver chain
// drains before the ack chain, each in seq order. Identity is pinned by
// the golden grid JSON, both committed replay artifacts, the schedule
// fingerprint tests, and the harness differential queue test, which runs
// calendar and reference-heap engines side by side.
//
// Two escape hatches keep the structure exact rather than approximate:
//
//   - Overflow heap. Wrapping schedulers may declare horizons wider than
//     the ring (Gate's Fack covers its Until delay; SlowSubset multiplies
//     its base bound). Events past the ring window go to a quaternary
//     min-heap of slab indices — the pre-calendar queue, verbatim — and
//     migrate into the ring as the cursor advances. Migration happens in
//     heap-pop order, which is the event order, and strictly before any
//     new push can target the newly exposed buckets (both happen inside
//     pop, before control returns to the engine), so chains stay sorted.
//   - Value slab. Events live in one []event indexed by int32, free slots
//     chained through the intrusive next link. Push recycles a slot or
//     appends (growing the slab amortizes to one allocation per doubling,
//     where the old pointer freelist paid one per event), pop returns the
//     event by value and frees the slot immediately — the engine never
//     holds a reference into the slab across algorithm callbacks, which
//     may push and grow it.
//
// Config.QueueWindow tunes the hybrid: 0 sizes the ring to the
// scheduler's declared Fack (capped at defaultQueueWindow), a positive
// value caps the ring lower (forcing overflow traffic — the differential
// tests use tiny windows to stress migration), and a negative value
// disables the ring so every event flows through the reference heap.
// Every setting yields the same execution; only the constants move.
type eventQueue struct {
	// slab is the dense event store; free heads the chain of recycled
	// slots threaded through event.next. count is the queue's size.
	slab  []event
	free  int32
	count int

	// The calendar ring: span buckets (a power of two, so time maps to a
	// bucket by mask) covering absolute times [cur, cur+span). cur is the
	// time of the last pop — no queued event is earlier. bits marks
	// nonempty buckets, one bit per bucket, so pop finds the next event
	// time with a word scan. ringN counts ring-resident events.
	span    int64
	mask    int64
	cur     int64
	buckets []bucket
	bits    []uint64
	ringN   int

	// heap is the overflow quaternary min-heap of slab indices, holding
	// only events at or past cur+span.
	heap []int32
}

// bucket holds two intrusive FIFO chains of slab indices: chain 0 for
// deliveries, chain 1 for acks, matching the model's deliveries-first
// order within a time step.
type bucket struct {
	head [2]int32
	tail [2]int32
}

// nilEvent is the slab's nil index (chain terminators, empty free list).
const nilEvent int32 = -1

// defaultQueueWindow caps the ring span when Config.QueueWindow is 0:
// 4096 buckets is 64KiB of bucket headers, enough to cover every
// registered scheduler's horizon short of Gate with a very late Until —
// and those far events belong in the overflow heap anyway.
const defaultQueueWindow = 1 << 12

// init re-arms the queue for a scheduler horizon of fack, honoring the
// Config.QueueWindow override. The queue must be empty (Reset drains it
// first); the slab and free chain persist untouched.
func (q *eventQueue) init(fack, window int64) {
	span := int64(0)
	if window >= 0 {
		limit := int64(defaultQueueWindow)
		if window > 0 {
			// Round a positive cap down to a power of two so bucket
			// lookup stays a mask.
			limit = 1
			for limit*2 <= window {
				limit *= 2
			}
		}
		// Smallest power of two covering (now, now+fack], capped: with
		// span > fack every admissible event fits the ring and the
		// overflow heap never engages.
		span = 1
		for span <= fack && span < limit {
			span <<= 1
		}
	}
	q.span = span
	q.mask = span - 1
	q.cur = 0
	q.ringN = 0
	q.heap = q.heap[:0]
	if span > 0 {
		words := int((span + 63) >> 6)
		if int64(cap(q.buckets)) >= span {
			q.buckets = q.buckets[:span]
			q.bits = q.bits[:words]
		} else {
			q.buckets = make([]bucket, span)
			q.bits = make([]uint64, words)
		}
		for i := range q.buckets {
			q.buckets[i] = bucket{
				head: [2]int32{nilEvent, nilEvent},
				tail: [2]int32{nilEvent, nilEvent},
			}
		}
		clear(q.bits)
	}
}

func (q *eventQueue) len() int { return q.count }

// push enqueues ev, reporting whether the slot came from the free chain
// (false means the slab grew — the engine's freelist-miss metric).
func (q *eventQueue) push(ev event) bool {
	idx := q.free
	reused := idx != nilEvent
	if reused {
		q.free = q.slab[idx].next
		q.slab[idx] = ev
	} else {
		q.slab = append(q.slab, ev)
		idx = int32(len(q.slab) - 1)
	}
	q.slab[idx].next = nilEvent
	if q.span > 0 && ev.time-q.cur < q.span {
		q.link(idx, ev.time, ev.kind)
	} else {
		q.heapPush(idx)
	}
	q.count++
	return reused
}

// pop removes and returns the minimum event by value, recycling its slab
// slot immediately (the message reference is cleared so pooled slots do
// not retain algorithm payloads). It panics on an empty queue (the
// engine's run loop checks len first).
func (q *eventQueue) pop() event {
	var idx int32
	switch {
	case q.ringN > 0:
		// The earliest ring event precedes every heap event: ring times
		// are below cur+span, heap times at or past it.
		t := q.nextBucketTime()
		q.advance(t)
		idx = q.unlinkMin(t)
	case q.span > 0 && len(q.heap) > 0:
		// Ring empty: jump the cursor to the heap minimum, which
		// migrates a window of far events in, then pop normally.
		t := q.slab[q.heap[0]].time
		q.advance(t)
		idx = q.unlinkMin(t)
	default:
		idx = q.heapPop()
	}
	ev := q.slab[idx]
	q.slab[idx].msg = nil
	q.slab[idx].next = q.free
	q.free = idx
	q.count--
	ev.next = nilEvent
	return ev
}

// drain empties the queue in one pass over the slab, rebuilding the free
// chain over every slot and dropping all message references — bucket and
// heap order are irrelevant to a recycling pass.
func (q *eventQueue) drain() {
	for i := range q.slab {
		q.slab[i].msg = nil
		q.slab[i].next = int32(i) - 1
	}
	q.free = int32(len(q.slab)) - 1
	q.count = 0
	q.ringN = 0
	q.heap = q.heap[:0]
	// Ring chains and bits are rebuilt by init, which Reset calls next.
}

// link appends slab index idx to the FIFO chain for (time t, kind) and
// marks the bucket nonempty.
func (q *eventQueue) link(idx int32, t int64, kind EventKind) {
	bi := t & q.mask
	b := &q.buckets[bi]
	k := 0
	if kind != EventDeliver {
		k = 1
	}
	if tail := b.tail[k]; tail != nilEvent {
		q.slab[tail].next = idx
	} else {
		b.head[k] = idx
	}
	b.tail[k] = idx
	q.bits[bi>>6] |= 1 << uint(bi&63)
	q.ringN++
}

// unlinkMin removes and returns the head of bucket t's deliver chain, or
// its ack chain when no deliveries remain — the model's within-time order.
func (q *eventQueue) unlinkMin(t int64) int32 {
	bi := t & q.mask
	b := &q.buckets[bi]
	k := 0
	if b.head[0] == nilEvent {
		k = 1
	}
	idx := b.head[k]
	b.head[k] = q.slab[idx].next
	if b.head[k] == nilEvent {
		b.tail[k] = nilEvent
		if b.head[1-k] == nilEvent {
			q.bits[bi>>6] &^= 1 << uint(bi&63)
		}
	}
	q.ringN--
	return idx
}

// advance moves the cursor to t (the time about to be popped) and
// migrates every heap event that the widened window [t, t+span) now
// covers into the ring. Heap pops come out in full event order, so each
// (bucket, kind) chain receives its migrants in seq order; and because
// migration completes inside pop, no direct push can reach a newly
// exposed bucket first — chains never interleave out of order.
func (q *eventQueue) advance(t int64) {
	q.cur = t
	if len(q.heap) == 0 {
		return
	}
	horizon := t + q.span
	for len(q.heap) > 0 && q.slab[q.heap[0]].time < horizon {
		idx := q.heapPop()
		ev := &q.slab[idx]
		ev.next = nilEvent
		q.link(idx, ev.time, ev.kind)
	}
}

// nextBucketTime returns the absolute time of the earliest nonempty
// bucket at or after cur — a circular bitmap scan from the cursor's
// bucket, one word compare per 64 buckets. Must only be called with
// ringN > 0.
func (q *eventQueue) nextBucketTime() int64 {
	start := q.cur & q.mask
	wi := int(start >> 6)
	if w := q.bits[wi] & (^uint64(0) << uint(start&63)); w != 0 {
		b := int64(wi<<6) + int64(bits.TrailingZeros64(w))
		return q.cur + ((b - start) & q.mask)
	}
	words := len(q.bits)
	for i := 1; i <= words; i++ {
		j := wi + i
		if j >= words {
			j -= words
		}
		if w := q.bits[j]; w != 0 {
			b := int64(j<<6) + int64(bits.TrailingZeros64(w))
			return q.cur + ((b - start) & q.mask)
		}
	}
	panic("sim: event ring bitmap empty with ringN > 0")
}

// --- overflow heap: the pre-calendar quaternary min-heap, on slab indices ---

// less is the model's event order: time, then deliveries before acks (the
// paper's synchronous scheduler delivers every co-timed message before any
// co-timed ack), then deterministically by insertion sequence.
func (q *eventQueue) less(a, b int32) bool {
	ea, eb := &q.slab[a], &q.slab[b]
	if ea.time != eb.time {
		return ea.time < eb.time
	}
	if ea.kind != eb.kind {
		return ea.kind == EventDeliver
	}
	return ea.seq < eb.seq
}

func (q *eventQueue) heapPush(idx int32) {
	q.heap = append(q.heap, idx)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(q.heap[i], q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *eventQueue) heapPop() int32 {
	top := q.heap[0]
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap = q.heap[:n]
	if n > 0 {
		q.siftDown(0)
	}
	return top
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.heap)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(q.heap[c], q.heap[min]) {
				min = c
			}
		}
		if !q.less(q.heap[min], q.heap[i]) {
			return
		}
		q.heap[i], q.heap[min] = q.heap[min], q.heap[i]
		i = min
	}
}
