package sim

// eventQueue is the engine's pending-event queue: a concrete quaternary
// (4-ary) min-heap of *event ordered by the model's event order — time,
// then deliveries before acks, then insertion sequence (see less). It
// replaces container/heap, whose interface methods cost a dynamic dispatch
// plus an allocation per Push/Pop on the hottest engine path.
//
// The model bounds how far ahead the queue can see: every plan the engine
// admits delivers in the window (now, now+Fack], so the queue never holds
// more than the events of the broadcasts in flight across one Fack window.
// That bounded horizon keeps the heap shallow — with arity 4 a
// 10k-event backlog is seven levels deep — and the wide nodes make
// sift-down touch a quarter of the levels a binary heap would, on entries
// that sit in at most two cache lines.
//
// The comparator is a strict total order (seq is unique), so the pop
// sequence is independent of the heap's internal layout: swapping the
// binary heap for this one cannot reorder an execution, and sweeps remain
// byte-identical.
type eventQueue struct {
	evs []*event
}

// less is the model's event order: time, then deliveries before acks (the
// paper's synchronous scheduler delivers every co-timed message before any
// co-timed ack), then deterministically by insertion sequence.
func (q *eventQueue) less(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.kind != b.kind {
		return a.kind == EventDeliver
	}
	return a.seq < b.seq
}

func (q *eventQueue) len() int { return len(q.evs) }

// push inserts ev, sifting it up from the tail.
func (q *eventQueue) push(ev *event) {
	q.evs = append(q.evs, ev)
	i := len(q.evs) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(q.evs[i], q.evs[parent]) {
			break
		}
		q.evs[i], q.evs[parent] = q.evs[parent], q.evs[i]
		i = parent
	}
}

// pop removes and returns the minimum event. It panics on an empty queue
// (the engine's run loop checks len first).
func (q *eventQueue) pop() *event {
	top := q.evs[0]
	n := len(q.evs) - 1
	q.evs[0] = q.evs[n]
	q.evs[n] = nil
	q.evs = q.evs[:n]
	if n > 0 {
		q.siftDown(0)
	}
	return top
}

// drain empties the queue in O(len), calling release on each event —
// heap order is irrelevant to a recycling pass, so no sifting.
func (q *eventQueue) drain(release func(*event)) {
	for i, ev := range q.evs {
		release(ev)
		q.evs[i] = nil
	}
	q.evs = q.evs[:0]
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.evs)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(q.evs[c], q.evs[min]) {
				min = c
			}
		}
		if !q.less(q.evs[min], q.evs[i]) {
			return
		}
		q.evs[i], q.evs[min] = q.evs[min], q.evs[i]
		i = min
	}
}
