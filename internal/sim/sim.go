// Package sim implements a deterministic discrete-event simulator for the
// abstract MAC layer model of Newport (PODC 2014).
//
// All nondeterminism in the model lives in the message scheduler, so the
// simulator delegates every timing decision to a pluggable Scheduler: at
// each broadcast the scheduler fills a delivery plan (a receive time per
// neighbor plus an acknowledgment time) into an engine-owned reusable
// buffer, and the engine executes plans on a bounded-horizon calendar
// queue of slab-pooled events (see eventQueue) — push and pop are O(1) on
// the hot path, and the steady-state broadcast path allocates nothing and
// dispatches no interface methods. Engines are
// reusable: NewEngine/Reset re-arm one engine for configuration after
// configuration, keeping node state, Result slices, the plan buffer and
// the event freelist, which is how sweep workers amortize per-run setup
// across the seeds of a cell.
// The engine validates every plan against the
// model contract — deliveries strictly after the broadcast, the ack no
// earlier than any delivery, everything within the scheduler's declared
// Fack — so a buggy scheduler fails loudly instead of silently producing an
// execution outside the model.
//
// Crash failures (used by the Theorem 3.2 experiments) are expressed as a
// per-node cutoff time: events affecting a node after its crash time are
// dropped, which yields exactly the paper's mid-broadcast crash semantics
// (some neighbors received the in-flight message, the rest never will, and
// the ack is lost).
package sim

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/metrics"
)

// Broadcast describes one broadcast for which a Scheduler must produce a
// Plan.
type Broadcast struct {
	// Sender is the broadcasting node's index in the topology graph.
	Sender int
	// Seq is the per-sender broadcast sequence number, starting at 0.
	Seq int
	// Neighbors lists the sender's reliable neighbors (crashed or not;
	// crash cutoffs are applied by the engine, not the scheduler).
	Neighbors []int
	// Unreliable lists the sender's unreliable neighbors (present only
	// when Config.Unreliable is set — the dual-graph model variant of
	// Kuhn, Lynch and Newport that the paper's Section 2 mentions).
	// The scheduler may deliver to any subset of them.
	Unreliable []int
	// Now is the virtual time at which the broadcast was issued.
	Now int64
	// Message is the message being sent (schedulers may inspect it, but
	// the model's schedulers are content-oblivious).
	Message amac.Message
}

// NoDelivery marks a plan slot whose recipient is skipped. Only unreliable
// recipients may be skipped; a reliable slot left at NoDelivery is a
// scheduler contract violation.
const NoDelivery int64 = -1

// Plan gives the absolute virtual times at which each recipient receives
// the message and at which the sender is acked. Recv is positional: slot i
// belongs to Broadcast.Neighbors[i] when i < len(Neighbors) and to
// Broadcast.Unreliable[i-len(Neighbors)] otherwise. A valid plan satisfies
// Now < Recv[i] <= Ack <= Now+Fack for every reliable slot; unreliable
// slots may instead hold NoDelivery (the scheduler declines that edge).
//
// The engine owns the Recv buffer and reuses it across broadcasts — it
// arrives pre-sized to the recipient count with every slot set to
// NoDelivery, so the broadcast hot path performs no per-plan allocation.
// Schedulers must fill slots in place and must not grow, shrink or retain
// the slice.
type Plan struct {
	Recv []int64
	Ack  int64
}

// Scheduler is the model's message scheduler. Implementations must be
// deterministic given their construction parameters (seeded randomness is
// fine) so executions are reproducible.
type Scheduler interface {
	// Fack returns the scheduler's delivery bound. The engine enforces
	// it; algorithms never see it.
	Fack() int64
	// Plan fills p with the delivery plan for one broadcast. See Plan
	// for the buffer contract. Wrapping schedulers (Gate, SlowSubset,
	// Lossy) delegate to their base and then mutate p in place.
	Plan(b Broadcast, p *Plan)
}

// Crash schedules a crash failure: node Node halts at time At. Deliveries
// to and from the node planned after At never happen, and any in-flight
// broadcast loses its ack. Crashes serialize inside Schedule artifacts,
// hence the JSON tags.
type Crash struct {
	Node int   `json:"node"`
	At   int64 `json:"at"`
}

// Config describes one execution.
type Config struct {
	// Graph is the topology. Required.
	Graph *graph.Graph
	// Inputs holds each node's consensus initial value, indexed by node.
	// Required, length Graph.N().
	Inputs []amac.Value
	// Factory builds each node's algorithm. Required.
	Factory amac.Factory
	// Scheduler controls message timing. Required.
	Scheduler Scheduler
	// IDs optionally assigns node ids (defaults to index+1). Must be
	// unique when present.
	IDs []amac.NodeID
	// Unreliable optionally adds a second topology graph of unreliable
	// links (the dual-graph abstract MAC layer variant): a broadcast is
	// guaranteed to reach Graph-neighbors but only *may* reach
	// Unreliable-neighbors, at the scheduler's whim. It must have the
	// same node count as Graph and be edge-disjoint from it.
	Unreliable *graph.Graph
	// Crashes optionally schedules crash failures.
	Crashes []Crash
	// MaxEvents caps processed events to guard against non-quiescent
	// executions; 0 means DefaultMaxEvents.
	MaxEvents int
	// StopWhenDecided stops the run as soon as every non-crashed node
	// has decided (the default harness behaviour). When false the run
	// continues to quiescence, which exercises post-decision behaviour.
	StopWhenDecided bool
	// Audit enables the per-message id-count audit.
	Audit bool
	// Observer, when non-nil, receives every engine event in execution
	// order (for tracing). Event.Message is only guaranteed valid for the
	// duration of the callback: pooling algorithms (e.g. floodpaxos's
	// NewFactory nodes) recycle their broadcast buffers once acked, so an
	// observer that retains events must extract what it needs rather than
	// hold the Message reference (trace.Recorder formats only the type).
	Observer func(Event)
	// QueueWindow tunes the engine's calendar event queue (see queue.go):
	// 0 sizes the bucket ring to the scheduler's declared Fack (capped at
	// a default), a positive value caps the ring's time span lower — more
	// events take the overflow heap — and a negative value disables the
	// ring entirely, so every event flows through the reference quaternary
	// heap. Every setting produces byte-identical executions (pinned by
	// the harness differential queue test); this is a performance and
	// test knob, never a semantic one.
	QueueWindow int64
	// Metrics, when non-nil, receives the engine's hot-path counters
	// (events processed, deliveries, crash drops, freelist hit rate,
	// queue-depth high-water) and is handed to every node's factory via
	// amac.NodeConfig so algorithms register their own slots against the
	// same registry. Reset zeroes the registry's values (registrations
	// persist, so a reused engine pays O(registered slots) per run).
	// When nil, every handle is disabled and the run path is unchanged —
	// the zero-cost-when-off contract pinned by BenchmarkBroadcastPlan.
	Metrics *metrics.Registry
}

// DefaultMaxEvents bounds event processing when Config.MaxEvents is zero.
const DefaultMaxEvents = 20_000_000

// Validate checks the configuration without running it: required fields,
// input/id lengths, id uniqueness, scheduler Fack positivity, crash ranges
// and the unreliable-graph contract. Run panics on exactly the errors
// Validate reports, so callers that assemble configurations from external
// input (flags, sweep grids) can surface them as errors instead.
func (cfg *Config) Validate() error {
	if cfg.Graph == nil {
		return fmt.Errorf("sim: Config.Graph is nil")
	}
	n := cfg.Graph.N()
	if len(cfg.Inputs) != n {
		return fmt.Errorf("sim: %d inputs for %d nodes", len(cfg.Inputs), n)
	}
	if cfg.Factory == nil {
		return fmt.Errorf("sim: Config.Factory is nil")
	}
	if cfg.Scheduler == nil {
		return fmt.Errorf("sim: Config.Scheduler is nil")
	}
	if cfg.Scheduler.Fack() <= 0 {
		return fmt.Errorf("sim: scheduler declares Fack=%d, need > 0", cfg.Scheduler.Fack())
	}
	if cfg.IDs != nil {
		if len(cfg.IDs) != n {
			return fmt.Errorf("sim: %d ids for %d nodes", len(cfg.IDs), n)
		}
		seen := make(map[amac.NodeID]bool, n)
		for _, id := range cfg.IDs {
			if seen[id] {
				return fmt.Errorf("sim: duplicate node id %d", id)
			}
			seen[id] = true
		}
	}
	if cfg.Unreliable != nil {
		if cfg.Unreliable.N() != n {
			return fmt.Errorf("sim: unreliable graph has %d nodes, topology has %d", cfg.Unreliable.N(), n)
		}
		for u := 0; u < n; u++ {
			for _, v := range cfg.Unreliable.Neighbors(u) {
				if cfg.Graph.HasEdge(u, v) {
					return fmt.Errorf("sim: edge {%d,%d} is both reliable and unreliable", u, v)
				}
			}
		}
	}
	for _, c := range cfg.Crashes {
		if c.Node < 0 || c.Node >= n {
			return fmt.Errorf("sim: crash of node %d out of range", c.Node)
		}
		if c.At < 0 {
			return fmt.Errorf("sim: crash at negative time %d", c.At)
		}
	}
	return nil
}

// EventKind enumerates observable engine events.
type EventKind int

// Event kinds.
const (
	EventBroadcast EventKind = iota + 1
	EventDeliver
	EventAck
	EventDecide
	EventCrash
	EventDiscard // broadcast attempted while one was in flight
	EventDiverge // a replayed execution left its recorded schedule

	// numEventKinds is the sentinel bounding the enum: new kinds go above
	// it, and EventKinds derives its slice from it, so the list of kinds
	// cannot drift from the const block.
	numEventKinds
)

func (k EventKind) String() string {
	switch k {
	case EventBroadcast:
		return "broadcast"
	case EventDeliver:
		return "deliver"
	case EventAck:
		return "ack"
	case EventDecide:
		return "decide"
	case EventCrash:
		return "crash"
	case EventDiscard:
		return "discard"
	case EventDiverge:
		return "diverge"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// EventKinds returns every event kind, in declaration order. Consumers
// that iterate kinds (trace summaries, filters) should range over this
// slice rather than hard-code the first/last kind, so a newly added kind
// cannot be silently skipped. The slice is derived from the const block's
// sentinel, not hand-maintained.
func EventKinds() []EventKind {
	ks := make([]EventKind, 0, numEventKinds-1)
	for k := EventBroadcast; k < numEventKinds; k++ {
		ks = append(ks, k)
	}
	return ks
}

// Event is one observable occurrence in an execution.
type Event struct {
	Kind EventKind
	Time int64
	// Node is the acting node (sender, receiver, decider, crasher).
	Node int
	// Peer is the counterparty when meaningful (sender for deliveries).
	Peer int
	// Message is the message involved, when meaningful.
	Message amac.Message
	// Value is the decision value for EventDecide.
	Value amac.Value
}

// Violation records a detected breach of the problem or model contract.
type Violation struct {
	Time int64
	Node int
	Desc string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%d node=%d: %s", v.Time, v.Node, v.Desc)
}

// Result summarizes an execution.
type Result struct {
	// Decided[i] reports whether node i decided; Decision[i] and
	// DecideTime[i] are meaningful only when it did.
	Decided    []bool
	Decision   []amac.Value
	DecideTime []int64
	// Crashed[i] reports whether node i crashed.
	Crashed []bool
	// Time is the virtual time of the last processed event.
	Time int64
	// MaxDecideTime is the latest decision time among deciders (the
	// experiment's "decision time"), or -1 when nobody decided.
	MaxDecideTime int64
	// Broadcasts, Deliveries, Acks and Discards count MAC-layer events.
	Broadcasts, Deliveries, Acks, Discards int
	// Events counts processed heap events.
	Events int
	// Quiescent reports that the event heap drained.
	Quiescent bool
	// Cutoff reports that MaxEvents was reached.
	Cutoff bool
	// Violations lists contract breaches (double decide, audit failures).
	Violations []Violation
}

// AllDecided reports whether every non-crashed node decided.
func (r *Result) AllDecided() bool {
	for i, d := range r.Decided {
		if !d && !r.Crashed[i] {
			return false
		}
	}
	return true
}

// DecidedValues returns the set of distinct decided values.
func (r *Result) DecidedValues() []amac.Value {
	seen := map[amac.Value]bool{}
	var vals []amac.Value
	for i, d := range r.Decided {
		if d && !seen[r.Decision[i]] {
			seen[r.Decision[i]] = true
			vals = append(vals, r.Decision[i])
		}
	}
	return vals
}

// event is a queue entry. seq breaks time ties deterministically in
// insertion order (see eventQueue in queue.go for the full order). Events
// live in the queue's value slab; next is the intrusive link threading
// both the per-bucket FIFO chains and the free chain.
type event struct {
	time int64
	seq  int64
	kind EventKind
	node int // acted-on node (receiver for deliver, sender for ack)
	peer int // sender for deliver
	bseq int // sender's broadcast sequence the event belongs to
	msg  amac.Message
	next int32 // slab index of the chain successor (nilEvent terminates)
}

// Run executes the configuration to completion and returns the result. It
// panics on configuration errors (nil fields, length mismatches, duplicate
// ids) and on scheduler contract violations; algorithm/problem violations
// are recorded in the result instead. Callers running many configurations
// back to back can instead reuse one Engine via NewEngine/Reset, which
// keeps the engine's buffers across runs.
func Run(cfg Config) *Result {
	return NewEngine(cfg).Run()
}
