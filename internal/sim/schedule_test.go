package sim

import (
	"encoding/json"
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/baseline/floodpaxos"
	"github.com/absmac/absmac/internal/graph"
)

// recordRing records a small dual-graph floodpaxos run and returns its
// schedule plus the config pieces a replay needs.
func recordRing(t *testing.T, seed int64) (*Schedule, Config) {
	t.Helper()
	g := graph.Ring(6)
	o := graph.New(6)
	for u := 0; u < 3; u++ {
		o.AddEdge(u, u+3)
	}
	o.Sort()
	inputs := []amac.Value{0, 1, 0, 1, 0, 1}
	base := NewLossy(NewRandom(4, seed), 0.5, seed+100)
	rec := RecordSchedule(base)
	rec.S.DeliverP = 0.5
	rec.S.FallbackSeed = seed + 7
	rec.S.Crashes = []Crash{{Node: 5, At: 3}}
	cfg := Config{
		Graph:           g,
		Unreliable:      o,
		Inputs:          inputs,
		Factory:         floodpaxos.NewFactory(6),
		Scheduler:       rec,
		Crashes:         rec.S.Crashes,
		StopWhenDecided: true,
	}
	Run(cfg)
	if len(rec.S.Steps) == 0 {
		t.Fatal("recorded no steps")
	}
	return rec.S, cfg
}

func replayCfg(cfg Config, s *Schedule) (Config, *Replay) {
	rp := NewReplay(s)
	cfg.Factory = floodpaxos.NewFactory(cfg.Graph.N())
	cfg.Scheduler = rp
	cfg.Crashes = s.Crashes
	return cfg, rp
}

func TestReplayByteIdentical(t *testing.T) {
	s, cfg := recordRing(t, 11)
	want := Run(Config{
		Graph: cfg.Graph, Unreliable: cfg.Unreliable, Inputs: cfg.Inputs,
		Factory: floodpaxos.NewFactory(6), Scheduler: NewLossy(NewRandom(4, 11), 0.5, 111),
		Crashes: s.Crashes, StopWhenDecided: true,
	})
	rcfg, rp := replayCfg(cfg, s)
	rp.Strict = true // identity means never touching the fallback
	got := Run(rcfg)
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatalf("replay differs:\n got %s\nwant %s", gb, wb)
	}
	if rp.Diverged() {
		t.Fatal("identity replay diverged")
	}
}

func TestReplayDivergesOnPerturbationAndEmitsEvent(t *testing.T) {
	s, cfg := recordRing(t, 12)
	mutated := s.Clone()
	// Move step 0's ack by one tick (inside the Fack window, still no
	// earlier than any delivery): the sender's OnAck now fires at a
	// different time, so its next broadcast cannot match the recording —
	// divergence is certain, not timing luck.
	st := &mutated.Steps[0]
	if st.Ack < st.Now+mutated.Fack {
		st.Ack++
	} else {
		latest := int64(0)
		for _, r := range st.Recv {
			if r != NoDelivery && r > latest {
				latest = r
			}
		}
		if st.Ack-1 < latest {
			t.Fatal("cannot move step 0's ack; pick another recording seed")
		}
		st.Ack--
	}
	var divergeEvents int
	rcfg, rp := replayCfg(cfg, mutated)
	rp.Observer = func(ev Event) {
		if ev.Kind == EventDiverge {
			divergeEvents++
		}
	}
	res := Run(rcfg)
	if !rp.Diverged() {
		t.Fatal("moved ack did not diverge the replay")
	}
	if rp.DivergedAt() < 0 || rp.DivergedAt() > len(mutated.Steps) {
		t.Fatalf("divergence index %d out of range", rp.DivergedAt())
	}
	if divergeEvents != 1 {
		t.Fatalf("observer saw %d diverge events, want exactly 1", divergeEvents)
	}
	if !res.Quiescent && !res.Cutoff && !res.AllDecided() {
		t.Fatal("perturbed replay neither terminated nor hit the cap")
	}
}

func TestReplayTruncatedScheduleUsesFallbackDeterministically(t *testing.T) {
	s, cfg := recordRing(t, 13)
	short := s.Clone()
	if !short.Truncate(len(short.Steps) / 2) {
		t.Fatal("truncate refused")
	}
	run := func() string {
		rcfg, rp := replayCfg(cfg, short.Clone())
		res := Run(rcfg)
		if !rp.Diverged() {
			t.Fatal("truncated replay should run past the recorded horizon")
		}
		b, _ := json.Marshal(res)
		return string(b)
	}
	if run() != run() {
		t.Fatal("fallback continuation is nondeterministic")
	}
}

func TestReplayStrictPanicsOnDivergence(t *testing.T) {
	s, cfg := recordRing(t, 14)
	mutated := s.Clone()
	// Corrupt the first step's identity so the very first broadcast
	// diverges regardless of timing luck.
	mutated.Steps[0].Seq++
	rcfg, rp := replayCfg(cfg, mutated)
	rp.Strict = true
	defer func() {
		if recover() == nil {
			t.Fatal("expected strict replay to panic on divergence")
		}
	}()
	Run(rcfg)
}

func TestSchedulePerturbationOps(t *testing.T) {
	s := &Schedule{
		Fack: 4,
		Steps: []ScheduleStep{
			{Sender: 0, Seq: 0, Now: 0, NR: 2, Recv: []int64{1, 3, NoDelivery}, Ack: 3},
			{Sender: 1, Seq: 0, Now: 1, NR: 1, Recv: []int64{2, 4}, Ack: 5},
		},
		Crashes: []Crash{{Node: 2, At: 7}},
	}
	h0 := s.Hash()

	c := s.Clone()
	if !c.SwapRecv(0, 0, 1) {
		t.Fatal("swap of two delivered slots refused")
	}
	if c.Steps[0].Recv[0] != 3 || c.Steps[0].Recv[1] != 1 {
		t.Fatalf("swap result %v", c.Steps[0].Recv)
	}
	if c.Hash() == h0 {
		t.Fatal("swap did not change the hash")
	}
	if s.Steps[0].Recv[0] != 1 {
		t.Fatal("Clone is not deep: mutation reached the original")
	}
	if s.Hash() != h0 {
		t.Fatal("original hash changed")
	}

	// A swap that would leave a reliable slot undelivered must refuse.
	if s.Clone().SwapRecv(0, 0, 2) {
		t.Fatal("swap moved NoDelivery into a reliable slot")
	}
	// Swapping equal times is a no-op and must refuse (hash-dedup safety).
	eq := s.Clone()
	eq.Steps[1].Recv[1] = 2
	if eq.SwapRecv(1, 0, 1) {
		t.Fatal("swap of equal times accepted")
	}

	c = s.Clone()
	if !c.FlipCoin(0, 2) {
		t.Fatal("flip of undelivered unreliable slot refused")
	}
	if c.Steps[0].Recv[2] != c.Steps[0].Ack {
		t.Fatalf("flipped-on slot delivers at %d, want ack %d", c.Steps[0].Recv[2], c.Steps[0].Ack)
	}
	if !c.FlipCoin(0, 2) || c.Steps[0].Recv[2] != NoDelivery {
		t.Fatal("flip is not an involution")
	}
	if s.Clone().FlipCoin(0, 0) {
		t.Fatal("flip of a reliable slot accepted")
	}

	c = s.Clone()
	if !c.JitterStep(0, 42) {
		t.Fatal("jitter refused")
	}
	st := c.Steps[0]
	if st.Recv[2] != NoDelivery {
		t.Fatal("jitter delivered an undelivered slot")
	}
	for i := 0; i < st.NR; i++ {
		if st.Recv[i] <= st.Now || st.Recv[i] > st.Ack || st.Ack > st.Now+c.Fack {
			t.Fatalf("jitter produced invalid times: %+v", st)
		}
	}
	d := s.Clone()
	d.JitterStep(0, 42)
	if d.Hash() != c.Hash() {
		t.Fatal("jitter with equal seeds disagrees")
	}

	c = s.Clone()
	if !c.ShiftCrash(0, 2) || c.Crashes[0].At != 2 {
		t.Fatal("shift crash")
	}
	if c.ShiftCrash(0, 2) {
		t.Fatal("no-op crash shift accepted")
	}
	if !c.DropCrash(0) || len(c.Crashes) != 0 {
		t.Fatal("drop crash")
	}
	if c.DropCrash(0) {
		t.Fatal("drop on empty crashes accepted")
	}

	c = s.Clone()
	if !c.Truncate(1) || len(c.Steps) != 1 {
		t.Fatal("truncate")
	}
	if c.Truncate(1) {
		t.Fatal("truncate to current length accepted")
	}
}

func TestScheduleValidate(t *testing.T) {
	good := &Schedule{Fack: 4, Steps: []ScheduleStep{{NR: 1, Recv: []int64{1}, Ack: 1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*Schedule{
		{Fack: 0},
		{Fack: 4, DeliverP: 1.5},
		{Fack: 4, Crashes: []Crash{{Node: 0, At: -1}}},
		{Fack: 4, Steps: []ScheduleStep{{NR: 3, Recv: []int64{1}, Ack: 1}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", bad)
		}
	}
}

func TestEventKindsCoversAllKinds(t *testing.T) {
	kinds := EventKinds()
	seen := map[EventKind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate kind %v", k)
		}
		seen[k] = true
		if k.String() == "" || len(k.String()) > 20 {
			t.Fatalf("kind %d has suspicious name %q", int(k), k.String())
		}
	}
	// Exhaustiveness: one past the last listed kind must be unnamed. This
	// fails when someone adds a kind without extending EventKinds.
	last := kinds[len(kinds)-1]
	if next := last + 1; next.String() == "" || next.String()[0] != 'E' {
		t.Fatalf("kind %d after the last registered one renders as %q — EventKinds out of date?", int(next), next.String())
	}
}
