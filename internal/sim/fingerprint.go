package sim

// This file implements schedule-coverage fingerprints: a streaming FNV-1a
// digest of exactly the decisions a Schedule records — the scheduler's
// declared Fack, the crash schedule, and every broadcast's finished
// delivery plan (unreliable-edge coin outcomes included) in broadcast
// order. Two runs with equal fingerprints followed the same execution
// prescription; a sweep cell's number of distinct fingerprints is
// therefore how many distinct delivery orderings its seeds actually
// exercised, which is what the campaign layer reports as coverage and uses
// to stop a saturated cell early.
//
// The digest is computable two ways and the two agree by construction:
//
//   - Fingerprinter wraps a live scheduler and folds each plan as it is
//     produced — no schedule is materialized, so fingerprinting a sweep
//     run costs one small fixed-size struct instead of a recording;
//   - Schedule.Fingerprint folds an already-recorded schedule.
//
// TestFingerprintMatchesRecording pins the equality. Like recording,
// fingerprinting is an opt-in wrapper: sweeps that do not ask for coverage
// never construct one, so the hot path is untouched.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvWord folds one 64-bit word into an FNV-1a state, little-endian —
// byte-compatible with writing the word to hash/fnv's New64a, without the
// hash.Hash allocation.
func fnvWord(h uint64, v int64) uint64 {
	x := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

// Fingerprinter wraps a scheduler and folds every plan it produces into a
// running coverage digest. Install it as the outermost wrapper (outside
// Lossy, so the coin outcomes are folded exactly as a recording would
// capture them). The zero value is unusable; construct with
// NewFingerprinter, which folds the configuration-owned decisions (Fack,
// crash schedule) the wrapper cannot see flow by.
type Fingerprinter struct {
	Base  Scheduler
	h     uint64
	steps int64
}

// NewFingerprinter wraps base, seeding the digest with base's Fack and the
// execution's crash schedule (configuration, not scheduler decisions —
// exactly the fields the caller would copy into a Schedule).
func NewFingerprinter(base Scheduler, crashes []Crash) *Fingerprinter {
	if base == nil {
		panic("sim: NewFingerprinter needs a base scheduler")
	}
	h := uint64(fnvOffset64)
	h = fnvWord(h, base.Fack())
	h = fnvWord(h, int64(len(crashes)))
	for _, c := range crashes {
		h = fnvWord(h, int64(c.Node))
		h = fnvWord(h, c.At)
	}
	return &Fingerprinter{Base: base, h: h}
}

// Fack implements Scheduler.
func (f *Fingerprinter) Fack() int64 { return f.Base.Fack() }

// Plan implements Scheduler: delegate, then fold the finished plan.
func (f *Fingerprinter) Plan(b Broadcast, p *Plan) {
	f.Base.Plan(b, p)
	h := f.h
	h = fnvWord(h, int64(b.Sender))
	h = fnvWord(h, int64(b.Seq))
	h = fnvWord(h, b.Now)
	h = fnvWord(h, int64(len(b.Neighbors)))
	for _, t := range p.Recv {
		h = fnvWord(h, t)
	}
	h = fnvWord(h, p.Ack)
	f.h = h
	f.steps++
}

// Sum returns the coverage digest of the plans folded so far (the step
// count is folded last, so Sum is callable repeatedly and mid-run).
func (f *Fingerprinter) Sum() uint64 { return fnvWord(f.h, f.steps) }

// SaltFingerprint folds an extra word into a finished coverage digest.
// The digest sees only scheduler-visible decisions; an execution that
// depends on its seed through other channels (a coin-flipping algorithm,
// a seed-built topology) must be distinguished per seed or coverage
// saturation would conflate genuinely different executions. The harness
// knows which scenarios those are and salts with the scenario seed.
func SaltFingerprint(fp uint64, salt int64) uint64 { return fnvWord(fp, salt) }

// Fingerprint returns the schedule's coverage digest — equal to the Sum of
// a Fingerprinter that watched the execution this schedule records. It
// differs from Hash only in word order (Hash length-prefixes the steps,
// which a streaming digest cannot); both identify a schedule uniquely for
// dedup purposes.
func (s *Schedule) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	h = fnvWord(h, s.Fack)
	h = fnvWord(h, int64(len(s.Crashes)))
	for _, c := range s.Crashes {
		h = fnvWord(h, int64(c.Node))
		h = fnvWord(h, c.At)
	}
	for i := range s.Steps {
		st := &s.Steps[i]
		h = fnvWord(h, int64(st.Sender))
		h = fnvWord(h, int64(st.Seq))
		h = fnvWord(h, st.Now)
		h = fnvWord(h, int64(st.NR))
		for _, t := range st.Recv {
			h = fnvWord(h, t)
		}
		h = fnvWord(h, st.Ack)
	}
	return fnvWord(h, int64(len(s.Steps)))
}

var _ Scheduler = (*Fingerprinter)(nil)
