package sim

import (
	"fmt"
	"math/rand"
)

// Replay is a Scheduler that re-executes a recorded Schedule. As long as
// the execution asks for exactly the broadcasts the recording answered —
// same sender, sequence number, issue time and recipient shape — Replay
// hands back the recorded plans verbatim, which reproduces the original
// execution byte for byte (record→replay identity is pinned by
// harness tests).
//
// When the execution diverges from the recording — because a perturbation
// changed an earlier decision, a crash was moved, or the schedule was
// truncated — Replay switches permanently to a seeded fallback planner
// (uniform delivery times within Fack, unreliable-edge coins at
// Schedule.DeliverP, mirroring Random+Lossy) so the perturbed execution
// continues deterministically inside the model instead of dying on a stale
// absolute time. The first divergence is observable: DivergedAt reports
// the step index, and an optional Observer receives an EventDiverge.
//
// Replay carries run state (a cursor and the fallback rng): build a fresh
// one per execution with NewReplay.
type Replay struct {
	s *Schedule
	// Strict turns the first divergence into a panic instead of a
	// fallback — for pinned artifacts that must replay exactly.
	Strict bool
	// Observer, when non-nil, receives an EventDiverge at the first
	// divergence (wire it to the same trace recorder as Config.Observer to
	// see divergences inline with engine events).
	Observer func(Event)

	cursor     int
	diverged   bool
	divergedAt int
	rng        *rand.Rand
}

// NewReplay returns a replay scheduler for s. It panics on a structurally
// invalid schedule (see Schedule.Validate — callers assembling schedules
// from external files should Validate first and surface the error).
func NewReplay(s *Schedule) *Replay {
	if err := s.Validate(); err != nil {
		panic(err.Error())
	}
	return &Replay{s: s, divergedAt: -1}
}

// Fack implements Scheduler: replay re-declares the recorded bound.
func (r *Replay) Fack() int64 { return r.s.Fack }

// DivergedAt reports the step index at which the execution first left the
// recording (len(Steps) when it ran past the recorded horizon), or -1 for
// a byte-identical replay so far.
func (r *Replay) DivergedAt() int { return r.divergedAt }

// Diverged reports whether the execution left the recording.
func (r *Replay) Diverged() bool { return r.diverged }

// Plan implements Scheduler.
func (r *Replay) Plan(b Broadcast, p *Plan) {
	if !r.diverged {
		if r.cursor < len(r.s.Steps) {
			st := &r.s.Steps[r.cursor]
			if r.matches(st, b, p) {
				copy(p.Recv, st.Recv)
				p.Ack = st.Ack
				r.cursor++
				return
			}
		}
		r.diverge(b)
	}
	r.fallback(b, p)
}

// matches reports whether the recorded step answers broadcast b: identity
// (sender, seq, issue time, recipient shape) plus timing validity relative
// to the step's own Now — a perturbed step whose times fell outside the
// model contract must not reach the engine's validator.
func (r *Replay) matches(st *ScheduleStep, b Broadcast, p *Plan) bool {
	if st.Sender != b.Sender || st.Seq != b.Seq || st.Now != b.Now {
		return false
	}
	if st.NR != len(b.Neighbors) || len(st.Recv) != len(p.Recv) {
		return false
	}
	if st.Ack > st.Now+r.s.Fack {
		return false
	}
	for i, t := range st.Recv {
		if t == NoDelivery {
			if i < st.NR {
				return false
			}
			continue
		}
		if t <= st.Now || t > st.Ack {
			return false
		}
	}
	return true
}

func (r *Replay) diverge(b Broadcast) {
	if r.Strict {
		panic(fmt.Sprintf("sim: strict replay diverged at step %d: broadcast (sender=%d seq=%d now=%d) not answered by the recording",
			r.cursor, b.Sender, b.Seq, b.Now))
	}
	r.diverged = true
	r.divergedAt = r.cursor
	if r.Observer != nil {
		r.Observer(Event{Kind: EventDiverge, Time: b.Now, Node: b.Sender})
	}
}

// fallback plans one broadcast the recording no longer covers: uniform
// delivery times in (Now, Now+Fack], an ack between the latest delivery
// and the deadline, and DeliverP coins for unreliable slots — the
// Random+Lossy behaviour, seeded by the schedule so perturbed executions
// stay deterministic.
func (r *Replay) fallback(b Broadcast, p *Plan) {
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(r.s.FallbackSeed))
	}
	f := r.s.Fack
	latest := b.Now + 1
	for i := range b.Neighbors {
		t := b.Now + 1 + r.rng.Int63n(f)
		p.Recv[i] = t
		if t > latest {
			latest = t
		}
	}
	ack := latest
	if room := b.Now + f - latest; room > 0 {
		ack += r.rng.Int63n(room + 1)
	}
	p.Ack = ack
	nr := len(b.Neighbors)
	for i := range b.Unreliable {
		if r.rng.Float64() >= r.s.DeliverP {
			continue
		}
		span := ack - b.Now
		if span < 1 {
			span = 1
		}
		t := b.Now + 1 + r.rng.Int63n(span)
		if t > ack {
			t = ack
		}
		p.Recv[nr+i] = t
	}
}

var _ Scheduler = (*Replay)(nil)
