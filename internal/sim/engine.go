package sim

import (
	"fmt"
	"sort"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/metrics"
)

// Engine executes configurations on a reusable arena: Reset re-arms the
// same engine for a new configuration, keeping the node-state arrays, the
// Result slices, the delivery-plan buffer, the event-queue backing array
// and the event freelist from the previous run. A sweep worker that runs
// the seeds of one cell back to back on one Engine pays the engine's
// allocation cost once per cell instead of once per seed.
//
// Node runtime state is stored structure-of-arrays: one flat slice per
// field (algorithm, id, in-flight broadcast, crash time) instead of one
// []struct with pointer-y interiors. Reset then re-arms a field with one
// clear()/copy pass, the per-event cache footprint is a few dense arrays
// instead of strided struct loads, and decision state lives directly in
// the Result slices (Decided/Decision/DecideTime/Crashed) rather than
// being mirrored per node. The per-node amac.API values are pre-boxed
// into the apis slice once per Reset, so starting n nodes performs no
// interface-conversion allocation — at n=10^4 that was the last O(n)
// allocation on the run path.
//
// The Result returned by Run is owned by the engine and valid only until
// the next Reset; callers that retain results across runs must copy them.
// The one-shot Run function keeps its allocate-per-call semantics.
type Engine struct {
	cfg Config

	// Structure-of-arrays node state, all indexed by node.
	algs     []amac.Algorithm
	apis     []api
	ids      []amac.NodeID
	inflight []bool // a broadcast is awaiting its ack
	inMsg    []amac.Message
	bseq     []int // next broadcast sequence number
	crashAt  []int64

	q      eventQueue
	nexts  int64 // next event seq
	now    int64
	res    *Result
	maxEvt int
	// plan is the reusable delivery-plan buffer handed to the scheduler.
	// Invariant between broadcasts: every slot in [0, cap) holds
	// NoDelivery — the push loops restore exactly the slots the scheduler
	// filled as they read them, so a broadcast never pays a pre-zero pass
	// over slots nobody wrote (the queue's slab plays the same role for
	// events; together they keep the hot path allocation-free).
	plan Plan

	// O(1) StopWhenDecided bookkeeping: undecided counts nodes that have
	// neither decided nor passed their crash cutoff. pendCrash holds the
	// scheduled cutoffs sorted by time; pendIdx is the clock cursor into
	// it — as now advances past a cutoff, its node stops owing a decision.
	undecided int
	pendCrash []Crash
	pendIdx   int
	// checkStops, set by tests, asserts the counter against the O(n)
	// reference scan at every stop evaluation.
	checkStops bool

	// Hot-path metric handles, re-registered at every Reset. With
	// Config.Metrics nil these are zero handles and every mutation is one
	// predictable nil-check branch — the zero-cost-when-off contract.
	mEvents    metrics.Counter // processed queue events
	mDeliver   metrics.Counter // deliveries handed to OnReceive
	mDrops     metrics.Counter // deliveries/acks lost to crash cutoffs
	mDiscards  metrics.Counter // broadcasts attempted while one in flight
	mFreeHits  metrics.Counter // event allocations served by the freelist
	mFreeMiss  metrics.Counter // event allocations that hit the allocator
	mQueueHigh metrics.Gauge   // event-queue depth (high-water tracked)
}

// api implements amac.API for one node. Engine.Reset pre-boxes one per
// node in e.apis; the *api pointer converts to the interface without
// allocating.
type api struct {
	e    *Engine
	node int
}

func (a *api) ID() amac.NodeID { return a.e.ids[a.node] }

func (a *api) Now() int64 { return a.e.now }

func (a *api) Broadcast(m amac.Message) bool {
	return a.e.broadcast(a.node, m)
}

func (a *api) Decide(v amac.Value) {
	a.e.decide(a.node, v)
}

var _ amac.API = (*api)(nil)

// NewEngine returns an engine armed with cfg, ready to Run. Like Run, it
// panics on configuration errors (use Config.Validate to check first).
func NewEngine(cfg Config) *Engine {
	e := &Engine{}
	e.Reset(cfg)
	return e
}

// Reset re-arms the engine for a new configuration, reusing every buffer
// the previous run left behind. No state leaks across runs: node states
// (crash flags, decisions, in-flight broadcasts), the Result, the clock,
// the event sequence counter and the queue are all reinitialized; events
// still queued from a run stopped early (StopWhenDecided, MaxEvents) are
// drained to the freelist with their message references cleared. It panics
// on configuration errors, exactly as Run does.
func (e *Engine) Reset(cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	// A run stopped by StopWhenDecided or MaxEvents leaves events queued;
	// recycle them so the slab, not the allocator, feeds the next run —
	// then re-arm the calendar ring for the new scheduler's horizon.
	e.q.drain()
	e.q.init(cfg.Scheduler.Fack(), cfg.QueueWindow)
	e.cfg = cfg
	e.nexts = 0
	e.now = 0
	n := cfg.Graph.N()
	e.maxEvt = cfg.MaxEvents
	if e.maxEvt == 0 {
		e.maxEvt = DefaultMaxEvents
	}

	if cap(e.algs) >= n {
		// Zero the tails beyond n so a shrink does not pin the prior
		// run's algorithm state through stale alg/message references.
		clear(e.algs[n:cap(e.algs)])
		clear(e.inMsg[n:cap(e.inMsg)])
		e.algs = e.algs[:n]
		e.apis = e.apis[:n]
		e.ids = e.ids[:n]
		e.inflight = e.inflight[:n]
		e.inMsg = e.inMsg[:n]
		e.bseq = e.bseq[:n]
		e.crashAt = e.crashAt[:n]
		clear(e.inflight)
		clear(e.inMsg)
		clear(e.bseq)
	} else {
		e.algs = make([]amac.Algorithm, n)
		e.apis = make([]api, n)
		e.ids = make([]amac.NodeID, n)
		e.inflight = make([]bool, n)
		e.inMsg = make([]amac.Message, n)
		e.bseq = make([]int, n)
		e.crashAt = make([]int64, n)
	}
	for i := range e.crashAt {
		e.crashAt[i] = -1
	}

	if e.res == nil || cap(e.res.Decided) < n {
		e.res = &Result{
			Decided:    make([]bool, n),
			Decision:   make([]amac.Value, n),
			DecideTime: make([]int64, n),
			Crashed:    make([]bool, n),
		}
	} else {
		e.res.Decided = e.res.Decided[:n]
		e.res.Decision = e.res.Decision[:n]
		e.res.DecideTime = e.res.DecideTime[:n]
		e.res.Crashed = e.res.Crashed[:n]
		clear(e.res.Decided)
		clear(e.res.Decision)
		clear(e.res.DecideTime)
		clear(e.res.Crashed)
	}
	*e.res = Result{
		Decided:       e.res.Decided,
		Decision:      e.res.Decision,
		DecideTime:    e.res.DecideTime,
		Crashed:       e.res.Crashed,
		MaxDecideTime: -1,
	}

	// Metrics: zero the registry's values for the new run and (re-)register
	// the engine's slots. Registration dedups by name, so after the first
	// Reset of a reused engine this is a handful of map hits; with a nil
	// registry every call returns a disabled zero handle.
	m := cfg.Metrics
	m.Reset()
	e.mEvents = m.Counter("sim_events")
	e.mDeliver = m.Counter("sim_deliveries")
	e.mDrops = m.Counter("sim_crash_drops")
	e.mDiscards = m.Counter("sim_discards")
	e.mFreeHits = m.Counter("sim_freelist_hits")
	e.mFreeMiss = m.Counter("sim_freelist_misses")
	e.mQueueHigh = m.Gauge("sim_queue_depth")

	for i := 0; i < n; i++ {
		id := amac.NodeID(i + 1)
		if cfg.IDs != nil {
			id = cfg.IDs[i]
		}
		alg := cfg.Factory(amac.NodeConfig{ID: id, Input: cfg.Inputs[i], Metrics: cfg.Metrics})
		if alg == nil {
			panic(fmt.Sprintf("sim: factory returned nil algorithm for node %d", i))
		}
		e.ids[i] = id
		e.algs[i] = alg
		e.apis[i] = api{e: e, node: i}
	}
	for _, c := range cfg.Crashes {
		if at := e.crashAt[c.Node]; at < 0 || c.At < at {
			e.crashAt[c.Node] = c.At
		}
	}

	// Arm the O(1) StopWhenDecided counter: every node owes a decision
	// until it decides or the clock passes its crash cutoff. The cutoffs
	// are replayed in time order by a cursor in the run loop.
	e.undecided = n
	e.pendCrash = e.pendCrash[:0]
	for i, at := range e.crashAt {
		if at >= 0 {
			e.pendCrash = append(e.pendCrash, Crash{Node: i, At: at})
		}
	}
	sort.Slice(e.pendCrash, func(i, j int) bool {
		a, b := e.pendCrash[i], e.pendCrash[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Node < b.Node
	})
	e.pendIdx = 0

	// Re-assert the plan-buffer invariant (all slots NoDelivery): the push
	// loops maintain it run to run, but a run aborted mid-broadcast — a
	// recovered scheduler-contract panic — may have left written slots.
	e.plan.Recv = e.plan.Recv[:cap(e.plan.Recv)]
	for i := range e.plan.Recv {
		e.plan.Recv[i] = NoDelivery
	}
}

func (e *Engine) observe(ev Event) {
	if e.cfg.Observer != nil {
		e.cfg.Observer(ev)
	}
}

// crashedBy reports whether node i has halted before time t. A crash at
// time T takes effect strictly after T: events at exactly T still occur
// (the paper lets the scheduler crash a node "in the middle of a
// broadcast", i.e. between events, so the boundary convention is free; we
// pick the one that maximizes what a crash can be observed to permit).
func (e *Engine) crashedBy(i int, t int64) bool {
	at := e.crashAt[i]
	return at >= 0 && at < t
}

// push enqueues one event, stamping its insertion sequence. The queue's
// slab recycles slots; a free-chain hit or a slab growth is surfaced on
// the freelist metrics (growth amortizes to one allocation per doubling).
func (e *Engine) push(ev event) {
	ev.seq = e.nexts
	e.nexts++
	if e.q.push(ev) {
		e.mFreeHits.Inc()
	} else {
		e.mFreeMiss.Inc()
	}
	e.mQueueHigh.Set(int64(e.q.len()))
}

func (e *Engine) broadcast(u int, m amac.Message) bool {
	if m == nil {
		panic(fmt.Sprintf("sim: node %d broadcast a nil message", u))
	}
	if e.inflight[u] {
		e.res.Discards++
		e.mDiscards.Inc()
		e.observe(Event{Kind: EventDiscard, Time: e.now, Node: u, Message: m})
		return false
	}
	if e.cfg.Audit {
		if err := amac.AuditIDCount(m); err != nil {
			e.res.Violations = append(e.res.Violations, Violation{Time: e.now, Node: u, Desc: err.Error()})
		}
	}
	nbrs := e.cfg.Graph.Neighbors(u)
	b := Broadcast{Sender: u, Seq: e.bseq[u], Neighbors: nbrs, Now: e.now, Message: m}
	if e.cfg.Unreliable != nil {
		b.Unreliable = e.cfg.Unreliable.Neighbors(u)
	}

	// Size the reusable plan buffer: one slot per recipient. Every slot
	// already holds NoDelivery — the buffer invariant — so schedulers only
	// have to fill what they deliver and no per-broadcast zeroing pass
	// runs; the push loops below restore the slots they consume.
	need := len(nbrs) + len(b.Unreliable)
	if cap(e.plan.Recv) < need {
		e.plan.Recv = make([]int64, need)
		for i := range e.plan.Recv {
			e.plan.Recv[i] = NoDelivery
		}
	} else {
		e.plan.Recv = e.plan.Recv[:need]
	}
	e.plan.Ack = 0
	e.cfg.Scheduler.Plan(b, &e.plan)
	e.validatePlan(b, &e.plan)

	e.inflight[u] = true
	e.inMsg[u] = m
	e.bseq[u]++
	e.res.Broadcasts++
	e.observe(Event{Kind: EventBroadcast, Time: e.now, Node: u, Message: m})

	// Push deliveries in deterministic (reliable-then-unreliable,
	// index-ordered) order: queue ties break by insertion sequence. Each
	// consumed slot is restored to NoDelivery in the same pass — exactly
	// the slots the scheduler wrote, re-establishing the buffer invariant
	// without a separate sweep (reliable slots are always written;
	// unreliable slots only when the scheduler delivered).
	for i, v := range nbrs {
		at := e.plan.Recv[i]
		e.plan.Recv[i] = NoDelivery
		e.push(event{time: at, kind: EventDeliver, node: v, peer: u, bseq: b.Seq, msg: m})
	}
	for i, v := range b.Unreliable {
		if at := e.plan.Recv[len(nbrs)+i]; at != NoDelivery {
			e.plan.Recv[len(nbrs)+i] = NoDelivery
			e.push(event{time: at, kind: EventDeliver, node: v, peer: u, bseq: b.Seq, msg: m})
		}
	}
	e.push(event{time: e.plan.Ack, kind: EventAck, node: u, bseq: b.Seq, msg: m})
	return true
}

func (e *Engine) validatePlan(b Broadcast, p *Plan) {
	f := e.cfg.Scheduler.Fack()
	deadline := b.Now + f
	checkTiming := func(v int, t int64) {
		if t <= b.Now {
			panic(fmt.Sprintf("sim: scheduler delivers to %d at t=%d, not after broadcast at t=%d", v, t, b.Now))
		}
		if t > deadline {
			panic(fmt.Sprintf("sim: scheduler delivers to %d at t=%d, past Fack deadline %d", v, t, deadline))
		}
		if t > p.Ack {
			panic(fmt.Sprintf("sim: scheduler delivers to %d at t=%d, after the ack at t=%d", v, t, p.Ack))
		}
	}
	if want := len(b.Neighbors) + len(b.Unreliable); len(p.Recv) != want {
		panic(fmt.Sprintf("sim: scheduler plan has %d slots for %d recipients of sender %d (plans are positional; do not resize Recv)", len(p.Recv), want, b.Sender))
	}
	for i, v := range b.Neighbors {
		t := p.Recv[i]
		if t == NoDelivery {
			panic(fmt.Sprintf("sim: scheduler plan misses reliable neighbor %d of sender %d", v, b.Sender))
		}
		checkTiming(v, t)
	}
	for i, v := range b.Unreliable {
		if t := p.Recv[len(b.Neighbors)+i]; t != NoDelivery {
			checkTiming(v, t)
		}
	}
	if p.Ack > deadline {
		panic(fmt.Sprintf("sim: scheduler acks at t=%d, past Fack deadline %d", p.Ack, deadline))
	}
}

func (e *Engine) decide(u int, v amac.Value) {
	if e.res.Decided[u] {
		if e.res.Decision[u] != v {
			e.res.Violations = append(e.res.Violations, Violation{
				Time: e.now, Node: u,
				Desc: fmt.Sprintf("second decide(%d) after decide(%d): decisions are irrevocable", v, e.res.Decision[u]),
			})
		}
		return
	}
	e.res.Decided[u] = true
	e.res.Decision[u] = v
	e.res.DecideTime[u] = e.now
	// The node stops owing a decision — unless the crash cursor already
	// wrote it off (its cutoff is at or before now), in which case the
	// counter must not move twice.
	if at := e.crashAt[u]; at < 0 || at > e.now {
		e.undecided--
	}
	if e.now > e.res.MaxDecideTime {
		e.res.MaxDecideTime = e.now
	}
	e.observe(Event{Kind: EventDecide, Time: e.now, Node: u, Value: v})
}

// advanceCrashCursor replays scheduled crash cutoffs up to the current
// clock: a node whose cutoff has passed no longer owes a decision. Run
// calls it immediately after advancing now — before any callback can
// decide at the same instant — so decide's "already written off" check
// (crashAt <= now) agrees exactly with what the cursor has consumed.
func (e *Engine) advanceCrashCursor() {
	for e.pendIdx < len(e.pendCrash) && e.pendCrash[e.pendIdx].At <= e.now {
		if !e.res.Decided[e.pendCrash[e.pendIdx].Node] {
			e.undecided--
		}
		e.pendIdx++
	}
}

// allDecidedScan is the O(n) reference for the undecided counter: every
// node has decided or passed its crash cutoff. The run loop consults the
// counter; tests set checkStops to assert the two agree at every stop
// evaluation.
func (e *Engine) allDecidedScan() bool {
	for i, decided := range e.res.Decided {
		if !decided && !(e.crashAt[i] >= 0 && e.crashAt[i] <= e.now) {
			return false
		}
	}
	return true
}

// Run executes the engine's current configuration to completion and returns
// the result. The result is owned by the engine: it stays valid until the
// next Reset. Run must not be called twice without a Reset in between.
func (e *Engine) Run() *Result {
	// Start every node at time 0 in index order. A node scheduled to
	// crash at time 0 never starts.
	e.advanceCrashCursor()
	for i := range e.algs {
		if e.crashAt[i] == 0 {
			e.markCrashed(i)
			continue
		}
		e.algs[i].Start(&e.apis[i])
	}

	for e.q.len() > 0 {
		if e.res.Events >= e.maxEvt {
			e.res.Cutoff = true
			break
		}
		ev := e.q.pop()
		if ev.time < e.now {
			panic(fmt.Sprintf("sim: time went backwards: %d -> %d", e.now, ev.time))
		}
		e.now = ev.time
		e.advanceCrashCursor()
		e.res.Events++
		e.mEvents.Inc()
		e.res.Time = e.now

		switch ev.kind {
		case EventDeliver:
			// A delivery is lost when the receiver has crashed, or
			// when the sender crashed before this delivery time
			// (mid-broadcast crash: the remaining neighbors never
			// receive the message).
			if e.crashedBy(ev.node, ev.time) {
				e.markCrashed(ev.node)
				e.mDrops.Inc()
				continue
			}
			if e.crashedBy(ev.peer, ev.time) {
				e.markCrashed(ev.peer)
				e.mDrops.Inc()
				continue
			}
			e.res.Deliveries++
			e.mDeliver.Inc()
			e.observe(Event{Kind: EventDeliver, Time: e.now, Node: ev.node, Peer: ev.peer, Message: ev.msg})
			e.algs[ev.node].OnReceive(ev.msg)
		case EventAck:
			if e.crashedBy(ev.node, ev.time) {
				e.markCrashed(ev.node)
				e.mDrops.Inc()
				continue
			}
			u := ev.node
			if !e.inflight[u] || e.bseq[u]-1 != ev.bseq {
				panic(fmt.Sprintf("sim: stray ack for node %d bseq %d", u, ev.bseq))
			}
			e.inflight[u] = false
			msg := e.inMsg[u]
			e.inMsg[u] = nil
			e.res.Acks++
			e.observe(Event{Kind: EventAck, Time: e.now, Node: u, Message: msg})
			e.algs[u].OnAck(msg)
		default:
			panic(fmt.Sprintf("sim: unexpected queue event kind %v", ev.kind))
		}

		if e.cfg.StopWhenDecided {
			done := e.undecided == 0
			if e.checkStops && done != e.allDecidedScan() {
				panic(fmt.Sprintf("sim: undecided counter %d disagrees with reference scan at t=%d", e.undecided, e.now))
			}
			if done {
				break
			}
		}
	}

	if e.q.len() == 0 {
		e.res.Quiescent = true
	}
	// Mark scheduled crashes that were never reached by an event so the
	// result reflects the configured fault pattern.
	for i := range e.crashAt {
		if e.crashAt[i] >= 0 {
			e.markCrashed(i)
		}
	}
	return e.res
}

func (e *Engine) markCrashed(i int) {
	if e.res.Crashed[i] {
		return
	}
	e.res.Crashed[i] = true
	e.observe(Event{Kind: EventCrash, Time: e.crashAt[i], Node: i})
}
