package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
)

// This file implements schedule recording: capturing every nondeterministic
// decision of an execution into a compact, JSON-serializable Schedule that
// can be replayed byte-identically (replay.go) or perturbed into nearby
// executions (the schedule-space explorer in internal/explore).
//
// All nondeterminism in the model flows through two channels — the
// scheduler's per-broadcast delivery plan (which, for Lossy-wrapped
// schedulers, already embeds the unreliable-edge coin outcomes as
// NoDelivery-or-time slots) and the configured crash times. A Schedule
// therefore records the finished plan of every broadcast, in broadcast
// order, plus the crash schedule: given the same non-scheduler
// configuration, those decisions determine the execution completely.
//
// Recording is an opt-in scheduler wrapper (ScheduleRecorder), so the
// sweep hot path pays nothing when recording is off.

// ScheduleStep is one recorded broadcast decision: the delivery plan the
// scheduler produced for the NR reliable and len(Recv)-NR unreliable
// recipients of sender's Seq-th broadcast, issued at time Now. Recv is
// positional exactly as in Plan; NoDelivery marks an unreliable slot the
// scheduler (or a perturbation) declined.
type ScheduleStep struct {
	Sender int     `json:"sender"`
	Seq    int     `json:"seq"`
	Now    int64   `json:"now"`
	NR     int     `json:"nr"`
	Recv   []int64 `json:"recv"`
	Ack    int64   `json:"ack"`
}

// Schedule is the complete nondeterminism of one execution: the recorded
// plan of every broadcast plus the crash schedule, with the scheduler's
// declared Fack and the parameters a Replay needs to extend a perturbed
// execution past its recorded horizon (FallbackSeed, DeliverP).
type Schedule struct {
	// Fack is the delivery bound the recorded scheduler declared; Replay
	// re-declares it.
	Fack int64 `json:"fack"`
	// DeliverP is the unreliable-edge delivery probability Replay's
	// fallback planner uses for broadcasts past the recorded horizon
	// (meaningful only in dual-graph configurations).
	DeliverP float64 `json:"deliver_p,omitempty"`
	// FallbackSeed seeds Replay's fallback planner, keeping perturbed
	// executions deterministic after they diverge from the recording.
	FallbackSeed int64 `json:"fallback_seed"`
	// Crashes is the execution's crash schedule. Replayers must install it
	// as Config.Crashes (harness.ReplayRunner does).
	Crashes []Crash `json:"crashes,omitempty"`
	// Steps are the recorded broadcast decisions, in broadcast order.
	Steps []ScheduleStep `json:"steps"`
}

// ScheduleRecorder wraps a scheduler and records every plan it produces
// into S. Install it as the outermost wrapper (outside Lossy, so the coin
// outcomes are captured in the recorded slots). The recorder is the only
// cost of recording: one step append plus one Recv copy per broadcast,
// nothing on the delivery path.
type ScheduleRecorder struct {
	Base Scheduler
	S    *Schedule
}

// RecordSchedule wraps base in a recorder with a fresh Schedule carrying
// base's Fack. The caller fills in Crashes, DeliverP and FallbackSeed —
// they are configuration, not scheduler decisions, so the recorder cannot
// see them.
func RecordSchedule(base Scheduler) *ScheduleRecorder {
	if base == nil {
		panic("sim: RecordSchedule needs a base scheduler")
	}
	return &ScheduleRecorder{Base: base, S: &Schedule{Fack: base.Fack()}}
}

// Fack implements Scheduler.
func (r *ScheduleRecorder) Fack() int64 { return r.Base.Fack() }

// Plan implements Scheduler: delegate, then record the finished plan.
func (r *ScheduleRecorder) Plan(b Broadcast, p *Plan) {
	r.Base.Plan(b, p)
	r.S.Steps = append(r.S.Steps, ScheduleStep{
		Sender: b.Sender,
		Seq:    b.Seq,
		Now:    b.Now,
		NR:     len(b.Neighbors),
		Recv:   append([]int64(nil), p.Recv...),
		Ack:    p.Ack,
	})
}

// Clone returns a deep copy: mutating the copy's steps, slots or crashes
// never touches the original. Perturbation searches clone before mutating.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{Fack: s.Fack, DeliverP: s.DeliverP, FallbackSeed: s.FallbackSeed}
	if s.Crashes != nil {
		c.Crashes = append([]Crash(nil), s.Crashes...)
	}
	c.Steps = make([]ScheduleStep, len(s.Steps))
	for i, st := range s.Steps {
		st.Recv = append([]int64(nil), st.Recv...)
		c.Steps[i] = st
	}
	return c
}

// Deliveries counts the delivered slots across all steps (reliable slots
// plus unreliable slots not left at NoDelivery) — the shrinker's measure of
// how much message traffic a schedule explains.
func (s *Schedule) Deliveries() int {
	n := 0
	for i := range s.Steps {
		for _, t := range s.Steps[i].Recv {
			if t != NoDelivery {
				n++
			}
		}
	}
	return n
}

// Hash returns a 64-bit FNV-1a digest over every decision in the schedule.
// Two schedules with equal hashes are, for exploration purposes, the same
// execution prescription — the explorer deduplicates candidates by it.
func (s *Schedule) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	w(s.Fack)
	w(int64(len(s.Crashes)))
	for _, c := range s.Crashes {
		w(int64(c.Node))
		w(c.At)
	}
	w(int64(len(s.Steps)))
	for i := range s.Steps {
		st := &s.Steps[i]
		w(int64(st.Sender))
		w(int64(st.Seq))
		w(st.Now)
		w(int64(st.NR))
		for _, t := range st.Recv {
			w(t)
		}
		w(st.Ack)
	}
	return h.Sum64()
}

// --- perturbations ---
//
// Each perturbation mutates the schedule in place and reports whether it
// applied. A perturbation that applied leaves the mutated step valid
// relative to its own recorded Now (deliveries in (Now, Now+Fack], none
// after the ack), so a replay that reaches the step at the recorded time
// executes it; if earlier perturbations shifted time, Replay detects the
// mismatch and switches to its fallback planner instead of handing the
// engine an invalid plan.

// stepOK reports whether step index k is addressable.
func (s *Schedule) stepOK(k int) bool { return k >= 0 && k < len(s.Steps) }

// SwapRecv swaps the delivery times of slots i and j of step k — the
// classic "deliver to these two recipients in the opposite order"
// perturbation. It refuses swaps that would leave a reliable slot at
// NoDelivery.
func (s *Schedule) SwapRecv(k, i, j int) bool {
	if !s.stepOK(k) || i == j {
		return false
	}
	st := &s.Steps[k]
	if i < 0 || j < 0 || i >= len(st.Recv) || j >= len(st.Recv) {
		return false
	}
	if (i < st.NR && st.Recv[j] == NoDelivery) || (j < st.NR && st.Recv[i] == NoDelivery) {
		return false
	}
	if st.Recv[i] == st.Recv[j] {
		return false
	}
	st.Recv[i], st.Recv[j] = st.Recv[j], st.Recv[i]
	return true
}

// JitterStep redraws every delivered slot of step k uniformly in
// (Now, Now+Fack] and re-picks the ack between the latest delivery and the
// deadline, seeded — the "same coin outcomes, different timing"
// perturbation. Undelivered slots stay undelivered.
func (s *Schedule) JitterStep(k int, seed int64) bool {
	if !s.stepOK(k) {
		return false
	}
	st := &s.Steps[k]
	rng := rand.New(rand.NewSource(seed))
	latest := int64(0)
	any := false
	for i, t := range st.Recv {
		if t == NoDelivery {
			continue
		}
		nt := st.Now + 1 + rng.Int63n(s.Fack)
		st.Recv[i] = nt
		if nt > latest {
			latest = nt
		}
		any = true
	}
	if !any {
		return false
	}
	ack := latest
	if room := st.Now + s.Fack - latest; room > 0 {
		ack += rng.Int63n(room + 1)
	}
	st.Ack = ack
	return true
}

// FlipCoin toggles unreliable slot `slot` of step k: a delivered slot
// becomes NoDelivery, an undelivered one delivers at the step's ack time
// (always valid: the ack is within the window and no delivery follows it).
// Reliable slots cannot be flipped.
func (s *Schedule) FlipCoin(k, slot int) bool {
	if !s.stepOK(k) {
		return false
	}
	st := &s.Steps[k]
	if slot < st.NR || slot >= len(st.Recv) {
		return false
	}
	if st.Recv[slot] == NoDelivery {
		st.Recv[slot] = st.Ack
	} else {
		st.Recv[slot] = NoDelivery
	}
	return true
}

// ShiftCrash moves crash i to time at (>= 0).
func (s *Schedule) ShiftCrash(i int, at int64) bool {
	if i < 0 || i >= len(s.Crashes) || at < 0 || s.Crashes[i].At == at {
		return false
	}
	s.Crashes[i].At = at
	return true
}

// DropCrash removes crash i.
func (s *Schedule) DropCrash(i int) bool {
	if i < 0 || i >= len(s.Crashes) {
		return false
	}
	s.Crashes = append(s.Crashes[:i], s.Crashes[i+1:]...)
	return true
}

// Truncate cuts the recorded steps to the first k; a replay executes the
// retained prefix and extends the run with its fallback planner.
func (s *Schedule) Truncate(k int) bool {
	if k < 0 || k >= len(s.Steps) {
		return false
	}
	s.Steps = s.Steps[:k]
	return true
}

// Validate performs the structural checks a replayer relies on: positive
// Fack, sane slot counts, crash times non-negative and DeliverP in [0,1].
// Per-step timing is checked live by Replay (a step whose times no longer
// fit the replayed execution is a divergence, not an error).
func (s *Schedule) Validate() error {
	if s.Fack <= 0 {
		return fmt.Errorf("sim: schedule declares Fack=%d, need > 0", s.Fack)
	}
	if s.DeliverP < 0 || s.DeliverP > 1 {
		return fmt.Errorf("sim: schedule delivery probability %v outside [0,1]", s.DeliverP)
	}
	for i, c := range s.Crashes {
		if c.At < 0 {
			return fmt.Errorf("sim: schedule crash %d at negative time %d", i, c.At)
		}
	}
	for i := range s.Steps {
		st := &s.Steps[i]
		if st.NR < 0 || st.NR > len(st.Recv) {
			return fmt.Errorf("sim: schedule step %d has %d reliable slots of %d", i, st.NR, len(st.Recv))
		}
		if st.Sender < 0 || st.Seq < 0 || st.Now < 0 {
			return fmt.Errorf("sim: schedule step %d has negative sender/seq/now", i)
		}
	}
	return nil
}

var _ Scheduler = (*ScheduleRecorder)(nil)
