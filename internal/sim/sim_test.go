package sim

import (
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/graph"
)

// testMsg is a minimal message carrying a payload and a declared id count.
type testMsg struct {
	from amac.NodeID
	tag  string
	ids  int
}

func (m testMsg) IDCount() int { return m.ids }

// onceAlg broadcasts a single message at start and decides its input on ack.
type onceAlg struct {
	api   amac.API
	input amac.Value
}

func (a *onceAlg) Start(api amac.API) {
	a.api = api
	api.Broadcast(testMsg{from: api.ID(), tag: "once", ids: 1})
}
func (a *onceAlg) OnReceive(amac.Message) {}
func (a *onceAlg) OnAck(amac.Message)     { a.api.Decide(a.input) }

func onceFactory(cfg amac.NodeConfig) amac.Algorithm {
	return &onceAlg{input: cfg.Input}
}

// chatterAlg rebroadcasts forever; used to exercise the MaxEvents cutoff
// and the hot-path benchmarks. The message is boxed once so the steady
// state measures the engine, not interface conversion.
type chatterAlg struct {
	api amac.API
	msg amac.Message
}

func (a *chatterAlg) Start(api amac.API) {
	a.api = api
	if a.msg == nil {
		a.msg = testMsg{tag: "chatter"}
	}
	api.Broadcast(a.msg)
}
func (a *chatterAlg) OnReceive(amac.Message) {}
func (a *chatterAlg) OnAck(amac.Message) {
	a.api.Broadcast(a.msg)
}

// recorderAlg records everything it receives; never broadcasts or decides.
type recorderAlg struct {
	got []amac.Message
}

func (a *recorderAlg) Start(amac.API)           {}
func (a *recorderAlg) OnReceive(m amac.Message) { a.got = append(a.got, m) }
func (a *recorderAlg) OnAck(amac.Message)       {}

func inputs(vs ...int) []amac.Value {
	out := make([]amac.Value, len(vs))
	for i, v := range vs {
		out[i] = amac.Value(v)
	}
	return out
}

func TestSynchronousOnce(t *testing.T) {
	res := Run(Config{
		Graph:           graph.Line(3),
		Inputs:          inputs(0, 1, 0),
		Factory:         onceFactory,
		Scheduler:       Synchronous{},
		StopWhenDecided: true,
	})
	if !res.AllDecided() {
		t.Fatal("not all nodes decided")
	}
	// One synchronous round: everything at time 1.
	if res.MaxDecideTime != 1 {
		t.Fatalf("decision time %d, want 1", res.MaxDecideTime)
	}
	if res.Broadcasts != 3 || res.Acks != 3 {
		t.Fatalf("broadcasts=%d acks=%d, want 3/3", res.Broadcasts, res.Acks)
	}
	// Line of 3 has 4 directed deliveries.
	if res.Deliveries != 4 {
		t.Fatalf("deliveries=%d, want 4", res.Deliveries)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestSynchronousRoundLength(t *testing.T) {
	res := Run(Config{
		Graph:           graph.Clique(2),
		Inputs:          inputs(1, 1),
		Factory:         onceFactory,
		Scheduler:       Synchronous{Round: 10},
		StopWhenDecided: true,
	})
	if res.MaxDecideTime != 10 {
		t.Fatalf("decision time %d, want 10", res.MaxDecideTime)
	}
}

func TestMaxDelay(t *testing.T) {
	res := Run(Config{
		Graph:           graph.Clique(4),
		Inputs:          inputs(0, 0, 0, 0),
		Factory:         onceFactory,
		Scheduler:       MaxDelay{F: 7},
		StopWhenDecided: true,
	})
	if res.MaxDecideTime != 7 {
		t.Fatalf("decision time %d, want 7", res.MaxDecideTime)
	}
}

func TestDiscardWhileInFlight(t *testing.T) {
	f := func(cfg amac.NodeConfig) amac.Algorithm {
		return &doubleSender{}
	}
	res := Run(Config{
		Graph:     graph.Clique(2),
		Inputs:    inputs(0, 0),
		Factory:   f,
		Scheduler: Synchronous{},
	})
	if res.Discards != 2 {
		t.Fatalf("discards=%d, want 2 (one per node)", res.Discards)
	}
}

type doubleSender struct{}

func (a *doubleSender) Start(api amac.API) {
	if !api.Broadcast(testMsg{tag: "first"}) {
		panic("first broadcast rejected")
	}
	if api.Broadcast(testMsg{tag: "second"}) {
		panic("second broadcast accepted while first in flight")
	}
}
func (a *doubleSender) OnReceive(amac.Message) {}
func (a *doubleSender) OnAck(amac.Message)     {}

func TestMidBroadcastCrash(t *testing.T) {
	// Node 0 (hub of a 3-star) broadcasts; EdgeOrder delivers to leaf 1
	// at t=1, leaf 2 at t=2, leaf 3 at t=3, ack at t=4. Crashing node 0
	// at t=2 must deliver to leaves 1 and 2 only and never ack.
	recorders := make([]*recorderAlg, 4)
	factory := func(cfg amac.NodeConfig) amac.Algorithm {
		i := int(cfg.ID) - 1
		if i == 0 {
			return &onceAlg{input: cfg.Input}
		}
		recorders[i] = &recorderAlg{}
		return recorders[i]
	}
	res := Run(Config{
		Graph:     graph.Star(4),
		Inputs:    inputs(0, 0, 0, 0),
		Factory:   factory,
		Scheduler: &EdgeOrder{MaxDegree: 3},
		Crashes:   []Crash{{Node: 0, At: 2}},
	})
	if !res.Crashed[0] {
		t.Fatal("node 0 not marked crashed")
	}
	if res.Acks != 0 {
		t.Fatalf("acks=%d, want 0 (crash loses the ack)", res.Acks)
	}
	if len(recorders[1].got) != 1 || len(recorders[2].got) != 1 {
		t.Fatalf("leaves 1,2 got %d,%d messages, want 1,1", len(recorders[1].got), len(recorders[2].got))
	}
	if len(recorders[3].got) != 0 {
		t.Fatalf("leaf 3 got %d messages, want 0 (crash was mid-broadcast)", len(recorders[3].got))
	}
	if res.Decided[0] {
		t.Fatal("crashed node decided")
	}
}

func TestCrashedReceiverDropsDeliveries(t *testing.T) {
	rec := &recorderAlg{}
	factory := func(cfg amac.NodeConfig) amac.Algorithm {
		if cfg.ID == 1 {
			return &onceAlg{input: cfg.Input}
		}
		return rec
	}
	res := Run(Config{
		Graph:     graph.Clique(2),
		Inputs:    inputs(0, 0),
		Factory:   factory,
		Scheduler: MaxDelay{F: 5},
		Crashes:   []Crash{{Node: 1, At: 1}},
	})
	if len(rec.got) != 0 {
		t.Fatalf("crashed receiver got %d messages", len(rec.got))
	}
	// The sender still gets its ack: acks wait only for non-faulty
	// neighbors in the model.
	if res.Acks != 1 {
		t.Fatalf("acks=%d, want 1", res.Acks)
	}
	if !res.Decided[0] {
		t.Fatal("surviving node should have decided")
	}
}

func TestDoubleDecideViolation(t *testing.T) {
	factory := func(cfg amac.NodeConfig) amac.Algorithm {
		return &doubleDecider{}
	}
	res := Run(Config{
		Graph:     graph.Clique(2),
		Inputs:    inputs(0, 1),
		Factory:   factory,
		Scheduler: Synchronous{},
	})
	if len(res.Violations) != 2 {
		t.Fatalf("violations=%d, want 2", len(res.Violations))
	}
}

type doubleDecider struct{ api amac.API }

func (a *doubleDecider) Start(api amac.API) {
	a.api = api
	api.Broadcast(testMsg{})
}
func (a *doubleDecider) OnReceive(amac.Message) {}
func (a *doubleDecider) OnAck(amac.Message) {
	a.api.Decide(0)
	a.api.Decide(0) // same value: no violation
	a.api.Decide(1) // different value: violation
}

func TestAuditIDCount(t *testing.T) {
	factory := func(cfg amac.NodeConfig) amac.Algorithm {
		return &fatSender{}
	}
	res := Run(Config{
		Graph:     graph.Clique(2),
		Inputs:    inputs(0, 0),
		Factory:   factory,
		Scheduler: Synchronous{},
		Audit:     true,
	})
	if len(res.Violations) != 2 {
		t.Fatalf("violations=%d, want 2 (one oversized message per node)", len(res.Violations))
	}
}

type fatSender struct{}

func (a *fatSender) Start(api amac.API) {
	api.Broadcast(testMsg{ids: amac.MaxMessageIDs + 1})
}
func (a *fatSender) OnReceive(amac.Message) {}
func (a *fatSender) OnAck(amac.Message)     {}

func TestMaxEventsCutoff(t *testing.T) {
	res := Run(Config{
		Graph:     graph.Clique(3),
		Inputs:    inputs(0, 0, 0),
		Factory:   func(amac.NodeConfig) amac.Algorithm { return &chatterAlg{} },
		Scheduler: Synchronous{},
		MaxEvents: 500,
	})
	if !res.Cutoff {
		t.Fatal("expected MaxEvents cutoff")
	}
	if res.Quiescent {
		t.Fatal("cutoff run reported quiescent")
	}
}

func TestRandomSchedulerDeterminism(t *testing.T) {
	run := func(seed int64) *Result {
		return Run(Config{
			Graph:           graph.RandomConnected(12, 0.2, 3),
			Inputs:          make([]amac.Value, 12),
			Factory:         onceFactory,
			Scheduler:       NewRandom(16, seed),
			StopWhenDecided: true,
		})
	}
	a, b := run(5), run(5)
	if a.Events != b.Events || a.Time != b.Time || a.MaxDecideTime != b.MaxDecideTime {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := run(6)
	if a.Events == c.Events && a.Time == c.Time && a.Deliveries == c.Deliveries {
		t.Log("different seeds produced identical aggregate stats (possible, but unusual)")
	}
}

func TestRandomSchedulerWithinBound(t *testing.T) {
	// The engine panics if a plan exceeds Fack; running many seeds is an
	// effective property test of the Random scheduler's plan validity.
	for seed := int64(0); seed < 25; seed++ {
		Run(Config{
			Graph:           graph.Clique(6),
			Inputs:          make([]amac.Value, 6),
			Factory:         onceFactory,
			Scheduler:       NewRandom(1+seed%7, seed),
			StopWhenDecided: true,
		})
	}
}

func TestGateSilencesSender(t *testing.T) {
	var deliveries []Event
	Run(Config{
		Graph:   graph.Line(2),
		Inputs:  inputs(0, 0),
		Factory: onceFactory,
		Scheduler: Gate{
			Base:  Synchronous{},
			Gated: map[int]bool{0: true},
			Until: 50,
		},
		Observer: func(ev Event) {
			if ev.Kind == EventDeliver {
				deliveries = append(deliveries, ev)
			}
		},
	})
	if len(deliveries) != 2 {
		t.Fatalf("deliveries=%d, want 2", len(deliveries))
	}
	for _, ev := range deliveries {
		if ev.Peer == 0 && ev.Time < 50 {
			t.Fatalf("gated sender's message delivered at t=%d before gate 50", ev.Time)
		}
		if ev.Peer == 1 && ev.Time >= 50 {
			t.Fatalf("ungated sender's message delayed to t=%d", ev.Time)
		}
	}
}

func TestSlowSubsetStretchesDelays(t *testing.T) {
	var ackTimes = map[int]int64{}
	Run(Config{
		Graph:   graph.Line(2),
		Inputs:  inputs(0, 0),
		Factory: onceFactory,
		Scheduler: SlowSubset{
			Base:   Synchronous{},
			Slow:   map[int]bool{1: true},
			Factor: 9,
		},
		Observer: func(ev Event) {
			if ev.Kind == EventAck {
				ackTimes[ev.Node] = ev.Time
			}
		},
	})
	if ackTimes[0] != 1 {
		t.Fatalf("fast node acked at %d, want 1", ackTimes[0])
	}
	if ackTimes[1] != 9 {
		t.Fatalf("slow node acked at %d, want 9", ackTimes[1])
	}
}

func TestEdgeOrderSerialization(t *testing.T) {
	var recvTimes = map[int]int64{}
	Run(Config{
		Graph:     graph.Star(4),
		Inputs:    inputs(0, 0, 0, 0),
		Factory:   onceFactory,
		Scheduler: &EdgeOrder{MaxDegree: 3},
		Observer: func(ev Event) {
			if ev.Kind == EventDeliver && ev.Peer == 0 {
				recvTimes[ev.Node] = ev.Time
			}
		},
	})
	for leaf := 1; leaf <= 3; leaf++ {
		if recvTimes[leaf] != int64(leaf) {
			t.Fatalf("leaf %d received at t=%d, want %d", leaf, recvTimes[leaf], leaf)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	valid := func() Config {
		return Config{
			Graph:     graph.Clique(2),
			Inputs:    inputs(0, 0),
			Factory:   onceFactory,
			Scheduler: Synchronous{},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil graph", func(c *Config) { c.Graph = nil }},
		{"input mismatch", func(c *Config) { c.Inputs = inputs(0) }},
		{"nil factory", func(c *Config) { c.Factory = nil }},
		{"nil scheduler", func(c *Config) { c.Scheduler = nil }},
		{"duplicate ids", func(c *Config) { c.IDs = []amac.NodeID{7, 7} }},
		{"id mismatch", func(c *Config) { c.IDs = []amac.NodeID{7} }},
		{"bad crash node", func(c *Config) { c.Crashes = []Crash{{Node: 9, At: 1}} }},
		{"negative crash time", func(c *Config) { c.Crashes = []Crash{{Node: 0, At: -2}} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			tc.mutate(&cfg)
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			Run(cfg)
		})
	}
}

func TestBadSchedulerPanics(t *testing.T) {
	cases := []struct {
		name string
		plan func(b Broadcast, p *Plan)
	}{
		{"late delivery", func(b Broadcast, p *Plan) {
			for i := range b.Neighbors {
				p.Recv[i] = b.Now + 100
			}
			p.Ack = b.Now + 100
		}},
		{"delivery at now", func(b Broadcast, p *Plan) {
			for i := range b.Neighbors {
				p.Recv[i] = b.Now
			}
			p.Ack = b.Now + 1
		}},
		{"ack before delivery", func(b Broadcast, p *Plan) {
			for i := range b.Neighbors {
				p.Recv[i] = b.Now + 2
			}
			p.Ack = b.Now + 1
		}},
		{"missing neighbor", func(b Broadcast, p *Plan) {
			p.Ack = b.Now + 1 // every Recv slot left at NoDelivery
		}},
		{"resized plan", func(b Broadcast, p *Plan) {
			for i := range b.Neighbors {
				p.Recv[i] = b.Now + 1
			}
			p.Recv = append(p.Recv, b.Now+1) // a slot with no recipient
			p.Ack = b.Now + 1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			Run(Config{
				Graph:     graph.Clique(2),
				Inputs:    inputs(0, 0),
				Factory:   onceFactory,
				Scheduler: planFunc{f: tc.plan},
			})
		})
	}
}

type planFunc struct {
	f func(Broadcast, *Plan)
}

func (p planFunc) Fack() int64                { return 10 }
func (p planFunc) Plan(b Broadcast, pl *Plan) { p.f(b, pl) }

func TestDefaultIDsAssigned(t *testing.T) {
	var ids []amac.NodeID
	factory := func(cfg amac.NodeConfig) amac.Algorithm {
		ids = append(ids, cfg.ID)
		return &recorderAlg{}
	}
	Run(Config{
		Graph:     graph.Clique(3),
		Inputs:    inputs(0, 0, 0),
		Factory:   factory,
		Scheduler: Synchronous{},
	})
	for i, id := range ids {
		if id != amac.NodeID(i+1) {
			t.Fatalf("node %d got default id %d, want %d", i, id, i+1)
		}
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EventBroadcast, EventDeliver, EventAck, EventDecide, EventCrash, EventDiscard, EventKind(99)}
	want := []string{"broadcast", "deliver", "ack", "decide", "crash", "discard", "EventKind(99)"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Fatalf("EventKind %d string %q, want %q", int(k), k.String(), want[i])
		}
	}
}

func TestDecidedValues(t *testing.T) {
	res := Run(Config{
		Graph:           graph.Clique(2),
		Inputs:          inputs(0, 1),
		Factory:         onceFactory, // decides own input: deliberate disagreement
		Scheduler:       Synchronous{},
		StopWhenDecided: true,
	})
	vals := res.DecidedValues()
	if len(vals) != 2 {
		t.Fatalf("decided values %v, want two distinct", vals)
	}
}
