package sim

import (
	"reflect"
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/graph"
)

// engineResetConfigs is a reuse-hostile sequence: a crashy run, a
// non-quiescent run cut off with events still queued, an unreliable-graph
// run, and a smaller-topology run, so a leak of crash flags, decisions,
// queued events or result-slice lengths across Reset would surface.
func engineResetConfigs() []Config {
	ring := graph.Ring(6)
	line := graph.Line(4)
	chords := graph.RandomOverlay(ring, 3, 11)
	return []Config{
		{
			Graph:     ring,
			Inputs:    inputs(0, 1, 0, 1, 0, 1),
			Factory:   onceFactory,
			Scheduler: NewRandom(5, 3),
			Crashes:   []Crash{{Node: 2, At: 2}, {Node: 5, At: 0}},
		},
		{
			Graph:     ring,
			Inputs:    inputs(1, 1, 1, 1, 1, 1),
			Factory:   func(amac.NodeConfig) amac.Algorithm { return &chatterAlg{} },
			Scheduler: NewRandom(4, 7),
			MaxEvents: 500, // cutoff leaves events queued for Reset to drain
		},
		{
			Graph:      ring,
			Inputs:     inputs(0, 0, 1, 1, 0, 0),
			Factory:    onceFactory,
			Scheduler:  NewLossy(NewRandom(6, 9), 0.5, 21),
			Unreliable: chords,
		},
		{
			Graph:           line,
			Inputs:          inputs(0, 1, 1, 0),
			Factory:         onceFactory,
			Scheduler:       Synchronous{Round: 3},
			StopWhenDecided: true,
		},
	}
}

// fresh rebuilds a config with fresh scheduler state (seeded schedulers
// advance their rng as they plan, so reference runs need their own copies).
func freshResetConfig(t *testing.T, i int) Config {
	t.Helper()
	return engineResetConfigs()[i]
}

// TestEngineResetMatchesFreshRun is the reuse-soundness test: every run on
// a single reused engine must produce a result identical to the same
// configuration run on a fresh engine.
func TestEngineResetMatchesFreshRun(t *testing.T) {
	var e *Engine
	for i := range engineResetConfigs() {
		cfg := freshResetConfig(t, i)
		if e == nil {
			e = NewEngine(cfg)
		} else {
			e.Reset(cfg)
		}
		got := e.Run()
		want := Run(freshResetConfig(t, i))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("config %d: reused engine result differs from fresh engine:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
	// And back to the first config: a full cycle must still match.
	e.Reset(freshResetConfig(t, 0))
	got := e.Run()
	want := Run(freshResetConfig(t, 0))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("re-running config 0 on the cycled engine differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestEngineResetLeavesNoState inspects the engine internals after Reset:
// no crash flags, decisions or in-flight broadcasts survive from the prior
// run, the queue is empty, and every freelist event has dropped its
// message reference (pooled events must not retain algorithm payloads).
func TestEngineResetLeavesNoState(t *testing.T) {
	crashy := freshResetConfig(t, 0)
	e := NewEngine(crashy)
	res := e.Run()
	if res.Crashed[2] != true || res.Crashed[5] != true {
		t.Fatalf("crashy run did not crash nodes 2 and 5: %+v", res.Crashed)
	}

	// Cut off a chatter run so events are still queued at Reset time.
	e.Reset(freshResetConfig(t, 1))
	res = e.Run()
	if !res.Cutoff {
		t.Fatal("chatter run was not cut off")
	}
	if e.q.len() == 0 {
		t.Fatal("cutoff run should leave events queued (the test wants the drain path)")
	}

	e.Reset(freshResetConfig(t, 3))
	if e.q.len() != 0 {
		t.Errorf("%d events still queued after Reset", e.q.len())
	}
	for i := range e.q.slab {
		if e.q.slab[i].msg != nil {
			t.Errorf("slab event %d retains message %v after Reset", i, e.q.slab[i].msg)
		}
	}
	for i := range e.algs {
		if e.res.Crashed[i] || e.crashAt[i] >= 0 {
			t.Errorf("node %d keeps crash state (crashed=%v crashAt=%d) from the prior run", i, e.res.Crashed[i], e.crashAt[i])
		}
		if e.res.Decided[i] || e.inflight[i] || e.inMsg[i] != nil || e.bseq[i] != 0 {
			t.Errorf("node %d keeps run state (decided=%v inflight=%v bseq=%d)", i, e.res.Decided[i], e.inflight[i], e.bseq[i])
		}
	}
	if e.now != 0 || e.nexts != 0 {
		t.Errorf("clock/seq not reset: now=%d nexts=%d", e.now, e.nexts)
	}
	res = e.Run()
	for i, crashed := range res.Crashed {
		if crashed {
			t.Errorf("node %d reported crashed in a fault-free run", i)
		}
	}
	if !res.AllDecided() {
		t.Errorf("fault-free run after reuse did not decide everywhere: %+v", res)
	}
}

// TestEngineResetShrinksAndGrows exercises node-count changes in both
// directions: result slices must track the new topology size exactly.
func TestEngineResetShrinksAndGrows(t *testing.T) {
	big := freshResetConfig(t, 0)   // 6 nodes
	small := freshResetConfig(t, 3) // 4 nodes
	e := NewEngine(big)
	e.Run()
	e.Reset(small)
	res := e.Run()
	if len(res.Decided) != 4 || len(res.Crashed) != 4 {
		t.Fatalf("result slices not resized down: %d/%d", len(res.Decided), len(res.Crashed))
	}
	e.Reset(freshResetConfig(t, 0))
	res = e.Run()
	if len(res.Decided) != 6 {
		t.Fatalf("result slices not resized up: %d", len(res.Decided))
	}
	if !reflect.DeepEqual(res, Run(freshResetConfig(t, 0))) {
		t.Fatal("grow-after-shrink run differs from fresh engine")
	}
}

// TestStopCounterMatchesScan pins the O(1) undecided counter that drives
// StopWhenDecided against the O(n) reference scan: with checkStops set the
// engine asserts agreement at every stop evaluation, so any interleaving
// of decisions and crash cutoffs that would stop at a different event
// panics. The crash schedules cover cutoffs before, at, and after the
// decision, a node crashed at time 0, and a run where every node crashes
// (the counter reaches zero through the cursor alone).
func TestStopCounterMatchesScan(t *testing.T) {
	ring := graph.Ring(6)
	ins := inputs(0, 1, 0, 1, 0, 1)
	schedules := [][]Crash{
		nil,
		{{Node: 5, At: 0}},
		{{Node: 0, At: 1}, {Node: 3, At: 2}},
		{{Node: 2, At: 4}, {Node: 2, At: 9}},
		{{Node: 1, At: 40}}, // typically after node 1 decides
		{{Node: 0, At: 1}, {Node: 1, At: 1}, {Node: 2, At: 1}, {Node: 3, At: 1}, {Node: 4, At: 1}, {Node: 5, At: 1}},
	}
	for ci, crashes := range schedules {
		for seed := int64(1); seed <= 8; seed++ {
			mk := func() Config {
				return Config{
					Graph:           ring,
					Inputs:          ins,
					Factory:         onceFactory,
					Scheduler:       NewRandom(5, seed),
					Crashes:         crashes,
					StopWhenDecided: true,
				}
			}
			e := NewEngine(mk())
			e.checkStops = true // panic if counter and scan ever disagree
			got := e.Run()
			want := Run(mk())
			if got.Events != want.Events || got.Time != want.Time {
				t.Errorf("crashes[%d] seed %d: checked run stopped at event %d (t=%d), plain run at %d (t=%d)",
					ci, seed, got.Events, got.Time, want.Events, want.Time)
			}
			if !reflect.DeepEqual(got.Decided, want.Decided) || !reflect.DeepEqual(got.Crashed, want.Crashed) {
				t.Errorf("crashes[%d] seed %d: checked and plain runs disagree on outcomes", ci, seed)
			}
		}
	}
}
