package sim

import (
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/metrics"
)

// BenchmarkBroadcastPlan measures the engine's broadcast/delivery hot path:
// every node rebroadcasts on each ack, so the run is a steady stream of
// plan/validate/deliver cycles and the fixed engine setup is amortized over
// thousands of broadcasts. allocs/op is the headline number — the plan
// buffer and event freelist are supposed to keep the steady state free of
// per-broadcast allocations.
func BenchmarkBroadcastPlan(b *testing.B) {
	benchBroadcast(b, graph.Clique(16), nil, nil)
}

// BenchmarkBroadcastPlanUnreliable is the same workload under a dual-graph
// configuration (sparse reliable ring plus random unreliable chords), so
// the unreliable branch of the planning path is costed too.
func BenchmarkBroadcastPlanUnreliable(b *testing.B) {
	g := graph.Ring(16)
	benchBroadcast(b, g, graph.RandomOverlay(g, 24, 7), nil)
}

// BenchmarkBroadcastPlanMetrics and BenchmarkBroadcastPlanUnreliableMetrics
// are the flight-recorder-on variants of the two pinned broadcast benches:
// the same workloads with a live metrics.Registry installed, so the cost
// of the instrumented hot path is measured next to the pinned
// metrics-off numbers. The overhead contract (see internal/metrics) is a
// fixed number of registrations per Reset — O(registered slots), never
// O(events) — so allocs/op must exceed the pins only by a constant.
func BenchmarkBroadcastPlanMetrics(b *testing.B) {
	benchBroadcast(b, graph.Clique(16), nil, metrics.New())
}

func BenchmarkBroadcastPlanUnreliableMetrics(b *testing.B) {
	g := graph.Ring(16)
	benchBroadcast(b, g, graph.RandomOverlay(g, 24, 7), metrics.New())
}

// BenchmarkBroadcastPlanLarge is the large-n tier of the broadcast bench:
// the same chatter workload on the sparse degree-bounded families worth
// simulating at n=10^3..10^4 (seeded random 8-regular expanders and
// Octopus-style multi-pod meshes). Setup — topology construction, engine
// Reset, per-node algorithm allocation — happens outside the timer, so
// the measured region is the steady-state event loop alone and allocs/op
// must stay independent of n (the freelist and plan buffer, not the
// allocator, feed every broadcast).
func BenchmarkBroadcastPlanLarge(b *testing.B) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"expander-1024", graph.Expander(1024, 8, 1)},
		{"expander-4096", graph.Expander(4096, 8, 1)},
		{"pods-1024", graph.Pods(16, 64, 4, 1)},
		{"pods-4096", graph.Pods(64, 64, 4, 1)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			ins := make([]amac.Value, tc.g.N())
			// One message boxed up front and shared by every node: the
			// timed region must measure the engine's event loop, not n
			// interface conversions in the test algorithm.
			msg := amac.Message(testMsg{tag: "chatter"})
			factory := func(amac.NodeConfig) amac.Algorithm { return &chatterAlg{msg: msg} }
			e := NewEngine(Config{
				Graph:     tc.g,
				Inputs:    ins,
				Factory:   factory,
				Scheduler: NewRandom(8, 42),
				MaxEvents: 50_000,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e.Reset(Config{
					Graph:     tc.g,
					Inputs:    ins,
					Factory:   factory,
					Scheduler: NewRandom(8, 42),
					MaxEvents: 50_000,
				})
				b.StartTimer()
				res := e.Run()
				if !res.Cutoff {
					b.Fatalf("chatter workload terminated after %d events", res.Events)
				}
				b.ReportMetric(float64(res.Broadcasts), "broadcasts/op")
			}
		})
	}
}

func benchBroadcast(b *testing.B, g, u *graph.Graph, reg *metrics.Registry) {
	ins := make([]amac.Value, g.N())
	factory := func(amac.NodeConfig) amac.Algorithm { return &chatterAlg{} }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sched Scheduler = NewRandom(8, 42)
		if u != nil {
			sched = NewLossy(sched, 0.5, 42)
		}
		res := Run(Config{
			Graph:      g,
			Unreliable: u,
			Inputs:     ins,
			Factory:    factory,
			Scheduler:  sched,
			MaxEvents:  50_000,
			Metrics:    reg,
		})
		if !res.Cutoff {
			b.Fatalf("chatter workload terminated after %d events", res.Events)
		}
		b.ReportMetric(float64(res.Broadcasts), "broadcasts/op")
	}
}
