package sim

import (
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/graph"
)

// BenchmarkBroadcastPlan measures the engine's broadcast/delivery hot path:
// every node rebroadcasts on each ack, so the run is a steady stream of
// plan/validate/deliver cycles and the fixed engine setup is amortized over
// thousands of broadcasts. allocs/op is the headline number — the plan
// buffer and event freelist are supposed to keep the steady state free of
// per-broadcast allocations.
func BenchmarkBroadcastPlan(b *testing.B) {
	benchBroadcast(b, graph.Clique(16), nil)
}

// BenchmarkBroadcastPlanUnreliable is the same workload under a dual-graph
// configuration (sparse reliable ring plus random unreliable chords), so
// the unreliable branch of the planning path is costed too.
func BenchmarkBroadcastPlanUnreliable(b *testing.B) {
	g := graph.Ring(16)
	benchBroadcast(b, g, graph.RandomOverlay(g, 24, 7))
}

func benchBroadcast(b *testing.B, g, u *graph.Graph) {
	ins := make([]amac.Value, g.N())
	factory := func(amac.NodeConfig) amac.Algorithm { return &chatterAlg{} }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sched Scheduler = NewRandom(8, 42)
		if u != nil {
			sched = NewLossy(sched, 0.5, 42)
		}
		res := Run(Config{
			Graph:      g,
			Unreliable: u,
			Inputs:     ins,
			Factory:    factory,
			Scheduler:  sched,
			MaxEvents:  50_000,
		})
		if !res.Cutoff {
			b.Fatalf("chatter workload terminated after %d events", res.Events)
		}
		b.ReportMetric(float64(res.Broadcasts), "broadcasts/op")
	}
}
