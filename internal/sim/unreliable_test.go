package sim

import (
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/graph"
)

// The dual-graph (unreliable link) model variant: broadcasts must reach
// reliable neighbors and may reach unreliable ones.

func TestUnreliableDelivery(t *testing.T) {
	// Reliable: line 0-1. Unreliable: edge {0,2} (node 2 is otherwise
	// disconnected from 0... it must still be in the topology; use a
	// 3-line 0-1-2 with unreliable chord {0,2}).
	g := graph.Line(3)
	u := graph.New(3)
	u.AddEdge(0, 2)

	countFrom0To2 := 0
	run := func(p float64) {
		countFrom0To2 = 0
		Run(Config{
			Graph:      g,
			Unreliable: u,
			Inputs:     inputs(0, 0, 0),
			Factory:    onceFactory,
			Scheduler:  NewLossy(Synchronous{}, p, 9),
			Observer: func(ev Event) {
				if ev.Kind == EventDeliver && ev.Peer == 0 && ev.Node == 2 {
					countFrom0To2++
				}
			},
		})
	}
	run(0)
	if countFrom0To2 != 0 {
		t.Fatalf("p=0: %d deliveries over the unreliable edge", countFrom0To2)
	}
	run(1)
	if countFrom0To2 != 1 {
		t.Fatalf("p=1: %d deliveries over the unreliable edge, want 1", countFrom0To2)
	}
}

func TestUnreliableNeverBlocksAck(t *testing.T) {
	// Reliable deliveries and the ack must be unaffected by the overlay.
	g := graph.Line(3)
	u := graph.New(3)
	u.AddEdge(0, 2)
	res := Run(Config{
		Graph:           g,
		Unreliable:      u,
		Inputs:          inputs(1, 1, 1),
		Factory:         onceFactory,
		Scheduler:       NewLossy(Synchronous{}, 0.5, 3),
		StopWhenDecided: true,
	})
	if !res.AllDecided() {
		t.Fatal("reliable substrate failed under the overlay")
	}
	if res.MaxDecideTime != 1 {
		t.Fatalf("decision time %d, want 1 (synchronous base)", res.MaxDecideTime)
	}
}

func TestUnreliableValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"node count mismatch", func() Config {
			return Config{
				Graph:      graph.Line(3),
				Unreliable: graph.New(2),
				Inputs:     inputs(0, 0, 0),
				Factory:    onceFactory,
				Scheduler:  Synchronous{},
			}
		}},
		{"overlapping edge", func() Config {
			u := graph.New(3)
			u.AddEdge(0, 1) // also a reliable edge
			return Config{
				Graph:      graph.Line(3),
				Unreliable: u,
				Inputs:     inputs(0, 0, 0),
				Factory:    onceFactory,
				Scheduler:  Synchronous{},
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			Run(tc.cfg())
		})
	}
}

func TestPlanMayNotInventRecipients(t *testing.T) {
	// Plans are positional, so delivering to a non-neighbor means growing
	// the slot buffer past the recipient list — which must be rejected.
	bad := planFunc{f: func(b Broadcast, p *Plan) {
		for i := range b.Neighbors {
			p.Recv[i] = b.Now + 1
		}
		p.Recv = append(p.Recv, b.Now+1) // a 99th slot with no recipient
		p.Ack = b.Now + 1
	}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Config{
		Graph:     graph.Line(100),
		Inputs:    make([]amac.Value, 100),
		Factory:   onceFactory,
		Scheduler: bad,
	})
}

// TestMidBroadcastCrashDropsPendingUnreliable pins the crash x unreliable
// interaction: a sender that crashes mid-broadcast loses exactly the
// deliveries (reliable AND unreliable) planned after its crash time, plus
// the ack — deliveries planned at or before the crash time still land.
func TestMidBroadcastCrashDropsPendingUnreliable(t *testing.T) {
	// Base: line 0-1-2-3. Unreliable overlay: chords {0,2} and {0,3}.
	// The scheduler delivers node 0's broadcast to its reliable neighbor
	// 1 at t=1, then over the unreliable chords to 2 at t=2 and 3 at
	// t=3, acking at t=4. Node 0 crashes at t=2: the t=1 and t=2
	// deliveries happen (a crash at T takes effect strictly after T),
	// the t=3 unreliable delivery and the ack are lost.
	g := graph.Line(4)
	u := graph.New(4)
	u.AddEdge(0, 2)
	u.AddEdge(0, 3)
	sched := planFunc{f: func(b Broadcast, p *Plan) {
		for i := range b.Neighbors {
			p.Recv[i] = b.Now + 1
		}
		for i := range b.Unreliable {
			p.Recv[len(b.Neighbors)+i] = b.Now + 2 + int64(i)
		}
		p.Ack = b.Now + 2 + int64(len(b.Unreliable))
	}}

	recorders := make([]*recorderAlg, 4)
	factory := func(cfg amac.NodeConfig) amac.Algorithm {
		i := int(cfg.ID) - 1
		if i == 0 {
			return &onceAlg{input: cfg.Input}
		}
		recorders[i] = &recorderAlg{}
		return recorders[i]
	}
	res := Run(Config{
		Graph:      g,
		Unreliable: u,
		Inputs:     inputs(0, 0, 0, 0),
		Factory:    factory,
		Scheduler:  sched,
		Crashes:    []Crash{{Node: 0, At: 2}},
	})

	from0 := func(i int) int {
		n := 0
		for _, m := range recorders[i].got {
			if msg, ok := m.(testMsg); ok && msg.from == 1 {
				n++
			}
		}
		return n
	}
	if from0(1) != 1 {
		t.Fatalf("reliable neighbor 1 got %d messages from node 0, want 1 (delivered at t=1, before the crash)", from0(1))
	}
	if from0(2) != 1 {
		t.Fatalf("unreliable chord {0,2} delivered %d messages, want 1 (t=2 is not after the crash at 2)", from0(2))
	}
	if from0(3) != 0 {
		t.Fatalf("unreliable chord {0,3} delivered %d messages, want 0 (planned at t=3, after the crash)", from0(3))
	}
	if res.Acks != 0 {
		t.Fatalf("acks=%d, want 0 (the mid-broadcast crash loses the ack)", res.Acks)
	}
	if res.Decided[0] {
		t.Fatal("crashed sender decided")
	}
	if !res.Crashed[0] {
		t.Fatal("node 0 not marked crashed")
	}
}

func TestLossyDeterministic(t *testing.T) {
	g := graph.Ring(6)
	u := graph.RandomOverlay(g, 4, 2)
	run := func() *Result {
		return Run(Config{
			Graph:           g,
			Unreliable:      u,
			Inputs:          inputs(0, 1, 0, 1, 0, 1),
			Factory:         onceFactory,
			Scheduler:       NewLossy(NewRandom(5, 7), 0.5, 7),
			StopWhenDecided: true,
		})
	}
	a, b := run(), run()
	if a.Events != b.Events || a.Deliveries != b.Deliveries {
		t.Fatalf("lossy runs diverged: %d/%d vs %d/%d events/deliveries", a.Events, a.Deliveries, b.Events, b.Deliveries)
	}
}

func TestLossyValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewLossy(nil, 0.5, 1) },
		func() { NewLossy(Synchronous{}, -0.1, 1) },
		func() { NewLossy(Synchronous{}, 1.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
