package sim

import (
	"testing"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/graph"
)

// The dual-graph (unreliable link) model variant: broadcasts must reach
// reliable neighbors and may reach unreliable ones.

func TestUnreliableDelivery(t *testing.T) {
	// Reliable: line 0-1. Unreliable: edge {0,2} (node 2 is otherwise
	// disconnected from 0... it must still be in the topology; use a
	// 3-line 0-1-2 with unreliable chord {0,2}).
	g := graph.Line(3)
	u := graph.New(3)
	u.AddEdge(0, 2)

	countFrom0To2 := 0
	run := func(p float64) {
		countFrom0To2 = 0
		Run(Config{
			Graph:      g,
			Unreliable: u,
			Inputs:     inputs(0, 0, 0),
			Factory:    onceFactory,
			Scheduler:  NewLossy(Synchronous{}, p, 9),
			Observer: func(ev Event) {
				if ev.Kind == EventDeliver && ev.Peer == 0 && ev.Node == 2 {
					countFrom0To2++
				}
			},
		})
	}
	run(0)
	if countFrom0To2 != 0 {
		t.Fatalf("p=0: %d deliveries over the unreliable edge", countFrom0To2)
	}
	run(1)
	if countFrom0To2 != 1 {
		t.Fatalf("p=1: %d deliveries over the unreliable edge, want 1", countFrom0To2)
	}
}

func TestUnreliableNeverBlocksAck(t *testing.T) {
	// Reliable deliveries and the ack must be unaffected by the overlay.
	g := graph.Line(3)
	u := graph.New(3)
	u.AddEdge(0, 2)
	res := Run(Config{
		Graph:           g,
		Unreliable:      u,
		Inputs:          inputs(1, 1, 1),
		Factory:         onceFactory,
		Scheduler:       NewLossy(Synchronous{}, 0.5, 3),
		StopWhenDecided: true,
	})
	if !res.AllDecided() {
		t.Fatal("reliable substrate failed under the overlay")
	}
	if res.MaxDecideTime != 1 {
		t.Fatalf("decision time %d, want 1 (synchronous base)", res.MaxDecideTime)
	}
}

func TestUnreliableValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"node count mismatch", func() Config {
			return Config{
				Graph:      graph.Line(3),
				Unreliable: graph.New(2),
				Inputs:     inputs(0, 0, 0),
				Factory:    onceFactory,
				Scheduler:  Synchronous{},
			}
		}},
		{"overlapping edge", func() Config {
			u := graph.New(3)
			u.AddEdge(0, 1) // also a reliable edge
			return Config{
				Graph:      graph.Line(3),
				Unreliable: u,
				Inputs:     inputs(0, 0, 0),
				Factory:    onceFactory,
				Scheduler:  Synchronous{},
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			Run(tc.cfg())
		})
	}
}

func TestPlanMayNotInventRecipients(t *testing.T) {
	// A scheduler delivering to a non-neighbor must be rejected.
	bad := planFunc{f: func(b Broadcast) Plan {
		p := Plan{Recv: map[int]int64{}, Ack: b.Now + 1}
		for _, v := range b.Neighbors {
			p.Recv[v] = b.Now + 1
		}
		p.Recv[99] = b.Now + 1 // not a neighbor of anyone
		return p
	}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Config{
		Graph:     graph.Line(100),
		Inputs:    make([]amac.Value, 100),
		Factory:   onceFactory,
		Scheduler: bad,
	})
}

func TestLossyDeterministic(t *testing.T) {
	g := graph.Ring(6)
	u := graph.RandomOverlay(g, 4, 2)
	run := func() *Result {
		return Run(Config{
			Graph:           g,
			Unreliable:      u,
			Inputs:          inputs(0, 1, 0, 1, 0, 1),
			Factory:         onceFactory,
			Scheduler:       NewLossy(NewRandom(5, 7), 0.5, 7),
			StopWhenDecided: true,
		})
	}
	a, b := run(), run()
	if a.Events != b.Events || a.Deliveries != b.Deliveries {
		t.Fatalf("lossy runs diverged: %d/%d vs %d/%d events/deliveries", a.Events, a.Deliveries, b.Events, b.Deliveries)
	}
}

func TestLossyValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewLossy(nil, 0.5, 1) },
		func() { NewLossy(Synchronous{}, -0.1, 1) },
		func() { NewLossy(Synchronous{}, 1.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
