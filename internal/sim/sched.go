package sim

import (
	"fmt"
	"math/rand"
	"slices"
)

// This file implements the message schedulers used throughout the paper's
// arguments and this repository's experiments. Every scheduler is
// deterministic given its construction parameters.
//
// Plans are positional (see Plan): slot i of p.Recv belongs to
// b.Neighbors[i], and slots past len(b.Neighbors) to the unreliable
// recipients. The engine hands every scheduler a pre-sized buffer filled
// with NoDelivery, so base schedulers only write the slots they deliver
// and wrapping schedulers mutate the filled buffer in place — the planning
// path performs no allocation.

// Synchronous is the paper's synchronous scheduler (Section 3.2): message
// behaviour proceeds in lock-step rounds of duration Round. All deliveries
// of a broadcast land at the next round boundary, and the ack arrives with
// them, so each broadcast/ack cycle takes exactly one round and
// Fack = Round.
type Synchronous struct {
	// Round is the lock-step round length; 0 means 1.
	Round int64
}

func (s Synchronous) round() int64 {
	if s.Round <= 0 {
		return 1
	}
	return s.Round
}

// Fack implements Scheduler.
func (s Synchronous) Fack() int64 { return s.round() }

// Plan implements Scheduler.
func (s Synchronous) Plan(b Broadcast, p *Plan) {
	r := s.round()
	// Next round boundary strictly after Now.
	at := (b.Now/r + 1) * r
	for i := range b.Neighbors {
		p.Recv[i] = at
	}
	p.Ack = at
}

// MaxDelay delays every delivery and ack to exactly Fack after the
// broadcast — the scheduler behind the Theorem 3.10 time lower bound.
type MaxDelay struct {
	F int64
}

// Fack implements Scheduler.
func (s MaxDelay) Fack() int64 {
	if s.F <= 0 {
		return 1
	}
	return s.F
}

// Plan implements Scheduler.
func (s MaxDelay) Plan(b Broadcast, p *Plan) {
	at := b.Now + s.Fack()
	for i := range b.Neighbors {
		p.Recv[i] = at
	}
	p.Ack = at
}

// Random delivers each message at an independent uniform time in
// [Now+1, Now+F] and acks at a uniform time between the last delivery and
// the deadline. It is the workhorse scheduler for correctness censuses.
type Random struct {
	F    int64
	Seed int64

	rng *rand.Rand
}

// NewRandom returns a Random scheduler with the given bound and seed.
func NewRandom(f, seed int64) *Random {
	if f <= 0 {
		panic(fmt.Sprintf("sim: Random scheduler needs F > 0, got %d", f))
	}
	return &Random{F: f, Seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Fack implements Scheduler.
func (s *Random) Fack() int64 { return s.F }

// Plan implements Scheduler.
func (s *Random) Plan(b Broadcast, p *Plan) {
	latest := b.Now + 1
	for i := range b.Neighbors {
		t := b.Now + 1 + s.rng.Int63n(s.F)
		p.Recv[i] = t
		if t > latest {
			latest = t
		}
	}
	ack := latest
	if room := b.Now + s.F - latest; room > 0 {
		ack += s.rng.Int63n(room + 1)
	}
	p.Ack = ack
}

// Gate wraps a base scheduler and silences a set of senders until a global
// time T: any broadcast a gated node issues before T has its deliveries and
// ack postponed to T plus the base scheduler's relative plan. This is the
// semi-synchronous scheduler of Sections 3.2 and 3.3 — the executions it
// produces are indistinguishable, for nodes outside the gated set, from
// executions in which the gated nodes' components are absent.
type Gate struct {
	Base Scheduler
	// Gated marks silenced senders by node index.
	Gated map[int]bool
	// Until is the global time at which gated senders become audible.
	Until int64
}

// Fack implements Scheduler: the bound covers the gate delay.
func (s Gate) Fack() int64 { return s.Until + s.Base.Fack() }

// Plan implements Scheduler.
func (s Gate) Plan(b Broadcast, p *Plan) {
	s.Base.Plan(b, p)
	if !s.Gated[b.Sender] || b.Now >= s.Until {
		return
	}
	// Shift the base plan's relative offsets past the gate.
	shift := s.Until - b.Now
	for i, t := range p.Recv {
		if t != NoDelivery {
			p.Recv[i] = t + shift
		}
	}
	p.Ack += shift
}

// SlowSubset wraps a base scheduler and multiplies the relative delays of
// broadcasts issued by the marked senders by Factor (capped at the declared
// bound). It exercises wPAXOS's majority-progress property: a slow minority
// must not slow decisions (Section 1, footnote on choosing PAXOS).
type SlowSubset struct {
	Base   Scheduler
	Slow   map[int]bool
	Factor int64
}

// Fack implements Scheduler.
func (s SlowSubset) Fack() int64 {
	f := s.Factor
	if f < 1 {
		f = 1
	}
	return s.Base.Fack() * f
}

// Plan implements Scheduler.
func (s SlowSubset) Plan(b Broadcast, p *Plan) {
	s.Base.Plan(b, p)
	if !s.Slow[b.Sender] {
		return
	}
	f := s.Factor
	if f < 1 {
		f = 1
	}
	for i, t := range p.Recv {
		if t != NoDelivery {
			p.Recv[i] = b.Now + (t-b.Now)*f
		}
	}
	p.Ack = b.Now + (p.Ack-b.Now)*f
}

// EdgeOrder delivers each broadcast's messages one neighbor at a time in a
// fixed node-index order with unit gaps, acking last — an adversarial
// serialization that stresses algorithms relying on delivery order. The
// declared bound must cover the widest neighborhood: MaxDegree+1 slots.
//
// EdgeOrder is used by pointer so its sort scratch persists across
// broadcasts; both paths produce byte-identical plans (the rank of a slot
// under the quadratic count equals its position in a sort by the unique
// (neighbor, slot) key), pinned by TestEdgeOrderSortMatchesQuadratic
// across every registered family.
type EdgeOrder struct {
	// MaxDegree must be at least the maximum degree in the topology.
	MaxDegree int
	// Descending reverses the serialization order.
	Descending bool
	// SortThreshold is the degree at which planning switches from the
	// O(d^2) rank count to an O(d log d) scratch sort: 0 picks the
	// default, negative forces the quadratic path at every degree.
	SortThreshold int

	scratch []int32
}

// edgeOrderSortThreshold is the default degree at which sorting a scratch
// permutation beats the quadratic rank count. Below it the d^2 inner loop
// is a handful of compares over one cache line; above it d log d wins.
const edgeOrderSortThreshold = 32

// Fack implements Scheduler.
func (s *EdgeOrder) Fack() int64 { return int64(s.MaxDegree) + 1 }

// Plan implements Scheduler.
func (s *EdgeOrder) Plan(b Broadcast, p *Plan) {
	d := len(b.Neighbors)
	if d > s.MaxDegree {
		panic(fmt.Sprintf("sim: EdgeOrder.MaxDegree=%d below degree %d of node %d", s.MaxDegree, d, b.Sender))
	}
	threshold := s.SortThreshold
	if threshold == 0 {
		threshold = edgeOrderSortThreshold
	}
	if threshold > 0 && d >= threshold {
		s.planSorted(b, p, d)
		return
	}
	// Each neighbor's slot is its rank in the node-index serialization.
	// Short neighbor lists stay on the O(d^2) rank count: a handful of
	// compares, no scratch traffic.
	for i, v := range b.Neighbors {
		rank := 0
		for j, w := range b.Neighbors {
			if w < v || (w == v && j < i) {
				rank++
			}
		}
		if s.Descending {
			rank = d - 1 - rank
		}
		p.Recv[i] = b.Now + int64(rank) + 1
	}
	p.Ack = b.Now + int64(d) + 1
}

// planSorted computes the same ranks by sorting a reusable permutation of
// slot indices by (neighbor, slot). The composite key is unique — duplicate
// neighbor entries tie-break on slot — so an unstable sort is deterministic
// and the resulting positions equal the quadratic path's rank counts.
func (s *EdgeOrder) planSorted(b Broadcast, p *Plan, d int) {
	if cap(s.scratch) < d {
		s.scratch = make([]int32, d)
	}
	perm := s.scratch[:d]
	for i := range perm {
		perm[i] = int32(i)
	}
	slices.SortFunc(perm, func(x, y int32) int {
		vx, vy := b.Neighbors[x], b.Neighbors[y]
		if vx != vy {
			if vx < vy {
				return -1
			}
			return 1
		}
		return int(x) - int(y)
	})
	for rank, i := range perm {
		if s.Descending {
			p.Recv[i] = b.Now + int64(d-1-rank) + 1
		} else {
			p.Recv[i] = b.Now + int64(rank) + 1
		}
	}
	p.Ack = b.Now + int64(d) + 1
}

// Lossy adapts any base scheduler to dual-graph (unreliable link)
// configurations: the base scheduler plans the reliable deliveries, and
// Lossy independently delivers over each unreliable edge with probability
// P, at a uniform time no later than the ack. Use it as the outermost
// wrapper.
type Lossy struct {
	Base Scheduler
	P    float64

	rng *rand.Rand
}

// NewLossy returns a Lossy scheduler with delivery probability p over
// unreliable edges.
func NewLossy(base Scheduler, p float64, seed int64) *Lossy {
	if base == nil {
		panic("sim: Lossy needs a base scheduler")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("sim: invalid unreliable delivery probability %v", p))
	}
	return &Lossy{Base: base, P: p, rng: rand.New(rand.NewSource(seed))}
}

// Fack implements Scheduler.
func (s *Lossy) Fack() int64 { return s.Base.Fack() }

// Plan implements Scheduler.
func (s *Lossy) Plan(b Broadcast, p *Plan) {
	s.Base.Plan(b, p)
	nr := len(b.Neighbors)
	for i := range b.Unreliable {
		if s.rng.Float64() >= s.P {
			continue
		}
		span := p.Ack - b.Now
		if span < 1 {
			span = 1
		}
		t := b.Now + 1 + s.rng.Int63n(span)
		if t > p.Ack {
			t = p.Ack
		}
		p.Recv[nr+i] = t
	}
}

var (
	_ Scheduler = Synchronous{}
	_ Scheduler = MaxDelay{}
	_ Scheduler = (*Random)(nil)
	_ Scheduler = Gate{}
	_ Scheduler = SlowSubset{}
	_ Scheduler = (*EdgeOrder)(nil)
	_ Scheduler = (*Lossy)(nil)
)
