package exp

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/baseline/floodpaxos"
	"github.com/absmac/absmac/internal/baseline/gatherall"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/core/twophase"
	"github.com/absmac/absmac/internal/core/wpaxos"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
	"github.com/absmac/absmac/internal/stats"
)

// runChecked executes one simulator run and fails the experiment when the
// consensus properties do not hold.
func runChecked(e *Experiment, cfg sim.Config) *sim.Result {
	res := sim.Run(cfg)
	rep := consensus.Check(cfg.Inputs, res)
	if !rep.OK() {
		e.OK = false
		e.Notes = append(e.Notes, fmt.Sprintf("consensus violated: %v", rep.Errors))
	}
	return res
}

// E5TwoPhase reproduces Theorem 4.1: two-phase consensus decides in
// O(Fack) in single-hop networks — flat in n, linear in Fack, without
// knowing n.
func E5TwoPhase() *Experiment {
	e := &Experiment{
		ID:    "E5",
		Title: "Two-phase consensus: O(Fack) decisions in single-hop networks",
		Claim: "Thm 4.1: two-phase consensus decides in O(Fack) time with unique ids and no knowledge of n",
		Table: &stats.Table{Columns: []string{"n", "Fack", "decide time (med)", "decide/Fack", "max over seeds"}},
	}
	e.OK = true
	var ns, times []float64
	const seeds = 5
	for _, n := range []int{2, 8, 32, 128} {
		for _, f := range []int64{1, 8, 32} {
			var sample []float64
			for seed := int64(0); seed < seeds; seed++ {
				inputs := mixedInputs(n)
				res := runChecked(e, sim.Config{
					Graph:           graph.Clique(n),
					Inputs:          inputs,
					Factory:         twophase.Factory,
					Scheduler:       sim.NewRandom(f, seed),
					StopWhenDecided: true,
					Audit:           true,
				})
				sample = append(sample, float64(res.MaxDecideTime))
				if res.MaxDecideTime > 4*f {
					e.OK = false
				}
			}
			med := stats.Median(sample)
			e.Table.AddRow(n, f, med, med/float64(f), stats.Max(sample))
			if f == 8 {
				ns = append(ns, float64(n))
				times = append(times, med)
			}
		}
	}
	slope, _ := stats.LinFit(ns, times)
	e.Notes = append(e.Notes, fmt.Sprintf("decide-time-vs-n slope at Fack=8: %.4f time units per node (flat, as claimed)", slope))
	if slope > 0.05 {
		e.OK = false
	}
	return e
}

// E6WPaxos reproduces Theorem 4.6: wPAXOS decides in O(D*Fack), with the
// Lemma 4.5 GST decomposition (leader election stabilization, then leader
// tree completion, then a constant number of proposals).
func E6WPaxos() *Experiment {
	e := &Experiment{
		ID:    "E6",
		Title: "wPAXOS: O(D*Fack) decisions in multihop networks",
		Claim: "Thm 4.6: wPAXOS solves consensus in O(D*Fack) time given unique ids and knowledge of n",
		Table: &stats.Table{Columns: []string{"topology", "n", "D", "Fack", "decide (med)", "decide/(D*Fack)", "leader stab", "tree stab"}},
	}
	e.OK = true
	type inst struct {
		name string
		g    *graph.Graph
	}
	var instances []inst
	for _, d := range []int{4, 8, 16, 32} {
		instances = append(instances, inst{fmt.Sprintf("line-D%d", d), graph.Line(d + 1)})
	}
	instances = append(instances,
		inst{"grid-6x6", graph.Grid(6, 6)},
		inst{"tree-2x5", graph.BalancedTree(2, 5)},
		inst{"random-48", graph.RandomConnected(48, 0.08, 7)},
	)
	var ds, times []float64
	for _, in := range instances {
		d := in.g.Diameter()
		for _, f := range []int64{2, 8} {
			var sample, leaderStabs, treeStabs []float64
			for seed := int64(0); seed < 4; seed++ {
				inputs := mixedInputs(in.g.N())
				var nodes []*wpaxos.Node
				factory := func(nc amac.NodeConfig) amac.Algorithm {
					nd := wpaxos.New(nc.Input, wpaxos.Config{N: in.g.N()})
					nodes = append(nodes, nd)
					return nd
				}
				res := sim.Run(sim.Config{
					Graph:           in.g,
					Inputs:          inputs,
					Factory:         factory,
					Scheduler:       sim.NewRandom(f, seed),
					StopWhenDecided: true,
					Audit:           true,
				})
				rep := consensus.Check(inputs, res)
				if !rep.OK() {
					e.OK = false
				}
				sample = append(sample, float64(res.MaxDecideTime))
				var ls, ts int64
				for _, nd := range nodes {
					l, tr := nd.StabilizationTimes()
					if l > ls {
						ls = l
					}
					if tr > ts {
						ts = tr
					}
				}
				leaderStabs = append(leaderStabs, float64(ls))
				treeStabs = append(treeStabs, float64(ts))
			}
			med := stats.Median(sample)
			ratio := med / float64(int64(d)*f)
			if ratio > 25 {
				e.OK = false
			}
			e.Table.AddRow(in.name, in.g.N(), d, f, med, ratio, stats.Median(leaderStabs), stats.Median(treeStabs))
			if f == 2 {
				ds = append(ds, float64(d))
				times = append(times, med)
			}
		}
	}
	slope, intercept := stats.LinFit(ds, times)
	e.Notes = append(e.Notes,
		fmt.Sprintf("decide-time-vs-D fit at Fack=2: time = %.2f*D + %.2f (linear in D, as claimed)", slope, intercept),
		"leader stab / tree stab columns show the Lemma 4.5 GST decomposition: both complete within O(D*Fack)")
	return e
}

// E7FloodingBaseline reproduces the Section 4.2 motivation: naive response
// flooding costs Theta(n*Fack) at bottlenecks while wPAXOS's aggregating
// trees stay at O(D*Fack).
func E7FloodingBaseline() *Experiment {
	e := &Experiment{
		ID:    "E7",
		Title: "Flooding baselines vs wPAXOS on bottleneck topologies",
		Claim: "Sec 4.2: PAXOS over basic flooding needs Theta(n*Fack) where messages hold O(1) ids; tree aggregation restores O(D*Fack)",
		Table: &stats.Table{Columns: []string{"n", "D", "wPAXOS", "floodPAXOS", "gatherall", "flood/wPAXOS"}},
	}
	e.OK = true
	timeOf := func(g *graph.Graph, factory amac.Factory) float64 {
		inputs := mixedInputs(g.N())
		res := runChecked(e, sim.Config{
			Graph:           g,
			Inputs:          inputs,
			Factory:         factory,
			Scheduler:       sim.Synchronous{},
			StopWhenDecided: true,
		})
		return float64(res.MaxDecideTime)
	}
	var ns, floods, trees []float64
	for _, arms := range []int{4, 16, 48} {
		g := graph.StarOfLines(arms, 2) // diameter 4 at every n
		n := g.N()
		tw := timeOf(g, wpaxos.NewFactory(wpaxos.Config{N: n}))
		tf := timeOf(g, floodpaxos.NewFactory(n))
		tg := timeOf(g, gatherall.NewFactory(n))
		e.Table.AddRow(n, g.Diameter(), tw, tf, tg, tf/tw)
		ns = append(ns, float64(n))
		floods = append(floods, tf)
		trees = append(trees, tw)
	}
	fslope, _ := stats.LinFit(ns, floods)
	tslope, _ := stats.LinFit(ns, trees)
	e.Notes = append(e.Notes,
		fmt.Sprintf("flooding grows at %.3f time/node; wPAXOS at %.3f time/node (fixed D=4)", fslope, tslope))
	// The shape claim: flooding clearly linear in n, wPAXOS much flatter.
	if fslope < 0.5 || tslope > fslope/3 {
		e.OK = false
	}
	return e
}

// E8TagGrowth reproduces Lemma 4.4: proposal tags stay small (polynomial
// in n; empirically near-constant).
func E8TagGrowth() *Experiment {
	e := &Experiment{
		ID:    "E8",
		Title: "Proposal-number tags stay bounded",
		Claim: "Lemma 4.4: wPAXOS proposal tags are bounded by a polynomial in n (so numbers fit in O(log n)-bit messages)",
		Table: &stats.Table{Columns: []string{"n", "max tag (across seeds)", "n^2 budget"}},
	}
	e.OK = true
	for _, n := range []int{8, 16, 32, 64} {
		maxTag := int64(0)
		for seed := int64(0); seed < 4; seed++ {
			g := graph.RandomConnected(n, 0.1, int64(n)*31+seed)
			inputs := mixedInputs(n)
			var nodes []*wpaxos.Node
			factory := func(nc amac.NodeConfig) amac.Algorithm {
				nd := wpaxos.New(nc.Input, wpaxos.Config{N: n})
				nodes = append(nodes, nd)
				return nd
			}
			res := sim.Run(sim.Config{
				Graph:           g,
				Inputs:          inputs,
				Factory:         factory,
				Scheduler:       sim.NewRandom(3, seed*17+1),
				StopWhenDecided: true,
			})
			rep := consensus.Check(inputs, res)
			if !rep.OK() {
				e.OK = false
			}
			for _, nd := range nodes {
				if nd.MaxTagUsed() > maxTag {
					maxTag = nd.MaxTagUsed()
				}
			}
		}
		if maxTag > int64(n*n) {
			e.OK = false
		}
		e.Table.AddRow(n, maxTag, n*n)
	}
	e.Notes = append(e.Notes, "tags come from change notifications (2 numbers per notification); they stay far below the O(n^2) budget")
	return e
}

// E9AggregationAudit reproduces Lemma 4.2: the proposer never counts more
// affirmative responses than acceptors generated, despite aggregation in
// trees that are still stabilizing.
func E9AggregationAudit() *Experiment {
	e := &Experiment{
		ID:    "E9",
		Title: "Aggregation safety: c(p) <= a(p) for every proposition",
		Claim: "Lemma 4.2: tree-aggregated response counting never over-counts",
		Table: &stats.Table{Columns: []string{"topology", "seeds", "propositions audited", "violations"}},
	}
	e.OK = true
	cases := []struct {
		name string
		mk   func(seed int64) *graph.Graph
	}{
		{"random-20", func(seed int64) *graph.Graph { return graph.RandomConnected(20, 0.12, seed) }},
		{"line-16", func(int64) *graph.Graph { return graph.Line(16) }},
		{"grid-5x5", func(int64) *graph.Graph { return graph.Grid(5, 5) }},
		{"star-lines", func(int64) *graph.Graph { return graph.StarOfLines(6, 3) }},
	}
	const seeds = 6
	for _, tc := range cases {
		props, violations := 0, 0
		for seed := int64(0); seed < seeds; seed++ {
			g := tc.mk(seed)
			audit := wpaxos.NewCountAudit()
			inputs := mixedInputs(g.N())
			res := sim.Run(sim.Config{
				Graph:           g,
				Inputs:          inputs,
				Factory:         wpaxos.NewFactory(wpaxos.Config{N: g.N(), Audit: audit}),
				Scheduler:       sim.NewRandom(1+seed%5, seed*7+3),
				StopWhenDecided: true,
			})
			rep := consensus.Check(inputs, res)
			if !rep.OK() {
				e.OK = false
			}
			props += audit.Propositions()
			violations += len(audit.Violations())
		}
		if violations > 0 {
			e.OK = false
		}
		e.Table.AddRow(tc.name, seeds, props, violations)
	}
	return e
}

// E10UnknownParticipants reproduces the Section 4.1 separation: two-phase
// consensus succeeds in single-hop networks with no knowledge of n or the
// participants — impossible in the asynchronous broadcast model of Abboud
// et al.
func E10UnknownParticipants() *Experiment {
	e := &Experiment{
		ID:    "E10",
		Title: "Single-hop consensus with unknown participants",
		Claim: "Sec 4.1: acknowledged broadcast enables consensus without knowledge of n or the participant set (a gap with [Abboud et al.])",
		Table: &stats.Table{Columns: []string{"n (hidden from algorithm)", "scheduler", "runs", "all correct", "worst decide/Fack"}},
	}
	e.OK = true
	scheds := []struct {
		name string
		mk   func(seed int64) sim.Scheduler
		fack int64
	}{
		{"random(F=6)", func(seed int64) sim.Scheduler { return sim.NewRandom(6, seed) }, 6},
		{"maxdelay(F=6)", func(int64) sim.Scheduler { return sim.MaxDelay{F: 6} }, 6},
		{"edgeorder", func(int64) sim.Scheduler { return &sim.EdgeOrder{MaxDegree: 64} }, 65},
	}
	for _, n := range []int{3, 9, 33, 64} {
		for _, sc := range scheds {
			allOK := true
			worst := 0.0
			const runs = 4
			for seed := int64(0); seed < runs; seed++ {
				inputs := make([]amac.Value, n)
				for i := range inputs {
					inputs[i] = amac.Value((i + int(seed)) % 2)
				}
				// The factory closes over nothing: the algorithm
				// learns neither n nor who participates.
				res := sim.Run(sim.Config{
					Graph:           graph.Clique(n),
					Inputs:          inputs,
					Factory:         twophase.Factory,
					Scheduler:       sc.mk(seed),
					StopWhenDecided: true,
					Audit:           true,
				})
				rep := consensus.Check(inputs, res)
				if !rep.OK() {
					allOK = false
					e.OK = false
				}
				if r := float64(res.MaxDecideTime) / float64(sc.fack); r > worst {
					worst = r
				}
			}
			e.Table.AddRow(n, sc.name, runs, boolMark(allOK), worst)
		}
	}
	e.Notes = append(e.Notes, "worst decide/Fack stays bounded by a small constant across sizes: O(Fack), independent of n")
	return e
}
