package exp

import (
	"fmt"
	"strings"
	"testing"
)

// The experiment drivers are the repository's deliverable (d): each one
// regenerates a paper result. These tests run every driver and require its
// shape check to pass — they are integration tests over the whole stack.

func checkExperiment(t *testing.T, e *Experiment) {
	t.Helper()
	if !e.OK {
		t.Fatalf("%s failed its shape check:\n%s", e.ID, e.Render())
	}
	out := e.Render()
	for _, want := range []string{e.ID, "paper claim", "PASS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("%s render missing %q:\n%s", e.ID, want, out)
		}
	}
	if len(e.Table.Rows) == 0 {
		t.Fatalf("%s produced no rows", e.ID)
	}
}

func TestE1(t *testing.T)  { checkExperiment(t, E1FLP()) }
func TestE2(t *testing.T)  { checkExperiment(t, E2Anonymous()) }
func TestE3(t *testing.T)  { checkExperiment(t, E3SizeKnowledge()) }
func TestE4(t *testing.T)  { checkExperiment(t, E4TimeLowerBound()) }
func TestE5(t *testing.T)  { checkExperiment(t, E5TwoPhase()) }
func TestE6(t *testing.T)  { checkExperiment(t, E6WPaxos()) }
func TestE7(t *testing.T)  { checkExperiment(t, E7FloodingBaseline()) }
func TestE8(t *testing.T)  { checkExperiment(t, E8TagGrowth()) }
func TestE9(t *testing.T)  { checkExperiment(t, E9AggregationAudit()) }
func TestE10(t *testing.T) { checkExperiment(t, E10UnknownParticipants()) }
func TestE11(t *testing.T) { checkExperiment(t, E11UnreliableLinks()) }
func TestE12(t *testing.T) { checkExperiment(t, E12Randomization()) }
func TestE13(t *testing.T) { checkExperiment(t, E13TreePriorityAblation()) }

func TestAllOrdered(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	all := All()
	if len(all) != 13 {
		t.Fatalf("All() returned %d experiments, want 13", len(all))
	}
	for i, e := range all {
		if want := fmt.Sprintf("E%d", i+1); e.ID != want {
			t.Fatalf("experiment %d has id %q, want %q", i, e.ID, want)
		}
	}
}
