package exp

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/core/twophase"
	"github.com/absmac/absmac/internal/core/wpaxos"
	"github.com/absmac/absmac/internal/ext/benor"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
	"github.com/absmac/absmac/internal/stats"
)

// The paper's conclusion names three future-work directions; E11..E13
// reproduce the two that are implementable today as extensions of the
// model and algorithms (unreliable links; randomization), plus an ablation
// of the design choice Lemma 4.5's analysis singles out (the tree queue's
// leader priority).

// E11UnreliableLinks exercises the dual-graph model variant: reliable
// topology plus an overlay of unreliable edges that deliver at the
// scheduler's whim. The measured result makes the paper's open question
// concrete: wPAXOS's *safety* (agreement, validity, Lemma 4.2 counting) is
// untouched by arbitrary extra deliveries, but its *liveness* genuinely
// breaks — the tree service can adopt a parent across an unreliable edge,
// and an acceptor response routed over that edge is sent exactly once and
// may be lost, stalling the count. "Optimizing our multihop upper bound to
// work in the presence of such links ... is left an open question" (Sec 2);
// this experiment is that question, executable.
func E11UnreliableLinks() *Experiment {
	e := &Experiment{
		ID:    "E11",
		Title: "Extension: unreliable links (dual-graph model) — safety holds, liveness is the open question",
		Claim: "Sec 2/5: the dual-graph abstract MAC layer variant; adapting the multihop upper bound to it is explicitly open",
		Table: &stats.Table{Columns: []string{"topology", "overlay edges", "loss prob", "runs", "safety OK", "Lemma 4.2 OK", "terminated"}},
	}
	e.OK = true
	cases := []struct {
		name    string
		g       *graph.Graph
		overlay int
	}{
		{"line-12", graph.Line(12), 8},
		{"grid-4x4", graph.Grid(4, 4), 10},
		{"random-16", graph.RandomConnected(16, 0.1, 21), 12},
	}
	for _, tc := range cases {
		for _, p := range []float64{0.2, 0.8} {
			const runs = 4
			safeAll, auditOK := true, true
			terminated := 0
			for seed := int64(0); seed < runs; seed++ {
				overlay := graph.RandomOverlay(tc.g, tc.overlay, seed+50)
				inputs := mixedInputs(tc.g.N())
				audit := wpaxos.NewCountAudit()
				res := sim.Run(sim.Config{
					Graph:           tc.g,
					Unreliable:      overlay,
					Inputs:          inputs,
					Factory:         wpaxos.NewFactory(wpaxos.Config{N: tc.g.N(), Audit: audit}),
					Scheduler:       sim.NewLossy(sim.NewRandom(4, seed*3+1), p, seed*7+2),
					StopWhenDecided: true,
					Audit:           true,
				})
				rep := consensus.Check(inputs, res)
				if !rep.Agreement || (rep.SomeoneDecided && !rep.Validity) {
					safeAll = false
					e.OK = false
				}
				if len(audit.Violations()) != 0 {
					auditOK = false
					e.OK = false
				}
				if rep.Termination {
					terminated++
				}
			}
			e.Table.AddRow(tc.name, tc.overlay, p, runs, boolMark(safeAll), boolMark(auditOK), fmt.Sprintf("%d/%d", terminated, runs))
		}
	}
	e.Notes = append(e.Notes,
		"safety (agreement, validity, response counting) survives arbitrary extra deliveries unconditionally",
		"liveness does NOT always survive: a response routed to a parent across an unreliable edge is sent once and can be lost —",
		"the stalls in the 'terminated' column are the paper's open question (optimizing wPAXOS for unreliable links) made concrete")
	return e
}

// E12Randomization contrasts the deterministic impossibility (Theorem 3.2)
// with a Ben-Or-style randomized algorithm: under injected crash failures
// the two-phase algorithm stalls on some schedules while the randomized
// one keeps terminating, with safety unconditional for both.
func E12Randomization() *Experiment {
	e := &Experiment{
		ID:    "E12",
		Title: "Extension: randomization circumvents the crash impossibility",
		Claim: "Sec 5 future work: randomized algorithms may circumvent the crash-failure lower bound (Thm 3.2)",
		Table: &stats.Table{Columns: []string{"n", "f", "crash schedules", "two-phase stalls", "Ben-Or decides", "safety violations"}},
	}
	e.OK = true
	for _, tc := range []struct{ n, f int }{{3, 1}, {5, 2}, {7, 3}} {
		const runs = 8
		stalls, decides, unsafe := 0, 0, 0
		for seed := int64(0); seed < runs; seed++ {
			inputs := make([]amac.Value, tc.n)
			for i := range inputs {
				inputs[i] = amac.Value((i + int(seed)) % 2)
			}
			crashes := []sim.Crash{{Node: int(seed) % tc.n, At: 1 + seed%4}}
			if tc.f >= 2 {
				crashes = append(crashes, sim.Crash{Node: (int(seed) + 1) % tc.n, At: 2 + seed%5})
			}
			// Deterministic two-phase under the crash schedule.
			resTP := sim.Run(sim.Config{
				Graph:     graph.Clique(tc.n),
				Inputs:    inputs,
				Factory:   twophase.Factory,
				Scheduler: &sim.EdgeOrder{MaxDegree: tc.n},
				Crashes:   crashes,
			})
			repTP := consensus.Check(inputs, resTP)
			if !repTP.Agreement || (repTP.SomeoneDecided && !repTP.Validity) {
				unsafe++
			}
			if !repTP.Termination {
				stalls++
			}
			// Randomized Ben-Or under the same schedule.
			resBO := sim.Run(sim.Config{
				Graph:           graph.Clique(tc.n),
				Inputs:          inputs,
				Factory:         benor.NewFactory(benor.Config{N: tc.n, F: tc.f, Seed: seed}),
				Scheduler:       &sim.EdgeOrder{MaxDegree: tc.n},
				Crashes:         crashes,
				StopWhenDecided: true,
				MaxEvents:       2_000_000,
			})
			repBO := consensus.Check(inputs, resBO)
			if !repBO.Agreement || (repBO.SomeoneDecided && !repBO.Validity) {
				unsafe++
			}
			if repBO.Termination && !resBO.Cutoff {
				decides++
			}
		}
		if decides != runs || unsafe != 0 {
			e.OK = false
		}
		if stalls == 0 {
			e.Notes = append(e.Notes, fmt.Sprintf("n=%d: no two-phase stall observed under these schedules (Thm 3.2 still guarantees one exists; see E1)", tc.n))
		}
		e.Table.AddRow(tc.n, tc.f, runs, stalls, decides, unsafe)
	}
	e.Notes = append(e.Notes, "Ben-Or terminates with probability 1 under up to f < n/2 crashes; both algorithms keep agreement and validity unconditionally")
	return e
}

// E13TreePriorityAblation ablates the tree queue's leader-first pinning,
// the optimization Lemma 4.5's stabilization argument leans on.
func E13TreePriorityAblation() *Experiment {
	e := &Experiment{
		ID:    "E13",
		Title: "Ablation: the tree queue's leader priority",
		Claim: "Sec 4.2: leader-prioritized search messages let the leader's tree complete soon after election stabilizes",
		Table: &stats.Table{Columns: []string{"topology", "n", "decide w/ priority", "decide w/o priority", "tree stab w/", "tree stab w/o"}},
	}
	e.OK = true
	run := func(g *graph.Graph, noPri bool, seed int64) (decide, treeStab float64, ok bool) {
		inputs := mixedInputs(g.N())
		var nodes []*wpaxos.Node
		factory := func(nc amac.NodeConfig) amac.Algorithm {
			nd := wpaxos.New(nc.Input, wpaxos.Config{N: g.N(), NoTreePriority: noPri})
			nodes = append(nodes, nd)
			return nd
		}
		// Put the max id far from the middle via reversed ids so the
		// leader tree must cross the diameter after election.
		ids := make([]amac.NodeID, g.N())
		for i := range ids {
			ids[i] = amac.NodeID(g.N() - i)
		}
		res := sim.Run(sim.Config{
			Graph:           g,
			Inputs:          inputs,
			Factory:         factory,
			Scheduler:       sim.NewRandom(4, seed),
			IDs:             ids,
			StopWhenDecided: true,
		})
		rep := consensus.Check(inputs, res)
		var ts int64
		for _, nd := range nodes {
			if _, tr := nd.StabilizationTimes(); tr > ts {
				ts = tr
			}
		}
		return float64(res.MaxDecideTime), float64(ts), rep.OK()
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"line-25", graph.Line(25)},
		{"grid-6x6", graph.Grid(6, 6)},
	} {
		var with, without, tsWith, tsWithout []float64
		for seed := int64(0); seed < 5; seed++ {
			d, ts, ok := run(tc.g, false, seed)
			if !ok {
				e.OK = false
			}
			with = append(with, d)
			tsWith = append(tsWith, ts)
			d, ts, ok = run(tc.g, true, seed)
			if !ok {
				e.OK = false // correctness must survive the ablation
			}
			without = append(without, d)
			tsWithout = append(tsWithout, ts)
		}
		e.Table.AddRow(tc.name, tc.g.N(), stats.Median(with), stats.Median(without), stats.Median(tsWith), stats.Median(tsWithout))
	}
	e.Notes = append(e.Notes,
		"correctness survives the ablation (the priority is purely a liveness optimization);",
		"the measured effect on these sizes is modest because the non-leader tree backlog is small; the asymptotic gap appears as n grows")
	return e
}
