// Package exp contains the experiment drivers behind EXPERIMENTS.md: one
// function per experiment (E1..E10 in DESIGN.md), each reproducing one of
// the paper's theorems, figures, or complexity claims as a measured table
// plus a pass/fail shape check. The drivers are shared by cmd/benchsuite
// (which regenerates the full report) and bench_test.go (one testing.B
// target per experiment).
package exp

import (
	"fmt"
	"strings"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/stats"
)

// Experiment is one reproduced result.
type Experiment struct {
	// ID is the DESIGN.md experiment id, e.g. "E5".
	ID string
	// Title names the experiment.
	Title string
	// Claim quotes the paper's claim being checked.
	Claim string
	// Table holds the measured rows.
	Table *stats.Table
	// Notes carries derived observations (fit slopes, envelopes, ...).
	Notes []string
	// OK reports whether the shape check passed.
	OK bool
}

// Render returns a human-readable report section.
func (e *Experiment) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", e.ID, e.Title)
	fmt.Fprintf(&b, "paper claim: %s\n", e.Claim)
	status := "PASS"
	if !e.OK {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "shape check: %s\n\n", status)
	b.WriteString(e.Table.Render())
	for _, n := range e.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// All runs every experiment in order. It is the driver behind
// cmd/benchsuite.
func All() []*Experiment {
	return []*Experiment{
		E1FLP(),
		E2Anonymous(),
		E3SizeKnowledge(),
		E4TimeLowerBound(),
		E5TwoPhase(),
		E6WPaxos(),
		E7FloodingBaseline(),
		E8TagGrowth(),
		E9AggregationAudit(),
		E10UnknownParticipants(),
		E11UnreliableLinks(),
		E12Randomization(),
		E13TreePriorityAblation(),
	}
}

// mixedInputs returns the canonical alternating 0/1 assignment.
func mixedInputs(n int) []amac.Value {
	inputs := make([]amac.Value, n)
	for i := range inputs {
		inputs[i] = amac.Value(i % 2)
	}
	return inputs
}

func boolMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
