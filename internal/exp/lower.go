package exp

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/core/twophase"
	"github.com/absmac/absmac/internal/core/wpaxos"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/lowerbound"
	"github.com/absmac/absmac/internal/sim"
	"github.com/absmac/absmac/internal/stats"
)

// E1FLP reproduces Theorem 3.2 (and Lemma 3.1's valency machinery): on a
// 2-node clique it classifies every initial configuration of the two-phase
// algorithm by exhaustive valid-step exploration, then exhibits a one-crash
// schedule that reaches a quiescent undecided configuration.
func E1FLP() *Experiment {
	e := &Experiment{
		ID:    "E1",
		Title: "FLP generalization: crash failures forbid deterministic consensus",
		Claim: "Thm 3.2: no deterministic algorithm solves consensus with 1 crash failure; Lemma 3.1: bivalence persists under valid steps",
		Table: &stats.Table{Columns: []string{"inputs", "valency (0 crashes)", "dead w/o crash", "dead w/ 1 crash", "configs"}},
	}
	e.OK = true
	const n = 2
	foundBivalent := false
	foundCrashStall := false
	for mask := 0; mask < 1<<n; mask++ {
		inputs := make([]amac.Value, n)
		for i := range inputs {
			if mask&(1<<i) != 0 {
				inputs[i] = 1
			}
		}
		noCrash := &lowerbound.Explorer{N: n, Factory: twophase.Factory, Inputs: inputs}
		v0 := noCrash.Valency(nil)
		visited := noCrash.Visited()
		oneCrash := &lowerbound.Explorer{N: n, Factory: twophase.Factory, Inputs: inputs, MaxCrashes: 1}
		v1 := oneCrash.Valency(nil)

		if v0.Bivalent() {
			foundBivalent = true
		}
		if v0.Dead || v0.Truncated {
			e.OK = false
		}
		if v1.Dead {
			foundCrashStall = true
		}
		e.Table.AddRow(fmt.Sprintf("%v", inputs), v0.String(), boolMark(v0.Dead), boolMark(v1.Dead), visited)
	}
	if !foundBivalent || !foundCrashStall {
		e.OK = false
	}
	if schedule, ok := lowerbound.FindStallingSchedule(n, twophase.Factory, []amac.Value{0, 1}, 1, 30); ok {
		e.Notes = append(e.Notes, fmt.Sprintf("one-crash stalling schedule: %v", schedule))
	} else {
		e.OK = false
		e.Notes = append(e.Notes, "no stalling schedule found (unexpected)")
	}
	e.Notes = append(e.Notes,
		"a bivalent initial configuration exists and one crash suffices to freeze the system undecided,",
		"while without crashes every schedule decides (Thm 4.1's termination, checked exhaustively)")
	return e
}

// E2Anonymous reproduces Theorem 3.3 / Figure 1.
func E2Anonymous() *Experiment {
	e := &Experiment{
		ID:    "E2",
		Title: "Figure 1: anonymous consensus impossible (even knowing n and D)",
		Claim: "Thm 3.3: no anonymous algorithm solves consensus on all networks of a given diameter and size",
		Table: &stats.Table{Columns: []string{"D", "n'", "diam(A)", "diam(B)", "control on B", "violation in A", "gadget decisions", "id reads"}},
	}
	e.OK = true
	for _, tc := range []struct{ d, n int }{{6, 6}, {8, 40}, {10, 64}} {
		res, err := lowerbound.RunAnonImpossibility(tc.d, tc.n)
		if err != nil {
			e.OK = false
			e.Notes = append(e.Notes, fmt.Sprintf("D=%d: %v", tc.d, err))
			continue
		}
		if !res.ControlOK || !res.ViolationInA || res.IDReads != 0 {
			e.OK = false
		}
		e.Table.AddRow(tc.d, res.Fig.N, res.Fig.DiamA, res.Fig.DiamB,
			boolMark(res.ControlOK), boolMark(res.ViolationInA),
			fmt.Sprintf("%d vs %d", res.Gadget0Decision, res.Gadget1Decision), res.IDReads)
	}
	e.Notes = append(e.Notes,
		"the anonymous min-flood algorithm is correct on the threefold cover B yet splits on network A",
		"diam(B) is D+1..D+2 in our reconstruction of the cover (see DESIGN.md); both runs use a common diameter bound")
	return e
}

// E3SizeKnowledge reproduces Theorem 3.9 / Figure 2.
func E3SizeKnowledge() *Experiment {
	e := &Experiment{
		ID:    "E3",
		Title: "Figure 2: consensus impossible without knowledge of n",
		Claim: "Thm 3.9: even with unique ids and known D, consensus is impossible in multihop networks without knowing n",
		Table: &stats.Table{Columns: []string{"D", "|K_D|", "control on line", "split-brain in K_D", "line decisions", "gatherall(n) on K_D"}},
	}
	e.OK = true
	for _, d := range []int{2, 4, 6, 8} {
		res, err := lowerbound.RunSizeImpossibility(d)
		if err != nil {
			e.OK = false
			continue
		}
		if !res.ControlLineOK || !res.ViolationInKD || !res.ControlWithNOK {
			e.OK = false
		}
		e.Table.AddRow(d, res.KD.G.N(), boolMark(res.ControlLineOK), boolMark(res.ViolationInKD),
			fmt.Sprintf("%d vs %d", res.L1Decision, res.L2Decision), boolMark(res.ControlWithNOK))
	}
	e.Notes = append(e.Notes,
		"the n-oblivious gatherer behaves identically on the silenced K_D lines and the standalone line (Lemma 3.8's indistinguishability)",
		"restoring knowledge of n (gatherall) removes the counterexample: it just waits out the silence")
	return e
}

// E4TimeLowerBound reproduces Theorem 3.10.
func E4TimeLowerBound() *Experiment {
	e := &Experiment{
		ID:    "E4",
		Title: "Partition bound: consensus needs at least floor(D/2)*Fack time",
		Claim: "Thm 3.10: no algorithm decides in under floor(D/2)*Fack on diameter-D networks",
		Table: &stats.Table{Columns: []string{"D", "Fack", "bound", "hasty decide@", "hasty violated", "wPAXOS earliest decide"}},
	}
	e.OK = true
	for _, tc := range []struct {
		d    int
		fack int64
	}{{4, 2}, {8, 2}, {16, 4}, {32, 4}} {
		part, err := lowerbound.RunPartition(tc.d, tc.fack)
		if err != nil {
			e.OK = false
			continue
		}
		// A correct algorithm on the same instance: earliest decision
		// must respect the bound.
		n := tc.d + 1
		inputs := mixedInputs(n)
		res := sim.Run(sim.Config{
			Graph:           graph.Line(n),
			Inputs:          inputs,
			Factory:         wpaxos.NewFactory(wpaxos.Config{N: n}),
			Scheduler:       sim.MaxDelay{F: tc.fack},
			StopWhenDecided: true,
		})
		rep := consensus.Check(inputs, res)
		earliest := res.MaxDecideTime
		for i, dec := range res.Decided {
			if dec && res.DecideTime[i] < earliest {
				earliest = res.DecideTime[i]
			}
		}
		if !part.HastyViolated || part.HastyDecideTime >= part.Bound || !rep.OK() || earliest < part.Bound {
			e.OK = false
		}
		e.Table.AddRow(tc.d, tc.fack, part.Bound, part.HastyDecideTime, boolMark(part.HastyViolated), earliest)
	}
	e.Notes = append(e.Notes,
		"an algorithm deciding before the bound splits the two-valued line (partition argument);",
		"wPAXOS's earliest decision always lands at or beyond floor(D/2)*Fack under the max-delay scheduler")
	return e
}
