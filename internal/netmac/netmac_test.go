package netmac

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/baseline/gatherall"
	"github.com/absmac/absmac/internal/core/twophase"
	"github.com/absmac/absmac/internal/core/wpaxos"
	"github.com/absmac/absmac/internal/graph"
)

var registerOnce sync.Once

func register() {
	registerOnce.Do(func() {
		RegisterMessages(
			twophase.Phase1{}, twophase.Phase2{},
			wpaxos.Combined{},
			gatherall.PairMsg{},
		)
	})
}

func mixed(n int) []amac.Value {
	inputs := make([]amac.Value, n)
	for i := range inputs {
		inputs[i] = amac.Value(i % 2)
	}
	return inputs
}

func TestTwoPhaseOverUDP(t *testing.T) {
	register()
	inputs := mixed(6)
	res, err := Run(context.Background(), Config{
		Graph:   graph.Clique(6),
		Inputs:  inputs,
		Factory: twophase.Factory,
		RTO:     2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report(inputs)
	if !rep.OK() {
		t.Fatalf("%v", rep.Errors)
	}
	if res.PacketsSent == 0 || res.BytesSent == 0 {
		t.Fatal("no wire traffic counted")
	}
}

func TestWPaxosOverUDP(t *testing.T) {
	register()
	for i, g := range []*graph.Graph{graph.Line(5), graph.Grid(3, 3)} {
		inputs := mixed(g.N())
		audit := wpaxos.NewCountAudit()
		res, err := Run(context.Background(), Config{
			Graph:   g,
			Inputs:  inputs,
			Factory: wpaxos.NewFactory(wpaxos.Config{N: g.N(), Audit: audit}),
			RTO:     2 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		rep := res.Report(inputs)
		if !rep.OK() {
			t.Fatalf("case %d: %v", i, rep.Errors)
		}
		if v := audit.Violations(); len(v) != 0 {
			t.Fatalf("case %d: Lemma 4.2 violated over UDP: %v", i, v)
		}
	}
}

func TestGatherAllOverUDP(t *testing.T) {
	register()
	g := graph.Ring(7)
	inputs := mixed(7)
	res, err := Run(context.Background(), Config{
		Graph:   g,
		Inputs:  inputs,
		Factory: gatherall.NewFactory(7),
		RTO:     2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report(inputs)
	if !rep.OK() || rep.Value != 0 {
		t.Fatalf("report value=%d errors=%v", rep.Value, rep.Errors)
	}
}

func TestSingleNodeOverUDP(t *testing.T) {
	register()
	inputs := []amac.Value{1}
	res, err := Run(context.Background(), Config{
		Graph:   graph.Clique(1),
		Inputs:  inputs,
		Factory: twophase.Factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report(inputs)
	if !rep.OK() || rep.Value != 1 {
		t.Fatalf("single node: %v", rep.Errors)
	}
}

// silent never decides; exercises the timeout path.
type silent struct{}

func (silent) Start(amac.API)         {}
func (silent) OnReceive(amac.Message) {}
func (silent) OnAck(m amac.Message)   {}

func TestTimeoutOverUDP(t *testing.T) {
	register()
	inputs := mixed(2)
	_, err := Run(context.Background(), Config{
		Graph:   graph.Clique(2),
		Inputs:  inputs,
		Factory: func(amac.NodeConfig) amac.Algorithm { return silent{} },
		Timeout: 50 * time.Millisecond,
	})
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestValidationPanics(t *testing.T) {
	register()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil graph", Config{}},
		{"bad inputs", Config{Graph: graph.Clique(2), Inputs: mixed(3), Factory: twophase.Factory}},
		{"nil factory", Config{Graph: graph.Clique(2), Inputs: mixed(2)}},
		{"bad ids", Config{Graph: graph.Clique(2), Inputs: mixed(2), Factory: twophase.Factory, IDs: []amac.NodeID{1, 2, 3}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			Run(context.Background(), tc.cfg)
		})
	}
}

// TestMetricsExposition mirrors the live substrate's exposition test over
// the UDP runtime: stamped snapshots with the wire-level counters.
func TestMetricsExposition(t *testing.T) {
	register()
	var buf bytes.Buffer
	inputs := mixed(5)
	res, err := Run(context.Background(), Config{
		Graph:           graph.Clique(5),
		Inputs:          inputs,
		Factory:         twophase.Factory,
		RTO:             2 * time.Millisecond,
		MetricsInterval: time.Millisecond,
		MetricsOut:      &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report(inputs).OK() {
		t.Fatalf("run not OK: %v", res.Report(inputs).Errors)
	}
	out := buf.String()
	if out == "" {
		t.Skip("run finished before the first exposition tick")
	}
	for _, want := range []string{"elapsed=", "net_broadcasts ", "net_packets_sent ", "net_decided "} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition output missing %q:\n%s", want, out)
		}
	}
}
