// Package netmac is the repository's third substrate for the abstract MAC
// layer model: the same amac.Algorithm state machines run over real UDP
// sockets on the loopback interface, with gob-encoded wire messages and an
// application-level reliability layer (per-neighbor retransmission until
// acknowledged) that supplies exactly the model's contract — a broadcast
// reaches every neighbor, then the sender gets its acknowledgment.
//
// This is the paper's deployment claim taken literally (Section 1: "our
// upper bounds can be easily implemented in real wireless devices on
// existing MAC layers"): the unreliable datagram transport plays the radio,
// the retransmission layer plays the MAC, and the algorithms are byte-for-
// byte the ones analyzed on the simulator. Fack is emergent (finite but
// unknown), which is all the model requires.
package netmac

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/live"
	"github.com/absmac/absmac/internal/mailbox"
	"github.com/absmac/absmac/internal/metrics"
)

// envelope wraps the algorithm message for gob: concrete message types
// must be registered via RegisterMessages before running.
type envelope struct {
	M amac.Message
}

// RegisterMessages registers concrete message types with gob so they can
// travel inside envelopes. Call it once per process for every message type
// an algorithm broadcasts (passing zero values is fine).
func RegisterMessages(ms ...amac.Message) {
	for _, m := range ms {
		gob.Register(m)
	}
}

// packet is the wire format.
type packet struct {
	Ack     bool
	Node    int   // sender index for data; acking receiver index for acks
	Seq     int64 // the broadcast sequence being carried / acknowledged
	Payload []byte
}

// Config describes one UDP execution.
type Config struct {
	// Graph, Inputs, Factory, IDs: as in the other substrates.
	Graph   *graph.Graph
	Inputs  []amac.Value
	Factory amac.Factory
	IDs     []amac.NodeID
	// RTO is the retransmission interval; 0 means DefaultRTO.
	RTO time.Duration
	// Timeout bounds the whole run; 0 means DefaultTimeout.
	Timeout time.Duration
	// MetricsInterval and MetricsOut enable periodic flight-recorder
	// exposition exactly as in the live substrate (live.ExposeMetrics),
	// extended with the wire-level counters.
	MetricsInterval time.Duration
	MetricsOut      io.Writer
}

// DefaultRTO is the retransmission interval when Config.RTO is zero.
const DefaultRTO = 5 * time.Millisecond

// DefaultTimeout bounds runs when Config.Timeout is zero.
const DefaultTimeout = 30 * time.Second

// ErrTimeout reports that the run timed out before every node decided.
var ErrTimeout = errors.New("netmac: run timed out before all nodes decided")

// Result extends the live substrate's result with wire-level counters.
type Result struct {
	live.Result
	// PacketsSent counts UDP datagrams sent (data and acks).
	PacketsSent int64
	// BytesSent counts UDP payload bytes sent.
	BytesSent int64
	// Retransmits counts data datagrams beyond each neighbor's first.
	Retransmits int64
}

// event is a mailbox entry.
type event struct {
	ack bool
	msg amac.Message
}

// node is the per-node network runtime.
type node struct {
	idx   int
	conn  *net.UDPConn
	box   *mailbox.Mailbox[event]
	peers []*net.UDPAddr // by node index; nil for non-neighbors

	mu            sync.Mutex
	lastDelivered map[int]int64 // highest seq delivered, per sender
	pendingSeq    int64         // broadcast awaiting app-level acks
	pendingWait   map[int]bool  // neighbors yet to ack
	pendingMsg    amac.Message
}

type runtime struct {
	cfg     Config
	rto     time.Duration
	nodes   []*node
	clock   atomic.Int64
	started time.Time

	resMu      sync.Mutex
	res        *Result
	undecided  atomic.Int64
	allDecided chan struct{}

	ctx context.Context
	wg  sync.WaitGroup
}

type api struct {
	rt       *runtime
	nd       *node
	inflight bool
}

func (a *api) ID() amac.NodeID {
	ids := a.rt.cfg.IDs
	return ids[a.nd.idx]
}

func (a *api) Now() int64 { return a.rt.clock.Add(1) }

func (a *api) Broadcast(m amac.Message) bool {
	if m == nil {
		panic(fmt.Sprintf("netmac: node %d broadcast a nil message", a.nd.idx))
	}
	if a.inflight {
		return false
	}
	a.inflight = true
	a.rt.broadcast(a.nd, m)
	return true
}

func (a *api) Decide(v amac.Value) {
	rt := a.rt
	i := a.nd.idx
	rt.resMu.Lock()
	already := rt.res.Decided[i]
	if !already {
		rt.res.Decided[i] = true
		rt.res.Decision[i] = v
		rt.res.DecideTime[i] = time.Since(rt.started)
	}
	rt.resMu.Unlock()
	if !already && rt.undecided.Add(-1) == 0 {
		close(rt.allDecided)
	}
}

// broadcast starts the reliability loop for one broadcast: transmit to
// every unacked neighbor each RTO until all acked, then deliver the MAC
// ack to the sender's own mailbox.
func (rt *runtime) broadcast(nd *node, m amac.Message) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(envelope{M: m}); err != nil {
		panic(fmt.Sprintf("netmac: encoding %T: %v (did you RegisterMessages it?)", m, err))
	}
	payload := buf.Bytes()

	nd.mu.Lock()
	nd.pendingSeq++
	seq := nd.pendingSeq
	nd.pendingWait = make(map[int]bool)
	for v, addr := range nd.peers {
		if addr != nil {
			nd.pendingWait[v] = true
		}
	}
	nd.pendingMsg = m
	done := len(nd.pendingWait) == 0
	nd.mu.Unlock()

	rt.resMu.Lock()
	rt.res.Broadcasts++
	rt.resMu.Unlock()

	if done {
		// No neighbors (n=1): ack immediately.
		nd.box.Push(event{ack: true, msg: m})
		return
	}

	pkt := packet{Node: nd.idx, Seq: seq, Payload: payload}
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		first := true
		ticker := time.NewTicker(rt.rto)
		defer ticker.Stop()
		for {
			nd.mu.Lock()
			if nd.pendingSeq != seq {
				nd.mu.Unlock()
				return // superseded (cannot happen: one broadcast at a time) or done
			}
			targets := make([]int, 0, len(nd.pendingWait))
			for v, waiting := range nd.pendingWait {
				if waiting {
					targets = append(targets, v)
				}
			}
			nd.mu.Unlock()
			if len(targets) == 0 {
				nd.box.Push(event{ack: true, msg: m})
				return
			}
			for _, v := range targets {
				rt.send(nd, nd.peers[v], pkt, !first)
			}
			first = false
			select {
			case <-ticker.C:
			case <-rt.ctx.Done():
				return
			}
		}
	}()
}

// send transmits one packet and accounts for it.
func (rt *runtime) send(nd *node, to *net.UDPAddr, pkt packet, retransmit bool) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pkt); err != nil {
		panic(fmt.Sprintf("netmac: packet encode: %v", err))
	}
	n, err := nd.conn.WriteToUDP(buf.Bytes(), to)
	if err != nil {
		return // transient send errors are just "loss"; the RTO loop retries
	}
	rt.resMu.Lock()
	rt.res.PacketsSent++
	rt.res.BytesSent += int64(n)
	if retransmit && !pkt.Ack {
		rt.res.Retransmits++
	}
	rt.resMu.Unlock()
}

// expose is the UDP substrate's exposition goroutine body: the live
// substrate's loop (live.ExposeMetrics) over the wire-level counters.
func (rt *runtime) expose(every time.Duration, w io.Writer) {
	setCounter := func(c metrics.Counter, total int64) { c.Add(total - c.Value()) }
	live.ExposeMetrics(rt.ctx, w, every, rt.started, func(reg *metrics.Registry) {
		rt.resMu.Lock()
		b, pkts, bytes, rtx := rt.res.Broadcasts, rt.res.PacketsSent, rt.res.BytesSent, rt.res.Retransmits
		var dec int64
		for _, x := range rt.res.Decided {
			if x {
				dec++
			}
		}
		rt.resMu.Unlock()
		setCounter(reg.Counter("net_broadcasts"), b)
		setCounter(reg.Counter("net_packets_sent"), pkts)
		setCounter(reg.Counter("net_bytes_sent"), bytes)
		setCounter(reg.Counter("net_retransmits"), rtx)
		reg.Gauge("net_decided").Set(dec)
	})
}

// reader is the per-node socket loop: decode packets, deliver fresh data
// (acking every data packet, fresh or not), and clear reliability state on
// acks.
func (rt *runtime) reader(nd *node) {
	defer rt.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := nd.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed: run over
		}
		var pkt packet
		if err := gob.NewDecoder(bytes.NewReader(buf[:n])).Decode(&pkt); err != nil {
			continue // garbage datagram: drop, as a radio would
		}
		if pkt.Ack {
			nd.mu.Lock()
			if pkt.Seq == nd.pendingSeq {
				delete(nd.pendingWait, pkt.Node)
			}
			nd.mu.Unlock()
			continue
		}
		sender := pkt.Node
		if sender < 0 || sender >= len(nd.peers) || nd.peers[sender] == nil {
			continue // not a neighbor: a radio would not even hear it
		}
		// Always (re-)ack data; deliver only the next fresh sequence.
		rt.send(nd, nd.peers[sender], packet{Ack: true, Node: nd.idx, Seq: pkt.Seq}, false)
		nd.mu.Lock()
		fresh := pkt.Seq == nd.lastDelivered[sender]+1
		if fresh {
			nd.lastDelivered[sender] = pkt.Seq
		}
		nd.mu.Unlock()
		if !fresh {
			continue
		}
		var env envelope
		if err := gob.NewDecoder(bytes.NewReader(pkt.Payload)).Decode(&env); err != nil {
			panic(fmt.Sprintf("netmac: payload decode: %v (unregistered message type?)", err))
		}
		nd.box.Push(event{msg: env.M})
	}
}

// Run executes the configuration over loopback UDP until every node
// decides, the context is canceled, or the timeout elapses.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		panic("netmac: Config.Graph is nil")
	}
	n := cfg.Graph.N()
	if len(cfg.Inputs) != n {
		panic(fmt.Sprintf("netmac: %d inputs for %d nodes", len(cfg.Inputs), n))
	}
	if cfg.Factory == nil {
		panic("netmac: Config.Factory is nil")
	}
	if cfg.IDs == nil {
		cfg.IDs = make([]amac.NodeID, n)
		for i := range cfg.IDs {
			cfg.IDs[i] = amac.NodeID(i + 1)
		}
	}
	if len(cfg.IDs) != n {
		panic(fmt.Sprintf("netmac: %d ids for %d nodes", len(cfg.IDs), n))
	}
	rto := cfg.RTO
	if rto <= 0 {
		rto = DefaultRTO
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	rt := &runtime{
		cfg:        cfg,
		rto:        rto,
		nodes:      make([]*node, n),
		allDecided: make(chan struct{}),
		ctx:        runCtx,
		started:    time.Now(),
		res: &Result{Result: live.Result{
			Decided:    make([]bool, n),
			Decision:   make([]amac.Value, n),
			DecideTime: make([]time.Duration, n),
		}},
	}
	rt.undecided.Store(int64(n))

	// Open every socket first, then wire neighbor addresses.
	addrs := make([]*net.UDPAddr, n)
	for i := 0; i < n; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			for j := 0; j < i; j++ {
				rt.nodes[j].conn.Close()
			}
			return nil, fmt.Errorf("netmac: listen: %w", err)
		}
		rt.nodes[i] = &node{
			idx:           i,
			conn:          conn,
			box:           mailbox.New[event](),
			lastDelivered: make(map[int]int64),
		}
		addrs[i] = conn.LocalAddr().(*net.UDPAddr)
	}
	for i := 0; i < n; i++ {
		rt.nodes[i].peers = make([]*net.UDPAddr, n)
		for _, v := range cfg.Graph.Neighbors(i) {
			rt.nodes[i].peers[v] = addrs[v]
		}
	}

	algs := make([]amac.Algorithm, n)
	for i := 0; i < n; i++ {
		algs[i] = cfg.Factory(amac.NodeConfig{ID: cfg.IDs[i], Input: cfg.Inputs[i]})
		if algs[i] == nil {
			panic(fmt.Sprintf("netmac: factory returned nil algorithm for node %d", i))
		}
	}

	for i := 0; i < n; i++ {
		rt.wg.Add(1)
		go rt.reader(rt.nodes[i])
	}
	if cfg.MetricsInterval > 0 && cfg.MetricsOut != nil {
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			rt.expose(cfg.MetricsInterval, cfg.MetricsOut)
		}()
	}
	var loops sync.WaitGroup
	for i := 0; i < n; i++ {
		loops.Add(1)
		go func(i int) {
			defer loops.Done()
			a := &api{rt: rt, nd: rt.nodes[i]}
			algs[i].Start(a)
			for {
				ev, ok := rt.nodes[i].box.Pop()
				if !ok {
					return
				}
				if ev.ack {
					a.inflight = false
					algs[i].OnAck(ev.msg)
				} else {
					algs[i].OnReceive(ev.msg)
				}
			}
		}(i)
	}

	var err error
	select {
	case <-rt.allDecided:
	case <-time.After(timeout):
		err = ErrTimeout
	case <-ctx.Done():
		err = ctx.Err()
	}

	cancel()
	for _, nd := range rt.nodes {
		nd.conn.Close() // unblocks readers
		nd.box.Close()  // unblocks event loops
	}
	loops.Wait()
	rt.wg.Wait()

	rt.resMu.Lock()
	rt.res.Elapsed = time.Since(rt.started)
	out := rt.res
	rt.resMu.Unlock()
	return out, err
}
