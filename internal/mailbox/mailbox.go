// Package mailbox provides an unbounded multi-producer single-consumer
// queue. The abstract MAC layer model has no backpressure on receives —
// deliveries happen when the scheduler says so — so both concurrent
// substrates (internal/live and internal/netmac) funnel deliveries and
// acknowledgments through one of these per node.
package mailbox

import "sync"

// Mailbox is an unbounded MPSC queue of T. Push never blocks; Pop blocks
// until an element or a Close arrives. The zero value is not usable; call
// New.
type Mailbox[T any] struct {
	mu     sync.Mutex
	items  []T
	notify chan struct{} // capacity 1: a wakeup token
	closed bool
}

// New returns an empty mailbox.
func New[T any]() *Mailbox[T] {
	return &Mailbox[T]{notify: make(chan struct{}, 1)}
}

// Push appends an item; it is a no-op after Close.
func (m *Mailbox[T]) Push(item T) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.items = append(m.items, item)
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// Pop removes the next item, blocking until one is available; ok is false
// once the mailbox is closed and drained.
func (m *Mailbox[T]) Pop() (item T, ok bool) {
	for {
		m.mu.Lock()
		if len(m.items) > 0 {
			item = m.items[0]
			m.items = m.items[1:]
			m.mu.Unlock()
			return item, true
		}
		closed := m.closed
		m.mu.Unlock()
		if closed {
			var zero T
			return zero, false
		}
		<-m.notify
	}
}

// Len returns the current queue length.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

// Close wakes any blocked Pop and rejects further Pushes. Items already
// queued are still drained by subsequent Pops.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}
