package mailbox

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestFIFO(t *testing.T) {
	m := New[int]()
	for i := 0; i < 5; i++ {
		m.Push(i)
	}
	if m.Len() != 5 {
		t.Fatalf("len = %d", m.Len())
	}
	for i := 0; i < 5; i++ {
		v, ok := m.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d,%v", i, v, ok)
		}
	}
}

func TestPopBlocksUntilPush(t *testing.T) {
	m := New[string]()
	got := make(chan string, 1)
	go func() {
		v, _ := m.Pop()
		got <- v
	}()
	time.Sleep(5 * time.Millisecond)
	m.Push("hello")
	select {
	case v := <-got:
		if v != "hello" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never woke")
	}
}

func TestCloseDrainsThenStops(t *testing.T) {
	m := New[int]()
	m.Push(1)
	m.Close()
	if v, ok := m.Pop(); !ok || v != 1 {
		t.Fatal("queued item lost on close")
	}
	if _, ok := m.Pop(); ok {
		t.Fatal("pop after drain+close returned an item")
	}
	m.Push(2) // no-op
	if _, ok := m.Pop(); ok {
		t.Fatal("push after close accepted")
	}
}

func TestCloseWakesBlockedPop(t *testing.T) {
	m := New[int]()
	done := make(chan bool, 1)
	go func() {
		_, ok := m.Pop()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	m.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pop returned an item from an empty closed mailbox")
		}
	case <-time.After(time.Second):
		t.Fatal("close never woke the blocked pop")
	}
}

func TestManyProducersOneConsumer(t *testing.T) {
	m := New[int]()
	const producers, per = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Push(p*per + i)
			}
		}(p)
	}
	seen := make(map[int]bool, producers*per)
	for len(seen) < producers*per {
		v, ok := m.Pop()
		if !ok {
			t.Fatal("mailbox closed unexpectedly")
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	wg.Wait()
}

func TestOrderPreservedProperty(t *testing.T) {
	f := func(items []int16) bool {
		m := New[int16]()
		for _, it := range items {
			m.Push(it)
		}
		for _, want := range items {
			got, ok := m.Pop()
			if !ok || got != want {
				return false
			}
		}
		return m.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
