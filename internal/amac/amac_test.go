package amac

import (
	"strings"
	"testing"
)

// idMsg is a test message reporting a fixed id count.
type idMsg int

func (m idMsg) IDCount() int { return int(m) }

func TestNoIDSemantics(t *testing.T) {
	// NoID must be distinguishable from every id the harnesses assign
	// (substrates default to index+1, so all real ids are positive).
	if NoID >= 0 {
		t.Fatalf("NoID = %d; must be negative so it never collides with assigned ids", NoID)
	}
	for _, id := range []NodeID{1, 2, 1000} {
		if id == NoID {
			t.Fatalf("assigned id %d equals NoID", id)
		}
	}
	// NodeIDs are comparable values: equal iff numerically equal.
	if NodeID(7) != NodeID(7) || NodeID(7) == NodeID(8) {
		t.Fatal("NodeID comparison misbehaves")
	}
}

func TestAuditIDCount(t *testing.T) {
	for c := 0; c <= MaxMessageIDs; c++ {
		if err := AuditIDCount(idMsg(c)); err != nil {
			t.Fatalf("IDCount=%d within bound %d, got error %v", c, MaxMessageIDs, err)
		}
	}
	err := AuditIDCount(idMsg(MaxMessageIDs + 1))
	if err == nil {
		t.Fatalf("IDCount=%d exceeds bound %d, want error", MaxMessageIDs+1, MaxMessageIDs)
	}
	if !strings.Contains(err.Error(), "exceeding the model bound") {
		t.Fatalf("audit error %q does not name the model bound", err)
	}
}

func TestValidateBinaryInputs(t *testing.T) {
	valid := [][]Value{
		{0},
		{1},
		{0, 1, 0, 1},
		{1, 1, 1},
	}
	for _, in := range valid {
		if err := ValidateBinaryInputs(in); err != nil {
			t.Errorf("ValidateBinaryInputs(%v) = %v, want nil", in, err)
		}
	}
	invalid := [][]Value{
		nil,
		{},
		{2},
		{0, 1, -1},
		{0, 7, 1},
	}
	for _, in := range invalid {
		if err := ValidateBinaryInputs(in); err == nil {
			t.Errorf("ValidateBinaryInputs(%v) = nil, want error", in)
		}
	}
}
