// Package amac defines the abstract MAC layer model contract from
// "Consensus with an Abstract MAC Layer" (Newport, PODC 2014).
//
// The model: nodes communicate over an undirected topology graph with a
// local reliable broadcast primitive. A broadcast(m) eventually delivers m
// to every neighbor of the sender, after which the sender receives an
// acknowledgment. All nondeterminism is captured by a message scheduler
// that chooses delivery and acknowledgment times, subject to a finite bound
// Fack (unknown to the nodes) on the broadcast-to-ack delay. Local
// computation takes zero time.
//
// Algorithms are written as deterministic state machines against the
// Algorithm interface and run unmodified on any substrate that implements
// the contract: the discrete-event simulator (internal/sim), the FLP
// valid-step explorer (internal/lowerbound), and the goroutine runtime
// (internal/live).
package amac

import (
	"fmt"

	"github.com/absmac/absmac/internal/metrics"
)

// NodeID identifies a node. IDs are unique and comparable. Anonymous
// algorithms (studied in Section 3.2 of the paper) simply never read them.
type NodeID int64

// NoID is the zero NodeID used where an id is absent (for example in
// anonymous executions or unset parent pointers).
const NoID NodeID = -1

// Value is a consensus input/decision value. The paper studies binary
// consensus, so values are 0 or 1 throughout, but the type does not
// restrict this: the harness validates inputs per problem instance.
type Value int

// Message is the unit of communication. Implementations must be immutable
// after broadcast: the same value is delivered to every neighbor.
//
// The model restricts messages to carry at most a constant number of node
// ids (Section 2 of the paper). IDCount reports how many ids a message
// carries so substrates can audit the bound.
type Message interface {
	IDCount() int
}

// API is the interface a substrate hands to an algorithm at Start time.
// It is valid for the lifetime of the execution and must only be used from
// within the algorithm's event handlers (substrates serialize all handler
// invocations for a given node).
type API interface {
	// ID returns this node's unique id. Anonymous algorithms must not
	// call it; the anonymity auditor in internal/consensus verifies this.
	ID() NodeID

	// Broadcast hands m to the MAC layer. It reports false when a
	// broadcast is already in flight (the model discards extra messages
	// sent before the current ack arrives). It never blocks.
	Broadcast(m Message) bool

	// Decide performs the node's single irrevocable decide action.
	// Further calls are recorded by the substrate as violations.
	Decide(v Value)

	// Now returns the current timestamp. Timestamps are totally ordered
	// and consistent across nodes (virtual time on the simulator, a
	// shared monotonic counter on the live runtime). The paper's change
	// service (Figure 3, Algorithm 3) requires such timestamps.
	Now() int64
}

// Algorithm is a deterministic per-node state machine. The substrate calls
// Start exactly once before any other handler, then OnReceive for every
// message delivered to this node and OnAck when the node's in-flight
// broadcast completes. Handlers run serially per node and must not retain
// the API beyond the execution.
type Algorithm interface {
	Start(api API)
	OnReceive(m Message)
	OnAck(m Message)
}

// Decider is implemented by algorithms that expose whether they have
// decided and what they decided; the harness uses it for reporting beyond
// the substrate's own decision records.
type Decider interface {
	Decided() (Value, bool)
}

// NodeConfig carries the per-node instantiation parameters a Factory
// receives. Knowledge assumptions (n, diameter bounds, ...) deliberately do
// not appear here: algorithms that assume them take them as constructor
// arguments, which makes every knowledge assumption explicit at the call
// site, mirroring the paper's lower-bound taxonomy.
type NodeConfig struct {
	// ID is the node's unique id as assigned by the harness.
	ID NodeID
	// Input is the node's consensus initial value.
	Input Value
	// Metrics, when non-nil, is the substrate's metrics registry.
	// Algorithms register named slots against it (registration dedups by
	// name, so all nodes of a run share one slot per metric); a nil
	// registry hands back disabled handles that no-op, so algorithms
	// instrument unconditionally.
	Metrics *metrics.Registry
}

// Factory builds one node's algorithm instance. A Factory is invoked once
// per node before the execution starts.
type Factory func(cfg NodeConfig) Algorithm

// MaxMessageIDs is the constant bound on ids per message this repository's
// algorithms adhere to (the model requires only that some constant exists;
// wPAXOS's multiplexed broadcast carries up to twelve — one per service
// message plus routing and proposal-number ids, including the gossiped
// acceptor-state triple of origin, promised number, and accepted number).
// The simulator audits broadcasts against this bound when auditing is on.
const MaxMessageIDs = 12

// AuditIDCount returns an error when m reports more than MaxMessageIDs ids.
func AuditIDCount(m Message) error {
	if c := m.IDCount(); c > MaxMessageIDs {
		return fmt.Errorf("amac: message %T carries %d ids, exceeding the model bound %d", m, c, MaxMessageIDs)
	}
	return nil
}

// ValidateBinaryInputs checks a binary-consensus input assignment: at least
// one node, every value 0 or 1. The paper studies binary consensus
// throughout, so the harness applies this to every problem instance it
// constructs.
func ValidateBinaryInputs(inputs []Value) error {
	if len(inputs) == 0 {
		return fmt.Errorf("amac: empty input assignment")
	}
	for i, v := range inputs {
		if v != 0 && v != 1 {
			return fmt.Errorf("amac: input %d of node %d is not binary", v, i)
		}
	}
	return nil
}
