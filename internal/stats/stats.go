// Package stats provides the small statistical and formatting helpers the
// experiment drivers use: summary statistics over samples, least-squares
// fits for shape checks (is decision time linear in D?), and a plain-text
// table renderer for EXPERIMENTS.md-style output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation, or 0 for fewer than
// two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Median returns the median, or 0 for an empty sample.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) using nearest-rank on a
// sorted copy, or 0 for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Min and Max return the extrema, or 0 for empty samples.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or 0 for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// LinFit returns the least-squares slope and intercept of y against x.
// It panics on mismatched lengths and returns (0, mean) for fewer than two
// points or zero variance in x.
func LinFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: LinFit length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) < 2 {
		return 0, Mean(y)
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// Table is a simple plain-text table.
type Table struct {
	Columns []string
	Rows    [][]string
}

// AddRow appends a row formatted from the given values (fmt.Sprint each).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
