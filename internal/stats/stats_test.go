package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("singleton stddev")
	}
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Fatalf("stddev = %v", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	if !almost(Median(xs), 5) {
		t.Fatalf("median = %v", Median(xs))
	}
	if !almost(Percentile(xs, 100), 9) || !almost(Percentile(xs, 0), 1) {
		t.Fatal("extreme percentiles")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// The input must not be mutated (sorted copy).
	if xs[0] != 9 {
		t.Fatal("input mutated")
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4}
	if Min(xs) != -1 || Max(xs) != 4 {
		t.Fatal("min/max")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max")
	}
}

func TestLinFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept := LinFit(x, y)
	if !almost(slope, 2) || !almost(intercept, 3) {
		t.Fatalf("fit %v %v", slope, intercept)
	}
}

func TestLinFitDegenerate(t *testing.T) {
	slope, intercept := LinFit([]float64{5}, []float64{7})
	if slope != 0 || intercept != 7 {
		t.Fatal("single point")
	}
	slope, intercept = LinFit([]float64{2, 2}, []float64{1, 3})
	if slope != 0 || !almost(intercept, 2) {
		t.Fatal("zero x-variance")
	}
}

func TestLinFitMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LinFit([]float64{1}, []float64{1, 2})
}

func TestLinFitRecoversRandomLines(t *testing.T) {
	f := func(a, b int8) bool {
		slope := float64(a) / 4
		intercept := float64(b)
		x := []float64{0, 1, 2, 3, 4, 5}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = slope*x[i] + intercept
		}
		s, c := LinFit(x, y)
		return almost(s, slope) && almost(c, intercept)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Columns: []string{"n", "time"}}
	tb.AddRow(4, 1.5)
	tb.AddRow(128, "12")
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "n") || !strings.Contains(lines[0], "time") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[2], "1.50") {
		t.Fatalf("float formatting: %q", lines[2])
	}
}
