// Package absmac is a from-scratch Go reproduction of "Consensus with an
// Abstract MAC Layer" (Calvin Newport, PODC 2014, arXiv:1405.1382).
//
// The repository implements the paper's model (acknowledged local
// broadcast under an adversarial scheduler with unknown delivery bound
// Fack), both of its algorithms (two-phase consensus for single-hop
// networks, wPAXOS for multihop networks), the baselines its analysis
// argues against, and executable versions of all four lower-bound
// constructions. See README.md for a tour, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the paper-vs-measured record.
//
// The root package carries no code — the library lives under internal/
// (this is a research artifact: the stable entry points are the example
// programs, the cmd/ tools, and the benchmarks in bench_test.go).
//
// internal/harness is the scenario entry point: it names algorithms,
// topologies, input patterns, schedulers, crash patterns and unreliable
// overlays in registries, assembles them into runnable Scenario values,
// and sweeps scenario grids in parallel with per-cell latency, fault and
// message statistics. Sweeps are cell-grouped: a grid expands into cell
// work-units (all seeds of one axis combination), each cell runs its
// seeds back to back on a reusable simulator engine, and workers share
// per-sweep caches of built topologies, their diameters and overlay dual
// graphs keyed by (topo, seed) — so everything that depends only on the
// topology and seed is computed once per sweep, not once per scenario. The two adversity registries put the paper's fault
// models on sweep axes: crash patterns (none, one@T, maxid@T,
// coordinator, midbroadcast, minorityrand) schedule the crash failures
// of Theorem 3.2
// — including the mid-broadcast crash that loses part of a delivery plan
// and the ack — and overlay families (none, randomextra:P, extra:K,
// chords, each with an optional @Q delivery probability) build the
// unreliable dual graph of the Kuhn–Lynch–Newport model variant, with
// consensus properties judged over the surviving nodes. cmd/amacsim
// (single cell and -sweep), cmd/benchsuite -grid and the examples are all
// built on it; see cmd/amacsim's package comment for the sweep grammar —
// e.g.
//
//	amacsim -sweep -algos floodpaxos -topos ring:9 -scheds random \
//	        -facks 4 -crashes one@0,midbroadcast \
//	        -overlays randomextra:0.25,chords -seeds 8
//
// — and the JSON cell schema.
//
// On top of seeded sweeps sits the schedule-space explorer: internal/sim
// records every nondeterministic decision of a run (each broadcast's
// delivery plan, every unreliable-edge coin, every crash time) into a
// JSON-serializable Schedule that replays byte-identically, and
// internal/explore searches perturbations of recorded schedules — swapped
// delivery orders, re-jittered delays within Fack, flipped overlay coins,
// shifted crashes — for property violations, then delta-debugs what it
// finds into minimal replayable counterexample artifacts. cmd/amacexplore
// is the CLI (-budget, -minimize, -replay); `amacsim -record` captures
// any single run as an artifact and `amacsim -trace` dumps machine-
// readable JSONL event traces.
//
// The campaign layer composes the two pipelines: sweeps stream every
// violating (scenario, seed) to a consumer as cell workers classify it
// (harness.SweepOptions/FlaggedRun, with the violation verdict hoisted
// into internal/consensus so both sides share it), and
// internal/explore.Campaign drives a whole grid — sweep with
// schedule-coverage fingerprints (sim.Fingerprinter, reporting how many
// distinct delivery orderings each cell exercised and stopping saturated
// cells early), then record, perturb and parallel-shrink every flagged
// cell on one shared worker pool into minimized artifacts, all
// byte-reproducible at any worker count. `amacexplore -grid` runs
// campaigns from the same sweep-axis grammar as `amacsim -sweep` (the
// shared harness.AxisFlags helper) and emits a JSON campaign report. The
// first artifacts found this way were two multihop liveness stalls (a
// wPAXOS response lost forever on a lossy chord, a floodpaxos leader
// dying after election); both are fixed (see the next section) and their
// recordings under internal/harness/testdata/ now serve as divergence
// regressions, with the minimized two-phase coordinator-crash stall —
// the paper's Theorem 3.2 counterexample, which is supposed to stall —
// as the canonical violating artifact.
//
// # Liveness under leader death
//
// Both multihop algorithms (internal/core/wpaxos and its flooding
// baseline internal/baseline/floodpaxos) survive the death of their
// elected proposer. Two mechanisms, shared via wpaxos.Detector:
//
//   - Retransmit until superseded. Every queue a node pumps — leader
//     announcements, change notices, the highest-numbered proposition,
//     acceptor responses, gossiped acceptor state — stays sticky: it is
//     re-broadcast on every pump until a strictly newer item supersedes
//     it, rather than sent once and forgotten. Receivers deduplicate, so
//     retransmission is idempotent; a message lost to a crash or an
//     unreliable overlay edge is simply sent again. wPAXOS's aggregated
//     fast-path response counts remain send-once (re-aggregating would
//     double-count); robustness there comes from per-origin monotone
//     acceptor-state gossip, merged idempotently, with a chosen-value
//     watch that lets any node observe a majority and decide even if
//     the proposer who assembled it is dead.
//   - Suspicion-based Ω with deterministic rotation. Each node estimates
//     Fack from observed broadcast-to-ack delays (fhat) and suspects the
//     current omega after fhat·(4n+8)·mult ticks of silence, doubling
//     mult on each firing so false suspicions under slow schedules die
//     out. Membership is learned from gossip and kept sorted; on
//     suspicion the detector demotes omega to the next-highest
//     unsuspected id, and when every member is suspected it clears all
//     suspicions and re-promotes the maximum — so a false cascade
//     self-heals. Detector.Gossip alternates between flooding the
//     current omega (the paper's O(D·Fack) leader-election flood) and
//     round-robin membership dissemination, keeping election fast while
//     every node converges on the same sorted member list, which makes
//     rotation deterministic across nodes and seeds.
//
// The formerly pinned stalls now terminate
// (internal/harness/known_issue_test.go asserts termination, CI scans
// the whole crash×overlay leader-death grid clean), including the
// maxid@T crash pattern — killing the stable max-id leader after
// election has settled, the exact axis that used to stall both variants.
//
// # Determinism contract
//
// Everything above leans on one invariant: a (scenario, seed) pair fully
// determines an execution — byte-identical schedule replay, golden cell
// JSON, campaign reports identical at any worker count. The contract is
// enforced statically by cmd/detlint (a standard-library multichecker
// over the internal/lint analyzer suite; `go run ./cmd/detlint ./...`
// must exit 0 and CI runs it on every push), so a violation is rejected
// at review time instead of surfacing as a flaky golden test later. The
// rules:
//
//   - norawrand: in the deterministic core (internal/sim, graph, harness,
//     explore, baseline, ext) randomness must flow through a *rand.Rand
//     constructed as rand.New(rand.NewSource(seed)) from a scenario- or
//     search-seed derivation. Global math/rand functions, opaque sources
//     and wall-clock seeds are rejected.
//   - nowallclock: no time.Now/Since/Until anywhere under internal/
//     except the wall-clock substrates internal/live and internal/netmac;
//     simulated time is the event queue's logical clock.
//   - maporder: a `range` over a map must not feed an order-sensitive
//     sink (encoding/json, fmt output, hash writes, or an append whose
//     slice the function returns). Collect the keys, sort them, iterate
//     the slice — or annotate (below).
//   - goroutineorder: worker goroutines (a `go` literal, or a literal
//     handed to a pool submit method) publish results only into
//     pre-addressed slots (results[i] = ...) or channels whose consumer
//     reduces in candidate order — never by appending to, or mutating,
//     captured state, mutex or not (mutexes serialize, they don't order).
//
// Justified exceptions to the two order rules carry an audited
// annotation on (or directly above) the flagged line:
//
//	//lint:deterministic <why iteration/publication order cannot be observed>
//
// The reason is part of the contract — reviewers grep for the tag.
// norawrand and nowallclock have no annotation escape on purpose: their
// exceptions are whole packages (the scope lists above), not lines.
// Seed-derivation hygiene, audited with the suite's introduction: the
// scheduler consumes the scenario seed directly, overlay construction
// uses seed*1000003+17, per-delivery loss coins seed*6700417+257,
// minorityrand crashes seed*2654435761+97, the seeded topology builders
// use seed*9176741+389 (expander) and seed*15485863+577 (pods), and
// ben-or decorrelates per node — distinct affine maps, so no two
// consumers ever walk the same stream. Each analyzer's package doc
// states its precise rule; fixtures under internal/lint/*/testdata pin
// both the findings and the escape hatches, and `detlint -fix` inserts
// annotation skeletons for human audit.
//
// # Scale
//
// The simulator is sized for n in the 10^3..10^4 range, not just the
// paper's small worked examples. Three layers carry the load:
//
//   - internal/graph stores adjacency in flat CSR arrays (one offsets
//     slice, one packed neighbor slice) rebuilt lazily from an
//     insertion-ordered edge log, with an O(1) edge-set behind AddEdge
//     and HasEdge during construction and binary search on sorted rows
//     after. Row order is part of the determinism contract — the random
//     scheduler draws per-neighbor delivery times by row index — so the
//     CSR reproduces exact insertion order, families built by
//     graph.FromEdges are sorted by construction, and Diameter switches
//     from the exact all-pairs BFS to a bounded-effort double-sweep +
//     iFUB lower-bound certificate past 512 nodes.
//   - internal/sim keeps node runtime state structure-of-arrays: flat
//     slices per field, decisions living directly in the reusable
//     Result, and per-node amac.API values pre-boxed at Reset so a run
//     performs no per-node interface allocation. Steady-state allocs/op
//     on a reused engine are independent of n (BenchmarkBroadcastPlanLarge
//     pins this at n=1024 and n=4096; BENCH_engine.json records the
//     before/after).
//   - Two degree-bounded sparse families put large n on sweep axes:
//     expander:N:D (seeded random D-regular via stub pairing with
//     conflict repair) and pods:P:K:C (an Octopus-style mesh of P
//     k-node ring pods joined by C cross links per pod). Degree stays
//     fixed as n grows, which is the regime where the abstract MAC
//     layer's per-broadcast costs stay flat.
//
// # Event queue and the Fack horizon
//
// The engine's pending-event queue exploits the model's own contract.
// validatePlan admits only plans whose deliveries and ack land in
// (Now, Now+Fack], so at any instant every queued event lives within one
// Fack window of the clock — bounded-horizon scheduling, the regime where
// a calendar (timing-wheel) structure beats a heap. internal/sim/queue.go
// keeps a power-of-two ring of per-time buckets spanning the horizon:
// push appends to a bucket FIFO, pop advances the clock cursor to the
// next nonempty bucket (one bitmap word scan per 64 buckets) and takes
// its head. Both are O(1); a 36k-event backlog on expander:4096:8 costs
// the same per operation as an empty queue.
//
// The pop order is byte-identical to the quaternary heap it replaced,
// not approximately so. The engine's total order is (time, deliveries
// before acks, insertion seq); seq is assigned monotonically and a FIFO
// preserves insertion order, so one FIFO chain per (bucket, kind)
// reproduces the order exactly: the cursor visits times in order, and
// within a time the deliver chain drains before the ack chain, each in
// seq order. Two escape hatches keep the structure exact: events past
// the ring window (wrapping schedulers — Gate, SlowSubset — declare
// horizons wider than their base) overflow into the old quaternary heap
// and migrate into the ring as the cursor advances, strictly before any
// new push can reach the exposed buckets; and events live in a dense
// value slab indexed by int32 with an intrusive free chain, so the GC
// never scans the queue and slab growth amortizes to one allocation per
// doubling. Config.QueueWindow tunes the hybrid (0 sizes the ring to the
// scheduler's Fack, negative forces the pure reference heap), and the
// harness differential queue test drives both — plus a deliberately tiny
// ring that migrates constantly — through every registered scheduler,
// crash pattern and overlay family, asserting identical event sequences,
// results and fingerprints.
//
// # Observability
//
// internal/metrics is a flight-recorder registry built for the engine's
// hot path: fixed slots allocated at registration (counters, gauges with
// high-water marks, power-of-two-bucket histograms), handles that are
// plain value structs, and every mutation a branch plus an array write —
// no locks, no interfaces, no allocation. A nil registry hands out
// disabled handles whose mutators are one predictable branch, so
// instrumented code never guards call sites and the metrics-off
// configuration is the one the allocation pins in BENCH_engine.json
// measure. Export (WriteText, Snapshot) walks slots sorted by name —
// never a map — so output is deterministic and sweep cell JSON stays
// byte-identical at any worker width; the golden grid JSON does not
// change at all unless SweepOptions.Metrics is set. Wall-clock
// timestamps appear in exactly one place: the periodic text exposition
// of the live/netmac substrates (live.ExposeMetrics), which the
// nowallclock scope already exempts.
//
// internal/critpath answers "where did the decide latency go": it
// observes a run through sim.Config.Observer, then walks the causal
// delivery chain backward from the first decide to the first broadcast,
// attributing each hop to an algorithm phase (election, proposal,
// aggregation, decide) and each queueing delay to a stall span. The
// spans partition (0, decide-time] exactly — they sum to the decide
// time by construction, and a golden test pins both committed replay
// artifacts' breakdowns. `amacsim -metrics` prints the registry and the
// critical path after a single run (and adds aggregated per-cell metric
// rows to sweep JSON); `amacexplore -replay -critpath` recovers the
// same breakdown from a recorded artifact, because a replayed schedule
// produces the identical execution.
package absmac
