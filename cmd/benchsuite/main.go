// Command benchsuite regenerates every experiment table in EXPERIMENTS.md
// (one experiment per theorem/figure/complexity claim of the paper; see
// DESIGN.md's experiment index) and, with -grid, runs the canonical
// scenario grid — every registered algorithm crossed with the topology,
// scheduler and Fack axes — in parallel through internal/harness.
//
// The grid's topology zoo covers every registered family (grammar in
// cmd/amacsim's package doc): clique:N, line:N, ring:N, star:N, grid:RxC,
// tree:BxD, starlines:AxL, random:N:P, and the degree-bounded sparse
// families expander:N:D and pods:P:K:C at small parameters — their
// large-n shapes live in internal/sim's BenchmarkBroadcastPlanLarge tier
// and the CI large-n smoke instead.
//
// Usage:
//
//	benchsuite [-only E6] [-q]            experiments
//	benchsuite -grid [-json] [-workers N] full scenario grid
//
// Both modes accept -cpuprofile FILE and -memprofile FILE, writing pprof
// CPU and heap profiles over the whole run — experiments or grid, worker
// pool included — so a wall-clock investigation starts from a profile
// instead of a guess:
//
//	benchsuite -grid -cpuprofile cpu.out && go tool pprof cpu.out
//
// Exit status is non-zero when any experiment fails its shape check or any
// grid cell violates a consensus property.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/absmac/absmac/internal/exp"
	"github.com/absmac/absmac/internal/harness"
)

func main() {
	only := flag.String("only", "", "run a single experiment by id (e.g. E6)")
	quiet := flag.Bool("q", false, "print only the summary line per experiment")
	grid := flag.Bool("grid", false, "run the canonical scenario grid instead of the experiments")
	jsonOut := flag.Bool("json", false, "grid: emit JSON instead of a text table")
	workers := flag.Int("workers", 0, "grid: worker pool width (0 = GOMAXPROCS)")
	prof := harness.RegisterProfileFlags(flag.CommandLine)
	flag.Parse()

	// Flags have no effect outside their mode; fail loudly rather than
	// silently drop them.
	expOnly := map[string]bool{"only": true, "q": true}
	gridOnly := map[string]bool{"json": true, "workers": true}
	var stray []string
	flag.Visit(func(f *flag.Flag) {
		if (*grid && expOnly[f.Name]) || (!*grid && gridOnly[f.Name]) {
			stray = append(stray, "-"+f.Name)
		}
	})
	if len(stray) > 0 {
		if *grid {
			fmt.Fprintf(os.Stderr, "benchsuite: %s ignored with -grid\n", strings.Join(stray, ", "))
		} else {
			fmt.Fprintf(os.Stderr, "benchsuite: %s only apply with -grid\n", strings.Join(stray, ", "))
		}
		os.Exit(2)
	}

	// Profiling applies in both modes (-cpuprofile/-memprofile are
	// deliberately in neither stray set).
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(2)
	}
	var code int
	if *grid {
		code = runGrid(*workers, *jsonOut)
	} else {
		code = runExperiments(*only, *quiet)
	}
	stopProf()
	os.Exit(code)
}

func runExperiments(only string, quiet bool) int {
	experiments := exp.All()
	failed := 0
	ran := 0
	for _, e := range experiments {
		if only != "" && e.ID != only {
			continue
		}
		ran++
		if quiet {
			status := "PASS"
			if !e.OK {
				status = "FAIL"
			}
			fmt.Printf("%-4s %-4s %s\n", e.ID, status, e.Title)
		} else {
			fmt.Println(e.Render())
		}
		if !e.OK {
			failed++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchsuite: no experiment matches -only=%s\n", only)
		return 2
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchsuite: %d experiment(s) failed their shape checks\n", failed)
		return 1
	}
	return 0
}

// canonicalGrids returns the full sweep: every algorithm on the single-hop
// topology, the multihop-capable algorithms across the topology zoo, and
// two fault grids exercising the crash-pattern and overlay axes.
// (Two-phase is a single-hop algorithm — Theorem 4.1 assumes a clique — so
// it does not appear in the multihop group; the defeated baselines
// anonflood and waitall appear in the single-hop group, where their
// diameter-derived round budgets are honest.)
func canonicalGrids() []harness.Grid {
	seeds := make([]int64, 8)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	singlehop := harness.Grid{
		Algos:  []string{"twophase", "wpaxos", "floodpaxos", "gatherall", "benor", "anonflood", "waitall"},
		Topos:  []harness.Topo{{Kind: "clique", N: 4}, {Kind: "clique", N: 8}},
		Scheds: []string{"sync", "random", "maxdelay"},
		Facks:  []int64{2, 8},
		Seeds:  seeds,
	}
	// The sparse families run here at small parameters so every registered
	// topology kind appears in the canonical grid (their large-n shapes —
	// expander:4096:8, pods:64:64:4 — belong to the bench tier and the CI
	// large-n smoke, not an 8-seed correctness grid).
	multihop := harness.Grid{
		Algos: []string{"wpaxos", "floodpaxos", "gatherall"},
		Topos: []harness.Topo{
			{Kind: "line", N: 8},
			{Kind: "ring", N: 9},
			{Kind: "grid", Rows: 4, Cols: 4},
			{Kind: "tree", Branch: 2, Depth: 3},
			{Kind: "starlines", Arms: 4, ArmLen: 2},
			{Kind: "random", N: 16, P: 0.15},
			{Kind: "expander", N: 16, Deg: 4},
			{Kind: "pods", Pods: 4, PodSize: 4, Cross: 2},
		},
		Scheds: []string{"sync", "random", "maxdelay"},
		Facks:  []int64{2, 8},
		Seeds:  seeds,
	}
	// Crash patterns on the single-hop topology, restricted to the
	// crash-tolerant algorithms (twophase stalls without its coordinator
	// — that regime belongs to the lower-bound experiments, not the
	// always-green canonical grid; gatherall waits for n values, so any
	// start-time crash starves it).
	faultclique := harness.Grid{
		Algos:   []string{"wpaxos", "floodpaxos", "benor"},
		Topos:   []harness.Topo{{Kind: "clique", N: 8}},
		Scheds:  []string{"sync", "random"},
		Facks:   []int64{4},
		Crashes: []string{"one@0", "coordinator", "midbroadcast", "maxid@6"},
		Seeds:   seeds,
	}
	// Crash x overlay cross product on multihop topologies. Since the Ω
	// failure-detector redesign (suspicion + rotation + retransmit-until-
	// superseded) both PAXOS variants survive every crash-pattern/overlay
	// combination here, including maxid@T — the stable leader dying after
	// election has settled, the axis that used to stall them both.
	faultmultihop := harness.Grid{
		Algos:    []string{"wpaxos", "floodpaxos"},
		Topos:    []harness.Topo{{Kind: "ring", N: 9}, {Kind: "grid", Rows: 3, Cols: 3}},
		Scheds:   []string{"random"},
		Facks:    []int64{4},
		Crashes:  []string{"one@0", "midbroadcast", "maxid@6"},
		Overlays: []string{"none", "randomextra:0.25", "chords"},
		Seeds:    seeds,
	}
	return []harness.Grid{singlehop, multihop, faultclique, faultmultihop}
}

func runGrid(workers int, jsonOut bool) int {
	// Expand every grid to cell work-units and run them in one sweep, so
	// the topology/diameter/overlay caches are shared across all four
	// grids and each worker reuses one engine per cell. (The canonical
	// grids produce distinct cells — no two share every non-seed axis —
	// so concatenating their work-units is exactly the flat sweep.)
	var work []harness.CellWork
	runs := 0
	for _, g := range canonicalGrids() {
		expanded, err := g.Cells()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			return 2
		}
		work = append(work, expanded...)
		runs += len(expanded) * len(g.Seeds)
	}
	cells, err := harness.SweepCells(work, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		return 2
	}
	if !jsonOut {
		fmt.Printf("canonical grid: %d scenarios, %d cells\n\n", runs, len(cells))
	}
	bad, err := harness.Report(os.Stdout, cells, jsonOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		return 2
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "benchsuite: %d cell(s) contain consensus violations\n", bad)
		return 1
	}
	return 0
}
