// Command benchsuite regenerates every experiment table in EXPERIMENTS.md:
// one experiment per theorem/figure/complexity claim of the paper (see
// DESIGN.md's experiment index).
//
// Usage:
//
//	benchsuite [-only E6] [-q]
//
// Exit status is non-zero when any experiment fails its shape check.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/absmac/absmac/internal/exp"
)

func main() {
	only := flag.String("only", "", "run a single experiment by id (e.g. E6)")
	quiet := flag.Bool("q", false, "print only the summary line per experiment")
	flag.Parse()

	experiments := exp.All()
	failed := 0
	ran := 0
	for _, e := range experiments {
		if *only != "" && e.ID != *only {
			continue
		}
		ran++
		if *quiet {
			status := "PASS"
			if !e.OK {
				status = "FAIL"
			}
			fmt.Printf("%-4s %-4s %s\n", e.ID, status, e.Title)
		} else {
			fmt.Println(e.Render())
		}
		if !e.OK {
			failed++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchsuite: no experiment matches -only=%s\n", *only)
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchsuite: %d experiment(s) failed their shape checks\n", failed)
		os.Exit(1)
	}
}
