// Command detlint runs the determinism-contract analyzer suite
// (internal/lint) over Go package patterns — a self-contained
// multichecker in the x/tools mold, built only on the standard library.
//
// Usage:
//
//	detlint [-fix] [-only name,name] [packages]
//
// With no patterns it checks ./... . Each finding prints as
//
//	path/file.go:line:col: [analyzer] message
//
// and the exit status is 0 when the tree is clean, 1 when there are
// findings, 2 on a load/internal error — so CI can simply run
// `go run ./cmd/detlint ./...` and fail the build on any violation.
//
// The suite (see each analyzer's package documentation for the precise
// rule, scope and escape hatches):
//
//	norawrand       no ambient math/rand in the deterministic core
//	nowallclock     no time.Now/Since/Until outside the wall-clock substrates
//	maporder        no map iteration feeding JSON/fmt/hash/returned-append sinks
//	goroutineorder  workers publish index-addressed or in candidate order
//
// -fix applies the analyzers' suggested fixes in place. Today the only
// fixer is maporder's, which inserts a `//lint:deterministic FIXME: ...`
// justification skeleton above the flagged range — scaffolding for a
// human audit, not an automatic absolution: replace the FIXME with the
// actual reason (or fix the iteration) before committing. Diagnostics
// without a fix are unaffected, so -fix still exits 1 while any remain.
//
// -only restricts the run to a comma-separated subset of analyzer names.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/absmac/absmac/internal/lint"
	"github.com/absmac/absmac/internal/lint/analysis"
	"github.com/absmac/absmac/internal/lint/load"
)

type finding struct {
	pos      token.Position
	analyzer string
	diag     analysis.Diagnostic
	fset     *token.FileSet
}

func main() {
	fix := flag.Bool("fix", false, "apply suggested fixes in place (see command doc: fixes are audit scaffolding)")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()
	os.Exit(run(*fix, *only, flag.Args()))
}

func run(fix bool, only string, patterns []string) int {
	analyzers := lint.Analyzers()
	if only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			unknown := make([]string, 0, len(keep))
			for name := range keep {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "detlint: unknown analyzer(s): %s\n", strings.Join(unknown, ", "))
			return 2
		}
		analyzers = sel
	}

	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		return 2
	}

	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.PkgPath) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, finding{
					pos:      pkg.Fset.Position(d.Pos),
					analyzer: a.Name,
					diag:     d,
					fset:     pkg.Fset,
				})
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "detlint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				return 2
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.analyzer < b.analyzer
	})

	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, f.pos.Line, f.pos.Column, f.analyzer, f.diag.Message)
	}

	if fix {
		if err := applyFixes(findings); err != nil {
			fmt.Fprintf(os.Stderr, "detlint: applying fixes: %v\n", err)
			return 2
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// applyFixes rewrites files with every suggested edit, back to front so
// earlier offsets stay valid.
func applyFixes(findings []finding) error {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	applied := 0
	for _, f := range findings {
		for _, sf := range f.diag.SuggestedFixes {
			for _, te := range sf.TextEdits {
				p, e := f.fset.Position(te.Pos), f.fset.Position(te.End)
				perFile[p.Filename] = append(perFile[p.Filename], edit{p.Offset, e.Offset, te.NewText})
				applied++
			}
		}
	}
	files := make([]string, 0, len(perFile))
	for name := range perFile {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		edits := perFile[name]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for _, e := range edits {
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
		}
		if err := os.WriteFile(name, src, 0o644); err != nil {
			return err
		}
	}
	if applied > 0 {
		fmt.Fprintf(os.Stderr, "detlint: applied %d suggested edit(s); replace inserted FIXMEs with real justifications\n", applied)
	}
	return nil
}
