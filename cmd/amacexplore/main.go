// Command amacexplore searches the schedule space of one scenario for
// consensus violations, minimizes the counterexamples it finds, and
// replays committed counterexample artifacts.
//
// The scenario is named exactly as in amacsim's single-cell mode (the
// harness registries: -algo, -topo, -sched, -fack, -seed, -inputs,
// -crash, -overlay). The explorer records the scenario's base execution
// as a sim.Schedule — every broadcast's delivery plan, every
// unreliable-edge coin, every crash time — then replays -budget seeded
// perturbations of it (swapped delivery orders, re-jittered delays within
// Fack, flipped overlay coins, shifted or dropped crashes) on a parallel
// worker pool, deduplicating candidates by schedule hash and classifying
// every outcome against the consensus properties. Exploration is
// deterministic given the scenario and -searchseed.
//
//	amacexplore -algo wpaxos -topo ring:9 -sched random -fack 4 -seed 4 \
//	            -crash midbroadcast -overlay chords -budget 512
//
// With -minimize the first violation (the base run's own, if it
// violates) is delta-debugged down to a minimal failing schedule: crashes
// dropped, unreliable deliveries pruned chunk-wise, the recorded suffix
// truncated, and the topology itself shrunk where the family allows —
// each reduction accepted only if the violation reproduces, and re-closed
// into a complete schedule so the final artifact replays with zero
// divergence. -out FILE writes the winning artifact.
//
//	amacexplore -algo wpaxos -topo ring:9 -sched random -fack 4 -seed 4 \
//	            -crash midbroadcast -overlay chords -minimize -out stall.json
//
// With -grid the tool hunts a whole sweep grid instead of one scenario:
// the axes are exactly amacsim's sweep grammar (-algos, -topos, -scheds,
// -facks, -crashes, -overlays, -seeds — see cmd/amacsim; the two CLIs
// share the harness.AxisFlags helper), the grid sweeps with
// schedule-coverage fingerprints on, and every run that violates a
// consensus property streams out of the sweep and into the explorer: up
// to -percell flagged runs per cell are re-recorded, optionally
// perturbation-searched (-budget > 0), optionally minimized (-minimize,
// parallel shrink), and written as artifacts into -artifacts DIR. The
// report (a JSON object with -json: cells, per-cell coverage, flagged
// counts, findings with artifact paths) says which delivery orderings
// each cell actually exercised (distinct schedule fingerprints) and
// -saturate K stops a cell early after K consecutive seeds add no new
// ordering. Campaigns are deterministic at any -workers width.
//
//	amacexplore -grid -algos wpaxos,floodpaxos -topos ring:9,grid:3x3 \
//	            -scheds random -facks 4 -crashes midbroadcast,one@3 \
//	            -overlays chords,extra:4@0.6 -seeds 8 -maxevents 200000 \
//	            -budget 0 -minimize -artifacts out/
//
// With -replay FILE the tool instead re-verifies a committed artifact:
// the schedule replays against its recorded scenario and the outcome is
// checked against the artifact's recorded violation (reproducing a
// recorded violation is success). -trace FILE additionally dumps the
// replay's full event trace as JSON Lines — the same format amacsim
// -trace emits, one trace.JSONLEvent per line — and -critpath prints the
// replay's decide-latency critical path (internal/critpath): the causal
// delivery chain behind the first decision with its latency attributed
// to algorithm phases and stalls. A replayed schedule reproduces the
// original execution exactly, so the breakdown is the one the recorded
// run had (with -json it rides along as "critical_path").
//
//	amacexplore -replay internal/harness/testdata/stall_wpaxos_midbroadcast_chords.json
//	amacexplore -replay stall.json -critpath
//
// Artifacts are indented JSON with this layout (explore.Artifact):
//
//	{"format": 1,
//	 "scenario": {"algo": …, "topo": …, "sched": …, "fack": …, "seed": …,
//	              "crashes": …, "overlay": …},
//	 "max_events": …,
//	 "schedule": {"fack": …, "deliver_p": …, "fallback_seed": …,
//	              "crashes": [{"node": …, "at": …}, …],
//	              "steps": [{"sender": …, "seq": …, "now": …, "nr": …,
//	                         "recv": [t | -1, …], "ack": …}, …]},
//	 "violation": {"kind": …, "errors": […], "quiescent": …, "events": …}}
//
// where steps[i].recv is positional (slot j < nr is the j-th reliable
// neighbor of sender, later slots are unreliable neighbors, -1 means not
// delivered) and all times are absolute virtual times.
//
// Exit status: explore and grid modes exit 1 when any violation was found
// (0 on a clean sweep); replay mode exits 1 when the artifact's outcome
// does not match its recorded violation (0 when it reproduces); usage and
// I/O errors exit 2.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/absmac/absmac/internal/critpath"
	"github.com/absmac/absmac/internal/explore"
	"github.com/absmac/absmac/internal/harness"
	"github.com/absmac/absmac/internal/sim"
	"github.com/absmac/absmac/internal/trace"
)

func main() {
	// Scenario flags (amacsim single-cell grammar).
	algo := flag.String("algo", "wpaxos", "algorithm: "+strings.Join(harness.Algorithms(), " | "))
	topo := flag.String("topo", "ring:9", "topology spec, e.g. clique:16, grid:4x4, random:24:0.1")
	sched := flag.String("sched", "random", "scheduler: "+strings.Join(harness.Schedulers(), " | "))
	fack := flag.Int64("fack", 4, "scheduler delivery bound Fack")
	seed := flag.Int64("seed", 1, "scenario seed (scheduler, algorithm, topology, crashes, overlay)")
	inputs := flag.String("inputs", "alternating", "input pattern: "+strings.Join(harness.InputPatterns(), " | "))
	crash := flag.String("crash", "none", "crash pattern name[@T]: "+strings.Join(harness.CrashPatterns(), " | "))
	overlay := flag.String("overlay", "none", "unreliable overlay family[:param][@Q]: "+strings.Join(harness.Overlays(), " | "))

	// Exploration flags (shared by -grid where noted).
	budget := flag.Int("budget", 256, "perturbed schedules to replay (with -grid: per flagged run; 0 skips the search)")
	searchSeed := flag.Int64("searchseed", 1, "seed for candidate generation (independent of the scenario seed)")
	maxEvents := flag.Int("maxevents", 0, "per-execution event cap; capped undecided runs classify as non-termination (0 = sweep default)")
	minimize := flag.Bool("minimize", false, "delta-debug each violation down to a minimal failing schedule")
	out := flag.String("out", "", "write the found (minimized with -minimize) counterexample artifact to this file")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")

	// Campaign (grid) mode: the sweep-axis grammar is shared with
	// amacsim -sweep (harness.RegisterAxisFlags; includes -workers, which
	// also sizes explore mode's pool).
	gridMode := flag.Bool("grid", false, "campaign mode: sweep a whole grid and hunt every flagged cell")
	axes := harness.RegisterAxisFlags(flag.CommandLine, "grid")
	artifactDir := flag.String("artifacts", "", "grid: write one counterexample artifact per finding into this directory")
	perCell := flag.Int("percell", 1, "grid: flagged runs to explore per cell")
	saturate := flag.Int("saturate", 0, "grid: stop a cell after this many consecutive seeds add no new schedule fingerprint (0 = run all seeds)")

	// Replay mode.
	replay := flag.String("replay", "", "re-verify a committed artifact file instead of exploring")
	traceFile := flag.String("trace", "", "with -replay: dump the replay's event trace to this file as JSON Lines")
	critPath := flag.Bool("critpath", false, "with -replay: extract the decide-latency critical path of the replayed execution (phase breakdown + causal hop chain)")

	flag.Parse()

	// Per-mode stray-flag guards (shared helper with amacsim): flags have
	// no effect outside their mode; fail loudly rather than let the user
	// attribute results to a flag that was silently dropped.
	scenarioOnly := harness.NameSet([]string{"algo", "topo", "sched", "fack", "seed", "crash", "overlay"})
	// The mode flag itself is not "grid-only": -grid=false must select
	// explore mode, not trip its own stray-flag guard (flag.Visit sees
	// every explicitly-set flag, defaults included).
	gridOnly := harness.NameSet(axes.Names(), []string{"artifacts", "percell", "saturate"})
	delete(gridOnly, "workers") // -workers sizes every mode's pool

	if *replay != "" {
		// The artifact fixes the scenario and the schedule.
		replayOnly := map[string]bool{"replay": true, "trace": true, "critpath": true, "json": true}
		stray := harness.StrayFlags(flag.CommandLine, func(name string) bool { return !replayOnly[name] })
		if len(stray) > 0 {
			os.Exit(fail(fmt.Errorf("%s not allowed with -replay: the artifact carries the scenario, schedule and event cap", strings.Join(stray, ", "))))
		}
		os.Exit(runReplay(*replay, *traceFile, *critPath, *jsonOut))
	}
	if *traceFile != "" {
		os.Exit(fail(fmt.Errorf("-trace only applies with -replay")))
	}
	if *critPath {
		os.Exit(fail(fmt.Errorf("-critpath only applies with -replay")))
	}
	if *gridMode {
		stray := harness.StrayFlags(flag.CommandLine, func(name string) bool { return scenarioOnly[name] || name == "out" })
		if len(stray) > 0 {
			os.Exit(fail(fmt.Errorf("%s not allowed with -grid; use the sweep axes -algos/-topos/-scheds/-facks/-crashes/-overlays/-seeds (and -artifacts for output)", strings.Join(stray, ", "))))
		}
		grid, err := axes.Grid(*inputs)
		if err != nil {
			os.Exit(fail(err))
		}
		os.Exit(runGrid(grid, explore.CampaignOptions{
			Workers: *axes.Workers, Budget: *budget, SearchSeed: *searchSeed,
			MaxEvents: *maxEvents, Minimize: *minimize, PerCell: *perCell,
			SaturateAfter: *saturate, ArtifactDir: *artifactDir,
		}, *jsonOut))
	}
	stray := harness.StrayFlags(flag.CommandLine, func(name string) bool { return gridOnly[name] })
	if len(stray) > 0 {
		os.Exit(fail(fmt.Errorf("%s only apply with -grid", strings.Join(stray, ", "))))
	}
	t, err := harness.ParseTopo(*topo)
	if err != nil {
		os.Exit(fail(err))
	}
	sc := harness.Scenario{Algo: *algo, Topo: t, Inputs: *inputs, Sched: *sched, Fack: *fack, Seed: *seed, Crashes: *crash, Overlay: *overlay}
	os.Exit(runExplore(sc, explore.Options{
		Budget: *budget, Workers: *axes.Workers, Seed: *searchSeed, MaxEvents: *maxEvents,
	}, *minimize, *out, *jsonOut))
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "amacexplore:", err)
	return 2
}

// exploreOutput is the -json schema of explore mode.
type exploreOutput struct {
	Report *explore.Report       `json:"report"`
	Shrink *explore.ShrinkResult `json:"shrink,omitempty"`
}

func runExplore(sc harness.Scenario, opts explore.Options, minimize bool, out string, jsonOut bool) int {
	rep, err := explore.Explore(sc, opts)
	if err != nil {
		return fail(err)
	}

	// Pick the violation to carry forward: the base run's own beats any
	// perturbed finding (it needs no perturbation to reproduce).
	var (
		kind      string
		schedule  = rep.BaseSchedule
		violation = rep.Base
	)
	if violation == nil && len(rep.Findings) > 0 {
		f := rep.Findings[0]
		// A perturbed finding's schedule diverges by construction (the
		// replay falls back past the perturbation point). Close it into a
		// complete recording of the violating execution, so the artifact
		// replays divergence-free and -replay verification passes.
		runner, err := rep.Scenario.NewReplayRunner()
		if err != nil {
			return fail(err)
		}
		fOut, _, closed, err := runner.RunRecorded(f.Schedule, nil)
		if err != nil {
			return fail(err)
		}
		v := explore.Classify(fOut)
		if v == nil || v.Kind != f.Violation.Kind {
			return fail(fmt.Errorf("finding %d did not reproduce on re-recording (got %+v, want %s)", f.Candidate, v, f.Violation.Kind))
		}
		schedule = closed
		violation = v
	}
	if violation != nil {
		kind = violation.Kind
	}

	output := exploreOutput{Report: rep}
	artifact := &explore.Artifact{
		Format: explore.ArtifactFormat, Scenario: rep.Scenario,
		MaxEvents: rep.Scenario.MaxEvents, Schedule: schedule, Violation: violation,
		Note: fmt.Sprintf("amacexplore budget=%d searchseed=%d", opts.Budget, opts.Seed),
	}
	if minimize && violation != nil {
		res, err := explore.Shrink(rep.Scenario, schedule, kind,
			explore.ShrinkOptions{MaxEvents: rep.Scenario.MaxEvents, Workers: opts.Workers})
		if err != nil {
			return fail(err)
		}
		res.Artifact.Note = artifact.Note + " minimized"
		output.Shrink = res
		artifact = res.Artifact
	}
	if out != "" {
		if violation == nil {
			fmt.Fprintln(os.Stderr, "amacexplore: no violation found; not writing", out)
		} else if err := artifact.WriteFile(out); err != nil {
			return fail(err)
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(output); err != nil {
			return fail(err)
		}
	} else {
		printReport(rep, output.Shrink, out, violation)
	}
	if violation != nil {
		return 1
	}
	return 0
}

func printReport(rep *explore.Report, shrink *explore.ShrinkResult, out string, violation *explore.Violation) {
	fmt.Printf("scenario    %s on %s under %s (Fack=%d, seed=%d, crashes=%s, overlay=%s)\n",
		rep.Scenario.Algo, rep.Scenario.Topo, rep.Scenario.Sched, rep.Scenario.Fack, rep.Scenario.Seed,
		rep.Scenario.Crashes, rep.Scenario.Overlay)
	fmt.Printf("base run    %d steps, %d deliveries", rep.BaseSteps, rep.BaseDeliveries)
	if rep.Base != nil {
		fmt.Printf(" — VIOLATES (%s, %d events, quiescent=%v)", rep.Base.Kind, rep.Base.Events, rep.Base.Quiescent)
	}
	fmt.Println()
	s := rep.Stats
	fmt.Printf("search      %d replays (%d deduped, %d diverged): %d violating schedules\n",
		s.Replays, s.Deduped, s.Diverged, s.Violations)
	for i, f := range rep.Findings {
		if i == 5 {
			fmt.Printf("            … %d more\n", len(rep.Findings)-i)
			break
		}
		fmt.Printf("  finding   candidate %d: %s (%d steps, %d deliveries, diverged at %d)\n",
			f.Candidate, f.Violation.Kind, f.Steps, f.Deliveries, f.DivergedAt)
	}
	if shrink != nil {
		a := shrink.Artifact
		fmt.Printf("minimized   %d->%d steps, %d->%d deliveries, %d->%d crashes on %s (%d attempts)\n",
			shrink.FromSteps, len(a.Schedule.Steps), shrink.FromDeliveries, a.Schedule.Deliveries(),
			shrink.FromCrashes, len(a.Schedule.Crashes), a.Scenario.Topo, shrink.Attempts)
	}
	switch {
	case violation == nil:
		fmt.Println("verdict     no violation found")
	case out != "":
		fmt.Printf("verdict     %s violation; artifact written to %s\n", violation.Kind, out)
	default:
		fmt.Printf("verdict     %s violation (pass -out FILE to keep the artifact)\n", violation.Kind)
	}
}

func runGrid(grid harness.Grid, opts explore.CampaignOptions, jsonOut bool) int {
	if opts.ArtifactDir != "" {
		if err := os.MkdirAll(opts.ArtifactDir, 0o755); err != nil {
			return fail(err)
		}
	}
	rep, err := explore.Campaign(grid, opts)
	if err != nil {
		return fail(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return fail(err)
		}
	} else {
		printCampaign(rep)
	}
	if rep.Flagged > 0 {
		fmt.Fprintf(os.Stderr, "amacexplore: %d flagged run(s) in %d cell(s)\n", rep.Flagged, rep.CellsFlagged)
		return 1
	}
	return 0
}

func printCampaign(rep *explore.CampaignReport) {
	distinct, saturated := 0, 0
	for _, c := range rep.Coverage {
		distinct += c.Distinct
		if c.Saturated {
			saturated++
		}
	}
	fmt.Printf("campaign    %d cells, %d runs, %d distinct schedules (%d cell(s) saturated early)\n",
		len(rep.Cells), rep.Runs, distinct, saturated)
	fmt.Printf("flagged     %d run(s) in %d cell(s)\n", rep.Flagged, rep.CellsFlagged)
	for _, f := range rep.Findings {
		c := &rep.Cells[f.Cell]
		fmt.Printf("  finding   cell %d (%s on %s under %s, crashes=%s, overlay=%s, seed=%d): %s, %d steps, %d deliveries",
			f.Cell, c.Algo, c.Topo, c.Sched, c.Crashes, c.Overlay, f.Scenario.Seed,
			f.Violation.Kind, f.Steps, f.Deliveries)
		if f.Minimized {
			fmt.Printf(" (minimized, %d attempts)", f.ShrinkAttempts)
		}
		fmt.Println()
		if f.ArtifactPath != "" {
			fmt.Printf("            artifact %s\n", f.ArtifactPath)
		}
	}
	if rep.Flagged == 0 {
		fmt.Println("verdict     no violation found")
	} else {
		fmt.Printf("verdict     %d counterexample(s) recorded\n", len(rep.Findings))
	}
}

// replayOutput is the -json schema of replay mode.
type replayOutput struct {
	Artifact   string             `json:"artifact"`
	Violation  *explore.Violation `json:"violation,omitempty"`
	Recorded   *explore.Violation `json:"recorded_violation,omitempty"`
	Diverged   bool               `json:"diverged"`
	DivergedAt int                `json:"diverged_at"`
	Reproduced bool               `json:"reproduced"`
	// CritPath is the decide-latency critical path of the replayed
	// execution (-critpath; spans always sum to decide_time).
	CritPath *critpath.Report `json:"critical_path,omitempty"`
}

func runReplay(path, traceFile string, critPath, jsonOut bool) int {
	a, err := explore.ReadFile(path)
	if err != nil {
		return fail(err)
	}
	var rec *trace.Recorder
	var observer func(sim.Event)
	if traceFile != "" {
		// Unbounded: the dumped trace must be the whole replay, not the
		// last ring-buffer window of it.
		rec = trace.New(trace.Unbounded)
		observer = rec.Observer()
	}
	var coll *critpath.Collector
	if critPath {
		coll = critpath.NewCollector(critpath.ClassifierFor(a.Scenario.Algo))
		if observer == nil {
			observer = coll.Observer()
		} else {
			tr, cp := observer, coll.Observer()
			observer = func(ev sim.Event) {
				tr(ev)
				cp(ev)
			}
		}
	}
	out, rp, err := a.Replay(observer)
	if err != nil {
		return fail(err)
	}
	if rec != nil {
		f, err := os.Create(traceFile)
		if err != nil {
			return fail(err)
		}
		if err := rec.DumpJSONL(f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}

	got := explore.Classify(out)
	// Reproduction: a clean replay (no divergence — the schedule fully
	// drove the run) whose violation kind matches what the artifact
	// recorded (both nil for a healthy artifact).
	reproduced := !rp.Diverged() &&
		((got == nil) == (a.Violation == nil)) &&
		(got == nil || got.Kind == a.Violation.Kind)
	o := replayOutput{
		Artifact: path, Violation: got, Recorded: a.Violation,
		Diverged: rp.Diverged(), DivergedAt: rp.DivergedAt(), Reproduced: reproduced,
	}
	if coll != nil {
		o.CritPath = coll.Extract()
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(o); err != nil {
			return fail(err)
		}
	} else {
		fmt.Printf("artifact    %s\n", path)
		fmt.Printf("scenario    %s on %s under %s (seed=%d, crashes=%s, overlay=%s)\n",
			a.Scenario.Algo, a.Scenario.Topo, a.Scenario.Sched, a.Scenario.Seed, a.Scenario.Crashes, a.Scenario.Overlay)
		fmt.Printf("schedule    %d steps, %d deliveries, %d crashes\n",
			len(a.Schedule.Steps), a.Schedule.Deliveries(), len(a.Schedule.Crashes))
		fmt.Printf("replay      diverged=%v events=%d quiescent=%v\n", rp.Diverged(), out.Result.Events, out.Result.Quiescent)
		if got != nil {
			fmt.Printf("violation   %s: %v\n", got.Kind, got.Errors)
		} else {
			fmt.Println("violation   none")
		}
		if o.CritPath != nil {
			if err := o.CritPath.WriteText(os.Stdout); err != nil {
				return fail(err)
			}
		}
		if reproduced {
			fmt.Println("verdict     artifact reproduces")
		} else {
			fmt.Println("verdict     MISMATCH: replay does not reproduce the recorded outcome")
		}
	}
	if !reproduced {
		return 1
	}
	return 0
}
