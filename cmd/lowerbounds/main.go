// Command lowerbounds runs the paper's three impossibility constructions
// as concrete counterexample executions and prints what happened:
//
//   - the Theorem 3.2 / FLP valency exploration with a one-crash
//     non-termination witness for the two-phase algorithm;
//   - the Theorem 3.3 / Figure 1 anonymous split-brain;
//   - the Theorem 3.9 / Figure 2 unknown-n split-brain;
//   - the Theorem 3.10 partition violation for a hasty algorithm.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/core/twophase"
	"github.com/absmac/absmac/internal/lowerbound"
)

func main() {
	d := flag.Int("D", 6, "diameter for the Figure 1 construction (even, >= 6)")
	n := flag.Int("n", 24, "minimum network size for Figure 1")
	kdD := flag.Int("kd", 4, "diameter for the Figure 2 construction (>= 2)")
	flag.Parse()

	fail := false

	fmt.Println("### Theorem 3.2 — FLP generalization (valid-step explorer) ###")
	inputs, ok := lowerbound.FindBivalentInitial(2, twophase.Factory, 0, 40)
	if ok {
		fmt.Printf("bivalent initial configuration of two-phase on n=2: %v\n", inputs)
	} else {
		fmt.Println("NO bivalent initial configuration found (unexpected)")
		fail = true
	}
	schedule, ok := lowerbound.FindStallingSchedule(2, twophase.Factory, []amac.Value{0, 1}, 1, 30)
	if ok {
		fmt.Printf("one-crash schedule freezing the system undecided: %v\n\n", schedule)
	} else {
		fmt.Println("NO stalling schedule found (unexpected)")
		fail = true
	}

	fmt.Println("### Theorem 3.3 — anonymity (Figure 1) ###")
	anon, err := lowerbound.RunAnonImpossibility(*d, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figure 1: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("networks of size n'=%d, diam(A)=%d, diam(B)=%d, round budget %d\n",
		anon.Fig.N, anon.Fig.DiamA, anon.Fig.DiamB, anon.Rounds)
	fmt.Printf("control on network B: consensus OK = %v (id reads: %d)\n", anon.ControlOK, anon.IDReads)
	fmt.Printf("network A with bridge silenced: agreement violated = %v (gadget decisions %d vs %d)\n\n",
		anon.ViolationInA, anon.Gadget0Decision, anon.Gadget1Decision)
	fail = fail || !anon.ControlOK || !anon.ViolationInA

	fmt.Println("### Theorem 3.9 — unknown network size (Figure 2) ###")
	size, err := lowerbound.RunSizeImpossibility(*kdD)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figure 2: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("K_%d with %d nodes, round budget %d\n", *kdD, size.KD.G.N(), size.Rounds)
	fmt.Printf("control on standalone line: consensus OK = %v\n", size.ControlLineOK)
	fmt.Printf("K_D with hub silenced: split-brain = %v (line decisions %d vs %d)\n",
		size.ViolationInKD, size.L1Decision, size.L2Decision)
	fmt.Printf("control with knowledge of n (gatherall): consensus OK = %v\n\n", size.ControlWithNOK)
	fail = fail || !size.ControlLineOK || !size.ViolationInKD || !size.ControlWithNOK

	fmt.Println("### Theorem 3.10 — time lower bound (partition argument) ###")
	part, err := lowerbound.RunPartition(8, 3)
	if err != nil {
		fmt.Fprintf(os.Stderr, "partition: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("line D=%d, Fack=%d: bound floor(D/2)*Fack = %d\n", part.D, part.Fack, part.Bound)
	fmt.Printf("hasty algorithm decided at t=%d (< bound) and violated agreement = %v\n",
		part.HastyDecideTime, part.HastyViolated)
	fail = fail || !part.HastyViolated

	if fail {
		fmt.Fprintln(os.Stderr, "lowerbounds: some construction did not behave as the paper predicts")
		os.Exit(1)
	}
}
