// Command amacsim runs consensus executions in the abstract MAC layer
// simulator — one execution by default, a parallel scenario sweep with
// -sweep. All construction goes through internal/harness, so the
// algorithm, topology, input, scheduler, crash-pattern and overlay names
// accepted here are exactly the harness registries.
//
// Single-cell examples:
//
//	amacsim -algo twophase -topo clique:16 -sched random -fack 8
//	amacsim -algo wpaxos -topo grid:5x5 -sched maxdelay -fack 4
//	amacsim -algo floodpaxos -topo starlines:8x3 -sched sync -v
//	amacsim -algo floodpaxos -topo ring:9 -sched random -fack 4 \
//	        -crash midbroadcast -overlay chords@0.8
//
// In single-cell mode, -trace FILE dumps the full event trace as JSON
// Lines (one trace.JSONLEvent per line — the same format amacexplore's
// replay traces use; -v keeps printing the human-readable trace to
// stdout), and -record FILE records the execution's schedule — every
// delivery plan, unreliable-edge coin and crash time — as a replayable
// counterexample artifact for `amacexplore -replay` / `-minimize` (see
// cmd/amacexplore for the artifact format):
//
//	amacsim -algo wpaxos -topo ring:9 -sched random -fack 4 -seed 4 \
//	        -crash midbroadcast -overlay chords -record stall.json
//	amacexplore -replay stall.json
//
// -metrics turns on the flight-recorder registry (internal/metrics) and
// works in both modes. In single-cell mode it prints the registry's
// name-sorted text dump after the run, followed by the decide-latency
// critical path (internal/critpath): the causal delivery chain from the
// first broadcast to the first decision, with the latency attributed to
// algorithm phases and stalls. In sweep mode it adds an aggregated
// "metrics" array to every JSON cell (counters summed, gauge high-water
// marks maxed, histogram quantiles, across all runs of the cell);
// without the flag the sweep output is byte-identical to a build without
// the metrics layer, and the engine's hot path stays allocation-free.
//
// Sweep mode expands the cross product of comma-separated axes and runs it
// on a GOMAXPROCS-wide worker pool, aggregating each (algo, topo, inputs,
// sched, fack, crashes, overlay) cell over all seeds:
//
//	amacsim -sweep -algos wpaxos,floodpaxos -topos clique:8,grid:3x3 \
//	        -scheds sync,random -facks 2,8 -seeds 8 -json
//	amacsim -sweep -algos floodpaxos -topos ring:9 -scheds random -facks 4 \
//	        -crashes one@0,midbroadcast -overlays randomextra:0.25,chords \
//	        -seeds 8
//
// Sweep grammar:
//
//   - -algos, -scheds, -inputs: comma-separated registry names
//     (algorithms: anonflood | benor | floodpaxos | gatherall | twophase |
//     waitall | wpaxos;
//     schedulers: sync | random | maxdelay | edgeorder;
//     inputs: alternating | zeros | ones | half).
//   - -topos: comma-separated topology specs — clique:N, line:N, ring:N,
//     star:N, grid:RxC, tree:BxD, starlines:AxL, random:N:P,
//     expander:N:D (seeded random D-regular; needs 3 <= D < N, N*D
//     even), pods:P:K:C (P ring-pods of K nodes joined by C cross
//     links per pod). The two seeded sparse families are degree-bounded
//     and built for large n — expander:4096:8 and pods:64:64:4 sweep
//     comfortably.
//   - -facks: comma-separated positive integers.
//   - -crashes: comma-separated crash patterns, grammar name[@T] — none,
//     one@T (highest-index node crashes at T), coordinator (node 0
//     crashes at Fack), midbroadcast (node 0 crashes at max(1, Fack/2),
//     inside its first broadcast window: the Theorem 3.2 crash),
//     minorityrand (a seeded random minority at seeded random times in
//     [0, 4*Fack]). Default none.
//   - -overlays: comma-separated overlay families building the unreliable
//     dual graph (Kuhn–Lynch–Newport model variant), grammar
//     family[:param][@Q] — none, randomextra:P (a seeded random
//     P-fraction of the non-edges; same density every seed), extra:K
//     (K random non-edges), chords (antipodal chords). Q in [0,1] is the
//     delivery probability (default 0.5): the scenario's scheduler is
//     wrapped in the lossy adapter so overlay edges carry messages.
//     Default none.
//   - -seeds: a replication count; seeds 1..k run for every cell.
//
// Sweep mode also accepts -cpuprofile FILE and -memprofile FILE, which
// write pprof CPU and heap profiles covering the whole sweep (worker pool
// included) — the starting point for any wall-clock investigation:
//
//	amacsim -sweep -topos expander:4096:8 -scheds random -seeds 4 \
//	        -cpuprofile cpu.out && go tool pprof cpu.out
//
// With -json the sweep emits a JSON array of cell objects:
//
//	[{"algo": "wpaxos", "topo": "grid:3x3", "inputs": "alternating",
//	  "sched": "random", "crashes": "one@0", "overlay": "extra:4",
//	  "fack": 8, "effective_fack": 8, "n": 9, "diameter": 4,
//	  "runs": 8, "correct": 8, "undecided": 0,
//	  "decide_time": {"min": …, "median": …, "mean": …, "p95": …, "max": …},
//	  "decide_per_fack": …,
//	  "survivor_decide_time": {…}, "faults": {…},
//	  "terminated_despite_faults": 8,
//	  "broadcasts": {…}, "deliveries": {…},
//	  "errors": ["…"]}, …]
//
// where decide_time summarizes per-run decision latency over the runs
// that decided (undecided counts the rest), survivor_decide_time is the
// same latency restricted to nodes that survived the run (the meaningful
// number under crash patterns), faults summarizes the per-run crashed-node
// count, terminated_despite_faults counts runs with at least one crash in
// which every survivor still decided, fack is the requested axis value
// while effective_fack is the bound the scheduler actually declared (they
// differ for edgeorder, whose bound is structural) and normalizes
// decide_per_fack, diameter is the median topology diameter across seeds
// (seed-dependent only for the seeded families random:N:P, expander:N:D
// and pods:P:K:C), broadcasts/deliveries summarize
// MAC-layer message counts, and errors lists the distinct consensus
// violations seen in the cell (absent when none). Consensus properties are
// judged over survivors: a crashed node owes nothing. Without -json the
// same cells render as an aligned text table. Exit status 1 when any run
// violates a consensus property.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/critpath"
	"github.com/absmac/absmac/internal/explore"
	"github.com/absmac/absmac/internal/harness"
	"github.com/absmac/absmac/internal/metrics"
	"github.com/absmac/absmac/internal/sim"
	"github.com/absmac/absmac/internal/trace"
)

func main() {
	// Single-cell flags.
	algo := flag.String("algo", "wpaxos", "algorithm: "+strings.Join(harness.Algorithms(), " | "))
	topo := flag.String("topo", "line:8", "topology spec, e.g. clique:16, grid:4x4, random:24:0.1")
	sched := flag.String("sched", "random", "scheduler: "+strings.Join(harness.Schedulers(), " | "))
	fack := flag.Int64("fack", 4, "scheduler delivery bound Fack")
	seed := flag.Int64("seed", 1, "random seed (scheduler, algorithm, random topology, crashes, overlay)")
	inputs := flag.String("inputs", "alternating",
		"input pattern (comma-separated list in sweep mode): "+strings.Join(harness.InputPatterns(), " | "))
	crash := flag.String("crash", "none", "crash pattern name[@T]: "+strings.Join(harness.CrashPatterns(), " | "))
	overlay := flag.String("overlay", "none", "unreliable overlay family[:param][@Q]: "+strings.Join(harness.Overlays(), " | "))
	verbose := flag.Bool("v", false, "print the full event trace (single-cell mode only)")
	metricsOn := flag.Bool("metrics", false, "flight-recorder metrics: print the registry and the decide-latency critical path after a single run, or add aggregated per-cell metric rows to sweep output")
	traceFile := flag.String("trace", "", "dump the full event trace to this file as JSON Lines (single-cell mode only)")
	recordFile := flag.String("record", "", "record the execution's schedule to this counterexample artifact file (single-cell mode only; replay with amacexplore -replay)")

	// Sweep flags: the axis grammar is shared with amacexplore -grid
	// (harness.RegisterAxisFlags), so both CLIs accept identical sweeps.
	sweep := flag.Bool("sweep", false, "run a scenario sweep instead of a single execution")
	axes := harness.RegisterAxisFlags(flag.CommandLine, "sweep")
	jsonOut := flag.Bool("json", false, "sweep: emit JSON instead of a text table")
	prof := harness.RegisterProfileFlags(flag.CommandLine)
	flag.Parse()

	// Flags have no effect outside their mode; fail loudly rather than
	// let the user attribute results to a flag that was dropped.
	// (-metrics is deliberately in neither set: it means something in both
	// modes.)
	singleOnly := harness.NameSet([]string{"algo", "topo", "sched", "fack", "seed", "crash", "overlay", "v", "trace", "record"})
	sweepOnly := harness.NameSet(axes.Names(), []string{"json"}, prof.Names())
	stray := harness.StrayFlags(flag.CommandLine, func(name string) bool {
		if *sweep {
			return singleOnly[name]
		}
		return sweepOnly[name]
	})
	if len(stray) > 0 {
		if *sweep {
			os.Exit(fail(fmt.Errorf("%s not allowed in sweep mode; use -algos/-topos/-scheds/-facks/-crashes/-overlays/-seeds", strings.Join(stray, ", "))))
		}
		os.Exit(fail(fmt.Errorf("%s only apply with -sweep", strings.Join(stray, ", "))))
	}
	if *sweep {
		grid, err := axes.Grid(*inputs)
		if err != nil {
			os.Exit(fail(err))
		}
		stopProf, err := prof.Start()
		if err != nil {
			os.Exit(fail(err))
		}
		code := runSweep(grid, *axes.Workers, *jsonOut, *metricsOn)
		stopProf()
		os.Exit(code)
	}
	os.Exit(runSingle(*algo, *topo, *sched, *inputs, *crash, *overlay, *traceFile, *recordFile, *fack, *seed, *verbose, *metricsOn))
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "amacsim:", err)
	return 2
}

func runSingle(algo, topo, sched, inputs, crash, overlay, traceFile, recordFile string, fack, seed int64, verbose, metricsOn bool) int {
	t, err := harness.ParseTopo(topo)
	if err != nil {
		return fail(err)
	}
	sc := harness.Scenario{Algo: algo, Topo: t, Inputs: inputs, Sched: sched, Fack: fack, Seed: seed, Crashes: crash, Overlay: overlay}
	var reg *metrics.Registry
	var coll *critpath.Collector
	if metricsOn {
		reg = metrics.New()
		sc.Metrics = reg // flows into every config built from the scenario
		coll = critpath.NewCollector(critpath.ClassifierFor(algo))
	}
	// The display config: the summary lines print facts (edge counts, the
	// crash schedule, the overlay graph) that Outcome does not carry. In
	// -record mode RunRecorded builds its own identical config — scenario
	// construction is deterministic, so both describe the same execution,
	// and the duplicate build is one small graph per CLI invocation.
	cfg, err := sc.Config()
	if err != nil {
		return fail(err)
	}
	var rec *trace.Recorder
	if verbose || traceFile != "" {
		// Unbounded: -v and -trace promise the FULL trace, not the last
		// ring-buffer window of it.
		rec = trace.New(trace.Unbounded)
	}
	obs := chainObservers(rec, coll)
	cfg.Observer = obs
	var res *sim.Result
	var rep *consensus.Report
	diameter := -1
	if recordFile != "" {
		// Record the schedule and write it as a replayable artifact (the
		// escape hatch into amacexplore -replay / -minimize). The recorded
		// run is byte-identical to an unrecorded one.
		var out *harness.Outcome
		var schedule *sim.Schedule
		if obs != nil {
			out, schedule, err = sc.RunRecorded(obs)
		} else {
			out, schedule, err = sc.RunRecorded()
		}
		if err != nil {
			return fail(err)
		}
		res = out.Result
		rep = out.Report
		diameter = out.Diameter // RunRecorded already paid the BFS
		artifact := &explore.Artifact{
			Format: explore.ArtifactFormat, Scenario: sc,
			Schedule: schedule, Violation: explore.Classify(out),
			Note: "amacsim -record",
		}
		if err := artifact.WriteFile(recordFile); err != nil {
			return fail(err)
		}
	} else {
		res = sim.Run(cfg)
		rep = consensus.Check(cfg.Inputs, res)
	}
	if rec != nil {
		if verbose {
			if err := rec.Dump(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "amacsim:", err)
			}
		}
		if traceFile != "" {
			f, err := os.Create(traceFile)
			if err != nil {
				return fail(err)
			}
			if err := rec.DumpJSONL(f); err != nil {
				f.Close()
				return fail(err)
			}
			if err := f.Close(); err != nil {
				return fail(err)
			}
		}
		fmt.Println("trace summary:", rec.Summary())
	}

	g := cfg.Graph
	if diameter < 0 {
		diameter = g.Diameter()
	}
	// Structural schedulers (edgeorder) override the requested bound, so
	// report and normalize by what the scheduler actually declared.
	fack = cfg.Scheduler.Fack()
	fmt.Printf("algorithm   %s\n", algo)
	fmt.Printf("topology    %s (n=%d, m=%d, diameter=%d)\n", t, g.N(), g.M(), diameter)
	if cfg.Unreliable != nil {
		fmt.Printf("overlay     %s (%d unreliable edges)\n", overlay, cfg.Unreliable.M())
	}
	fmt.Printf("scheduler   %s (Fack=%d, seed=%d)\n", sched, fack, seed)
	if len(cfg.Crashes) > 0 {
		fmt.Printf("crashes     %s -> %v (%d crashed)\n", crash, cfg.Crashes, rep.Crashed)
	}
	fmt.Printf("decided     %v\n", res.AllDecided())
	if rep.SomeoneDecided {
		fmt.Printf("value       %d\n", rep.Value)
	}
	if rep.SurvivorDecideTime >= 0 {
		fmt.Printf("decide time %d (%.2f x Fack, %.2f x D*Fack; survivors)\n", rep.SurvivorDecideTime,
			float64(rep.SurvivorDecideTime)/float64(fack),
			float64(rep.SurvivorDecideTime)/float64(fack*int64(diameter+1)))
	} else {
		fmt.Println("decide time n/a (no survivor decided)")
	}
	fmt.Printf("traffic     %d broadcasts, %d deliveries, %d discards\n", res.Broadcasts, res.Deliveries, res.Discards)
	fmt.Printf("agreement   %v\nvalidity    %v\ntermination %v\n", rep.Agreement, rep.Validity, rep.Termination)
	if metricsOn {
		fmt.Println("\nmetrics:")
		if err := reg.WriteText(os.Stdout); err != nil {
			return fail(err)
		}
		fmt.Println()
		if err := coll.Extract().WriteText(os.Stdout); err != nil {
			return fail(err)
		}
	}
	if len(rep.Errors) > 0 {
		fmt.Printf("errors      %v\n", rep.Errors)
		return 1
	}
	return 0
}

// chainObservers fans one engine-event stream out to the trace recorder
// and the critical-path collector, either of which may be absent. Returns
// nil when both are, so the engine skips observer dispatch entirely.
func chainObservers(rec *trace.Recorder, coll *critpath.Collector) func(sim.Event) {
	switch {
	case rec == nil && coll == nil:
		return nil
	case coll == nil:
		return rec.Observer()
	case rec == nil:
		return coll.Observer()
	}
	tr, cp := rec.Observer(), coll.Observer()
	return func(ev sim.Event) {
		tr(ev)
		cp(ev)
	}
}

func runSweep(grid harness.Grid, workers int, jsonOut, metricsOn bool) int {
	// Expand to cell work-units and sweep them directly: one worker runs
	// all seeds of a cell on one reusable engine, and workers share the
	// sweep's topology/diameter/overlay caches.
	work, err := grid.Cells()
	if err != nil {
		return fail(err)
	}
	cells, err := harness.SweepCellsOpts(work, harness.SweepOptions{Workers: workers, Metrics: metricsOn})
	if err != nil {
		return fail(err)
	}
	if !jsonOut {
		fmt.Printf("%d scenarios, %d cells\n\n", len(work)*len(grid.Seeds), len(cells))
	}
	bad, err := harness.Report(os.Stdout, cells, jsonOut)
	if err != nil {
		return fail(err)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "amacsim: %d cell(s) contain consensus violations\n", bad)
		return 1
	}
	return 0
}
