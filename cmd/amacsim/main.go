// Command amacsim runs one consensus execution in the abstract MAC layer
// simulator and reports the outcome: which algorithm, on which topology,
// under which scheduler.
//
// Examples:
//
//	amacsim -algo twophase -topo clique -n 16 -sched random -fack 8
//	amacsim -algo wpaxos -topo grid -rows 5 -cols 5 -sched maxdelay -fack 4
//	amacsim -algo floodpaxos -topo starlines -arms 8 -armlen 3 -sched sync
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/baseline/floodpaxos"
	"github.com/absmac/absmac/internal/baseline/gatherall"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/core/twophase"
	"github.com/absmac/absmac/internal/core/wpaxos"
	"github.com/absmac/absmac/internal/ext/benor"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
	"github.com/absmac/absmac/internal/trace"
)

func main() {
	algo := flag.String("algo", "wpaxos", "algorithm: twophase | wpaxos | floodpaxos | gatherall | benor")
	topo := flag.String("topo", "line", "topology: clique | line | ring | star | grid | tree | starlines | random")
	n := flag.Int("n", 8, "node count (clique/line/ring/star/random)")
	rows := flag.Int("rows", 4, "grid rows")
	cols := flag.Int("cols", 4, "grid cols")
	branch := flag.Int("branch", 2, "tree branching factor")
	depth := flag.Int("depth", 3, "tree depth")
	arms := flag.Int("arms", 4, "star-of-lines arms")
	armLen := flag.Int("armlen", 2, "star-of-lines arm length")
	p := flag.Float64("p", 0.1, "random graph edge probability")
	sched := flag.String("sched", "random", "scheduler: sync | random | maxdelay | edgeorder")
	fack := flag.Int64("fack", 4, "scheduler delivery bound Fack")
	seed := flag.Int64("seed", 1, "random seed (scheduler and random topology)")
	inputs := flag.String("inputs", "alternating", "inputs: alternating | zeros | ones | half")
	verbose := flag.Bool("v", false, "print the full event trace")
	flag.Parse()

	g, err := buildGraph(*topo, *n, *rows, *cols, *branch, *depth, *arms, *armLen, *p, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amacsim:", err)
		os.Exit(2)
	}
	ins, err := buildInputs(*inputs, g.N())
	if err != nil {
		fmt.Fprintln(os.Stderr, "amacsim:", err)
		os.Exit(2)
	}
	factory, err := buildFactory(*algo, g.N(), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amacsim:", err)
		os.Exit(2)
	}
	scheduler, err := buildScheduler(*sched, *fack, *seed, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amacsim:", err)
		os.Exit(2)
	}

	cfg := sim.Config{
		Graph:           g,
		Inputs:          ins,
		Factory:         factory,
		Scheduler:       scheduler,
		StopWhenDecided: true,
		Audit:           true,
	}
	var rec *trace.Recorder
	if *verbose {
		rec = trace.New(0)
		cfg.Observer = rec.Observer()
	}
	res := sim.Run(cfg)
	rep := consensus.Check(ins, res)
	if rec != nil {
		if err := rec.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "amacsim:", err)
		}
		fmt.Println("trace summary:", rec.Summary())
	}

	fmt.Printf("algorithm   %s\n", *algo)
	fmt.Printf("topology    %s (n=%d, m=%d, diameter=%d)\n", *topo, g.N(), g.M(), g.Diameter())
	fmt.Printf("scheduler   %s (Fack=%d, seed=%d)\n", *sched, *fack, *seed)
	fmt.Printf("decided     %v\n", res.AllDecided())
	if rep.SomeoneDecided {
		fmt.Printf("value       %d\n", rep.Value)
	}
	fmt.Printf("decide time %d (%.2f x Fack, %.2f x D*Fack)\n", res.MaxDecideTime,
		float64(res.MaxDecideTime)/float64(*fack),
		float64(res.MaxDecideTime)/float64(*fack*int64(g.Diameter()+1)))
	fmt.Printf("traffic     %d broadcasts, %d deliveries, %d discards\n", res.Broadcasts, res.Deliveries, res.Discards)
	fmt.Printf("agreement   %v\nvalidity    %v\ntermination %v\n", rep.Agreement, rep.Validity, rep.Termination)
	if len(rep.Errors) > 0 {
		fmt.Printf("errors      %v\n", rep.Errors)
		os.Exit(1)
	}
}

func buildGraph(topo string, n, rows, cols, branch, depth, arms, armLen int, p float64, seed int64) (*graph.Graph, error) {
	switch topo {
	case "clique":
		return graph.Clique(n), nil
	case "line":
		return graph.Line(n), nil
	case "ring":
		return graph.Ring(n), nil
	case "star":
		return graph.Star(n), nil
	case "grid":
		return graph.Grid(rows, cols), nil
	case "tree":
		return graph.BalancedTree(branch, depth), nil
	case "starlines":
		return graph.StarOfLines(arms, armLen), nil
	case "random":
		return graph.RandomConnected(n, p, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}

func buildInputs(kind string, n int) ([]amac.Value, error) {
	ins := make([]amac.Value, n)
	switch kind {
	case "alternating":
		for i := range ins {
			ins[i] = amac.Value(i % 2)
		}
	case "zeros":
	case "ones":
		for i := range ins {
			ins[i] = 1
		}
	case "half":
		for i := n / 2; i < n; i++ {
			ins[i] = 1
		}
	default:
		return nil, fmt.Errorf("unknown input pattern %q", kind)
	}
	return ins, nil
}

func buildFactory(algo string, n int, seed int64) (amac.Factory, error) {
	switch algo {
	case "twophase":
		return twophase.Factory, nil
	case "wpaxos":
		return wpaxos.NewFactory(wpaxos.Config{N: n}), nil
	case "floodpaxos":
		return floodpaxos.NewFactory(n), nil
	case "gatherall":
		return gatherall.NewFactory(n), nil
	case "benor":
		return benor.NewFactory(benor.Config{N: n, F: (n - 1) / 2, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func buildScheduler(kind string, fack, seed int64, g *graph.Graph) (sim.Scheduler, error) {
	switch kind {
	case "sync":
		return sim.Synchronous{Round: fack}, nil
	case "random":
		return sim.NewRandom(fack, seed), nil
	case "maxdelay":
		return sim.MaxDelay{F: fack}, nil
	case "edgeorder":
		maxDeg := 0
		for u := 0; u < g.N(); u++ {
			if d := g.Degree(u); d > maxDeg {
				maxDeg = d
			}
		}
		return sim.EdgeOrder{MaxDegree: maxDeg}, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", kind)
	}
}
