// Command amacsim runs consensus executions in the abstract MAC layer
// simulator — one execution by default, a parallel scenario sweep with
// -sweep. All construction goes through internal/harness, so the algorithm,
// topology, input and scheduler names accepted here are exactly the
// harness registries.
//
// Single-cell examples:
//
//	amacsim -algo twophase -topo clique:16 -sched random -fack 8
//	amacsim -algo wpaxos -topo grid:5x5 -sched maxdelay -fack 4
//	amacsim -algo floodpaxos -topo starlines:8x3 -sched sync -v
//
// Sweep mode expands the cross product of comma-separated axes and runs it
// on a GOMAXPROCS-wide worker pool, aggregating each (algo, topo, inputs,
// sched, fack) cell over all seeds:
//
//	amacsim -sweep -algos wpaxos,floodpaxos -topos clique:8,grid:3x3 \
//	        -scheds sync,random -facks 2,8 -seeds 8 -json
//
// Sweep grammar:
//
//   - -algos, -scheds, -inputs: comma-separated registry names
//     (algorithms: twophase | wpaxos | floodpaxos | gatherall | benor;
//     schedulers: sync | random | maxdelay | edgeorder;
//     inputs: alternating | zeros | ones | half).
//   - -topos: comma-separated topology specs — clique:N, line:N, ring:N,
//     star:N, grid:RxC, tree:BxD, starlines:AxL, random:N:P.
//   - -facks: comma-separated positive integers.
//   - -seeds: a replication count; seeds 1..k run for every cell.
//
// With -json the sweep emits a JSON array of cell objects:
//
//	[{"algo": "wpaxos", "topo": "grid:3x3", "inputs": "alternating",
//	  "sched": "random", "fack": 8, "effective_fack": 8,
//	  "n": 9, "diameter": 4,
//	  "runs": 8, "correct": 8, "undecided": 0,
//	  "decide_time": {"min": …, "median": …, "mean": …, "p95": …, "max": …},
//	  "decide_per_fack": …,
//	  "broadcasts": {…}, "deliveries": {…},
//	  "errors": ["…"]}, …]
//
// where decide_time summarizes per-run decision latency over the runs
// that decided (undecided counts the rest), fack is the requested axis
// value while effective_fack is the bound the scheduler actually declared
// (they differ for edgeorder, whose bound is structural) and normalizes
// decide_per_fack, diameter is the median topology diameter across seeds
// (seed-dependent only for random:N:P), broadcasts/deliveries summarize
// MAC-layer message counts, and errors lists the distinct consensus
// violations seen in the cell (absent when none). Without -json the same
// cells render as an aligned text table. Exit status 1 when any run
// violates a consensus property.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/harness"
	"github.com/absmac/absmac/internal/sim"
	"github.com/absmac/absmac/internal/trace"
)

func main() {
	// Single-cell flags.
	algo := flag.String("algo", "wpaxos", "algorithm: "+strings.Join(harness.Algorithms(), " | "))
	topo := flag.String("topo", "line:8", "topology spec, e.g. clique:16, grid:4x4, random:24:0.1")
	sched := flag.String("sched", "random", "scheduler: "+strings.Join(harness.Schedulers(), " | "))
	fack := flag.Int64("fack", 4, "scheduler delivery bound Fack")
	seed := flag.Int64("seed", 1, "random seed (scheduler, algorithm and random topology)")
	inputs := flag.String("inputs", "alternating",
		"input pattern (comma-separated list in sweep mode): "+strings.Join(harness.InputPatterns(), " | "))
	verbose := flag.Bool("v", false, "print the full event trace (single-cell mode only)")

	// Sweep flags.
	sweep := flag.Bool("sweep", false, "run a scenario sweep instead of a single execution")
	algos := flag.String("algos", "wpaxos", "sweep: comma-separated algorithms")
	topos := flag.String("topos", "clique:8,grid:3x3", "sweep: comma-separated topology specs")
	scheds := flag.String("scheds", "sync,random", "sweep: comma-separated schedulers")
	facks := flag.String("facks", "4", "sweep: comma-separated Fack values")
	seeds := flag.Int("seeds", 8, "sweep: seeds 1..k per cell")
	workers := flag.Int("workers", 0, "sweep: worker pool width (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "sweep: emit JSON instead of a text table")
	flag.Parse()

	// Flags have no effect outside their mode; fail loudly rather than
	// let the user attribute results to a flag that was dropped.
	singleOnly := map[string]bool{"algo": true, "topo": true, "sched": true, "fack": true, "seed": true, "v": true}
	sweepOnly := map[string]bool{"algos": true, "topos": true, "scheds": true, "facks": true, "seeds": true, "workers": true, "json": true}
	var stray []string
	flag.Visit(func(f *flag.Flag) {
		if (*sweep && singleOnly[f.Name]) || (!*sweep && sweepOnly[f.Name]) {
			stray = append(stray, "-"+f.Name)
		}
	})
	if len(stray) > 0 {
		if *sweep {
			os.Exit(fail(fmt.Errorf("%s not allowed in sweep mode; use -algos/-topos/-scheds/-facks/-seeds", strings.Join(stray, ", "))))
		}
		os.Exit(fail(fmt.Errorf("%s only apply with -sweep", strings.Join(stray, ", "))))
	}
	if *sweep {
		os.Exit(runSweep(*algos, *topos, *scheds, *facks, *inputs, *seeds, *workers, *jsonOut))
	}
	os.Exit(runSingle(*algo, *topo, *sched, *inputs, *fack, *seed, *verbose))
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "amacsim:", err)
	return 2
}

func runSingle(algo, topo, sched, inputs string, fack, seed int64, verbose bool) int {
	t, err := harness.ParseTopo(topo)
	if err != nil {
		return fail(err)
	}
	sc := harness.Scenario{Algo: algo, Topo: t, Inputs: inputs, Sched: sched, Fack: fack, Seed: seed}
	cfg, err := sc.Config()
	if err != nil {
		return fail(err)
	}
	var rec *trace.Recorder
	if verbose {
		rec = trace.New(0)
		cfg.Observer = rec.Observer()
	}
	res := sim.Run(cfg)
	rep := consensus.Check(cfg.Inputs, res)
	if rec != nil {
		if err := rec.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "amacsim:", err)
		}
		fmt.Println("trace summary:", rec.Summary())
	}

	g := cfg.Graph
	// Structural schedulers (edgeorder) override the requested bound, so
	// report and normalize by what the scheduler actually declared.
	fack = cfg.Scheduler.Fack()
	fmt.Printf("algorithm   %s\n", algo)
	fmt.Printf("topology    %s (n=%d, m=%d, diameter=%d)\n", t, g.N(), g.M(), g.Diameter())
	fmt.Printf("scheduler   %s (Fack=%d, seed=%d)\n", sched, fack, seed)
	fmt.Printf("decided     %v\n", res.AllDecided())
	if rep.SomeoneDecided {
		fmt.Printf("value       %d\n", rep.Value)
	}
	if res.MaxDecideTime >= 0 {
		fmt.Printf("decide time %d (%.2f x Fack, %.2f x D*Fack)\n", res.MaxDecideTime,
			float64(res.MaxDecideTime)/float64(fack),
			float64(res.MaxDecideTime)/float64(fack*int64(g.Diameter()+1)))
	} else {
		fmt.Println("decide time n/a (nobody decided)")
	}
	fmt.Printf("traffic     %d broadcasts, %d deliveries, %d discards\n", res.Broadcasts, res.Deliveries, res.Discards)
	fmt.Printf("agreement   %v\nvalidity    %v\ntermination %v\n", rep.Agreement, rep.Validity, rep.Termination)
	if len(rep.Errors) > 0 {
		fmt.Printf("errors      %v\n", rep.Errors)
		return 1
	}
	return 0
}

func runSweep(algos, topos, scheds, facks, inputs string, seeds, workers int, jsonOut bool) int {
	grid := harness.Grid{
		Algos:  splitList(algos),
		Scheds: splitList(scheds),
		Inputs: splitList(inputs),
	}
	for _, s := range splitList(topos) {
		t, err := harness.ParseTopo(s)
		if err != nil {
			return fail(err)
		}
		grid.Topos = append(grid.Topos, t)
	}
	for _, s := range splitList(facks) {
		f, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fail(fmt.Errorf("bad -facks entry %q: %w", s, err))
		}
		grid.Facks = append(grid.Facks, f)
	}
	for s := int64(1); s <= int64(seeds); s++ {
		grid.Seeds = append(grid.Seeds, s)
	}

	scs, err := grid.Scenarios()
	if err != nil {
		return fail(err)
	}
	cells, err := harness.Sweep(scs, workers)
	if err != nil {
		return fail(err)
	}
	if !jsonOut {
		fmt.Printf("%d scenarios, %d cells\n\n", len(scs), len(cells))
	}
	bad, err := harness.Report(os.Stdout, cells, jsonOut)
	if err != nil {
		return fail(err)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "amacsim: %d cell(s) contain consensus violations\n", bad)
		return 1
	}
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
