module github.com/absmac/absmac

go 1.24
