// Sensorfield: a 6x6 grid of wireless sensors must agree on a binary
// actuation decision (e.g. "raise the alarm") using wPAXOS — the paper's
// multihop algorithm — while a cluster of sensors with weak radios is 25x
// slower than the rest. wPAXOS only needs a majority of acceptors, so the
// slow minority does not hold up the decision (the reason the paper builds
// on PAXOS rather than gathering all values).
//
// Run with:
//
//	go run ./examples/sensorfield
package main

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/core/wpaxos"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

func main() {
	const rows, cols = 6, 6
	g := graph.Grid(rows, cols)
	n := g.N()

	// A third of the field detected the event and proposes 1.
	inputs := make([]amac.Value, n)
	for i := 0; i < n; i += 3 {
		inputs[i] = 1
	}

	// The bottom-left 3x3 corner has weak radios: everything those nodes
	// send is delayed 25x (still within the scheduler's declared Fack).
	slow := map[int]bool{}
	for r := 3; r < 6; r++ {
		for c := 0; c < 3; c++ {
			slow[r*cols+c] = true
		}
	}
	sched := sim.SlowSubset{
		Base:   sim.NewRandom(4, 7),
		Slow:   slow,
		Factor: 25,
	}

	audit := wpaxos.NewCountAudit()
	var nodes []*wpaxos.Node
	factory := func(nc amac.NodeConfig) amac.Algorithm {
		nd := wpaxos.New(nc.Input, wpaxos.Config{N: n, Audit: audit})
		nodes = append(nodes, nd)
		return nd
	}

	res := sim.Run(sim.Config{
		Graph:           g,
		Inputs:          inputs,
		Factory:         factory,
		Scheduler:       sched,
		StopWhenDecided: true,
		Audit:           true,
	})
	rep := consensus.Check(inputs, res)

	fmt.Printf("grid %dx%d (diameter %d), %d slow sensors (25x delays)\n", rows, cols, g.Diameter(), len(slow))
	fmt.Printf("all decided:   %v, value %d\n", res.AllDecided(), rep.Value)
	fmt.Printf("consensus:     agreement=%v validity=%v termination=%v\n", rep.Agreement, rep.Validity, rep.Termination)
	fmt.Printf("aggregation:   %d propositions audited, %d Lemma 4.2 violations\n",
		audit.Propositions(), len(audit.Violations()))

	// How fast did the healthy majority decide, versus the field total?
	fastest := res.MaxDecideTime
	var slowest int64
	for i, t := range res.DecideTime {
		if !res.Decided[i] {
			continue
		}
		if !slow[i] && t < fastest {
			fastest = t
		}
		if t > slowest {
			slowest = t
		}
	}
	fmt.Printf("decide times:  healthy majority first at t=%d, whole field done by t=%d\n", fastest, slowest)
	fmt.Printf("leader:        node id %d (max id wins the election)\n", nodes[0].Leader())
}
