// Partition: two ways to split a network, and what each one costs.
//
// Part I is the Figure 2 lower-bound construction (Theorem 3.9): an
// algorithm with unique ids and a correct diameter bound — but no
// knowledge of the network size — runs on K_D while the adversarial
// scheduler silences the hub. Each line of K_D is then indistinguishable
// from a standalone line, so the 0-line decides 0 and the 1-line decides
// 1: a split-brain. Give the algorithm n (gatherall) and the construction
// loses its power.
//
// Part II partitions by crashing instead of silencing, built entirely
// from the harness adversity registries (the same crash patterns behind
// `amacsim -crash` and the sweep fault axes). Killing the hub of a
// star-of-lines physically splits the network: wPAXOS stalls — neither
// arm can assemble a majority — but it never split-brains, because a real
// crash, unlike adversarial silence, cannot later "wake up" and is
// covered by wPAXOS's quorum math. A crash pattern that leaves the
// majority intact (a mid-broadcast crash on a clique, the Theorem 3.2
// failure) costs nothing: the survivors decide and consensus holds.
//
// Run with:
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"os"

	"github.com/absmac/absmac/internal/harness"
	"github.com/absmac/absmac/internal/lowerbound"
)

func main() {
	const d = 6
	res, err := lowerbound.RunSizeImpossibility(d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
	fmt.Println("Part I — partition by silence (Theorem 3.9)")
	fmt.Printf("K_%d: two lines of %d nodes plus a %d-node tail, all wired to one hub (%d nodes total)\n",
		d, d+1, d-1, res.KD.G.N())
	fmt.Printf("round budget from the (known) diameter bound: %d\n\n", res.Rounds)

	fmt.Println("1. Control: the n-oblivious gatherer on a standalone line, synchronous scheduler.")
	fmt.Printf("   consensus OK: %v  (this is Lemma 3.8: the algorithm is fine when the network IS a line)\n\n", res.ControlLineOK)

	fmt.Println("2. The construction: same algorithm on K_D, hub silenced by the scheduler.")
	fmt.Printf("   split-brain: %v — the all-zeros line decided %d, the all-ones line decided %d\n",
		res.ViolationInKD, res.L1Decision, res.L2Decision)
	fmt.Println("   (each line cannot tell K_D from the standalone line of Lemma 3.8: Theorem 3.9)")
	fmt.Println()

	fmt.Println("3. Control: gatherall, which knows n, on the same K_D under the same scheduler.")
	fmt.Printf("   consensus OK: %v  (knowing n, it simply waits out the silence)\n\n", res.ControlWithNOK)

	// Part II assembles everything by registry name — the same specs work
	// as `amacsim -crash coordinator` or as `-crashes`/`-overlays` sweep
	// axes.
	fmt.Println("Part II — partition by crashing (adversity registries)")

	hubCrash, err := harness.Scenario{
		Algo: "wpaxos",
		Topo: harness.Topo{Kind: "starlines", Arms: 2, ArmLen: 3},
		// "coordinator" crashes node 0 — the hub — right after its first
		// broadcast window, physically splitting the two arms.
		Crashes:   "coordinator",
		Sched:     "random",
		Fack:      4,
		Seed:      1,
		MaxEvents: 500_000,
	}.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
	// No survivor can decide: each 3-node arm is below the majority of 7.
	// The run is not quiescent — since the Ω failure-detector redesign the
	// survivors keep suspecting, rotating and retransmitting — so it ends
	// only at the event cap, still undecided.
	stalled := !hubCrash.Report.SomeoneDecided && hubCrash.Result.Cutoff
	fmt.Println("4. wPAXOS on starlines:2x3 with the hub crashed (crashes=coordinator).")
	fmt.Printf("   stalled: %v, split-brain: %v — no 3-node arm can reach a majority of 7,\n", stalled, !hubCrash.Report.Agreement)
	fmt.Println("   so wPAXOS searches forever rather than decide inconsistently (safety over liveness)")
	fmt.Println()

	majority, err := harness.Scenario{
		Algo: "wpaxos",
		Topo: harness.Topo{Kind: "clique", N: 8},
		// Theorem 3.2's failure: node 0 dies inside its first broadcast
		// window, so some neighbors saw the message and the rest did not.
		Crashes:   "midbroadcast",
		Sched:     "random",
		Fack:      4,
		Seed:      1,
		MaxEvents: 500_000,
	}.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
	fmt.Println("5. Same algorithm, survivable fault: wPAXOS on clique:8, mid-broadcast crash of node 0.")
	fmt.Printf("   consensus OK: %v — %d crashed, survivors decided %d by t=%d (termination despite faults)\n",
		majority.OK(), majority.Report.Crashed, majority.Report.Value, majority.Report.SurvivorDecideTime)

	if !res.ViolationInKD || !res.ControlLineOK || !res.ControlWithNOK ||
		!stalled || !hubCrash.Report.Agreement || !majority.OK() {
		os.Exit(1)
	}
}
