// Partition: watch the Figure 2 lower-bound construction (Theorem 3.9)
// split a network. An algorithm with unique ids and a correct diameter
// bound — but no knowledge of the network size — runs on K_D while the
// adversarial scheduler silences the hub. Each line of K_D is then
// indistinguishable from a standalone line, so the 0-line decides 0 and
// the 1-line decides 1: a split-brain. Give the algorithm n (gatherall)
// and the construction loses its power.
//
// Run with:
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"os"

	"github.com/absmac/absmac/internal/lowerbound"
)

func main() {
	const d = 6
	res, err := lowerbound.RunSizeImpossibility(d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
	fmt.Printf("K_%d: two lines of %d nodes plus a %d-node tail, all wired to one hub (%d nodes total)\n",
		d, d+1, d-1, res.KD.G.N())
	fmt.Printf("round budget from the (known) diameter bound: %d\n\n", res.Rounds)

	fmt.Println("1. Control: the n-oblivious gatherer on a standalone line, synchronous scheduler.")
	fmt.Printf("   consensus OK: %v  (this is Lemma 3.8: the algorithm is fine when the network IS a line)\n\n", res.ControlLineOK)

	fmt.Println("2. The construction: same algorithm on K_D, hub silenced by the scheduler.")
	fmt.Printf("   split-brain: %v — the all-zeros line decided %d, the all-ones line decided %d\n",
		res.ViolationInKD, res.L1Decision, res.L2Decision)
	fmt.Println("   (each line cannot tell K_D from the standalone line of Lemma 3.8: Theorem 3.9)")
	fmt.Println()

	fmt.Println("3. Control: gatherall, which knows n, on the same K_D under the same scheduler.")
	fmt.Printf("   consensus OK: %v  (knowing n, it simply waits out the silence)\n", res.ControlWithNOK)

	if !res.ViolationInKD || !res.ControlLineOK || !res.ControlWithNOK {
		os.Exit(1)
	}
}
