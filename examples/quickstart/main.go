// Quickstart: solve consensus on an 8-node single-hop network with the
// paper's two-phase algorithm (Algorithm 1), on the deterministic
// simulator, under a randomized message scheduler.
//
// The scenario is assembled by internal/harness — the same named
// registries behind cmd/amacsim — so this example stays in lockstep with
// the CLIs: `amacsim -algo twophase -topo clique:8 -sched random -fack 10
// -seed 42` runs the same execution (modulo the custom input assignment
// below).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/harness"
)

func main() {
	const n = 8
	// Initial values: three nodes propose 1, the rest 0.
	inputs := make([]amac.Value, n)
	inputs[1], inputs[4], inputs[6] = 1, 1, 1

	out, err := harness.Scenario{
		Algo: "twophase", // no knowledge of n required!
		Topo: harness.Topo{Kind: "clique", N: n},
		// The scheduler is the adversary: deliveries and acks land at
		// arbitrary times within Fack=10 of each broadcast.
		Sched:       "random",
		Fack:        10,
		Seed:        42,
		InputValues: inputs,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	res, rep := out.Result, out.Report
	fmt.Printf("inputs:       %v\n", inputs)
	fmt.Printf("all decided:  %v\n", res.AllDecided())
	fmt.Printf("agreed value: %d\n", rep.Value)
	fmt.Printf("decide time:  %d (Fack=10; Theorem 4.1 promises O(Fack))\n", res.MaxDecideTime)
	fmt.Printf("agreement=%v validity=%v termination=%v\n", rep.Agreement, rep.Validity, rep.Termination)
}
