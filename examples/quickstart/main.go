// Quickstart: solve consensus on an 8-node single-hop network with the
// paper's two-phase algorithm (Algorithm 1), on the deterministic
// simulator, under a randomized message scheduler.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/consensus"
	"github.com/absmac/absmac/internal/core/twophase"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/sim"
)

func main() {
	const n = 8
	// Initial values: three nodes propose 1, the rest 0.
	inputs := make([]amac.Value, n)
	inputs[1], inputs[4], inputs[6] = 1, 1, 1

	res := sim.Run(sim.Config{
		Graph:   graph.Clique(n),
		Inputs:  inputs,
		Factory: twophase.Factory, // no knowledge of n required!
		// The scheduler is the adversary: deliveries and acks land at
		// arbitrary times within Fack=10 of each broadcast.
		Scheduler:       sim.NewRandom(10, 42),
		StopWhenDecided: true,
		Audit:           true, // enforce the O(1)-ids-per-message model bound
	})

	rep := consensus.Check(inputs, res)
	fmt.Printf("inputs:       %v\n", inputs)
	fmt.Printf("all decided:  %v\n", res.AllDecided())
	fmt.Printf("agreed value: %d\n", rep.Value)
	fmt.Printf("decide time:  %d (Fack=10; Theorem 4.1 promises O(Fack))\n", res.MaxDecideTime)
	fmt.Printf("agreement=%v validity=%v termination=%v\n", rep.Agreement, rep.Validity, rep.Termination)
}
