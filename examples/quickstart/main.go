// Quickstart: solve consensus on an 8-node single-hop network with the
// paper's two-phase algorithm (Algorithm 1), on the deterministic
// simulator, under a randomized message scheduler.
//
// The scenario is assembled by internal/harness — the same named
// registries behind cmd/amacsim — so this example stays in lockstep with
// the CLIs: `amacsim -algo twophase -topo clique:8 -sched random -fack 10
// -seed 42` runs the same execution (modulo the custom input assignment
// below).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/explore"
	"github.com/absmac/absmac/internal/harness"
)

func main() {
	const n = 8
	// Initial values: three nodes propose 1, the rest 0.
	inputs := make([]amac.Value, n)
	inputs[1], inputs[4], inputs[6] = 1, 1, 1

	out, err := harness.Scenario{
		Algo: "twophase", // no knowledge of n required!
		Topo: harness.Topo{Kind: "clique", N: n},
		// The scheduler is the adversary: deliveries and acks land at
		// arbitrary times within Fack=10 of each broadcast.
		Sched:       "random",
		Fack:        10,
		Seed:        42,
		InputValues: inputs,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	res, rep := out.Result, out.Report
	fmt.Printf("inputs:       %v\n", inputs)
	fmt.Printf("all decided:  %v\n", res.AllDecided())
	fmt.Printf("agreed value: %d\n", rep.Value)
	fmt.Printf("decide time:  %d (Fack=10; Theorem 4.1 promises O(Fack))\n", res.MaxDecideTime)
	fmt.Printf("agreement=%v validity=%v termination=%v\n", rep.Agreement, rep.Validity, rep.Termination)

	// One execution is an anecdote; the harness measures distributions.
	// A Grid expands to cell work-units — here a single cell whose seeds
	// 1..32 replicate the scenario above — and SweepCells runs each cell's
	// seeds back to back on a reusable engine, aggregating latency and
	// message statistics. (This is the same path behind `amacsim -sweep`.)
	seeds := make([]int64, 32)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	work, err := harness.Grid{
		Algos:  []string{"twophase"},
		Topos:  []harness.Topo{{Kind: "clique", N: n}},
		Scheds: []string{"random"},
		Facks:  []int64{10},
		Inputs: []string{"half"},
		Seeds:  seeds,
	}.Cells()
	if err != nil {
		log.Fatal(err)
	}
	cells, err := harness.SweepCells(work, 0)
	if err != nil {
		log.Fatal(err)
	}
	c := cells[0]
	fmt.Printf("\nacross %d seeds of the same cell: correct %d/%d, decide time median %.0f p95 %.0f (x Fack: %.2f)\n",
		len(seeds), c.Correct, c.Runs, c.Decide.Median, c.Decide.P95, c.DecidePerFack)

	// Every run is also recordable: RunRecorded captures the scheduler's
	// every decision into a Schedule that replays byte-identically — and
	// perturbs. Here we swap the delivery order of the very first
	// broadcast and replay; any execution within the Fack bound must still
	// satisfy the consensus properties. (cmd/amacexplore automates this
	// search and minimizes what it finds; see internal/explore.)
	recorded, schedule, err := harness.Scenario{
		Algo: "twophase", Topo: harness.Topo{Kind: "clique", N: n},
		Sched: "random", Fack: 10, Seed: 42, InputValues: inputs,
	}.RunRecorded()
	if err != nil {
		log.Fatal(err)
	}
	perturbed := schedule.Clone()
	swapped := false
	for k := 0; k < len(perturbed.Steps) && !swapped; k++ {
		// SwapRecv refuses no-op swaps (equal times, single recipient);
		// find the first step where the reordering is real.
		swapped = perturbed.SwapRecv(k, 0, 1)
	}
	if !swapped {
		log.Fatal("no step had two distinct delivery times to swap")
	}
	runner, err := harness.Scenario{
		Algo: "twophase", Topo: harness.Topo{Kind: "clique", N: n},
		Sched: "random", Fack: 10, Seed: 42, InputValues: inputs,
	}.NewReplayRunner()
	if err != nil {
		log.Fatal(err)
	}
	replayed, rp, err := runner.Run(perturbed, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecorded %d broadcast decisions (decide time %d); perturbed replay (diverged=%v) still correct: %v (decide time %d)\n",
		len(schedule.Steps), recorded.Result.MaxDecideTime, rp.Diverged(), replayed.Report.OK(), replayed.Result.MaxDecideTime)

	// Act 4 — sweep → campaign → minimized artifact. A campaign composes
	// the two pipelines above: sweep a whole grid with schedule-coverage
	// fingerprints on, stream every violating (scenario, seed) out of the
	// cell workers, and delta-debug one flagged run per cell into a
	// minimal replayable counterexample. This grid pairs the canonical
	// violating cell — two-phase consensus losing its coordinator, the
	// paper's Theorem 3.2 counterexample: every witness strands forever —
	// with wPAXOS in the same cell, which survives the crash (since the Ω
	// failure-detector redesign it rotates to a live proposer; see
	// doc.go's "Liveness under leader death"). (`amacexplore -grid` is
	// the CLI face of exactly this call.)
	campaign, err := explore.Campaign(harness.Grid{
		Algos:    []string{"twophase", "wpaxos"},
		Topos:    []harness.Topo{{Kind: "ring", N: 9}},
		Scheds:   []string{"random"},
		Facks:    []int64{4},
		Crashes:  []string{"coordinator"},
		Overlays: []string{"chords"},
		Seeds:    []int64{1, 2, 3, 4, 5, 6, 7, 8},
	}, explore.CampaignOptions{MaxEvents: 200_000, Minimize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncampaign over %d cells (%d runs): %d flagged run(s) in %d cell(s)\n",
		len(campaign.Cells), campaign.Runs, campaign.Flagged, campaign.CellsFlagged)
	for _, cov := range campaign.Coverage {
		c := &campaign.Cells[cov.Cell]
		fmt.Printf("  %-10s exercised %d distinct delivery orderings over %d seeds, flagged %d\n",
			c.Algo, cov.Distinct, cov.Runs, cov.Flagged)
	}
	for _, f := range campaign.Findings {
		fmt.Printf("  minimized %s counterexample: %s on %s, seed %d -> %d steps, %d deliveries (replayable artifact)\n",
			f.Violation.Kind, f.Scenario.Algo, f.Scenario.Topo, f.Scenario.Seed, f.Steps, f.Deliveries)
	}
}
