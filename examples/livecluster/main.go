// Livecluster: the same consensus state machines that run on the simulator
// run here on two real substrates — the goroutine runtime (every node a
// goroutine, the MAC layer real timers) and the UDP runtime (every node a
// loopback UDP socket, messages gob-encoded, reliability by
// retransmission). This is the paper's deployability claim in action: the
// algorithms are unchanged, only the substrate differs.
//
// Run with:
//
//	go run ./examples/livecluster
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/absmac/absmac/internal/amac"
	"github.com/absmac/absmac/internal/core/twophase"
	"github.com/absmac/absmac/internal/core/wpaxos"
	"github.com/absmac/absmac/internal/graph"
	"github.com/absmac/absmac/internal/live"
	"github.com/absmac/absmac/internal/netmac"
)

func main() {
	run := func(name string, g *graph.Graph, factory amac.Factory, inputs []amac.Value) {
		res, err := live.Run(context.Background(), live.Config{
			Graph:   g,
			Inputs:  inputs,
			Factory: factory,
			Fack:    3 * time.Millisecond,
			Seed:    time.Now().UnixNano(),
			Timeout: 20 * time.Second,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		rep := res.Report(inputs)
		fmt.Printf("%-22s n=%-3d decided value %d in %v wall-clock (%d broadcasts); consensus ok: %v\n",
			name, g.N(), rep.Value, res.Elapsed.Round(time.Millisecond), res.Broadcasts, rep.OK())
	}

	// Single-hop cluster: two-phase, which needs no knowledge of n.
	clique := graph.Clique(12)
	inputs := make([]amac.Value, 12)
	for i := range inputs {
		inputs[i] = amac.Value(i % 2)
	}
	run("two-phase on clique", clique, twophase.Factory, inputs)

	// Multihop mesh: wPAXOS across a random connected topology.
	mesh := graph.RandomConnected(20, 0.15, 99)
	meshInputs := make([]amac.Value, 20)
	for i := range meshInputs {
		meshInputs[i] = amac.Value((i / 3) % 2)
	}
	run("wPAXOS on random mesh", mesh, wpaxos.NewFactory(wpaxos.Config{N: 20}), meshInputs)

	// A long line: the O(D*Fack) shape is visible in wall-clock time.
	line := graph.Line(24)
	lineInputs := make([]amac.Value, 24)
	for i := 12; i < 24; i++ {
		lineInputs[i] = 1
	}
	run("wPAXOS on 24-node line", line, wpaxos.NewFactory(wpaxos.Config{N: 24}), lineInputs)

	// The same algorithms over real UDP sockets on loopback: gob on the
	// wire, reliability by retransmission, Fack emergent.
	netmac.RegisterMessages(twophase.Phase1{}, twophase.Phase2{}, wpaxos.Combined{})
	udpGraph := graph.Grid(3, 4)
	udpInputs := make([]amac.Value, udpGraph.N())
	for i := range udpInputs {
		udpInputs[i] = amac.Value(i % 2)
	}
	udpRes, err := netmac.Run(context.Background(), netmac.Config{
		Graph:   udpGraph,
		Inputs:  udpInputs,
		Factory: wpaxos.NewFactory(wpaxos.Config{N: udpGraph.N()}),
		RTO:     2 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "udp: %v\n", err)
		os.Exit(1)
	}
	udpRep := udpRes.Report(udpInputs)
	fmt.Printf("%-22s n=%-3d decided value %d in %v over UDP (%d packets, %d bytes, %d retransmits); consensus ok: %v\n",
		"wPAXOS over UDP grid", udpGraph.N(), udpRep.Value, udpRes.Elapsed.Round(time.Millisecond),
		udpRes.PacketsSent, udpRes.BytesSent, udpRes.Retransmits, udpRep.OK())
}
